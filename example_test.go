package surw_test

import (
	"fmt"

	"surw"
)

// ExampleTest hunts for a lost-update bug with SURW and prints where it
// was found. Schedules are deterministic, so the output is stable.
func ExampleTest() {
	report, err := surw.Test(func(t *surw.Thread) {
		c := t.NewVar("c", 0)
		h1 := t.Go(func(w *surw.Thread) { c.Store(w, c.Load(w)+1) })
		h2 := t.Go(func(w *surw.Thread) { c.Store(w, c.Load(w)+1) })
		t.Join(h1)
		t.Join(h2)
		t.Assert(c.Peek() == 2, "lost-update")
	}, surw.Options{Base: surw.Base{Seed: 1}, Schedules: 1000})
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Found(), report.Failure.BugID)
	// Output: true lost-update
}

// ExampleRun executes a single deterministic schedule (nil algorithm =
// leftmost) and inspects the result.
func ExampleRun() {
	res := surw.Run(func(t *surw.Thread) {
		x := t.NewVar("x", 0)
		x.Store(t, 41)
		x.Add(t, 1)
		t.SetBehavior(fmt.Sprint(x.Peek()))
	}, nil, surw.RunOptions{})
	fmt.Println(res.Steps, res.Behavior, res.Buggy())
	// Output: 2 42 false
}

// ExampleExplore measures how evenly an algorithm samples a program's
// behaviours.
func ExampleExplore() {
	ex, err := surw.Explore(func(t *surw.Thread) {
		x := t.NewVar("x", 1)
		a := t.Go(func(w *surw.Thread) { x.Update(w, func(v int64) int64 { return v << 1 }) })
		b := t.Go(func(w *surw.Thread) { x.Update(w, func(v int64) int64 { return v<<1 | 1 }) })
		t.Join(a)
		t.Join(b)
		t.SetBehavior(fmt.Sprintf("%03b", x.Peek()))
	}, surw.Options{Base: surw.Base{Seed: 1}, Schedules: 400, Algorithm: "URW"})
	if err != nil {
		panic(err)
	}
	// Two orders of the two appends: "110" and "101".
	fmt.Println(len(ex.Behaviors))
	// Output: 2
}

// ExampleRecordRun shows the record → minimize → replay loop on a failing
// schedule.
func ExampleRecordRun() {
	prog := func(t *surw.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		set := t.Go(func(w *surw.Thread) {
			a.Store(w, 1)
			b.Store(w, 1)
		})
		chk := t.Go(func(w *surw.Thread) {
			w.Assert(!(a.Load(w) == 1 && b.Load(w) == 0), "torn")
		})
		t.Join(set)
		t.Join(chk)
	}
	for seed := int64(0); ; seed++ {
		res, rec := surw.RecordRun(prog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: seed}})
		if !res.Buggy() {
			continue
		}
		min, _ := surw.MinimizeRecording(prog, rec, res.BugID(), surw.RunOptions{}, 0)
		again := surw.ReplayRecording(prog, min, surw.RunOptions{})
		fmt.Println(again.BugID())
		break
	}
	// Output: torn
}

// ExampleNewChan tests a Go-style channel handoff under the controlled
// scheduler.
func ExampleNewChan() {
	res := surw.Run(func(t *surw.Thread) {
		ch := surw.NewChan[string](t, "ch", 1)
		h := t.Go(func(w *surw.Thread) {
			ch.Send(w, "ping")
			ch.Close(w)
		})
		v, ok := ch.Recv(t)
		t.Join(h)
		t.SetBehavior(fmt.Sprintf("%s %v", v, ok))
	}, nil, surw.RunOptions{})
	fmt.Println(res.Behavior)
	// Output: ping true
}

// ExampleEstimate evaluates the paper's §3.4 cluster bound: the chance one
// schedule exposes a bug hidden in one specific interleaving of a 2+2
// cluster, with three independent clusters.
func ExampleEstimate() {
	fmt.Printf("%.3f\n", surw.Estimate([]int{2, 2}, 3))
	// Output: 0.421
}
