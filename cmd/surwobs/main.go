// Command surwobs is the observability toolbelt that keeps ci.sh and the
// Makefile plain shell: it converts `go test -bench` output into the
// machine-readable BENCH_obs.json, enforces benchmark regression gates, and
// validates trace and flight-recorder artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem . | surwobs -bench2json -out BENCH_obs.json
//	surwobs -gate 'BenchmarkPooledSchedule/pooled.allocs/op<=11' -in bench.txt
//	surwobs -bench2json -in bench.txt -bench-history BENCH_history.jsonl
//	surwobs -bench-compare [-tolerance 0.10] OLD.json NEW.json
//	surwobs -atlas results/atlas.json [-out atlas.svg]
//	surwobs -check-trace results/trace.json
//	surwobs -check-flight results/flight/flight_....json
//	surwobs -assemble-trace results/fleet.spans.jsonl [-out fleet.json]
//
// -gate may be repeated; gates read benchmark text from -in (or stdin) and
// the command exits non-zero on the first violated gate. -check-trace
// verifies a file is well-formed Chrome trace_event JSON as Perfetto
// expects; -check-flight verifies a flight dump parses and is marked
// reproduced. -assemble-trace reads a fleet span log (JSONL, one span per
// line, as written by surwbench -fleet-trace or surwworker -trace), groups
// the spans into distributed traces, and reports how many are complete —
// a single lease root with prefix-replay, session, and submit children
// spanning at least two tracks. It exits non-zero when no complete trace
// exists; with -out it also renders the spans as Chrome trace_event JSON
// (one Perfetto track per worker) for visual inspection.
//
// -bench-history appends the parsed results as one timestamped JSONL
// record, growing the benchmark trajectory `make bench` maintains beside
// the BENCH_obs.json snapshot. -bench-compare OLD NEW reads two such
// snapshots and exits non-zero when any shared benchmark's schedules/s
// dropped by more than -tolerance (default 10%) — the ci.sh throughput
// gate. -atlas validates an exploration-atlas export (surwbench -atlas),
// prints each cell's cartography totals and uniformity verdict (ok /
// DRIFT / n/a), and with -out renders the full SVG atlas document.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"surw/internal/atlas"
	"surw/internal/buildinfo"
	"surw/internal/obs"
)

// gateList collects repeated -gate flags.
type gateList []string

func (g *gateList) String() string     { return fmt.Sprint(*g) }
func (g *gateList) Set(s string) error { *g = append(*g, s); return nil }

func main() {
	var gates gateList
	var (
		bench2json = flag.Bool("bench2json", false, "parse `go test -bench` text from -in/stdin and emit JSON")
		in         = flag.String("in", "", "input file for -bench2json/-gate (default stdin)")
		out        = flag.String("out", "", "output file for -bench2json (default stdout)")
		checkTrace = flag.String("check-trace", "", "validate a Chrome trace_event JSON file")
		checkFl    = flag.String("check-flight", "", "validate a flight-recorder dump")
		assemble   = flag.String("assemble-trace", "", "assemble distributed traces from a span-log JSONL file and verify at least one is complete")
		atlasFile  = flag.String("atlas", "", "validate an atlas.json export, print per-cell cartography and drift verdicts; with -out, render the SVG atlas document")
		benchCmp   = flag.Bool("bench-compare", false, "compare two BENCH_obs.json files (args: OLD NEW); exit non-zero on a throughput regression beyond -tolerance")
		benchTol   = flag.Float64("tolerance", 0.10, "allowed fractional schedules/s drop for -bench-compare (0.10 = 10%)")
		benchHist  = flag.String("bench-history", "", "append the parsed -bench2json results as a timestamped record to this JSONL trajectory file")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Var(&gates, "gate", "benchmark regression gate 'name.metric<=value' (repeatable)")
	flag.Parse()
	if *version {
		fmt.Printf("surwobs %s\n", buildinfo.Get())
		return
	}

	switch {
	case *benchCmp:
		args := flag.Args()
		if len(args) != 2 {
			fatal(fmt.Errorf("-bench-compare wants exactly two arguments: OLD.json NEW.json"))
		}
		before, err := obs.ReadBenchJSON(args[0])
		if err != nil {
			fatal(err)
		}
		after, err := obs.ReadBenchJSON(args[1])
		if err != nil {
			fatal(err)
		}
		cmps, err := obs.CompareBench(before, after, "schedules/s", *benchTol)
		if err != nil {
			fatal(err)
		}
		regressed := 0
		for _, c := range cmps {
			verdict := "ok"
			if c.Regressed {
				verdict = "REGRESSED"
				regressed++
			}
			fmt.Printf("surwobs: bench %s: %.0f -> %.0f schedules/s (%+.1f%%) %s\n",
				c.Name, c.Old, c.New, 100*c.Delta, verdict)
		}
		if regressed > 0 {
			fatal(fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% (%s vs %s)",
				regressed, 100**benchTol, args[1], args[0]))
		}

	case *atlasFile != "":
		data, err := os.ReadFile(*atlasFile)
		if err != nil {
			fatal(err)
		}
		var snap atlas.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *atlasFile, err))
		}
		if snap.Version != atlas.Version {
			fatal(fmt.Errorf("%s: atlas version %d, this build reads %d", *atlasFile, snap.Version, atlas.Version))
		}
		if len(snap.Cells) == 0 {
			fatal(fmt.Errorf("%s holds no atlas cells", *atlasFile))
		}
		for _, c := range snap.Cells {
			verdict := "n/a"
			if u := c.Uniformity; u != nil {
				verdict = fmt.Sprintf("uniformity p=%.3g ok", u.P)
				if u.Alarm {
					verdict = fmt.Sprintf("uniformity p=%.3g DRIFT", u.P)
				}
			}
			fmt.Printf("surwobs: atlas cell %s/%s: %d schedules, %d decisions, depth %d, %s\n",
				c.Target, c.Algorithm, c.Schedules, c.Decisions, c.MaxDepth, verdict)
		}
		if *out != "" {
			if err := os.WriteFile(*out, []byte(atlas.DocumentSVG(&snap)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("surwobs: atlas SVG written to %s\n", *out)
		}

	case *assemble != "":
		spans, err := obs.ReadSpansFile(*assemble)
		if err != nil {
			fatal(err)
		}
		complete, total, firstErr := obs.CountComplete(spans)
		fmt.Printf("surwobs: %s: %d spans, %d traces, %d complete (lease→submit)\n",
			*assemble, len(spans), total, complete)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := obs.WriteSpanChromeTrace(f, spans); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("surwobs: Chrome trace written to %s\n", *out)
		}
		if complete == 0 {
			if firstErr != nil {
				fatal(fmt.Errorf("no complete distributed trace: %w", firstErr))
			}
			fatal(fmt.Errorf("no complete distributed trace in %s", *assemble))
		}

	case *checkTrace != "":
		f, err := os.Open(*checkTrace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := obs.ValidateChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("surwobs: %s is well-formed Chrome trace_event JSON\n", *checkTrace)

	case *checkFl != "":
		fr, err := obs.ReadFlight(*checkFl)
		if err != nil {
			fatal(err)
		}
		if !fr.Reproduced {
			fatal(fmt.Errorf("flight %s was not reproduced at capture time (nondeterministic target?)", *checkFl))
		}
		fmt.Printf("surwobs: flight %s: target %s alg %s bug %s fingerprint %s, %d trailing decisions\n",
			*checkFl, fr.Target, fr.Algorithm, fr.BugID, fr.Fingerprint, len(fr.LastDecisions))

	case *bench2json || *benchHist != "" || len(gates) > 0:
		r := io.Reader(os.Stdin)
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		results, err := obs.ParseBench(r)
		if err != nil {
			fatal(err)
		}
		if len(results) == 0 {
			fatal(fmt.Errorf("no benchmark result lines found in input"))
		}
		for _, g := range gates {
			if err := obs.CheckGate(g, results); err != nil {
				fatal(err)
			}
			fmt.Printf("surwobs: gate ok: %s\n", g)
		}
		if *bench2json {
			w := io.Writer(os.Stdout)
			if *out != "" {
				f, err := os.Create(*out)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				w = f
			}
			if err := obs.WriteJSON(w, results); err != nil {
				fatal(err)
			}
		}
		if *benchHist != "" {
			rec := obs.BenchRecord{Time: time.Now().UTC().Format(time.RFC3339), Results: results}
			if err := obs.AppendBenchRecord(*benchHist, rec); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "surwobs: bench record appended to %s\n", *benchHist)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "surwobs: %v\n", err)
	os.Exit(1)
}
