// Command surwdash serves the campaign dashboard over an existing
// run-store, read-only: it never appends, never truncates, and follows a
// store some campaign process (surwbench -campaign / surwrun -campaign) is
// actively writing by tailing runs.jsonl on a poll interval.
//
// Usage:
//
//	surwdash -store DIR [-addr :8090] [-poll 1s]
//
// Endpoints:
//
//	/              HTML dashboard (inline-SVG survival and coverage curves)
//	/api/campaign  campaign aggregates as JSON
//	/metrics       Prometheus text page (content type version=0.0.4)
//	/events        SSE stream: one snapshot on connect, then live events
//	/buildinfo     build identity JSON
//
// To embed the same dashboard in a live campaign process instead, pass
// -serve to surwbench or surwrun.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"surw/internal/buildinfo"
	"surw/internal/campaign"
)

func main() {
	var (
		storeDir = flag.String("store", "", "campaign run-store directory (required)")
		addr     = flag.String("addr", "localhost:8090", "HTTP listen address")
		poll     = flag.Duration("poll", time.Second, "interval for tailing new records from the store")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwdash %s\n", buildinfo.Get())
		return
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "surwdash: -store DIR is required")
		flag.Usage()
		os.Exit(2)
	}

	store, err := campaign.OpenRead(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	go func() {
		for range time.Tick(*poll) {
			if _, err := store.Poll(); err != nil {
				fmt.Fprintf(os.Stderr, "surwdash: poll: %v\n", err)
			}
		}
	}()

	fmt.Printf("surwdash %s serving %s (%d sessions) on http://%s/\n",
		buildinfo.Version, *storeDir, store.Len(), *addr)
	if err := http.ListenAndServe(*addr, campaign.NewServer(store, nil)); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "surwdash: "+format+"\n", a...)
	os.Exit(2)
}
