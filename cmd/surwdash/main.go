// Command surwdash serves the campaign dashboard over an existing
// run-store, read-only: it never appends, never truncates, and follows a
// store some campaign process (surwbench -campaign / surwrun -campaign) is
// actively writing by tailing runs.jsonl on a poll interval.
//
// Usage:
//
//	surwdash -store DIR [-addr :8090] [-poll 1s] [-remote URL]
//
// For a distributed campaign (surwbench -coordinate, see internal/remote),
// -remote names the coordinator's base URL; the dashboard then also shows
// the worker fleet — per-worker utilization, leases in flight, expiries,
// duplicates, the fleet latency percentiles, the stall-detection health
// panel, and the seen-class filter's distinct-class / duplicate-rate
// gauges — and /metrics gains the surw_remote_* gauges. The status fetch
// never breaks the page: an unreachable or misspelled coordinator URL
// surfaces as an error banner (and as remote_error in /api/campaign)
// instead of silently rendering an empty fleet view.
//
// When the store directory holds an atlas.json (written by surwbench
// -atlas), the dashboard also serves the exploration-atlas panels —
// prefix-density heatmaps, depth profiles, uniformity drift — and
// /api/yield reports per-cell discovery yield.
//
// Endpoints:
//
//	/              HTML dashboard (inline-SVG survival and coverage curves)
//	/api/campaign  campaign aggregates as JSON
//	/metrics       Prometheus text page (content type version=0.0.4)
//	/events        SSE stream: one snapshot on connect, then live events
//	/buildinfo     build identity JSON
//
// To embed the same dashboard in a live campaign process instead, pass
// -serve to surwbench or surwrun.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"surw/internal/atlas"
	"surw/internal/buildinfo"
	"surw/internal/campaign"
	"surw/internal/remote"
)

func main() {
	var (
		storeDir  = flag.String("store", "", "campaign run-store directory (required)")
		addr      = flag.String("addr", "localhost:8090", "HTTP listen address")
		poll      = flag.Duration("poll", time.Second, "interval for tailing new records from the store")
		remoteURL = flag.String("remote", "", "distributed-campaign coordinator base URL (optional; adds the worker-fleet view)")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwdash %s\n", buildinfo.Get())
		return
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "surwdash: -store DIR is required")
		flag.Usage()
		os.Exit(2)
	}

	store, err := campaign.OpenRead(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	go func() {
		for range time.Tick(*poll) {
			if _, err := store.Poll(); err != nil {
				fmt.Fprintf(os.Stderr, "surwdash: poll: %v\n", err)
			}
		}
	}()

	srv := campaign.NewServer(store, nil)
	if *remoteURL != "" {
		srv.SetRemote(remoteStatus(*remoteURL))
	}
	// A campaign run with -atlas leaves DIR/atlas.json beside
	// aggregates.json; serve its heatmaps, depth profiles, and uniformity
	// verdicts post-hoc. Re-read per request, so a campaign that rewrites
	// the file (or writes it for the first time) shows up without a restart.
	atlasPath := filepath.Join(*storeDir, "atlas.json")
	srv.SetAtlas(func() (*atlas.Snapshot, error) {
		data, err := os.ReadFile(atlasPath)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, err
		}
		var snap atlas.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("parse %s: %w", atlasPath, err)
		}
		return &snap, nil
	})

	fmt.Printf("surwdash %s serving %s (%d sessions) on http://%s/\n",
		buildinfo.Version, *storeDir, store.Len(), *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatalf("%v", err)
	}
}

// remoteStatus fetches the coordinator's /v1/status snapshot on demand.
// Errors are returned, not swallowed: the dashboard renders them as a
// banner, so a wrong -remote URL (or an exited coordinator) is visible on
// the page instead of masquerading as an empty fleet.
func remoteStatus(base string) func() (*campaign.RemoteStatus, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	return func() (*campaign.RemoteStatus, error) {
		resp, err := client.Get(base + remote.PathStatus)
		if err != nil {
			return nil, fmt.Errorf("fetch %s%s: %w", base, remote.PathStatus, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("fetch %s%s: %s", base, remote.PathStatus, resp.Status)
		}
		var rs campaign.RemoteStatus
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			return nil, fmt.Errorf("decode %s%s: %w", base, remote.PathStatus, err)
		}
		return &rs, nil
	}
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "surwdash: "+format+"\n", a...)
	os.Exit(2)
}
