// Command surwfuzz stress-tests the framework itself: it generates random
// well-formed, deadlock-free, assertion-free concurrent programs and runs
// every scheduling algorithm over them. Any failure, truncation, or replay
// divergence it prints is a bug in the scheduler or an algorithm — the
// generated programs cannot fail on their own.
//
// Usage:
//
//	surwfuzz [-programs N] [-schedules K] [-seed S] [-threads T] [-ops O]
//	         [-metrics FILE] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"

	"surw/internal/buildinfo"
	"surw/internal/core"
	"surw/internal/obs"
	"surw/internal/profile"
	"surw/internal/progfuzz"
	"surw/internal/replay"
	"surw/internal/sched"
)

var algorithms = []string{"SURW", "URW", "POS", "RAPOS", "PCT-3", "PCT-10", "DB-3", "RW", "N-U", "N-S"}

func main() {
	var (
		programs   = flag.Int("programs", 200, "number of generated programs")
		schedules  = flag.Int("schedules", 20, "schedules per program per algorithm")
		seed       = flag.Int64("seed", 1, "generation seed base")
		threads    = flag.Int("threads", 5, "max threads per program")
		ops        = flag.Int("ops", 10, "max straight-line ops per thread")
		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics page to this file after the sweep")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwfuzz %s\n", buildinfo.Get())
		return
	}
	if *pprofAddr != "" {
		go func() { _ = http.ListenAndServe(*pprofAddr, nil) }()
	}
	var metrics *obs.Metrics
	var tracer sched.Tracer
	if *metricsOut != "" {
		metrics = obs.NewMetrics()
		tracer = metrics.Tracer()
	}

	cfg := progfuzz.Config{MaxThreads: *threads, MaxOps: *ops}
	defects := 0
	runs := 0
	for p := 0; p < *programs; p++ {
		genSeed := *seed + int64(p)
		prog := progfuzz.Gen(genSeed, cfg).Prog()
		prof, err := profile.Collect(prog, profile.Options{Base: sched.Base{Seed: genSeed ^ 0x5eed}})
		if err != nil {
			report(&defects, "gen %d: profiling truncated: %v", genSeed, err)
			continue
		}
		selRng := rand.New(rand.NewSource(genSeed))
		for _, name := range algorithms {
			alg, err := core.New(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			info := infoFor(name, prof, selRng)
			for s := 0; s < *schedules; s++ {
				runs++
				opts := sched.Options{Base: sched.Base{Seed: int64(s), MaxSteps: 200_000}, Info: info, Tracer: tracer}
				res, rec := replay.Record(prog, alg, opts)
				if metrics != nil {
					metrics.ObserveResult(name, res)
				}
				switch {
				case res.Buggy():
					report(&defects, "gen %d %s seed %d: spurious failure %v", genSeed, name, s, res.Failure)
				case res.Truncated:
					report(&defects, "gen %d %s seed %d: truncated", genSeed, name, s)
				default:
					// Replay determinism: the recording must reproduce the
					// exact interleaving.
					if again := replay.Replay(prog, rec, opts); again.InterleavingHash != res.InterleavingHash {
						report(&defects, "gen %d %s seed %d: replay diverged", genSeed, name, s)
					} else {
						runs++
					}
				}
			}
		}
	}
	fmt.Printf("surwfuzz: %d programs x %d algorithms, %d runs, %d defects\n",
		*programs, len(algorithms), runs, defects)
	if metrics != nil {
		fmt.Println(metrics.Summary())
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = metrics.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "surwfuzz: metrics: %v\n", err)
			os.Exit(2)
		}
	}
	if defects > 0 {
		os.Exit(1)
	}
}

func infoFor(name string, prof *profile.Profile, rng *rand.Rand) *sched.ProgramInfo {
	switch name {
	case "SURW", "N-U":
		if sel, ok := prof.SelectSingleVar(rng); ok {
			return prof.Instantiate(sel)
		}
		return prof.Instantiate(prof.SelectAll())
	case "URW", "N-S", "PCT-3", "PCT-10", "DB-3":
		return prof.Instantiate(prof.SelectAll())
	}
	return nil
}

func report(defects *int, format string, args ...any) {
	*defects++
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
