// Command surwrun runs one benchmark target under one scheduling algorithm
// and reports schedules-to-first-bug, with the observability layer wired
// through: decision-trace export, metrics, the flight recorder, and
// bit-exact flight replay.
//
// Usage:
//
//	surwrun -target CS/reorder_10 -alg SURW [-limit N] [-sessions K] [-seed S]
//	        [-trace out.json] [-metrics out.prom] [-flight-dir DIR]
//	        [-print-failing] [-pprof ADDR]
//	surwrun -replay-flight results/flight/flight_....json
//	surwrun -crosscheck [-crosscheck-seeds N] [-seed S]
//	surwrun -list
//
// -trace exports the decision trace of session 0's first failing schedule
// (or, bug-free, its first schedule) as Chrome trace_event JSON that
// Perfetto and chrome://tracing open directly. -flight-dir dumps a replay-
// able flight record at each session's first failure; -replay-flight
// re-executes such a dump through internal/replay and verifies the same bug
// fires with the same interleaving fingerprint.
//
// -crosscheck soak-runs the framework's own differential and statistical
// oracle (internal/crosscheck): the mutation-sensitivity self-test plus a
// sweep of generated programs cross-checked against exhaustive
// enumeration. It exits non-zero on the first framework bug found.
//
// -campaign DIR persists per-session results to a crash-safe run-store
// (internal/campaign); an interrupted run resumes from the store and the
// final aggregates are byte-identical to an uninterrupted run's. -serve
// ADDR exposes the live campaign dashboard while the run executes.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"surw/internal/buildinfo"
	"surw/internal/campaign"
	"surw/internal/core"
	"surw/internal/crosscheck"
	"surw/internal/experiments"
	"surw/internal/ftp"
	"surw/internal/obs"
	"surw/internal/profile"
	"surw/internal/racebench"
	"surw/internal/replay"
	"surw/internal/runner"
	"surw/internal/sched"
	"surw/internal/sctbench"
)

func main() {
	var (
		targetName = flag.String("target", "", "benchmark target name (see -list)")
		algName    = flag.String("alg", "SURW", "scheduling algorithm (SURW, URW, POS, RW, PCT-<d>, N-U, N-S)")
		limit      = flag.Int("limit", 10_000, "schedule budget per session")
		sessions   = flag.Int("sessions", 1, "independent sessions")
		seed       = flag.Int64("seed", 1, "master seed")
		workers    = flag.Int("workers", 0, "parallel session workers (1 = sequential; 0 = one per CPU); results are identical at any setting")
		traceOut   = flag.String("trace", "", "export a Chrome trace_event decision trace of session 0's first failing (else first) schedule to this file")
		printFail  = flag.Bool("print-failing", false, "replay, minimize, and print the first failing schedule's events")
		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics page to this file after the run")
		flightDir  = flag.String("flight-dir", "", "dump a replayable flight record at each session's first failing schedule under this directory")
		flightIn   = flag.String("replay-flight", "", "replay a flight record bit-exactly and verify bug ID + interleaving fingerprint")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
		list       = flag.Bool("list", false, "list available targets")
		ccheck     = flag.Bool("crosscheck", false, "soak-run the framework self-verification oracle instead of a benchmark")
		ccSeeds    = flag.Int("crosscheck-seeds", 10, "generator seeds swept per grammar in -crosscheck mode")
		campDir    = flag.String("campaign", "", "persist per-session results to this run-store directory (resumable)")
		serveAddr  = flag.String("serve", "", "serve the live campaign dashboard on this address (requires -campaign)")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwrun %s\n", buildinfo.Get())
		return
	}
	startPprof(*pprofAddr)

	if *flightIn != "" {
		if err := replayFlight(*flightIn); err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ccheck {
		if err := runCrosscheck(*ccSeeds, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: FRAMEWORK BUG: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, name := range allTargetNames() {
			fmt.Println(name)
		}
		return
	}
	tgt, ok := lookupTarget(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "surwrun: unknown target %q (try -list)\n", *targetName)
		os.Exit(2)
	}
	if _, err := core.New(*algName); err != nil {
		fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
		os.Exit(2)
	}

	var metrics *obs.Metrics
	if *metricsOut != "" || *serveAddr != "" {
		metrics = obs.NewMetrics()
	}
	var store *campaign.Store
	if *campDir != "" {
		var err error
		store, err = campaign.Open(*campDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
	}
	if *serveAddr != "" {
		if store == nil {
			fmt.Fprintln(os.Stderr, "surwrun: -serve requires -campaign DIR")
			os.Exit(2)
		}
		srv := campaign.NewServer(store, metrics)
		go func() {
			if err := http.ListenAndServe(*serveAddr, srv); err != nil {
				fmt.Fprintf(os.Stderr, "surwrun: dashboard: %v\n", err)
			}
		}()
		fmt.Printf("dashboard http://%s/\n", *serveAddr)
	}
	cfg := runner.Config{
		Sessions:       *sessions,
		Limit:          *limit,
		Seed:           *seed,
		StopAtFirstBug: true,
		Workers:        *workers,
		Metrics:        metrics,
		FlightDir:      *flightDir,
	}
	if store != nil {
		// Assign only when non-nil: a typed-nil interface would make the
		// runner consult a nil store.
		cfg.Store = store
	}
	res, err := runner.RunTarget(tgt, *algName, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
		os.Exit(1)
	}

	sum, found := res.FirstBugSummary()
	fmt.Printf("target    %s\n", tgt.Name)
	fmt.Printf("algorithm %s\n", *algName)
	fmt.Printf("sessions  %d x %d schedules\n", *sessions, *limit)
	if found == 0 {
		fmt.Println("result    no bug found")
	} else {
		fmt.Printf("result    bug found in %d/%d sessions\n", found, *sessions)
		fmt.Printf("schedules to first bug: mean %.1f ± %.1f (min %.0f, max %.0f)\n",
			sum.Mean, sum.Std, sum.Min, sum.Max)
		for id := range res.DistinctBugs() {
			fmt.Printf("bug id    %s\n", id)
		}
		if obsN := res.FirstBugObs(); len(obsN) > 1 {
			fmt.Printf("censored observations available for log-rank comparisons (%d)\n", len(obsN))
		}
	}
	for _, s := range res.Sessions {
		if s.Flight != "" {
			fmt.Printf("flight    %s\n", s.Flight)
		}
	}
	if metrics != nil {
		fmt.Println(metrics.Summary())
		if err := writeMetrics(*metricsOut, metrics); err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics   %s\n", *metricsOut)
	}
	if store != nil {
		path := filepath.Join(store.Dir(), "aggregates.json")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
			os.Exit(1)
		}
		if err := campaign.WriteAggregates(f, store); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("campaign  %s (%d sessions stored)\n", store.Dir(), store.Len())
	}
	if *traceOut != "" {
		if err := exportTrace(*traceOut, tgt, *algName, *seed, *limit); err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace     %s\n", *traceOut)
	}
	if *printFail {
		printFailingTrace(tgt, *algName, *seed, *limit)
	}
}

// startPprof serves net/http/pprof for the process lifetime when addr is
// set.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: pprof: %v\n", err)
		}
	}()
	fmt.Printf("pprof     http://%s/debug/pprof/\n", addr)
}

func writeMetrics(path string, m *obs.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportTrace re-runs session 0's schedule sequence with a full-length
// collector attached and writes the first failing schedule's decision trace
// (bug-free: the first schedule's) as Chrome trace_event JSON. The re-run
// uses the same Δ=Γ configuration as printFailingTrace, so it is a faithful
// rendering of an actual schedule of the algorithm, not of the exact
// session-0 schedules when the algorithm re-draws Δ per schedule.
func exportTrace(path string, tgt runner.Target, algName string, seed int64, limit int) error {
	alg, err := core.New(algName)
	if err != nil {
		return err
	}
	prof, _ := profile.Collect(tgt.Prog, profile.Options{Base: sched.Base{Seed: seed + 17, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}})
	var info *sched.ProgramInfo
	if prof != nil {
		info = prof.Instantiate(prof.SelectAll())
	}
	col := obs.NewCollector(0) // keep every decision
	opts := sched.Options{Base: sched.Base{ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}, Info: info, Tracer: col, TraceFilter: tgt.TraceFilter}
	for i := 0; i < limit; i++ {
		opts.Seed = seed + int64(i)*2_000_033 + 1
		if r := sched.Run(tgt.Prog, alg, opts); r.Buggy() {
			break
		}
		if i == limit-1 {
			// No failure: re-collect the first schedule so the export is
			// deterministic rather than "whichever ran last".
			opts.Seed = seed + 1
			sched.Run(tgt.Prog, alg, opts)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, col); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayFlight re-executes a flight record through internal/replay and
// verifies the replay is bit-exact: same bug ID, same interleaving
// fingerprint under the target's trace filter.
func replayFlight(path string) error {
	fr, err := obs.ReadFlight(path)
	if err != nil {
		return err
	}
	tgt, ok := lookupTarget(fr.Target)
	if !ok {
		return fmt.Errorf("flight names unknown target %q", fr.Target)
	}
	rec, err := replay.Parse(fr.Recording)
	if err != nil {
		return err
	}
	fmt.Printf("flight    %s\n", path)
	fmt.Printf("target    %s  algorithm %s  session %d schedule %d\n",
		fr.Target, fr.Algorithm, fr.Session, fr.Schedule)
	fmt.Printf("expect    bug %s (%s at step %d), fingerprint %s\n",
		fr.BugID, fr.FailKind, fr.FailStep, fr.Fingerprint)
	res, err := replay.ReplayStrict(tgt.Prog, rec, sched.Options{Base: sched.Base{ProgSeed: fr.ProgSeed, MaxSteps: fr.MaxSteps}, TraceFilter: tgt.TraceFilter})
	if err != nil {
		return fmt.Errorf("replay diverged: %w", err)
	}
	got := fmt.Sprintf("%016x", res.InterleavingHash)
	if res.BugID() != fr.BugID {
		return fmt.Errorf("replay reached bug %q, flight recorded %q", res.BugID(), fr.BugID)
	}
	if got != fr.Fingerprint {
		return fmt.Errorf("replay fingerprint %s != recorded %s", got, fr.Fingerprint)
	}
	// Older dumps predate the class fingerprint; verify it when recorded.
	if fr.ClassFingerprint != "" {
		if gotClass := fmt.Sprintf("%016x", res.ClassHash); gotClass != fr.ClassFingerprint {
			return fmt.Errorf("replay class fingerprint %s != recorded %s", gotClass, fr.ClassFingerprint)
		}
	}
	fmt.Printf("replayed  bit-exact: bug %s reproduced with fingerprint %s in %d steps\n",
		res.BugID(), got, res.Steps)
	return nil
}

// runCrosscheck soak-runs the framework oracle: the statistical
// mutation-sensitivity self-test once, then the differential check over
// seeds generator seeds per grammar.
func runCrosscheck(seeds int, seed int64) error {
	fmt.Println("crosscheck: mutation-sensitivity self-test (bitshift, 252 classes)")
	rep, err := crosscheck.MutationSensitivity(0, seed, 0.005)
	if rep != nil {
		fmt.Print(rep)
	}
	if err != nil {
		return err
	}
	fmt.Printf("crosscheck: differential sweep over %d seeds x 3 grammars, algorithms %v\n",
		seeds, crosscheck.Algorithms())
	checked := 0
	for s := int64(0); s < int64(seeds); s++ {
		// AllowPartial: over arbitrary seeds the occasional program outgrows
		// the enumeration budget; it still gets the replay and identity
		// checks, just not set membership.
		reps, err := crosscheck.CheckGenerated(seed+s, crosscheck.Options{Seed: seed + s, AllowPartial: true})
		for _, r := range reps {
			fmt.Printf("  %-24s enumerated %6d schedules, %5d interleavings, %3d sampled schedules verified (deadlocky=%v)\n",
				r.Program, r.Enumerated, r.Interleavings, r.Checked, r.Deadlocky)
			checked += r.Checked
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("crosscheck: OK — %d sampled schedules legal, replayable, and pool/parallel-identical\n", checked)
	return nil
}

// allTargetNames lists every runnable target across the suites.
func allTargetNames() []string {
	names := sctbench.Names()
	for _, b := range racebench.Suite() {
		names = append(names, "RaceBench/"+b.Name)
	}
	return append(names, "LightFTP", "bitshift_<k>")
}

// lookupTarget resolves a target from any suite, plus the synthetic
// "bitshift_<k>" family (the paper's Figure 1 program: C(2k,k) equally
// interesting interleavings, ideal for eyeballing exported traces).
func lookupTarget(name string) (runner.Target, bool) {
	if tgt, ok := sctbench.ByName(name); ok {
		return tgt, true
	}
	for _, b := range racebench.Suite() {
		if "RaceBench/"+b.Name == name {
			return b.Target(), true
		}
	}
	if name == "LightFTP" {
		return ftp.DefaultConfig().Target(1), true
	}
	if rest, ok := strings.CutPrefix(name, "bitshift_"); ok {
		if k, err := strconv.Atoi(rest); err == nil && k > 0 && k <= 31 {
			return runner.Target{Name: name, Prog: experiments.Bitshift(k)}, true
		}
	}
	return runner.Target{}, false
}

// printFailingTrace re-runs session 0's schedules with recording enabled,
// minimizes the first failing schedule's recording, and prints the
// minimized interleaving.
func printFailingTrace(tgt runner.Target, algName string, seed int64, limit int) {
	alg, _ := core.New(algName)
	prof, _ := profile.Collect(tgt.Prog, profile.Options{Base: sched.Base{Seed: seed + 17, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}})
	info := prof.Instantiate(prof.SelectAll())
	opts := sched.Options{Base: sched.Base{ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}, Info: info}
	for i := 0; i < limit; i++ {
		opts.Seed = seed + int64(i)*2_000_033 + 1
		r, rec := replay.Record(tgt.Prog, alg, opts)
		if !r.Buggy() {
			continue
		}
		fmt.Printf("\nfailing schedule at seed offset %d: %v\n", i, r.Failure)
		fmt.Printf("recording: %s\n", rec)
		min, attempts := replay.Minimize(tgt.Prog, rec, r.Failure.BugID, opts, 2000)
		fmt.Printf("minimized (after %d replays): %s\n", attempts, min)
		opts.RecordTrace = true
		final := replay.Replay(tgt.Prog, min, opts)
		opts.RecordTrace = false
		fmt.Printf("minimized failing interleaving (%d events):\n", len(final.Trace))
		for _, ev := range final.Trace {
			fmt.Printf("  %s\n", ev)
		}
		fmt.Printf("failure: %v\n", final.Failure)
		return
	}
	fmt.Println("\nno failing schedule under the Δ=Γ trace configuration; rerun with another -seed")
}
