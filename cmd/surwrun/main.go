// Command surwrun runs one benchmark target under one scheduling algorithm
// and reports schedules-to-first-bug, optionally dumping the failing
// schedule's event trace for inspection or replay.
//
// Usage:
//
//	surwrun -target CS/reorder_10 -alg SURW [-limit N] [-sessions K] [-seed S] [-trace]
//	surwrun -crosscheck [-crosscheck-seeds N] [-seed S]
//	surwrun -list
//
// -crosscheck soak-runs the framework's own differential and statistical
// oracle (internal/crosscheck): the mutation-sensitivity self-test plus a
// sweep of generated programs cross-checked against exhaustive
// enumeration. It exits non-zero on the first framework bug found.
package main

import (
	"flag"
	"fmt"
	"os"

	"surw/internal/core"
	"surw/internal/crosscheck"
	"surw/internal/ftp"
	"surw/internal/profile"
	"surw/internal/racebench"
	"surw/internal/replay"
	"surw/internal/runner"
	"surw/internal/sched"
	"surw/internal/sctbench"
)

func main() {
	var (
		targetName = flag.String("target", "", "benchmark target name (see -list)")
		algName    = flag.String("alg", "SURW", "scheduling algorithm (SURW, URW, POS, RW, PCT-<d>, N-U, N-S)")
		limit      = flag.Int("limit", 10_000, "schedule budget per session")
		sessions   = flag.Int("sessions", 1, "independent sessions")
		seed       = flag.Int64("seed", 1, "master seed")
		workers    = flag.Int("workers", 0, "parallel session workers (1 = sequential; 0 = one per CPU); results are identical at any setting")
		trace      = flag.Bool("trace", false, "replay and print the first failing schedule's events")
		list       = flag.Bool("list", false, "list available targets")
		ccheck     = flag.Bool("crosscheck", false, "soak-run the framework self-verification oracle instead of a benchmark")
		ccSeeds    = flag.Int("crosscheck-seeds", 10, "generator seeds swept per grammar in -crosscheck mode")
	)
	flag.Parse()

	if *ccheck {
		if err := runCrosscheck(*ccSeeds, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "surwrun: FRAMEWORK BUG: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, name := range allTargetNames() {
			fmt.Println(name)
		}
		return
	}
	tgt, ok := lookupTarget(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "surwrun: unknown target %q (try -list)\n", *targetName)
		os.Exit(2)
	}
	if _, err := core.New(*algName); err != nil {
		fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
		os.Exit(2)
	}

	res, err := runner.RunTarget(tgt, *algName, runner.Config{
		Sessions:       *sessions,
		Limit:          *limit,
		Seed:           *seed,
		StopAtFirstBug: true,
		Workers:        *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "surwrun: %v\n", err)
		os.Exit(1)
	}

	sum, found := res.FirstBugSummary()
	fmt.Printf("target    %s\n", tgt.Name)
	fmt.Printf("algorithm %s\n", *algName)
	fmt.Printf("sessions  %d x %d schedules\n", *sessions, *limit)
	if found == 0 {
		fmt.Println("result    no bug found")
		return
	}
	fmt.Printf("result    bug found in %d/%d sessions\n", found, *sessions)
	fmt.Printf("schedules to first bug: mean %.1f ± %.1f (min %.0f, max %.0f)\n",
		sum.Mean, sum.Std, sum.Min, sum.Max)
	for id := range res.DistinctBugs() {
		fmt.Printf("bug id    %s\n", id)
	}
	obs := res.FirstBugObs()
	if len(obs) > 1 {
		fmt.Printf("censored observations available for log-rank comparisons (%d)\n", len(obs))
	}
	if *trace {
		printFailingTrace(tgt, *algName, *seed, *limit)
	}
}

// runCrosscheck soak-runs the framework oracle: the statistical
// mutation-sensitivity self-test once, then the differential check over
// seeds generator seeds per grammar.
func runCrosscheck(seeds int, seed int64) error {
	fmt.Println("crosscheck: mutation-sensitivity self-test (bitshift, 252 classes)")
	rep, err := crosscheck.MutationSensitivity(0, seed, 0.005)
	if rep != nil {
		fmt.Print(rep)
	}
	if err != nil {
		return err
	}
	fmt.Printf("crosscheck: differential sweep over %d seeds x 3 grammars, algorithms %v\n",
		seeds, crosscheck.Algorithms())
	checked := 0
	for s := int64(0); s < int64(seeds); s++ {
		// AllowPartial: over arbitrary seeds the occasional program outgrows
		// the enumeration budget; it still gets the replay and identity
		// checks, just not set membership.
		reps, err := crosscheck.CheckGenerated(seed+s, crosscheck.Options{Seed: seed + s, AllowPartial: true})
		for _, r := range reps {
			fmt.Printf("  %-24s enumerated %6d schedules, %5d interleavings, %3d sampled schedules verified (deadlocky=%v)\n",
				r.Program, r.Enumerated, r.Interleavings, r.Checked, r.Deadlocky)
			checked += r.Checked
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("crosscheck: OK — %d sampled schedules legal, replayable, and pool/parallel-identical\n", checked)
	return nil
}

// allTargetNames lists every runnable target across the suites.
func allTargetNames() []string {
	names := sctbench.Names()
	for _, b := range racebench.Suite() {
		names = append(names, "RaceBench/"+b.Name)
	}
	return append(names, "LightFTP")
}

// lookupTarget resolves a target from any suite.
func lookupTarget(name string) (runner.Target, bool) {
	if tgt, ok := sctbench.ByName(name); ok {
		return tgt, true
	}
	for _, b := range racebench.Suite() {
		if "RaceBench/"+b.Name == name {
			return b.Target(), true
		}
	}
	if name == "LightFTP" {
		return ftp.DefaultConfig().Target(1), true
	}
	return runner.Target{}, false
}

// printFailingTrace re-runs session 0's schedules with recording enabled,
// minimizes the first failing schedule's recording, and prints the
// minimized interleaving.
func printFailingTrace(tgt runner.Target, algName string, seed int64, limit int) {
	alg, _ := core.New(algName)
	prof, _ := profile.Collect(tgt.Prog, profile.Options{Seed: seed + 17, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps})
	info := prof.Instantiate(prof.SelectAll())
	opts := sched.Options{ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps, Info: info}
	for i := 0; i < limit; i++ {
		opts.Seed = seed + int64(i)*2_000_033 + 1
		r, rec := replay.Record(tgt.Prog, alg, opts)
		if !r.Buggy() {
			continue
		}
		fmt.Printf("\nfailing schedule at seed offset %d: %v\n", i, r.Failure)
		fmt.Printf("recording: %s\n", rec)
		min, attempts := replay.Minimize(tgt.Prog, rec, r.Failure.BugID, opts, 2000)
		fmt.Printf("minimized (after %d replays): %s\n", attempts, min)
		opts.RecordTrace = true
		final := replay.Replay(tgt.Prog, min, opts)
		opts.RecordTrace = false
		fmt.Printf("minimized failing interleaving (%d events):\n", len(final.Trace))
		for _, ev := range final.Trace {
			fmt.Printf("  %s\n", ev)
		}
		fmt.Printf("failure: %v\n", final.Failure)
		return
	}
	fmt.Println("\nno failing schedule under the Δ=Γ trace configuration; rerun with another -seed")
}
