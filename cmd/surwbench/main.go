// Command surwbench regenerates the paper's tables and figures.
//
// Usage:
//
//	surwbench [flags] [experiments]
//
// Experiments (comma-separated or repeated; default "all"):
//
//	fig2    Figure 2  - uniformity histograms on the Figure 1 program
//	sct     Tables 1+4 - SCTBench+ConVul bug finding (all 7 algorithms)
//	rb      Table 2   - RaceBench distinct bugs
//	ftp     Table 3 + Figure 5 - LightFTP case-study coverage and entropy
//	all     everything above
//
// The default budgets reproduce the paper's result shapes in minutes;
// -scale paper switches to the paper's full budgets (days of compute).
// With -out DIR, each table is also written as .txt and .csv. -metrics FILE
// attaches the observability aggregator (internal/obs) to every experiment
// driver, prints its one-line summary under each table, and writes the
// Prometheus-style page to FILE; -pprof ADDR serves net/http/pprof while
// the experiments run. Neither changes any table or figure.
//
// Long campaigns persist with -campaign DIR: every completed session is
// appended to the crash-safe run-store (internal/campaign) and skipped on
// restart, and DIR/aggregates.json is (re)written when the run completes —
// byte-identical whether the campaign ran through or was killed and
// resumed, at any -workers setting. -serve ADDR exposes the live dashboard
// (/, /api/campaign, /metrics, /events, /buildinfo) while the campaign
// runs. -sct-targets and -sct-algs narrow the sct experiment to a subset of
// cells; -stop-after-cells N kills the process (exit 3) after N completed
// cells, simulating a crash for the ci.sh resume smoke. Attaching the store
// or dashboard never changes any table, figure, or schedule.
//
// Distributed campaigns: -coordinate ADDR serves the internal/remote lease
// queue for the sct experiment's (target, algorithm, session) cells and
// waits for surwworker fleets to execute them. When the plan is complete
// the normal sct path renders the tables from the store, so a distributed
// run's tables and aggregates.json are byte-identical to a local run's.
// -lease-ttl and -lease-batch tune the queue; with -serve, the dashboard
// additionally shows the worker fleet and /metrics gains surw_remote_*.
//
// -atlas attaches the exploration atlas (internal/atlas) to the sct
// experiment: schedule-space cartography (per-depth branching, prefix
// density heatmaps) and per-cell uniformity drift, written to
// DIR/atlas.json at campaign end and rendered live on the -serve
// dashboard. Observation only — it never changes a schedule, a table, or
// an aggregate byte. In coordinate mode the written atlas is the fleet
// merge of every worker's (workers opt in with surwworker -atlas).
// -yield-leases makes the coordinator weight lease grants by per-cell
// discovery yield (deterministically, seeded from the campaign seed);
// like the prefix filter it reorders execution, so it is opt-in and
// excluded from the byte-identity smokes.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"surw/internal/atlas"
	"surw/internal/buildinfo"
	"surw/internal/campaign"
	"surw/internal/experiments"
	"surw/internal/obs"
	"surw/internal/remote"
	"surw/internal/workpool"
)

func main() {
	var (
		scaleName  = flag.String("scale", "default", `budget preset: "default" or "paper"`)
		sessions   = flag.Int("sessions", 0, "override sessions for Tables 1/4")
		limit      = flag.Int("limit", 0, "override schedule limit for Tables 1/4")
		ssLimit    = flag.Int("safestack-limit", 0, "override the SafeStack budget")
		rbLimit    = flag.Int("rb-limit", 0, "override RaceBench iterations")
		ftpTrials  = flag.Int("ftp-trials", 0, "override LightFTP trials")
		ftpLimit   = flag.Int("ftp-limit", 0, "override LightFTP schedules per trial")
		seed       = flag.Int64("seed", 0, "override the master seed")
		workers    = flag.Int("workers", 0, "parallel workers (1 = sequential; 0 = one per CPU); results are identical at any setting")
		outDir     = flag.String("out", "", "directory for .txt/.csv artifacts")
		quiet      = flag.Bool("q", false, "suppress progress output")
		full       = flag.Bool("full", false, "print full Figure 2 histograms")
		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics page to this file after the experiments")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
		campDir    = flag.String("campaign", "", "persist per-session results to this run-store directory (resumable)")
		serveAddr  = flag.String("serve", "", "serve the live campaign dashboard on this address (requires -campaign)")
		stopCells  = flag.Int("stop-after-cells", 0, "exit(3) after N completed cells (crash injection for resume tests)")
		sctTargets = flag.String("sct-targets", "", "comma-separated target names to restrict the sct experiment to")
		sctAlgs    = flag.String("sct-algs", "", "comma-separated algorithms to restrict the sct experiment to")
		sctCov     = flag.Bool("sct-coverage", false, "record per-session coverage (interleaving + commutation-class tallies) for sct cells; enables dedup-aware aggregates")
		coordAddr  = flag.String("coordinate", "", "serve the distributed-campaign coordinator on this address and wait for surwworker fleets (requires -campaign; sct only)")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "coordinator: lease time-to-live between worker heartbeats")
		leaseBatch = flag.Int("lease-batch", 4, "coordinator: sessions per lease")
		dedupThr   = flag.Int("dedup-threshold", 0, "coordinator: seen-class filter saturation threshold (0 = default)")
		fleetTrace = flag.String("fleet-trace", "", "coordinator: enable distributed tracing and write the assembled span log (JSONL) to this file")
		atlasOn    = flag.Bool("atlas", false, "accumulate the exploration atlas (cartography + uniformity drift) for sct cells; written to DIR/atlas.json with -campaign")
		yieldLease = flag.Bool("yield-leases", false, "coordinator: weight lease grants by per-cell discovery yield (deterministic, seeded from the campaign seed)")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwbench %s\n", buildinfo.Get())
		return
	}
	if *pprofAddr != "" {
		go func() { _ = http.ListenAndServe(*pprofAddr, nil) }()
	}

	sc := experiments.DefaultScale()
	switch *scaleName {
	case "default":
	case "paper":
		sc = experiments.PaperScale()
	default:
		fatalf("unknown -scale %q (want default or paper)", *scaleName)
	}
	override := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	override(&sc.Sessions, *sessions)
	override(&sc.Limit, *limit)
	override(&sc.SafeStackLimit, *ssLimit)
	override(&sc.RaceBenchLimit, *rbLimit)
	override(&sc.FTPTrials, *ftpTrials)
	override(&sc.FTPLimit, *ftpLimit)
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	if *metricsOut != "" || *serveAddr != "" {
		sc.Metrics = obs.NewMetrics()
	}
	if *sctTargets != "" {
		sc.SCTTargets = splitList(*sctTargets)
	}
	if *sctAlgs != "" {
		sc.SCTAlgs = splitList(*sctAlgs)
	}
	sc.SCTCoverage = *sctCov
	if *atlasOn {
		sc.Atlas = atlas.New()
	}

	var store *campaign.Store
	if *campDir != "" {
		var err error
		store, err = campaign.Open(*campDir)
		if err != nil {
			fatalf("%v", err)
		}
		defer store.Close()
		sc.Store = store
		if *stopCells > 0 {
			n := *stopCells
			store.CellHook = func(ev campaign.Event) {
				if ev.Cells >= n {
					fmt.Fprintf(os.Stderr, "surwbench: crash injection: exiting after %d cells\n", ev.Cells)
					os.Exit(3)
				}
			}
		}
	}
	var dashSrv *campaign.Server
	if *serveAddr != "" {
		if store == nil {
			fatalf("-serve requires -campaign DIR")
		}
		// Served below, once the coordinator (if any) exists to attach.
		dashSrv = campaign.NewServer(store, sc.Metrics)
	}

	want := map[string]bool{}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, a := range args {
		for _, e := range strings.Split(a, ",") {
			e = strings.TrimSpace(strings.ToLower(e))
			switch e {
			case "all":
				want["fig2"], want["sct"], want["rb"], want["ftp"] = true, true, true, true
			case "fig2", "sct", "rb", "ftp":
				want[e] = true
			case "table1", "table4":
				want["sct"] = true
			case "table2":
				want["rb"] = true
			case "table3", "fig5":
				want["ftp"] = true
			default:
				fatalf("unknown experiment %q", e)
			}
		}
	}

	progress := experiments.Progress(nil)
	if !*quiet {
		progress = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	// Distributed mode: serve the lease queue, let surwworker fleets chew
	// through the plan, then fall through to the normal experiment path —
	// every RunTarget session hits the store, so the same code renders the
	// tables and writes aggregates.json, byte-identical to a local run.
	var coord *remote.Coordinator
	if *coordAddr != "" {
		if store == nil {
			fatalf("-coordinate requires -campaign DIR")
		}
		if !want["sct"] || len(want) > 1 {
			fatalf("-coordinate shards the sct experiment only; invoke as `surwbench -coordinate ADDR -campaign DIR ... sct`")
		}
		coord = remote.NewCoordinator(store, experiments.SCTPlan(sc), remote.CoordinatorOptions{
			LeaseTTL:       *leaseTTL,
			BatchSize:      *leaseBatch,
			ClassThreshold: *dedupThr,
			Tracing:        *fleetTrace != "",
			YieldLeases:    *yieldLease,
			YieldSeed:      sc.Seed,
		})
	} else if *yieldLease {
		fatalf("-yield-leases requires -coordinate (it weights the coordinator's lease grants)")
	}
	// The dashboard's atlas source: the fleet merge in coordinate mode
	// (workers ship cumulative snapshots with every submission), the local
	// accumulator otherwise.
	atlasSnap := func() *atlas.Snapshot {
		if coord != nil {
			return coord.AtlasSnapshot()
		}
		if sc.Atlas != nil {
			return sc.Atlas.Snapshot()
		}
		return nil
	}
	if dashSrv != nil {
		if coord != nil {
			dashSrv.SetRemote(func() (*campaign.RemoteStatus, error) { return coord.Status(), nil })
		}
		if coord != nil || sc.Atlas != nil {
			dashSrv.SetAtlas(func() (*atlas.Snapshot, error) { return atlasSnap(), nil })
		}
		go func() {
			if err := http.ListenAndServe(*serveAddr, dashSrv); err != nil {
				fmt.Fprintf(os.Stderr, "surwbench: dashboard: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dashboard serving on %s\n", *serveAddr)
	}
	if coord != nil {
		ln, err := net.Listen("tcp", *coordAddr)
		if err != nil {
			fatalf("coordinator: %v", err)
		}
		go func() { _ = http.Serve(ln, coord) }()
		st := coord.Status()
		fmt.Fprintf(os.Stderr, "coordinator serving on %s (%d/%d sessions already stored); waiting for workers\n",
			ln.Addr(), st.SessionsDone, st.SessionsPlanned)
		last := st.SessionsDone
		for !coord.Done() {
			time.Sleep(200 * time.Millisecond)
			if st = coord.Status(); st.SessionsDone != last {
				last = st.SessionsDone
				if progress != nil {
					progress("coordinator: %d/%d sessions, %d leases in flight, %d workers",
						st.SessionsDone, st.SessionsPlanned, st.InFlightLeases, len(st.Workers))
				}
			}
		}
		// Linger until every worker has heard "done" (capped, for workers
		// that died mid-campaign): closing the listener the instant the
		// last record lands strands any worker still sleeping out its
		// retry hint — it wakes to a dead socket and, unable to tell a
		// finished campaign from a restarting coordinator, retries forever.
		for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline) && !coord.AllWorkersNotified(); {
			time.Sleep(50 * time.Millisecond)
		}
		_ = ln.Close()
		fmt.Fprintf(os.Stderr, "distributed execution complete; rendering tables from the store\n")
		if *yieldLease {
			fmt.Fprintf(os.Stderr, "coordinator: %d yield-weighted grants\n", coord.Status().YieldGrants)
		}
		if *fleetTrace != "" {
			spans := coord.Spans()
			f, err := os.Create(*fleetTrace)
			if err != nil {
				fatalf("%v", err)
			}
			if err := obs.WriteSpansJSONL(f, spans); err != nil {
				fatalf("write fleet trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("write fleet trace: %v", err)
			}
			fmt.Fprintf(os.Stderr, "fleet trace (%d spans) written to %s\n", len(spans), *fleetTrace)
		}
	}

	nWorkers := workpool.Normalize(sc.Workers)
	if want["fig2"] {
		timed("fig2", nWorkers, func() {
			f := experiments.Figure2(sc.Fig2Trials, sc.Seed, sc.Workers)
			emit(*outDir, "figure2", f.Render(*full), "")
		})
	}
	if want["sct"] {
		timed("sct", nWorkers, func() {
			r := experiments.SCTBench(sc, progress)
			t1, t4 := r.Table1(), r.Table4()
			emit(*outDir, "table1", t1.String(), t1.CSV())
			emit(*outDir, "table4", t4.String(), t4.CSV())
			throughput("sct", r.ThroughputFooter())
		})
	}
	if want["rb"] {
		timed("rb", nWorkers, func() {
			r := experiments.RaceBench(sc, progress)
			t2 := r.Table2()
			emit(*outDir, "table2", t2.String(), t2.CSV())
			throughput("rb", r.ThroughputFooter())
		})
	}
	if want["ftp"] {
		timed("ftp", nWorkers, func() {
			r := experiments.LightFTP(sc, progress)
			t3 := r.Table3()
			emit(*outDir, "table3", t3.String(), t3.CSV())
			emit(*outDir, "figure5", r.Figure5(), "")
		})
	}
	if sc.Metrics != nil {
		fmt.Println(sc.Metrics.Summary())
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatalf("%v", err)
			}
			if err := sc.Metrics.WritePrometheus(f); err != nil {
				fatalf("write metrics: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("write metrics: %v", err)
			}
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
		}
	}
	if store != nil {
		path := filepath.Join(store.Dir(), "aggregates.json")
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if err := campaign.WriteAggregates(f, store); err != nil {
			fatalf("write aggregates: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("write aggregates: %v", err)
		}
		fmt.Fprintf(os.Stderr, "campaign aggregates written to %s\n", path)
		// Atlas export: the local or fleet-merged snapshot, next to
		// aggregates.json but never inside it — cartography is execution
		// observation, and aggregates stay byte-identical with or without it.
		if snap := atlasSnap(); snap != nil && len(snap.Cells) > 0 {
			apath := filepath.Join(store.Dir(), "atlas.json")
			af, err := os.Create(apath)
			if err != nil {
				fatalf("%v", err)
			}
			if err := obs.WriteJSON(af, snap); err != nil {
				fatalf("write atlas: %v", err)
			}
			if err := af.Close(); err != nil {
				fatalf("write atlas: %v", err)
			}
			fmt.Fprintf(os.Stderr, "exploration atlas (%d cells) written to %s\n", len(snap.Cells), apath)
		}
		// Dedup footer: per-cell distinct commutation classes and duplicate
		// rate from the stored records. Stderr like the other wall-adjacent
		// footers, so stdout stays byte-identical across runs.
		for _, c := range store.Aggregate().Cells {
			if c.Coverage == nil || c.Coverage.Dedup == nil {
				continue
			}
			dd := c.Coverage.Dedup
			fmt.Fprintf(os.Stderr, "dedup %s/%s: %d classes over %d schedules, %.1f%% duplicate rate\n",
				c.Target, c.Algorithm, dd.DistinctClasses, dd.Samples, 100*dd.DuplicateRate)
		}
	}
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// throughput prints an experiment's schedules/s-per-cell line. It is
// wall-clock — like the elapsed lines — so it goes to stderr: stdout
// (the tables) stays byte-identical across -workers values and runs.
func throughput(name, line string) {
	if line != "" {
		fmt.Fprintf(os.Stderr, "%s %s\n", name, line)
	}
}

func timed(name string, workers int, f func()) {
	start := time.Now()
	f()
	fmt.Fprintf(os.Stderr, "%s finished in %s (%d workers)\n",
		name, time.Since(start).Round(time.Millisecond), workers)
}

// emit prints the artifact and optionally archives it under dir.
func emit(dir, name, text, csv string) {
	fmt.Println(text)
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("mkdir %s: %v", dir, err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(text), 0o644); err != nil {
		fatalf("write %s: %v", name, err)
	}
	if csv != "" {
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv), 0o644); err != nil {
			fatalf("write %s.csv: %v", name, err)
		}
	}
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "surwbench: "+format+"\n", a...)
	os.Exit(2)
}
