// Command surwworker executes distributed-campaign leases from a
// surwbench coordinator (see internal/remote).
//
// Usage:
//
//	surwworker -coordinator http://HOST:PORT [-name NAME] [-workers N]
//
// The worker polls the coordinator for leases — batches of (target,
// algorithm, session) cells — executes them through the same session
// engine a local run uses, and submits the session records. Sessions are
// deterministic, so any fleet of workers produces records bit-identical
// to a local run's; the coordinator deduplicates whatever lease churn
// makes redundant. The process exits 0 when the coordinator reports the
// campaign complete, and a SIGINT/SIGTERM abandons in-flight leases
// cleanly (they expire server-side and are re-leased).
//
// Observability (none of it changes any session record):
//
//	-metrics ADDR   serve the per-worker /metrics Prometheus page; also
//	                attaches the scheduler-level collector, which disables
//	                the batched fast path (results stay byte-identical)
//	-pprof ADDR     serve net/http/pprof for the process lifetime
//	-trace FILE     retain this worker's spans and write them as JSONL on
//	                exit (the coordinator assembles fleet-wide traces; this
//	                is the worker-local view for offline inspection)
//	-watchdog DUR   self-watchdog: if a lease makes no session progress for
//	                DUR, log a stall warning and dump all goroutine stacks
//	                to stderr, then re-arm
//	-atlas          accumulate the exploration atlas (schedule-space
//	                cartography, see internal/atlas) across this worker's
//	                sessions and ship the cumulative snapshot with every
//	                submission; the coordinator merges the fleet. Keeps the
//	                batched fast path, unlike -metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"surw/internal/atlas"
	"surw/internal/buildinfo"
	"surw/internal/obs"
	"surw/internal/remote"
	"surw/internal/runner"
	"surw/internal/sctbench"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL, e.g. http://10.0.0.1:7071 (required)")
		name        = flag.String("name", "", "worker name shown on the dashboard (default host:pid)")
		workers     = flag.Int("workers", 0, "parallel sessions per lease (1 = sequential; 0 = one per CPU)")
		dedup       = flag.Bool("dedup-abandon", false, "early-abandon sessions whose forced prefix lands in a fleet-saturated commutation class (trades byte-identity for throughput)")
		metricsAddr = flag.String("metrics", "", "serve this worker's Prometheus /metrics page on this address (attaches the scheduler collector; results stay byte-identical)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address for the process lifetime")
		traceOut    = flag.String("trace", "", "write this worker's retained spans as JSONL to this file on exit")
		watchdog    = flag.Duration("watchdog", 0, "dump goroutine stacks to stderr when a lease makes no progress for this long (0 = off)")
		atlasOn     = flag.Bool("atlas", false, "accumulate the exploration atlas and ship snapshots to the coordinator")
		quiet       = flag.Bool("q", false, "suppress progress output")
		version     = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwworker %s\n", buildinfo.Get())
		return
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "surwworker: -coordinator URL is required")
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &remote.Worker{
		Coordinator: *coordinator,
		Name:        *name,
		Resolve: func(tname string) (runner.Target, bool) {
			return sctbench.ByName(tname)
		},
		Workers:         *workers,
		UsePrefixFilter: *dedup,
		Watchdog:        *watchdog,
		RetainSpans:     *traceOut != "",
	}
	if *atlasOn {
		w.Atlas = atlas.New()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "surwworker %s: pprof: %v\n", *name, err)
			}
		}()
	}
	if *metricsAddr != "" {
		w.Metrics = obs.NewMetrics()
		mux := http.NewServeMux()
		mux.Handle("/metrics", w.Metrics.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "surwworker %s: metrics: %v\n", *name, err)
			}
		}()
	}
	if !*quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "surwworker %s: "+format+"\n",
				append([]any{*name}, args...)...)
		}
	}

	start := time.Now()
	err := w.Run(ctx)
	if *traceOut != "" {
		if werr := writeSpans(*traceOut, w.Spans()); werr != nil {
			fmt.Fprintf(os.Stderr, "surwworker %s: %v\n", *name, werr)
		} else {
			fmt.Fprintf(os.Stderr, "surwworker %s: spans written to %s\n", *name, *traceOut)
		}
	}
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "surwworker %s: done in %s\n", *name, time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "surwworker %s: interrupted; in-flight leases will expire and requeue\n", *name)
		os.Exit(1)
	default:
		fmt.Fprintf(os.Stderr, "surwworker %s: %v\n", *name, err)
		os.Exit(1)
	}
}

// writeSpans dumps the worker's retained span log as JSONL.
func writeSpans(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteSpansJSONL(f, spans); err != nil {
		f.Close()
		return fmt.Errorf("write spans: %w", err)
	}
	return f.Close()
}
