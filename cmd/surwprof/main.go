// Command surwprof runs the profiling phase on a benchmark target and
// prints the census SURW consumes: per-thread event counts, the spawn
// tree, the shared-object table, and example Δ selections.
//
// Usage:
//
//	surwprof -target CS/wronglock [-runs N] [-seed S] [-json] [-pprof ADDR]
//
// -json emits the full census as machine-readable JSON (the repository's
// shared exporter encoding; see internal/obs) instead of tables.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"

	"surw/internal/buildinfo"
	"surw/internal/obs"
	"surw/internal/profile"
	"surw/internal/race"
	"surw/internal/report"
	"surw/internal/sched"
	"surw/internal/sctbench"
	"surw/internal/systematic"
)

// profileJSON is the -json wire form of the census.
type profileJSON struct {
	Target      string       `json:"target"`
	Threads     int          `json:"threads"`
	TotalEvents int          `json:"total_events"`
	PerThread   []threadJSON `json:"per_thread"`
	Objects     []objJSON    `json:"objects"`
}

type threadJSON struct {
	Path   string `json:"path"`
	Parent string `json:"parent,omitempty"`
	Events int    `json:"events"`
}

type objJSON struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Accesses int    `json:"accesses"`
	Writes   int    `json:"writes"`
	Threads  int    `json:"threads"`
	Birth    int    `json:"birth"`
}

func main() {
	var (
		targetName = flag.String("target", "", "benchmark target name (see surwrun -list)")
		runs       = flag.Int("runs", 1, "census runs to average")
		seed       = flag.Int64("seed", 1, "census scheduler seed")
		asJSON     = flag.Bool("json", false, "emit the census as JSON instead of tables")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("surwprof %s\n", buildinfo.Get())
		return
	}
	if *pprofAddr != "" {
		go func() { _ = http.ListenAndServe(*pprofAddr, nil) }()
	}

	tgt, ok := sctbench.ByName(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "surwprof: unknown target %q (try surwrun -list)\n", *targetName)
		os.Exit(2)
	}
	prof, err := profile.Collect(tgt.Prog, profile.Options{Base: sched.Base{Seed: *seed, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}, Runs: *runs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "surwprof: %v (counts below are partial)\n", err)
		if prof == nil {
			os.Exit(1)
		}
	}

	if *asJSON {
		out := profileJSON{
			Target:      tgt.Name,
			Threads:     prof.Info.NumThreads(),
			TotalEvents: prof.Info.TotalEvents,
		}
		for l, path := range prof.Info.Paths {
			t := threadJSON{Path: path, Events: prof.Info.Events[l]}
			if p := prof.Info.Parent[l]; p >= 0 {
				t.Parent = prof.Info.Paths[p]
			}
			out.PerThread = append(out.PerThread, t)
		}
		for _, o := range prof.Objs {
			out.Objects = append(out.Objects, objJSON{
				Name: o.Name, Kind: o.Kind.String(),
				Accesses: o.Accesses, Writes: o.Writes, Threads: o.Threads, Birth: o.Birth,
			})
		}
		if err := obs.WriteJSON(os.Stdout, out); err != nil {
			fmt.Fprintf(os.Stderr, "surwprof: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("target %s: %d logical threads, ~%d events per schedule\n\n",
		tgt.Name, prof.Info.NumThreads(), prof.Info.TotalEvents)

	tt := report.NewTable("Per-thread event counts", "Path", "Parent", "Events")
	for l, path := range prof.Info.Paths {
		parent := "-"
		if p := prof.Info.Parent[l]; p >= 0 {
			parent = prof.Info.Paths[p]
		}
		tt.AddRow(path, parent, fmt.Sprintf("%d", prof.Info.Events[l]))
	}
	fmt.Println(tt.String())

	ot := report.NewTable("Shared-object census", "Name", "Kind", "Accesses", "Writes", "Threads", "Birth")
	for _, o := range prof.Objs {
		ot.AddRow(o.Name, o.Kind.String(),
			fmt.Sprintf("%d", o.Accesses), fmt.Sprintf("%d", o.Writes),
			fmt.Sprintf("%d", o.Threads), fmt.Sprintf("%d", o.Birth))
	}
	fmt.Println(ot.String())

	rng := rand.New(rand.NewSource(*seed))
	st := report.NewTable("Example Δ selections", "Strategy", "Selection")
	for i := 0; i < 3; i++ {
		if sel, ok := prof.SelectSingleVar(rng); ok {
			info := prof.Instantiate(sel)
			st.AddRow(fmt.Sprintf("single-var draw %d", i+1),
				fmt.Sprintf("%s, per-thread Δ counts %v", sel.Desc, info.InterestingEvents))
		}
	}
	if sel, ok := prof.SelectLockEntrances(); ok {
		st.AddRow("lock entrances", sel.Desc)
	}
	if sel, ok := prof.SelectRegion(rng, 16); ok {
		st.AddRow("region (threshold 16)", sel.Desc)
	}
	if sel, ok := race.SelectRacy(prof, tgt.Prog, 10, *seed, tgt.MaxSteps); ok {
		st.AddRow("race-guided", sel.Desc)
	} else {
		st.AddRow("race-guided", "no races observed in 10 sampled schedules")
	}
	fmt.Println(st.String())

	est := systematic.EstimateSchedules(tgt.Prog, 500, *seed, systematic.Options{
		ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps,
	})
	fmt.Printf("Knuth estimate of the schedule-space size: ~%.3g\n", est)
}
