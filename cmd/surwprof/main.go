// Command surwprof runs the profiling phase on a benchmark target and
// prints the census SURW consumes: per-thread event counts, the spawn
// tree, the shared-object table, and example Δ selections.
//
// Usage:
//
//	surwprof -target CS/wronglock [-runs N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"surw/internal/profile"
	"surw/internal/race"
	"surw/internal/report"
	"surw/internal/sctbench"
	"surw/internal/systematic"
)

func main() {
	var (
		targetName = flag.String("target", "", "benchmark target name (see surwrun -list)")
		runs       = flag.Int("runs", 1, "census runs to average")
		seed       = flag.Int64("seed", 1, "census scheduler seed")
	)
	flag.Parse()

	tgt, ok := sctbench.ByName(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "surwprof: unknown target %q (try surwrun -list)\n", *targetName)
		os.Exit(2)
	}
	prof, err := profile.Collect(tgt.Prog, profile.Options{
		Runs: *runs, Seed: *seed, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "surwprof: %v (counts below are partial)\n", err)
	}

	fmt.Printf("target %s: %d logical threads, ~%d events per schedule\n\n",
		tgt.Name, prof.Info.NumThreads(), prof.Info.TotalEvents)

	tt := report.NewTable("Per-thread event counts", "Path", "Parent", "Events")
	for l, path := range prof.Info.Paths {
		parent := "-"
		if p := prof.Info.Parent[l]; p >= 0 {
			parent = prof.Info.Paths[p]
		}
		tt.AddRow(path, parent, fmt.Sprintf("%d", prof.Info.Events[l]))
	}
	fmt.Println(tt.String())

	ot := report.NewTable("Shared-object census", "Name", "Kind", "Accesses", "Writes", "Threads")
	for _, o := range prof.Objs {
		ot.AddRow(o.Name, o.Kind.String(),
			fmt.Sprintf("%d", o.Accesses), fmt.Sprintf("%d", o.Writes), fmt.Sprintf("%d", o.Threads))
	}
	fmt.Println(ot.String())

	rng := rand.New(rand.NewSource(*seed))
	fmt.Println("Example Δ selections:")
	for i := 0; i < 3; i++ {
		if sel, ok := prof.SelectSingleVar(rng); ok {
			info := prof.Instantiate(sel)
			fmt.Printf("  single-var draw %d: %s, per-thread Δ counts %v\n", i+1, sel.Desc, info.InterestingEvents)
		}
	}
	if sel, ok := prof.SelectLockEntrances(); ok {
		fmt.Printf("  lock entrances: %s\n", sel.Desc)
	}
	if sel, ok := prof.SelectRegion(rng, 16); ok {
		fmt.Printf("  region (threshold 16): %s\n", sel.Desc)
	}
	if sel, ok := race.SelectRacy(prof, tgt.Prog, 10, *seed, tgt.MaxSteps); ok {
		fmt.Printf("  race-guided: %s\n", sel.Desc)
	} else {
		fmt.Println("  race-guided: no races observed in 10 sampled schedules")
	}

	est := systematic.EstimateSchedules(tgt.Prog, 500, *seed, systematic.Options{
		ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps,
	})
	fmt.Printf("\nKnuth estimate of the schedule-space size: ~%.3g\n", est)
}
