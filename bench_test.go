// Benchmarks regenerating each table and figure of the paper at a reduced
// default scale, plus micro-benchmarks of the substrate and ablation
// benches for the design choices DESIGN.md calls out. Key result numbers
// are attached to each benchmark via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a miniature reproduction run. cmd/surwbench produces the full
// tables; see EXPERIMENTS.md for paper-vs-measured.
package surw

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"surw/internal/core"
	"surw/internal/experiments"
	"surw/internal/ftp"
	"surw/internal/profile"
	"surw/internal/race"
	"surw/internal/racebench"
	"surw/internal/replay"
	"surw/internal/runner"
	"surw/internal/sched"
	"surw/internal/sctbench"
	"surw/internal/stats"
)

// benchScale is deliberately small: each table benchmark completes in
// seconds while preserving the result ordering.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Seed:           1,
		Sessions:       2,
		Limit:          400,
		SafeStackLimit: 400,
		RaceBenchLimit: 300,
		FTPTrials:      2,
		FTPLimit:       400,
		Fig2Trials:     5040,
	}
}

// BenchmarkFig2 regenerates Figure 2: uniformity of the final-x
// distribution on the Figure 1 program, per algorithm. The reported
// chi-square is against the uniform distribution over 252 classes (lower
// is more uniform; URW should be ~250, the baselines thousands).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure2(benchScale().Fig2Trials, 1, 0)
		b.ReportMetric(f.ChiSquare["URW"], "chi2-URW")
		b.ReportMetric(f.ChiSquare["RW"], "chi2-RW")
		b.ReportMetric(f.ChiSquare["PCT-10"], "chi2-PCT10")
	}
}

// BenchmarkTable1 regenerates Table 1's summary (bugs found on
// SCTBench+ConVul) at bench scale and reports the per-algorithm totals.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SCTBench(benchScale(), nil)
		for _, alg := range []string{"SURW", "POS", "RW"} {
			found := 0
			for _, tname := range r.Targets {
				if r.Results[tname][alg].FoundEver() {
					found++
				}
			}
			b.ReportMetric(float64(found), "bugs-"+alg)
		}
	}
}

// BenchmarkTable4 regenerates a slice of Table 4 (schedules-to-first-bug)
// on the reorder family, the paper's flagship analysis, reporting SURW's
// mean against PCT-3's.
func BenchmarkTable4(b *testing.B) {
	targets := []runner.Target{sctbench.Reorder(9, 1), sctbench.Twostage(10)}
	for i := 0; i < b.N; i++ {
		for _, tgt := range targets {
			for _, alg := range []string{"SURW", "PCT-3"} {
				res, err := runner.RunTarget(tgt, alg, runner.Config{
					Sessions: 2, Limit: 4000, Seed: 5, StopAtFirstBug: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sum, found := res.FirstBugSummary()
				mean := float64(res.Limit)
				if found > 0 {
					mean = sum.Mean
				}
				b.ReportMetric(mean, tgt.Name[3:]+"-"+alg)
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (RaceBench distinct bugs) on a
// three-base slice and reports per-algorithm totals; SURW and POS should
// lead RW and PCT.
func BenchmarkTable2(b *testing.B) {
	suite := racebench.Suite()[:3]
	for i := 0; i < b.N; i++ {
		for _, alg := range []string{"SURW", "POS", "RW", "PCT-3"} {
			total := 0
			for _, base := range suite {
				res, err := runner.RunTarget(base.Target(), alg, runner.Config{
					Sessions: 1, Limit: benchScale().RaceBenchLimit, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				total += len(res.DistinctBugs())
			}
			b.ReportMetric(float64(total), "bugs-"+alg)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (LightFTP entropies) and reports the
// interleaving entropy per algorithm; SURW should be the highest.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LightFTP(benchScale(), nil)
		t3 := r.Table3()
		_ = t3
		for _, alg := range experiments.FTPAlgorithms {
			var ilv []float64
			for _, res := range r.Trials[alg] {
				ilv = append(ilv, res.Sessions[0].Cov.InterleavingEntropy())
			}
			b.ReportMetric(stats.Summarize(ilv).Mean, "ilvH-"+alg)
		}
	}
}

// BenchmarkFig5 regenerates Figure 5's final coverage points (distinct
// interleavings and behaviours on LightFTP) for SURW vs RW.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LightFTP(benchScale(), nil)
		for _, alg := range []string{"SURW", "RW", "PCT-10"} {
			nIlv, nBeh := 0, 0
			for _, res := range r.Trials[alg] {
				cov := res.Sessions[0].Cov
				nIlv += len(cov.Interleavings)
				nBeh += len(cov.Behaviors)
			}
			n := float64(len(r.Trials[alg]))
			b.ReportMetric(float64(nIlv)/n, "ilv-"+alg)
			b.ReportMetric(float64(nBeh)/n, "beh-"+alg)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------------

// BenchmarkDecision measures the per-scheduling-decision cost of each
// stateless algorithm on the Figure 1 program (§6 compares SURW's ~20 ns
// per decision against RFF's ~305 ns; our decisions include Go-side
// bookkeeping but stay within the same order of magnitude).
func BenchmarkDecision(b *testing.B) {
	prog := experiments.Bitshift(16)
	info := experiments.BitshiftInfo(16)
	for _, name := range []string{"SURW", "URW", "POS", "PCT-3", "RW"} {
		alg, err := core.New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i)}, Info: info})
				steps += r.Steps
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/decision")
		})
	}
}

// BenchmarkSchedulerThroughput measures raw substrate speed: events per
// second through the cooperative scheduler with the cheapest algorithm.
func BenchmarkSchedulerThroughput(b *testing.B) {
	prog := experiments.Bitshift(64)
	alg := core.NewRandomWalk()
	steps := 0
	for i := 0; i < b.N; i++ {
		r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i)}})
		steps += r.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkParallelSessions measures the parallel runner's scaling: the
// same (target, algorithm, seed) workload fanned over 1, 2, 4 and
// GOMAXPROCS workers. Results are bit-identical at every worker count (see
// internal/runner/parallel_test.go), so this isolates pure wall-clock
// scaling; schedules/s should grow close to linearly until the worker
// count passes the CPU count. allocs/schedule reports the steady-state
// allocation cost per schedule under the pooled execution engine.
func BenchmarkParallelSessions(b *testing.B) {
	tgt, ok := sctbench.ByName("CS/twostage_20")
	if !ok {
		b.Fatal("missing target")
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		// Underscore, not dash: `go test` appends -GOMAXPROCS to benchmark
		// names, and obs.ParseBench strips that suffix; a dashed worker
		// count would be indistinguishable from it.
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			schedules := 0
			for i := 0; i < b.N; i++ {
				res, err := runner.RunTarget(tgt, "RW", runner.Config{
					Sessions: 8, Limit: 100, Seed: 42, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, s := range res.Sessions {
					schedules += s.Schedules
				}
			}
			runtime.ReadMemStats(&ms1)
			b.ReportMetric(float64(schedules)/b.Elapsed().Seconds(), "schedules/s")
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(schedules), "allocs/schedule")
		})
	}
}

// BenchmarkPooledSchedule quantifies the allocation diet directly: one
// schedule of the Figure 1 program through a recycled sched.Pool versus a
// fresh Execution per run.
func BenchmarkPooledSchedule(b *testing.B) {
	prog := experiments.Bitshift(16)
	alg := core.NewRandomWalk()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i)}})
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		pool := sched.NewPool()
		for i := 0; i < b.N; i++ {
			pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i)}})
		}
	})
}

// forkAfterPrefix builds a program whose first `prefix` decisions are all
// forced (only the root is runnable) before two children introduce real
// scheduling choice: the shape that prefix checkpointing (Pool.RunPrefix /
// Pool.RunFrom) is designed to amortize.
func forkAfterPrefix(prefix int) func(*sched.Thread) {
	return func(t *sched.Thread) {
		v := t.NewVar("v", 0)
		for i := 0; i < prefix; i++ {
			v.Add(t, 1)
		}
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < 4; i++ {
				v.Add(w, 1)
			}
		})
		b := t.Go(func(w *sched.Thread) {
			for i := 0; i < 4; i++ {
				v.Add(w, 1)
			}
		})
		t.JoinAll(a, b)
	}
}

// BenchmarkPrefixFork measures prefix checkpointing on a program with a
// long forced prologue: "capture" is the RunPrefix schedule that records
// the forced-decision prefix, "replay" re-runs later seeds through
// RunFrom, and "full" is the same seed schedule without a checkpoint. The
// capture/replay split is the session shape of runner/parallel.go: one
// capture, Limit-1 replays.
func BenchmarkPrefixFork(b *testing.B) {
	prog := forkAfterPrefix(120)
	alg := core.NewRandomWalk()
	b.Run("capture", func(b *testing.B) {
		b.ReportAllocs()
		pool := sched.NewPool()
		decisions := 0
		for i := 0; i < b.N; i++ {
			_, cp := pool.RunPrefix(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i) + 1}})
			if cp == nil {
				b.Fatal("no checkpoint captured")
			}
			decisions = cp.Decisions()
		}
		b.ReportMetric(float64(decisions), "forced-decisions")
	})
	b.Run("replay", func(b *testing.B) {
		b.ReportAllocs()
		pool := sched.NewPool()
		_, cp := pool.RunPrefix(prog, alg, sched.Options{Base: sched.Base{Seed: 1}})
		if cp == nil {
			b.Fatal("no checkpoint captured")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.RunFrom(cp, prog, alg, sched.Options{Base: sched.Base{Seed: int64(i) + 2}})
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		pool := sched.NewPool()
		for i := 0; i < b.N; i++ {
			pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i) + 2}})
		}
	})
}

// BenchmarkBatchedReplay is the A/B for the batched run-to-next-decision
// engine on the parallel benchmark's workload: the same pooled schedules
// with the fast engine ("batched") and with Options.DisableBatching
// forcing the verbatim slow loop ("slow"). The two produce bit-identical
// Results (see internal/crosscheck); the ratio is the engine's speedup.
func BenchmarkBatchedReplay(b *testing.B) {
	tgt, ok := sctbench.ByName("CS/twostage_20")
	if !ok {
		b.Fatal("missing target")
	}
	alg := core.NewRandomWalk()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"slow", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			pool := sched.NewPool()
			for i := 0; i < b.N; i++ {
				pool.Run(tgt.Prog, alg, sched.Options{Base: sched.Base{Seed: int64(i) + 1}, DisableBatching: mode.disable})
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e9, "ns/schedule")
		})
	}
}

// BenchmarkProfileCollect measures the profiling phase on a mid-size
// benchmark target.
func BenchmarkProfileCollect(b *testing.B) {
	tgt, _ := sctbench.ByName("CS/twostage_20")
	for i := 0; i < b.N; i++ {
		if _, err := profile.Collect(tgt.Prog, profile.Options{Base: sched.Base{Seed: int64(i)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for DESIGN.md's called-out choices
// ---------------------------------------------------------------------------

// staggered spawns worker A, runs m main-thread events, then spawns worker
// B — the §3.5 scenario: while B is unspawned, the only way to schedule
// B-side events early is to weight the main thread by B's remaining count.
func staggered(k, m int) (func(*sched.Thread), *sched.ProgramInfo) {
	prog := func(t *sched.Thread) {
		x := t.NewVar("x", 1)
		ctl := t.NewVar("ctl", 0)
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v << 1 })
			}
		})
		for i := 0; i < m; i++ {
			ctl.Add(t, 1)
		}
		bb := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v<<1 + 1 })
			}
		})
		t.Join(a)
		t.Join(bb)
		t.SetBehavior(fmt.Sprintf("%b", x.Peek()))
	}
	info := sched.NewProgramInfo()
	root := info.AddThread("0", "")
	la := info.AddThread("0.0", "0")
	lb := info.AddThread("0.1", "0")
	info.Events[root] = m + 2
	info.Events[la] = k
	info.Events[lb] = k
	copy(info.InterestingEvents, info.Events)
	info.TotalEvents = m + 2 + 2*k
	return prog, info
}

// BenchmarkAblationSpawnWeights compares URW's skew with and without the
// §3.5 thread-creation weight correction on the staggered-spawn program:
// without the correction the main thread (and hence worker B's creation)
// is starved, so B-early interleavings are under-sampled and the final-x
// distribution skews far harder.
func BenchmarkAblationSpawnWeights(b *testing.B) {
	prog, info := staggered(4, 8)
	run := func(alg sched.Algorithm) float64 {
		counts := make(map[string]int)
		for s := 0; s < 7000; s++ {
			r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(s)}, Info: info})
			counts[r.Behavior]++
		}
		xs := make([]int, 0, len(counts))
		for _, c := range counts {
			xs = append(xs, c)
		}
		return stats.ChiSquareUniform(xs, int(stats.Binomial(8, 4)))
	}
	for i := 0; i < b.N; i++ {
		on := core.NewURW()
		off := core.NewURW()
		off.NoSpawnCorrection = true
		b.ReportMetric(run(on), "chi2-corrected")
		b.ReportMetric(run(off), "chi2-uncorrected")
	}
}

// BenchmarkAblationPickFrom compares SURW's default pickFrom (fresh random
// priority per event) against uniform per-step choice on the reorder
// workload; both must keep the bug findable (Δ-uniformity does not depend
// on pickFrom), with similar schedule counts.
func BenchmarkAblationPickFrom(b *testing.B) {
	tgt := sctbench.Reorder(9, 1)
	for _, uniform := range []bool{false, true} {
		name := "priority"
		if uniform {
			name = "uniform"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				found := 0.0
				prof, _ := profile.Collect(tgt.Prog, profile.Options{Base: sched.Base{Seed: 17}})
				rng := rand.New(rand.NewSource(3))
				alg := core.NewSURW()
				alg.PickUniform = uniform
				for s := 0; s < 2000; s++ {
					sel, ok := prof.SelectSingleVar(rng)
					if !ok {
						b.Fatal("no shared var")
					}
					r := sched.Run(tgt.Prog, alg, sched.Options{Base: sched.Base{Seed: int64(s)}, Info: prof.Instantiate(sel)})
					if r.Buggy() {
						found = float64(s + 1)
						break
					}
				}
				b.ReportMetric(found, "schedules-to-bug")
			}
		})
	}
}

// BenchmarkAblationCSEntrance compares SURW's Δ choices on a lock-heavy
// target: critical-section entrances (§3.5's recommendation) versus the
// protected variable itself.
func BenchmarkAblationCSEntrance(b *testing.B) {
	tgt, _ := sctbench.ByName("CS/wronglock_3")
	selects := map[string]func(p *profile.Profile, rng *rand.Rand) (profile.Selection, bool){
		"lock-entrances": func(p *profile.Profile, _ *rand.Rand) (profile.Selection, bool) {
			return p.SelectLockEntrances()
		},
		"shared-var": func(p *profile.Profile, rng *rand.Rand) (profile.Selection, bool) {
			return p.SelectSingleVar(rng)
		},
	}
	for _, name := range []string{"lock-entrances", "shared-var"} {
		sel := selects[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := tgt
				t.Select = sel
				res, err := runner.RunTarget(t, "SURW", runner.Config{
					Sessions: 3, Limit: 2000, Seed: 9, StopAtFirstBug: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sum, found := res.FirstBugSummary()
				mean := float64(res.Limit)
				if found > 0 {
					mean = sum.Mean
				}
				b.ReportMetric(mean, "schedules-to-bug")
			}
		})
	}
}

// BenchmarkAblationCountNoise measures §7's sensitivity to count-estimate
// error: URW's uniformity as the estimates are scaled away from truth.
func BenchmarkAblationCountNoise(b *testing.B) {
	const k = 4
	for _, scale := range []float64{1.0, 2.0, 8.0} {
		b.Run(fmt.Sprintf("scale-%g", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				info := experiments.BitshiftInfo(k)
				// Skew only thread A's estimate: relative ratios are what
				// matter (§7).
				info.Events[info.LID("0.0")] = int(float64(k) * scale)
				info.InterestingEvents[info.LID("0.0")] = info.Events[info.LID("0.0")]
				prog := experiments.Bitshift(k)
				counts := make(map[string]int)
				alg := core.NewURW()
				for s := 0; s < 7000; s++ {
					r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(s)}, Info: info})
					counts[r.Behavior]++
				}
				xs := make([]int, 0, len(counts))
				for _, c := range counts {
					xs = append(xs, c)
				}
				b.ReportMetric(stats.ChiSquareUniform(xs, int(stats.Binomial(2*k, k))), "chi2")
			}
		})
	}
}

// BenchmarkFTPSchedule measures one LightFTP schedule end to end.
func BenchmarkFTPSchedule(b *testing.B) {
	tgt := ftp.DefaultConfig().Target(3)
	alg := core.NewRandomWalk()
	for i := 0; i < b.N; i++ {
		sched.Run(tgt.Prog, alg, sched.Options{Base: sched.Base{Seed: int64(i), ProgSeed: 3}})
	}
}

// BenchmarkRaceDetect measures the happens-before analysis on recorded
// LightFTP traces.
func BenchmarkRaceDetect(b *testing.B) {
	tgt := ftp.DefaultConfig().Target(3)
	res := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 1, ProgSeed: 3}, RecordTrace: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		race.Detect(res.Trace, res.ThreadPaths)
	}
	b.ReportMetric(float64(len(res.Trace)), "events/trace")
}

// BenchmarkMinimize measures schedule minimization on a recorded failure.
func BenchmarkMinimize(b *testing.B) {
	tgt := sctbench.Reorder(2, 1)
	var rec replay.Recording
	var bugID string
	found := false
	for seed := int64(0); seed < 2000 && !found; seed++ {
		res, r := replay.Record(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}})
		if res.Buggy() {
			rec, bugID, found = r, res.Failure.BugID, true
		}
	}
	if !found {
		b.Fatal("no failure to minimize")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay.Minimize(tgt.Prog, rec, bugID, sched.Options{}, 0)
	}
}
