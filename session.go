package surw

// The unified driver behind Test, Explore, and Replay. A Session owns the
// three things those entry points used to re-implement separately:
//
//   - the one-time profiling run (the census every selective algorithm
//     needs, charged once per session as in the paper's accounting),
//   - the Δ stream (the per-schedule redraw of the interesting-event
//     subset, advanced by a private rand stream seeded from Options.Seed so
//     any schedule's Δ can be re-derived later by index), and
//   - the schedule-seed derivation (seed i = Seed + i·2_000_033 + 1, the
//     same affine map the batch runner uses, so a schedule is addressable
//     by its index alone).
//
// Test, Explore, and Replay are thin wrappers that keep their historical
// signatures and outputs; new code that wants finer control — running
// schedules one at a time, inspecting the Δ of each, cancelling mid-hunt —
// drives a Session directly:
//
//	s, err := surw.NewSession(prog, surw.Options{Algorithm: "SURW"})
//	for s.Remaining() > 0 {
//	    res, err := s.Next()
//	    if err != nil { break } // context cancelled: partial results stand
//	    if res.Buggy() { ... }
//	}

import (
	"context"
	"math/rand"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/sched"
)

// Session is a reusable schedule driver for one program under one
// algorithm: it profiles once at construction, then hands out schedules
// one at a time, re-drawing Δ per schedule for the selective algorithms.
// A Session is not safe for concurrent use; run independent Sessions (with
// independent seeds) to parallelize, as internal/runner does.
type Session struct {
	prog   func(*Thread)
	opts   Options // normalized
	alg    Algorithm
	prof   *Profile
	selRng *rand.Rand
	ctx    context.Context

	next     int // index of the next schedule to run
	lastSeed int64
	delta    string
}

// NewSession validates the options, performs the one-time profiling run,
// and returns a driver positioned at schedule 0. The error is non-nil only
// for configuration problems (unknown algorithm).
func NewSession(prog func(*Thread), opts Options) (*Session, error) {
	o := opts.normalized()
	alg, err := core.New(o.Algorithm)
	if err != nil {
		return nil, err
	}
	// The census shares the session's Base verbatim except for its own
	// seed offset — one struct copy, not a field-by-field replumb.
	pbase := o.Base
	pbase.Seed += 17
	prof, _ := profile.Collect(prog, profile.Options{Base: pbase})
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{
		prog:   prog,
		opts:   o,
		alg:    alg,
		prof:   prof,
		selRng: rand.New(rand.NewSource(o.Seed)),
		ctx:    ctx,
	}, nil
}

// Profile returns the census collected at construction (nil only if the
// profiling run could not complete at all).
func (s *Session) Profile() *Profile { return s.prof }

// Index returns the number of schedules the session has run.
func (s *Session) Index() int { return s.next }

// Remaining returns how many schedules of the Options.Schedules budget are
// left.
func (s *Session) Remaining() int { return s.opts.Schedules - s.next }

// ScheduleSeed returns the deterministic seed of schedule i — the same
// derivation Test has always used, exposed so external drivers (replay
// tooling, distributed workers) can address a schedule by index.
func (s *Session) ScheduleSeed(i int) int64 {
	return s.opts.Seed + int64(i)*2_000_033 + 1
}

// LastSeed returns the seed of the most recently run schedule.
func (s *Session) LastSeed() int64 { return s.lastSeed }

// Delta describes the interesting-event subset active in the most recently
// run schedule ("" before the first Next).
func (s *Session) Delta() string { return s.delta }

// drawDelta advances the Δ stream one draw and returns the instantiated
// ProgramInfo (nil when no profile is available).
func (s *Session) drawDelta() *ProgramInfo {
	if s.prof == nil {
		s.delta = ""
		return nil
	}
	var sel Selection
	ok := false
	if s.opts.Select != nil {
		sel, ok = s.opts.Select(s.prof, s.selRng)
	} else {
		sel, ok = s.prof.SelectSingleVar(s.selRng)
	}
	if !ok {
		sel = s.prof.SelectAll()
	}
	s.delta = sel.Desc
	return s.prof.Instantiate(sel)
}

// run executes one schedule with the given seed and Δ.
func (s *Session) run(seed int64, info *ProgramInfo, recordTrace bool) *Result {
	s.lastSeed = seed
	base := s.opts.Base
	base.Seed = seed
	return sched.Run(s.prog, s.alg, sched.Options{
		Base:        base,
		Info:        info,
		TraceFilter: s.opts.TraceFilter,
		RecordTrace: recordTrace,
	})
}

// Next draws the next Δ from the stream and runs the session's next
// schedule. It returns the context's error (and no result) once the
// session's context is cancelled; everything already run stands.
func (s *Session) Next() (*Result, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	info := s.drawDelta()
	seed := s.ScheduleSeed(s.next)
	s.next++
	return s.run(seed, info, false), nil
}

// Test drains the session's remaining schedule budget hunting for a
// failing schedule — the engine behind the package-level Test. A cancelled
// context returns the partial report alongside the context's error.
func (s *Session) Test() (*Report, error) {
	rep := &Report{Schedule: -1}
	for s.Remaining() > 0 {
		res, err := s.Next()
		if err != nil {
			return rep, err
		}
		rep.Schedules++
		if res.Buggy() {
			rep.Failure = res.Failure
			rep.Schedule = s.next + 1 // +1 profiling run, 1-based
			rep.Seed = s.lastSeed
			rep.Delta = s.delta
			return rep, nil
		}
	}
	return rep, nil
}

// Explore drains the session's remaining schedule budget tallying distinct
// interleavings and behaviours — the engine behind the package-level
// Explore. A cancelled context returns the partial tallies alongside the
// context's error.
func (s *Session) Explore() (*Exploration, error) {
	ex := &Exploration{
		Interleavings: make(map[uint64]int),
		Behaviors:     make(map[string]int),
		Failures:      make(map[string]int),
	}
	for s.Remaining() > 0 {
		res, err := s.Next()
		if err != nil {
			return ex, err
		}
		ex.Schedules++
		ex.Interleavings[res.InterleavingHash]++
		if res.Behavior != "" {
			ex.Behaviors[res.Behavior]++
		}
		if res.Buggy() {
			ex.Failures[res.BugID()]++
		}
	}
	return ex, nil
}

// Replay re-derives the Δ stream up to the 1-based report schedule index
// (counting the profiling run, as Report.Schedule does) and re-executes
// that schedule with the given seed and a full trace recorded. It is the
// engine behind the package-level Replay: because the Δ stream is a pure
// function of Options.Seed, a fresh Session re-derives exactly the subset
// the original hunt used.
func (s *Session) Replay(schedule int, seed int64) (*Result, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	var info *ProgramInfo
	for i := 0; i < schedule-1; i++ {
		info = s.drawDelta()
	}
	return s.run(seed, info, true), nil
}
