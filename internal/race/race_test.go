package race

import (
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/sched"
)

// traceOf runs prog under a random walk and returns the recorded trace.
func traceOf(prog func(*sched.Thread), seed int64) *sched.Result {
	return sched.Run(prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}, RecordTrace: true})
}

func racyProg(t *sched.Thread) {
	x := t.NewVar("x", 0)
	h1 := t.Go(func(w *sched.Thread) { x.Store(w, 1) })
	h2 := t.Go(func(w *sched.Thread) { x.Store(w, 2) })
	t.Join(h1)
	t.Join(h2)
}

func lockedProg(t *sched.Thread) {
	m := t.NewMutex("m")
	x := t.NewVar("x", 0)
	body := func(w *sched.Thread) {
		m.Lock(w)
		x.Add(w, 1)
		m.Unlock(w)
	}
	h1, h2 := t.Go(body), t.Go(body)
	t.Join(h1)
	t.Join(h2)
}

func TestDetectsWriteWriteRace(t *testing.T) {
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		res := traceOf(racyProg, seed)
		if len(Detect(res.Trace, res.ThreadPaths)) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("write-write race never detected")
	}
}

func TestNoFalsePositiveUnderLock(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		res := traceOf(lockedProg, seed)
		if races := Detect(res.Trace, res.ThreadPaths); len(races) > 0 {
			t.Fatalf("seed %d: false race %v", seed, races[0])
		}
	}
}

func TestNoFalsePositiveThroughCond(t *testing.T) {
	// The producer-consumer handshake orders the accesses through the
	// mutex+cond; the wait's release edge (recovered via the wake-lock
	// pre-pass) must prevent a false positive on the data variable.
	prog := func(t *sched.Thread) {
		m := t.NewMutex("m")
		c := t.NewCond("c", m)
		ready := t.NewVar("ready", 0)
		data := t.NewVar("data", 0)
		cons := t.Go(func(w *sched.Thread) {
			m.Lock(w)
			for ready.Load(w) == 0 {
				c.Wait(w)
			}
			m.Unlock(w)
			data.Load(w) // ordered after the producer's store via the cond
		})
		data.Store(t, 42)
		m.Lock(t)
		ready.Store(t, 1)
		c.Signal(t)
		m.Unlock(t)
		t.Join(cons)
	}
	for seed := int64(0); seed < 40; seed++ {
		res := traceOf(prog, seed)
		for _, r := range Detect(res.Trace, res.ThreadPaths) {
			if r.ObjHash == sched.HashName("data") {
				t.Fatalf("seed %d: false race on cond-ordered data: %v", seed, r)
			}
		}
	}
}

func TestSpawnEdgePreventsParentChildFalsePositive(t *testing.T) {
	// The parent writes before spawning; the child reads. Program order
	// through the spawn must not be flagged.
	prog := func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		x.Store(t, 1)
		h := t.Go(func(w *sched.Thread) { x.Load(w) })
		t.Join(h)
	}
	for seed := int64(0); seed < 20; seed++ {
		res := traceOf(prog, seed)
		if races := Detect(res.Trace, res.ThreadPaths); len(races) > 0 {
			t.Fatalf("seed %d: spawn-ordered access flagged: %v", seed, races[0])
		}
	}
}

func TestReadReadNotARace(t *testing.T) {
	prog := func(t *sched.Thread) {
		x := t.NewVar("x", 7)
		h1 := t.Go(func(w *sched.Thread) { x.Load(w) })
		h2 := t.Go(func(w *sched.Thread) { x.Load(w) })
		t.Join(h1)
		t.Join(h2)
	}
	for seed := int64(0); seed < 20; seed++ {
		res := traceOf(prog, seed)
		if races := Detect(res.Trace, res.ThreadPaths); len(races) > 0 {
			t.Fatalf("seed %d: read-read flagged: %v", seed, races[0])
		}
	}
}

func TestSemaphoreOrdersAccesses(t *testing.T) {
	// V/P carries a happens-before edge like a lock release/acquire.
	prog := func(t *sched.Thread) {
		s := t.NewSemaphore("s", 0)
		data := t.NewVar("data", 0)
		h := t.Go(func(w *sched.Thread) {
			s.P(w)
			data.Load(w)
		})
		data.Store(t, 1)
		s.V(t)
		t.Join(h)
	}
	for seed := int64(0); seed < 30; seed++ {
		res := traceOf(prog, seed)
		if races := Detect(res.Trace, res.ThreadPaths); len(races) > 0 {
			t.Fatalf("seed %d: semaphore-ordered access flagged: %v", seed, races[0])
		}
	}
}

func TestRacyObjectsAggregates(t *testing.T) {
	var results []*sched.Result
	for seed := int64(0); seed < 10; seed++ {
		results = append(results, traceOf(racyProg, seed))
	}
	racy := RacyObjects(results)
	if !racy[sched.HashName("x")] {
		t.Fatal("aggregated racy set missed x")
	}
}

func TestSelectRacyFeedsDelta(t *testing.T) {
	// The §6 loop: races found on wronglock's data variable become the Δ
	// selection, and SURW with that Δ finds the bug quickly.
	wronglock := func(t *sched.Thread) {
		lockA := t.NewMutex("A")
		lockB := t.NewMutex("B")
		data := t.NewVar("data", 0)
		quiet := t.NewVar("quiet", 0) // lock-protected everywhere: not racy
		w1 := t.Go(func(w *sched.Thread) {
			lockA.Lock(w)
			data.Add(w, 1)
			quiet.Add(w, 1)
			lockA.Unlock(w)
		})
		r1 := t.Go(func(w *sched.Thread) {
			lockB.Lock(w) // wrong lock for data
			before := data.Load(w)
			after := data.Load(w)
			lockB.Unlock(w)
			w.Assert(before == after, "dirty-read")
		})
		t.Join(w1)
		t.Join(r1)
	}
	prof, err := profile.Collect(wronglock, profile.Options{Base: sched.Base{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := SelectRacy(prof, wronglock, 10, 3, 0)
	if !ok {
		t.Fatal("no races found for Δ selection")
	}
	if !strings.Contains(sel.Desc, "data") {
		t.Fatalf("Δ should name the racy var: %q", sel.Desc)
	}
	for _, name := range sel.Objects {
		if name == "quiet" {
			t.Fatal("consistently locked var must not be selected")
		}
	}
	info := prof.Instantiate(sel)
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		r := sched.Run(wronglock, core.NewSURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		found = r.Buggy()
	}
	if !found {
		t.Fatal("SURW with race-derived Δ missed the bug")
	}
}

func TestSelectRacyNoRaces(t *testing.T) {
	prof, err := profile.Collect(lockedProg, profile.Options{Base: sched.Base{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SelectRacy(prof, lockedProg, 10, 1, 0); ok {
		t.Fatal("race-free program yielded a racy Δ")
	}
}

func TestVectorClockPrimitives(t *testing.T) {
	var v vc
	v.set(3, 5)
	if v.get(3) != 5 || v.get(7) != 0 {
		t.Fatal("set/get wrong")
	}
	var o vc
	o.set(1, 2)
	o.set(3, 1)
	v.join(o)
	if v.get(1) != 2 || v.get(3) != 5 {
		t.Fatal("join wrong")
	}
	e := epoch{tid: 3, clk: 5}
	if !e.before(v) {
		t.Fatal("epoch.before wrong")
	}
	if (epoch{tid: 3, clk: 6}).before(v) {
		t.Fatal("future epoch claims ordered")
	}
	if (epoch{}).before(v) {
		t.Fatal("zero epoch must not be before anything")
	}
	c := v.clone()
	c.set(3, 99)
	if v.get(3) == 99 {
		t.Fatal("clone aliases")
	}
}
