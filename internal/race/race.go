// Package race implements a vector-clock happens-before data-race detector
// over recorded schedules, and closes the loop §6 of the paper sketches:
// "dynamic analyses and SURW are complementary to each other, as they crave
// for a diverse and representative sample of interleavings and in return
// identify interesting events for SURW to target." Detect finds racy
// variables in traces; SelectRacy turns them into the Δ selection SURW
// consumes.
//
// The analysis is FastTrack-flavoured: each thread carries a vector clock,
// lock releases publish clocks that acquisitions join (condition waits
// release their mutex too — the mutex is recovered from the waiter's
// subsequent wake-lock event), and variable accesses race when a
// conflicting prior access is not happens-before ordered. Two documented
// approximations err toward missing races rather than inventing them:
// a child thread joins its parent's clock as of the parent's last event
// before the child's first (the exact spawn point is not in the trace), and
// join edges are not modelled (post-join reads in the root thread typically
// use the event-free Peek and are invisible anyway).
package race

import (
	"fmt"
	"sort"
	"strings"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/sched"
)

// Race is one detected data race on a shared variable.
type Race struct {
	// ObjHash identifies the variable (resolve names via a Profile).
	ObjHash uint64
	// Prior and Access are the two unordered conflicting events.
	Prior, Access sched.Event
}

func (r Race) String() string {
	return fmt.Sprintf("race on obj %x: %v vs %v", r.ObjHash, r.Prior, r.Access)
}

// vc is a dense vector clock indexed by TID.
type vc []int

func (v vc) get(tid int) int {
	if tid < len(v) {
		return v[tid]
	}
	return 0
}

func (v *vc) set(tid, val int) {
	for len(*v) <= tid {
		*v = append(*v, 0)
	}
	(*v)[tid] = val
}

func (v *vc) join(o vc) {
	for tid, c := range o {
		if c > v.get(tid) {
			v.set(tid, c)
		}
	}
}

func (v vc) clone() vc { return append(vc(nil), v...) }

// epoch is a scalar clock stamp of one thread.
type epoch struct {
	tid int
	clk int
}

func (e epoch) before(v vc) bool { return e.clk <= v.get(e.tid) && e.clk > 0 }

type varState struct {
	lastWrite  epoch
	lastWriteE sched.Event
	readers    map[int]epoch
	readerEvs  map[int]sched.Event
}

// Detect analyzes one recorded trace (sched.Options.RecordTrace) and
// returns the data races found, at most one per variable. paths is the
// run's Result.ThreadPaths, used to wire parent-to-child spawn edges; a
// nil paths falls back to joining every earlier thread's clock at a new
// thread's first event (coarser: masks more).
func Detect(trace []sched.Event, paths []string) []Race {
	parentTID := map[int]int{}
	if paths != nil {
		byPath := map[string]int{}
		for tid, p := range paths {
			byPath[p] = tid
		}
		for tid, p := range paths {
			if i := strings.LastIndexByte(p, '.'); i >= 0 {
				if pt, ok := byPath[p[:i]]; ok {
					parentTID[tid] = pt
				}
			}
		}
	}
	clocks := map[int]vc{}           // per thread
	released := map[sched.ObjID]vc{} // per lock: published clock
	vars := map[sched.ObjID]*varState{}
	firstSeen := map[int]bool{}
	reported := map[uint64]bool{}
	var races []Race

	// Pre-pass: recover the mutex a cond wait releases from the waiter's
	// next wake-lock event.
	waitMutex := make(map[int]sched.ObjID) // trace index of OpWait -> mutex
	for i, ev := range trace {
		if ev.Kind != sched.OpWait {
			continue
		}
		for j := i + 1; j < len(trace); j++ {
			if trace[j].TID == ev.TID {
				if trace[j].Kind == sched.OpWakeLock {
					waitMutex[i] = trace[j].Obj
				}
				break
			}
		}
	}

	clockOf := func(tid int) vc {
		c, ok := clocks[tid]
		if !ok {
			c = vc{}
			clocks[tid] = c
		}
		return c
	}

	for i, ev := range trace {
		t := ev.TID
		c := clockOf(t)
		if !firstSeen[t] {
			firstSeen[t] = true
			if pt, ok := parentTID[t]; ok {
				// Spawn edge: the parent's events so far precede this
				// thread's creation (approximately: up to the parent's
				// last event before this one).
				c.join(clocks[pt])
			} else if paths == nil {
				for other := range clocks {
					if other != t {
						c.join(clocks[other])
					}
				}
			}
		}
		c.set(t, c.get(t)+1)
		clocks[t] = c

		switch ev.Kind {
		case sched.OpLock, sched.OpWakeLock, sched.OpRLock, sched.OpSemP:
			if rel, ok := released[ev.Obj]; ok {
				c.join(rel)
				clocks[t] = c
			}
		case sched.OpUnlock, sched.OpRUnlock, sched.OpSemV:
			released[ev.Obj] = mergedRelease(released[ev.Obj], c)
		case sched.OpWait:
			if m, ok := waitMutex[i]; ok {
				released[m] = mergedRelease(released[m], c)
			}
		case sched.OpRead, sched.OpWrite, sched.OpRMW:
			vs, ok := vars[ev.Obj]
			if !ok {
				vs = &varState{readers: map[int]epoch{}, readerEvs: map[int]sched.Event{}}
				vars[ev.Obj] = vs
			}
			// Write-write and write-read checks against the last write.
			if vs.lastWrite.clk > 0 && vs.lastWrite.tid != t && !vs.lastWrite.before(c) {
				races = report(races, reported, Race{ObjHash: ev.ObjHash, Prior: vs.lastWriteE, Access: ev})
			}
			if ev.Kind.IsWrite() {
				// Read-write checks against every unordered reader.
				for rt, re := range vs.readers {
					if rt != t && !re.before(c) {
						races = report(races, reported, Race{ObjHash: ev.ObjHash, Prior: vs.readerEvs[rt], Access: ev})
					}
				}
				vs.lastWrite = epoch{tid: t, clk: c.get(t)}
				vs.lastWriteE = ev
				vs.readers = map[int]epoch{}
				vs.readerEvs = map[int]sched.Event{}
			} else {
				vs.readers[t] = epoch{tid: t, clk: c.get(t)}
				vs.readerEvs[t] = ev
			}
		}
	}
	return races
}

func mergedRelease(prev, cur vc) vc {
	out := cur.clone()
	out.join(prev)
	return out
}

func report(races []Race, seen map[uint64]bool, r Race) []Race {
	if seen[r.ObjHash] {
		return races
	}
	seen[r.ObjHash] = true
	return append(races, r)
}

// RacyObjects aggregates the racy variable hashes across recorded runs.
func RacyObjects(results []*sched.Result) map[uint64]bool {
	out := map[uint64]bool{}
	for _, res := range results {
		for _, r := range Detect(res.Trace, res.ThreadPaths) {
			out[r.ObjHash] = true
		}
	}
	return out
}

// SelectRacy samples `runs` random-walk schedules of prog, race-detects
// their traces, and returns the Δ selection "all accesses to the racy
// variables" with names resolved through the profile's census — the
// §6 feedback loop from dynamic analysis into SURW. ok is false when no
// race was observed.
func SelectRacy(p *profile.Profile, prog func(*sched.Thread), runs int, seed int64, maxSteps int) (profile.Selection, bool) {
	if runs <= 0 {
		runs = 5
	}
	alg := core.NewRandomWalk()
	racy := map[uint64]bool{}
	for i := 0; i < runs; i++ {
		res := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed + int64(i), MaxSteps: maxSteps}, RecordTrace: true})
		for _, r := range Detect(res.Trace, res.ThreadPaths) {
			racy[r.ObjHash] = true
		}
	}
	if len(racy) == 0 {
		return profile.Selection{}, false
	}
	var names []string
	for _, o := range p.Objs {
		if racy[o.Hash] {
			names = append(names, o.Name)
		}
	}
	if len(names) == 0 {
		return profile.Selection{}, false
	}
	sort.Strings(names)
	return profile.Selection{
		Desc:        fmt.Sprintf("accesses to racy vars {%s}", strings.Join(names, ", ")),
		Objects:     names,
		Interesting: profile.AccessTo(names...),
	}, true
}
