package systematic

import (
	"testing"

	"surw/internal/core"
	"surw/internal/sched"
	"surw/internal/stats"
)

// freeThreads spawns workers with the given event counts and never joins,
// so the interleaving space is exactly the multinomial of the counts.
func freeThreads(counts ...int) func(*sched.Thread) {
	return func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		for _, n := range counts {
			n := n
			t.Go(func(w *sched.Thread) {
				for i := 0; i < n; i++ {
					x.Add(w, 1)
				}
			})
		}
	}
}

func TestExhaustiveCountMatchesMultinomial(t *testing.T) {
	cases := [][]int{{3, 3}, {2, 2, 2}, {4, 1}, {1, 1, 1, 1}}
	for _, counts := range cases {
		want := int(stats.Multinomial(counts...) + 0.5)
		got, ok := Count(freeThreads(counts...), 200_000)
		if !ok {
			t.Fatalf("%v: budget exhausted", counts)
		}
		if got != want {
			t.Fatalf("%v: counted %d interleavings, want %d", counts, got, want)
		}
	}
}

func TestPreemptionBoundZeroGivesBlockOrders(t *testing.T) {
	// With zero preemptions, only thread block orders remain: k! schedules
	// (threads are never blocked in this program).
	r := Explore(freeThreads(3, 3), Options{BoundPreemptions: true})
	if !r.Exhausted {
		t.Fatal("not exhausted")
	}
	if len(r.Interleavings) != 2 {
		t.Fatalf("PB(0) found %d interleavings, want 2", len(r.Interleavings))
	}
	r3 := Explore(freeThreads(2, 2, 2), Options{BoundPreemptions: true})
	if len(r3.Interleavings) != 6 {
		t.Fatalf("PB(0) on 3 threads found %d, want 3! = 6", len(r3.Interleavings))
	}
}

func TestPreemptionBoundMonotone(t *testing.T) {
	prog := freeThreads(3, 3)
	prev := 0
	for pb := 0; pb <= 4; pb++ {
		r := Explore(prog, Options{BoundPreemptions: true, PreemptionBound: pb})
		if !r.Exhausted {
			t.Fatalf("PB(%d) not exhausted", pb)
		}
		if len(r.Interleavings) < prev {
			t.Fatalf("PB(%d) shrank the space: %d < %d", pb, len(r.Interleavings), prev)
		}
		prev = len(r.Interleavings)
	}
	full, _ := Count(prog, 100_000)
	if prev != full {
		t.Fatalf("PB(4) on 3+3 events should already be complete: %d vs %d", prev, full)
	}
}

func TestExploreFindsAllBugsOfDeadlock01(t *testing.T) {
	prog := func(t *sched.Thread) {
		a := t.NewMutex("a")
		b := t.NewMutex("b")
		h1 := t.Go(func(w *sched.Thread) {
			a.Lock(w)
			b.Lock(w)
			b.Unlock(w)
			a.Unlock(w)
		})
		h2 := t.Go(func(w *sched.Thread) {
			b.Lock(w)
			a.Lock(w)
			a.Unlock(w)
			b.Unlock(w)
		})
		t.Join(h1)
		t.Join(h2)
	}
	r := Explore(prog, Options{})
	if !r.Exhausted {
		t.Fatal("not exhausted")
	}
	if r.Bugs["deadlock"] == 0 {
		t.Fatal("exhaustive exploration missed the deadlock")
	}
	// The deadlock needs one preemption; PB(0) must miss it and PB(1)
	// must find it — the CHESS insight.
	if pb0 := Explore(prog, Options{BoundPreemptions: true}); pb0.Bugs["deadlock"] != 0 {
		t.Fatal("PB(0) found a deadlock that needs a preemption")
	}
	if pb1 := Explore(prog, Options{BoundPreemptions: true, PreemptionBound: 1}); pb1.Bugs["deadlock"] == 0 {
		t.Fatal("PB(1) missed the single-preemption deadlock")
	}
}

func TestBudgetCapsExploration(t *testing.T) {
	r := Explore(freeThreads(5, 5, 5), Options{MaxSchedules: 50})
	if r.Exhausted {
		t.Fatal("claimed exhaustion under a tiny budget")
	}
	if r.Schedules != 50 {
		t.Fatalf("schedules = %d", r.Schedules)
	}
}

// TestRandomizedSamplersStayInsideFeasibleSpace cross-checks the samplers
// against the exhaustive oracle: every interleaving a randomized algorithm
// produces must be feasible.
func TestRandomizedSamplersStayInsideFeasibleSpace(t *testing.T) {
	prog := freeThreads(3, 3)
	oracle := Explore(prog, Options{})
	if !oracle.Exhausted {
		t.Fatal("oracle not exhausted")
	}
	for _, name := range []string{"RW", "POS", "PCT-3", "URW", "SURW"} {
		alg, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 300; seed++ {
			r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed}})
			if !oracle.Interleavings[r.InterleavingHash] {
				t.Fatalf("%s produced an infeasible interleaving (seed %d)", name, seed)
			}
		}
	}
}

// TestURWReachesWholeSpace checks completeness against the oracle: URW
// (with exact counts) covers every feasible interleaving.
func TestURWReachesWholeSpace(t *testing.T) {
	prog := freeThreads(3, 3)
	oracle := Explore(prog, Options{})
	info := sched.NewProgramInfo()
	info.AddThread("0", "")
	for i, n := range []int{3, 3} {
		l := info.AddThread("0."+string(rune('0'+i)), "0")
		info.Events[l] = n
		info.InterestingEvents[l] = n
		info.TotalEvents += n
	}
	alg := core.NewURW()
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 5000 && len(seen) < len(oracle.Interleavings); seed++ {
		r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		seen[r.InterleavingHash] = true
	}
	if len(seen) != len(oracle.Interleavings) {
		t.Fatalf("URW reached %d of %d feasible interleavings", len(seen), len(oracle.Interleavings))
	}
}

func TestKnuthEstimateMatchesExactCount(t *testing.T) {
	for _, counts := range [][]int{{3, 3}, {2, 2, 2}} {
		prog := freeThreads(counts...)
		exact, ok := Count(prog, 100_000)
		if !ok {
			t.Fatal("exact count failed")
		}
		est := EstimateSchedules(prog, 4000, 9, Options{})
		// Knuth's estimator is unbiased; with 4000 samples on these tiny
		// trees it lands well within 25% of truth.
		if est < float64(exact)*0.75 || est > float64(exact)*1.25 {
			t.Fatalf("%v: estimate %.0f vs exact %d", counts, est, exact)
		}
	}
}

func TestKnuthEstimateDefaults(t *testing.T) {
	if est := EstimateSchedules(freeThreads(1, 1), 0, 1, Options{}); est < 1.5 || est > 2.5 {
		t.Fatalf("estimate with default samples = %.2f, want ~2", est)
	}
}
