// Package systematic implements the enumerative counterpart the paper
// compares against (§6 "Systematic concurrency testing"): an exhaustive
// depth-first exploration of the schedule space with optional
// CHESS-style preemption bounding. It doubles as a ground-truth oracle for
// the randomized algorithms: on small programs it counts the feasible
// interleavings exactly, which the tests cross-check against closed-form
// multinomials and against the sets the randomized samplers reach.
package systematic

import (
	"math/rand"

	"surw/internal/sched"
)

// Options bounds the exploration.
type Options struct {
	// MaxSchedules caps the number of executed schedules (0 = 1,000,000).
	MaxSchedules int
	// BoundPreemptions enables CHESS-style preemption bounding: schedules
	// with more than PreemptionBound preemptive context switches are not
	// explored. The zero value explores the full space.
	BoundPreemptions bool
	PreemptionBound  int
	// MaxSteps bounds each schedule (0 = sched.DefaultMaxSteps).
	MaxSteps int
	// ProgSeed fixes the program-input randomness.
	ProgSeed int64
	// TraceFilter restricts which events fold into the interleaving
	// fingerprints (nil = all events), mirroring sched.Options.TraceFilter
	// so enumerated class sets are comparable with filtered sampling runs.
	TraceFilter func(sched.Event) bool
	// RecordTrace records the full event sequence of every executed
	// schedule (sched.Options.RecordTrace), for Observe consumers that
	// need the trace — e.g. the crosscheck equivalence oracle.
	RecordTrace bool
	// Observe, when non-nil, is called with every executed schedule's
	// Result before it is folded into the exploration summary. The Result
	// (including its Trace when RecordTrace is set) is owned by the
	// callee; Explore never touches it again.
	Observe func(*sched.Result)
}

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Interleavings is the set of distinct interleaving fingerprints.
	Interleavings map[uint64]bool
	// Behaviors tallies program-reported behaviours.
	Behaviors map[string]bool
	// Bugs maps bug IDs to the number of schedules that hit them.
	Bugs map[string]int
	// Exhausted reports whether the (bounded) space was fully explored
	// within MaxSchedules.
	Exhausted bool
}

// pathAlg replays a fixed choice prefix, then continues non-preemptively
// (keep running the previous thread while it stays enabled, else take the
// lowest TID). While running it records, for every consulted decision, the
// enabled-set width and which alternatives would have been preemptive.
type pathAlg struct {
	prefix []int

	// per consulted decision, in order:
	widths   []int
	preempts [][]bool // preempts[i][c]: is choosing enabled[c] a preemption?
	taken    []int    // the index actually taken

	prev sched.ThreadID
}

func (p *pathAlg) Name() string { return "systematic" }

func (p *pathAlg) Begin(_ *sched.ProgramInfo, _ *rand.Rand) {
	p.widths = p.widths[:0]
	p.preempts = p.preempts[:0]
	p.taken = p.taken[:0]
	p.prev = -1
}

func (p *pathAlg) Observe(ev sched.Event, _ *sched.State) { p.prev = ev.TID }

func (p *pathAlg) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	step := len(p.widths)
	p.widths = append(p.widths, len(e))
	prevEnabled := -1
	for i, tid := range e {
		if tid == p.prev {
			prevEnabled = i
		}
	}
	pre := make([]bool, len(e))
	for i := range e {
		pre[i] = prevEnabled >= 0 && i != prevEnabled
	}
	p.preempts = append(p.preempts, pre)

	var idx int
	switch {
	case step < len(p.prefix):
		idx = p.prefix[step]
		if idx >= len(e) {
			idx = 0 // stale prefix (should not happen on deterministic programs)
		}
	case prevEnabled >= 0:
		idx = prevEnabled // continue the running thread: no preemption
	default:
		idx = 0
	}
	p.taken = append(p.taken, idx)
	return e[idx]
}

// Explore runs the bounded DFS.
func Explore(prog func(*sched.Thread), opts Options) *Result {
	maxSched := opts.MaxSchedules
	if maxSched <= 0 {
		maxSched = 1_000_000
	}
	res := &Result{
		Interleavings: make(map[uint64]bool),
		Behaviors:     make(map[string]bool),
		Bugs:          make(map[string]int),
		Exhausted:     true,
	}
	type frame struct {
		prefix   []int
		preempts int // preemptions consumed by the prefix
	}
	stack := []frame{{}}
	alg := &pathAlg{}
	for len(stack) > 0 {
		if res.Schedules >= maxSched {
			res.Exhausted = false
			return res
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		alg.prefix = f.prefix
		r := sched.Run(prog, alg, sched.Options{Base: sched.Base{MaxSteps: opts.MaxSteps, ProgSeed: opts.ProgSeed}, TraceFilter: opts.TraceFilter, RecordTrace: opts.RecordTrace})
		res.Schedules++
		if opts.Observe != nil {
			opts.Observe(r)
		}
		if r.Truncated {
			res.Exhausted = false
		}
		res.Interleavings[r.InterleavingHash] = true
		if r.Behavior != "" {
			res.Behaviors[r.Behavior] = true
		}
		if r.Buggy() {
			res.Bugs[r.BugID()]++
		}
		// Branch on every unexplored alternative past the prefix. The
		// prefix's own preemption cost is carried in the frame; the
		// non-preemptive continuation adds none, so alternatives at step s
		// cost f.preempts plus their own preemption flag.
		for s := len(f.prefix); s < len(alg.widths); s++ {
			takenIdx := alg.taken[s]
			for c := 0; c < alg.widths[s]; c++ {
				if c == takenIdx {
					continue
				}
				cost := f.preempts
				if alg.preempts[s][c] {
					cost++
				}
				if opts.BoundPreemptions && cost > opts.PreemptionBound {
					continue
				}
				br := make([]int, s+1)
				copy(br, f.prefix)
				copy(br[len(f.prefix):], alg.taken[len(f.prefix):s])
				br[s] = c
				stack = append(stack, frame{prefix: br, preempts: cost})
			}
		}
	}
	return res
}

// Count exhaustively counts the feasible interleavings of a small program
// (convenience wrapper; ok=false when the budget ran out first).
func Count(prog func(*sched.Thread), maxSchedules int) (n int, ok bool) {
	r := Explore(prog, Options{MaxSchedules: maxSchedules})
	return len(r.Interleavings), r.Exhausted
}

// knuthAlg descends the schedule tree uniformly while accumulating the
// product of branching factors (Knuth's 1975 Monte Carlo tree-size
// estimator): the product is an unbiased estimate of the number of
// complete schedules.
type knuthAlg struct {
	rng     *rand.Rand
	product float64
}

func (k *knuthAlg) Name() string { return "knuth" }
func (k *knuthAlg) Begin(_ *sched.ProgramInfo, rng *rand.Rand) {
	k.rng = rng
	k.product = 1
}
func (k *knuthAlg) Observe(sched.Event, *sched.State) {}
func (k *knuthAlg) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	k.product *= float64(len(e))
	return e[k.rng.Intn(len(e))]
}

// EstimateSchedules returns Knuth's Monte Carlo estimate of the number of
// complete schedules of the program, averaged over the given number of
// random descents — the "more exhaustive but heavyweight" estimation §7
// points to when single-run profiling is too coarse. Note it counts
// schedules (decision paths), which coincides with interleavings for
// deterministic fixed-input programs.
func EstimateSchedules(prog func(*sched.Thread), samples int, seed int64, opts Options) float64 {
	if samples <= 0 {
		samples = 100
	}
	alg := &knuthAlg{}
	total := 0.0
	for i := 0; i < samples; i++ {
		sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed + int64(i), ProgSeed: opts.ProgSeed, MaxSteps: opts.MaxSteps}})
		total += alg.product
	}
	return total / float64(samples)
}
