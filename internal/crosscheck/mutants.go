package crosscheck

import (
	"fmt"
	"math/rand"
	"strings"

	"surw/internal/core"
	"surw/internal/experiments"
	"surw/internal/sched"
	"surw/internal/systematic"
)

// firstEnabled is a deliberately broken pickFrom policy: it always runs the
// first enabled thread. It concentrates all probability mass on one
// interleaving per program and must be rejected instantly by the gate.
type firstEnabled struct{}

func (firstEnabled) Name() string                            { return "mutant-first-enabled" }
func (firstEnabled) Begin(*sched.ProgramInfo, *rand.Rand)    {}
func (firstEnabled) Next(st *sched.State) sched.ThreadID     { return st.Enabled()[0] }
func (firstEnabled) Observe(ev sched.Event, st *sched.State) {}

// infoOverride feeds an algorithm a falsified profile, modelling a count-
// estimation bug (here: an off-by-one in one thread's event count). The
// wrapper forwards everything else untouched.
type infoOverride struct {
	sched.Algorithm
	info *sched.ProgramInfo
}

func (o infoOverride) Name() string { return "mutant-off-by-one(" + o.Algorithm.Name() + ")" }

func (o infoOverride) Begin(_ *sched.ProgramInfo, rng *rand.Rand) { o.Algorithm.Begin(o.info, rng) }

// ObserveSpawn must be forwarded explicitly: embedding the Algorithm
// interface hides the optional SpawnObserver extension.
func (o infoOverride) ObserveSpawn(parent, child sched.ThreadID, st *sched.State) {
	if so, ok := o.Algorithm.(sched.SpawnObserver); ok {
		so.ObserveSpawn(parent, child, st)
	}
}

// Mutant pairs a deliberately biased sampler with the reason it is broken.
type Mutant struct {
	Name string
	Alg  sched.Algorithm
}

// MutantVerdict is the gate's decision on one sampler.
type MutantVerdict struct {
	Name     string
	Gate     GateResult
	Rejected bool
}

// MutationReport is the outcome of a MutationSensitivity run.
type MutationReport struct {
	Real    MutantVerdict // the genuine URW, which must pass
	Mutants []MutantVerdict
	Classes int
	Trials  int
}

func (r *MutationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "uniformity gate over %d classes, %d trials:\n", r.Classes, r.Trials)
	fmt.Fprintf(&b, "  %-28s pass  (%s)\n", r.Real.Name, r.Real.Gate)
	for _, m := range r.Mutants {
		verdict := "REJECTED"
		if !m.Rejected {
			verdict = "escaped!"
		}
		fmt.Fprintf(&b, "  %-28s %s (%s)\n", m.Name, verdict, m.Gate)
	}
	return b.String()
}

// bitshiftK is the Figure 1 instance used by the self-test: C(10,5) = 252
// interleaving classes, small enough to enumerate and large enough that a
// biased sampler's chi-square statistic explodes.
const bitshiftK = 5

// bitshiftFilter projects fingerprints onto the worker threads' atomic
// updates — the counted events of the paper's uniformity claim. The
// blocking joins around them are excluded (URW's uniformity theorem
// assumes no blocking synchronization).
func bitshiftFilter(ev sched.Event) bool { return ev.Kind == sched.OpRMW }

// offByOneInfo is BitshiftInfo with one thread's event count overestimated
// by one — the paper's count estimates must be exact for URW's uniformity
// proof, and this models the smallest possible estimation bug.
func offByOneInfo() *sched.ProgramInfo {
	info := experiments.BitshiftInfo(bitshiftK)
	info.Events[1]++
	info.InterestingEvents[1]++
	info.TotalEvents++
	return info
}

// Mutants returns the seeded biased sampler variants. Each must be
// rejected by the uniformity gate for the oracle to count as sensitive.
func Mutants() []Mutant {
	return []Mutant{
		// Degenerate pickFrom: always the first enabled thread.
		{"first-enabled-pickfrom", firstEnabled{}},
		// Unweighted walk posing as a uniform sampler: uniform over
		// *threads* per step is far from uniform over *interleavings*.
		{"unweighted-random-walk", core.NewRandomWalk()},
		// Real URW driven by an off-by-one count estimate.
		{"off-by-one-count-estimate", infoOverride{Algorithm: core.NewURW(), info: offByOneInfo()}},
	}
}

// MutationSensitivity proves the statistical oracle has teeth: on the
// Figure 1 bit-shift program, the genuine URW must pass the chi-square
// uniformity gate at pFloor while every deliberately biased variant from
// Mutants must be rejected. trials <= 0 defaults to 3000 (about 12 samples
// per class). The returned report is non-nil whenever the run completed,
// even on gate failure.
func MutationSensitivity(trials int, seed int64, pFloor float64) (*MutationReport, error) {
	if trials <= 0 {
		trials = 3000
	}
	prog := experiments.Bitshift(bitshiftK)
	info := experiments.BitshiftInfo(bitshiftK)
	oracle := systematic.Explore(prog, systematic.Options{TraceFilter: bitshiftFilter})
	if !oracle.Exhausted {
		return nil, fmt.Errorf("crosscheck: bitshift(%d) enumeration not exhausted", bitshiftK)
	}
	rep := &MutationReport{Classes: len(oracle.Interleavings), Trials: trials}

	gate, err := Uniformity(prog, core.NewURW(), info, oracle.Interleavings, bitshiftFilter, trials, seed)
	if err != nil {
		return rep, err
	}
	rep.Real = MutantVerdict{Name: "URW (genuine)", Gate: gate, Rejected: gate.P < pFloor}
	if rep.Real.Rejected {
		return rep, fmt.Errorf("crosscheck: genuine URW rejected by its own gate (%s < %g) — gate miscalibrated or URW regressed", gate, pFloor)
	}

	for _, m := range Mutants() {
		gate, err := Uniformity(prog, m.Alg, info, oracle.Interleavings, bitshiftFilter, trials, seed)
		if err != nil {
			return rep, fmt.Errorf("crosscheck: mutant %s: %w", m.Name, err)
		}
		v := MutantVerdict{Name: m.Name, Gate: gate, Rejected: gate.P < pFloor}
		rep.Mutants = append(rep.Mutants, v)
		if !v.Rejected {
			return rep, fmt.Errorf("crosscheck: mutant %s escaped the uniformity gate (%s >= %g) — the oracle has no teeth", m.Name, gate, pFloor)
		}
	}
	return rep, nil
}
