package crosscheck

import (
	"fmt"

	"surw/internal/sched"
	"surw/internal/stats"
)

// GateResult reports one chi-square goodness-of-fit run of a sampler's
// empirical interleaving distribution against the enumerated uniform.
type GateResult struct {
	Trials  int
	Classes int
	Seen    int // distinct classes actually sampled
	Chi2    float64
	P       float64 // upper-tail p-value at Classes-1 degrees of freedom
}

func (g GateResult) String() string {
	return fmt.Sprintf("trials=%d classes=%d seen=%d chi2=%.1f p=%.4g",
		g.Trials, g.Classes, g.Seen, g.Chi2, g.P)
}

// Uniformity samples trials schedules of alg on prog and chi-square-tests
// the fingerprint tallies against a uniform distribution over the classes
// set (the exhaustively enumerated feasible interleavings, enumerated with
// the same filter). filter restricts which events fold into the
// fingerprint — the paper's uniformity claims are over the interleavings
// of the *counted* worker events, not of the blocking join/teardown events
// around them, so callers project both the enumeration and the samples
// onto that subset (nil = all events). Sampling a fingerprint outside
// classes is an immediate error — that is a legality violation, not a
// statistical fluctuation.
func Uniformity(prog func(*sched.Thread), alg sched.Algorithm, info *sched.ProgramInfo, classes map[uint64]bool, filter func(sched.Event) bool, trials int, seed int64) (GateResult, error) {
	g := GateResult{Trials: trials, Classes: len(classes)}
	if len(classes) < 2 {
		return g, fmt.Errorf("crosscheck: uniformity needs at least 2 classes, got %d", len(classes))
	}
	counts := make(map[uint64]int, len(classes))
	pool := sched.NewPool()
	for i := 0; i < trials; i++ {
		res := pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed + int64(i)}, Info: info, TraceFilter: filter})
		if res.Buggy() || res.Truncated {
			return g, fmt.Errorf("crosscheck: uniformity trial %d failed: buggy=%v truncated=%v", i, res.Buggy(), res.Truncated)
		}
		if !classes[res.InterleavingHash] {
			return g, fmt.Errorf("crosscheck: uniformity trial %d sampled fingerprint %#x outside the %d enumerated classes", i, res.InterleavingHash, len(classes))
		}
		counts[res.InterleavingHash]++
	}
	g.Seen = len(counts)
	tallies := make([]int, 0, len(counts))
	for _, c := range counts {
		tallies = append(tallies, c)
	}
	g.Chi2 = stats.ChiSquareUniform(tallies, len(classes))
	g.P = stats.ChiSquareSF(g.Chi2, len(classes)-1)
	return g, nil
}

// UniformityGate is Uniformity plus the pass/fail decision: the sampler
// passes iff the p-value clears pFloor. A truly uniform sampler fails a
// pFloor of α with probability α (pin seeds in CI); a biased one fails
// with overwhelming probability once trials ≫ classes.
func UniformityGate(prog func(*sched.Thread), alg sched.Algorithm, info *sched.ProgramInfo, classes map[uint64]bool, filter func(sched.Event) bool, trials int, seed int64, pFloor float64) (GateResult, error) {
	g, err := Uniformity(prog, alg, info, classes, filter, trials, seed)
	if err != nil {
		return g, err
	}
	if g.P < pFloor {
		return g, fmt.Errorf("crosscheck: %s rejected by the uniformity gate: %s < p-floor %g", alg.Name(), g, pFloor)
	}
	return g, nil
}

// EntropyOrder checks the Table 3 sanity ordering: over trials schedules,
// the interleaving-distribution entropy of a Δ-uniform sampler (SURW with
// Δ = Γ here, via info) must not fall below a plain random walk's. Returns
// both entropies in bits.
func EntropyOrder(prog func(*sched.Thread), surw, rw sched.Algorithm, info *sched.ProgramInfo, trials int, seed int64) (hSURW, hRW float64, err error) {
	sample := func(alg sched.Algorithm) (float64, error) {
		counts := make(map[uint64]int)
		pool := sched.NewPool()
		for i := 0; i < trials; i++ {
			res := pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed + int64(i)}, Info: info})
			if res.Buggy() || res.Truncated {
				return 0, fmt.Errorf("crosscheck: entropy trial %d under %s failed", i, alg.Name())
			}
			counts[res.InterleavingHash]++
		}
		return stats.EntropyOfMap(counts), nil
	}
	if hSURW, err = sample(surw); err != nil {
		return
	}
	if hRW, err = sample(rw); err != nil {
		return
	}
	if hSURW < hRW {
		err = fmt.Errorf("crosscheck: entropy ordering violated: H(%s)=%.3f < H(%s)=%.3f bits", surw.Name(), hSURW, rw.Name(), hRW)
	}
	return
}
