package crosscheck

// Schedule-equivalence oracle for the commutation-canonical class
// fingerprint (sched.Result.ClassHash). The engine computes the
// fingerprint incrementally with per-thread/per-object hash-clocks; this
// file re-derives the partition it induces from first principles — an
// explicit dependence graph over each recorded trace, canonicalized by a
// brute-force lexicographically-least linearization — and requires the two
// partitions of the exhaustively enumerated schedule space to coincide
// exactly. A fingerprint that merges two inequivalent schedules (false
// dedup: coverage silently lost) or splits one Mazurkiewicz class in two
// (false distinction: dedup buys nothing) fails here.
//
// The dependence relation, per DESIGN.md §11 (re-implemented here
// independently of internal/sched so the oracle does not inherit engine
// bugs):
//
//   - program order: events of the same thread;
//   - same-object conflicts: two events on the same shared object, unless
//     both are pure readers (OpRead, OpRLock, OpRUnlock);
//   - join edges: an OpJoin depends on every event of the joined thread
//     (joins carry the target's path hash in Event.ObjHash).
//
// Spawn edges need no explicit treatment when partitioning *feasible*
// traces: a child's events can never precede its spawn in any execution,
// so adding the edge never changes which enumerated traces are equivalent.

import (
	"fmt"
	"math/rand"

	"surw/internal/sched"
	"surw/internal/systematic"
)

// oracleReader mirrors (independently) the engine's reader classification:
// pure observers commute with each other on the same object.
func oracleReader(k sched.OpKind) bool {
	return k == sched.OpRead || k == sched.OpRLock || k == sched.OpRUnlock
}

// dependent is the symmetric dependence relation over events of one trace.
func dependent(a, b sched.Event) bool {
	if a.PathHash == b.PathHash {
		return true // program order
	}
	if a.Obj != 0 && a.Obj == b.Obj {
		return !(oracleReader(a.Kind) && oracleReader(b.Kind))
	}
	// Join edges: a join event carries the joined thread's path hash.
	if a.Kind == sched.OpJoin && a.ObjHash == b.PathHash {
		return true
	}
	if b.Kind == sched.OpJoin && b.ObjHash == a.PathHash {
		return true
	}
	return false
}

// eventLess is a total order on the distinct events of one trace, keyed on
// schedule-independent identity ((PathHash, Seq) is already unique).
func eventLess(a, b sched.Event) bool {
	if a.PathHash != b.PathHash {
		return a.PathHash < b.PathHash
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ObjHash < b.ObjHash
}

// oracleMix chains one event identity into a running canonical-form hash
// (same shape as the engine's interleaving mix, computed independently).
func oracleMix(h uint64, e sched.Event) uint64 {
	h = (h ^ e.PathHash) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	h = (h ^ (uint64(e.Kind)<<32 ^ e.ObjHash)) * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

// canonicalClassKey reduces a trace to the fingerprint of its canonical
// form: the lexicographically-least linearization of its dependence graph,
// built greedily by always emitting the minimal event (per eventLess)
// whose dependence predecessors have all been emitted. Two traces are
// happens-before equivalent iff they share a canonical form.
func canonicalClassKey(trace []sched.Event) uint64 {
	n := len(trace)
	succs := make([][]int, n)
	indeg := make([]int, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if dependent(trace[i], trace[j]) {
				succs[i] = append(succs[i], j)
				indeg[j]++
			}
		}
	}
	avail := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			avail = append(avail, i)
		}
	}
	const fnvOffset = 14695981039346656037
	h := uint64(fnvOffset)
	for len(avail) > 0 {
		best := 0
		for k := 1; k < len(avail); k++ {
			if eventLess(trace[avail[k]], trace[avail[best]]) {
				best = k
			}
		}
		i := avail[best]
		avail[best] = avail[len(avail)-1]
		avail = avail[:len(avail)-1]
		h = oracleMix(h, trace[i])
		for _, j := range succs[i] {
			if indeg[j]--; indeg[j] == 0 {
				avail = append(avail, j)
			}
		}
	}
	return h
}

// classPartition accumulates the double partition of an enumeration: every
// executed schedule lands in a fingerprint class (engine's ClassHash) and
// a canonical-form class (this file's ground truth). The oracle demands a
// bijection between the two.
type classPartition struct {
	byFingerprint map[uint64]uint64 // ClassHash -> canonical key first seen with it
	byCanonical   map[uint64]uint64 // canonical key -> ClassHash first seen with it
	err           error
}

func newClassPartition() *classPartition {
	return &classPartition{
		byFingerprint: make(map[uint64]uint64),
		byCanonical:   make(map[uint64]uint64),
	}
}

// observe folds one enumerated schedule into the partition, recording the
// first violation of the bijection.
func (c *classPartition) observe(r *sched.Result) {
	if c.err != nil {
		return
	}
	key := canonicalClassKey(r.Trace)
	if prev, ok := c.byFingerprint[r.ClassHash]; !ok {
		c.byFingerprint[r.ClassHash] = key
	} else if prev != key {
		c.err = fmt.Errorf("class fingerprint %#x merges two happens-before classes (canonical forms %#x and %#x) — false dedup", r.ClassHash, prev, key)
		return
	}
	if prev, ok := c.byCanonical[key]; !ok {
		c.byCanonical[key] = r.ClassHash
	} else if prev != r.ClassHash {
		c.err = fmt.Errorf("happens-before class %#x split across fingerprints %#x and %#x — false distinction", key, prev, r.ClassHash)
	}
}

// check reports the accumulated verdict: the bijection must hold and the
// class counts must match.
func (c *classPartition) check(name string) error {
	if c.err != nil {
		return fmt.Errorf("crosscheck: %s: %w", name, c.err)
	}
	if len(c.byFingerprint) != len(c.byCanonical) {
		return fmt.Errorf("crosscheck: %s: %d fingerprint classes vs %d happens-before classes", name, len(c.byFingerprint), len(c.byCanonical))
	}
	return nil
}

// scriptAlg drives the scheduler along a fixed TID sequence, one entry per
// executed event (forced steps consume entries too, via Observe). When the
// scripted thread is not enabled — the script is infeasible from here —
// it degrades to the lowest enabled TID; callers detect the divergence by
// comparing the resulting trace against the intended one. Used by the
// commutation property tests and FuzzClassFingerprint to execute a
// recorded trace with two adjacent events swapped.
type scriptAlg struct {
	script []sched.ThreadID
	step   int
}

func (s *scriptAlg) Name() string                             { return "script" }
func (s *scriptAlg) Begin(_ *sched.ProgramInfo, _ *rand.Rand) { s.step = 0 }
func (s *scriptAlg) Observe(ev sched.Event, _ *sched.State)   { s.step++ }
func (s *scriptAlg) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	if s.step < len(s.script) {
		want := s.script[s.step]
		for _, tid := range e {
			if tid == want {
				return tid
			}
		}
	}
	return e[0]
}

// classEquivalence is the tentpole oracle: exhaustively enumerate prog,
// and require the engine's ClassHash partition of the schedule space to
// coincide with the brute-force happens-before partition. Skipped (nil)
// when the enumeration budget runs out and AllowPartial is set, exactly
// like the legality check.
func classEquivalence(name string, prog func(*sched.Thread), opts Options) (classes int, err error) {
	part := newClassPartition()
	oracle := systematic.Explore(prog, systematic.Options{
		MaxSchedules: opts.MaxSchedules,
		RecordTrace:  true,
		Observe:      part.observe,
	})
	if !oracle.Exhausted {
		if opts.AllowPartial {
			return len(part.byFingerprint), nil
		}
		return 0, fmt.Errorf("crosscheck: %s: class-equivalence enumeration exceeded %d schedules", name, opts.MaxSchedules)
	}
	if err := part.check(name); err != nil {
		return 0, err
	}
	return len(part.byFingerprint), nil
}
