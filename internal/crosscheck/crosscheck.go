// Package crosscheck is the framework's differential and statistical
// oracle: it hunts for bugs in the *testing framework itself* rather than
// in programs under test. DESIGN.md promises that on the deterministic
// substrate "any failure or replay divergence is a framework bug"; this
// package is the harness that earns that claim.
//
// Three layers of checking, each against an independent ground truth:
//
//   - Legality (differential): for a generated program, systematic.Explore
//     enumerates the exact set of feasible interleaving fingerprints and
//     the exact set of reachable failures. Every randomized algorithm is
//     then run for many seeds, and every fingerprint it produces must be a
//     member of the enumerated set, and every failure it reports must be a
//     failure enumeration also reached. A sampler that invents an
//     interleaving (scheduler bug), misses a synchronization edge
//     (substrate bug), or reports a phantom deadlock (blocking-detection
//     bug) fails here.
//
//   - Replay and execution-identity: each checked schedule is recorded via
//     internal/replay and strictly replayed — the replay must be bit-exact
//     (fingerprint, Δ-fingerprint, behaviour, failure) with zero diagnosed
//     divergence — and re-executed on a warm sched.Pool and compared
//     field-for-field against the one-shot run. Parallel sessions
//     (runner.Config.Workers) are checked to be byte-identical to the
//     sequential loop, and a checkpointed, batched session (Pool.RunPrefix
//     / Pool.RunFrom on the fast engine) is checked byte-identical —
//     traces included — to the verbatim slow scheduling loop
//     (checkpoint.go in this package).
//
//   - Distribution (statistical): URW's sampled interleaving distribution
//     is chi-square-tested against the enumerated uniform, and SURW's
//     interleaving entropy is checked to dominate a plain random walk's.
//     MutationSensitivity seeds deliberately broken sampler variants and
//     requires the chi-square gate to reject every one of them, proving
//     the statistical layer has teeth.
//
// All entry points take explicit seeds, so CI runs are deterministic.
package crosscheck

import (
	"fmt"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/progfuzz"
	"surw/internal/replay"
	"surw/internal/runner"
	"surw/internal/sched"
	"surw/internal/systematic"
)

// Algorithms is the set of sampler names verified by CheckProgram, per the
// paper's evaluation roster.
func Algorithms() []string {
	return []string{"SURW", "URW", "POS", "RAPOS", "PCT-3", "RW", "N-U", "N-S"}
}

// Options bounds one CheckProgram run.
type Options struct {
	// Schedules is the number of randomized schedules checked per
	// algorithm (default 20).
	Schedules int
	// MaxSchedules caps the exhaustive enumeration (default 300,000).
	MaxSchedules int
	// Seed derives every per-schedule seed.
	Seed int64
	// Algorithms overrides the checked sampler set (default Algorithms()).
	Algorithms []string
	// AllowPartial skips the set-membership check (not the replay and
	// identity checks) when the enumeration budget runs out instead of
	// failing. Used by the fuzz target, where a mutated seed can produce a
	// program too large to enumerate.
	AllowPartial bool
	// SkipParallel skips the runner worker-identity check (it spawns
	// goroutines, which the fuzz engine's per-input budget dislikes).
	SkipParallel bool
}

func (o Options) normalized() Options {
	if o.Schedules <= 0 {
		o.Schedules = 20
	}
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 300_000
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = Algorithms()
	}
	return o
}

// Report summarizes one successful CheckProgram run.
type Report struct {
	Program       string
	Enumerated    int  // schedules the oracle executed
	Interleavings int  // distinct feasible fingerprints
	Classes       int  // distinct commutation classes (≤ Interleavings)
	Deadlocky     bool // the oracle reached a deadlock
	Checked       int  // randomized schedules verified across algorithms
}

// CheckProgram cross-checks every algorithm against the exhaustively
// enumerated schedule space of prog. expectDeadlock is the generator's
// computed oracle: the enumeration must reach a deadlock iff it is set,
// and must reach no other failure kind either way.
func CheckProgram(name string, prog func(*sched.Thread), expectDeadlock bool, opts Options) (*Report, error) {
	opts = opts.normalized()
	oracle := systematic.Explore(prog, systematic.Options{MaxSchedules: opts.MaxSchedules})
	if !oracle.Exhausted && !opts.AllowPartial {
		return nil, fmt.Errorf("crosscheck: %s: schedule space exceeds %d schedules; shrink the program or raise MaxSchedules", name, opts.MaxSchedules)
	}
	rep := &Report{
		Program:       name,
		Enumerated:    oracle.Schedules,
		Interleavings: len(oracle.Interleavings),
		Deadlocky:     oracle.Bugs["deadlock"] > 0,
	}
	if oracle.Exhausted {
		if expectDeadlock && oracle.Bugs["deadlock"] == 0 {
			return nil, fmt.Errorf("crosscheck: %s: generator oracle expects a deadlock but enumeration of %d schedules found none", name, oracle.Schedules)
		}
		for id := range oracle.Bugs {
			if !expectDeadlock || id != "deadlock" {
				return nil, fmt.Errorf("crosscheck: %s: enumeration reached unexpected failure %q (generator oracle promises %s)", name, id, describeExpectation(expectDeadlock))
			}
		}
	}

	// A single profiling census feeds every estimate-driven algorithm;
	// Δ = Γ keeps SURW's selection deterministic per program.
	prof, err := profile.Collect(prog, profile.Options{Base: sched.Base{Seed: opts.Seed ^ 0x5eed}})
	if err != nil {
		return nil, fmt.Errorf("crosscheck: %s: profiling: %w", name, err)
	}
	info := prof.Instantiate(prof.SelectAll())

	pool := sched.NewPool()
	for _, algName := range opts.Algorithms {
		alg, err := core.New(algName)
		if err != nil {
			return nil, fmt.Errorf("crosscheck: %s: %w", name, err)
		}
		for i := 0; i < opts.Schedules; i++ {
			so := sched.Options{Base: sched.Base{Seed: opts.Seed + int64(i)*7919 + 1}, Info: info}
			res, rec := replay.Record(prog, alg, so)
			if res.Truncated {
				return nil, fmt.Errorf("crosscheck: %s: %s seed %d: schedule truncated at %d steps", name, algName, so.Seed, res.Steps)
			}
			if oracle.Exhausted {
				if !oracle.Interleavings[res.InterleavingHash] {
					return nil, fmt.Errorf("crosscheck: %s: %s seed %d produced fingerprint %#x outside the %d enumerated interleavings — scheduler or substrate bug", name, algName, so.Seed, res.InterleavingHash, len(oracle.Interleavings))
				}
				if res.Buggy() && oracle.Bugs[res.BugID()] == 0 {
					return nil, fmt.Errorf("crosscheck: %s: %s seed %d reported failure %q that exhaustive enumeration never reached", name, algName, so.Seed, res.BugID())
				}
			}
			replayed, rerr := replay.ReplayStrict(prog, rec, so)
			if rerr != nil {
				return nil, fmt.Errorf("crosscheck: %s: %s seed %d: %w", name, algName, so.Seed, rerr)
			}
			if d := diffResults(res, replayed); d != "" {
				return nil, fmt.Errorf("crosscheck: %s: %s seed %d: replay diverged: %s", name, algName, so.Seed, d)
			}
			pooled := pool.Run(prog, alg, so)
			if d := diffResults(res, pooled); d != "" {
				return nil, fmt.Errorf("crosscheck: %s: %s seed %d: pooled run diverged: %s", name, algName, so.Seed, d)
			}
			rep.Checked++
		}
	}

	if err := checkpointIdentity(name, prog, info, opts); err != nil {
		return nil, err
	}

	// Class-equivalence oracle: the ClassHash partition of the enumerated
	// schedule space must coincide with the brute-force happens-before
	// partition (classes.go).
	nClasses, err := classEquivalence(name, prog, opts)
	if err != nil {
		return nil, err
	}
	rep.Classes = nClasses
	if oracle.Exhausted && nClasses > rep.Interleavings {
		return nil, fmt.Errorf("crosscheck: %s: %d commutation classes exceed %d interleavings — the class fingerprint split an interleaving", name, nClasses, rep.Interleavings)
	}

	if !opts.SkipParallel {
		if err := parallelIdentity(name, prog, opts); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func describeExpectation(deadlock bool) string {
	if deadlock {
		return "deadlock only"
	}
	return "no failure"
}

// diffResults compares the observable fields of two schedules of the same
// (program, algorithm, seed) and names the first mismatch.
func diffResults(a, b *sched.Result) string {
	switch {
	case a.InterleavingHash != b.InterleavingHash:
		return fmt.Sprintf("fingerprint %#x vs %#x", a.InterleavingHash, b.InterleavingHash)
	case a.ClassHash != b.ClassHash:
		return fmt.Sprintf("class fingerprint %#x vs %#x", a.ClassHash, b.ClassHash)
	case a.DeltaHash != b.DeltaHash:
		return fmt.Sprintf("Δ-fingerprint %#x vs %#x", a.DeltaHash, b.DeltaHash)
	case a.Behavior != b.Behavior:
		return fmt.Sprintf("behaviour %q vs %q", a.Behavior, b.Behavior)
	case a.Steps != b.Steps:
		return fmt.Sprintf("steps %d vs %d", a.Steps, b.Steps)
	case a.Truncated != b.Truncated:
		return fmt.Sprintf("truncated %v vs %v", a.Truncated, b.Truncated)
	case a.BugID() != b.BugID():
		return fmt.Sprintf("bug %q vs %q", a.BugID(), b.BugID())
	}
	return ""
}

// parallelIdentity runs the same session batch sequentially and fanned over
// workers and requires byte-identical results (the confinement argument of
// runner/parallel.go, checked end to end).
func parallelIdentity(name string, prog func(*sched.Thread), opts Options) error {
	tgt := runner.Target{Name: name, Prog: prog}
	cfg := runner.Config{
		Sessions: 3,
		Limit:    opts.Schedules,
		Seed:     opts.Seed + 101,
		Coverage: true, CoverageEvery: 5,
	}
	cfg.Workers = 1
	seq, err := runner.RunTarget(tgt, "URW", cfg)
	if err != nil {
		return fmt.Errorf("crosscheck: %s: sequential runner: %w", name, err)
	}
	cfg.Workers = 3
	par, err := runner.RunTarget(tgt, "URW", cfg)
	if err != nil {
		return fmt.Errorf("crosscheck: %s: parallel runner: %w", name, err)
	}
	if !seq.Equal(par) {
		return fmt.Errorf("crosscheck: %s: parallel sessions (workers=3) diverged from the sequential loop", name)
	}
	return nil
}

// genConfig keeps generated programs small enough for exhaustive
// enumeration while still covering every synchronization object.
// MinThreads forces real concurrency (a sequential program has exactly one
// interleaving and checks nothing); MaxOps 3 keeps the worst-case free
// interleaving space within the enumeration budget.
var genConfig = progfuzz.Config{
	MaxThreads: 3,
	MinThreads: 3,
	MaxOps:     3,
	Vars:       2,
	Mutexes:    2,
	SpawnDepth: 1,
	Channels:   2,
	Semaphores: 1,
	Gates:      1,
}

// genSyncConfig caps the sync-object grammar at two threads: its channel
// sends and semaphore Vs never block (capacity covers production), so a
// third concurrent thread multiplies the free interleaving space past any
// practical enumeration budget, while two threads stay under ~10^5
// schedules for every seed measured.
var genSyncConfig = progfuzz.Config{
	MaxThreads: 2,
	MinThreads: 2,
	MaxOps:     3,
	Vars:       2,
	Mutexes:    2,
	SpawnDepth: 1,
	Channels:   2,
	Semaphores: 1,
	Gates:      1,
}

// CheckGenerated cross-checks the three generator grammars at one seed:
// the mutex grammar (Gen), the full synchronization-object grammar
// (GenSync), and the deadlock-capable grammar (GenDeadlock) with its
// computed expected-deadlock oracle.
func CheckGenerated(seed int64, opts Options) ([]*Report, error) {
	var reps []*Report
	check := func(name string, prog func(*sched.Thread), expectDeadlock bool) error {
		rep, err := CheckProgram(fmt.Sprintf("%s(seed=%d)", name, seed), prog, expectDeadlock, opts)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
		return nil
	}
	if err := check("gen", progfuzz.Gen(seed, genConfig).Prog(), false); err != nil {
		return reps, err
	}
	if err := check("gensync", progfuzz.GenSync(seed, genSyncConfig).Prog(), false); err != nil {
		return reps, err
	}
	dl, expect := progfuzz.GenDeadlock(seed, genConfig)
	if err := check("gendeadlock", dl.Prog(), expect); err != nil {
		return reps, err
	}
	return reps, nil
}
