package crosscheck

// Snapshot-identity oracle for prefix checkpointing (sched.Pool.RunPrefix /
// RunFrom) and the batched run-to-next-decision engine. DESIGN.md promises
// both fast paths are pure performance: a checkpointed, batched session
// must be indistinguishable — traces, fingerprints, bug IDs, aggregates —
// from the verbatim slow scheduling loop. This file earns that claim per
// generated program: every CheckProgram run re-executes a session of
// schedules through both paths and diffs the results byte for byte.

import (
	"fmt"

	"surw/internal/core"
	"surw/internal/sched"
)

// checkpointAlgs are the samplers the snapshot-identity check runs:
// RW exercises the IndexChooser/SourceChooser fast path, SURW the
// profile-driven path (Info predicates, Δ hashing, spawn observation).
var checkpointAlgs = []string{"RW", "SURW"}

// checkpointIdentity runs opts.Schedules schedules of prog per algorithm
// through two arms sharing seeds: the checkpointed arm captures the forced
// prefix on the first schedule (RunPrefix) and replays it on the rest
// (RunFrom), all on the batched engine; the reference arm forces the slow
// loop with DisableBatching and no checkpoint. Full traces are recorded on
// both sides and every observable field must match exactly, as must the
// aggregated fingerprint multisets.
func checkpointIdentity(name string, prog func(*sched.Thread), info *sched.ProgramInfo, opts Options) error {
	for _, algName := range checkpointAlgs {
		fastAlg, err := core.New(algName)
		if err != nil {
			return fmt.Errorf("crosscheck: %s: %w", name, err)
		}
		slowAlg, err := core.New(algName)
		if err != nil {
			return fmt.Errorf("crosscheck: %s: %w", name, err)
		}
		fastPool, slowPool := sched.NewPool(), sched.NewPool()
		var cp *sched.Checkpoint
		fastIlv, slowIlv := map[uint64]int{}, map[uint64]int{}
		for i := 0; i < opts.Schedules; i++ {
			so := sched.Options{Base: sched.Base{Seed: opts.Seed + int64(i)*104729 + 3}, Info: info, RecordTrace: true}
			var fast *sched.Result
			if i == 0 {
				fast, cp = fastPool.RunPrefix(prog, fastAlg, so)
			} else {
				fast = fastPool.RunFrom(cp, prog, fastAlg, so)
			}
			sos := so
			sos.DisableBatching = true
			slow := slowPool.Run(prog, slowAlg, sos)
			if d := diffResults(fast, slow); d != "" {
				return fmt.Errorf("crosscheck: %s: %s seed %d: checkpointed run diverged from slow loop: %s", name, algName, so.Seed, d)
			}
			if d := diffTraces(fast.Trace, slow.Trace); d != "" {
				return fmt.Errorf("crosscheck: %s: %s seed %d: checkpointed trace diverged from slow loop: %s", name, algName, so.Seed, d)
			}
			fastIlv[fast.InterleavingHash]++
			slowIlv[slow.InterleavingHash]++
			fastIlv[fast.ClassHash]++
			slowIlv[slow.ClassHash]++
		}
		if len(fastIlv) != len(slowIlv) {
			return fmt.Errorf("crosscheck: %s: %s: aggregate interleaving counts diverged: %d vs %d", name, algName, len(fastIlv), len(slowIlv))
		}
		for h, n := range fastIlv {
			if slowIlv[h] != n {
				return fmt.Errorf("crosscheck: %s: %s: aggregate count for fingerprint %#x diverged: %d vs %d", name, algName, h, n, slowIlv[h])
			}
		}
	}
	return nil
}

// diffTraces names the first mismatch between two recorded event streams.
func diffTraces(a, b []sched.Event) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	return ""
}
