package crosscheck

import (
	"testing"

	"surw/internal/core"
	"surw/internal/progfuzz"
	"surw/internal/sched"
)

// FuzzGeneratedProgram feeds fuzzed (seed, grammar) pairs through the full
// differential oracle: generate a program, enumerate its schedule space,
// and require every sampler to stay inside it, replay bit-exactly, and
// match pooled execution. The fuzzer's job is to find a generator seed
// whose program breaks the framework; any crash here is a real bug in
// either the generators or the scheduler substrate.
func FuzzGeneratedProgram(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(7), int64(1))
	f.Add(int64(3), int64(2))
	f.Add(int64(18), int64(2)) // historically the largest deadlock space
	f.Add(int64(-9000), int64(1))
	f.Fuzz(func(t *testing.T, seed, grammar int64) {
		opts := Options{
			Schedules:    3,
			MaxSchedules: 50_000,
			Seed:         seed ^ 0x9e3779b9,
			Algorithms:   []string{"RW", "URW", "SURW", "POS"},
			AllowPartial: true, // mutated seeds may outgrow the enumeration budget
			SkipParallel: true, // keep per-input cost down for the fuzz engine
		}
		var err error
		switch g := grammar % 3; g {
		case 0:
			_, err = CheckProgram("fuzz-gen", progfuzz.Gen(seed, genConfig).Prog(), false, opts)
		case 1:
			_, err = CheckProgram("fuzz-gensync", progfuzz.GenSync(seed, genSyncConfig).Prog(), false, opts)
		default:
			p, expect := progfuzz.GenDeadlock(seed, genConfig)
			_, err = CheckProgram("fuzz-gendeadlock", p.Prog(), expect, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzClassFingerprint is the commutation metamorphic property as a native
// fuzz target: generate a program, record one schedule, swap the adjacent
// event pair the fuzzer points at, and — when the swapped order is
// feasible — require the class fingerprint to be invariant exactly for
// independent pairs. The fuzzer's job is to find a (program, schedule,
// swap) triple where the incremental hash-clocks disagree with the
// dependence relation.
func FuzzClassFingerprint(f *testing.F) {
	f.Add(int64(1), int64(3), uint16(0), byte(0))
	f.Add(int64(2), int64(11), uint16(5), byte(1))
	f.Add(int64(7), int64(0), uint16(9), byte(0))
	f.Add(int64(18), int64(4), uint16(2), byte(1))
	f.Add(int64(-9000), int64(101), uint16(33), byte(0))
	f.Fuzz(func(t *testing.T, seed, algSeed int64, swap uint16, grammar byte) {
		var prog func(*sched.Thread)
		if grammar%2 == 0 {
			prog = progfuzz.Gen(seed, genConfig).Prog()
		} else {
			prog = progfuzz.GenSync(seed, genSyncConfig).Prog()
		}
		base := sched.Run(prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: algSeed}, RecordTrace: true})
		if len(base.Trace) < 2 {
			t.Skip("schedule too short to swap")
		}
		i := int(swap) % (len(base.Trace) - 1)
		a, b := base.Trace[i], base.Trace[i+1]
		if a.TID == b.TID {
			t.Skip("program-order pair")
		}
		res, feasible := trySwap(prog, base, i)
		if !feasible {
			t.Skip("swapped order infeasible")
		}
		if dependent(a, b) {
			if res.ClassHash == base.ClassHash {
				t.Fatalf("swapping dependent events %v / %v preserved class fingerprint %#x", a, b, base.ClassHash)
			}
		} else if res.ClassHash != base.ClassHash {
			t.Fatalf("swapping independent events %v / %v changed class fingerprint %#x -> %#x", a, b, base.ClassHash, res.ClassHash)
		}
	})
}
