package crosscheck

import (
	"testing"

	"surw/internal/progfuzz"
)

// FuzzGeneratedProgram feeds fuzzed (seed, grammar) pairs through the full
// differential oracle: generate a program, enumerate its schedule space,
// and require every sampler to stay inside it, replay bit-exactly, and
// match pooled execution. The fuzzer's job is to find a generator seed
// whose program breaks the framework; any crash here is a real bug in
// either the generators or the scheduler substrate.
func FuzzGeneratedProgram(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(7), int64(1))
	f.Add(int64(3), int64(2))
	f.Add(int64(18), int64(2)) // historically the largest deadlock space
	f.Add(int64(-9000), int64(1))
	f.Fuzz(func(t *testing.T, seed, grammar int64) {
		opts := Options{
			Schedules:    3,
			MaxSchedules: 50_000,
			Seed:         seed ^ 0x9e3779b9,
			Algorithms:   []string{"RW", "URW", "SURW", "POS"},
			AllowPartial: true, // mutated seeds may outgrow the enumeration budget
			SkipParallel: true, // keep per-input cost down for the fuzz engine
		}
		var err error
		switch g := grammar % 3; g {
		case 0:
			_, err = CheckProgram("fuzz-gen", progfuzz.Gen(seed, genConfig).Prog(), false, opts)
		case 1:
			_, err = CheckProgram("fuzz-gensync", progfuzz.GenSync(seed, genSyncConfig).Prog(), false, opts)
		default:
			p, expect := progfuzz.GenDeadlock(seed, genConfig)
			_, err = CheckProgram("fuzz-gendeadlock", p.Prog(), expect, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}
