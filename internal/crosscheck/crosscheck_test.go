package crosscheck

import (
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/experiments"
	"surw/internal/progfuzz"
	"surw/internal/sched"
	"surw/internal/systematic"
)

// TestCheckGeneratedSeeds is the differential oracle end to end: for a
// sweep of generator seeds, every algorithm on every grammar must stay
// inside the enumerated interleaving set, replay bit-exactly, and match
// pooled and parallel execution.
func TestCheckGeneratedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed differential sweep")
	}
	concurrent := 0
	for seed := int64(1); seed <= 5; seed++ {
		reps, err := CheckGenerated(seed, Options{Schedules: 8, Seed: 42 + seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 3 {
			t.Fatalf("seed %d: %d grammars checked, want 3", seed, len(reps))
		}
		for _, rep := range reps {
			if rep.Checked == 0 || rep.Interleavings == 0 {
				t.Fatalf("seed %d: empty report %+v", seed, rep)
			}
			if rep.Interleavings > 1 {
				concurrent++
			}
		}
	}
	// A sweep of sequential programs would pass every check vacuously; the
	// MinThreads floor in the generator configs exists to prevent that.
	if concurrent < 10 {
		t.Fatalf("only %d of 15 generated programs had more than one interleaving — the differential sweep is near-vacuous", concurrent)
	}
}

// TestCheckProgramFlagsPhantomFailure: a program with a reachable assert
// failure violates the generators' no-failure promise, and CheckProgram
// must say so rather than bless it.
func TestCheckProgramFlagsPhantomFailure(t *testing.T) {
	racy := func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		h := t.Go(func(w *sched.Thread) { x.Store(w, 1) })
		t.Assert(x.Load(t) == 0, "saw-write")
		t.Join(h)
	}
	_, err := CheckProgram("racy", racy, false, Options{Schedules: 4, SkipParallel: true})
	if err == nil || !strings.Contains(err.Error(), "unexpected failure") {
		t.Fatalf("phantom failure not flagged: %v", err)
	}
}

// TestCheckProgramFlagsWrongDeadlockOracle: claiming a deadlocking program
// is deadlock-free (or vice versa) must fail the check — this is exactly
// the class of generator bug the expected-deadlock oracle exists to catch.
func TestCheckProgramFlagsWrongDeadlockOracle(t *testing.T) {
	var deadlocky *progfuzz.Program
	var safe *progfuzz.Program
	for seed := int64(0); deadlocky == nil || safe == nil; seed++ {
		p, expect := progfuzz.GenDeadlock(seed, genConfig)
		if expect && deadlocky == nil {
			deadlocky = p
		}
		if !expect && safe == nil {
			safe = p
		}
	}
	opts := Options{Schedules: 2, Algorithms: []string{"RW"}, SkipParallel: true}
	if _, err := CheckProgram("lying-safe", deadlocky.Prog(), false, opts); err == nil ||
		!strings.Contains(err.Error(), "unexpected failure") {
		t.Fatalf("deadlocking program accepted as safe: %v", err)
	}
	if _, err := CheckProgram("lying-deadlocky", safe.Prog(), true, opts); err == nil ||
		!strings.Contains(err.Error(), "found none") {
		t.Fatalf("safe program accepted as deadlocking: %v", err)
	}
}

// TestURWBitshiftUniformityRegression is the Figure 2 claim as a unit
// test: URW's empirical distribution over the 252 interleaving classes of
// the Figure 1 bit-shift program passes a chi-square goodness-of-fit test
// against uniform. Pinned seed; the p-floor leaves the expected CI flake
// rate at zero (re-pin the seed if the sampler legitimately changes).
func TestURWBitshiftUniformityRegression(t *testing.T) {
	prog := experiments.Bitshift(5)
	oracle := systematic.Explore(prog, systematic.Options{TraceFilter: bitshiftFilter})
	if !oracle.Exhausted {
		t.Fatal("bitshift(5) enumeration not exhausted")
	}
	if len(oracle.Interleavings) != 252 {
		t.Fatalf("bitshift(5) has %d worker-event interleavings, want C(10,5) = 252", len(oracle.Interleavings))
	}
	gate, err := UniformityGate(prog, core.NewURW(), experiments.BitshiftInfo(5),
		oracle.Interleavings, bitshiftFilter, 5000, 7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if gate.Seen != 252 {
		t.Fatalf("URW reached only %d of 252 classes in %d trials", gate.Seen, gate.Trials)
	}
	t.Logf("URW uniformity: %s", gate)
}

// TestEntropyOrderSanity: SURW's interleaving entropy dominates a plain
// random walk's on the bit-shift program (Table 3's ordering).
func TestEntropyOrderSanity(t *testing.T) {
	hS, hR, err := EntropyOrder(experiments.Bitshift(5), core.NewSURW(), core.NewRandomWalk(),
		experiments.BitshiftInfo(5), 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("H(SURW)=%.3f H(RW)=%.3f bits (max=log2(252)=7.977)", hS, hR)
}

// TestMutationSensitivity: the gate must accept the genuine URW and reject
// every deliberately biased variant — the self-test that proves the
// statistical oracle can actually fail.
func TestMutationSensitivity(t *testing.T) {
	rep, err := MutationSensitivity(3000, 19, 0.005)
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	if len(rep.Mutants) != len(Mutants()) {
		t.Fatalf("only %d of %d mutants were run", len(rep.Mutants), len(Mutants()))
	}
	t.Logf("\n%s", rep)
}

// TestUniformityRejectsIllegalSample: a sampler that leaves the enumerated
// class set is a legality violation, reported as an error rather than
// folded into the statistic.
func TestUniformityRejectsIllegalSample(t *testing.T) {
	prog := experiments.Bitshift(2)
	oracle := systematic.Explore(prog, systematic.Options{})
	// Poisoned class set: drop one real class so some trial must land
	// outside it.
	poisoned := make(map[uint64]bool)
	n := 0
	for h := range oracle.Interleavings {
		if n > 0 {
			poisoned[h] = true
		}
		n++
	}
	_, err := Uniformity(prog, core.NewRandomWalk(), nil, poisoned, nil, 200, 3)
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("illegal sample not reported: %v", err)
	}
}
