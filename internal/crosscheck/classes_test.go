package crosscheck

import (
	"testing"

	"surw/internal/core"
	"surw/internal/progfuzz"
	"surw/internal/sched"
)

// The commutation property tests: for progfuzz-generated programs, replay
// a recorded schedule with two *adjacent* events swapped (when the swapped
// order is feasible) and require the class fingerprint to be preserved for
// independent pairs and changed for dependent pairs. This is the
// metamorphic form of the Mazurkiewicz-trace contract, checked against the
// live engine rather than a reference implementation: both orders really
// execute, so the invariance covers the incremental hash-clocks, spawn
// seeding and object accumulators end to end.

// runScripted executes prog along the given per-event TID script and
// reports whether the executed trace is exactly want (the script is only a
// steering hint: infeasible scripts degrade and are detected here).
func runScripted(prog func(*sched.Thread), script []sched.ThreadID, want []sched.Event) (*sched.Result, bool) {
	res := sched.Run(prog, &scriptAlg{script: script}, sched.Options{RecordTrace: true})
	if len(res.Trace) != len(want) {
		return res, false
	}
	for i := range want {
		if res.Trace[i] != want[i] {
			return res, false
		}
	}
	return res, true
}

// trySwap re-executes base's schedule with events i and i+1 swapped.
// feasible is false when the swapped order cannot be executed (the events
// do not commute operationally, or thread/object creation order shifted).
func trySwap(prog func(*sched.Thread), base *sched.Result, i int) (res *sched.Result, feasible bool) {
	script := make([]sched.ThreadID, len(base.Trace))
	for k, ev := range base.Trace {
		script[k] = ev.TID
	}
	script[i], script[i+1] = script[i+1], script[i]
	want := append([]sched.Event(nil), base.Trace...)
	want[i], want[i+1] = want[i+1], want[i]
	return runScripted(prog, script, want)
}

type swapStats struct {
	indep int // feasible independent swaps checked
	dep   int // feasible dependent swaps checked
}

// checkCommutation records one schedule of prog and sweeps every adjacent
// cross-thread pair, asserting the metamorphic property on each feasible
// swap.
func checkCommutation(t *testing.T, name string, prog func(*sched.Thread), seed int64, st *swapStats) {
	t.Helper()
	base := sched.Run(prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}, RecordTrace: true})
	// The unswapped script must reproduce the base schedule bit-exactly —
	// otherwise every "infeasible swap" skip below is suspect.
	script := make([]sched.ThreadID, len(base.Trace))
	for k, ev := range base.Trace {
		script[k] = ev.TID
	}
	rerun, ok := runScripted(prog, script, base.Trace)
	if !ok || rerun.ClassHash != base.ClassHash || rerun.InterleavingHash != base.InterleavingHash {
		t.Fatalf("%s seed %d: scripted replay of the unswapped schedule diverged", name, seed)
	}
	for i := 0; i+1 < len(base.Trace); i++ {
		a, b := base.Trace[i], base.Trace[i+1]
		if a.TID == b.TID {
			continue // program order: unswappable by definition
		}
		res, feasible := trySwap(prog, base, i)
		if !feasible {
			continue
		}
		if dependent(a, b) {
			st.dep++
			if res.ClassHash == base.ClassHash {
				t.Fatalf("%s seed %d: swapping dependent events %d/%d (%v, %v) preserved class fingerprint %#x",
					name, seed, i, i+1, a, b, base.ClassHash)
			}
		} else {
			st.indep++
			if res.ClassHash != base.ClassHash {
				t.Fatalf("%s seed %d: swapping independent events %d/%d (%v, %v) changed class fingerprint %#x -> %#x",
					name, seed, i, i+1, a, b, base.ClassHash, res.ClassHash)
			}
			if res.InterleavingHash == base.InterleavingHash {
				t.Fatalf("%s seed %d: swapping events %d/%d did not change the order-sensitive fingerprint — the swap was a no-op", name, seed, i, i+1)
			}
		}
	}
}

// TestClassFingerprintCommutation drives the metamorphic property over
// both generator grammars and a sweep of program and schedule seeds, and
// requires the sweep to be non-vacuous in both directions (enough feasible
// independent and dependent swaps were actually exercised).
func TestClassFingerprintCommutation(t *testing.T) {
	st := &swapStats{}
	for seed := int64(1); seed <= 20; seed++ {
		for algSeed := int64(0); algSeed < 5; algSeed++ {
			s := seed*1009 + algSeed*31
			checkCommutation(t, "gen", progfuzz.Gen(seed, genConfig).Prog(), s, st)
			checkCommutation(t, "gensync", progfuzz.GenSync(seed, genSyncConfig).Prog(), s+7, st)
		}
	}
	if st.indep < 200 || st.dep < 30 {
		t.Fatalf("near-vacuous sweep: only %d independent and %d dependent feasible swaps checked", st.indep, st.dep)
	}
	t.Logf("checked %d independent and %d dependent adjacent swaps", st.indep, st.dep)
}

// TestCanonicalClassKeyJoinEdge pins the join edge of the oracle's
// dependence relation: a join and the joined thread's last event must not
// commute even though they share no object.
func TestCanonicalClassKeyJoinEdge(t *testing.T) {
	prog := func(root *sched.Thread) {
		x := root.NewVar("x", 0)
		h := root.Go(func(w *sched.Thread) { w.Yield(); _ = x.Load(w) })
		root.Yield()
		root.Join(h)
	}
	res := sched.Run(prog, nil, sched.Options{RecordTrace: true})
	var join, last sched.Event
	for _, ev := range res.Trace {
		if ev.Kind == sched.OpJoin {
			join = ev
		}
	}
	if join.Kind != sched.OpJoin {
		t.Fatal("no join event recorded")
	}
	for _, ev := range res.Trace {
		if ev.PathHash == join.ObjHash {
			last = ev
		}
	}
	if last.Kind == sched.OpInvalid {
		t.Fatal("join's ObjHash does not resolve to the joined thread's events — traces are not self-describing")
	}
	if !dependent(join, last) || !dependent(last, join) {
		t.Fatal("join edge missing from the dependence relation")
	}
}
