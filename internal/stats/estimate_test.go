package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// Closed-form fixtures, hand-computed:
//
//	counts [1 1 2 3]: n=7, f1=2, f2=1, Sobs=4
//	  GT unseen  = 2/7
//	  GT coverage = 5/7
//	  Chao1 = 4 + 2²/(2·1) = 6
//	  Chao1 coverage = 4/6
func TestEstimatorsClosedForm(t *testing.T) {
	counts := []int{1, 1, 2, 3}
	if n, f1, f2 := FreqOfFreq(counts); n != 7 || f1 != 2 || f2 != 1 {
		t.Fatalf("FreqOfFreq = (%d,%d,%d), want (7,2,1)", n, f1, f2)
	}
	if got := GoodTuringUnseen(counts); !almost(got, 2.0/7) {
		t.Fatalf("GoodTuringUnseen = %v, want 2/7", got)
	}
	if got := GoodTuringCoverage(counts); !almost(got, 5.0/7) {
		t.Fatalf("GoodTuringCoverage = %v, want 5/7", got)
	}
	if got := Chao1(counts); !almost(got, 6) {
		t.Fatalf("Chao1 = %v, want 6", got)
	}
	if got := Chao1Coverage(counts); !almost(got, 4.0/6) {
		t.Fatalf("Chao1Coverage = %v, want 2/3", got)
	}
}

// No doubletons: the bias-corrected form Sobs + f1(f1−1)/2 applies.
//
//	counts [1 1 1]: Sobs=3, f1=3, f2=0 → Chao1 = 3 + 3·2/2 = 6
func TestChao1NoDoubletons(t *testing.T) {
	if got := Chao1([]int{1, 1, 1}); !almost(got, 6) {
		t.Fatalf("Chao1([1 1 1]) = %v, want 6", got)
	}
	// A single singleton: 1 + 1·0/2 = 1.
	if got := Chao1([]int{1}); !almost(got, 1) {
		t.Fatalf("Chao1([1]) = %v, want 1", got)
	}
}

// No singletons at all: the estimators declare the space exhausted.
//
//	counts [2 3]: f1=0 → unseen 0, coverage 1, Chao1 = Sobs = 2
func TestEstimatorsSaturated(t *testing.T) {
	counts := []int{2, 3}
	if got := GoodTuringUnseen(counts); got != 0 {
		t.Fatalf("unseen = %v, want 0", got)
	}
	if got := GoodTuringCoverage(counts); got != 1 {
		t.Fatalf("coverage = %v, want 1", got)
	}
	if got := Chao1(counts); !almost(got, 2) {
		t.Fatalf("Chao1 = %v, want 2", got)
	}
	if got := Chao1Coverage(counts); !almost(got, 1) {
		t.Fatalf("Chao1Coverage = %v, want 1", got)
	}
}

// Degenerate inputs must stay finite and sensible.
func TestEstimatorsEmpty(t *testing.T) {
	for _, counts := range [][]int{nil, {}, {0, -1}} {
		if got := GoodTuringUnseen(counts); got != 1 {
			t.Fatalf("unseen(%v) = %v, want 1", counts, got)
		}
		if got := GoodTuringCoverage(counts); got != 0 {
			t.Fatalf("coverage(%v) = %v, want 0", counts, got)
		}
		if got := Chao1(counts); got != 0 {
			t.Fatalf("Chao1(%v) = %v, want 0", counts, got)
		}
		if got := Chao1Coverage(counts); got != 0 {
			t.Fatalf("Chao1Coverage(%v) = %v, want 0", counts, got)
		}
	}
}

// The estimators are functions of the count multiset only: shuffling and
// map extraction change nothing.
func TestEstimatorsOrderIndependent(t *testing.T) {
	a := []int{3, 1, 2, 1}
	b := []int{1, 1, 2, 3}
	if Chao1(a) != Chao1(b) || GoodTuringUnseen(a) != GoodTuringUnseen(b) {
		t.Fatal("estimators depend on count order")
	}
	m := map[uint64]int{7: 3, 9: 1, 11: 2, 13: 1}
	if got := Chao1(CountsOfMap(m)); got != Chao1(a) {
		t.Fatalf("CountsOfMap route = %v, want %v", got, Chao1(a))
	}
}
