package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	approx(t, s.Mean, 5, 1e-12, "mean")
	approx(t, s.Std, math.Sqrt(32.0/7.0), 1e-12, "std")
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatal("empty summary wrong")
	}
	if one := Summarize([]float64{3}); one.Std != 0 || one.Mean != 3 {
		t.Fatal("singleton summary wrong")
	}
}

func TestEntropy(t *testing.T) {
	approx(t, Entropy([]int{1, 1}), 1, 1e-12, "fair coin")
	approx(t, Entropy([]int{1, 1, 1, 1}), 2, 1e-12, "fair d4")
	approx(t, Entropy([]int{10}), 0, 1e-12, "constant")
	approx(t, Entropy([]int{3, 1}), -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25)), 1e-12, "3:1")
	approx(t, Entropy(nil), 0, 1e-12, "empty")
	approx(t, EntropyOfMap(map[string]int{"a": 1, "b": 1}), 1, 1e-12, "map")
}

func TestEntropyBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, 0, len(raw))
		for _, r := range raw {
			if r > 0 {
				counts = append(counts, int(r))
			}
		}
		h := Entropy(counts)
		if h < -1e-9 {
			return false
		}
		if len(counts) > 0 && h > math.Log2(float64(len(counts)))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalSF(t *testing.T) {
	approx(t, NormalSF(0), 0.5, 1e-12, "SF(0)")
	approx(t, NormalSF(1.959963985), 0.025, 1e-6, "SF(1.96)")
	approx(t, NormalSF(-1.959963985), 0.975, 1e-6, "SF(-1.96)")
}

func TestChiSquare1SF(t *testing.T) {
	approx(t, ChiSquare1SF(3.841459), 0.05, 1e-5, "5% critical value")
	approx(t, ChiSquare1SF(6.634897), 0.01, 1e-5, "1% critical value")
	approx(t, ChiSquare1SF(0), 1, 1e-12, "zero")
	approx(t, ChiSquare1SF(-1), 1, 1e-12, "negative")
}

func TestChiSquareUniform(t *testing.T) {
	approx(t, ChiSquareUniform([]int{25, 25, 25, 25}, 4), 0, 1e-12, "uniform")
	// Observed [30,20], expected [25,25]: 2*25/25 = 2? (30-25)^2/25*2 = 2.
	approx(t, ChiSquareUniform([]int{30, 20}, 2), 2, 1e-12, "skewed")
	// Missing class contributes its full expectation.
	approx(t, ChiSquareUniform([]int{30}, 2), (30-15.0)*(30-15)/15+15, 1e-12, "missing class")
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Textbook example: clearly separated samples give small p.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	u, p := MannWhitneyU(x, y)
	approx(t, u, 0, 1e-12, "U")
	if p > 0.001 {
		t.Fatalf("p = %g, want < 0.001", p)
	}
	// Identical samples: U = n1*n2/2, p = 1.
	u, p = MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5})
	approx(t, u, 4.5, 1e-12, "tied U")
	if p < 0.99 {
		t.Fatalf("tied p = %g, want ~1", p)
	}
	if _, p := MannWhitneyU(nil, []float64{1}); p != 1 {
		t.Fatal("empty sample must give p=1")
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := 2+rng.Intn(10), 2+rng.Intn(10)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = float64(rng.Intn(8))
		}
		for i := range y {
			y[i] = float64(rng.Intn(8))
		}
		u1, p1 := MannWhitneyU(x, y)
		u2, p2 := MannWhitneyU(y, x)
		approx(t, u1+u2, float64(n1*n2), 1e-9, "U1+U2")
		approx(t, p1, p2, 1e-9, "p symmetry")
		if p1 < 0 || p1 > 1.0000001 {
			t.Fatalf("p out of range: %g", p1)
		}
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 2
	}
	if _, p := MannWhitneyU(x, y); p > 1e-4 {
		t.Fatalf("shifted samples p = %g", p)
	}
}

func TestLogRankIdenticalGroups(t *testing.T) {
	g := []Obs{{1, true}, {2, true}, {3, true}, {4, false}}
	chi2, p := LogRank(g, g)
	approx(t, chi2, 0, 1e-9, "chi2")
	if p < 0.99 {
		t.Fatalf("identical groups p = %g", p)
	}
}

func TestLogRankSeparatedGroups(t *testing.T) {
	fast := make([]Obs, 20)
	slow := make([]Obs, 20)
	for i := range fast {
		fast[i] = Obs{Time: float64(i + 1), Event: true}
		slow[i] = Obs{Time: float64(100 + i), Event: true}
	}
	chi2, p := LogRank(fast, slow)
	if chi2 < 10 || p > 0.01 {
		t.Fatalf("chi2 = %g, p = %g; expected strong separation", chi2, p)
	}
}

func TestLogRankCensoring(t *testing.T) {
	// All-censored samples carry no events: p must be 1.
	g1 := []Obs{{10, false}, {10, false}}
	g2 := []Obs{{10, false}, {10, false}}
	if _, p := LogRank(g1, g2); p != 1 {
		t.Fatalf("all-censored p = %g", p)
	}
	// Censored observations still count as at-risk.
	found := []Obs{{1, true}, {2, true}, {3, true}}
	censored := []Obs{{100, false}, {100, false}, {100, false}}
	chi2, p := LogRank(found, censored)
	if chi2 <= 0 || p > 0.2 {
		t.Fatalf("chi2 = %g p = %g; finding vs never-finding should differ", chi2, p)
	}
}

func TestBinomial(t *testing.T) {
	approx(t, Binomial(10, 5), 252, 1e-9, "C(10,5)")
	approx(t, Binomial(52, 5), 2598960, 1e-6, "C(52,5)")
	approx(t, Binomial(5, 0), 1, 1e-12, "C(5,0)")
	approx(t, Binomial(5, 6), 0, 1e-12, "C(5,6)")
	approx(t, Binomial(5, -1), 0, 1e-12, "C(5,-1)")
	// Large argument goes through the log path without overflow.
	b := Binomial(400, 200)
	if math.IsInf(b, 0) || math.IsNaN(b) || b <= 0 {
		t.Fatalf("C(400,200) = %g", b)
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n, k := int(n8%60), int(k8%60)
		if k > n {
			n, k = k, n
		}
		a, b := Binomial(n, k), Binomial(n, n-k)
		return math.Abs(a-b) <= 1e-9*math.Max(a, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMultinomial(t *testing.T) {
	approx(t, Multinomial(5, 5), 252, 1e-6, "multi(5,5)")
	approx(t, Multinomial(2, 2, 2), 90, 1e-6, "multi(2,2,2)")
	approx(t, Multinomial(3), 1, 1e-9, "multi(3)")
	approx(t, Multinomial(0, 0), 1, 1e-9, "multi(0,0)")
	approx(t, Multinomial(-1, 2), 0, 1e-12, "negative")
}

func TestClusterBound(t *testing.T) {
	approx(t, ClusterBound(2, 1), 0.5, 1e-12, "one cluster")
	approx(t, ClusterBound(2, 2), 0.75, 1e-12, "two clusters")
	approx(t, ClusterBound(0, 3), 0, 1e-12, "degenerate")
	// More clusters can only help.
	if ClusterBound(100, 10) <= ClusterBound(100, 1) {
		t.Fatal("bound not monotone in c")
	}
}

func TestDuplicatesBound(t *testing.T) {
	// One pair of 1+1 events: 2 interleavings, bound 1/2.
	approx(t, DuplicatesBound(1, 1, 1, 1), 0.5, 1e-12, "1x1")
	// The paper's producer-consumer shape: na=2, nb=2, 2x2 pairs.
	approx(t, DuplicatesBound(2, 2, 2, 2), 1-math.Pow(5.0/6, 4), 1e-12, "2x2")
	if DuplicatesBound(2, 2, 0, 1) != 0 || DuplicatesBound(-1, 2, 1, 1) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
	// More pairs can only help.
	if DuplicatesBound(3, 3, 2, 2) <= DuplicatesBound(3, 3, 1, 1) {
		t.Fatal("bound not monotone in pair count")
	}
}

func TestChiSquareSF(t *testing.T) {
	// dof=1 must agree with the closed-form erfc implementation.
	for _, x := range []float64{0.1, 1, 2.5, 7, 20} {
		approx(t, ChiSquareSF(x, 1), ChiSquare1SF(x), 1e-9, "dof=1")
	}
	// dof=2 is exponential: SF(x) = exp(-x/2).
	for _, x := range []float64{0.5, 2, 4, 10} {
		approx(t, ChiSquareSF(x, 2), math.Exp(-x/2), 1e-9, "dof=2")
	}
	// Standard critical values (statistical tables).
	approx(t, ChiSquareSF(18.307, 10), 0.05, 5e-4, "chi2(0.95,10)")
	approx(t, ChiSquareSF(15.086, 5), 0.01, 2e-4, "chi2(0.99,5)")
	approx(t, ChiSquareSF(124.342, 100), 0.05, 5e-4, "chi2(0.95,100)")
	// Degenerate inputs.
	if ChiSquareSF(-1, 5) != 1 || ChiSquareSF(0, 5) != 1 || ChiSquareSF(3, 0) != 1 {
		t.Fatal("degenerate inputs must yield 1")
	}
	// Monotone decreasing in x, for large dof too (both branches of the
	// series/continued-fraction split).
	prev := 1.0
	for x := 1.0; x < 600; x += 7 {
		p := ChiSquareSF(x, 251)
		if p > prev+1e-12 {
			t.Fatalf("SF not monotone at x=%v: %v > %v", x, p, prev)
		}
		prev = p
	}
}
