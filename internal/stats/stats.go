// Package stats implements the statistics used in the paper's evaluation:
// mean/standard deviation summaries, Shannon entropy of sampled
// distributions (Table 3), the Mann–Whitney U test (Table 1's significance
// claim) and the two-sample log-rank test for schedules-to-first-bug
// survival comparisons (Table 4's bold entries).
package stats

import (
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n-1 denominator)
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample returns zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Entropy returns the Shannon entropy (bits) of the empirical distribution
// given by counts. Zero counts are ignored.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyOfMap is Entropy over a map's values. The counts are sorted
// before summation: entropy is a function of the count multiset, and a
// fixed summation order keeps the result bit-identical across runs
// (float addition is not associative, and map iteration order is not).
func EntropyOfMap[K comparable](counts map[K]int) float64 {
	xs := make([]int, 0, len(counts))
	for _, c := range counts {
		xs = append(xs, c)
	}
	sort.Ints(xs)
	return Entropy(xs)
}

// EntropyBits returns the Shannon entropy (bits) of an int64 count
// histogram, the shape the observability aggregator accumulates.
// Degenerate inputs stay finite: an empty histogram and a single-nonzero-
// bucket histogram both report exactly 0 — never NaN and never a negative
// rounding artifact — so metric snapshots stay JSON-marshalable and
// Prometheus pages never emit a non-numeric sample.
func EntropyBits(hist []int64) float64 {
	var total int64
	nonzero := 0
	for _, v := range hist {
		if v > 0 {
			total += v
			nonzero++
		}
	}
	if total == 0 || nonzero == 1 {
		return 0
	}
	h := 0.0
	for _, v := range hist {
		if v > 0 {
			p := float64(v) / float64(total)
			h -= p * math.Log2(p)
		}
	}
	if math.IsNaN(h) || h < 0 {
		return 0
	}
	return h
}

// NormalSF returns the upper-tail probability P(Z > z) of the standard
// normal distribution.
func NormalSF(z float64) float64 { return 0.5 * math.Erfc(z/math.Sqrt2) }

// ChiSquare1SF returns the upper-tail probability of a chi-square
// distribution with one degree of freedom.
func ChiSquare1SF(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}

// ChiSquareSF returns the upper-tail probability P(X > x) of a chi-square
// distribution with dof degrees of freedom: the p-value of a goodness-of-fit
// statistic. It is the regularized upper incomplete gamma function
// Q(dof/2, x/2). Non-positive x or dof returns 1.
func ChiSquareSF(x float64, dof int) float64 {
	if x <= 0 || dof <= 0 {
		return 1
	}
	return gammaQ(float64(dof)/2, x/2)
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// by the standard series / continued-fraction split (Numerical Recipes
// gammq): the series for P(a,x) converges fast for x < a+1, the Lentz
// continued fraction for Q(a,x) elsewhere.
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQCF(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 1000; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against a uniform distribution over classes (classes >= len(counts);
// absent classes count as zero observations).
func ChiSquareUniform(counts []int, classes int) float64 {
	if classes <= 0 {
		return 0
	}
	n := 0
	for _, c := range counts {
		n += c
	}
	exp := float64(n) / float64(classes)
	if exp == 0 {
		return 0
	}
	x := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		x += d * d / exp
	}
	x += float64(classes-len(counts)) * exp
	return x
}

// MannWhitneyU performs the two-sided Mann–Whitney U test with the normal
// approximation and tie correction, returning the U statistic of xs and the
// two-sided p-value. Samples smaller than 2 return p = 1.
func MannWhitneyU(xs, ys []float64) (u, p float64) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range xs {
		all = append(all, obs{x, true})
	}
	for _, y := range ys {
		all = append(all, obs{y, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	r1 := 0.0
	tieCorr := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		rank := float64(i+j+1) / 2 // average rank of the tie group (1-based)
		t := float64(j - i)
		tieCorr += t*t*t - t
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		i = j
	}
	u = r1 - float64(n1*(n1+1))/2
	n := float64(n1 + n2)
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * ((n + 1) - tieCorr/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1
	}
	z := math.Abs(u-mu) / math.Sqrt(sigma2)
	return u, 2 * NormalSF(z)
}

// Obs is one right-censored observation for the log-rank test: Time is the
// number of schedules to the first bug, or the budget when the bug was not
// found (Event = false).
type Obs struct {
	Time  float64
	Event bool
}

// LogRank performs the two-sample log-rank test and returns the chi-square
// statistic (1 dof) and its p-value. With no events in either sample it
// returns (0, 1).
func LogRank(g1, g2 []Obs) (chi2, p float64) {
	type point struct {
		t  float64
		g1 bool
		ev bool
	}
	pts := make([]point, 0, len(g1)+len(g2))
	for _, o := range g1 {
		pts = append(pts, point{o.Time, true, o.Event})
	}
	for _, o := range g2 {
		pts = append(pts, point{o.Time, false, o.Event})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	at1, at2 := len(g1), len(g2) // at-risk counts
	var sumO, sumE, sumV float64
	for i := 0; i < len(pts); {
		j := i
		d, d1 := 0, 0 // deaths at this time, deaths in group 1
		rem1, rem2 := 0, 0
		for j < len(pts) && pts[j].t == pts[i].t {
			if pts[j].ev {
				d++
				if pts[j].g1 {
					d1++
				}
			}
			if pts[j].g1 {
				rem1++
			} else {
				rem2++
			}
			j++
		}
		nAll := float64(at1 + at2)
		if d > 0 && nAll > 1 {
			e1 := float64(d) * float64(at1) / nAll
			v := float64(d) * (float64(at1) / nAll) * (float64(at2) / nAll) *
				(nAll - float64(d)) / (nAll - 1)
			sumO += float64(d1)
			sumE += e1
			sumV += v
		}
		at1 -= rem1
		at2 -= rem2
		i = j
	}
	if sumV <= 0 {
		return 0, 1
	}
	diff := sumO - sumE
	chi2 = diff * diff / sumV
	return chi2, ChiSquare1SF(chi2)
}

// Binomial returns C(n, k) as a float64 (exact for small arguments,
// overflow-safe via logarithms for large ones).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	// Exact product while it fits.
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
		if math.IsInf(r, 0) {
			lg, _ := math.Lgamma(float64(n + 1))
			lk, _ := math.Lgamma(float64(k + 1))
			lnk, _ := math.Lgamma(float64(n - k + 1))
			return math.Exp(lg - lk - lnk)
		}
	}
	return r
}

// Multinomial returns the multi-choose coefficient (Σks)! / Π ks! used in
// the paper's bug-probability bounds (§3.4), computed in log space.
func Multinomial(ks ...int) float64 {
	n := 0
	for _, k := range ks {
		if k < 0 {
			return 0
		}
		n += k
	}
	lg, _ := math.Lgamma(float64(n + 1))
	for _, k := range ks {
		lk, _ := math.Lgamma(float64(k + 1))
		lg -= lk
	}
	return math.Exp(lg)
}

// ClusterBound is the §3.4 "clusters" success-probability lower bound for c
// duplicated clusters whose intra-cluster schedule has `perms` equally
// likely interleavings: 1 - (1 - 1/perms)^c.
func ClusterBound(perms float64, c int) float64 {
	if perms <= 0 {
		return 0
	}
	return 1 - math.Pow(1-1/perms, float64(c))
}

// DuplicatesBound is the §3.4 "duplicates" success-probability lower bound
// for ka type-A and kb type-B threads with na and nb interesting events
// each, when the bug manifests on the interleaving of any A-B pair:
// 1 - (1 - 1/C(na+nb, na))^(ka*kb).
func DuplicatesBound(na, nb, ka, kb int) float64 {
	perms := Binomial(na+nb, na)
	if perms <= 0 || ka <= 0 || kb <= 0 {
		return 0
	}
	return 1 - math.Pow(1-1/perms, float64(ka*kb))
}
