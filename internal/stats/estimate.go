package stats

// Schedule-space coverage estimators. A concurrency-testing campaign samples
// interleaving classes with unknown (and unknowable) support; the campaign
// dashboard wants to answer "how much of the reachable space has this
// algorithm covered?" anyway. Two classical abundance-based estimators over
// the interleaving-fingerprint frequency counts give a principled answer:
//
//   - Good–Turing: the probability mass of unseen classes is estimated by
//     f1/n, the fraction of samples that landed on classes seen exactly
//     once. Its complement is the sample coverage (the probability the next
//     schedule lands on an already-seen class).
//   - Chao1: a lower-bound estimate of the total class richness from the
//     singleton and doubleton counts, Sobs + f1²/(2·f2); the bias-corrected
//     fallback Sobs + f1(f1−1)/2 applies when no doubletons were observed.
//
// Both are functions of the frequency-of-frequencies alone, so they are
// order-independent and bit-identical however the counts were accumulated.

// FreqOfFreq returns (n, f1, f2): the total number of samples and the
// number of classes observed exactly once and exactly twice. Non-positive
// counts are ignored.
func FreqOfFreq(counts []int) (n, f1, f2 int) {
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		n += c
		switch c {
		case 1:
			f1++
		case 2:
			f2++
		}
	}
	return n, f1, f2
}

// GoodTuringUnseen returns the Good–Turing estimate f1/n of the probability
// that the next sample lands on a class never seen before. An empty sample
// returns 1 (everything is unseen).
func GoodTuringUnseen(counts []int) float64 {
	n, f1, _ := FreqOfFreq(counts)
	if n == 0 {
		return 1
	}
	return float64(f1) / float64(n)
}

// GoodTuringCoverage returns the Good–Turing sample-coverage estimate
// 1 − f1/n: the probability the next sample lands on an already-seen class.
// An empty sample returns 0.
func GoodTuringCoverage(counts []int) float64 {
	return 1 - GoodTuringUnseen(counts)
}

// Chao1 returns the Chao1 richness estimate of the number of classes in the
// sampled population: Sobs + f1²/(2·f2), or the bias-corrected
// Sobs + f1(f1−1)/2 when f2 = 0. An empty sample returns 0. Chao1 is a
// lower bound: the true support is at least this large in expectation.
func Chao1(counts []int) float64 {
	sobs := 0
	for _, c := range counts {
		if c > 0 {
			sobs++
		}
	}
	if sobs == 0 {
		return 0
	}
	_, f1, f2 := FreqOfFreq(counts)
	if f2 > 0 {
		return float64(sobs) + float64(f1)*float64(f1)/(2*float64(f2))
	}
	return float64(sobs) + float64(f1)*float64(f1-1)/2
}

// Chao1Coverage returns Sobs/Chao1: the estimated fraction of reachable
// classes already observed ("URW has covered an estimated 84% of reachable
// classes"). An empty sample returns 0; a sample with no singletons or
// doubletons returns 1 (the estimator believes the space is exhausted).
func Chao1Coverage(counts []int) float64 {
	est := Chao1(counts)
	if est == 0 {
		return 0
	}
	sobs := 0
	for _, c := range counts {
		if c > 0 {
			sobs++
		}
	}
	return float64(sobs) / est
}

// CountsOfMap extracts the positive frequency counts of a map in an
// arbitrary order. The estimators above depend only on the count multiset,
// so the order does not matter.
func CountsOfMap[K comparable](m map[K]int) []int {
	out := make([]int, 0, len(m))
	for _, c := range m {
		if c > 0 {
			out = append(out, c)
		}
	}
	return out
}
