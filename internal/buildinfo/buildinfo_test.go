package buildinfo

import (
	"strings"
	"testing"
)

func TestGetAndString(t *testing.T) {
	info := Get()
	if info.Version != Version {
		t.Fatalf("Version = %q, want %q", info.Version, Version)
	}
	if !strings.HasPrefix(info.Go, "go") || info.OS == "" || info.Arch == "" {
		t.Fatalf("incomplete build info: %+v", info)
	}
	s := info.String()
	if !strings.Contains(s, info.Version) || !strings.Contains(s, info.Go) {
		t.Fatalf("String() = %q misses version or toolchain", s)
	}

	long := Info{Version: "v1", Go: "go1.24", OS: "linux", Arch: "amd64",
		Revision: "0123456789abcdef0123456789abcdef"}
	if got := long.String(); !strings.Contains(got, "commit 0123456789ab") ||
		strings.Contains(got, "0123456789abc") {
		t.Fatalf("revision not truncated to 12 chars: %q", got)
	}
}
