// Package buildinfo carries the version stamp shared by every surw command.
// Release builds inject the version with
//
//	go build -ldflags "-X surw/internal/buildinfo.Version=v1.2.3"
//
// (the Makefile derives it from `git describe`); unstamped builds report
// "dev". The same information backs each command's -version flag and the
// dashboard's /buildinfo endpoint.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the stamped release version, overridden at link time.
var Version = "dev"

// Info is the build identity reported by -version and /buildinfo.
type Info struct {
	Version  string `json:"version"`
	Go       string `json:"go"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	Revision string `json:"revision,omitempty"` // VCS commit, when the build recorded one
}

// Get assembles the build identity, pulling the VCS revision from the
// build-info block when the toolchain embedded one.
func Get() Info {
	info := Info{
		Version: Version,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				info.Revision = s.Value
			}
		}
	}
	return info
}

// String renders the one-line form printed by -version.
func (i Info) String() string {
	s := fmt.Sprintf("%s (%s %s/%s)", i.Version, i.Go, i.OS, i.Arch)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " commit " + rev
	}
	return s
}
