package profile

import (
	"math/rand"
	"testing"

	"surw/internal/core"
	"surw/internal/sched"
)

// prog is a two-worker program with one hot shared var, one cold shared
// var, one thread-local var, and a mutex.
func prog(t *sched.Thread) {
	hot := t.NewVar("hot", 0)
	cold := t.NewVar("cold", 0)
	m := t.NewMutex("mu")
	w1 := t.Go(func(w *sched.Thread) {
		local := w.NewVar("local", 0)
		for i := 0; i < 10; i++ {
			hot.Add(w, 1)
		}
		local.Store(w, 1)
		m.Lock(w)
		cold.Add(w, 1)
		m.Unlock(w)
	})
	w2 := t.Go(func(w *sched.Thread) {
		for i := 0; i < 10; i++ {
			hot.Add(w, 1)
		}
		m.Lock(w)
		cold.Add(w, 1)
		m.Unlock(w)
	})
	t.Join(w1)
	t.Join(w2)
}

func collect(t *testing.T) *Profile {
	t.Helper()
	p, err := Collect(prog, Options{Base: sched.Base{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCollectCounts(t *testing.T) {
	p := collect(t)
	if n := p.Info.NumThreads(); n != 3 {
		t.Fatalf("threads = %d, want 3", n)
	}
	l1, l2 := p.Info.LID("0.0"), p.Info.LID("0.1")
	if l1 < 0 || l2 < 0 {
		t.Fatal("worker paths missing")
	}
	// Worker 1: 10 hot + 1 local + lock + cold + unlock = 14 events.
	if p.Info.Events[l1] != 14 {
		t.Fatalf("worker1 events = %d, want 14", p.Info.Events[l1])
	}
	if p.Info.Events[l2] != 13 {
		t.Fatalf("worker2 events = %d, want 13", p.Info.Events[l2])
	}
	root := p.Info.LID("0")
	if p.Info.Events[root] != 2 {
		t.Fatalf("root events = %d, want 2 joins", p.Info.Events[root])
	}
	if p.Info.TotalEvents != 14+13+2 {
		t.Fatalf("total = %d", p.Info.TotalEvents)
	}
}

func TestCensusObjects(t *testing.T) {
	p := collect(t)
	stats := map[string]ObjStat{}
	for _, o := range p.Objs {
		stats[o.Name] = o
	}
	if o := stats["hot"]; o.Accesses != 20 || o.Threads != 2 || o.Writes != 20 {
		t.Fatalf("hot stats wrong: %+v", o)
	}
	if o := stats["cold"]; o.Accesses != 2 || o.Threads != 2 {
		t.Fatalf("cold stats wrong: %+v", o)
	}
	if o := stats["local"]; o.Threads != 1 {
		t.Fatalf("local stats wrong: %+v", o)
	}
	if o := stats["mu"]; o.Kind != sched.ObjMutex || o.Accesses != 4 {
		t.Fatalf("mutex stats wrong: %+v", o)
	}
}

func TestSelectSingleVarWeighted(t *testing.T) {
	p := collect(t)
	picks := map[string]int{}
	for seed := int64(0); seed < 2000; seed++ {
		sel, ok := p.SelectSingleVar(rand.New(rand.NewSource(seed)))
		if !ok {
			t.Fatal("no shared var found")
		}
		if len(sel.Objects) != 1 {
			t.Fatalf("objects = %v", sel.Objects)
		}
		picks[sel.Objects[0]]++
	}
	if picks["local"] > 0 {
		t.Fatal("thread-local var selected as shared")
	}
	// hot has 20 of the 22 shared accesses: expect ~91% of picks.
	if picks["hot"] < 1600 {
		t.Fatalf("hot picked only %d/2000 times", picks["hot"])
	}
	if picks["cold"] == 0 {
		t.Fatal("cold never picked despite nonzero weight")
	}
}

func TestInstantiateCounts(t *testing.T) {
	p := collect(t)
	sel := Selection{Desc: "hot", Objects: []string{"hot"}, Interesting: AccessTo("hot")}
	info := p.Instantiate(sel)
	l1, l2, root := info.LID("0.0"), info.LID("0.1"), info.LID("0")
	if info.InterestingEvents[l1] != 10 || info.InterestingEvents[l2] != 10 {
		t.Fatalf("interesting counts = %v", info.InterestingEvents)
	}
	if info.InterestingEvents[root] != 0 {
		t.Fatal("root should have no interesting events")
	}
	if info.Interesting == nil || info.DeltaDesc != "hot" {
		t.Fatal("selection not attached")
	}
	// The source profile must be untouched.
	if p.Info.Interesting != nil {
		t.Fatal("Instantiate mutated the profile")
	}
}

func TestInstantiateAll(t *testing.T) {
	p := collect(t)
	info := p.Instantiate(p.SelectAll())
	for i := range info.Events {
		if info.InterestingEvents[i] != info.Events[i] {
			t.Fatal("Δ=Γ counts must equal total counts")
		}
	}
	if info.Interesting != nil {
		t.Fatal("Δ=Γ must use a nil predicate")
	}
}

func TestSelectLockEntrances(t *testing.T) {
	p := collect(t)
	sel, ok := p.SelectLockEntrances()
	if !ok {
		t.Fatal("no locks found")
	}
	lockEv := sched.Event{Kind: sched.OpLock, ObjHash: sched.HashName("mu")}
	readEv := sched.Event{Kind: sched.OpRead, ObjHash: sched.HashName("hot")}
	if !sel.Interesting(lockEv) || sel.Interesting(readEv) {
		t.Fatal("lock-entrance predicate wrong")
	}
	info := p.Instantiate(sel)
	l1 := info.LID("0.0")
	if info.InterestingEvents[l1] != 1 {
		t.Fatalf("worker1 lock count = %d, want 1", info.InterestingEvents[l1])
	}
}

func TestSelectRegion(t *testing.T) {
	p := collect(t)
	sel, ok := p.SelectRegion(rand.New(rand.NewSource(5)), 21)
	if !ok {
		t.Fatal("no region found")
	}
	if len(sel.Objects) < 2 {
		t.Fatalf("region too small for threshold: %v", sel.Objects)
	}
}

func TestSURWWithProfiledCounts(t *testing.T) {
	// End-to-end: profile, select hot var, run SURW; program is bug-free so
	// every schedule must pass.
	p := collect(t)
	info := p.Instantiate(Selection{Desc: "hot", Interesting: AccessTo("hot")})
	for seed := int64(0); seed < 30; seed++ {
		res := sched.Run(prog, core.NewSURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
	}
}

func TestCollectAveragesRuns(t *testing.T) {
	p, err := Collect(prog, Options{Base: sched.Base{Seed: 9}, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The program is schedule-independent in event counts, so averages must
	// match a single run exactly.
	if p.Info.TotalEvents != 29 {
		t.Fatalf("averaged total = %d, want 29", p.Info.TotalEvents)
	}
}

func TestCollectTruncationError(t *testing.T) {
	spin := func(t *sched.Thread) {
		for {
			t.Yield()
		}
	}
	if _, err := Collect(spin, Options{Base: sched.Base{MaxSteps: 50}}); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSelectionEmptyProfile(t *testing.T) {
	p, err := Collect(func(t *sched.Thread) {}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.SelectSingleVar(rand.New(rand.NewSource(1))); ok {
		t.Fatal("single-var selection on empty profile should fail")
	}
	if _, ok := p.SelectRegion(rand.New(rand.NewSource(1)), 10); ok {
		t.Fatal("region selection on empty profile should fail")
	}
	if _, ok := p.SelectLockEntrances(); ok {
		t.Fatal("lock selection on empty profile should fail")
	}
}

// regionProg creates three shared vars with creation order a, b, c and
// unequal access counts, so region selections have a meaningful order to
// grow through.
func regionProg(t *sched.Thread) {
	a := t.NewVar("a", 0)
	b := t.NewVar("b", 0)
	c := t.NewVar("c", 0)
	w1 := t.Go(func(w *sched.Thread) {
		for i := 0; i < 4; i++ {
			a.Add(w, 1)
		}
		b.Add(w, 1)
		c.Add(w, 1)
	})
	w2 := t.Go(func(w *sched.Thread) {
		for i := 0; i < 4; i++ {
			a.Add(w, 1)
		}
		b.Add(w, 1)
		c.Add(w, 1)
	})
	t.Join(w1)
	t.Join(w2)
}

// TestSelectRegionBackwardGrowth pins the branch that grows the region
// toward earlier-created vars when the forward walk exhausts the list
// before reaching minAccesses.
func TestSelectRegionBackwardGrowth(t *testing.T) {
	p, err := Collect(regionProg, Options{Base: sched.Base{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(p.sharedVars()); n != 3 {
		t.Fatalf("%d shared vars, want 3", n)
	}
	// Find a seed whose first Intn(3) lands on the last var, so forward
	// growth contributes only "c" (2 accesses) and the threshold forces the
	// backward loop to pull in b, then a.
	seed := int64(-1)
	for s := int64(0); s < 100; s++ {
		if rand.New(rand.NewSource(s)).Intn(3) == 2 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed starts the region at the last var")
	}
	sel, ok := p.SelectRegion(rand.New(rand.NewSource(seed)), 5)
	if !ok {
		t.Fatal("region selection failed")
	}
	// c (2) + b (2) < 5, so the region must have grown back to a.
	if len(sel.Objects) != 3 {
		t.Fatalf("backward growth stopped early: %v", sel.Objects)
	}
	got := map[string]bool{}
	for _, n := range sel.Objects {
		got[n] = true
	}
	if !got["a"] || !got["b"] || !got["c"] {
		t.Fatalf("region %v does not span the var list", sel.Objects)
	}
	if !sel.Interesting(sched.Event{Kind: sched.OpRead, ObjHash: sched.HashName("a")}) {
		t.Fatal("backward-grown var not in predicate")
	}
}

// TestCollectAllTruncatedKeepsPartialProfile: when every census run hits the
// step budget, Collect must report the error AND still hand back the partial
// counts (callers use them for best-effort Δ selection).
func TestCollectAllTruncatedKeepsPartialProfile(t *testing.T) {
	spin := func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		t.Go(func(w *sched.Thread) {
			for {
				x.Add(w, 1)
			}
		})
		for {
			x.Add(t, 1)
		}
	}
	p, err := Collect(spin, Options{Base: sched.Base{MaxSteps: 40, Seed: 4}, Runs: 3})
	if err == nil {
		t.Fatal("expected every-run-truncated error")
	}
	if p == nil {
		t.Fatal("partial profile discarded on truncation")
	}
	if p.Info.TotalEvents == 0 {
		t.Fatal("partial profile holds no counts")
	}
	found := false
	for _, o := range p.Objs {
		if o.Name == "x" && o.Accesses > 0 && o.Threads == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("census lost the contended var: %+v", p.Objs)
	}
}

// TestThreadsCountsSameLidOnceAcrossKinds: ObjStat.Threads counts distinct
// logical threads, so a var one thread both reads and writes is one thread,
// not two (the thread-touch key must drop the event kind).
func TestThreadsCountsSameLidOnceAcrossKinds(t *testing.T) {
	readWrite := func(t *sched.Thread) {
		v := t.NewVar("v", 0)
		w := t.Go(func(w *sched.Thread) {
			x := v.Load(w)
			v.Store(w, x+1)
			v.Store(w, v.Load(w)+1)
		})
		t.Join(w)
	}
	p, err := Collect(readWrite, Options{Base: sched.Base{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range p.Objs {
		if o.Name != "v" {
			continue
		}
		if o.Threads != 1 {
			t.Fatalf("v touched by one thread under read and write kinds, Threads = %d", o.Threads)
		}
		if o.Accesses != 4 || o.Writes != 2 {
			t.Fatalf("v stats %+v, want 4 accesses / 2 writes", o)
		}
		return
	}
	t.Fatal("var v missing from census")
}
