package profile

import (
	"math/rand"
	"testing"

	"surw/internal/core"
	"surw/internal/sched"
)

// prog is a two-worker program with one hot shared var, one cold shared
// var, one thread-local var, and a mutex.
func prog(t *sched.Thread) {
	hot := t.NewVar("hot", 0)
	cold := t.NewVar("cold", 0)
	m := t.NewMutex("mu")
	w1 := t.Go(func(w *sched.Thread) {
		local := w.NewVar("local", 0)
		for i := 0; i < 10; i++ {
			hot.Add(w, 1)
		}
		local.Store(w, 1)
		m.Lock(w)
		cold.Add(w, 1)
		m.Unlock(w)
	})
	w2 := t.Go(func(w *sched.Thread) {
		for i := 0; i < 10; i++ {
			hot.Add(w, 1)
		}
		m.Lock(w)
		cold.Add(w, 1)
		m.Unlock(w)
	})
	t.Join(w1)
	t.Join(w2)
}

func collect(t *testing.T) *Profile {
	t.Helper()
	p, err := Collect(prog, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCollectCounts(t *testing.T) {
	p := collect(t)
	if n := p.Info.NumThreads(); n != 3 {
		t.Fatalf("threads = %d, want 3", n)
	}
	l1, l2 := p.Info.LID("0.0"), p.Info.LID("0.1")
	if l1 < 0 || l2 < 0 {
		t.Fatal("worker paths missing")
	}
	// Worker 1: 10 hot + 1 local + lock + cold + unlock = 14 events.
	if p.Info.Events[l1] != 14 {
		t.Fatalf("worker1 events = %d, want 14", p.Info.Events[l1])
	}
	if p.Info.Events[l2] != 13 {
		t.Fatalf("worker2 events = %d, want 13", p.Info.Events[l2])
	}
	root := p.Info.LID("0")
	if p.Info.Events[root] != 2 {
		t.Fatalf("root events = %d, want 2 joins", p.Info.Events[root])
	}
	if p.Info.TotalEvents != 14+13+2 {
		t.Fatalf("total = %d", p.Info.TotalEvents)
	}
}

func TestCensusObjects(t *testing.T) {
	p := collect(t)
	stats := map[string]ObjStat{}
	for _, o := range p.Objs {
		stats[o.Name] = o
	}
	if o := stats["hot"]; o.Accesses != 20 || o.Threads != 2 || o.Writes != 20 {
		t.Fatalf("hot stats wrong: %+v", o)
	}
	if o := stats["cold"]; o.Accesses != 2 || o.Threads != 2 {
		t.Fatalf("cold stats wrong: %+v", o)
	}
	if o := stats["local"]; o.Threads != 1 {
		t.Fatalf("local stats wrong: %+v", o)
	}
	if o := stats["mu"]; o.Kind != sched.ObjMutex || o.Accesses != 4 {
		t.Fatalf("mutex stats wrong: %+v", o)
	}
}

func TestSelectSingleVarWeighted(t *testing.T) {
	p := collect(t)
	picks := map[string]int{}
	for seed := int64(0); seed < 2000; seed++ {
		sel, ok := p.SelectSingleVar(rand.New(rand.NewSource(seed)))
		if !ok {
			t.Fatal("no shared var found")
		}
		if len(sel.Objects) != 1 {
			t.Fatalf("objects = %v", sel.Objects)
		}
		picks[sel.Objects[0]]++
	}
	if picks["local"] > 0 {
		t.Fatal("thread-local var selected as shared")
	}
	// hot has 20 of the 22 shared accesses: expect ~91% of picks.
	if picks["hot"] < 1600 {
		t.Fatalf("hot picked only %d/2000 times", picks["hot"])
	}
	if picks["cold"] == 0 {
		t.Fatal("cold never picked despite nonzero weight")
	}
}

func TestInstantiateCounts(t *testing.T) {
	p := collect(t)
	sel := Selection{Desc: "hot", Objects: []string{"hot"}, Interesting: AccessTo("hot")}
	info := p.Instantiate(sel)
	l1, l2, root := info.LID("0.0"), info.LID("0.1"), info.LID("0")
	if info.InterestingEvents[l1] != 10 || info.InterestingEvents[l2] != 10 {
		t.Fatalf("interesting counts = %v", info.InterestingEvents)
	}
	if info.InterestingEvents[root] != 0 {
		t.Fatal("root should have no interesting events")
	}
	if info.Interesting == nil || info.DeltaDesc != "hot" {
		t.Fatal("selection not attached")
	}
	// The source profile must be untouched.
	if p.Info.Interesting != nil {
		t.Fatal("Instantiate mutated the profile")
	}
}

func TestInstantiateAll(t *testing.T) {
	p := collect(t)
	info := p.Instantiate(p.SelectAll())
	for i := range info.Events {
		if info.InterestingEvents[i] != info.Events[i] {
			t.Fatal("Δ=Γ counts must equal total counts")
		}
	}
	if info.Interesting != nil {
		t.Fatal("Δ=Γ must use a nil predicate")
	}
}

func TestSelectLockEntrances(t *testing.T) {
	p := collect(t)
	sel, ok := p.SelectLockEntrances()
	if !ok {
		t.Fatal("no locks found")
	}
	lockEv := sched.Event{Kind: sched.OpLock, ObjHash: sched.HashName("mu")}
	readEv := sched.Event{Kind: sched.OpRead, ObjHash: sched.HashName("hot")}
	if !sel.Interesting(lockEv) || sel.Interesting(readEv) {
		t.Fatal("lock-entrance predicate wrong")
	}
	info := p.Instantiate(sel)
	l1 := info.LID("0.0")
	if info.InterestingEvents[l1] != 1 {
		t.Fatalf("worker1 lock count = %d, want 1", info.InterestingEvents[l1])
	}
}

func TestSelectRegion(t *testing.T) {
	p := collect(t)
	sel, ok := p.SelectRegion(rand.New(rand.NewSource(5)), 21)
	if !ok {
		t.Fatal("no region found")
	}
	if len(sel.Objects) < 2 {
		t.Fatalf("region too small for threshold: %v", sel.Objects)
	}
}

func TestSURWWithProfiledCounts(t *testing.T) {
	// End-to-end: profile, select hot var, run SURW; program is bug-free so
	// every schedule must pass.
	p := collect(t)
	info := p.Instantiate(Selection{Desc: "hot", Interesting: AccessTo("hot")})
	for seed := int64(0); seed < 30; seed++ {
		res := sched.Run(prog, core.NewSURW(), sched.Options{Seed: seed, Info: info})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
	}
}

func TestCollectAveragesRuns(t *testing.T) {
	p, err := Collect(prog, Options{Runs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The program is schedule-independent in event counts, so averages must
	// match a single run exactly.
	if p.Info.TotalEvents != 29 {
		t.Fatalf("averaged total = %d, want 29", p.Info.TotalEvents)
	}
}

func TestCollectTruncationError(t *testing.T) {
	spin := func(t *sched.Thread) {
		for {
			t.Yield()
		}
	}
	if _, err := Collect(spin, Options{MaxSteps: 50}); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSelectionEmptyProfile(t *testing.T) {
	p, err := Collect(func(t *sched.Thread) {}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.SelectSingleVar(rand.New(rand.NewSource(1))); ok {
		t.Fatal("single-var selection on empty profile should fail")
	}
	if _, ok := p.SelectRegion(rand.New(rand.NewSource(1)), 10); ok {
		t.Fatal("region selection on empty profile should fail")
	}
	if _, ok := p.SelectLockEntrances(); ok {
		t.Fatal("lock selection on empty profile should fail")
	}
}
