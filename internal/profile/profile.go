// Package profile implements the paper's profiling phase (§3.6, §4.1): a
// small number of census runs of the program under a baseline scheduler
// that record per-thread event counts, the spawn tree, and a census of
// shared objects. From a Profile, the Δ-selection heuristics produce the
// interesting-event subset and the per-thread Δ-counts that SURW takes as
// input.
package profile

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"surw/internal/core"
	"surw/internal/sched"
)

// ObjStat summarizes one shared object across the census runs.
type ObjStat struct {
	Name     string
	Kind     sched.ObjKind
	Hash     uint64
	Accesses int // total counted events on the object (averaged over runs)
	Writes   int // write-classified events (averaged over runs)
	Threads  int // distinct logical threads that touched it
	Birth    int // creation rank (proxy for memory adjacency)
}

// Profile is the output of Collect.
type Profile struct {
	// Info carries thread paths, the spawn tree, per-thread total event
	// counts and the total event count; Interesting is unset until a
	// selection is instantiated.
	Info *sched.ProgramInfo
	// Objs is the shared-object census sorted by creation rank.
	Objs []ObjStat

	// perThread[key{lid,kind,objHash}] = count, for recomputing per-thread
	// interesting counts under any Δ predicate.
	perThread map[countKey]int
	runs      int
}

type countKey struct {
	lid  int
	kind sched.OpKind
	obj  uint64
}

// Options configures Collect. The embedded sched.Base carries the shared
// Seed (census scheduler, a random walk), ProgSeed (must match the later
// testing runs for the counts to be meaningful) and MaxSteps fields.
type Options struct {
	sched.Base
	// Runs is the number of census runs to average (default 1, as in the
	// paper's single profiling run).
	Runs int
}

// normalized applies the profiling defaults on top of the shared ones.
func (o Options) normalized() Options {
	o.Base = o.Base.Normalized()
	if o.Runs <= 0 {
		o.Runs = 1
	}
	return o
}

// census records events during profiling runs while delegating scheduling
// decisions to a random walk.
type census struct {
	inner   sched.Algorithm
	info    *sched.ProgramInfo
	objs    map[uint64]*ObjStat
	birth   int
	perRun  map[countKey]int
	lidSeen []int // tid -> lid for the current run
}

func (c *census) Name() string { return "census" }

func (c *census) Begin(info *sched.ProgramInfo, rng *rand.Rand) {
	c.inner.Begin(info, rng)
	c.lidSeen = c.lidSeen[:0]
}

func (c *census) Next(st *sched.State) sched.ThreadID { return c.inner.Next(st) }

func (c *census) lid(st *sched.State, tid sched.ThreadID) int {
	for len(c.lidSeen) <= tid {
		t := len(c.lidSeen)
		path := st.Path(t)
		c.lidSeen = append(c.lidSeen, c.info.AddThread(path, parentPath(path)))
	}
	return c.lidSeen[tid]
}

func parentPath(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return ""
}

func (c *census) Observe(ev sched.Event, st *sched.State) {
	c.inner.Observe(ev, st)
	lid := c.lid(st, ev.TID)
	c.info.Events[lid]++
	c.info.TotalEvents++
	if ev.Obj != 0 {
		os, ok := c.objs[ev.ObjHash]
		if !ok {
			os = &ObjStat{
				Name:  st.ObjName(ev.Obj),
				Kind:  st.ObjKind(ev.Obj),
				Hash:  ev.ObjHash,
				Birth: c.birth,
			}
			c.birth++
			c.objs[ev.ObjHash] = os
		}
		os.Accesses++
		if ev.Kind.IsWrite() {
			os.Writes++
		}
		c.perRun[countKey{lid: lid, kind: ev.Kind, obj: ev.ObjHash}]++
	}
}

// Collect runs the program opts.Runs times under a random walk and returns
// the averaged profile. Runs that crash still contribute their partial
// counts (the paper's RaceBench discussion notes exactly this hazard); an
// error is returned only if every run was truncated by the step budget.
func Collect(prog func(*sched.Thread), opts Options) (*Profile, error) {
	opts = opts.normalized()
	runs := opts.Runs
	p := &Profile{
		Info:      sched.NewProgramInfo(),
		perThread: make(map[countKey]int),
		runs:      runs,
	}
	c := &census{
		inner:  core.NewRandomWalk(),
		info:   p.Info,
		objs:   make(map[uint64]*ObjStat),
		perRun: make(map[countKey]int),
	}
	allTruncated := true
	threadTouched := make(map[countKey]bool)
	for r := 0; r < runs; r++ {
		base := opts.Base
		base.Seed += int64(r) * 7919
		res := sched.Run(prog, c, sched.Options{Base: base})
		if !res.Truncated {
			allTruncated = false
		}
	}
	for k, v := range c.perRun {
		p.perThread[k] = (v + runs - 1) / runs
		threadTouched[countKey{lid: k.lid, obj: k.obj}] = true
	}
	// Average the per-thread totals over the runs.
	for i := range p.Info.Events {
		p.Info.Events[i] = (p.Info.Events[i] + runs - 1) / runs
	}
	p.Info.TotalEvents = (p.Info.TotalEvents + runs - 1) / runs
	for _, os := range c.objs {
		os.Accesses = (os.Accesses + runs - 1) / runs
		os.Writes = (os.Writes + runs - 1) / runs
		for k := range threadTouched {
			if k.obj == os.Hash {
				os.Threads++
			}
		}
		p.Objs = append(p.Objs, *os)
	}
	sort.Slice(p.Objs, func(i, j int) bool { return p.Objs[i].Birth < p.Objs[j].Birth })
	if allTruncated {
		return p, errors.New("profile: every census run hit the step budget")
	}
	return p, nil
}

// Selection is a chosen interesting-event subset Δ.
type Selection struct {
	// Desc describes the selection for reports.
	Desc string
	// Objects lists the selected object names (empty for custom or
	// all-event selections).
	Objects []string
	// Interesting is the Δ predicate; nil means Δ = Γ.
	Interesting func(sched.Event) bool
}

// AccessTo builds a Δ predicate matching shared-memory accesses to the
// named variables.
func AccessTo(names ...string) func(sched.Event) bool {
	set := make(map[uint64]bool, len(names))
	for _, n := range names {
		set[sched.HashName(n)] = true
	}
	return func(ev sched.Event) bool {
		return ev.Kind.IsMemAccess() && set[ev.ObjHash]
	}
}

// LockAcquireOf builds a Δ predicate matching acquisitions of the named
// mutexes (the §3.5 critical-section entrance strategy).
func LockAcquireOf(names ...string) func(sched.Event) bool {
	set := make(map[uint64]bool, len(names))
	for _, n := range names {
		set[sched.HashName(n)] = true
	}
	return func(ev sched.Event) bool {
		return (ev.Kind == sched.OpLock || ev.Kind == sched.OpWakeLock) && set[ev.ObjHash]
	}
}

// sharedVars returns the census vars touched by at least two threads,
// sorted by creation rank.
func (p *Profile) sharedVars() []ObjStat {
	var out []ObjStat
	for _, o := range p.Objs {
		if o.Kind == sched.ObjVar && o.Threads >= 2 {
			out = append(out, o)
		}
	}
	return out
}

// SelectSingleVar implements the paper's SCTBench/ConVul instantiation:
// Δ is every access to a single shared variable, drawn with probability
// proportional to its total access count. Returns ok=false when the census
// saw no shared variable.
func (p *Profile) SelectSingleVar(rng *rand.Rand) (Selection, bool) {
	shared := p.sharedVars()
	if len(shared) == 0 {
		return Selection{}, false
	}
	total := 0
	for _, o := range shared {
		total += o.Accesses
	}
	x := rng.Intn(total) // total > 0: census objects have >= 1 access
	var pick ObjStat
	for _, o := range shared {
		if x < o.Accesses {
			pick = o
			break
		}
		x -= o.Accesses
	}
	return Selection{
		Desc:        fmt.Sprintf("accesses to var %q", pick.Name),
		Objects:     []string{pick.Name},
		Interesting: AccessTo(pick.Name),
	}, true
}

// SelectRegion implements the RaceBench instantiation: Δ is every access to
// a random "memory region" — a run of consecutively created shared
// variables — grown until the combined access count reaches minAccesses.
func (p *Profile) SelectRegion(rng *rand.Rand, minAccesses int) (Selection, bool) {
	shared := p.sharedVars()
	if len(shared) == 0 {
		return Selection{}, false
	}
	start := rng.Intn(len(shared))
	var names []string
	sum := 0
	for i := start; i < len(shared) && (sum < minAccesses || len(names) == 0); i++ {
		names = append(names, shared[i].Name)
		sum += shared[i].Accesses
	}
	for i := start - 1; i >= 0 && sum < minAccesses; i-- {
		names = append(names, shared[i].Name)
		sum += shared[i].Accesses
	}
	return Selection{
		Desc:        fmt.Sprintf("region of %d vars (%d accesses)", len(names), sum),
		Objects:     names,
		Interesting: AccessTo(names...),
	}, true
}

// SelectLockEntrances marks every mutex acquisition as interesting (§3.5).
func (p *Profile) SelectLockEntrances() (Selection, bool) {
	var names []string
	for _, o := range p.Objs {
		if o.Kind == sched.ObjMutex {
			names = append(names, o.Name)
		}
	}
	if len(names) == 0 {
		return Selection{}, false
	}
	return Selection{
		Desc:        fmt.Sprintf("acquisitions of %d locks", len(names)),
		Objects:     names,
		Interesting: LockAcquireOf(names...),
	}, true
}

// SelectAll marks every event interesting (Δ = Γ, the N-S configuration).
func (p *Profile) SelectAll() Selection {
	return Selection{Desc: "all events (Δ = Γ)"}
}

// SelectCustom wraps an expert-provided predicate (the LightFTP mode).
func SelectCustom(desc string, pred func(sched.Event) bool) Selection {
	return Selection{Desc: desc, Interesting: pred}
}

// Instantiate produces the ProgramInfo to hand to an algorithm: the profiled
// counts plus the selection's Δ predicate and the per-thread Δ-counts
// implied by the census.
func (p *Profile) Instantiate(sel Selection) *sched.ProgramInfo {
	info := p.Info.Clone()
	info.Interesting = sel.Interesting
	info.DeltaDesc = sel.Desc
	if sel.Interesting == nil {
		copy(info.InterestingEvents, info.Events)
		return info
	}
	for i := range info.InterestingEvents {
		info.InterestingEvents[i] = 0
	}
	for k, n := range p.perThread {
		ev := sched.Event{Kind: k.kind, ObjHash: k.obj}
		if sel.Interesting(ev) {
			info.InterestingEvents[k.lid] += n
		}
	}
	return info
}
