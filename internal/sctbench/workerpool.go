package sctbench

import (
	"fmt"

	pool "surw/examples/workerpool/ported"
	"surw/internal/runner"
	"surw/surwsync"
)

// WorkerPoolTargets returns the surwsync-shim target family: real Go code
// (the examples/workerpool package, ported onto surwsync by cmd/surwport)
// running as campaign targets through the goroutine-binding frontend
// rather than the explicit *sched.Thread API. They ride beside the Table 4
// rows in ByName/Names — and may be opted into a campaign grid with
// -sct-targets — but are not part of Targets(), since the paper's tables
// never include them.
func WorkerPoolTargets() []runner.Target {
	return []runner.Target{WorkerPool(2, 2), WorkerPool(3, 2)}
}

// WorkerPool submits jobs to a pool of workers, drains their results, and
// shuts the pool down. The pool's Close carries the seeded lost-wakeup
// bug (see examples/workerpool/pool): under schedules where at least two
// workers are parked on the wakeup token when Close fires, the single
// token wakes only one of them and the shutdown deadlocks — found by the
// scheduler as a deadlock failure, replayable by seed.
func WorkerPool(workers, jobs int) runner.Target {
	return runner.Target{
		Name: fmt.Sprintf("WP/pool_%dw%dj", workers, jobs),
		Prog: surwsync.Program(func() {
			p := pool.New(workers)
			results := surwsync.NewChan[int](jobs)
			for i := 0; i < jobs; i++ {
				v := i + 1
				p.Submit(func() { results.Send(v) })
			}
			got := pool.Collect(results, jobs)
			sum := 0
			for _, v := range got {
				sum += v
			}
			if sum != jobs*(jobs+1)/2 {
				panic("worker pool lost a job result")
			}
			p.Close()
		}),
	}
}
