package sctbench

import (
	"fmt"

	"surw/internal/runner"
	"surw/internal/sched"
)

// StringBuffer models CB/stringbuffer-jdk1.4: the classic JDK 1.4
// StringBuffer.append(StringBuffer) atomicity violation. append reads the
// argument's length under its monitor, releases it, then copies that many
// characters; a concurrent delete shrinks the buffer in between, and the
// copy reads out of bounds.
func StringBuffer() runner.Target {
	return runner.Target{
		Name: "CB/stringbuffer-jdk1.4",
		Prog: func(t *sched.Thread) {
			mon := t.NewMutex("sb2.monitor")
			length := t.NewVar("sb2.length", 5)
			appender := t.Go(func(w *sched.Thread) {
				mon.Lock(w)
				n := length.Load(w) // sb2.length()
				mon.Unlock(w)
				mon.Lock(w) // sb2.getChars(0, n, ...)
				cur := length.Load(w)
				w.Assert(n <= cur, "stringbuffer-index-out-of-bounds")
				mon.Unlock(w)
			})
			deleter := t.Go(func(w *sched.Thread) {
				mon.Lock(w)
				length.Store(w, length.Load(w)-3) // sb2.delete(0, 3)
				mon.Unlock(w)
			})
			t.JoinAll(appender, deleter)
		},
	}
}

// wsqWorld is the shared state of the work-stealing-queue variants: a
// deque of `items` tasks plus a taken-counter per task. Consuming a task
// twice is the bug in every variant.
type wsqWorld struct {
	head, tail *sched.Var
	taken      []*sched.Var
}

func newWSQWorld(t *sched.Thread, items int) *wsqWorld {
	w := &wsqWorld{
		head: t.NewVar("head", 0),
		tail: t.NewVar("tail", int64(items)), // tasks pre-pushed
	}
	for i := 0; i < items; i++ {
		w.taken = append(w.taken, t.NewVar(fmt.Sprintf("task%d", i), 0))
	}
	return w
}

func (q *wsqWorld) consume(w *sched.Thread, idx int64, bug string) {
	if idx >= 0 && int(idx) < len(q.taken) {
		w.Assert(q.taken[idx].Add(w, 1) == 1, bug)
	}
}

// WSQ models Chess/WSQ: a fully unsynchronized deque. The owner pops from
// the tail and two thieves steal from the head with plain loads and stores,
// so nearly every schedule with concurrent consumers double-takes.
func WSQ() runner.Target {
	return runner.Target{
		Name: "Chess/WSQ",
		Prog: func(t *sched.Thread) {
			q := newWSQWorld(t, 3)
			owner := t.Go(func(w *sched.Thread) {
				for i := 0; i < 2; i++ {
					tl := q.tail.Load(w) - 1
					q.tail.Store(w, tl)
					if q.head.Load(w) <= tl {
						q.consume(w, tl, "wsq-double-take")
					} else {
						q.tail.Store(w, q.head.Load(w))
					}
				}
			})
			thief := func(w *sched.Thread) {
				h := q.head.Load(w)
				if h < q.tail.Load(w) {
					q.head.Store(w, h+1) // unsynchronized increment
					q.consume(w, h, "wsq-double-take")
				}
			}
			t1, t2 := t.Go(thief), t.Go(thief)
			t.JoinAll(owner, t1, t2)
		},
	}
}

// IWSQ models Chess/IWSQ: thieves steal with an interlocked
// compare-and-swap on head, but the owner's pop stays unsynchronized, so
// the last element can be taken by both an owner pop and a concurrent
// steal whose CAS was issued against the pre-pop head.
func IWSQ() runner.Target {
	return runner.Target{
		Name: "Chess/IWSQ",
		Prog: func(t *sched.Thread) {
			q := newWSQWorld(t, 2)
			owner := t.Go(func(w *sched.Thread) {
				for i := 0; i < 2; i++ {
					tl := q.tail.Load(w) - 1
					q.tail.Store(w, tl)
					if q.head.Load(w) <= tl {
						q.consume(w, tl, "iwsq-double-take")
					} else {
						q.tail.Store(w, q.head.Load(w))
					}
				}
			})
			thief := func(w *sched.Thread) {
				h := q.head.Load(w)
				if h < q.tail.Load(w) {
					if q.head.CAS(w, h, h+1) {
						q.consume(w, h, "iwsq-double-take")
					}
				}
			}
			t1, t2 := t.Go(thief), t.Go(thief)
			t.JoinAll(owner, t1, t2)
		},
	}
}

// IWSQWithState models Chess/IWSQWithState: IWSQ with an explicit per-task
// state machine (ready -> running). A double-take manifests as a failed
// ready->running transition.
func IWSQWithState() runner.Target {
	return runner.Target{
		Name: "Chess/IWSQWithState",
		Prog: func(t *sched.Thread) {
			const items = 2
			head := t.NewVar("head", 0)
			tail := t.NewVar("tail", items)
			var state []*sched.Var
			for i := 0; i < items; i++ {
				state = append(state, t.NewVar(fmt.Sprintf("state%d", i), 1)) // 1 = ready
			}
			run := func(w *sched.Thread, idx int64) {
				if idx >= 0 && int(idx) < items {
					w.Assert(state[idx].CAS(w, 1, 2), "iwsqws-state-violation")
					state[idx].Store(w, 3) // running -> done
				}
			}
			owner := t.Go(func(w *sched.Thread) {
				for i := 0; i < 2; i++ {
					tl := tail.Load(w) - 1
					tail.Store(w, tl)
					if head.Load(w) <= tl {
						run(w, tl)
					} else {
						tail.Store(w, head.Load(w))
					}
				}
			})
			thief := func(w *sched.Thread) {
				h := head.Load(w)
				if h < tail.Load(w) {
					if head.CAS(w, h, h+1) {
						run(w, h)
					}
				}
			}
			t1, t2 := t.Go(thief), t.Go(thief)
			t.JoinAll(owner, t1, t2)
		},
	}
}

// SWSQ models Chess/SWSQ: steals run under a lock, but the owner's pop
// keeps its unsynchronized fast path, so a steal that read head/tail
// before an owner pop can still complete after it.
func SWSQ() runner.Target {
	return runner.Target{
		Name: "Chess/SWSQ",
		Prog: func(t *sched.Thread) {
			q := newWSQWorld(t, 2)
			m := t.NewMutex("steal")
			owner := t.Go(func(w *sched.Thread) {
				for i := 0; i < 2; i++ {
					tl := q.tail.Load(w) - 1
					q.tail.Store(w, tl)
					if q.head.Load(w) <= tl {
						q.consume(w, tl, "swsq-double-take")
					} else {
						m.Lock(w)
						q.tail.Store(w, q.head.Load(w))
						m.Unlock(w)
					}
				}
			})
			thief := func(w *sched.Thread) {
				m.Lock(w)
				h := q.head.Load(w)
				if h < q.tail.Load(w) {
					q.head.Store(w, h+1)
					q.consume(w, h, "swsq-double-take")
				}
				m.Unlock(w)
			}
			t1, t2 := t.Go(thief), t.Go(thief)
			t.JoinAll(owner, t1, t2)
		},
	}
}
