// Package sctbench provides Go models of the SCTBench and ConVul targets
// the paper evaluates (Tables 1 and 4). Each model preserves the original's
// thread structure, synchronization idiom, and bug window — the properties
// the scheduling algorithms actually interact with — while expressing the
// bug as an assertion over this library's shared-state API. Memory
// corruption bugs (the ConVul CVEs) are modeled as state-machine violations
// asserted at the corrupting access, as in the curated versions used by
// Period and the paper.
package sctbench

import (
	"surw/internal/runner"
	"surw/internal/sched"
)

// Targets returns the benchmark suite in Table 4's row order.
func Targets() []runner.Target {
	return []runner.Target{
		Twostage(1), Twostage(10), Twostage(25), Twostage(50),
		Reorder(2, 1), Reorder(3, 1), Reorder(4, 1), Reorder(9, 1),
		Reorder(10, 10), Reorder(25, 25), Reorder(99, 1),
		Stack(), Deadlock01(), TokenRing(), Lazy01(),
		BluetoothDriver(), Account(), WrongLock(2), WrongLock(3),
		StringBuffer(),
		IWSQ(), IWSQWithState(), SWSQ(), WSQ(),
		BBuf(), BoundedBuffer(), QSortMT(),
		RADBenchBug4(), RADBenchBug5(), RADBenchBug6(),
		SafeStack(),
		CVE20131792(), CVE20161972(), CVE20161973(),
		CVE20167911(), CVE20169806(), CVE201715265(), CVE20176346(),
	}
}

// ByName returns the target with the given name — from the Table 4 rows,
// the trivial set, the coverage probes, or the surwsync worker-pool
// family — or ok=false.
func ByName(name string) (runner.Target, bool) {
	for _, t := range Targets() {
		if t.Name == name {
			return t, true
		}
	}
	for _, t := range TrivialTargets() {
		if t.Name == name {
			return t, true
		}
	}
	for _, t := range CoverageTargets() {
		if t.Name == name {
			return t, true
		}
	}
	for _, t := range WorkerPoolTargets() {
		if t.Name == name {
			return t, true
		}
	}
	return runner.Target{}, false
}

// Names lists all target names: the Table 4 rows in order, then the
// trivial set, then the coverage probes, then the surwsync worker-pool
// family.
func Names() []string {
	ts := Targets()
	out := make([]string, 0, len(ts)+15)
	for _, t := range ts {
		out = append(out, t.Name)
	}
	for _, t := range TrivialTargets() {
		out = append(out, t.Name)
	}
	for _, t := range CoverageTargets() {
		out = append(out, t.Name)
	}
	for _, t := range WorkerPoolTargets() {
		out = append(out, t.Name)
	}
	return out
}

// spawnN starts n copies of body and returns their handles. Each creation
// costs the main thread two bookkeeping events, as the instrumented
// pthread_create path does in the paper's runtime: threads created early
// get scheduling opportunities while later siblings are still being
// created, which is exactly what makes the reorder/twostage checkers hard
// for the baselines to schedule first.
func spawnN(t *sched.Thread, n int, body func(*sched.Thread)) []*sched.Handle {
	ctl := t.NewVar("", 0)
	hs := make([]*sched.Handle, n)
	for i := range hs {
		hs[i] = t.Go(body)
		ctl.Add(t, 1)
		ctl.Add(t, 1)
	}
	return hs
}
