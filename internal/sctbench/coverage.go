package sctbench

import (
	"fmt"

	"surw/internal/runner"
	"surw/internal/sched"
)

// CoverageTargets returns the bug-free coverage probes: programs whose
// point is not a bug to find but a small, fully enumerable schedule space
// to measure samplers against. They ride beside the Table 4 rows in
// ByName/Names so campaigns and workers can resolve them, but they are
// not part of Targets() — the paper's tables never include them.
func CoverageTargets() []runner.Target {
	return []runner.Target{Bitshift(3), Bitshift(4)}
}

// Bitshift is the paper's Figure 1 program as a coverage target: two
// threads atomically append a bit to shared x (thread A a 0, thread B a
// 1), k times each. The final value of x identifies the outcome, and
// there are exactly C(2k, k) of them — 20 for k=3, 70 for k=4. Every
// writer event conflicts on the same variable, so the commutation-class
// partition is exactly that outcome partition: distinct classes must
// equal distinct behaviours, the exact ground truth a dedup smoke can
// assert. (Raw interleaving hashes over-count — they also distinguish
// when the blocked main thread was rescheduled around its joins.)
func Bitshift(k int) runner.Target {
	return runner.Target{
		Name: fmt.Sprintf("Fig1/bitshift_%d", k),
		Prog: func(t *sched.Thread) {
			x := t.NewVar("x", 1)
			a := t.Go(func(w *sched.Thread) {
				for i := 0; i < k; i++ {
					x.Update(w, func(v int64) int64 { return v << 1 })
				}
			})
			b := t.Go(func(w *sched.Thread) {
				for i := 0; i < k; i++ {
					x.Update(w, func(v int64) int64 { return v<<1 + 1 })
				}
			})
			t.Join(a)
			t.Join(b)
			t.SetBehavior(bitString(x.Peek(), k))
		},
	}
}

// bitString renders the final x as a fixed-width binary string (without
// the sentinel leading 1), so behaviour keys sort naturally.
func bitString(v int64, k int) string {
	n := 2 * k
	buf := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		buf[i] = byte('0' + v&1)
		v >>= 1
	}
	return string(buf)
}
