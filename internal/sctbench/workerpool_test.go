package sctbench

import (
	"testing"

	"surw/internal/runner"
)

// The worker-pool family runs real ported Go code through the surwsync
// binding frontend; a modest SURW session must find the seeded lost-wakeup
// deadlock in pool.Close, and the campaign aggregates must be
// deterministic in the usual way (same config, same result).
func TestWorkerPoolTargetFindsSeededDeadlock(t *testing.T) {
	tgt, ok := ByName("WP/pool_2w2j")
	if !ok {
		t.Fatal("WP/pool_2w2j not registered in ByName")
	}
	cfg := runner.Config{Sessions: 2, Limit: 300, Seed: 1, Workers: 1}
	res, err := runner.RunTarget(tgt, "surw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DistinctBugs()["deadlock"] {
		t.Fatalf("SURW did not find the seeded lost-wakeup deadlock: bugs=%v", res.DistinctBugs())
	}

	// Worker-count confinement: fanning the same batch over more workers
	// must not change any session.
	res4, err := runner.RunTarget(tgt, "surw", runner.Config{Sessions: 2, Limit: 300, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(res4) {
		t.Fatalf("aggregates differ across worker counts:\n  1w: %+v\n  4w: %+v", res.Sessions, res4.Sessions)
	}
}
