package sctbench

import (
	"fmt"

	"surw/internal/runner"
	"surw/internal/sched"
)

// Twostage models CS/twostage_*: k first-stage threads write data1 under
// lock A and then data2 under lock B; k second-stage threads read data1
// under A and, if the first stage appears complete, read data2 under B.
// The bug is the atomicity violation between the two stages: a reader that
// observes data1 == 1 but runs before the writer's second stage sees
// data2 == 0. Twostage(1) is CS/twostage; Twostage(k) spawns 2k threads
// (CS/twostage_2k).
func Twostage(k int) runner.Target {
	name := "CS/twostage"
	if k > 1 {
		name = fmt.Sprintf("CS/twostage_%d", 2*k)
	}
	return runner.Target{
		Name: name,
		Prog: func(t *sched.Thread) {
			mA := t.NewMutex("A")
			mB := t.NewMutex("B")
			data1 := t.NewVar("data1", 0)
			data2 := t.NewVar("data2", 0)
			writers := spawnN(t, k, func(w *sched.Thread) {
				mA.Lock(w)
				data1.Store(w, 1)
				mA.Unlock(w)
				mB.Lock(w)
				data2.Store(w, data1.Load(w)+1)
				mB.Unlock(w)
			})
			readers := spawnN(t, k, func(w *sched.Thread) {
				mA.Lock(w)
				t1 := data1.Load(w)
				mA.Unlock(w)
				if t1 == 1 {
					mB.Lock(w)
					t2 := data2.Load(w)
					mB.Unlock(w)
					w.Assert(t2 == 2, "twostage-atomicity")
				}
			})
			t.JoinAll(writers...)
			t.JoinAll(readers...)
		},
	}
}

// Reorder models CS/reorder_* (Figure 4): setters write a = 1 then b = -1;
// checkers assert the pair is in a consistent state. The bug fires when a
// checker reads a == 1 while no setter has yet written b. Reorder(s, c)
// spawns s setters and c checkers (CS/reorder_{s+c}).
func Reorder(setters, checkers int) runner.Target {
	return runner.Target{
		Name: fmt.Sprintf("CS/reorder_%d", setters+checkers),
		Prog: func(t *sched.Thread) {
			a := t.NewVar("a", 0)
			b := t.NewVar("b", 0)
			set := spawnN(t, setters, func(w *sched.Thread) {
				a.Store(w, 1)
				b.Store(w, -1)
			})
			chk := spawnN(t, checkers, func(w *sched.Thread) {
				av := a.Load(w)
				bv := b.Load(w)
				ok := (av == 0 && bv == 0) || (av == 1 && bv == -1) || (av == 0 && bv == -1)
				w.Assert(ok, "reorder")
			})
			t.JoinAll(set...)
			t.JoinAll(chk...)
		},
	}
}

// Stack models CS/stack: one pusher and two poppers share a stack whose
// poppers check the size outside the lock (check-then-act). Two poppers
// that both observe a single remaining element underflow the stack.
func Stack() runner.Target {
	const items = 4
	return runner.Target{
		Name: "CS/stack",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			top := t.NewVar("top", 0)
			pusher := t.Go(func(w *sched.Thread) {
				for i := 0; i < items; i++ {
					m.Lock(w)
					nv := top.Add(w, 1)
					w.Assert(nv <= items, "stack-overflow")
					m.Unlock(w)
				}
			})
			pop := func(w *sched.Thread) {
				for i := 0; i < items; i++ {
					if top.Load(w) > 0 { // buggy: check outside the lock
						m.Lock(w)
						nv := top.Add(w, -1)
						w.Assert(nv >= 0, "stack-underflow")
						m.Unlock(w)
					}
				}
			}
			p1, p2 := t.Go(pop), t.Go(pop)
			t.JoinAll(pusher, p1, p2)
		},
	}
}

// Deadlock01 models CS/deadlock01: the classic two-mutex lock-order
// inversion.
func Deadlock01() runner.Target {
	return runner.Target{
		Name: "CS/deadlock01",
		Prog: func(t *sched.Thread) {
			a := t.NewMutex("a")
			b := t.NewMutex("b")
			counter := t.NewVar("counter", 0)
			h1 := t.Go(func(w *sched.Thread) {
				a.Lock(w)
				b.Lock(w)
				counter.Add(w, 1)
				b.Unlock(w)
				a.Unlock(w)
			})
			h2 := t.Go(func(w *sched.Thread) {
				b.Lock(w)
				a.Lock(w)
				counter.Add(w, 1)
				a.Unlock(w)
				b.Unlock(w)
			})
			t.JoinAll(h1, h2)
		},
	}
}

// TokenRing models CS/token_ring: four threads each derive their token
// from the previous thread's, and the main thread asserts the chain is
// consistent. Any interleaving that lets a thread read a stale predecessor
// breaks the chain.
func TokenRing() runner.Target {
	return runner.Target{
		Name: "CS/token_ring",
		Prog: func(t *sched.Thread) {
			x := []*sched.Var{
				t.NewVar("x1", 0), t.NewVar("x2", 0),
				t.NewVar("x3", 0), t.NewVar("x4", 0),
			}
			mk := func(dst, src int) func(*sched.Thread) {
				return func(w *sched.Thread) {
					x[dst].Store(w, x[src].Load(w)+1)
				}
			}
			hs := []*sched.Handle{
				t.Go(mk(0, 3)), t.Go(mk(1, 0)), t.Go(mk(2, 1)), t.Go(mk(3, 2)),
			}
			t.JoinAll(hs...)
			v1, v2 := x[0].Load(t), x[1].Load(t)
			v3, v4 := x[2].Load(t), x[3].Load(t)
			t.Assert(v2 == v1+1 && v3 == v2+1 && v4 == v3+1, "token_ring-chain")
		},
	}
}

// Lazy01 models CS/lazy01: three threads mutate a lock-protected counter;
// the third asserts it never reaches the "complete" value, which it does
// whenever the first two finish before the check.
func Lazy01() runner.Target {
	return runner.Target{
		Name: "CS/lazy01",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			data := t.NewVar("data", 0)
			h1 := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				data.Add(w, 1)
				m.Unlock(w)
			})
			h2 := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				data.Add(w, 2)
				m.Unlock(w)
			})
			h3 := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				v := data.Load(w)
				m.Unlock(w)
				w.Assert(v < 3, "lazy01")
			})
			t.JoinAll(h1, h2, h3)
		},
	}
}

// BluetoothDriver models CS/bluetooth_driver (Qadeer & Wu's PLDI'04
// example): a worker increments the pending-I/O count and touches the
// driver unless stopping; the stopper flags the stop, releases its own
// reference, waits for pending I/O to drain, and frees the driver. The bug
// is the unprotected window between the worker's stopping-flag check and
// its increment: the stopper can free the driver first, and the worker then
// touches freed memory.
func BluetoothDriver() runner.Target {
	return runner.Target{
		Name: "CS/bluetooth_driver",
		Prog: func(t *sched.Thread) {
			pendingIO := t.NewVar("pendingIo", 1)
			stoppingFlag := t.NewVar("stoppingFlag", 0)
			stoppingEvent := t.NewVar("stoppingEvent", 0)
			stopped := t.NewVar("stopped", 0)
			decrement := func(w *sched.Thread) {
				if pendingIO.Add(w, -1) == 0 {
					stoppingEvent.Store(w, 1)
				}
			}
			worker := t.Go(func(w *sched.Thread) {
				status := int64(0)
				if stoppingFlag.Load(w) != 0 {
					status = -1
				} else {
					pendingIO.Add(w, 1)
				}
				if status == 0 {
					// Touch the driver: it must not have been freed.
					w.Assert(stopped.Load(w) == 0, "bluetooth-use-after-free")
					decrement(w)
				}
			})
			stopper := t.Go(func(w *sched.Thread) {
				stoppingFlag.Store(w, 1)
				decrement(w)
				for stoppingEvent.Load(w) == 0 {
					w.Yield()
				}
				stopped.Store(w, 1)
			})
			t.JoinAll(worker, stopper)
		},
		MaxSteps: 20_000,
	}
}

// Account models CS/account: a locked deposit races with an unlocked
// withdrawal's read-modify-write; the lost update breaks conservation.
func Account() runner.Target {
	return runner.Target{
		Name: "CS/account",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			balance := t.NewVar("balance", 100)
			dep := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				balance.Store(w, balance.Load(w)+10)
				m.Unlock(w)
			})
			wdr := t.Go(func(w *sched.Thread) {
				// Buggy: forgets the lock.
				balance.Store(w, balance.Load(w)-10)
			})
			t.JoinAll(dep, wdr)
			t.Assert(balance.Load(t) == 100, "account-lost-update")
		},
	}
}

// WrongLock models CS/wronglock(_3): a writer guards the shared datum with
// lock A while k readers guard their two reads with lock B; the mismatched
// locks let the writer slip between a reader's reads.
func WrongLock(readers int) runner.Target {
	name := "CS/wronglock"
	if readers != 2 {
		name = fmt.Sprintf("CS/wronglock_%d", readers)
	}
	return runner.Target{
		Name: name,
		Prog: func(t *sched.Thread) {
			lockA := t.NewMutex("A")
			lockB := t.NewMutex("B")
			data := t.NewVar("data", 0)
			w1 := t.Go(func(w *sched.Thread) {
				lockA.Lock(w)
				data.Add(w, 1)
				data.Add(w, 1)
				lockA.Unlock(w)
			})
			rs := spawnN(t, readers, func(w *sched.Thread) {
				lockB.Lock(w) // wrong lock
				before := data.Load(w)
				after := data.Load(w)
				lockB.Unlock(w)
				w.Assert(before == after, "wronglock-dirty-read")
			})
			t.Join(w1)
			t.JoinAll(rs...)
		},
	}
}
