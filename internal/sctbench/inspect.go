package sctbench

import (
	"fmt"

	"surw/internal/runner"
	"surw/internal/sched"
)

// BBuf models Inspect/bbuf. In the paper's evaluation no algorithm ever
// triggers this target's bug (its manifestation needs conditions outside
// the sequentially-consistent, fixed-input scheduling space), so the model
// is a correctly synchronized buffer whose assertions hold under every
// schedule — faithfully yielding "—" for every algorithm.
func BBuf() runner.Target {
	return runner.Target{
		Name: "Inspect/bbuf",
		Prog: func(t *sched.Thread) {
			const cap, items = 2, 3
			m := t.NewMutex("m")
			notFull := t.NewCond("notFull", m)
			notEmpty := t.NewCond("notEmpty", m)
			count := t.NewVar("count", 0)
			prod := func(w *sched.Thread) {
				for i := 0; i < items; i++ {
					m.Lock(w)
					for count.Load(w) == cap {
						notFull.Wait(w)
					}
					w.Assert(count.Add(w, 1) <= cap, "bbuf-overflow")
					notEmpty.Signal(w)
					m.Unlock(w)
				}
			}
			cons := func(w *sched.Thread) {
				for i := 0; i < items; i++ {
					m.Lock(w)
					for count.Load(w) == 0 {
						notEmpty.Wait(w)
					}
					w.Assert(count.Add(w, -1) >= 0, "bbuf-underflow")
					notFull.Signal(w)
					m.Unlock(w)
				}
			}
			p1, p2 := t.Go(prod), t.Go(cons)
			t.JoinAll(p1, p2)
		},
		MaxSteps: 50_000,
	}
}

// BoundedBuffer models Inspect/boundedBuffer: the classic if-instead-of-
// while condition check combined with a broadcast. Two consumers both pass
// (or skip re-checking) the emptiness test after one broadcast and the
// second underflows the buffer.
func BoundedBuffer() runner.Target {
	return runner.Target{
		Name: "Inspect/boundedBuffer",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			notEmpty := t.NewCond("notEmpty", m)
			count := t.NewVar("count", 0)
			cons := func(w *sched.Thread) {
				m.Lock(w)
				if count.Load(w) == 0 { // buggy: if, not while
					notEmpty.Wait(w)
				}
				w.Assert(count.Load(w) > 0, "boundedBuffer-underflow")
				count.Add(w, -1)
				m.Unlock(w)
			}
			c1, c2 := t.Go(cons), t.Go(cons)
			prod := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				count.Add(w, 1)
				notEmpty.Broadcast(w) // buggy: wakes every waiter for one item
				m.Unlock(w)
			})
			t.JoinAll(prod, c1, c2)
		},
	}
}

// QSortMT models Inspect/qsort_mt's worker-pool race: allocation checks the
// free-worker count outside the pool lock and re-reads the top slot inside
// it, so two allocators racing on the last free worker can both claim it.
// Several pool cycles and surrounding bookkeeping events make the window
// narrow, as in the original (thousands of schedules).
func QSortMT() runner.Target {
	return runner.Target{
		Name: "Inspect/qsort_mt",
		Prog: func(t *sched.Thread) {
			const workers = 2
			m := t.NewMutex("pool")
			freeCount := t.NewVar("freeCount", workers)
			busy := []*sched.Var{t.NewVar("w0busy", 0), t.NewVar("w1busy", 0)}
			work := t.NewVar("work", 0)
			sorter := func(w *sched.Thread) {
				for round := 0; round < 2; round++ {
					// Partitioning noise: events that dilute the window.
					for i := 0; i < 6; i++ {
						work.Add(w, 1)
					}
					if freeCount.Load(w) > 0 { // buggy: check outside the lock
						idx := freeCount.Load(w) - 1 // buggy: top slot read outside too
						m.Lock(w)
						freeCount.Add(w, -1)
						m.Unlock(w)
						if idx >= 0 && idx < workers {
							// Two racing allocators that read the same top
							// slot both claim worker idx.
							w.Assert(busy[idx].Add(w, 1) == 1, "qsort_mt-double-alloc")
							for i := 0; i < 4; i++ {
								work.Add(w, 1)
							}
							busy[idx].Add(w, -1)
						}
						m.Lock(w)
						freeCount.Add(w, 1)
						m.Unlock(w)
					}
				}
			}
			hs := spawnN(t, 3, sorter)
			t.JoinAll(hs...)
		},
	}
}

// RADBenchBug4 models RADBench/bug4 (SpiderMonkey GC suspend race): a
// mutator may use its context only if it observed the GC as inactive and
// registered itself before the GC finished flipping both flags; the bug
// needs two context switches inside the GC's two-step transition.
func RADBenchBug4() runner.Target {
	return runner.Target{
		Name: "RADBench/bug4",
		Prog: func(t *sched.Thread) {
			gcRequest := t.NewVar("gcRequest", 0)
			gcActive := t.NewVar("gcActive", 0)
			registered := t.NewVar("registered", 0)
			gc := t.Go(func(w *sched.Thread) {
				gcRequest.Store(w, 1)
				// Bookkeeping between the two flag flips widens the trace
				// but keeps the window two events wide.
				for i := 0; i < 3; i++ {
					w.Yield()
				}
				gcActive.Store(w, 1)
				if registered.Load(w) == 0 {
					// GC proceeds believing no mutator holds a context.
					gcActive.Store(w, 2) // 2 = collecting
				}
			})
			mutator := t.Go(func(w *sched.Thread) {
				if gcRequest.Load(w) == 1 && gcActive.Load(w) == 0 {
					registered.Store(w, 1)
					// Use the context: collecting now is a use-after-free.
					w.Assert(gcActive.Load(w) != 2, "radbench4-uaf")
					registered.Store(w, 0)
				}
			})
			t.JoinAll(gc, mutator)
		},
	}
}

// RADBenchBug5 models RADBench/bug5, which no algorithm triggers in the
// paper's budget: the model keeps the original's locking protocol, under
// which the asserted invariant is in fact schedule-independent.
func RADBenchBug5() runner.Target {
	return runner.Target{
		Name: "RADBench/bug5",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			refs := t.NewVar("refs", 1)
			closed := t.NewVar("closed", 0)
			user := func(w *sched.Thread) {
				m.Lock(w)
				if closed.Load(w) == 0 {
					refs.Add(w, 1)
					m.Unlock(w)
					w.Assert(closed.Load(w) == 0 || refs.Load(w) > 1, "radbench5-uaf")
					m.Lock(w)
					refs.Add(w, -1)
				}
				m.Unlock(w)
			}
			closer := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				if refs.Add(w, -1) == 0 {
					closed.Store(w, 1)
				}
				m.Unlock(w)
			})
			u1, u2 := t.Go(user), t.Go(user)
			t.JoinAll(closer, u1, u2)
		},
	}
}

// RADBenchBug6 models RADBench/bug6 (NSPR monitor double-init): two threads
// race through an unguarded init check.
func RADBenchBug6() runner.Target {
	return runner.Target{
		Name: "RADBench/bug6",
		Prog: func(t *sched.Thread) {
			initialized := t.NewVar("initialized", 0)
			initCount := t.NewVar("initCount", 0)
			ini := func(w *sched.Thread) {
				if initialized.Load(w) == 0 {
					initCount.Add(w, 1)
					initialized.Store(w, 1)
					w.Assert(initCount.Load(w) == 1, "radbench6-double-init")
				}
			}
			h1, h2 := t.Go(ini), t.Go(ini)
			t.JoinAll(h1, h2)
		},
	}
}

// SafeStack is Vyukov's lock-free stack, the suite's hardest bug: Pop reads
// the head's next pointer non-atomically with its CAS, so an interleaved
// Pop/Push cycle on another thread (an ABA) lets two threads pop the same
// node. Triggering it needs three threads and a long, precise interleaving;
// in the paper only SURW ever finds it (within 10^6 schedules).
func SafeStack() runner.Target {
	const n = 3
	return runner.Target{
		Name: "SafeStack",
		Prog: func(t *sched.Thread) {
			head := t.NewVar("head", 0)
			count := t.NewVar("count", n)
			var next, owned []*sched.Var
			for i := 0; i < n; i++ {
				nxt := int64(i + 1)
				if i == n-1 {
					nxt = -1
				}
				next = append(next, t.NewVar(fmt.Sprintf("next%d", i), nxt))
				owned = append(owned, t.NewVar(fmt.Sprintf("owned%d", i), 0))
			}
			pop := func(w *sched.Thread) int64 {
				for count.Load(w) > 1 {
					h := head.Load(w)
					if h < 0 || h >= n {
						continue
					}
					nxt := next[h].Load(w)
					if head.CAS(w, h, nxt) {
						count.Add(w, -1)
						return h
					}
				}
				return -1
			}
			push := func(w *sched.Thread, idx int64) {
				for {
					h := head.Load(w)
					next[idx].Store(w, h)
					if head.CAS(w, h, idx) {
						break
					}
				}
				count.Add(w, 1)
			}
			workers := make([]*sched.Handle, 3)
			for wi := range workers {
				local := t.NewVar(fmt.Sprintf("local%d", wi), 0)
				workers[wi] = t.Go(func(w *sched.Thread) {
					for round := 0; round < 2; round++ {
						idx := pop(w)
						if idx == -1 {
							continue
						}
						w.Assert(owned[idx].Add(w, 1) == 1, "safestack-double-pop")
						// Per-element work, as in the original's accesses to
						// the popped cell's fields: these thread-local events
						// dilute the run-heavy schedules naive algorithms
						// favor without touching the contended state.
						for k := 0; k < 8; k++ {
							local.Add(w, 1)
						}
						owned[idx].Add(w, -1)
						push(w, idx)
						for k := 0; k < 4; k++ {
							local.Add(w, 1)
						}
					}
				})
			}
			t.JoinAll(workers...)
		},
		MaxSteps: 100_000,
	}
}
