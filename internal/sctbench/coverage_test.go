package sctbench

import (
	"testing"

	"surw/internal/runner"
)

// TestBitshiftGroundTruth checks the property that makes the bitshift
// probe useful for dedup validation: every writer event conflicts on the
// same variable, so the commutation-class partition is exactly the C(6,3)
// outcome partition, which the final value of x (the behaviour string)
// identifies in turn. The raw interleaving hash over-counts — it also
// distinguishes when the blocked main thread got rescheduled around its
// joins — so classes must merge it down to the ground truth.
func TestBitshiftGroundTruth(t *testing.T) {
	tgt, ok := ByName("Fig1/bitshift_3")
	if !ok {
		t.Fatal("Fig1/bitshift_3 not resolvable")
	}
	res, err := runner.RunTarget(tgt, "RW", runner.Config{
		Sessions: 1, Limit: 400, Seed: 7, Coverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Sessions[0].Cov
	if cov == nil {
		t.Fatal("no coverage recorded")
	}
	if len(cov.Behaviors) != len(cov.Classes) {
		t.Fatalf("behaviours %d != classes %d: final x must identify the class",
			len(cov.Behaviors), len(cov.Classes))
	}
	if len(cov.Classes) != 20 {
		t.Fatalf("saw %d classes, want all C(6,3)=20 in 400 schedules", len(cov.Classes))
	}
	if len(cov.Interleavings) < len(cov.Classes) {
		t.Fatalf("interleavings %d < classes %d: a class cannot split interleavings",
			len(cov.Interleavings), len(cov.Classes))
	}
	total := 0
	for _, n := range cov.Classes {
		total += n
	}
	if cov.DupSchedules != total-20 {
		t.Fatalf("DupSchedules = %d over %d schedules, want %d", cov.DupSchedules, total, total-20)
	}
	if res.FoundEver() {
		t.Fatal("coverage probe reported a bug")
	}
}
