package sctbench

import (
	"fmt"

	"surw/internal/runner"
	"surw/internal/sched"
)

// TrivialTargets returns the eleven easy SCTBench programs the paper omits
// from its tables because "all algorithms sample the buggy schedule within
// 10 executions on average" (§4.2). They complete the 42-program suite and
// serve as smoke tests: every algorithm must crack every one of them
// almost immediately.
func TrivialTargets() []runner.Target {
	return []runner.Target{
		FibBench(5), FibBenchLonger(8),
		Sync01(), Sync02(),
		LastZero(4), Sigma(4),
		Queue(), Barrier(3),
		Swarm(4), Aget(3), PBZip2(3),
	}
}

// FibBench models CS/fib_bench: two threads iteratively add each other's
// accumulator without synchronization. The assertion pins the block-order
// outcome (thread 1 fully before thread 2), which nearly every interleaved
// schedule violates — hence trivial for every algorithm.
func FibBench(rounds int) runner.Target {
	name := "CS/fib_bench"
	if rounds > 5 {
		name = "CS/fib_bench_longer"
	}
	// Sequential (h1 fully, then h2) outcome: i grows by j=1 each round;
	// then j grows by the final i each round.
	seqI := int64(1 + rounds)
	seqJ := int64(1) + int64(rounds)*seqI
	return runner.Target{
		Name: name,
		Prog: func(t *sched.Thread) {
			i := t.NewVar("i", 1)
			j := t.NewVar("j", 1)
			h1 := t.Go(func(w *sched.Thread) {
				for k := 0; k < rounds; k++ {
					i.Store(w, i.Load(w)+j.Load(w))
				}
			})
			h2 := t.Go(func(w *sched.Thread) {
				for k := 0; k < rounds; k++ {
					j.Store(w, j.Load(w)+i.Load(w))
				}
			})
			t.JoinAll(h1, h2)
			t.Assert(i.Peek() == seqI && j.Peek() == seqJ, "fib_bench-race")
		},
	}
}

// FibBenchLonger is CS/fib_bench_longer: more rounds, same bug.
func FibBenchLonger(rounds int) runner.Target { return FibBench(rounds) }

// Sync01 models CS/sync01: a producer signals before the consumer waits,
// losing the wakeup unless the consumer checked first.
func Sync01() runner.Target {
	return runner.Target{
		Name: "CS/sync01",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			c := t.NewCond("c", m)
			num := t.NewVar("num", 0)
			prod := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				num.Add(w, 1)
				c.Signal(w) // lost if the consumer has not waited yet
				m.Unlock(w)
			})
			if num.Load(t) == 0 { // buggy: checked outside the lock
				m.Lock(t)
				c.Wait(t) // deadlocks when the signal already fired
				m.Unlock(t)
			}
			t.Join(prod)
		},
		MaxSteps: 10_000,
	}
}

// Sync02 models CS/sync02: like sync01, but the consumer's recheck is
// missing entirely, so the bug is the stale read itself.
func Sync02() runner.Target {
	return runner.Target{
		Name: "CS/sync02",
		Prog: func(t *sched.Thread) {
			num := t.NewVar("num", 0)
			prod := t.Go(func(w *sched.Thread) {
				num.Store(w, 1)
			})
			v := num.Load(t)
			t.Join(prod)
			t.Assert(v == 1, "sync02") // fails when the read beat the store
		},
	}
}

// LastZero models CS/lastzero: workers race filling an array in order
// while a checker expects the filled cells to form a prefix; any worker
// finishing before its predecessor tears the prefix.
func LastZero(workers int) runner.Target {
	return runner.Target{
		Name: "CS/lastzero",
		Prog: func(t *sched.Thread) {
			cells := make([]*sched.Var, workers)
			for i := range cells {
				cells[i] = t.NewVar(fmt.Sprintf("a%d", i), 0)
			}
			hs := make([]*sched.Handle, workers)
			for i := range hs {
				i := i
				hs[i] = t.Go(func(w *sched.Thread) {
					cells[i].Store(w, 1)
				})
			}
			chk := t.Go(func(w *sched.Thread) {
				sawZero := false
				for i := 0; i < workers; i++ {
					if cells[i].Load(w) == 0 {
						sawZero = true
					} else {
						w.Assert(!sawZero, "lastzero-torn-prefix")
					}
				}
			})
			t.JoinAll(hs...)
			t.Join(chk)
		},
	}
}

// Sigma models CS/sigma: n workers accumulate into a shared sum with a
// non-atomic read-modify-write; the main thread asserts no update was lost.
func Sigma(workers int) runner.Target {
	return runner.Target{
		Name: "CS/sigma",
		Prog: func(t *sched.Thread) {
			sum := t.NewVar("sum", 0)
			hs := spawnN(t, workers, func(w *sched.Thread) {
				sum.Store(w, sum.Load(w)+1)
			})
			t.JoinAll(hs...)
			t.Assert(sum.Peek() == int64(workers), "sigma-lost-update")
		},
	}
}

// Queue models CS/queue: a lock-protected ring buffer whose emptiness
// check happens outside the lock.
func Queue() runner.Target {
	return runner.Target{
		Name: "CS/queue",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("m")
			n := t.NewVar("n", 0)
			prod := t.Go(func(w *sched.Thread) {
				for i := 0; i < 3; i++ {
					m.Lock(w)
					n.Add(w, 1)
					m.Unlock(w)
				}
			})
			cons := t.Go(func(w *sched.Thread) {
				for i := 0; i < 3; i++ {
					if n.Load(w) > 0 { // buggy: outside the lock
						m.Lock(w)
						w.Assert(n.Add(w, -1) >= 0, "queue-underflow")
						m.Unlock(w)
					}
				}
			})
			cons2 := t.Go(func(w *sched.Thread) {
				if n.Load(w) > 0 {
					m.Lock(w)
					w.Assert(n.Add(w, -1) >= 0, "queue-underflow")
					m.Unlock(w)
				}
			})
			t.JoinAll(prod, cons, cons2)
		},
	}
}

// Barrier models a counter barrier whose "last one resets" logic races:
// a thread passing the barrier can observe the pre-reset generation.
func Barrier(workers int) runner.Target {
	return runner.Target{
		Name: "CS/barrier",
		Prog: func(t *sched.Thread) {
			arrived := t.NewVar("arrived", 0)
			gen := t.NewVar("gen", 0)
			hs := spawnN(t, workers, func(w *sched.Thread) {
				if arrived.Add(w, 1) == int64(workers) {
					arrived.Store(w, 0) // buggy reset: not atomic with gen
					gen.Add(w, 1)
				}
				w.Assert(arrived.Load(w) <= int64(workers), "barrier-overflow")
				// A racing late arrival can see arrived reset while gen is
				// still the old generation.
				w.Assert(!(arrived.Load(w) == 0 && gen.Load(w) == 0), "barrier-torn-reset")
			})
			t.JoinAll(hs...)
		},
	}
}

// Swarm models Inspect/swarm: many workers flip a shared flag; the checker
// asserts a stale aggregate.
func Swarm(workers int) runner.Target {
	return runner.Target{
		Name: "Inspect/swarm",
		Prog: func(t *sched.Thread) {
			flag := t.NewVar("flag", 0)
			hs := spawnN(t, workers, func(w *sched.Thread) {
				flag.Store(w, 1-flag.Load(w))
			})
			t.JoinAll(hs...)
			t.Assert(flag.Peek() == int64(workers%2), "swarm-parity")
		},
	}
}

// Aget models CB/aget: download chunks update a shared progress counter
// without a lock, and the resume logic trusts it.
func Aget(chunks int) runner.Target {
	return runner.Target{
		Name: "CB/aget",
		Prog: func(t *sched.Thread) {
			progress := t.NewVar("progress", 0)
			hs := spawnN(t, chunks, func(w *sched.Thread) {
				progress.Store(w, progress.Load(w)+100)
			})
			t.JoinAll(hs...)
			t.Assert(progress.Peek() == int64(100*chunks), "aget-progress-lost")
		},
	}
}

// PBZip2 models CB/pbzip2: compressor threads push blocks and the muxer
// pops them, with a racy fifo length check.
func PBZip2(blocks int) runner.Target {
	return runner.Target{
		Name: "CB/pbzip2",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("fifo")
			length := t.NewVar("len", 0)
			comp := t.Go(func(w *sched.Thread) {
				for i := 0; i < blocks; i++ {
					m.Lock(w)
					length.Add(w, 1)
					m.Unlock(w)
				}
			})
			mux := t.Go(func(w *sched.Thread) {
				popped := 0
				for i := 0; i < 2*blocks && popped < blocks; i++ {
					if length.Load(w) > 0 { // buggy: outside the lock
						m.Lock(w)
						w.Assert(length.Add(w, -1) >= 0, "pbzip2-underflow")
						m.Unlock(w)
						popped++
					} else {
						w.Yield()
					}
				}
			})
			mux2 := t.Go(func(w *sched.Thread) {
				if length.Load(w) > 0 {
					m.Lock(w)
					w.Assert(length.Add(w, -1) >= 0, "pbzip2-underflow")
					m.Unlock(w)
				}
			})
			t.JoinAll(comp, mux, mux2)
		},
	}
}
