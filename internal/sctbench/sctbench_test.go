package sctbench

import (
	"testing"

	"surw/internal/core"
	"surw/internal/runner"
	"surw/internal/sched"
)

// neverFindable lists the targets whose bugs the paper's algorithms never
// trigger; our models are schedule-independent there by construction.
// SafeStack is handled separately: it is findable, but only at a scale far
// above the other targets' budgets (TestSafeStackHardness).
var neverFindable = map[string]bool{
	"Inspect/bbuf":          true,
	"RADBench/bug5":         true,
	"ConVul/CVE-2017-15265": true,
	"SafeStack":             true,
}

func TestTargetsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, tgt := range Targets() {
		if tgt.Name == "" || tgt.Prog == nil {
			t.Fatalf("malformed target %+v", tgt)
		}
		if seen[tgt.Name] {
			t.Fatalf("duplicate target %s", tgt.Name)
		}
		seen[tgt.Name] = true
	}
	if len(seen) != 38 {
		t.Fatalf("suite has %d targets, want 38 (Table 4 rows)", len(seen))
	}
	if _, ok := ByName("CS/reorder_10"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a ghost")
	}
	want := 38 + 11 + len(CoverageTargets()) + len(WorkerPoolTargets())
	if got := len(Names()); got != want {
		t.Fatalf("Names() = %d entries, want %d (38 table rows + 11 trivial + coverage probes + worker-pool family)",
			got, want)
	}
}

// TestNoModelDefects runs every target under random schedules and checks
// that failures are only ever asserted bugs or deadlocks — never panics
// (which would indicate a broken model) — and that no schedule hits the
// step budget.
func TestNoModelDefects(t *testing.T) {
	for _, tgt := range Targets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			res, err := runner.RunTarget(tgt, "RW", runner.Config{
				Sessions: 1, Limit: 60, Seed: 101,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := res.Sessions[0]
			if s.Truncated > 0 {
				t.Fatalf("%d truncated schedules", s.Truncated)
			}
			for id := range s.Bugs {
				if len(id) > 6 && id[:6] == "panic:" {
					t.Fatalf("model panicked: %s", id)
				}
			}
		})
	}
}

// bugBudget overrides the schedule budget for the harder targets.
var bugBudget = map[string]int{
	"Inspect/qsort_mt": 8000,
	"CS/reorder_100":   4000,
	"CS/twostage_100":  6000,
	"CS/reorder_50":    2000,
	"CS/twostage_50":   2000,
}

func TestFindableBugsAreFindable(t *testing.T) {
	for _, tgt := range Targets() {
		if neverFindable[tgt.Name] {
			continue
		}
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			budget := bugBudget[tgt.Name]
			if budget == 0 {
				budget = 1500
			}
			for _, alg := range []string{"SURW", "POS", "RW"} {
				res, err := runner.RunTarget(tgt, alg, runner.Config{
					Sessions: 2, Limit: budget, Seed: 7, StopAtFirstBug: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.FoundEver() {
					return
				}
			}
			t.Fatalf("no algorithm exposed the bug within %d schedules", budget)
		})
	}
}

// TestSafeStackHardness pins the headline property of the suite's hardest
// target: the naive baselines stay blind at budgets where SURW succeeds.
func TestSafeStackHardness(t *testing.T) {
	tgt, _ := ByName("SafeStack")
	for _, alg := range []string{"RW", "PCT-3"} {
		res, err := runner.RunTarget(tgt, alg, runner.Config{
			Sessions: 1, Limit: 2000, Seed: 5, StopAtFirstBug: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FoundEver() {
			t.Fatalf("%s found SafeStack within 2000 schedules; model too easy", alg)
		}
	}
	if testing.Short() {
		t.Skip("skipping the long SURW SafeStack search in -short mode")
	}
	res, err := runner.RunTarget(tgt, "SURW", runner.Config{
		Sessions: 1, Limit: 30_000, Seed: 5, StopAtFirstBug: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundEver() {
		t.Fatal("SURW did not find SafeStack within 30k schedules")
	}
}

func TestUnfindableStayQuiet(t *testing.T) {
	for name := range neverFindable {
		if name == "SafeStack" {
			continue // covered by TestSafeStackHardness
		}
		tgt, ok := ByName(name)
		if !ok {
			t.Fatalf("missing target %s", name)
		}
		for _, alg := range []string{"RW", "POS", "SURW"} {
			res, err := runner.RunTarget(tgt, alg, runner.Config{
				Sessions: 1, Limit: 400, Seed: 31, StopAtFirstBug: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FoundEver() {
				sum, _ := res.FirstBugSummary()
				t.Fatalf("%s/%s unexpectedly failed (first at %v)", name, alg, sum.Mean)
			}
		}
	}
}

// TestDeadlock01IsDeadlock pins the failure kind of the deadlock target.
func TestDeadlock01IsDeadlock(t *testing.T) {
	tgt, _ := ByName("CS/deadlock01")
	for seed := int64(0); seed < 200; seed++ {
		res := runSchedule(tgt, seed)
		if res.Buggy() {
			if res.Failure.Kind != sched.FailDeadlock {
				t.Fatalf("failure kind = %v", res.Failure.Kind)
			}
			return
		}
	}
	t.Fatal("deadlock never hit in 200 random schedules")
}

func runSchedule(tgt runner.Target, seed int64) *sched.Result {
	return sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed, MaxSteps: tgt.MaxSteps}})
}

// TestReorderShape checks §4.2's structural claim: the reorder bug needs a
// checker read between a setter's two writes with no completed setter.
func TestReorderShape(t *testing.T) {
	tgt := Reorder(2, 1)
	found := false
	for seed := int64(0); seed < 2000 && !found; seed++ {
		res := runSchedule(tgt, seed)
		if res.Buggy() {
			if res.BugID() != "reorder" {
				t.Fatalf("unexpected bug %q", res.BugID())
			}
			found = true
		}
	}
	if !found {
		t.Fatal("reorder_3 bug not reproduced")
	}
}

// TestTrivialTargetsAreTrivial pins the paper's reason for omitting these
// eleven programs from the tables: every algorithm cracks each of them
// within a handful of schedules.
func TestTrivialTargetsAreTrivial(t *testing.T) {
	trivials := TrivialTargets()
	if len(trivials) != 11 {
		t.Fatalf("trivial set has %d targets, want 11", len(trivials))
	}
	for _, tgt := range trivials {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			for _, alg := range []string{"SURW", "POS", "RW", "PCT-3"} {
				res, err := runner.RunTarget(tgt, alg, runner.Config{
					Sessions: 3, Limit: 100, Seed: 23, StopAtFirstBug: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.FoundAll() {
					t.Fatalf("%s failed to find the bug in 100 schedules on a trivial target", alg)
				}
				sum, _ := res.FirstBugSummary()
				if sum.Mean > 40 {
					t.Fatalf("%s mean %.0f schedules: not so trivial", alg, sum.Mean)
				}
			}
		})
	}
}

// TestNamesIncludeTrivials checks the lookup surface covers every set.
func TestNamesIncludeTrivials(t *testing.T) {
	if len(Names()) != 38+11+len(CoverageTargets())+len(WorkerPoolTargets()) {
		t.Fatalf("Names() = %d entries", len(Names()))
	}
	if _, ok := ByName("CS/sigma"); !ok {
		t.Fatal("trivial target not resolvable")
	}
	if _, ok := ByName("Fig1/bitshift_4"); !ok {
		t.Fatal("coverage probe not resolvable")
	}
}

// TestTrivialModelsDontPanic: failures must be asserts or deadlocks only.
func TestTrivialModelsDontPanic(t *testing.T) {
	for _, tgt := range TrivialTargets() {
		for seed := int64(0); seed < 60; seed++ {
			res := runSchedule(tgt, seed)
			if res.Buggy() && res.Failure.Kind == sched.FailPanic {
				t.Fatalf("%s: model panic %v", tgt.Name, res.Failure)
			}
			if res.Truncated {
				t.Fatalf("%s: truncated", tgt.Name)
			}
		}
	}
}
