package sctbench

import (
	"surw/internal/runner"
	"surw/internal/sched"
)

// The ConVul targets model the memory-corruption CVEs of the benchmark as
// state machines over this library's shared variables: an object's
// lifetime is a Var (1 = live, 0 = freed), a use of freed state is the
// asserted bug, exactly as the curated Period versions assert at the
// corrupting access. Each model keeps the CVE's window shape — which
// events must interleave how tightly — since that is what differentiates
// the scheduling algorithms on these targets.

// CVE20131792 models ConVul/CVE-2013-1792 (Linux keyring race): one thread
// flushes and frees the session keyring while another, which already
// passed the NULL check, dereferences it. The use side performs keyring
// bookkeeping between check and use, giving a few-event window.
func CVE20131792() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2013-1792",
		Prog: func(t *sched.Thread) {
			lock := t.NewMutex("cred_lock")
			keyring := t.NewVar("session_keyring", 1) // 1 = installed
			stats := t.NewVar("key_stats", 0)
			flusher := t.Go(func(w *sched.Thread) {
				lock.Lock(w)
				stats.Add(w, 1)
				lock.Unlock(w)
				keyring.Store(w, 0) // key_put + free
			})
			user := t.Go(func(w *sched.Thread) {
				if keyring.Load(w) == 1 { // NULL check
					stats.Add(w, 1) // bookkeeping between check and use
					stats.Add(w, 1)
					w.Assert(keyring.Load(w) == 1, "cve-2013-1792-uaf")
				}
			})
			t.JoinAll(flusher, user)
		},
	}
}

// CVE20161972 models ConVul/CVE-2016-1972 (Firefox libvpx race): the bug
// needs two context switches in close temporal proximity inside one
// thread's three-store sequence — the configuration §3.3 highlights as
// PCT's weakness, since its few change points rarely land that close
// together.
func CVE20161972() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2016-1972",
		Prog: func(t *sched.Thread) {
			a := t.NewVar("enc_state", 0)
			b := t.NewVar("dec_state", 0)
			c := t.NewVar("buf_state", 0)
			p := t.NewVar("probe", 0)
			writer := t.Go(func(w *sched.Thread) {
				a.Store(w, 1)
				b.Store(w, 1)
				c.Store(w, 1)
			})
			probe := t.Go(func(w *sched.Thread) {
				if a.Load(w) == 1 && b.Load(w) == 0 { // switch #1: between a and b
					p.Store(w, 1)
				}
			})
			victim := t.Go(func(w *sched.Thread) {
				if b.Load(w) == 1 && c.Load(w) == 0 { // switch #2: between b and c
					w.Assert(p.Load(w) == 0, "cve-2016-1972-uaf")
				}
			})
			t.JoinAll(writer, probe, victim)
		},
	}
}

// CVE20161973 models ConVul/CVE-2016-1973 (Firefox graphite2 race): a
// plain use-after-free with a wide window — the user holds the reference
// across a single unprotected gap.
func CVE20161973() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2016-1973",
		Prog: func(t *sched.Thread) {
			obj := t.NewVar("gr_face", 1)
			freer := t.Go(func(w *sched.Thread) {
				obj.Store(w, 0)
			})
			user := t.Go(func(w *sched.Thread) {
				if obj.Load(w) == 1 {
					w.Assert(obj.Load(w) == 1, "cve-2016-1973-uaf")
				}
			})
			t.JoinAll(freer, user)
		},
	}
}

// CVE20167911 models ConVul/CVE-2016-7911 (Linux ioprio race): the free
// happens at the very end of a long syscall path, so schedules that let
// one thread run long without interruption — naive Random Walk's bias —
// trigger it quickly, matching the paper's table where RW is the fastest.
func CVE20167911() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2016-7911",
		Prog: func(t *sched.Thread) {
			ioc := t.NewVar("io_context", 1)
			steps := t.NewVar("path", 0)
			getter := t.Go(func(w *sched.Thread) {
				if ioc.Load(w) == 1 { // get_task_ioprio: NULL check
					w.Assert(ioc.Load(w) == 1, "cve-2016-7911-uaf")
				}
			})
			putter := t.Go(func(w *sched.Thread) {
				for i := 0; i < 8; i++ { // long exit path before the put
					steps.Add(w, 1)
				}
				ioc.Store(w, 0) // put_io_context frees
			})
			t.JoinAll(getter, putter)
		},
	}
}

// CVE20169806 models ConVul/CVE-2016-9806 (Linux netlink double-bind
// double free): two binders must interleave their check/set/commit
// triples in near-perfect alternation — the balanced interleaving Random
// Walk almost never produces, matching its poor Table 4 entry.
func CVE20169806() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2016-9806",
		Prog: func(t *sched.Thread) {
			bound := t.NewVar("bound", 0)
			groups := t.NewVar("groups_alloc", 0)
			committed := t.NewVar("committed", 0)
			bind := func(w *sched.Thread) {
				if bound.Load(w) == 0 { // check
					groups.Add(w, 1) // allocate
					if committed.Load(w) == 0 {
						bound.Store(w, 1) // set
						committed.Add(w, 1)
						// Double free: both binders allocated before either
						// committed.
						w.Assert(groups.Load(w) == committed.Load(w), "cve-2016-9806-double-free")
					}
				}
			}
			h1, h2 := t.Go(bind), t.Go(bind)
			t.JoinAll(h1, h2)
		},
	}
}

// CVE201715265 models ConVul/CVE-2017-15265 (ALSA sequencer UAF), which no
// algorithm triggers in the paper's budget: the model preserves the port
// list's lock discipline, under which the asserted lifetime invariant is
// schedule-independent.
func CVE201715265() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2017-15265",
		Prog: func(t *sched.Thread) {
			m := t.NewMutex("register_mutex")
			port := t.NewVar("port", 0)
			creator := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				port.Store(w, 1)
				m.Unlock(w)
			})
			deleter := t.Go(func(w *sched.Thread) {
				m.Lock(w)
				if port.Load(w) == 1 {
					w.Assert(port.Load(w) == 1, "cve-2017-15265-uaf")
					port.Store(w, 0)
				}
				m.Unlock(w)
			})
			t.JoinAll(creator, deleter)
		},
	}
}

// CVE20176346 models ConVul/CVE-2017-6346 (Linux packet_fanout race): a
// short unprotected release window that every algorithm hits quickly.
func CVE20176346() runner.Target {
	return runner.Target{
		Name: "ConVul/CVE-2017-6346",
		Prog: func(t *sched.Thread) {
			fanout := t.NewVar("fanout", 1)
			ref := t.NewVar("ref", 1)
			releaser := t.Go(func(w *sched.Thread) {
				if ref.Add(w, -1) == 0 {
					fanout.Store(w, 0)
				}
			})
			sender := t.Go(func(w *sched.Thread) {
				if fanout.Load(w) == 1 {
					w.Yield() // packet processing
					w.Assert(fanout.Load(w) == 1, "cve-2017-6346-uaf")
				}
			})
			t.JoinAll(releaser, sender)
		},
	}
}
