package obs

// Metrics: a concurrency-safe aggregator for everything the runner and the
// workpool can observe without changing results — schedule throughput,
// steps/allocs per schedule, truncation rate, per-algorithm decision
// histograms (branching factor and pick position, with the pick entropy
// derived from the latter), and worker utilization. Rendered as a
// Prometheus-style text page (WritePrometheus) and as one-line summaries
// embedded in experiment reports (Summary).

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"surw/internal/sched"
	"surw/internal/stats"
)

// histBuckets is the number of exact histogram buckets; index 0 is unused
// for branching (an enabled set is never empty) and the last bucket
// accumulates everything >= histBuckets-1.
const histBuckets = 17

// AlgStats accumulates per-algorithm decision histograms. All fields are
// atomically updated; read them through Metrics.Snapshot.
type AlgStats struct {
	decisions atomic.Int64              // consulted decisions
	branch    [histBuckets]atomic.Int64 // enabled-set size at consulted decisions
	pick      [histBuckets]atomic.Int64 // position of the chosen thread in Enabled()
}

func bucket(n int) int {
	if n >= histBuckets {
		return histBuckets - 1
	}
	return n
}

// Metrics aggregates observability counters across the sessions of any
// number of RunTarget batches. The zero value is not ready: use NewMetrics,
// which snapshots the process allocation counter so allocs/schedule can be
// reported as a delta. All methods are safe for concurrent use.
type Metrics struct {
	start    time.Time
	mallocs0 uint64

	schedules atomic.Int64
	steps     atomic.Int64
	truncated atomic.Int64
	buggy     atomic.Int64

	busy  atomic.Int64 // meter: summed item execution nanos
	items atomic.Int64
	cap_  atomic.Int64 // meter: summed workers*wall nanos

	lat LatencySet

	mu   sync.Mutex
	algs map[string]*AlgStats
}

// NewMetrics returns an empty aggregator anchored at the current time and
// allocation count.
func NewMetrics() *Metrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Metrics{start: time.Now(), mallocs0: ms.Mallocs, algs: make(map[string]*AlgStats)}
}

// ObserveResult folds one finished schedule into the aggregate.
func (m *Metrics) ObserveResult(alg string, r *sched.Result) {
	m.schedules.Add(1)
	m.steps.Add(int64(r.Steps))
	if r.Truncated {
		m.truncated.Add(1)
	}
	if r.Buggy() {
		m.buggy.Add(1)
	}
}

// algStats returns (creating if needed) the histogram block for alg.
func (m *Metrics) algStats(alg string) *AlgStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.algs[alg]
	if s == nil {
		s = &AlgStats{}
		m.algs[alg] = s
	}
	return s
}

// Tracer returns a sched.Tracer that feeds this aggregator's per-algorithm
// decision histograms. Each concurrent session needs its own tracer (the
// scheduler contract); all of them fold into the shared Metrics.
func (m *Metrics) Tracer() *MetricsTracer { return &MetricsTracer{m: m} }

// MetricsTracer is the per-session decision observer handed out by
// Metrics.Tracer.
type MetricsTracer struct {
	m     *Metrics
	stats *AlgStats
}

// BeginSchedule implements sched.Tracer.
func (t *MetricsTracer) BeginSchedule(alg string) { t.stats = t.m.algStats(alg) }

// Decide implements sched.Tracer: consulted decisions feed the branching
// histogram (how many threads were enabled) and the pick histogram (the
// position of the chosen thread within the sorted enabled set — under an
// unbiased policy on a symmetric workload, positions are hit uniformly).
func (t *MetricsTracer) Decide(d sched.Decision, st *sched.State) {
	if !d.Consulted || t.stats == nil {
		return
	}
	t.stats.decisions.Add(1)
	t.stats.branch[bucket(d.Enabled)].Add(1)
	for pos, tid := range st.Enabled() {
		if tid == d.Chosen {
			t.stats.pick[bucket(pos)].Add(1)
			break
		}
	}
}

// EndSchedule implements sched.Tracer.
func (t *MetricsTracer) EndSchedule(*sched.Result) {}

// Latency returns the named latency histogram (creating it if needed).
// Callers on repeated paths grab the *Histogram once and hold it.
func (m *Metrics) Latency(op string) *Histogram { return m.lat.Hist(op) }

// Latencies exposes the aggregator's latency set, e.g. to merge worker
// wire snapshots into a fleet view.
func (m *Metrics) Latencies() *LatencySet { return &m.lat }

// ItemDone implements workpool.Meter: one work item ran for d.
func (m *Metrics) ItemDone(d time.Duration) {
	m.items.Add(1)
	m.busy.Add(int64(d))
}

// BatchDone implements workpool.Meter: a Map call over `workers` workers
// finished after `wall` of wall-clock time.
func (m *Metrics) BatchDone(workers int, wall time.Duration) {
	m.cap_.Add(int64(workers) * int64(wall))
}

// AlgSnapshot is the per-algorithm slice of a Snapshot.
type AlgSnapshot struct {
	Algorithm   string
	Decisions   int64
	Branch      [histBuckets]int64
	Pick        [histBuckets]int64
	PickEntropy float64 // bits; entropy of the pick-position distribution
	MeanBranch  float64 // mean enabled-set size at consulted decisions
}

// Snapshot is a consistent-enough copy of the aggregate with the derived
// rates computed.
type Snapshot struct {
	Schedules       int64
	Steps           int64
	Truncated       int64
	Buggy           int64
	Elapsed         time.Duration
	SchedulesPerSec float64
	StepsPerSched   float64
	AllocsPerSched  float64 // process-wide Mallocs delta / schedules
	TruncationRate  float64
	WorkerBusy      time.Duration
	WorkerItems     int64
	Utilization     float64 // busy time / (workers x wall) over metered Map calls
	Algorithms      []AlgSnapshot
	Latencies       []LatencySnap
}

// Snapshot computes the current aggregate.
func (m *Metrics) Snapshot() Snapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Snapshot{
		Schedules:   m.schedules.Load(),
		Steps:       m.steps.Load(),
		Truncated:   m.truncated.Load(),
		Buggy:       m.buggy.Load(),
		Elapsed:     time.Since(m.start),
		WorkerBusy:  time.Duration(m.busy.Load()),
		WorkerItems: m.items.Load(),
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.SchedulesPerSec = float64(s.Schedules) / sec
	}
	if s.Schedules > 0 {
		s.StepsPerSched = float64(s.Steps) / float64(s.Schedules)
		s.AllocsPerSched = float64(ms.Mallocs-m.mallocs0) / float64(s.Schedules)
		s.TruncationRate = float64(s.Truncated) / float64(s.Schedules)
	}
	if c := m.cap_.Load(); c > 0 {
		s.Utilization = float64(m.busy.Load()) / float64(c)
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.algs))
	for name := range m.algs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := m.algs[name]
		as := AlgSnapshot{Algorithm: name, Decisions: a.decisions.Load()}
		var total, weighted int64
		for i := 0; i < histBuckets; i++ {
			as.Branch[i] = a.branch[i].Load()
			as.Pick[i] = a.pick[i].Load()
			total += as.Pick[i]
			weighted += int64(i) * as.Branch[i]
		}
		if as.Decisions > 0 {
			as.MeanBranch = float64(weighted) / float64(as.Decisions)
		}
		as.PickEntropy = stats.EntropyBits(as.Pick[:])
		s.Algorithms = append(s.Algorithms, as)
	}
	m.mu.Unlock()
	s.Latencies = m.lat.Snapshots()
	return s
}

// Summary renders a one-line digest for embedding in report footers.
func (m *Metrics) Summary() string {
	s := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "obs: %d schedules (%.0f/s), %.1f steps/schedule, %.1f allocs/schedule, %.2f%% truncated",
		s.Schedules, s.SchedulesPerSec, s.StepsPerSched, s.AllocsPerSched, 100*s.TruncationRate)
	if s.Utilization > 0 {
		fmt.Fprintf(&b, ", %.0f%% worker utilization", 100*s.Utilization)
	}
	return b.String()
}

// PrometheusContentType is the content type of the Prometheus text
// exposition format emitted by WritePrometheus; scrapers key their parser
// on the version parameter.
const PrometheusContentType = "text/plain; version=0.0.4"

// Handler returns an http.Handler serving the Prometheus text page with the
// exposition-format content type.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = m.WritePrometheus(w)
	})
}

// WritePrometheus renders the aggregate as a Prometheus text-format page.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("surw_schedules_total", "Schedules executed.", s.Schedules)
	counter("surw_steps_total", "Scheduler events executed.", s.Steps)
	counter("surw_truncated_total", "Schedules that hit the step budget.", s.Truncated)
	counter("surw_buggy_total", "Schedules that exposed a bug.", s.Buggy)
	gauge("surw_schedules_per_second", "Schedule throughput since NewMetrics.", s.SchedulesPerSec)
	gauge("surw_steps_per_schedule", "Mean events per schedule.", s.StepsPerSched)
	gauge("surw_allocs_per_schedule", "Process-wide heap allocations per schedule.", s.AllocsPerSched)
	gauge("surw_truncation_rate", "Fraction of schedules truncated by the step budget.", s.TruncationRate)
	gauge("surw_worker_busy_seconds_total", "Summed worker busy time across metered Map calls.", s.WorkerBusy.Seconds())
	gauge("surw_worker_utilization", "Busy time over workers x wall across metered Map calls.", s.Utilization)
	if len(s.Algorithms) > 0 {
		fmt.Fprintf(&b, "# HELP surw_decisions_total Consulted scheduling decisions.\n# TYPE surw_decisions_total counter\n")
		for _, a := range s.Algorithms {
			fmt.Fprintf(&b, "surw_decisions_total{alg=%q} %d\n", a.Algorithm, a.Decisions)
		}
		fmt.Fprintf(&b, "# HELP surw_pick_entropy_bits Entropy of the pick-position distribution.\n# TYPE surw_pick_entropy_bits gauge\n")
		for _, a := range s.Algorithms {
			fmt.Fprintf(&b, "surw_pick_entropy_bits{alg=%q} %g\n", a.Algorithm, a.PickEntropy)
		}
		fmt.Fprintf(&b, "# HELP surw_mean_branching Mean enabled-set size at consulted decisions.\n# TYPE surw_mean_branching gauge\n")
		for _, a := range s.Algorithms {
			fmt.Fprintf(&b, "surw_mean_branching{alg=%q} %g\n", a.Algorithm, a.MeanBranch)
		}
		fmt.Fprintf(&b, "# HELP surw_branching_decisions_total Consulted decisions by enabled-set size (last bucket is %d+).\n# TYPE surw_branching_decisions_total counter\n", histBuckets-1)
		for _, a := range s.Algorithms {
			for i := 1; i < histBuckets; i++ {
				if a.Branch[i] > 0 {
					fmt.Fprintf(&b, "surw_branching_decisions_total{alg=%q,enabled=\"%d\"} %d\n", a.Algorithm, i, a.Branch[i])
				}
			}
		}
		fmt.Fprintf(&b, "# HELP surw_pick_position_total Consulted decisions by chosen position in the enabled set.\n# TYPE surw_pick_position_total counter\n")
		for _, a := range s.Algorithms {
			for i := 0; i < histBuckets; i++ {
				if a.Pick[i] > 0 {
					fmt.Fprintf(&b, "surw_pick_position_total{alg=%q,pos=\"%d\"} %d\n", a.Algorithm, i, a.Pick[i])
				}
			}
		}
	}
	if err := WriteLatencyPrometheus(&b, "surw_latency_seconds",
		"Operation latency (log2 buckets): lease_rpc, queue_wait, session, checkpoint_fork, submit.",
		s.Latencies); err != nil {
		return err
	}
	_, err := io.WriteString(w, b.String())
	return err
}
