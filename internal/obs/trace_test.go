package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	l := NewSpanLog("w1")
	root := l.NewRoot()
	hdr := root.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q not W3C shaped", hdr)
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got != root {
		t.Fatalf("round trip: got %+v want %+v", got, root)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-short-span-01",
		"00-" + strings.Repeat("0", 32) + "-1122334455667788-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-1122334455667788-01",                // non-hex
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Unknown version with the right shape is accepted (forward compat).
	if _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestNilSpanLogIsInert(t *testing.T) {
	var l *SpanLog
	if l.Enabled() || l.Track() != "" || l.Len() != 0 {
		t.Fatal("nil SpanLog not inert")
	}
	if c := l.NewRoot(); c.Valid() {
		t.Fatal("nil NewRoot returned a valid context")
	}
	o := l.Start(SpanContext{}, "x")
	if o.Active() {
		t.Fatal("nil Start returned an active span")
	}
	o.End() // must not panic or record
	l.Add(Span{Name: "x"})
	if l.Drain() != nil || l.Snapshot() != nil {
		t.Fatal("nil SpanLog holds spans")
	}
}

// The disabled tracer is the hot-path default: it must cost zero
// allocations per span operation.
func TestNilSpanLogZeroAllocs(t *testing.T) {
	var l *SpanLog
	allocs := testing.AllocsPerRun(100, func() {
		o := l.Start(SpanContext{}, "session")
		o.End()
		_ = l.NewSpanID()
	})
	if allocs != 0 {
		t.Fatalf("nil SpanLog: %v allocs/op, want 0", allocs)
	}
}

func TestSpanLogStartEndDrain(t *testing.T) {
	l := NewSpanLog("worker-a")
	root := l.NewRoot()
	o := l.Start(SpanContext{Trace: root.Trace}, "lease")
	o.Span.Lease = "L1"
	child := l.Start(o.Context(), "session")
	child.Span.Session = 1
	time.Sleep(time.Millisecond)
	child.End()
	o.End()

	spans := l.Drain()
	if len(spans) != 2 {
		t.Fatalf("drained %d spans, want 2", len(spans))
	}
	if l.Len() != 0 {
		t.Fatalf("log not empty after drain")
	}
	// Child recorded first (it ended first); parent links hold.
	if spans[0].Name != "session" || spans[1].Name != "lease" {
		t.Fatalf("span order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatal("child does not parent to the lease span")
	}
	if spans[0].Trace != root.Trace || spans[1].Trace != root.Trace {
		t.Fatal("spans not on the root trace")
	}
	if spans[0].Dur <= 0 {
		t.Fatalf("child duration %d, want > 0", spans[0].Dur)
	}
	if spans[0].Track != "worker-a" {
		t.Fatalf("track %q, want worker-a", spans[0].Track)
	}
}

func TestSpansJSONLRoundTrip(t *testing.T) {
	l := NewSpanLog("w")
	root := l.NewRoot()
	o := l.Start(SpanContext{Trace: root.Trace}, "lease")
	o.Span.Target = "Fig1/bitshift_4"
	o.End()
	want := l.Snapshot()

	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// buildFleetTrace fabricates a complete two-track lease trace.
func buildFleetTrace(t *testing.T) []Span {
	t.Helper()
	coord := NewSpanLog("coordinator")
	worker := NewSpanLog("w1")

	root := coord.NewRoot()
	lease := coord.Start(SpanContext{Trace: root.Trace}, "lease")
	lease.Span.Lease = "L1"

	exec := worker.Start(lease.Context(), "execute")
	sessID := worker.NewSpanID()
	worker.Add(Span{Trace: root.Trace, ID: worker.NewSpanID(), Parent: sessID,
		Name: "prefix-replay", Start: time.Now().UnixNano(), Dur: 100})
	worker.Add(Span{Trace: root.Trace, ID: sessID, Parent: exec.Span.ID,
		Name: "session", Session: 1, Start: time.Now().UnixNano(), Dur: 5000})
	exec.End()

	submit := coord.Start(exec.Context(), "submit")
	submit.End()
	lease.End()

	return append(coord.Snapshot(), worker.Snapshot()...)
}

func TestAssembleAndComplete(t *testing.T) {
	spans := buildFleetTrace(t)
	traces := AssembleTraces(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tr := &traces[0]
	if root := tr.Root(); root == nil || root.Name != "lease" {
		t.Fatalf("root = %+v, want the lease span", root)
	}
	if err := tr.Complete(); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	complete, total, firstErr := CountComplete(spans)
	if complete != 1 || total != 1 || firstErr != nil {
		t.Fatalf("CountComplete = (%d, %d, %v), want (1, 1, nil)", complete, total, firstErr)
	}
}

func TestCompleteRejectsPartialTraces(t *testing.T) {
	full := buildFleetTrace(t)

	drop := func(name string) []Span {
		var out []Span
		for _, s := range full {
			if s.Name != name {
				out = append(out, s)
			}
		}
		return out
	}
	for _, name := range []string{"lease", "session", "prefix-replay", "submit"} {
		if c, _, _ := CountComplete(drop(name)); c != 0 {
			t.Errorf("trace without %q counted complete", name)
		}
	}

	// Single-track (undistributed) trace is not complete.
	onTrack := make([]Span, len(full))
	copy(onTrack, full)
	for i := range onTrack {
		onTrack[i].Track = "coordinator"
	}
	if c, _, err := CountComplete(onTrack); c != 0 || err == nil {
		t.Errorf("single-track trace counted complete (err=%v)", err)
	}

	// Dangling parent.
	dangling := make([]Span, len(full))
	copy(dangling, full)
	for i := range dangling {
		if dangling[i].Name == "submit" {
			dangling[i].Parent = SpanID{0xde, 0xad}
		}
	}
	if c, _, _ := CountComplete(dangling); c != 0 {
		t.Error("trace with dangling parent counted complete")
	}
}

func TestWriteSpanChromeTrace(t *testing.T) {
	spans := buildFleetTrace(t)
	var buf bytes.Buffer
	if err := WriteSpanChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("rendered trace fails validation: %v", err)
	}
	page := buf.String()
	// One named track per SpanLog track.
	for _, track := range []string{"coordinator", "w1"} {
		if !strings.Contains(page, `"name":"`+track+`"`) && !strings.Contains(page, `"name": "`+track+`"`) {
			t.Errorf("missing thread_name metadata for track %q", track)
		}
	}
}
