package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"surw/internal/sched"
)

// Collector.Decide reads interned strings out of a live *sched.State, so
// the ring and exporter behaviour over real schedules is exercised in
// collector_test.go (package obs_test); this file unit-tests the pure
// pieces: histograms, metrics math, flight serialization, bench parsing.

func TestBucket(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0}, {1, 1}, {15, 15}, {16, 16}, {17, 16}, {100, 16},
	} {
		if got := bucket(tc.in); got != tc.want {
			t.Errorf("bucket(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMetricsSnapshotAndPrometheus(t *testing.T) {
	m := NewMetrics()
	m.ObserveResult("RW", &sched.Result{Steps: 10})
	m.ObserveResult("RW", &sched.Result{Steps: 20, Truncated: true})
	m.ObserveResult("RW", &sched.Result{
		Steps:   30,
		Failure: &sched.Failure{Kind: sched.FailAssert, BugID: "b"},
	})
	m.ItemDone(40 * time.Millisecond)
	m.BatchDone(2, 100*time.Millisecond)

	s := m.Snapshot()
	if s.Schedules != 3 || s.Steps != 60 || s.Truncated != 1 || s.Buggy != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.StepsPerSched != 20 {
		t.Fatalf("steps/schedule %v, want 20", s.StepsPerSched)
	}
	if want := 1.0 / 3.0; math.Abs(s.TruncationRate-want) > 1e-12 {
		t.Fatalf("truncation rate %v, want %v", s.TruncationRate, want)
	}
	if want := 0.2; math.Abs(s.Utilization-want) > 1e-9 {
		t.Fatalf("utilization %v, want %v", s.Utilization, want)
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"surw_schedules_total 3",
		"surw_steps_total 60",
		"surw_truncated_total 1",
		"surw_buggy_total 1",
		"# TYPE surw_schedules_total counter",
		"# TYPE surw_truncation_rate gauge",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("prometheus page missing %q:\n%s", want, page)
		}
	}
	// Prometheus text format: every non-comment line is "name[{labels}] value".
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	if sum := m.Summary(); !strings.Contains(sum, "3 schedules") {
		t.Errorf("summary %q missing schedule count", sum)
	}
}

// TestMetricsPickEntropy drives the per-algorithm histograms through the
// tracer interface with a hand-built state-free harness: a MetricsTracer
// only reads st.Enabled(), so a real schedule is used.
func TestMetricsAlgStatsDirect(t *testing.T) {
	m := NewMetrics()
	a := m.algStats("X")
	// Simulate 8 consulted decisions picking positions 0 and 1 equally from
	// a 2-thread enabled set: entropy must be exactly 1 bit.
	for i := 0; i < 8; i++ {
		a.decisions.Add(1)
		a.branch[bucket(2)].Add(1)
		a.pick[bucket(i%2)].Add(1)
	}
	s := m.Snapshot()
	if len(s.Algorithms) != 1 || s.Algorithms[0].Algorithm != "X" {
		t.Fatalf("algorithms %+v", s.Algorithms)
	}
	as := s.Algorithms[0]
	if as.Decisions != 8 {
		t.Fatalf("decisions %d", as.Decisions)
	}
	if math.Abs(as.PickEntropy-1.0) > 1e-12 {
		t.Fatalf("pick entropy %v, want 1.0", as.PickEntropy)
	}
	if math.Abs(as.MeanBranch-2.0) > 1e-12 {
		t.Fatalf("mean branching %v, want 2.0", as.MeanBranch)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `surw_pick_entropy_bits{alg="X"} 1`) {
		t.Errorf("page missing labeled entropy:\n%s", buf.String())
	}
}

func TestFlightRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fr := &FlightRecord{
		Version:     FlightVersion,
		Target:      "CS/reorder_4",
		Algorithm:   "SURW",
		Session:     2,
		Schedule:    17,
		Seed:        12345,
		ProgSeed:    7,
		Delta:       `accesses to var "b"`,
		Recording:   "3:0,2,1",
		BugID:       "reorder",
		FailKind:    "assert",
		FailMsg:     "checker saw stale value",
		FailStep:    11,
		Steps:       11,
		Threads:     5,
		Fingerprint: "00deadbeef00cafe",
		Reproduced:  true,
		LastDecisions: []RecordJSON{
			{Step: 10, TID: 4, Path: "0.3", Seq: 2, Kind: "read", Obj: "b", Enabled: 5, Consulted: true},
		},
	}
	path, err := WriteFlight(dir, fr)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if strings.ContainsAny(base, "/ ") || !strings.HasPrefix(base, "flight_CS_reorder_4_SURW_s2_") {
		t.Fatalf("unexpected flight filename %q", base)
	}
	got, err := ReadFlight(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(fr)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Fatalf("round trip mismatch:\n%s\n%s", want, have)
	}
}

func TestReadFlightRejectsBadDumps(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := writeFile(p, content); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := ReadFlight(write("garbage.json", "not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFlight(write("vers.json", `{"version":99,"target":"x","recording":"0:","bug_id":"b"}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ReadFlight(write("empty.json", `{"version":1}`)); err == nil {
		t.Error("missing fields accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: surw
cpu: Intel(R) Xeon(R)
BenchmarkPooledSchedule/fresh-8         	    2000	     49908 ns/op	   14520 B/op	      43 allocs/op
BenchmarkPooledSchedule/pooled          	    2000	     48699 ns/op	     327 B/op	      11 allocs/op
BenchmarkParallelSessions/workers_4-8   	       5	 210000000 ns/op	        3800 schedules/s	        19.5 allocs/schedule
PASS
ok  	surw	0.2s
`
	rs, err := ParseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	if rs[0].Name != "BenchmarkPooledSchedule/fresh" || rs[0].Procs != 8 {
		t.Fatalf("suffix not stripped: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkPooledSchedule/pooled" || rs[1].Procs != 0 {
		t.Fatalf("suffix-free name mangled: %+v", rs[1])
	}
	if rs[1].Metrics["allocs/op"] != 11 {
		t.Fatalf("allocs/op %v", rs[1].Metrics["allocs/op"])
	}
	if rs[2].Name != "BenchmarkParallelSessions/workers_4" {
		t.Fatalf("underscored name mangled: %+v", rs[2])
	}
	if rs[2].Metrics["schedules/s"] != 3800 {
		t.Fatalf("custom metric lost: %+v", rs[2].Metrics)
	}
}

func TestCheckGate(t *testing.T) {
	rs := []BenchResult{{
		Name:    "BenchmarkPooledSchedule/pooled",
		Metrics: map[string]float64{"allocs/op": 11, "ns/op": 48699},
	}}
	for _, gate := range []string{
		"BenchmarkPooledSchedule/pooled.allocs/op<=11",
		"BenchmarkPooledSchedule/pooled.allocs/op<=12",
		"BenchmarkPooledSchedule/pooled.ns/op>=1",
	} {
		if err := CheckGate(gate, rs); err != nil {
			t.Errorf("gate %q failed: %v", gate, err)
		}
	}
	for _, gate := range []string{
		"BenchmarkPooledSchedule/pooled.allocs/op<=10", // regression
		"BenchmarkPooledSchedule/pooled.B/op<=100",     // missing metric
		"BenchmarkAbsent/x.allocs/op<=1",               // missing benchmark
		"no-operator",                                  // malformed
		".allocs/op<=1",                                // empty name
	} {
		if err := CheckGate(gate, rs); err == nil {
			t.Errorf("gate %q passed, want failure", gate)
		}
	}
}
