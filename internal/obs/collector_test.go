package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/obs"
	"surw/internal/sched"
)

// pingpong has two workers with enough events for a meaningful trace.
func pingpong(k int) func(*sched.Thread) {
	return func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Add(w, 1)
			}
		})
		b := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Add(w, 2)
			}
		})
		t.Join(a)
		t.Join(b)
	}
}

func TestCollectorKeepsEveryDecisionUnbounded(t *testing.T) {
	col := obs.NewCollector(0)
	r := sched.Run(pingpong(6), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 5}, Tracer: col})
	if col.Len() != r.Steps {
		t.Fatalf("collector holds %d records for %d steps", col.Len(), r.Steps)
	}
	if col.Dropped() != 0 {
		t.Fatalf("dropped %d from unbounded collector", col.Dropped())
	}
	if col.Steps() != r.Steps || col.Threads() != r.Threads {
		t.Fatalf("meta steps=%d threads=%d, result %d/%d",
			col.Steps(), col.Threads(), r.Steps, r.Threads)
	}
	for i := 0; i < col.Len(); i++ {
		if got := col.Record(i).Step; got != i {
			t.Fatalf("record %d holds step %d; order broken", i, got)
		}
	}
	if col.ThreadPath(0) != "0" {
		t.Fatalf("root path %q", col.ThreadPath(0))
	}
}

func TestCollectorRingKeepsLastN(t *testing.T) {
	const ring = 5
	col := obs.NewCollector(ring)
	r := sched.Run(pingpong(8), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 5}, Tracer: col})
	if r.Steps <= ring {
		t.Fatalf("program too short (%d steps) to wrap ring %d", r.Steps, ring)
	}
	if col.Len() != ring {
		t.Fatalf("ring holds %d, want %d", col.Len(), ring)
	}
	if col.Dropped() != r.Steps-ring {
		t.Fatalf("dropped %d, want %d", col.Dropped(), r.Steps-ring)
	}
	// Oldest-first: records must be the final `ring` steps in order.
	for i := 0; i < ring; i++ {
		want := r.Steps - ring + i
		if got := col.Record(i).Step; got != want {
			t.Fatalf("ring[%d] holds step %d, want %d", i, got, want)
		}
	}
}

// TestCollectorRecyclesAcrossSchedules holds the pooled-tracer promise:
// steady-state collection on a pool must not allocate per schedule.
func TestCollectorRecyclesAcrossSchedules(t *testing.T) {
	col := obs.NewCollector(0)
	pool := sched.NewPool()
	prog := pingpong(6)
	alg := core.NewURW() // URW annotates, exercising the annot buffers too
	// Warm everything: pool buffers, ring slots, annotation buffers.
	for i := 0; i < 5; i++ {
		pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i)}, Tracer: col})
	}
	allocs := testing.AllocsPerRun(50, func() {
		pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: 3}, Tracer: col})
	})
	// The pooled scheduler itself allocates a handful per schedule; the
	// collector must add zero on top (warm slots are reused in place).
	base := testing.AllocsPerRun(50, func() {
		pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: 3}})
	})
	if allocs > base {
		t.Fatalf("collector adds allocations: %.1f with tracer vs %.1f without", allocs, base)
	}
}

func TestWriteJSONL(t *testing.T) {
	col := obs.NewCollector(0)
	sched.Run(pingpong(4), core.NewURW(), sched.Options{Base: sched.Base{Seed: 2}, Tracer: col})
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, col); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if lines == 1 {
			meta, ok := v["meta"].(map[string]any)
			if !ok {
				t.Fatalf("first line is not the meta object: %s", sc.Text())
			}
			if meta["algorithm"] != "URW" {
				t.Fatalf("meta algorithm %v", meta["algorithm"])
			}
		}
	}
	if lines != col.Len()+1 {
		t.Fatalf("wrote %d lines for %d records (+1 meta)", lines, col.Len())
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	col := obs.NewCollector(0)
	r := sched.Run(pingpong(4), core.NewSURW(), sched.Options{Base: sched.Base{Seed: 2}, Tracer: col})
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if err := obs.ValidateChromeTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("own export fails validation: %v", err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	var threadNames, slices int
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames++
		case ev.Ph == "X":
			slices++
		}
	}
	if threadNames != r.Threads {
		t.Fatalf("%d thread_name tracks for %d threads", threadNames, r.Threads)
	}
	if slices != r.Steps {
		t.Fatalf("%d slices for %d steps", slices, r.Steps)
	}

	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X","ts":0,"dur":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"M"}]}`,
	} {
		if err := obs.ValidateChromeTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("validator accepted %s", bad)
		}
	}
}

// TestCollectorAnnotations checks SURW's Δ-weight annotations survive into
// the exported records.
func TestCollectorAnnotations(t *testing.T) {
	col := obs.NewCollector(0)
	prog := pingpong(4)
	sched.Run(prog, core.NewSURW(), sched.Options{Base: sched.Base{Seed: 2}, Tracer: col})
	found := false
	for i := 0; i < col.Len(); i++ {
		if a := col.Record(i).Annot(); strings.Contains(a, "intended=") && strings.Contains(a, "Δw=") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no SURW annotation captured")
	}

	col.Annotate = false
	sched.Run(prog, core.NewSURW(), sched.Options{Base: sched.Base{Seed: 2}, Tracer: col})
	for i := 0; i < col.Len(); i++ {
		if a := col.Record(i).Annot(); a != "" {
			t.Fatalf("annotation %q captured with Annotate=false", a)
		}
	}
}
