// Package obs is the observability layer: zero-cost-when-disabled
// instrumentation for the controlled scheduler and everything above it.
//
// It supplies the ready-made implementations of the sched.Tracer hook —
//
//   - Collector: a pooled ring buffer of scheduling decisions (step, chosen
//     thread, enabled-set size, event, algorithm annotation), exportable as
//     JSONL or as Chrome trace_event JSON so any interleaving opens in
//     Perfetto with one track per virtual thread (export.go);
//   - Metrics: a concurrency-safe aggregator of schedules/sec, steps and
//     allocs per schedule, truncation rate, per-algorithm pick-entropy and
//     branching-factor histograms, and worker utilization, rendered as a
//     Prometheus-style text page (metrics.go);
//   - FlightRecord: the first-failure flight recorder dumped by the runner
//     and replayed bit-exactly by `surwrun -replay-flight` (flight.go);
//
// plus the benchmark-output parser and regression gates behind `make bench`
// and ci.sh (bench.go).
//
// Everything here is strictly observational: attaching any of it never
// changes which threads are scheduled, so traced and untraced runs of the
// same (program, algorithm, seed) witness the same interleaving.
package obs

import (
	"surw/internal/sched"
)

// FlightRingSize is the number of trailing decisions a flight record keeps
// (the "last-N decisions" window).
const FlightRingSize = 256

// Record is one captured scheduling decision. Path and Obj are the
// scheduler's interned strings, so capturing them does not allocate; the
// annotation lives in a per-slot buffer the ring recycles.
type Record struct {
	Step      int
	TID       int
	Seq       int
	Enabled   int
	Consulted bool
	Kind      sched.OpKind
	Obj       string // shared-object name, "" for yield/join
	Path      string // stable logical path of the chosen thread

	annot []byte // recycled per-slot annotation buffer
}

// Annot returns the algorithm annotation captured with the decision ("" if
// the algorithm exposes none or annotation capture was off).
func (r *Record) Annot() string { return string(r.annot) }

// Collector implements sched.Tracer: it records every scheduling decision
// of the current schedule into a pooled ring buffer. With RingCap > 0 only
// the last RingCap decisions are kept (the flight-recorder configuration);
// with RingCap <= 0 the collector keeps every decision (the trace-export
// configuration). Either way the record slots — including their annotation
// buffers — are recycled across schedules, so steady-state collection
// allocates only when a schedule outgrows every previous one.
//
// A Collector serves one Execution at a time (like the scheduler itself it
// is single-goroutine); give each parallel session its own.
type Collector struct {
	// Annotate captures algorithm annotations (sched.Annotator) with each
	// decision. On by default in NewCollector.
	Annotate bool

	ringCap int
	n       int // decisions seen this schedule
	recs    []Record
	alg     string
	steps   int
	threads int
	paths   []string // path per TID, grown as threads appear
	failure *sched.Failure
	trunc   bool
}

// NewCollector returns a collector keeping the last ringCap decisions
// (every decision when ringCap <= 0), with annotation capture enabled.
func NewCollector(ringCap int) *Collector {
	return &Collector{Annotate: true, ringCap: ringCap}
}

// BeginSchedule implements sched.Tracer: it rewinds the ring, dropping the
// previous schedule's records while keeping their capacity.
func (c *Collector) BeginSchedule(alg string) {
	c.alg = alg
	c.n = 0
	c.steps = 0
	c.threads = 0
	c.paths = c.paths[:0]
	c.failure = nil
	c.trunc = false
}

// Decide implements sched.Tracer.
func (c *Collector) Decide(d sched.Decision, st *sched.State) {
	var slot *Record
	if c.ringCap > 0 {
		if len(c.recs) < c.ringCap {
			c.recs = append(c.recs, Record{})
		}
		slot = &c.recs[c.n%c.ringCap]
	} else {
		if c.n < len(c.recs) {
			slot = &c.recs[c.n]
		} else {
			c.recs = append(c.recs, Record{})
			slot = &c.recs[len(c.recs)-1]
		}
	}
	c.n++
	annot := slot.annot[:0]
	if c.Annotate {
		annot = st.AppendAlgAnnotation(annot)
	}
	*slot = Record{
		Step:      d.Step,
		TID:       d.Chosen,
		Seq:       d.Event.Seq,
		Enabled:   d.Enabled,
		Consulted: d.Consulted,
		Kind:      d.Event.Kind,
		Obj:       st.ObjName(d.Event.Obj),
		Path:      st.Path(d.Chosen),
		annot:     annot,
	}
	for t := len(c.paths); t < st.NumThreads(); t++ {
		c.paths = append(c.paths, st.Path(t))
	}
}

// EndSchedule implements sched.Tracer.
func (c *Collector) EndSchedule(r *sched.Result) {
	c.steps = r.Steps
	c.threads = r.Threads
	c.failure = r.Failure
	c.trunc = r.Truncated
}

// Len returns the number of records currently held (min(decisions seen,
// ring capacity)).
func (c *Collector) Len() int {
	if c.ringCap > 0 && c.n > c.ringCap {
		return c.ringCap
	}
	return c.n
}

// Dropped returns how many early decisions the ring overwrote.
func (c *Collector) Dropped() int { return c.n - c.Len() }

// Record returns the i-th held record in decision order (0 = oldest held).
// The pointer is valid until the next schedule begins.
func (c *Collector) Record(i int) *Record {
	if c.ringCap > 0 && c.n > c.ringCap {
		return &c.recs[(c.n+i)%c.ringCap]
	}
	return &c.recs[i]
}

// Algorithm returns the algorithm name of the last collected schedule.
func (c *Collector) Algorithm() string { return c.alg }

// Steps returns the step count of the last collected schedule.
func (c *Collector) Steps() int { return c.steps }

// Threads returns the thread count of the last collected schedule.
func (c *Collector) Threads() int { return c.threads }

// ThreadPath returns the logical path of a TID seen during collection.
func (c *Collector) ThreadPath(tid int) string {
	if tid < len(c.paths) {
		return c.paths[tid]
	}
	return ""
}
