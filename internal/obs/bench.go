package obs

// Benchmark-output tooling: ParseBench turns `go test -bench` text into
// structured results (backing `make bench` → BENCH_obs.json) and CheckGate
// enforces "name.metric<=value" regression gates on them (backing the ci.sh
// allocation-overhead gate that keeps the disabled tracer free).

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (e.g. "BenchmarkPooledSchedule/pooled").
	Name string `json:"name"`
	// Procs is the stripped GOMAXPROCS suffix (0 if the line had none).
	Procs int `json:"procs,omitempty"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the line
	// ("ns/op", "B/op", "allocs/op", plus any b.ReportMetric extras).
	Metrics map[string]float64 `json:"metrics"`
}

// ParseBench extracts benchmark result lines from `go test -bench` output,
// tolerating the interleaved goos/goarch/pkg/PASS chatter.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		br := BenchResult{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		// Strip the -GOMAXPROCS suffix go test appends to every name.
		if i := strings.LastIndexByte(br.Name, '-'); i > 0 {
			if p, err := strconv.Atoi(br.Name[i+1:]); err == nil {
				br.Name = br.Name[:i]
				br.Procs = p
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			br.Metrics[fields[i+1]] = v
		}
		if ok {
			out = append(out, br)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan bench output: %w", err)
	}
	return out, nil
}

// CheckGate evaluates one regression gate of the form
// "name.metric<=value" (or ">=") against parsed benchmark results, e.g.
//
//	BenchmarkPooledSchedule/pooled.allocs/op<=11
//
// The metric may itself contain dots and slashes; the separator is the last
// '.' before the comparison operator. A gate whose benchmark is absent from
// results fails (a silently-skipped gate gates nothing).
func CheckGate(gate string, results []BenchResult) error {
	op := "<="
	i := strings.Index(gate, "<=")
	if i < 0 {
		i = strings.Index(gate, ">=")
		op = ">="
	}
	if i < 0 {
		return fmt.Errorf("obs: gate %q: want name.metric<=value or >=", gate)
	}
	lhs, rhs := gate[:i], gate[i+2:]
	bound, err := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
	if err != nil {
		return fmt.Errorf("obs: gate %q: bad bound: %v", gate, err)
	}
	dot := strings.LastIndexByte(lhs, '.')
	// "allocs/op" and "B/op" contain no dot, so the last '.' of the LHS
	// always separates benchmark name from metric; "ns/op" likewise.
	if dot <= 0 || dot == len(lhs)-1 {
		return fmt.Errorf("obs: gate %q: want name.metric%svalue", gate, op)
	}
	name, metric := lhs[:dot], lhs[dot+1:]
	for _, br := range results {
		if br.Name != name {
			continue
		}
		v, ok := br.Metrics[metric]
		if !ok {
			return fmt.Errorf("obs: gate %q: benchmark %s has no metric %q (has %s)",
				gate, name, metric, metricNames(br))
		}
		pass := v <= bound
		if op == ">=" {
			pass = v >= bound
		}
		if !pass {
			return fmt.Errorf("obs: gate FAILED: %s.%s = %g, want %s %g", name, metric, v, op, bound)
		}
		return nil
	}
	return fmt.Errorf("obs: gate %q: benchmark %q not found in results", gate, name)
}

func metricNames(br BenchResult) string {
	names := make([]string, 0, len(br.Metrics))
	for k := range br.Metrics {
		names = append(names, k)
	}
	// Deterministic error text matters for tests.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
