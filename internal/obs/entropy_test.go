package obs

// White-box tests for the entropy path and the metrics HTTP handler: the
// exporters must stay finite (JSON cannot carry NaN) and the Prometheus
// page must declare the exposition-format content type. The entropy
// implementation itself lives in internal/stats (EntropyBits, shared with
// the root package's Exploration entropies); these cases pin the guard
// semantics the aggregator depends on.

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"surw/internal/stats"
)

func TestEntropyBits(t *testing.T) {
	cases := []struct {
		name string
		hist []int64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []int64{0, 0, 0}, 0},
		{"single bucket", []int64{0, 100, 0}, 0}, // degenerate: must be exactly 0, not NaN
		{"two equal", []int64{5, 5}, 1},
		{"four equal", []int64{3, 3, 3, 3}, 2},
		{"quarter split", []int64{3, 1}, -0.75*math.Log2(0.75) - 0.25*math.Log2(0.25)},
	}
	for _, tc := range cases {
		got := stats.EntropyBits(tc.hist)
		if math.IsNaN(got) {
			t.Errorf("%s: entropy is NaN", tc.name)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: entropy = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// A snapshot with a single-position pick histogram (an algorithm that
// always picks position 0) must survive json.Marshal — Marshal rejects NaN
// outright, so this is the regression test for the NaN hazard.
func TestSnapshotSinglePickBucketMarshals(t *testing.T) {
	m := NewMetrics()
	st := m.algStats("always-first")
	st.decisions.Add(100)
	st.pick[0].Add(100)
	st.branch[2].Add(100)

	s := m.Snapshot()
	if len(s.Algorithms) != 1 {
		t.Fatalf("snapshot has %d algorithms", len(s.Algorithms))
	}
	if e := s.Algorithms[0].PickEntropy; e != 0 {
		t.Fatalf("single-bucket pick entropy = %v, want exactly 0", e)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestMetricsHandlerContentType(t *testing.T) {
	m := NewMetrics()
	m.algStats("always-first").pick[0].Add(7)

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type = %q, want %q", ct, PrometheusContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `surw_pick_entropy_bits{alg="always-first"} 0`) {
		t.Fatalf("prometheus page does not report the degenerate entropy as 0:\n%s", body)
	}
	if strings.Contains(body, "NaN") {
		t.Fatal("prometheus page contains NaN")
	}
}
