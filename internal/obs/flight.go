package obs

// The flight recorder: when a session hits its first failing schedule, the
// runner re-executes that schedule deterministically with a replay recorder
// and a ring collector attached, and dumps everything needed to reproduce
// the failure bit-exactly — seed, program seed, step budget, the recorded
// choice sequence, the interleaving fingerprint, and the last N scheduling
// decisions — as one JSON file under results/flight/. `surwrun
// -replay-flight <file>` re-executes the dump through internal/replay and
// verifies the same bug fires with the same fingerprint.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FlightVersion is the wire-format version stamped into every flight dump.
const FlightVersion = 1

// FlightRecord is the JSON wire form of one flight dump. It is
// self-describing: together with the target name it carries everything a
// bit-exact replay needs.
type FlightRecord struct {
	Version   int    `json:"version"`
	Target    string `json:"target"`
	Algorithm string `json:"algorithm"`

	// Coordinates of the failing schedule within its RunTarget batch.
	Session  int `json:"session"`
	Schedule int `json:"schedule"` // 0-based index within the session

	// Exact sched.Options of the failing schedule.
	Seed     int64 `json:"seed"`
	ProgSeed int64 `json:"prog_seed"`
	MaxSteps int   `json:"max_steps,omitempty"`

	// Delta names the interesting-event selection the schedule ran under
	// ("" when the algorithm ran with Δ = Γ or no profile).
	Delta string `json:"delta,omitempty"`

	// Recording is the replay.Recording string ("N:c0,c1,..."): the choice
	// the algorithm made at every consulted decision.
	Recording string `json:"recording"`

	// Failure identity and shape.
	BugID    string `json:"bug_id"`
	FailKind string `json:"fail_kind"`
	FailMsg  string `json:"fail_msg,omitempty"`
	FailStep int    `json:"fail_step"`

	Steps   int `json:"steps"`
	Threads int `json:"threads"`

	// Fingerprint is the hex InterleavingHash of the failing schedule under
	// the target's TraceFilter; a replay reproduces bit-exactly iff it
	// reaches the same BugID with the same fingerprint.
	Fingerprint string `json:"fingerprint"`

	// ClassFingerprint is the hex commutation-class fingerprint
	// (sched.Result.ClassHash) of the failing schedule. A flight record
	// that reproduces the interleaving must also reproduce its class; the
	// field additionally lets dedup tooling recognize when two distinct
	// failing interleavings are schedule-equivalent. Optional on the wire
	// (older dumps predate it); when present, replays verify it too.
	ClassFingerprint string `json:"class_fingerprint,omitempty"`

	// Reproduced records whether the capture re-run already matched the
	// original failure (it should always be true; false flags a
	// nondeterministic target).
	Reproduced bool `json:"reproduced"`

	// LastDecisions is the trailing window (up to FlightRingSize) of
	// scheduling decisions before the failure, with algorithm annotations.
	LastDecisions []RecordJSON `json:"last_decisions,omitempty"`
}

// sanitizeName maps a target name to a filename fragment.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// WriteFlight writes fr under dir (created if needed) and returns the file
// path. The filename encodes target, algorithm, session, and fingerprint,
// so repeated runs overwrite their own dump rather than accumulating.
func WriteFlight(dir string, fr *FlightRecord) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: flight dir: %w", err)
	}
	name := fmt.Sprintf("flight_%s_%s_s%d_%s.json",
		sanitizeName(fr.Target), sanitizeName(fr.Algorithm), fr.Session, fr.Fingerprint)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := WriteJSON(f, fr); err != nil {
		f.Close()
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	return path, nil
}

// ReadFlight loads a flight dump written by WriteFlight.
func ReadFlight(path string) (*FlightRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read flight: %w", err)
	}
	fr := &FlightRecord{}
	if err := json.Unmarshal(data, fr); err != nil {
		return nil, fmt.Errorf("obs: parse flight %s: %w", path, err)
	}
	if fr.Version != FlightVersion {
		return nil, fmt.Errorf("obs: flight %s has version %d, want %d", path, fr.Version, FlightVersion)
	}
	if fr.Target == "" || fr.Recording == "" || fr.BugID == "" {
		return nil, fmt.Errorf("obs: flight %s is missing target, recording, or bug_id", path)
	}
	return fr, nil
}

// CollectorRecords flattens the collector's held window into wire records
// (oldest first) for embedding in a FlightRecord.
func CollectorRecords(c *Collector) []RecordJSON {
	out := make([]RecordJSON, c.Len())
	for i := range out {
		out[i] = c.Record(i).toJSON()
	}
	return out
}
