package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistBucketBounds(t *testing.T) {
	// Bucket i holds durations whose nanosecond count has bit-length i,
	// i.e. ns in [2^(i-1), 2^i). The upper bound in seconds is (2^i - 1)/1e9.
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Second, 30},
	}
	for _, c := range cases {
		if got := histBucketOf(int64(c.d)); got != c.want {
			t.Errorf("histBucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	if !math.IsInf(HistBucketBound(HistogramBuckets-1), 1) {
		t.Errorf("last bucket bound = %v, want +Inf", HistBucketBound(HistogramBuckets-1))
	}
	// Bounds strictly increase.
	for i := 1; i < HistogramBuckets-1; i++ {
		if HistBucketBound(i) <= HistBucketBound(i-1) {
			t.Errorf("bounds not increasing at %d: %v <= %v", i, HistBucketBound(i), HistBucketBound(i-1))
		}
	}
}

func TestHistogramObserveWireMerge(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Second)
	w := h.Wire()
	if w.Count != 3 {
		t.Fatalf("count = %d, want 3", w.Count)
	}
	wantSum := int64(time.Millisecond + 2*time.Millisecond + time.Second)
	if w.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", w.SumNanos, wantSum)
	}
	// Wire trims trailing zero buckets: last entry must be non-zero.
	if n := len(w.Buckets); n == 0 || w.Buckets[n-1] == 0 {
		t.Fatalf("wire buckets not trimmed: %v", w.Buckets)
	}

	var m Histogram
	m.Merge(w)
	m.Merge(w)
	if got := m.Count(); got != 6 {
		t.Fatalf("merged count = %d, want 6", got)
	}
	if m.Wire().SumNanos != 2*wantSum {
		t.Fatalf("merged sum = %d, want %d", m.Wire().SumNanos, 2*wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 1 at ~1s: p50 stays in the 1ms bucket,
	// p99 too (ceil(0.99*101) = 100 <= 100), but the max lands at ~1s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot("op")
	if s.Op != "op" || s.Count != 101 {
		t.Fatalf("snapshot header: %+v", s)
	}
	if s.P50 > 0.01 {
		t.Errorf("p50 = %v, want ~1ms bucket bound (<= 10ms)", s.P50)
	}
	if s.P99 > 0.01 {
		t.Errorf("p99 = %v, want ~1ms bucket bound", s.P99)
	}
	// Buckets are cumulative and end at count.
	if n := len(s.Buckets); n == 0 || s.Buckets[n-1].CumCount != 101 {
		t.Fatalf("cumulative buckets wrong: %+v", s.Buckets)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].CumCount < s.Buckets[i-1].CumCount {
			t.Fatalf("cumulative counts decrease at %d", i)
		}
	}
}

func TestLatencySetWireMergeSnapshots(t *testing.T) {
	var a LatencySet
	a.Observe("lease_rpc", 3*time.Millisecond)
	a.Observe("session", 40*time.Millisecond)
	a.Observe("session", 60*time.Millisecond)

	var b LatencySet
	b.Merge(a.Wire())
	b.Observe("session", 80*time.Millisecond)

	snaps := b.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	// Sorted by op.
	if snaps[0].Op != "lease_rpc" || snaps[1].Op != "session" {
		t.Fatalf("snapshot order: %s, %s", snaps[0].Op, snaps[1].Op)
	}
	if snaps[1].Count != 3 {
		t.Fatalf("session count = %d, want 3", snaps[1].Count)
	}
}

func TestWriteLatencyPrometheusLints(t *testing.T) {
	var s LatencySet
	s.Observe("lease_rpc", 500*time.Microsecond)
	s.Observe("submit", 2*time.Millisecond)
	s.Observe("submit", 7*time.Millisecond)
	var buf bytes.Buffer
	if err := WriteLatencyPrometheus(&buf, "surw_latency_seconds", "Operation latency.", s.Snapshots()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.Contains(page, `surw_latency_seconds_bucket{op="submit",le="+Inf"}`) {
		t.Errorf("missing +Inf bucket:\n%s", page)
	}
	if err := LintPrometheus(strings.NewReader(page)); err != nil {
		t.Errorf("latency page fails lint: %v\n%s", err, page)
	}
}

func TestMetricsLatencyInPrometheusPage(t *testing.T) {
	m := NewMetrics()
	m.Latency("session").Observe(5 * time.Millisecond)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `surw_latency_seconds_count{op="session"} 1`) {
		t.Errorf("metrics page missing latency series:\n%s", buf.String())
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("metrics page fails lint: %v", err)
	}
}
