package obs

// Trace exporters: a schedule captured by a Collector renders as JSONL (one
// decision per line, machine-diffable) or as Chrome trace_event JSON, which
// Perfetto and chrome://tracing open directly with one track per virtual
// thread. The same pretty-printed JSON encoder backs the flight recorder
// and surwprof -json.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// RecordJSON is the wire form of a Record, shared by the JSONL exporter and
// the flight recorder.
type RecordJSON struct {
	Step      int    `json:"step"`
	TID       int    `json:"tid"`
	Path      string `json:"path"`
	Seq       int    `json:"seq"`
	Kind      string `json:"kind"`
	Obj       string `json:"obj,omitempty"`
	Enabled   int    `json:"enabled"`
	Consulted bool   `json:"consulted,omitempty"`
	Annot     string `json:"annot,omitempty"`
}

func (r *Record) toJSON() RecordJSON {
	return RecordJSON{
		Step:      r.Step,
		TID:       r.TID,
		Path:      r.Path,
		Seq:       r.Seq,
		Kind:      r.Kind.String(),
		Obj:       r.Obj,
		Enabled:   r.Enabled,
		Consulted: r.Consulted,
		Annot:     r.Annot(),
	}
}

// WriteJSON pretty-prints v as JSON with a trailing newline (the encoding
// every JSON artifact of this repository shares).
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// WriteJSONL writes the collector's held records as JSON Lines: a meta
// object first, then one decision object per line in decision order.
func WriteJSONL(w io.Writer, c *Collector) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	meta := struct {
		Meta struct {
			Algorithm string `json:"algorithm"`
			Steps     int    `json:"steps"`
			Threads   int    `json:"threads"`
			Decisions int    `json:"decisions"`
			Dropped   int    `json:"dropped"`
		} `json:"meta"`
	}{}
	meta.Meta.Algorithm = c.Algorithm()
	meta.Meta.Steps = c.Steps()
	meta.Meta.Threads = c.Threads()
	meta.Meta.Decisions = c.Len()
	meta.Meta.Dropped = c.Dropped()
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for i := 0; i < c.Len(); i++ {
		if err := enc.Encode(c.Record(i).toJSON()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format's JSON Object
// Format. ts/dur are in microseconds; we map one scheduler step to 1 µs so
// the event index doubles as the timestamp.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int            `json:"ts"`
	Dur  int            `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the collector's held records in Chrome
// trace_event JSON: one complete ("X") event per scheduling decision on the
// chosen thread's track, with thread-name metadata mapping each track to
// its stable logical path. Perfetto (ui.perfetto.dev) and chrome://tracing
// open the output directly.
func WriteChromeTrace(w io.Writer, c *Collector) error {
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "surw schedule (alg=" + c.Algorithm() + ")"},
	})
	for tid := 0; tid < c.Threads(); tid++ {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("T%d path=%s", tid, c.ThreadPath(tid))},
		})
	}
	for i := 0; i < c.Len(); i++ {
		r := c.Record(i)
		name := r.Kind.String()
		if r.Obj != "" {
			name += "(" + r.Obj + ")"
		}
		args := map[string]any{
			"step":    r.Step,
			"seq":     r.Seq,
			"enabled": r.Enabled,
		}
		if r.Consulted {
			args["consulted"] = true
		}
		if a := r.Annot(); a != "" {
			args["annot"] = a
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Ph: "X", TS: r.Step, Dur: 1, PID: 0, TID: r.TID, Args: args,
		})
	}
	return WriteJSON(w, &tr)
}

// ValidateChromeTrace checks that r holds well-formed Chrome trace_event
// JSON as produced by WriteChromeTrace: parseable, a non-empty traceEvents
// array, every event carrying a name and phase, and at least one complete
// ("X") event with a duration. It backs the ci.sh trace smoke stage.
func ValidateChromeTrace(r io.Reader) error {
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no traceEvents")
	}
	slices := 0
	for i, ev := range tr.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			return fmt.Errorf("obs: traceEvents[%d] lacks name or ph", i)
		}
		if ev.Ph == "X" {
			if ev.Dur <= 0 {
				return fmt.Errorf("obs: traceEvents[%d] is a complete event with no duration", i)
			}
			slices++
		}
	}
	if slices == 0 {
		return fmt.Errorf("obs: trace has no complete (ph=X) events")
	}
	return nil
}
