package obs

// Benchmark trajectory tooling: BENCH_obs.json is the latest run's parsed
// results, BENCH_history.jsonl is the append-only trail of every `make
// bench` (one timestamped record per run), and CompareBench is the
// regression gate between any two parsed result sets — ci.sh uses it to
// fail a branch whose schedules/s dropped more than the tolerance against
// the committed baseline.

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadBenchJSON loads a parsed benchmark result file as written by
// `surwobs -bench2json` (the BENCH_obs.json shape: a JSON array of
// BenchResult).
func ReadBenchJSON(path string) ([]BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []BenchResult
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("obs: %s holds no benchmark results", path)
	}
	return results, nil
}

// BenchRecord is one BENCH_history.jsonl entry: the results of a single
// `make bench` run plus its timestamp.
type BenchRecord struct {
	// Time is the run's RFC 3339 UTC timestamp.
	Time    string        `json:"time"`
	Results []BenchResult `json:"results"`
}

// AppendBenchRecord appends the record as one JSON line to the history
// file, creating it on first use. Append-only: history is a trajectory,
// never a snapshot, so nothing here truncates.
func AppendBenchRecord(path string, rec BenchRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("obs: append %s: %w", path, err)
	}
	return f.Close()
}

// ReadBenchHistory loads every record of a BENCH_history.jsonl file in
// append order.
func ReadBenchHistory(path string) ([]BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []BenchRecord
	dec := json.NewDecoder(f)
	for dec.More() {
		var rec BenchRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("obs: parse %s record %d: %w", path, len(out), err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// BenchComparison is one benchmark's old-versus-new value of a
// higher-is-better metric.
type BenchComparison struct {
	Name string
	Old  float64
	New  float64
	// Delta is the fractional change; -0.12 means 12% slower.
	Delta float64
	// Regressed marks a drop beyond the comparison's tolerance.
	Regressed bool
}

// CompareBench compares a higher-is-better metric (e.g. "schedules/s")
// between two parsed benchmark sets, flagging every shared benchmark whose
// new value dropped by more than tolerance (a fraction: 0.10 allows a 10%
// drop). Benchmarks missing the metric on either side are skipped — but an
// empty intersection is an error, so a renamed benchmark or an empty file
// cannot silently pass the gate.
func CompareBench(before, after []BenchResult, metric string, tolerance float64) ([]BenchComparison, error) {
	old := make(map[string]float64, len(before))
	for _, br := range before {
		if v, ok := br.Metrics[metric]; ok {
			old[br.Name] = v
		}
	}
	var out []BenchComparison
	for _, br := range after {
		nv, ok := br.Metrics[metric]
		if !ok {
			continue
		}
		ov, ok := old[br.Name]
		if !ok {
			continue
		}
		c := BenchComparison{Name: br.Name, Old: ov, New: nv}
		if ov > 0 {
			c.Delta = (nv - ov) / ov
			c.Regressed = c.Delta < -tolerance
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: no benchmark carries metric %q on both sides", metric)
	}
	return out, nil
}
