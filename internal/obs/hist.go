package obs

// Latency histograms: a lock-free, log-bucketed duration histogram that is
// cheap enough to sit on RPC and session paths, mergeable across processes
// (workers ship their buckets to the coordinator, which folds them into one
// fleet-wide view), and renderable both as Prometheus cumulative `_bucket`
// series and as p50/p95/p99 percentile columns on the dashboard.
//
// Bucketing is powers of two in nanoseconds: an observation of v ns lands
// in bucket bits.Len64(v), whose upper bound is 2^i-1 ns. 48 buckets cover
// everything from sub-microsecond checkpoint forks to multi-hour stalls
// with at most a factor-2 quantile error — plenty for "which phase ate the
// wall-clock" questions, and small enough that every histogram is a flat
// array of atomics with no locking on the observe path.

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the number of log2 buckets; bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). The
// last bucket absorbs everything larger (~1.6 days and up).
const HistogramBuckets = 48

// Histogram is a lock-free log2-bucketed duration histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [HistogramBuckets]atomic.Uint64
}

// histBucketOf maps a nanosecond value to its bucket index.
func histBucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	return i
}

// HistBucketBound returns bucket i's inclusive upper bound in seconds
// (+Inf for the last bucket).
func HistBucketBound(i int) float64 {
	if i >= HistogramBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)-1) / 1e9
}

// Observe folds one duration into the histogram. Negative durations
// (clock skew on a non-monotonic reading) clamp to zero, keeping the sum
// a valid Prometheus histogram sum.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[histBucketOf(int64(d))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Wire returns the histogram's mergeable wire form. Trailing empty buckets
// are trimmed so quiet histograms stay small on the wire.
func (h *Histogram) Wire() HistogramWire {
	w := HistogramWire{Count: h.count.Load(), SumNanos: h.sum.Load()}
	last := -1
	var b [HistogramBuckets]uint64
	for i := range b {
		if b[i] = h.buckets[i].Load(); b[i] > 0 {
			last = i
		}
	}
	if last >= 0 {
		w.Buckets = append(w.Buckets, b[:last+1]...)
	}
	return w
}

// Merge folds a wire-form histogram (another process's observations) into
// this one. Counts only ever add, so merging the same worker's cumulative
// snapshot twice over-counts; callers keep one latest snapshot per source.
func (h *Histogram) Merge(w HistogramWire) {
	h.count.Add(w.Count)
	h.sum.Add(w.SumNanos)
	for i, n := range w.Buckets {
		if i >= HistogramBuckets {
			break
		}
		h.buckets[i].Add(n)
	}
}

// HistogramWire is the JSON form of a histogram: per-bucket counts (index =
// log2 bucket, trailing zeros trimmed) plus the totals.
type HistogramWire struct {
	Count    uint64   `json:"count"`
	SumNanos int64    `json:"sum_ns"`
	Buckets  []uint64 `json:"buckets,omitempty"`
}

// Snapshot renders the histogram into its derived form: percentiles and
// cumulative buckets ready for the dashboard and the Prometheus page.
func (h *Histogram) Snapshot(op string) LatencySnap { return h.Wire().Snapshot(op) }

// Snapshot derives percentiles and cumulative buckets from a wire
// histogram.
func (w HistogramWire) Snapshot(op string) LatencySnap {
	s := LatencySnap{Op: op, Count: w.Count, SumSeconds: float64(w.SumNanos) / 1e9}
	var cum uint64
	for i, n := range w.Buckets {
		cum += n
		if n > 0 || i == len(w.Buckets)-1 {
			s.Buckets = append(s.Buckets, LatencyBucket{LE: HistBucketBound(i), CumCount: cum})
		}
	}
	q := func(p float64) float64 {
		if w.Count == 0 {
			return 0
		}
		want := uint64(math.Ceil(p * float64(w.Count)))
		if want < 1 {
			want = 1
		}
		var c uint64
		for i, n := range w.Buckets {
			if c += n; c >= want {
				return HistBucketBound(i)
			}
		}
		return HistBucketBound(HistogramBuckets - 1)
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// LatencyBucket is one cumulative bucket of a LatencySnap: CumCount
// observations were <= LE seconds.
type LatencyBucket struct {
	LE       float64 `json:"le"`
	CumCount uint64  `json:"cum_count"`
}

// LatencySnap is the derived view of one operation's latency histogram —
// what the dashboard renders as p50/p95/p99 columns and /metrics renders
// as a Prometheus histogram.
type LatencySnap struct {
	Op         string          `json:"op"`
	Count      uint64          `json:"count"`
	SumSeconds float64         `json:"sum_seconds"`
	P50        float64         `json:"p50"`
	P95        float64         `json:"p95"`
	P99        float64         `json:"p99"`
	Buckets    []LatencyBucket `json:"buckets,omitempty"`
}

// LatencySet is a registry of named latency histograms. The zero value is
// ready; Hist interns each operation's histogram on first use, so steady
// state is one map read under a mutex plus lock-free observes — callers on
// hot paths grab the *Histogram once and hold it.
type LatencySet struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// Hist returns (creating if needed) the histogram for op.
func (s *LatencySet) Hist(op string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h := s.hists[op]
	if h == nil {
		h = &Histogram{}
		s.hists[op] = h
	}
	return h
}

// Observe folds one duration into op's histogram.
func (s *LatencySet) Observe(op string, d time.Duration) { s.Hist(op).Observe(d) }

// Wire snapshots every histogram into its mergeable wire form.
func (s *LatencySet) Wire() map[string]HistogramWire {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.hists) == 0 {
		return nil
	}
	out := make(map[string]HistogramWire, len(s.hists))
	for op, h := range s.hists {
		out[op] = h.Wire()
	}
	return out
}

// Merge folds a wire snapshot (e.g. one worker's histograms) into the set.
func (s *LatencySet) Merge(wire map[string]HistogramWire) {
	for op, w := range wire {
		s.Hist(op).Merge(w)
	}
}

// Snapshots derives every operation's LatencySnap, sorted by operation
// name, skipping empty histograms.
func (s *LatencySet) Snapshots() []LatencySnap {
	s.mu.Lock()
	ops := make([]string, 0, len(s.hists))
	for op := range s.hists {
		ops = append(ops, op)
	}
	hists := make(map[string]*Histogram, len(s.hists))
	for op, h := range s.hists {
		hists[op] = h
	}
	s.mu.Unlock()
	sort.Strings(ops)
	var out []LatencySnap
	for _, op := range ops {
		if snap := hists[op].Snapshot(op); snap.Count > 0 {
			out = append(out, snap)
		}
	}
	return out
}

// WriteLatencyPrometheus renders the snaps as one Prometheus histogram
// family: cumulative `_bucket` series labelled by operation and `le`, plus
// `_sum` and `_count`. The family name should end in `_seconds`.
func WriteLatencyPrometheus(w io.Writer, name, help string, snaps []LatencySnap) error {
	if len(snaps) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for _, s := range snaps {
		for _, b := range s.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = fmt.Sprintf("%g", b.LE)
			}
			fmt.Fprintf(w, "%s_bucket{op=%q,le=%q} %d\n", name, s.Op, le, b.CumCount)
		}
		// The +Inf bucket is mandatory and must equal the count.
		if len(s.Buckets) == 0 || !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
			fmt.Fprintf(w, "%s_bucket{op=%q,le=\"+Inf\"} %d\n", name, s.Op, s.Count)
		}
		fmt.Fprintf(w, "%s_sum{op=%q} %g\n", name, s.Op, s.SumSeconds)
		if _, err := fmt.Fprintf(w, "%s_count{op=%q} %d\n", name, s.Op, s.Count); err != nil {
			return err
		}
	}
	return nil
}
