package obs

// LintPrometheus: a self-contained checker for the Prometheus text
// exposition format (version 0.0.4) that every `/metrics` page of this
// repository must pass. It is deliberately stricter than a scraper needs
// to be — the point is keeping our own series consistent:
//
//   - every sample's family has a # HELP and # TYPE line before its first
//     sample, and at most one of each;
//   - TYPE values are legal (counter/gauge/histogram/summary/untyped);
//   - surw_* metric names match ^surw_[a-z0-9_]+$ and counters end _total;
//   - histogram families carry `le` labels on _bucket samples, cumulative
//     counts are nondecreasing per label set, the mandatory +Inf bucket is
//     present and equals the family's _count.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	promNameRe     = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	promSurwNameRe = regexp.MustCompile(`^surw_[a-z0-9_]+$`)
)

// promFamily accumulates what the linter knows about one metric family.
type promFamily struct {
	help, typ  string
	sampleSeen bool
	// histogram bookkeeping, keyed by the label set minus `le`:
	buckets map[string][]promBucket
	counts  map[string]float64
	sums    map[string]bool
}

type promBucket struct {
	le  float64
	val float64
}

// baseFamily strips the histogram/summary sample suffixes so
// foo_bucket/foo_sum/foo_count group under foo when foo is declared as a
// histogram or summary.
func baseFamily(name string, fams map[string]*promFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && (f.typ == "histogram" || f.typ == "summary") {
				return base
			}
		}
	}
	return name
}

// LintPrometheus reads a text-format metrics page and returns the first
// violation found, or nil if the page is clean.
func LintPrometheus(r io.Reader) error {
	fams := make(map[string]*promFamily)
	family := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{buckets: make(map[string][]promBucket),
				counts: make(map[string]float64), sums: make(map[string]bool)}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name, f := fields[2], family(fields[2])
			switch fields[1] {
			case "HELP":
				if f.help != "" {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					return fmt.Errorf("line %d: empty HELP text for %s", lineNo, name)
				}
				f.help = fields[3]
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if f.sampleSeen {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE line for %s has no type", lineNo, name)
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = typ
				default:
					return fmt.Errorf("line %d: invalid TYPE %q for %s", lineNo, typ, name)
				}
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name := promNameRe.FindString(line)
		if name == "" {
			return fmt.Errorf("line %d: unparseable sample %q", lineNo, line)
		}
		rest := line[len(name):]
		labels := ""
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set in %q", lineNo, line)
			}
			labels = rest[1:end]
			rest = rest[end+1:]
		}
		valStr := strings.Fields(rest)
		if len(valStr) == 0 {
			return fmt.Errorf("line %d: sample %s has no value", lineNo, name)
		}
		val, err := parsePromValue(valStr[0])
		if err != nil {
			return fmt.Errorf("line %d: sample %s: %v", lineNo, name, err)
		}

		base := baseFamily(name, fams)
		f := fams[base]
		if f == nil || f.typ == "" || f.help == "" {
			return fmt.Errorf("line %d: sample %s before HELP+TYPE for %s", lineNo, name, base)
		}
		f.sampleSeen = true

		if strings.HasPrefix(base, "surw") && !promSurwNameRe.MatchString(base) {
			return fmt.Errorf("line %d: surw metric %s violates ^surw_[a-z0-9_]+$", lineNo, base)
		}
		if f.typ == "counter" && !strings.HasSuffix(base, "_total") {
			return fmt.Errorf("line %d: counter %s must end in _total", lineNo, base)
		}
		if val < 0 && (f.typ == "counter" || f.typ == "histogram") {
			return fmt.Errorf("line %d: %s %s has negative value %g", lineNo, f.typ, base, val)
		}

		if f.typ == "histogram" && base != name {
			key, le, hasLE, err := splitLELabel(labels)
			if err != nil {
				return fmt.Errorf("line %d: %s: %v", lineNo, name, err)
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLE {
					return fmt.Errorf("line %d: histogram bucket %s lacks an le label", lineNo, name)
				}
				f.buckets[key] = append(f.buckets[key], promBucket{le: le, val: val})
			case strings.HasSuffix(name, "_count"):
				if hasLE {
					return fmt.Errorf("line %d: %s carries an le label", lineNo, name)
				}
				f.counts[key] = val
			case strings.HasSuffix(name, "_sum"):
				f.sums[key] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Cross-sample histogram checks.
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.typ != "histogram" {
			continue
		}
		for key, bs := range f.buckets {
			last, lastLE := -1.0, math.Inf(-1)
			sawInf := false
			for _, b := range bs {
				if b.le < lastLE {
					return fmt.Errorf("histogram %s{%s}: le buckets out of order", name, key)
				}
				if b.val < last {
					return fmt.Errorf("histogram %s{%s}: cumulative counts decrease at le=%g", name, key, b.le)
				}
				last, lastLE = b.val, b.le
				if math.IsInf(b.le, 1) {
					sawInf = true
				}
			}
			if !sawInf {
				return fmt.Errorf("histogram %s{%s}: missing mandatory +Inf bucket", name, key)
			}
			count, ok := f.counts[key]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: no _count sample", name, key)
			}
			if last != count {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, key, last, count)
			}
			if !f.sums[key] {
				return fmt.Errorf("histogram %s{%s}: no _sum sample", name, key)
			}
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, fmt.Errorf("NaN sample value")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// splitLELabel canonicalizes a label string, returning it with any `le`
// pair removed plus the parsed le bound.
func splitLELabel(labels string) (key string, le float64, hasLE bool, err error) {
	if labels == "" {
		return "", 0, false, nil
	}
	var kept []string
	for _, pair := range strings.Split(labels, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return "", 0, false, fmt.Errorf("bad label pair %q", pair)
		}
		val = strings.Trim(val, `"`)
		if name == "le" {
			hasLE = true
			le, err = parsePromValue(val)
			if err != nil {
				return "", 0, false, fmt.Errorf("bad le %q", val)
			}
			continue
		}
		kept = append(kept, name+"="+val)
	}
	sort.Strings(kept)
	return strings.Join(kept, ","), le, hasLE, nil
}
