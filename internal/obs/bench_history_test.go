package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func benchSet(throughput float64) []BenchResult {
	return []BenchResult{
		{Name: "BenchmarkParallelSessions/workers_4", Iterations: 5,
			Metrics: map[string]float64{"schedules/s": throughput, "allocs/schedule": 19.5}},
		{Name: "BenchmarkPooledSchedule/pooled", Iterations: 100,
			Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 11}},
	}
}

func TestReadBenchJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(f, benchSet(3800)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Metrics["schedules/s"] != 3800 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ReadBenchJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read without error")
	}
}

func TestCompareBench(t *testing.T) {
	// Within tolerance: a 5% drop passes a 10% gate.
	cmps, err := CompareBench(benchSet(4000), benchSet(3800), "schedules/s", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 1 || cmps[0].Regressed {
		t.Fatalf("5%% drop flagged as regression: %+v", cmps)
	}
	if cmps[0].Name != "BenchmarkParallelSessions/workers_4" {
		t.Fatalf("compared the wrong benchmark: %+v", cmps[0])
	}

	// Beyond tolerance: a 20% drop fails it.
	cmps, err = CompareBench(benchSet(4000), benchSet(3200), "schedules/s", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !cmps[0].Regressed {
		t.Fatalf("20%% drop not flagged: %+v", cmps[0])
	}
	if cmps[0].Delta > -0.19 || cmps[0].Delta < -0.21 {
		t.Fatalf("delta = %v, want about -0.20", cmps[0].Delta)
	}

	// Improvements never regress.
	cmps, err = CompareBench(benchSet(4000), benchSet(9000), "schedules/s", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if cmps[0].Regressed {
		t.Fatalf("improvement flagged as regression: %+v", cmps[0])
	}

	// No shared benchmark carrying the metric: an error, not a free pass.
	if _, err := CompareBench(benchSet(4000), benchSet(3800), "widgets/s", 0.10); err == nil {
		t.Fatal("absent metric compared without error")
	}
}

func TestBenchHistoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	for i, tp := range []float64{4000, 4100} {
		rec := BenchRecord{Time: []string{"2026-08-08T10:00:00Z", "2026-08-08T11:00:00Z"}[i],
			Results: benchSet(tp)}
		if err := AppendBenchRecord(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadBenchHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("history holds %d records, want 2", len(recs))
	}
	if recs[0].Time >= recs[1].Time {
		t.Fatalf("records out of append order: %q then %q", recs[0].Time, recs[1].Time)
	}
	if recs[1].Results[0].Metrics["schedules/s"] != 4100 {
		t.Fatalf("latest record lost its results: %+v", recs[1])
	}
}
