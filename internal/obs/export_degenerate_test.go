package obs_test

// Degenerate-input coverage for the exporters: collectors that never ran,
// rings that overflowed, and collectors recycled between schedules must all
// export well-formed artifacts (or be rejected by the validator for the
// right reason), never panic or emit garbage.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/obs"
	"surw/internal/sched"
)

// decodeJSONL splits exporter output into the meta object and the decision
// records.
func decodeJSONL(t *testing.T, data []byte) (meta struct {
	Meta struct {
		Algorithm string `json:"algorithm"`
		Steps     int    `json:"steps"`
		Decisions int    `json:"decisions"`
		Dropped   int    `json:"dropped"`
	} `json:"meta"`
}, recs []obs.RecordJSON) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		var r obs.RecordJSON
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("record line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return meta, recs
}

// A collector that never saw a schedule still exports: the Chrome trace is
// valid JSON holding only the process metadata (and the validator rejects
// it, because a trace with no slices is useless), and the JSONL is a lone
// meta line.
func TestExportEmptyCollector(t *testing.T) {
	col := obs.NewCollector(0)

	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, col); err != nil {
		t.Fatalf("chrome trace of empty collector: %v", err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not JSON: %v", err)
	}
	if len(tr.TraceEvents) != 1 || tr.TraceEvents[0].Ph != "M" {
		t.Fatalf("empty trace events = %+v, want exactly the process metadata", tr.TraceEvents)
	}
	if err := obs.ValidateChromeTrace(&trace); err == nil {
		t.Fatal("validator accepted a trace with no complete events")
	}

	var jsonl bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, col); err != nil {
		t.Fatalf("jsonl of empty collector: %v", err)
	}
	meta, recs := decodeJSONL(t, jsonl.Bytes())
	if meta.Meta.Decisions != 0 || meta.Meta.Steps != 0 || len(recs) != 0 {
		t.Fatalf("empty collector exported %d decisions / %d records", meta.Meta.Decisions, len(recs))
	}
}

// A ring that overflowed exports only the held tail, in decision order,
// with the drop count in the meta line.
func TestExportOverflowedRing(t *testing.T) {
	const ring = 4
	col := obs.NewCollector(ring)
	r := sched.Run(pingpong(8), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 5}, Tracer: col})
	if r.Steps <= ring {
		t.Fatalf("schedule too short (%d steps) to overflow the ring", r.Steps)
	}

	var jsonl bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, col); err != nil {
		t.Fatal(err)
	}
	meta, recs := decodeJSONL(t, jsonl.Bytes())
	if meta.Meta.Decisions != ring || meta.Meta.Dropped != r.Steps-ring {
		t.Fatalf("meta = %+v, want %d held / %d dropped", meta.Meta, ring, r.Steps-ring)
	}
	if len(recs) != ring {
		t.Fatalf("exported %d records, want %d", len(recs), ring)
	}
	for i, rec := range recs {
		if want := r.Steps - ring + i; rec.Step != want {
			t.Fatalf("record %d holds step %d, want %d (tail order broken)", i, rec.Step, want)
		}
	}
}

// A collector recycled across schedules exports only the latest schedule:
// no stale records from the longer previous run may leak into the output.
func TestExportRecycledCollector(t *testing.T) {
	col := obs.NewCollector(0)
	long := sched.Run(pingpong(10), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 5}, Tracer: col})
	short := sched.Run(pingpong(2), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 6}, Tracer: col})
	if short.Steps >= long.Steps {
		t.Fatalf("want a shorter second schedule, got %d then %d steps", long.Steps, short.Steps)
	}

	var jsonl bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, col); err != nil {
		t.Fatal(err)
	}
	meta, recs := decodeJSONL(t, jsonl.Bytes())
	if meta.Meta.Steps != short.Steps || meta.Meta.Decisions != short.Steps {
		t.Fatalf("meta = %+v, want the recycled schedule's %d steps", meta.Meta, short.Steps)
	}
	if len(recs) != short.Steps {
		t.Fatalf("exported %d records, want %d", len(recs), short.Steps)
	}
	for i, rec := range recs {
		if rec.Step != i {
			t.Fatalf("record %d holds step %d; stale data leaked across recycling", i, rec.Step)
		}
	}

	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, col); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(trace.Bytes())); err != nil {
		t.Fatalf("recycled collector's trace invalid: %v", err)
	}
}
