package obs

import (
	"strings"
	"testing"
)

func lint(t *testing.T, page string) error {
	t.Helper()
	return LintPrometheus(strings.NewReader(page))
}

func TestLintAcceptsWellFormedPage(t *testing.T) {
	page := `# HELP surw_sessions_total Sessions executed.
# TYPE surw_sessions_total counter
surw_sessions_total 42
# HELP surw_workers Gauge of connected workers.
# TYPE surw_workers gauge
surw_workers 3
# HELP surw_latency_seconds Operation latency.
# TYPE surw_latency_seconds histogram
surw_latency_seconds_bucket{op="submit",le="0.001"} 1
surw_latency_seconds_bucket{op="submit",le="0.01"} 3
surw_latency_seconds_bucket{op="submit",le="+Inf"} 3
surw_latency_seconds_sum{op="submit"} 0.012
surw_latency_seconds_count{op="submit"} 3
`
	if err := lint(t, page); err != nil {
		t.Fatalf("well-formed page rejected: %v", err)
	}
}

func TestLintRules(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string // substring of the error
	}{
		{"sample before HELP/TYPE",
			"surw_things_total 1\n",
			"before"},
		{"counter without _total",
			"# HELP surw_things Things.\n# TYPE surw_things counter\nsurw_things 1\n",
			"_total"},
		{"bad surw name",
			"# HELP surw_BadName Things.\n# TYPE surw_BadName gauge\nsurw_BadName 1\n",
			"name"},
		{"negative counter",
			"# HELP surw_things_total Things.\n# TYPE surw_things_total counter\nsurw_things_total -1\n",
			"negative"},
		{"NaN value",
			"# HELP surw_x Gauge.\n# TYPE surw_x gauge\nsurw_x NaN\n",
			"NaN"},
		{"duplicate TYPE",
			"# HELP surw_x Gauge.\n# TYPE surw_x gauge\n# TYPE surw_x gauge\nsurw_x 1\n",
			"TYPE"},
		{"unknown TYPE value",
			"# HELP surw_x Gauge.\n# TYPE surw_x meter\nsurw_x 1\n",
			"meter"},
		{"histogram missing +Inf",
			"# HELP surw_lat_seconds H.\n# TYPE surw_lat_seconds histogram\n" +
				"surw_lat_seconds_bucket{le=\"0.1\"} 2\nsurw_lat_seconds_sum 0.1\nsurw_lat_seconds_count 2\n",
			"+Inf"},
		{"histogram +Inf != count",
			"# HELP surw_lat_seconds H.\n# TYPE surw_lat_seconds histogram\n" +
				"surw_lat_seconds_bucket{le=\"0.1\"} 2\nsurw_lat_seconds_bucket{le=\"+Inf\"} 2\n" +
				"surw_lat_seconds_sum 0.1\nsurw_lat_seconds_count 3\n",
			"count"},
		{"histogram buckets decrease",
			"# HELP surw_lat_seconds H.\n# TYPE surw_lat_seconds histogram\n" +
				"surw_lat_seconds_bucket{le=\"0.1\"} 5\nsurw_lat_seconds_bucket{le=\"1\"} 3\n" +
				"surw_lat_seconds_bucket{le=\"+Inf\"} 5\nsurw_lat_seconds_sum 0.1\nsurw_lat_seconds_count 5\n",
			"cumulative"},
		{"histogram missing _sum",
			"# HELP surw_lat_seconds H.\n# TYPE surw_lat_seconds histogram\n" +
				"surw_lat_seconds_bucket{le=\"+Inf\"} 2\nsurw_lat_seconds_count 2\n",
			"_sum"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := lint(t, c.page)
			if err == nil {
				t.Fatalf("lint accepted:\n%s", c.page)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// Non-surw families (e.g. Go runtime metrics, if ever proxied) are not held
// to the surw naming rule, only to the structural ones.
func TestLintIgnoresForeignNames(t *testing.T) {
	page := "# HELP go_goroutines Goroutines.\n# TYPE go_goroutines gauge\ngo_goroutines 10\n"
	if err := lint(t, page); err != nil {
		t.Fatalf("foreign family rejected: %v", err)
	}
}

// Every Prometheus page the repo serves must lint: the Metrics page with
// latency series attached, and the latency writer on its own, label-free.
func TestLintEmptyLatencyPage(t *testing.T) {
	var s LatencySet
	var b strings.Builder
	if err := WriteLatencyPrometheus(&b, "surw_latency_seconds", "Latency.", s.Snapshots()); err != nil {
		t.Fatal(err)
	}
	if err := lint(t, b.String()); err != nil {
		t.Fatalf("empty latency page fails lint: %v\n%s", err, b.String())
	}
}
