package obs

// Distributed tracing for campaign fleets: a pooled, zero-cost-when-
// disabled span model with W3C-style context propagation, so a coordinator
// and its workers can jointly describe where a lease's wall-clock went —
// coordinator grant, worker prefix capture, each session, and the accepted
// submit — and the pieces reassemble into one end-to-end trace.
//
// The model is deliberately tiny:
//
//   - TraceID/SpanID are W3C trace-context shaped (16/8 random bytes, hex
//     on the wire); a SpanContext travels between processes as a
//     `traceparent` header value (00-<trace>-<span>-01) on the existing
//     lease/heartbeat/submit HTTP calls.
//   - A SpanLog collects finished spans for one track (one worker, or the
//     coordinator). The completed-span buffer is pooled: Drain hands the
//     spans over and recycles the backing array. A nil *SpanLog is the
//     disabled state — every method is a nil-check no-op, so untraced
//     fleets pay zero allocations and zero atomics.
//   - Durations are monotonic (time.Since on the starting time.Time);
//     Start timestamps are wall-clock nanoseconds, used only to align
//     tracks for rendering, never to compute a duration.
//
// Assembly (AssembleTraces / Trace.Complete) groups spans by TraceID and
// verifies the lease→submit shape; WriteSpanChromeTrace renders any span
// set as Chrome trace_event JSON with one Perfetto track per SpanLog
// track, so a fleet trace opens in ui.perfetto.dev directly.

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceID identifies one end-to-end trace (one lease lifecycle).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// MarshalText implements encoding.TextMarshaler (hex, as in W3C headers).
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("obs: trace id %q: want 32 hex chars", b)
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// MarshalText implements encoding.TextMarshaler.
func (s SpanID) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("obs: span id %q: want 16 hex chars", b)
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// SpanContext is the propagated half of a span: enough for a remote
// process to parent its own spans under it.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a trace.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() }

// Traceparent renders the context as a W3C trace-context header value
// (version 00, sampled flag set): 00-<32 hex>-<16 hex>-01.
func (c SpanContext) Traceparent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Unknown versions
// are accepted if the field shape matches (per the spec's forward-
// compatibility rule); an all-zero trace or span ID is invalid.
func ParseTraceparent(s string) (SpanContext, error) {
	var c SpanContext
	parts := strings.Split(s, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return c, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if err := c.Trace.UnmarshalText([]byte(parts[1])); err != nil {
		return c, err
	}
	if err := c.Span.UnmarshalText([]byte(parts[2])); err != nil {
		return c, err
	}
	if c.Trace.IsZero() || c.Span.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q has a zero id", s)
	}
	return c, nil
}

// TraceparentHeader is the HTTP header spans propagate through.
const TraceparentHeader = "traceparent"

// Span is one finished span, in its JSON wire form (fleet span logs are
// JSONL of these). Start is wall-clock nanoseconds; Dur is a monotonic
// duration in nanoseconds.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Track  string  `json:"track"`
	Start  int64   `json:"start_ns"`
	Dur    int64   `json:"dur_ns"`

	// Annotations; all optional.
	Lease   string `json:"lease,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Target  string `json:"target,omitempty"`
	Alg     string `json:"alg,omitempty"`
	Session int    `json:"session,omitempty"` // 1-based (like Session.FirstBug); 0 = n/a
	N       int    `json:"n,omitempty"`       // generic count (sessions in a lease, records accepted)
	HB      int    `json:"hb,omitempty"`      // heartbeats seen while the span was open
	Err     string `json:"err,omitempty"`
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// SpanLog collects the finished spans of one track. A nil *SpanLog is the
// disabled tracer: every method no-ops, costing one nil check and zero
// allocations. All methods are safe for concurrent use.
type SpanLog struct {
	track string

	mu    sync.Mutex
	rng   *rand.Rand
	spans []Span // pooled: Drain recycles the backing array
}

// NewSpanLog returns an enabled span log whose spans carry the given track
// name (the worker or coordinator identity — one Perfetto track each).
func NewSpanLog(track string) *SpanLog {
	return &SpanLog{track: track, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// Enabled reports whether the log records spans (false on nil).
func (l *SpanLog) Enabled() bool { return l != nil }

// Track returns the log's track name ("" on nil).
func (l *SpanLog) Track() string {
	if l == nil {
		return ""
	}
	return l.track
}

// newIDLocked fills b with random bytes. Caller holds l.mu.
func (l *SpanLog) newIDLocked(b []byte) {
	for i := range b {
		b[i] = byte(l.rng.Intn(256))
	}
	// An all-zero ID is reserved for "unset"; re-draw the (astronomically
	// unlikely) zero.
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[0] = 1
	}
}

// NewRoot mints a fresh trace and returns the context of its root-to-be
// span. Zero value on nil.
func (l *SpanLog) NewRoot() SpanContext {
	if l == nil {
		return SpanContext{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var c SpanContext
	l.newIDLocked(c.Trace[:])
	l.newIDLocked(c.Span[:])
	return c
}

// NewSpanID mints a span ID (for spans whose ID must be known before they
// finish, e.g. a session span that parents phase spans). Zero on nil.
func (l *SpanLog) NewSpanID() SpanID {
	if l == nil {
		return SpanID{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var id SpanID
	l.newIDLocked(id[:])
	return id
}

// Add records a finished span, stamping the log's track (and a fresh ID if
// the span has none). No-op on nil.
func (l *SpanLog) Add(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.ID.IsZero() {
		l.newIDLocked(s.ID[:])
	}
	if s.Track == "" {
		s.Track = l.track
	}
	l.spans = append(l.spans, s)
}

// Start opens a span under parent (a zero parent span ID makes it the
// trace root). End the returned OpenSpan to record it. Usable on nil: the
// returned OpenSpan no-ops.
func (l *SpanLog) Start(parent SpanContext, name string) OpenSpan {
	if l == nil {
		return OpenSpan{}
	}
	o := OpenSpan{l: l, t0: time.Now()}
	o.Span = Span{Trace: parent.Trace, Parent: parent.Span, ID: l.NewSpanID(),
		Name: name, Track: l.track, Start: o.t0.UnixNano()}
	return o
}

// Len returns the number of spans held (0 on nil).
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Drain returns the held spans and recycles the buffer: the returned slice
// is the caller's, the log keeps the capacity of a fresh internal one.
// Nil on nil.
func (l *SpanLog) Drain() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.spans
	l.spans = l.spans[len(l.spans):]
	return out
}

// Snapshot copies the held spans without draining them. Nil on nil.
func (l *SpanLog) Snapshot() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// OpenSpan is a span in flight. The zero value (from a nil SpanLog) is
// inert: Context returns the zero context and End does nothing.
type OpenSpan struct {
	// Span is the span under construction; annotate its optional fields
	// (Lease, Target, Err, ...) before End.
	Span Span

	l  *SpanLog
	t0 time.Time
}

// Active reports whether ending the span will record it.
func (o *OpenSpan) Active() bool { return o.l != nil }

// Context returns the open span's propagation context (children recorded
// under it nest inside this span).
func (o *OpenSpan) Context() SpanContext {
	return SpanContext{Trace: o.Span.Trace, Span: o.Span.ID}
}

// End stamps the monotonic duration and records the span. No-op on the
// zero OpenSpan; a second End records a duplicate, so don't.
func (o *OpenSpan) End() {
	if o.l == nil {
		return
	}
	o.Span.Dur = int64(time.Since(o.t0))
	o.l.Add(o.Span)
}

// --- persistence -----------------------------------------------------------

// WriteSpansJSONL appends spans to w, one JSON object per line — the fleet
// span-log format surwobs assembles and checks.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a fleet span log written by WriteSpansJSONL.
func ReadSpansJSONL(r io.Reader) ([]Span, error) {
	var spans []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: span log line %d: %w", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
}

// ReadSpansFile is ReadSpansJSONL over a file path.
func ReadSpansFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpansJSONL(f)
}

// --- assembly --------------------------------------------------------------

// FleetTrace is the reassembled view of one TraceID: every span the fleet
// recorded for it, in start order.
type FleetTrace struct {
	ID    TraceID
	Spans []Span
}

// AssembleTraces groups spans by TraceID (spans without one are dropped)
// and sorts each trace's spans by start time, root first on ties.
func AssembleTraces(spans []Span) []FleetTrace {
	byID := make(map[TraceID][]Span)
	var order []TraceID
	for _, s := range spans {
		if s.Trace.IsZero() {
			continue
		}
		if _, ok := byID[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byID[s.Trace] = append(byID[s.Trace], s)
	}
	out := make([]FleetTrace, 0, len(order))
	for _, id := range order {
		t := FleetTrace{ID: id, Spans: byID[id]}
		sort.SliceStable(t.Spans, func(i, j int) bool {
			si, sj := &t.Spans[i], &t.Spans[j]
			if si.Start != sj.Start {
				return si.Start < sj.Start
			}
			return si.Parent.IsZero() && !sj.Parent.IsZero()
		})
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Spans[0].Start < out[j].Spans[0].Start
	})
	return out
}

// Root returns the trace's root span (no parent), nil if none was
// captured.
func (t *FleetTrace) Root() *Span {
	for i := range t.Spans {
		if t.Spans[i].Parent.IsZero() {
			return &t.Spans[i]
		}
	}
	return nil
}

// Complete verifies the trace is an end-to-end lease trace: a single
// "lease" root, at least one "session" span with its "prefix-replay"
// child, a "submit" span, every parent link resolving to a span in the
// trace, spans on at least two tracks (coordinator and a worker), and no
// child starting before its trace's root.
func (t *FleetTrace) Complete() error {
	root := t.Root()
	if root == nil {
		return fmt.Errorf("trace %s: no root span", t.ID)
	}
	if root.Name != "lease" {
		return fmt.Errorf("trace %s: root span is %q, want \"lease\"", t.ID, root.Name)
	}
	ids := make(map[SpanID]bool, len(t.Spans))
	tracks := make(map[string]bool)
	names := make(map[string]int)
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.ID.IsZero() {
			return fmt.Errorf("trace %s: span %q has no id", t.ID, s.Name)
		}
		if ids[s.ID] {
			return fmt.Errorf("trace %s: duplicate span id %s", t.ID, s.ID)
		}
		ids[s.ID] = true
		tracks[s.Track] = true
		names[s.Name]++
		if s.Dur < 0 {
			return fmt.Errorf("trace %s: span %q has negative duration", t.ID, s.Name)
		}
	}
	for i := range t.Spans {
		s := &t.Spans[i]
		if !s.Parent.IsZero() && !ids[s.Parent] {
			return fmt.Errorf("trace %s: span %q parent %s not in trace", t.ID, s.Name, s.Parent)
		}
	}
	for _, want := range []string{"session", "prefix-replay", "submit"} {
		if names[want] == 0 {
			return fmt.Errorf("trace %s: no %q span", t.ID, want)
		}
	}
	if len(tracks) < 2 {
		return fmt.Errorf("trace %s: all spans on one track %v — not distributed", t.ID, tracks)
	}
	return nil
}

// CountComplete assembles the spans and reports how many traces pass
// Complete, plus the first incompleteness seen (nil when every trace is
// complete).
func CountComplete(spans []Span) (complete, total int, firstErr error) {
	traces := AssembleTraces(spans)
	for i := range traces {
		if err := traces[i].Complete(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		complete++
	}
	return complete, len(traces), firstErr
}

// WriteSpanChromeTrace renders spans as Chrome trace_event JSON with one
// track (tid) per SpanLog track, so a fleet span log opens in Perfetto
// with the coordinator and each worker on its own line. Timestamps are
// wall-clock microseconds normalized to the earliest span.
func WriteSpanChromeTrace(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("obs: no spans to render")
	}
	trackNames := make(map[string]bool)
	t0 := spans[0].Start
	for i := range spans {
		trackNames[spans[i].Track] = true
		if spans[i].Start < t0 {
			t0 = spans[i].Start
		}
	}
	sorted := make([]string, 0, len(trackNames))
	for name := range trackNames {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	tids := make(map[string]int, len(sorted))
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "surw fleet"},
	})
	for i, name := range sorted {
		tids[name] = i
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: i,
			Args: map[string]any{"name": name},
		})
	}
	for i := range spans {
		s := &spans[i]
		args := map[string]any{"trace": s.Trace.String(), "span": s.ID.String()}
		if s.Lease != "" {
			args["lease"] = s.Lease
		}
		if s.Target != "" {
			args["target"] = s.Target
		}
		if s.Alg != "" {
			args["alg"] = s.Alg
		}
		if s.Session > 0 {
			args["session"] = s.Session - 1
		}
		if s.N > 0 {
			args["n"] = s.N
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		dur := int(s.Dur / 1000)
		if dur < 1 {
			dur = 1
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Name, Ph: "X",
			TS: int((s.Start - t0) / 1000), Dur: dur,
			PID: 0, TID: tids[s.Track], Args: args,
		})
	}
	return WriteJSON(w, &tr)
}
