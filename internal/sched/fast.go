package sched

// The fast engine: batched run-to-next-decision.
//
// The slow loop in execution.go parks the program goroutine and wakes the
// scheduler goroutine at every event — two channel handoffs per step — and
// rebuilds the enabled set by scanning every thread. The fast engine keeps
// the baton on the program side: after a thread publishes its next event,
// the *same goroutine* applies the previous event's enabledness effects,
// notifies the algorithm, decides the next step, and either continues
// inline (when it chose itself — zero handoffs) or hands the baton
// directly to the chosen thread (one handoff). The scheduler goroutine
// only runs at the very start and end of a schedule.
//
// Enabledness is tracked incrementally in a 64-bit mask instead of being
// rebuilt per step: classify() sets or clears a thread's bit when it
// publishes an event, and applyEffect() re-derives the bits of threads
// gated on an object when an event could have changed that object
// (tracked per object in objState.waitMask). Programs with ≥64 threads
// bail out to the verbatim slow loop mid-schedule (see bailOut); tracers
// force the slow path wholesale, so every hook observes true per-event
// scheduling.
//
// Both engines must be bit-identical: same decisions consume the same
// random draws, hashes mix the same values, failures carry the same steps.
// The decision procedure below mirrors the slow loop's order exactly —
// failure, deadlock, truncation, then choose — and algorithm callbacks see
// the same State contents at the same times (State.Enabled materializes
// from the decision-time mask during spawn notifications, matching the
// stale slice the slow loop exposes there).

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// maxFastThreads is the bitmask capacity; thread IDs at or beyond it force
// a mid-schedule bail to the slow loop.
const maxFastThreads = 64

// IndexChooser is an optional Algorithm fast path: an algorithm whose
// Next draws exactly one uniform index into st.Enabled() can instead
// return that index and skip the slice materialization entirely.
// NextIndex(n) must consume the same random draws Next would and return
// the position (0-based, ascending TID order) of the chosen thread.
type IndexChooser interface {
	NextIndex(n int) int
}

// SourceChooser is a further optional fast path layered on IndexChooser:
// after Begin, the scheduler hands over the raw source behind the Begin
// rng. An algorithm that can replicate its draw algorithm bit-exactly
// against the source (consuming identical values in identical order) may
// use it to skip the rand.Rand method layers on the per-decision path.
// BeginSource is called once per schedule, immediately after Begin.
type SourceChooser interface {
	BeginSource(src rand.Source)
}

func tbit(id ThreadID) uint64 {
	if uint(id) >= maxFastThreads {
		return 0
	}
	return 1 << uint(id)
}

// classify derives t's enabled bit from its freshly published next event,
// registering it in the gating object's waitMask when the event can block.
// Mirrors enabled() in execution.go.
func (ex *Execution) classify(t *Thread) {
	b := tbit(t.id)
	ex.enabledStale = true
	switch t.next.Kind {
	case OpLock, OpWakeLock:
		o := &ex.objs[t.next.Obj-1]
		o.waitMask |= b
		t.gated = t.next.Obj
		if o.owner == -1 && o.readers == 0 {
			ex.enabledBits |= b
		} else {
			ex.enabledBits &^= b
		}
	case OpRLock:
		o := &ex.objs[t.next.Obj-1]
		o.waitMask |= b
		t.gated = t.next.Obj
		if o.owner == -1 {
			ex.enabledBits |= b
		} else {
			ex.enabledBits &^= b
		}
	case OpSemP:
		o := &ex.objs[t.next.Obj-1]
		o.waitMask |= b
		t.gated = t.next.Obj
		if o.sem > 0 {
			ex.enabledBits |= b
		} else {
			ex.enabledBits &^= b
		}
	case OpJoin:
		tgt := ex.threads[t.joinTarget]
		if tgt.state == tsFinished {
			ex.enabledBits |= b
		} else {
			ex.enabledBits &^= b
			tgt.joinWaiters |= b
		}
	default:
		ex.enabledBits |= b
	}
}

// applyEffect re-derives the bits of threads whose published event is
// gated on an object ev may have changed. Called once per executed event,
// at the next scheduling point (after the event's effect has run).
func (ex *Execution) applyEffect(ev Event) {
	switch ev.Kind {
	case OpLock, OpUnlock, OpRLock, OpRUnlock, OpWakeLock:
		ex.refreshMutex(&ex.objs[ev.Obj-1])
	case OpRMW:
		if o := &ex.objs[ev.Obj-1]; o.kind == ObjMutex {
			ex.refreshMutex(o) // TryLock
		}
	case OpWait:
		// The wait released the cond's mutex.
		ex.refreshMutex(&ex.objs[ex.objs[ev.Obj-1].condMu-1])
	case OpSemP, OpSemV:
		o := &ex.objs[ev.Obj-1]
		if o.waitMask != 0 {
			ex.enabledStale = true
			if o.sem > 0 {
				ex.enabledBits |= o.waitMask
			} else {
				ex.enabledBits &^= o.waitMask
			}
		}
	}
}

func (ex *Execution) refreshMutex(o *objState) {
	m := o.waitMask
	if m == 0 {
		return
	}
	ex.enabledStale = true
	if o.readers == 0 {
		// Writers, wakelocks and readers all agree: enabled iff free.
		if o.owner == -1 {
			ex.enabledBits |= m
		} else {
			ex.enabledBits &^= m
		}
		return
	}
	// Active readers (owner is -1 by invariant): pending read locks are
	// enabled, pending write locks and wakelocks are not.
	for q := m; q != 0; {
		b := q & -q
		q &^= b
		if ex.threads[bits.TrailingZeros64(b)].next.Kind == OpRLock {
			ex.enabledBits |= b
		} else {
			ex.enabledBits &^= b
		}
	}
}

// materializeFrom writes the mask's set bits (ascending, which is TID
// order) into the State's enabled buffer.
func (ex *Execution) materializeFrom(mask uint64) {
	e := ex.state.enabled[:0]
	for m := mask; m != 0; {
		b := m & -m
		m &^= b
		e = append(e, ThreadID(bits.TrailingZeros64(b)))
	}
	ex.state.enabled = e
}

// kthEnabled returns the k-th (0-based) set bit of the enabled mask.
func (ex *Execution) kthEnabled(k int) ThreadID {
	m := ex.enabledBits
	for ; k > 0; k-- {
		m &= m - 1
	}
	return ThreadID(bits.TrailingZeros64(m))
}

// syncPoint is the fast-path scheduling point: t has just published its
// next event. Returns true when t itself was chosen to continue (the
// caller keeps running without parking); false when the baton went
// elsewhere (the caller must park on its gate).
func (ex *Execution) syncPoint(t *Thread) bool {
	ex.inEngine = true
	if ex.primingT == t {
		ex.recordPrime(t)
	}
	ex.classify(t)
	return ex.cycle(t)
}

// sleepPoint is syncPoint for a thread entering a condition wait: it has
// no published event, so its bit just clears.
func (ex *Execution) sleepPoint(t *Thread) {
	ex.inEngine = true
	ex.enabledBits &^= tbit(t.id)
	ex.enabledStale = true
	ex.cycle(t)
}

// finishPoint is syncPoint for a thread that has exited: release its
// joiners and carry on.
func (ex *Execution) finishPoint(t *Thread) {
	ex.inEngine = true
	if ex.primingT == t {
		// The prologue failed or finished without publishing an event; its
		// memo entry keeps no first event.
		ex.primingT = nil
		t.primePoison = false
	}
	ex.liveCount--
	ex.enabledBits &^= tbit(t.id)
	if t.joinWaiters != 0 {
		ex.enabledBits |= t.joinWaiters
		t.joinWaiters = 0
	}
	ex.enabledStale = true
	ex.cycle(t)
}

// cycle completes one scheduling cycle on the caller's goroutine: prime
// any newly spawned threads (as a grant chain — each primed thread primes
// the next, so the chain costs one handoff per new thread), then finish
// the step and decide who runs next.
func (ex *Execution) cycle(t *Thread) bool {
	if ex.priming || ex.unprimed > 0 {
		ex.priming = true
		return ex.primeChain(t)
	}
	return ex.endCycle(t)
}

// primeChain grants the next unprimed thread and parks the caller; the
// last link finds nothing left and ends the cycle itself. Scanning is by
// ascending index from a monotonic cursor — the same order primeNew uses.
//
// Deferred priming: when the thread's spawn-memo entry carries a usable
// first event captured by an earlier schedule (see recordPrime), the event
// is published from the cache and the thread classified in place — no
// handoff at all; the goroutine first wakes when the scheduler actually
// grants the event, runs its prologue late, and verifies it lands on the
// cached event (see Thread.sync). Threads primed for real are marked in
// ex.primingT so their prologue effects can veto future deferral.
func (ex *Execution) primeChain(t *Thread) bool {
	for ex.primeIdx < len(ex.threads) {
		u := ex.threads[ex.primeIdx]
		ex.primeIdx++
		if u.state != tsUnprimed {
			continue
		}
		if u.memoP >= 0 {
			if e := &ex.spawnMemo[u.memoP][u.memoI]; e.evOK && e.path == u.path && ex.deferrable(e) {
				ex.unprimed--
				u.next = Event{TID: u.id, Seq: 1, Kind: e.firstEv.Kind, Obj: e.firstEv.Obj, PathHash: u.pathHash, ObjHash: e.firstEv.ObjHash}
				u.state = tsReady
				u.deferredPrime = true
				ex.classify(u)
				continue
			}
		}
		ex.unprimed--
		u.state = tsRunning
		ex.primingT = u
		ex.inEngine = false
		ex.resume = u
		return false
	}
	ex.priming = false
	return ex.endCycle(t)
}

// endCycle applies the executed event's enabledness effects, notifies the
// algorithm (spawns, then the event), and decides the next step.
func (ex *Execution) endCycle(t *Thread) bool {
	ev := ex.curEv
	if ev.Kind != OpInvalid {
		ex.applyEffect(ev)
	}
	if len(ex.pending) > 0 {
		pending := ex.pending
		ex.pending = ex.pending[:0]
		if so, ok := ex.alg.(SpawnObserver); ok {
			// Spawn notifications observe the enabled set as of the last
			// decision, exactly as the slow loop's primeNew (which runs
			// before the rebuild) exposes it.
			ex.notifying = true
			for _, p := range pending {
				so.ObserveSpawn(p.parent, p.child, ex.state)
			}
			ex.notifying = false
		}
	}
	if ex.bailReq {
		return ex.bailOut(t)
	}
	if ex.alg != nil && ev.Kind != OpInvalid {
		ex.alg.Observe(ev, ex.state)
	}
	return ex.decide(t)
}

// decide mirrors the slow loop's per-iteration order bit for bit:
// failure, deadlock, truncation, then choose and execute. Returns true
// when t chose itself.
func (ex *Execution) decide(t *Thread) bool {
	if ex.failure != nil {
		return ex.finishSchedule(t)
	}
	n := bits.OnesCount64(ex.enabledBits)
	if n == 0 {
		if ex.liveCount > 0 {
			ex.reportDeadlock()
		}
		return ex.finishSchedule(t)
	}
	if ex.steps >= ex.maxSteps {
		ex.truncated = true
		return ex.finishSchedule(t)
	}

	var tid ThreadID
	if cp := ex.replayCp; cp != nil && ex.replayPos < len(cp.forced) {
		return ex.replayStep(t)
	}
	switch {
	case n == 1:
		tid = ThreadID(bits.TrailingZeros64(ex.enabledBits))
	case ex.idx != nil:
		tid = ex.kthEnabled(ex.idx.NextIndex(n))
	case ex.alg != nil:
		if ex.enabledStale {
			ex.materializeFrom(ex.enabledBits)
			ex.enabledStale = false
		}
		tid = ex.alg.Next(ex.state)
		if tid < 0 || tid >= ThreadID(len(ex.threads)) || ex.enabledBits&tbit(tid) == 0 {
			panic(fmt.Sprintf("sched: algorithm %s chose disabled thread T%d", ex.alg.Name(), tid))
		}
	default:
		tid = ThreadID(bits.TrailingZeros64(ex.enabledBits))
	}
	if cp := ex.capture; cp != nil && cp.open {
		if n == 1 {
			cp.forced = append(cp.forced, tid)
		} else {
			ex.closeCapture()
		}
	}
	if ex.atlas != nil && n > 1 {
		ex.atlasDepth++
		ex.atlasHash = fnvMix(ex.atlasHash, uint64(tid)<<8|uint64(n))
		ex.atlas.Decision(ex.atlasDepth, n, ex.atlasHash)
	}
	ex.decisionBits = ex.enabledBits
	return ex.execute(t, tid)
}

// execute records the chosen thread's event and passes (or keeps) the
// baton. Returns true when t chose itself.
func (ex *Execution) execute(t *Thread, tid ThreadID) bool {
	chosen := ex.threads[tid]
	if chosen.gated != 0 {
		ex.objs[chosen.gated-1].waitMask &^= tbit(tid)
		chosen.gated = 0
	}
	ev := chosen.next
	ex.steps++
	ex.recordEvent(ev)
	ex.curEv = ev
	ex.inEngine = false
	if chosen == t {
		return true
	}
	chosen.state = tsRunning
	ex.resume = chosen
	return false
}

// replayStep forces the next checkpointed decision. The enabled set must
// be the singleton the capture run saw; hashing and tracing are skipped
// (the checkpoint replaces them wholesale when the prefix ends) except
// the Δ hash, which algorithm Info predicates may consume per event.
func (ex *Execution) replayStep(t *Thread) bool {
	cp := ex.replayCp
	tid := cp.forced[ex.replayPos]
	ex.replayPos++
	if ex.enabledBits != tbit(tid) || tbit(tid) == 0 {
		panic("sched: checkpoint replay diverged from its capture run")
	}
	chosen := ex.threads[tid]
	if chosen.gated != 0 {
		ex.objs[chosen.gated-1].waitMask &^= tbit(tid)
		chosen.gated = 0
	}
	ev := chosen.next
	ex.steps++
	if ex.interesting != nil && ex.interesting(ev) {
		ex.deltaHash = fnvMix(fnvMix(ex.deltaHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	if ex.replayPos == len(cp.forced) {
		// Prefix done: adopt the captured interleaving hash, class state
		// and trace. The clock/object snapshots were taken after the last
		// forced event's grant, so they may cover threads and objects this
		// run has not created yet (spawned during that grant); those are
		// re-derived identically by addThread/addObj as the grant replays,
		// seeded from the clocks adopted here.
		ex.ilvHash = cp.ilvHash
		ex.classAcc = cp.classAcc
		for i := 0; i < len(cp.clocks) && i < len(ex.threads); i++ {
			ex.threads[i].clock = cp.clocks[i]
		}
		for i := 0; i < len(cp.objClass) && i < len(ex.objs); i++ {
			ex.objs[i].lastWriteH = cp.objClass[i].lastWriteH
			ex.objs[i].readAcc = cp.objClass[i].readAcc
		}
		if ex.opts.RecordTrace {
			ex.trace = append(ex.trace, cp.trace...)
		}
	}
	ex.curEv = ev
	ex.decisionBits = ex.enabledBits
	ex.inEngine = false
	if chosen == t {
		return true
	}
	chosen.state = tsRunning
	ex.resume = chosen
	return false
}

// finishSchedule ends the schedule from the program side: close any open
// capture and park with no successor, returning the baton to the
// orchestrator, which kills the survivors.
func (ex *Execution) finishSchedule(t *Thread) bool {
	if cp := ex.capture; cp != nil && cp.open {
		ex.closeCapture()
	}
	ex.inEngine = false
	ex.resume = nil
	return false
}

// bailOut permanently switches this schedule to the slow loop (a thread
// ID outgrew the bitmask). The orchestrator finishes the interrupted
// cycle — the Observe call endCycle skipped — and runs the verbatim loop.
// Any open capture is discarded: such programs never get checkpoints.
func (ex *Execution) bailOut(t *Thread) bool {
	ex.fast = false
	ex.bailed = true
	if ex.capture != nil {
		ex.capture.open = false
		ex.capture.invalid = true
		ex.capture = nil
	}
	if cp := ex.replayCp; cp != nil && ex.replayPos < len(cp.forced) {
		// A bail after the prefix is fine — the capture run sealed before
		// its own bail and the slow loop continues identically — but a bail
		// inside the prefix means the capture run took the fast path through
		// decisions this run cannot, which (same program, same options)
		// should be impossible.
		panic("sched: checkpoint replay bailed out inside the prefix (capture ran it on the fast path)")
	}
	ex.replayCp = nil
	ex.inEngine = false
	ex.resume = nil
	return false
}
