package sched

// fastSource is the substrate's internal random source for the algorithm
// and program-input streams: splitmix64 behind the rand.Source64
// interface. Two properties matter here and both favour it over
// math/rand's rngSource:
//
//   - Seeding is O(1). A pooled session re-seeds both streams every
//     schedule so pooled and one-shot runs stay bit-identical, and
//     rngSource pays a 607-word feedback initialization (~2.5µs) per
//     Seed — measurable against a ~30µs schedule. splitmix64 seeding is
//     a single store.
//   - The state is 8 bytes, not 4.8KB, so re-seeding between schedules
//     touches one cache line.
//
// splitmix64's finalizer (two xor-shift-multiply rounds) decorrelates
// nearby seeds, which the session seed schedule (arithmetic progression
// in the schedule index) relies on. The stream is fixed by this type: a
// seed produces the same draws in every process, and determinism
// contracts (pool vs one-shot, checkpointed vs plain, record vs replay)
// compare runs that all draw from it.
type fastSource struct {
	state uint64
}

func newFastSource(seed int64) *fastSource {
	return &fastSource{state: uint64(seed)}
}

// Seed implements rand.Source.
func (s *fastSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64 (splitmix64 step).
func (s *fastSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Int63 implements rand.Source.
func (s *fastSource) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}
