package sched

import (
	"math/rand"
	"testing"
)

// stateProbe inspects the State API at the first multi-enabled decision.
type stateProbe struct {
	f    func(*State)
	done bool
}

func (p *stateProbe) Name() string                   { return "state-probe" }
func (p *stateProbe) Begin(*ProgramInfo, *rand.Rand) {}
func (p *stateProbe) Observe(Event, *State)          {}
func (p *stateProbe) Next(st *State) ThreadID {
	if !p.done {
		p.done = true
		p.f(st)
	}
	return st.Enabled()[0]
}

func TestStateAccessors(t *testing.T) {
	probe := &stateProbe{f: func(st *State) {
		if st.NumThreads() != 3 {
			t.Errorf("NumThreads = %d", st.NumThreads())
		}
		if st.Path(0) != "0" || st.Path(1) != "0.0" || st.Path(2) != "0.1" {
			t.Error("paths wrong")
		}
		if st.PathHash(1) != HashName("0.0") {
			t.Error("path hash mismatch")
		}
		if tid, ok := st.TIDByPath("0.1"); !ok || tid != 2 {
			t.Errorf("TIDByPath = %d, %v", tid, ok)
		}
		if _, ok := st.TIDByPath("0.9"); ok {
			t.Error("ghost path resolved")
		}
		ev := st.NextEvent(1)
		if ev.TID != 1 || ev.Seq != 1 {
			t.Errorf("next event = %+v", ev)
		}
		if !ev.Kind.IsMemAccess() {
			t.Errorf("worker's first event should be a memory access, got %v", ev.Kind)
		}
		if st.ObjName(ev.Obj) != "v" || st.ObjKind(ev.Obj) != ObjVar {
			t.Errorf("object metadata: %q %v", st.ObjName(ev.Obj), st.ObjKind(ev.Obj))
		}
		if st.ObjName(0) != "" || st.ObjKind(0) != ObjNone {
			t.Error("zero object metadata wrong")
		}
		if st.Finished(1) || st.Sleeping(1) {
			t.Error("fresh worker misreported")
		}
		// Step counts executed events; at the first decision none have run.
		if st.Step() != 0 {
			t.Errorf("step = %d", st.Step())
		}
	}}
	res := Run(func(th *Thread) {
		v := th.NewVar("v", 0)
		h1 := th.Go(func(w *Thread) { v.Add(w, 1) })
		h2 := th.Go(func(w *Thread) { v.Add(w, 1) })
		th.Join(h1)
		th.Join(h2)
	}, probe, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
	if !probe.done {
		t.Fatal("probe never ran")
	}
}

func TestStateSleepingVisible(t *testing.T) {
	sawSleeping := false
	probe := &stateProbe{}
	probe.f = func(st *State) {}
	alg := &pollSleep{saw: &sawSleeping}
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		h := th.Go(func(w *Thread) {
			m.Lock(w)
			c.Wait(w)
			m.Unlock(w)
		})
		m.Lock(th)
		c.Signal(th)
		m.Unlock(th)
		th.Join(h)
	}, alg, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
	if !sawSleeping {
		t.Fatal("worker never observed sleeping")
	}
}

type pollSleep struct{ saw *bool }

func (p *pollSleep) Name() string                   { return "poll-sleep" }
func (p *pollSleep) Begin(*ProgramInfo, *rand.Rand) {}
func (p *pollSleep) Observe(_ Event, st *State) {
	for tid := 0; tid < st.NumThreads(); tid++ {
		if st.Sleeping(tid) {
			*p.saw = true
		}
	}
}

// Next prefers the highest TID, so the worker reaches its wait before the
// main thread signals.
func (p *pollSleep) Next(st *State) ThreadID {
	e := st.Enabled()
	return e[len(e)-1]
}

func TestObjectIDs(t *testing.T) {
	Run(func(th *Thread) {
		v := th.NewVar("v", 0)
		r := NewRef(th, "r", "x")
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		s := th.NewSemaphore("s", 1)
		ids := map[ObjID]bool{v.ID(): true, r.ID(): true, m.ID(): true, c.ID(): true, s.ID(): true}
		if len(ids) != 5 {
			t.Error("object IDs collide")
		}
		if r.Name() != "r" || c.Name() != "c" || s.Name() != "s" {
			t.Error("names wrong")
		}
		if r.Peek() != "x" {
			t.Error("ref peek wrong")
		}
		r.Set(th, "y")
		if r.Get(th) != "y" {
			t.Error("ref set/get wrong")
		}
	}, nil, Options{})
}

func TestVarUpdate(t *testing.T) {
	Run(func(th *Thread) {
		v := th.NewVar("v", 3)
		if got := v.Update(th, func(x int64) int64 { return x * x }); got != 9 {
			t.Errorf("update = %d", got)
		}
	}, nil, Options{})
}

func TestHashNameStable(t *testing.T) {
	if HashName("fs") != HashName("fs") || HashName("a") == HashName("b") {
		t.Fatal("HashName broken")
	}
}
