// Package sched implements a controlled concurrency scheduler: the substrate
// on which all scheduling algorithms in this repository run.
//
// Programs under test are written against this package's virtual-thread API
// (Thread, Var, Mutex, Cond, Semaphore). Execution is fully serialized: at
// any moment exactly one virtual thread runs, and it runs exactly one atomic
// event (a shared-memory access, a synchronization operation, a spawn/join,
// or a yield) before control returns to the scheduler. Before each event the
// scheduler can observe the *next* event of every live thread and ask a
// pluggable Algorithm to choose which enabled thread proceeds. This is the
// same serialization discipline the SURW paper's pthread-interposition layer
// enforces, so the interleaving space explored here is the same kind of
// object the paper's Algorithms 1 and 2 are defined over.
//
// Executions are deterministic given (program, algorithm, seed): the
// scheduler never consults wall-clock time, OS scheduling, or map iteration
// order on any decision path.
package sched

import (
	"fmt"

	"surw/internal/atlas"
)

// ThreadID identifies a thread within a single execution. IDs are assigned
// in creation order starting from 0 (the root thread). Because creation
// order can depend on the schedule, cross-schedule thread identity uses the
// stable Path (see Thread.Path) instead.
type ThreadID = int

// ObjID identifies a shared object (variable, mutex, condition variable or
// semaphore) within a single execution. 0 means "no object".
type ObjID int32

// OpKind classifies the atomic events a virtual thread can perform.
type OpKind uint8

// The event vocabulary. OpWait releases the associated mutex and puts the
// thread to sleep; a subsequent OpWakeLock (created by OpSignal/OpBroadcast)
// reacquires the mutex.
const (
	OpInvalid   OpKind = iota
	OpRead             // shared variable read
	OpWrite            // shared variable write
	OpRMW              // shared variable read-modify-write (Add, CAS, Swap)
	OpLock             // mutex acquire
	OpUnlock           // mutex release
	OpWait             // condition wait: release mutex and sleep
	OpWakeLock         // reacquire mutex after a signal
	OpSignal           // condition signal
	OpBroadcast        // condition broadcast
	OpSemP             // semaphore down (blocks while count == 0)
	OpSemV             // semaphore up
	OpJoin             // wait for a thread to finish
	OpYield            // scheduling point with no shared object
	OpRLock            // reader acquire (blocks while a writer holds)
	OpRUnlock          // reader release
)

// Thread creation is deliberately *not* an event: as in the paper's
// pthread-interposition runtime, a parent runs straight through Go calls
// until its next instrumented operation, and the child simply becomes
// schedulable. Algorithms that track the spawn tree (URW/SURW) implement
// SpawnObserver to be told about creations.

var opNames = [...]string{
	OpInvalid:   "invalid",
	OpRead:      "read",
	OpWrite:     "write",
	OpRMW:       "rmw",
	OpLock:      "lock",
	OpUnlock:    "unlock",
	OpWait:      "wait",
	OpWakeLock:  "wakelock",
	OpSignal:    "signal",
	OpBroadcast: "broadcast",
	OpSemP:      "semP",
	OpSemV:      "semV",
	OpJoin:      "join",
	OpYield:     "yield",
	OpRLock:     "rlock",
	OpRUnlock:   "runlock",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// IsMemAccess reports whether k is a shared-variable access.
func (k OpKind) IsMemAccess() bool { return k == OpRead || k == OpWrite || k == OpRMW }

// IsWrite reports whether k can modify a shared variable.
func (k OpKind) IsWrite() bool { return k == OpWrite || k == OpRMW }

// ObjKind classifies shared objects.
type ObjKind uint8

// Shared object kinds.
const (
	ObjNone ObjKind = iota
	ObjVar          // Var or Ref (shared memory)
	ObjMutex
	ObjCond
	ObjSem
)

func (k ObjKind) String() string {
	switch k {
	case ObjVar:
		return "var"
	case ObjMutex:
		return "mutex"
	case ObjCond:
		return "cond"
	case ObjSem:
		return "sem"
	}
	return "none"
}

// Event is one atomic step of one thread. Seq is the 1-based per-thread
// operation counter; PathHash is a stable 64-bit hash of the executing
// thread's Path, and ObjHash a stable hash of the object's name, so events
// can be fingerprinted across schedules without string work.
type Event struct {
	TID      ThreadID
	Seq      int
	Kind     OpKind
	Obj      ObjID
	PathHash uint64
	ObjHash  uint64
}

func (e Event) String() string {
	if e.Obj == 0 {
		return fmt.Sprintf("T%d#%d:%s", e.TID, e.Seq, e.Kind)
	}
	return fmt.Sprintf("T%d#%d:%s(o%d)", e.TID, e.Seq, e.Kind, e.Obj)
}

// Conflicts reports whether two events race in the POS sense: accesses to
// the same shared variable from different threads, at least one a write, or
// acquisitions of the same mutex from different threads.
func (e Event) Conflicts(f Event) bool {
	if e.TID == f.TID || e.Obj != f.Obj || e.Obj == 0 {
		return false
	}
	if e.Kind.IsMemAccess() && f.Kind.IsMemAccess() {
		return e.Kind.IsWrite() || f.Kind.IsWrite()
	}
	if e.Kind == OpLock && f.Kind == OpLock {
		return true
	}
	// Writer acquisitions race with reader acquisitions (but readers
	// don't race with each other).
	return (e.Kind == OpLock && f.Kind == OpRLock) || (e.Kind == OpRLock && f.Kind == OpLock)
}

// FailKind classifies schedule failures.
type FailKind uint8

// Failure kinds. FailAssert and FailDeadlock are the bug classes the
// benchmarks use; FailPanic captures unexpected program panics.
const (
	FailAssert FailKind = iota + 1
	FailDeadlock
	FailPanic
)

func (k FailKind) String() string {
	switch k {
	case FailAssert:
		return "assert"
	case FailDeadlock:
		return "deadlock"
	case FailPanic:
		return "panic"
	}
	return "unknown"
}

// Failure describes the first bug manifestation observed in a schedule.
type Failure struct {
	Kind  FailKind
	BugID string // stable identity of the bug (assert ID, "deadlock", ...)
	Msg   string
	TID   ThreadID
	Step  int
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s[%s] at step %d on T%d: %s", f.Kind, f.BugID, f.Step, f.TID, f.Msg)
}

// Result summarizes one schedule.
type Result struct {
	// Failure is non-nil if the schedule exposed a bug.
	Failure *Failure
	// Steps is the number of events executed.
	Steps int
	// Truncated is set when the step budget ran out before the program
	// finished (the schedule is inconclusive, not buggy).
	Truncated bool
	// InterleavingHash fingerprints the sequence of events that passed
	// Options.TraceFilter (all events by default). Two schedules with equal
	// hashes witnessed the same (filtered) interleaving.
	InterleavingHash uint64
	// ClassHash is the commutation-canonical (Mazurkiewicz-trace) class
	// fingerprint: it is order-sensitive only across *dependent* event
	// pairs — same-object accesses where at least one side is writer-like,
	// spawn/join edges, and program order — so two schedules that differ
	// only by commuting adjacent independent events share a ClassHash.
	// Unlike InterleavingHash it ignores Options.TraceFilter: the class is
	// a property of the full schedule. See DESIGN.md §11 for the
	// dependence relation and the incremental hash-clock construction.
	ClassHash uint64
	// DeltaHash fingerprints the subsequence of interesting events, when the
	// algorithm ran with a ProgramInfo carrying an Interesting predicate.
	DeltaHash uint64
	// Behavior is the program-reported behaviour fingerprint (see
	// Thread.SetBehavior); empty if the program never reported one.
	Behavior string
	// Trace is the full event sequence, recorded only when
	// Options.RecordTrace is set.
	Trace []Event
	// ThreadPaths maps each TID to its stable logical path, populated when
	// Options.RecordTrace is set (trace consumers need it to resolve
	// spawn-tree relationships).
	ThreadPaths []string
	// Threads is the number of threads created.
	Threads int
}

// Buggy reports whether the schedule exposed a bug.
func (r *Result) Buggy() bool { return r.Failure != nil }

// BugID returns the failure's bug identity, or "" if the schedule passed.
func (r *Result) BugID() string {
	if r.Failure == nil {
		return ""
	}
	return r.Failure.BugID
}

// Base is the option set every schedule-running entry point shares —
// surw.Options, this package's Options, and profile.Options embed it, so
// the seed/budget plumbing between the layers is one struct copy instead
// of three hand-maintained field lists.
type Base struct {
	// Seed seeds the algorithm's random stream. Schedules with equal
	// (program, algorithm, Seed, ProgSeed) are identical.
	Seed int64
	// ProgSeed seeds the program's own random stream (Thread.ProgRand),
	// used for fixed randomized inputs that must stay constant across the
	// schedules of one trial.
	ProgSeed int64
	// MaxSteps bounds the schedule length; 0 means DefaultMaxSteps.
	MaxSteps int
}

// Normalized applies the cross-layer defaults (MaxSteps 0 →
// DefaultMaxSteps). Seed is deliberately left as given: at this layer 0 is
// a valid seed; the surw layer's normalized() additionally defaults it.
func (b Base) Normalized() Base {
	if b.MaxSteps <= 0 {
		b.MaxSteps = DefaultMaxSteps
	}
	return b
}

// Options configures one schedule.
type Options struct {
	// Base carries the shared Seed/ProgSeed/MaxSteps fields.
	Base
	// Info is the profiling information handed to the algorithm's Begin.
	Info *ProgramInfo
	// RecordTrace stores the full event sequence in Result.Trace.
	RecordTrace bool
	// TraceFilter restricts which events fold into Result.InterleavingHash;
	// nil includes every event.
	TraceFilter func(Event) bool
	// Tracer, when non-nil, observes every scheduling decision (see the
	// Decision type and internal/obs for ready-made collectors). A nil
	// Tracer costs one predictable branch per event and nothing else, and
	// an installed Tracer never changes which threads are scheduled.
	// Installing a Tracer forces the verbatim slow scheduling loop, so
	// hooks see true per-event scheduling (results stay bit-identical).
	Tracer Tracer
	// DisableBatching forces the slow scheduling loop even without a
	// Tracer. Results are bit-identical either way; this exists for A/B
	// verification and benchmarking of the fast engine (fast.go).
	DisableBatching bool
	// Atlas, when non-nil, accumulates schedule-space cartography (see
	// internal/atlas): at every true decision point (≥2 enabled threads)
	// the engine folds the depth, the enabled-set size and a running
	// choice-prefix hash into its fixed atomic counters. Unlike Tracer it
	// does NOT force the slow loop — the fast engine records the same
	// decisions batched. A nil Atlas costs one predictable branch per
	// decision and zero allocations; an attached one never changes which
	// thread is scheduled or any result hash.
	Atlas *atlas.Accum
}

// DefaultMaxSteps is the schedule step budget when Options.MaxSteps is 0.
const DefaultMaxSteps = 200_000
