package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// pickRandom is a minimal uniform random-walk algorithm for exercising the
// scheduler in tests without importing the real algorithms.
type pickRandom struct{ rng *rand.Rand }

func (p *pickRandom) Name() string                       { return "test-random" }
func (p *pickRandom) Begin(_ *ProgramInfo, r *rand.Rand) { p.rng = r }
func (p *pickRandom) Observe(Event, *State)              {}
func (p *pickRandom) Next(st *State) ThreadID {
	e := st.Enabled()
	return e[p.rng.Intn(len(e))]
}

// pickLeft always runs the lowest enabled TID.
type pickLeft struct{}

func (pickLeft) Name() string                   { return "test-left" }
func (pickLeft) Begin(*ProgramInfo, *rand.Rand) {}
func (pickLeft) Observe(Event, *State)          {}
func (pickLeft) Next(st *State) ThreadID        { return st.Enabled()[0] }

// pickRight always runs the highest enabled TID.
type pickRight struct{}

func (pickRight) Name() string                   { return "test-right" }
func (pickRight) Begin(*ProgramInfo, *rand.Rand) {}
func (pickRight) Observe(Event, *State)          {}
func (pickRight) Next(st *State) ThreadID {
	e := st.Enabled()
	return e[len(e)-1]
}

func TestSingleThread(t *testing.T) {
	ran := false
	res := Run(func(th *Thread) {
		v := th.NewVar("x", 7)
		v.Store(th, v.Load(th)+1)
		ran = true
	}, nil, Options{})
	if !ran {
		t.Fatal("program body did not run")
	}
	if res.Buggy() {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	if res.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (one read, one write)", res.Steps)
	}
	if res.Threads != 1 {
		t.Fatalf("threads = %d, want 1", res.Threads)
	}
}

func TestSpawnJoinAndCounter(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		var final int64
		res := Run(func(th *Thread) {
			c := th.NewVar("c", 0)
			var hs []*Handle
			for i := 0; i < 4; i++ {
				hs = append(hs, th.Go(func(w *Thread) {
					for j := 0; j < 5; j++ {
						c.Add(w, 1)
					}
				}))
			}
			th.JoinAll(hs...)
			final = c.Peek()
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() {
			t.Fatalf("seed %d: unexpected failure %v", seed, res.Failure)
		}
		if final != 20 {
			t.Fatalf("seed %d: atomic counter = %d, want 20", seed, final)
		}
	}
}

func TestRacyReadModifyWrite(t *testing.T) {
	// A non-atomic increment (Load then Store) must be able to lose updates
	// under at least one schedule, and to not lose them under another.
	run := func(alg Algorithm, seed int64) int64 {
		var final int64
		Run(func(th *Thread) {
			c := th.NewVar("c", 0)
			h1 := th.Go(func(w *Thread) { c.Store(w, c.Load(w)+1) })
			h2 := th.Go(func(w *Thread) { c.Store(w, c.Load(w)+1) })
			th.Join(h1)
			th.Join(h2)
			final = c.Peek()
		}, alg, Options{Base: Base{Seed: seed}})
		return final
	}
	saw := map[int64]bool{}
	for seed := int64(0); seed < 100; seed++ {
		saw[run(&pickRandom{}, seed)] = true
	}
	if !saw[1] || !saw[2] {
		t.Fatalf("expected both outcomes 1 and 2 across schedules, saw %v", saw)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		res := Run(func(th *Thread) {
			m := th.NewMutex("m")
			inCS := th.NewVar("inCS", 0)
			body := func(w *Thread) {
				for i := 0; i < 3; i++ {
					m.Lock(w)
					w.Assert(inCS.Add(w, 1) == 1, "mutual-exclusion")
					w.Assert(inCS.Add(w, -1) == 0, "mutual-exclusion")
					m.Unlock(w)
				}
			}
			h1, h2, h3 := th.Go(body), th.Go(body), th.Go(body)
			th.JoinAll(h1, h2, h3)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() {
			t.Fatalf("seed %d: mutual exclusion violated: %v", seed, res.Failure)
		}
	}
}

func TestCondProducerConsumer(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		var got []int64
		res := Run(func(th *Thread) {
			m := th.NewMutex("m")
			notEmpty := th.NewCond("notEmpty", m)
			notFull := th.NewCond("notFull", m)
			buf := NewRef[[]int64](th, "buf", nil)
			const cap, items = 2, 6
			prod := th.Go(func(w *Thread) {
				for i := int64(0); i < items; i++ {
					m.Lock(w)
					for len(buf.Get(w)) == cap {
						notFull.Wait(w)
					}
					buf.Update(w, func(b []int64) []int64 { return append(b, i) })
					notEmpty.Signal(w)
					m.Unlock(w)
				}
			})
			cons := th.Go(func(w *Thread) {
				for i := 0; i < items; i++ {
					m.Lock(w)
					for len(buf.Get(w)) == 0 {
						notEmpty.Wait(w)
					}
					var x int64
					buf.Update(w, func(b []int64) []int64 { x = b[0]; return b[1:] })
					got = append(got, x)
					notFull.Signal(w)
					m.Unlock(w)
				}
			})
			th.JoinAll(prod, cons)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		if len(got) != 6 {
			t.Fatalf("seed %d: consumed %d items, want 6", seed, len(got))
		}
		for i, x := range got {
			if x != int64(i) {
				t.Fatalf("seed %d: got[%d] = %d (FIFO violated)", seed, i, x)
			}
		}
	}
}

func TestSemaphore(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(func(th *Thread) {
			sem := th.NewSemaphore("s", 2)
			inside := th.NewVar("inside", 0)
			body := func(w *Thread) {
				sem.P(w)
				w.Assert(inside.Add(w, 1) <= 2, "sem-bound")
				inside.Add(w, -1)
				sem.V(w)
			}
			hs := []*Handle{th.Go(body), th.Go(body), th.Go(body), th.Go(body)}
			th.JoinAll(hs...)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Classic lock-order inversion; pickRight forces T1 to grab b first.
	prog := func(th *Thread) {
		a := th.NewMutex("a")
		b := th.NewMutex("b")
		h1 := th.Go(func(w *Thread) {
			a.Lock(w)
			b.Lock(w)
			b.Unlock(w)
			a.Unlock(w)
		})
		h2 := th.Go(func(w *Thread) {
			b.Lock(w)
			a.Lock(w)
			a.Unlock(w)
			b.Unlock(w)
		})
		th.Join(h1)
		th.Join(h2)
	}
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		res := Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() {
			if res.Failure.Kind != FailDeadlock {
				t.Fatalf("wrong failure kind %v", res.Failure)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("deadlock never detected in 50 random schedules")
	}
}

func TestAssertAbortsOtherThreads(t *testing.T) {
	res := Run(func(th *Thread) {
		v := th.NewVar("v", 0)
		h := th.Go(func(w *Thread) {
			for i := 0; i < 1000; i++ {
				v.Add(w, 1)
			}
		})
		th.Fail("boom")
		th.Join(h)
	}, pickLeft{}, Options{})
	if !res.Buggy() || res.Failure.BugID != "boom" {
		t.Fatalf("failure = %v, want boom", res.Failure)
	}
}

func TestPanicCaptured(t *testing.T) {
	res := Run(func(th *Thread) {
		v := th.NewVar("v", 0)
		_ = v.Load(th)
		panic("kaput")
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %v, want panic", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "kaput") {
		t.Fatalf("panic message lost: %q", res.Failure.Msg)
	}
}

func TestStepBudgetTruncates(t *testing.T) {
	res := Run(func(th *Thread) {
		for {
			th.Yield()
		}
	}, nil, Options{Base: Base{MaxSteps: 100}})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.Buggy() {
		t.Fatalf("truncation must not be a bug: %v", res.Failure)
	}
	if res.Steps != 100 {
		t.Fatalf("steps = %d, want 100", res.Steps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	prog := func(th *Thread) {
		x := th.NewVar("x", 0)
		m := th.NewMutex("m")
		body := func(w *Thread) {
			m.Lock(w)
			x.Store(w, x.Load(w)*2+1)
			m.Unlock(w)
		}
		h1, h2, h3 := th.Go(body), th.Go(body), th.Go(body)
		th.JoinAll(h1, h2, h3)
	}
	hashes := map[uint64]bool{}
	for seed := int64(0); seed < 20; seed++ {
		r1 := Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}, RecordTrace: true})
		r2 := Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}, RecordTrace: true})
		if r1.InterleavingHash != r2.InterleavingHash {
			t.Fatalf("seed %d: replay diverged", seed)
		}
		if len(r1.Trace) != len(r2.Trace) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range r1.Trace {
			if r1.Trace[i] != r2.Trace[i] {
				t.Fatalf("seed %d: trace diverged at %d: %v vs %v", seed, i, r1.Trace[i], r2.Trace[i])
			}
		}
		hashes[r1.InterleavingHash] = true
	}
	if len(hashes) < 2 {
		t.Fatal("all seeds produced the same interleaving; randomness broken")
	}
}

func TestStablePathsAndNames(t *testing.T) {
	var paths []string
	var names []string
	res := Run(func(th *Thread) {
		v := th.NewVar("x", 0)
		names = append(names, v.Name())
		h1 := th.Go(func(w *Thread) {
			paths = append(paths, w.Path())
			u := w.NewVar("", 0)
			names = append(names, u.Name())
			u.Store(w, 1)
		})
		th.Join(h1)
		h2 := th.Go(func(w *Thread) {
			paths = append(paths, w.Path())
			w.Yield()
		})
		th.Join(h2)
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	if paths[0] != "0.0" || paths[1] != "0.1" {
		t.Fatalf("paths = %v", paths)
	}
	if names[0] != "x" || names[1] != "var#1" {
		t.Fatalf("names = %v", names)
	}
}

func TestDuplicateNamesDisambiguated(t *testing.T) {
	Run(func(th *Thread) {
		a := th.NewVar("x", 0)
		b := th.NewVar("x", 0)
		if a.Name() == b.Name() {
			t.Errorf("duplicate names not disambiguated: %q", a.Name())
		}
	}, nil, Options{})
}

func TestConflicts(t *testing.T) {
	mk := func(tid int, k OpKind, obj ObjID) Event { return Event{TID: tid, Kind: k, Obj: obj} }
	cases := []struct {
		a, b Event
		want bool
	}{
		{mk(0, OpWrite, 1), mk(1, OpRead, 1), true},
		{mk(0, OpRead, 1), mk(1, OpRead, 1), false},
		{mk(0, OpWrite, 1), mk(1, OpWrite, 2), false},
		{mk(0, OpWrite, 1), mk(0, OpRead, 1), false},
		{mk(0, OpLock, 3), mk(1, OpLock, 3), true},
		{mk(0, OpLock, 3), mk(1, OpUnlock, 3), false},
		{mk(0, OpRMW, 1), mk(1, OpRead, 1), true},
	}
	for i, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("case %d: Conflicts = %v, want %v", i, got, c.want)
		}
		if got := c.b.Conflicts(c.a); got != c.want {
			t.Errorf("case %d (sym): Conflicts = %v, want %v", i, got, c.want)
		}
	}
}

func TestProgramInfoTree(t *testing.T) {
	pi := NewProgramInfo()
	root := pi.AddThread("0", "")
	c1 := pi.AddThread("0.0", "0")
	c2 := pi.AddThread("0.1", "0")
	gc := pi.AddThread("0.1.0", "0.1")
	if root != 0 || pi.Parent[root] != -1 {
		t.Fatal("root wrong")
	}
	if pi.Parent[c1] != root || pi.Parent[c2] != root || pi.Parent[gc] != c2 {
		t.Fatalf("parents wrong: %v", pi.Parent)
	}
	if len(pi.Children[root]) != 2 || pi.Children[c2][0] != gc {
		t.Fatalf("children wrong: %v", pi.Children)
	}
	if pi.AddThread("0.0", "0") != c1 {
		t.Fatal("re-add must return existing LID")
	}
	if pi.LID("0.1.0") != gc || pi.LID("0.9") != -1 {
		t.Fatal("LID lookup wrong")
	}
	cp := pi.Clone()
	cp.Events[0] = 99
	if pi.Events[0] == 99 {
		t.Fatal("Clone shares Events")
	}
}

func TestParentOf(t *testing.T) {
	if parentOf("0.1.2") != "0.1" || parentOf("0") != "" {
		t.Fatal("parentOf wrong")
	}
}

func TestProgSeedIndependentOfSchedule(t *testing.T) {
	draw := func(seed int64) int64 {
		var got int64
		Run(func(th *Thread) {
			got = th.ProgRand().Int63()
			th.Yield()
		}, &pickRandom{}, Options{Base: Base{Seed: seed, ProgSeed: 42}})
		return got
	}
	if draw(1) != draw(2) {
		t.Fatal("program randomness varied with scheduling seed")
	}
}

func TestBehaviorReported(t *testing.T) {
	res := Run(func(th *Thread) {
		th.Yield()
		th.SetBehavior("final=3")
	}, nil, Options{})
	if res.Behavior != "final=3" {
		t.Fatalf("behavior = %q", res.Behavior)
	}
}

func TestTraceFilterRestrictsHash(t *testing.T) {
	prog := func(filterOn bool) func(*Thread) {
		return func(th *Thread) {
			x := th.NewVar("x", 0)
			y := th.NewVar("y", 0)
			h := th.Go(func(w *Thread) { x.Store(w, 1); y.Store(w, 1) })
			x.Store(th, 2)
			y.Store(th, 2)
			th.Join(h)
			_ = filterOn
		}
	}
	// Two schedules differing only in y-access order must collide when the
	// filter keeps only x accesses.
	onlyX := func(ev Event) bool { return ev.ObjHash == fnv1a(fnvOffset, "x") }
	r1 := Run(prog(true), pickLeft{}, Options{TraceFilter: onlyX})
	r2 := Run(prog(true), pickRight{}, Options{TraceFilter: onlyX})
	full1 := Run(prog(true), pickLeft{}, Options{})
	full2 := Run(prog(true), pickRight{}, Options{})
	if full1.InterleavingHash == full2.InterleavingHash {
		t.Fatal("full hashes should differ between leftmost and rightmost schedules")
	}
	_ = r1
	_ = r2 // filtered hashes may or may not collide depending on x order; just exercise the path
}

func TestTryLock(t *testing.T) {
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		if !m.TryLock(th) {
			t.Error("TryLock on free mutex failed")
		}
		h := th.Go(func(w *Thread) {
			if m.TryLock(w) {
				w.Fail("trylock-on-held")
			}
		})
		th.Join(h)
		m.Unlock(th)
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatalf("unexpected: %v", res.Failure)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(func(th *Thread) {
			m := th.NewMutex("m")
			c := th.NewCond("c", m)
			ready := th.NewVar("ready", 0)
			woken := th.NewVar("woken", 0)
			mk := func(w *Thread) {
				m.Lock(w)
				ready.Add(w, 1)
				for ready.Load(w) >= 0 && woken.Load(w) == 0 {
					c.Wait(w)
					break // one wait is enough; broadcast wakes us exactly once
				}
				m.Unlock(w)
			}
			h1, h2, h3 := th.Go(mk), th.Go(mk), th.Go(mk)
			for {
				m.Lock(th)
				r := ready.Load(th)
				if r == 3 {
					woken.Store(th, 1)
					c.Broadcast(th)
					m.Unlock(th)
					break
				}
				m.Unlock(th)
				th.Yield()
			}
			th.JoinAll(h1, h2, h3)
		}, &pickRandom{}, Options{Base: Base{Seed: seed, MaxSteps: 50_000}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: failure=%v truncated=%v", seed, res.Failure, res.Truncated)
		}
	}
}

func TestFNVMixProperties(t *testing.T) {
	// Mixing is order-sensitive and injective enough for fingerprinting.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		h1 := fnvMix(fnvMix(fnvOffset, a), b)
		h2 := fnvMix(fnvMix(fnvOffset, b), a)
		return h1 != h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool { return fnv1a(fnvOffset, s) == fnv1a(fnvOffset, s) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpInvalid; k <= OpYield; k++ {
		if k.String() == "" {
			t.Fatalf("missing name for kind %d", k)
		}
	}
	if OpRead.String() != "read" || OpKind(200).String() != "op(200)" {
		t.Fatal("OpKind.String wrong")
	}
	for _, k := range []ObjKind{ObjNone, ObjVar, ObjMutex, ObjCond, ObjSem} {
		if k.String() == "" {
			t.Fatal("missing ObjKind name")
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{}
	if r.Buggy() || r.BugID() != "" {
		t.Fatal("empty result misreported")
	}
	r.Failure = &Failure{Kind: FailAssert, BugID: "b", Msg: "m", TID: 1, Step: 3}
	if !r.Buggy() || r.BugID() != "b" {
		t.Fatal("failing result misreported")
	}
	if r.Failure.Error() == "" {
		t.Fatal("failure error empty")
	}
}
