package sched

import "testing"

// A thread killed while parked inside Cond.Wait unwinds through deferred
// cleanup that itself issues scheduling ops — Chan.Recv's deferred
// mu.Unlock is the canonical case. Those ops must not re-enter the dead
// scheduler: before the killing-mode re-raise in Thread.sync, the unwind
// parked forever mid-defer, and a pooled execution would resume the stale
// unwind inside the NEXT schedule and corrupt it.
func TestKillUnwindsThroughDeferredOps(t *testing.T) {
	unwound := false
	prog := func(rt *Thread) {
		ch := NewChan[int](rt, "ch", 0)
		rt.Go(func(w *Thread) {
			defer func() { unwound = true }()
			ch.Recv(w) // parks forever: the schedule deadlocks
		})
	}

	res := Run(prog, nil, Options{})
	if res.Failure == nil || res.Failure.Kind != FailDeadlock {
		t.Fatalf("expected deadlock, got %+v", res.Failure)
	}
	if !unwound {
		t.Fatal("killed receiver's deferred cleanup did not run")
	}

	// Pooled: the schedule after the deadlock must be pristine.
	p := NewPool()
	defer p.Close()
	for s := int64(1); s <= 3; s++ {
		unwound = false
		r := p.Run(prog, nil, Options{Base: Base{Seed: s}})
		if r.Failure == nil || r.Failure.Kind != FailDeadlock {
			t.Fatalf("pooled schedule %d: expected deadlock, got %+v", s, r.Failure)
		}
		if !unwound {
			t.Fatalf("pooled schedule %d: kill unwind stalled", s)
		}
	}
}
