package sched

import (
	"reflect"
	"testing"
)

// poolPrograms exercises every object kind and failure mode the substrate
// supports, so pooled-versus-fresh comparisons cover gate-channel reuse,
// object-table reuse, waiter-buffer reuse, and name interning.
func poolPrograms() map[string]func(*Thread) {
	return map[string]func(*Thread){
		"vars": func(t *Thread) {
			x := t.NewVar("x", 1)
			a := t.Go(func(w *Thread) {
				for i := 0; i < 4; i++ {
					x.Update(w, func(v int64) int64 { return v << 1 })
				}
			})
			b := t.Go(func(w *Thread) {
				for i := 0; i < 4; i++ {
					x.Update(w, func(v int64) int64 { return v<<1 + 1 })
				}
			})
			t.JoinAll(a, b)
			t.SetBehavior(x.Name())
		},
		"autonames": func(t *Thread) {
			// Auto-named and colliding names walk the intern/dedup path.
			u := t.NewVar("", 0)
			v := t.NewVar("", 0)
			w1 := t.NewVar("dup", 0)
			w2 := t.NewVar("dup", 0)
			h := t.Go(func(w *Thread) { u.Add(w, 1); w1.Add(w, 1) })
			v.Add(t, 1)
			w2.Add(t, 1)
			t.Join(h)
		},
		"mutex-cond": func(t *Thread) {
			m := t.NewMutex("m")
			c := t.NewCond("c", m)
			ready := t.NewVar("ready", 0)
			h := t.Go(func(w *Thread) {
				m.Lock(w)
				for ready.Load(w) == 0 {
					c.Wait(w)
				}
				m.Unlock(w)
			})
			m.Lock(t)
			ready.Store(t, 1)
			c.Broadcast(t)
			m.Unlock(t)
			t.Join(h)
		},
		"chan-wg": func(t *Thread) {
			ch := NewChan[int](t, "ch", 1)
			wg := t.NewWaitGroup("wg")
			wg.Add(t, 2)
			for i := 0; i < 2; i++ {
				i := i
				t.Go(func(w *Thread) {
					ch.Send(w, i)
					wg.Done(w)
				})
			}
			sum := 0
			for i := 0; i < 2; i++ {
				v, _ := ch.Recv(t)
				sum += v
			}
			wg.Wait(t)
			t.Assert(sum == 1, "chan-sum")
		},
		"rwmutex-sem": func(t *Thread) {
			rw := t.NewRWMutex("rw")
			sem := t.NewSemaphore("sem", 1)
			x := t.NewVar("x", 0)
			r := t.Go(func(w *Thread) {
				rw.RLock(w)
				x.Load(w)
				rw.RUnlock(w)
			})
			wr := t.Go(func(w *Thread) {
				sem.P(w)
				rw.Lock(w)
				x.Add(w, 1)
				rw.Unlock(w)
				sem.V(w)
			})
			t.JoinAll(r, wr)
		},
		"deadlock": func(t *Thread) {
			a := t.NewMutex("a")
			b := t.NewMutex("b")
			h := t.Go(func(w *Thread) {
				b.Lock(w)
				w.Yield()
				a.Lock(w)
				a.Unlock(w)
				b.Unlock(w)
			})
			a.Lock(t)
			t.Yield()
			b.Lock(t)
			b.Unlock(t)
			a.Unlock(t)
			t.Join(h)
		},
		"truncated": func(t *Thread) {
			x := t.NewVar("x", 0)
			for {
				x.Add(t, 1)
			}
		},
	}
}

func resultsEqual(t *testing.T, name string, seed int64, fresh, pooled *Result) {
	t.Helper()
	if !reflect.DeepEqual(fresh, pooled) {
		t.Fatalf("%s seed %d: pooled result diverged\nfresh:  %+v\npooled: %+v", name, seed, fresh, pooled)
	}
}

// TestPoolMatchesFreshRun holds Pool.Run bit-identical to one-shot Run for
// every program class, over many seeds, with a single pool reused across
// all of them (including across different programs, the worst case for
// buffer recycling).
func TestPoolMatchesFreshRun(t *testing.T) {
	pool := NewPool()
	for name, prog := range poolPrograms() {
		opts := Options{Base: Base{MaxSteps: 300}}
		for seed := int64(0); seed < 40; seed++ {
			opts.Seed = seed
			opts.ProgSeed = seed / 2
			fresh := Run(prog, &pickRandom{}, opts)
			pooled := pool.Run(prog, &pickRandom{}, opts)
			resultsEqual(t, name, seed, fresh, pooled)
		}
	}
}

// TestPoolMatchesFreshRunWithTrace covers the trace hand-off: a pooled run
// must surrender the recorded trace, and later runs must not scribble on it.
func TestPoolMatchesFreshRunWithTrace(t *testing.T) {
	prog := poolPrograms()["vars"]
	pool := NewPool()
	opts := Options{RecordTrace: true}
	var prev *Result
	var prevCopy []Event
	for seed := int64(0); seed < 20; seed++ {
		opts.Seed = seed
		fresh := Run(prog, &pickRandom{}, opts)
		pooled := pool.Run(prog, &pickRandom{}, opts)
		resultsEqual(t, "vars-trace", seed, fresh, pooled)
		if prev != nil && !reflect.DeepEqual(prev.Trace, prevCopy) {
			t.Fatalf("seed %d: earlier pooled trace was overwritten", seed)
		}
		prev = pooled
		prevCopy = append([]Event(nil), pooled.Trace...)
	}
}

// TestPoolReusedAcrossAssertFailures checks the kill/unwind path leaves the
// pool reusable: aborted schedules recycle their threads cleanly.
func TestPoolReusedAcrossAssertFailures(t *testing.T) {
	prog := func(t *Thread) {
		x := t.NewVar("x", 0)
		h := t.Go(func(w *Thread) { x.Store(w, 1) })
		if x.Load(t) == 1 {
			t.Fail("saw-write")
		}
		t.Join(h)
	}
	pool := NewPool()
	sawBug, sawClean := false, false
	for seed := int64(0); seed < 60; seed++ {
		fresh := Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}})
		pooled := pool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}})
		resultsEqual(t, "assert", seed, fresh, pooled)
		if pooled.Buggy() {
			sawBug = true
		} else {
			sawClean = true
		}
	}
	if !sawBug || !sawClean {
		t.Fatalf("want both outcomes over the seeds: bug=%v clean=%v", sawBug, sawClean)
	}
}

// TestPoolSteadyStateAllocations verifies the allocation diet: once warm, a
// pooled schedule of a spawn-heavy program must allocate well under half of
// what a fresh execution does.
func TestPoolSteadyStateAllocations(t *testing.T) {
	prog := poolPrograms()["vars"]
	pool := NewPool()
	pool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 0}}) // warm-up
	pooled := testing.AllocsPerRun(50, func() {
		pool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 1}})
	})
	fresh := testing.AllocsPerRun(50, func() {
		Run(prog, &pickRandom{}, Options{Base: Base{Seed: 1}})
	})
	if pooled > fresh/2 {
		t.Fatalf("pooled schedule allocates %.0f objects, fresh %.0f; want < half", pooled, fresh)
	}
}
