package sched

// Scheduling-decision tracing: the substrate-side half of the observability
// layer (package internal/obs holds the collector, exporters, and metrics).
//
// The hook is designed so the disabled path costs exactly one predictable
// nil-check per event and zero allocations: Options.Tracer is copied into
// the Execution at reset, the Decision value is built on the stack, and no
// tracer state is touched unless a tracer is installed. The regression gate
// in ci.sh holds the disabled path to the same allocs/schedule as a build
// without the hook.

// Decision describes one scheduling decision: at step Step, thread Chosen
// (out of Enabled candidates) executed Event. Consulted reports whether the
// algorithm's Next was asked (the scheduler fast-paths singleton enabled
// sets and nil algorithms, which still count as decisions but involve no
// choice).
type Decision struct {
	Step      int      // 0-based step index within the schedule
	Chosen    ThreadID // thread whose event executes
	Enabled   int      // size of the enabled set the choice was made from
	Consulted bool     // whether Algorithm.Next was consulted
	Event     Event    // the event about to execute
}

// Tracer observes every scheduling decision of a schedule. Implementations
// must not retain the *State (it is owned by the scheduler and mutates);
// read what you need during the call. A Tracer is used by one Execution at
// a time and needs no internal locking.
//
// Decide fires after the decision is made and the event recorded, but
// before the event executes, so st still reflects the pre-event state: the
// enabled set returned by st.Enabled() is the set the decision was drawn
// from.
type Tracer interface {
	// BeginSchedule fires once per schedule, before any decision, with the
	// algorithm's name ("" when running the nil left-most fallback).
	BeginSchedule(alg string)
	// Decide fires once per executed event.
	Decide(d Decision, st *State)
	// EndSchedule fires once per schedule with the final result (the same
	// value the caller of Run receives).
	EndSchedule(r *Result)
}

// Annotator is implemented by algorithms that expose per-decision internal
// state to tracers — e.g. SURW's intended thread and remaining Δ-weights,
// or URW's remaining-event weights. AppendAnnotation appends a short
// human-readable summary to buf and returns the extended slice; reusing the
// caller's buffer keeps annotation capture allocation-free once warm.
type Annotator interface {
	AppendAnnotation(buf []byte, st *State) []byte
}

// AppendAlgAnnotation appends the running algorithm's self-description to
// buf (see Annotator) and returns the extended slice. It returns buf
// unchanged when the algorithm exposes no annotation.
func (s *State) AppendAlgAnnotation(buf []byte) []byte {
	if an, ok := s.ex.alg.(Annotator); ok {
		return an.AppendAnnotation(buf, s)
	}
	return buf
}

// Algorithm returns the name of the algorithm driving this schedule ("" for
// the nil left-most fallback).
func (s *State) AlgorithmName() string {
	if s.ex.alg == nil {
		return ""
	}
	return s.ex.alg.Name()
}
