package sched

// Prefix checkpointing.
//
// Under a fixed program, every schedule of a session begins with the same
// forced prefix: decisions where exactly one thread is enabled consume no
// randomness, so they come out identical for every seed. A Checkpoint
// captures that prefix from one run — the forced decision sequence plus
// the accumulated interleaving hash and trace — and RunFrom replays it
// without consulting the algorithm, without re-hashing and without
// re-tracing. Combined with the fast engine's inline continuation (a
// forced choice of the running thread parks nobody), a checkpointed
// prefix executes as a tight single-goroutine loop: the batched
// run-to-next-decision path.
//
// Replay still *executes* the prefix — program effects, spawn
// notifications, algorithm Observe calls and the Δ hash all happen
// normally, so any Algorithm (including profile-driven ones) sees exactly
// the event stream of a full run — but the scheduler-side cost per forced
// step drops to a bounds check and a bitmask compare. Divergence (the
// enabled set not matching the capture run's singleton) is a caller bug
// — a different program or incompatible options — and panics.

// Checkpoint is the reusable forced prefix of a schedule. It is immutable
// once returned by RunPrefix and safe to share across RunFrom calls of
// the same pool (RunFrom only reads it). The zero value is not useful;
// a nil *Checkpoint means "no prefix" and RunFrom degrades to Run.
type Checkpoint struct {
	forced  []ThreadID // chosen TID of every forced (single-enabled) decision
	steps   int        // == len(forced)
	ilvHash uint64     // interleaving hash after the prefix
	trace   []Event    // prefix trace (only when captured with RecordTrace)

	// Class-fingerprint state after the prefix: the classAcc accumulator,
	// every thread's hash-clock and every object's (lastWriteH, readAcc)
	// pair, snapshotted at seal time. Replay adopts them wholesale when the
	// prefix ends instead of re-running classEvent per forced step.
	classAcc uint64
	clocks   []uint64
	objClass []objClass

	open    bool // still capturing (run not yet past its first free choice)
	invalid bool // capture aborted (slow path or fast-engine bail)

	// Compatibility stamp: RunFrom refuses options that would make the
	// prefix diverge. TraceFilter cannot be compared (functions); callers
	// must pass the same filter they captured with — the runner does.
	progSeed    int64
	maxSteps    int
	recordTrace bool
	filterNil   bool
}

// Decisions returns the number of forced decisions the checkpoint covers.
func (cp *Checkpoint) Decisions() int {
	if cp == nil {
		return 0
	}
	return cp.steps
}

// ClassPrefix returns the class fingerprint of the forced prefix: the
// classAcc accumulator after the prefix's events. Every schedule of a
// session shares the prefix, so this is the session-level key the runner's
// prefix-class early abandon (Config.PrefixFilter) consults. Nil-safe.
func (cp *Checkpoint) ClassPrefix() uint64 {
	if cp == nil {
		return 0
	}
	return cp.classAcc
}

// objClass is an object's class-fingerprint state as snapshotted into a
// Checkpoint (see objState.lastWriteH/readAcc).
type objClass struct {
	lastWriteH uint64
	readAcc    uint64
}

// closeCapture seals the capture at the current point: just before the
// first free (multi-choice) decision, or at schedule end when every
// decision was forced.
func (ex *Execution) closeCapture() {
	cp := ex.capture
	cp.open = false
	cp.steps = ex.steps
	cp.ilvHash = ex.ilvHash
	cp.classAcc = ex.classAcc
	cp.clocks = make([]uint64, len(ex.threads))
	for i, t := range ex.threads {
		cp.clocks[i] = t.clock
	}
	cp.objClass = make([]objClass, len(ex.objs))
	for i := range ex.objs {
		cp.objClass[i] = objClass{lastWriteH: ex.objs[i].lastWriteH, readAcc: ex.objs[i].readAcc}
	}
	if ex.opts.RecordTrace {
		cp.trace = append([]Event(nil), ex.trace[:ex.steps]...)
	}
	ex.capture = nil
}

// RunPrefix executes one schedule like Run and additionally captures its
// forced prefix. The returned Checkpoint is nil when no prefix could be
// captured — a tracer or DisableBatching forced the slow path, or the
// program outgrew the fast engine — in which case RunFrom(nil, ...) is
// still correct and simply runs in full.
func (p *Pool) RunPrefix(prog func(*Thread), alg Algorithm, opts Options) (*Result, *Checkpoint) {
	p.ex.persistent = true
	cp := &Checkpoint{
		open:        true,
		progSeed:    opts.ProgSeed,
		maxSteps:    effectiveMaxSteps(opts),
		recordTrace: opts.RecordTrace,
		filterNil:   opts.TraceFilter == nil,
	}
	res := p.ex.runWith(prog, alg, opts, cp, nil)
	if cp.invalid || cp.open {
		return res, nil
	}
	return res, cp
}

// RunFrom executes one schedule like Run, replaying cp's forced prefix
// through the batched path. A nil cp runs in full; so do options that
// force the slow engine (a tracer sees every event of a real run). The
// Result is bit-identical to Run with the same arguments.
func (p *Pool) RunFrom(cp *Checkpoint, prog func(*Thread), alg Algorithm, opts Options) *Result {
	p.ex.persistent = true
	if cp == nil || opts.Tracer != nil || opts.DisableBatching {
		return p.ex.run(prog, alg, opts)
	}
	if cp.open || cp.invalid {
		panic("sched: RunFrom with an unsealed checkpoint")
	}
	if cp.progSeed != opts.ProgSeed || cp.maxSteps != effectiveMaxSteps(opts) ||
		cp.recordTrace != opts.RecordTrace || cp.filterNil != (opts.TraceFilter == nil) {
		panic("sched: RunFrom options incompatible with the checkpoint's capture run")
	}
	return p.ex.runWith(prog, alg, opts, nil, cp)
}

func effectiveMaxSteps(opts Options) int {
	if opts.MaxSteps <= 0 {
		return DefaultMaxSteps
	}
	return opts.MaxSteps
}
