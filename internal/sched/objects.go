package sched

import "fmt"

// Var is a shared int64 variable. Every access is an atomic event.
type Var struct {
	id ObjID
	ex *Execution
}

// NewVar creates a shared variable. name identifies the variable across
// schedules ("" auto-names it from creation order); init is its initial
// value. Creating an object is not itself an event.
func (t *Thread) NewVar(name string, init int64) *Var {
	id := t.ex.addObj(objState{kind: ObjVar, val: init}, name, "var")
	return &Var{id: id, ex: t.ex}
}

// ID returns the variable's object ID.
func (v *Var) ID() ObjID { return v.id }

// Name returns the variable's stable name.
func (v *Var) Name() string { return v.ex.obj(v.id).name }

// Load reads the variable (an OpRead event).
func (v *Var) Load(t *Thread) int64 {
	t.sync(OpRead, v.id)
	return v.ex.obj(v.id).val
}

// Store writes the variable (an OpWrite event).
func (v *Var) Store(t *Thread, x int64) {
	t.sync(OpWrite, v.id)
	v.ex.obj(v.id).val = x
}

// Add atomically adds d and returns the new value (an OpRMW event).
func (v *Var) Add(t *Thread, d int64) int64 {
	t.sync(OpRMW, v.id)
	o := v.ex.obj(v.id)
	o.val += d
	return o.val
}

// Swap atomically replaces the value and returns the old one (OpRMW).
func (v *Var) Swap(t *Thread, x int64) int64 {
	t.sync(OpRMW, v.id)
	o := v.ex.obj(v.id)
	old := o.val
	o.val = x
	return old
}

// CAS atomically compares-and-swaps (an OpRMW event).
func (v *Var) CAS(t *Thread, old, new int64) bool {
	t.sync(OpRMW, v.id)
	o := v.ex.obj(v.id)
	if o.val != old {
		return false
	}
	o.val = new
	return true
}

// Update applies f to the value atomically (an OpRMW event) and returns the
// new value.
func (v *Var) Update(t *Thread, f func(int64) int64) int64 {
	t.sync(OpRMW, v.id)
	o := v.ex.obj(v.id)
	o.val = f(o.val)
	return o.val
}

// Peek returns the current value without an event. It is for use after the
// program has quiesced (e.g. computing a behaviour fingerprint in the root
// thread after joining everyone); using it to smuggle unscheduled
// communication between threads defeats the tool.
func (v *Var) Peek() int64 { return v.ex.obj(v.id).val }

// Ref is a shared variable holding an arbitrary value of type E. Accesses
// are events exactly like Var's; mutate only through Get/Set/Update so every
// access is scheduled.
type Ref[E any] struct {
	id ObjID
	ex *Execution
}

// NewRef creates a shared reference cell named name holding init.
func NewRef[E any](t *Thread, name string, init E) *Ref[E] {
	id := t.ex.addObj(objState{kind: ObjVar, ref: init}, name, "ref")
	return &Ref[E]{id: id, ex: t.ex}
}

// ID returns the reference's object ID.
func (r *Ref[E]) ID() ObjID { return r.id }

// Name returns the reference's stable name.
func (r *Ref[E]) Name() string { return r.ex.obj(r.id).name }

// Get reads the cell (OpRead).
func (r *Ref[E]) Get(t *Thread) E {
	t.sync(OpRead, r.id)
	return r.ex.obj(r.id).ref.(E)
}

// Set writes the cell (OpWrite).
func (r *Ref[E]) Set(t *Thread, x E) {
	t.sync(OpWrite, r.id)
	r.ex.obj(r.id).ref = x
}

// Update applies f to the cell atomically (OpRMW) and returns the new value.
func (r *Ref[E]) Update(t *Thread, f func(E) E) E {
	t.sync(OpRMW, r.id)
	o := r.ex.obj(r.id)
	nv := f(o.ref.(E))
	o.ref = nv
	return nv
}

// Peek returns the current value without an event (see Var.Peek).
func (r *Ref[E]) Peek() E { return r.ex.obj(r.id).ref.(E) }

// Mutex is a non-reentrant mutual-exclusion lock.
type Mutex struct {
	id ObjID
	ex *Execution
}

// NewMutex creates a mutex.
func (t *Thread) NewMutex(name string) *Mutex {
	id := t.ex.addObj(objState{kind: ObjMutex, owner: -1}, name, "mutex")
	return &Mutex{id: id, ex: t.ex}
}

// ID returns the mutex's object ID.
func (m *Mutex) ID() ObjID { return m.id }

// Name returns the mutex's stable name.
func (m *Mutex) Name() string { return m.ex.obj(m.id).name }

// Lock acquires the mutex (an OpLock event, enabled only while free).
func (m *Mutex) Lock(t *Thread) {
	t.sync(OpLock, m.id)
	o := m.ex.obj(m.id)
	if o.owner != -1 {
		panic(fmt.Sprintf("sched: lock %s granted while held by T%d", o.name, o.owner))
	}
	o.owner = t.id
	t.heldMutex = append(t.heldMutex, m.id)
}

// Unlock releases the mutex (an OpUnlock event). Unlocking a mutex the
// thread does not hold is a program error and fails the schedule.
func (m *Mutex) Unlock(t *Thread) {
	t.sync(OpUnlock, m.id)
	o := m.ex.obj(m.id)
	if o.owner != t.id {
		panic(fmt.Sprintf("unlock of %s not held by T%d", o.name, t.id))
	}
	o.owner = -1
	for i := len(t.heldMutex) - 1; i >= 0; i-- {
		if t.heldMutex[i] == m.id {
			t.heldMutex = append(t.heldMutex[:i], t.heldMutex[i+1:]...)
			break
		}
	}
}

// TryLock acquires the mutex if free (an OpRMW-style event that never
// blocks) and reports success.
func (m *Mutex) TryLock(t *Thread) bool {
	t.sync(OpRMW, m.id)
	o := m.ex.obj(m.id)
	if o.owner != -1 {
		return false
	}
	o.owner = t.id
	t.heldMutex = append(t.heldMutex, m.id)
	return true
}

// HeldBy reports the current owner without an event (-1 if free).
func (m *Mutex) HeldBy() ThreadID { return m.ex.obj(m.id).owner }

// RWMutex is a readers-writer lock: any number of concurrent readers, or
// one writer.
type RWMutex struct {
	id ObjID
	ex *Execution
}

// NewRWMutex creates a readers-writer lock.
func (t *Thread) NewRWMutex(name string) *RWMutex {
	id := t.ex.addObj(objState{kind: ObjMutex, owner: -1}, name, "rwmutex")
	return &RWMutex{id: id, ex: t.ex}
}

// ID returns the lock's object ID.
func (m *RWMutex) ID() ObjID { return m.id }

// Name returns the lock's stable name.
func (m *RWMutex) Name() string { return m.ex.obj(m.id).name }

// Lock acquires the write lock (an OpLock event, enabled only while no
// writer owns it and no readers are active).
func (m *RWMutex) Lock(t *Thread) {
	t.sync(OpLock, m.id)
	o := m.ex.obj(m.id)
	if o.owner != -1 || o.readers != 0 {
		panic(fmt.Sprintf("sched: write lock %s granted while busy", o.name))
	}
	o.owner = t.id
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock(t *Thread) {
	t.sync(OpUnlock, m.id)
	o := m.ex.obj(m.id)
	if o.owner != t.id {
		panic(fmt.Sprintf("unlock of %s not write-held by T%d", o.name, t.id))
	}
	o.owner = -1
}

// RLock acquires a read lock (an OpRLock event, enabled while no writer
// owns the lock).
func (m *RWMutex) RLock(t *Thread) {
	t.sync(OpRLock, m.id)
	o := m.ex.obj(m.id)
	if o.owner != -1 {
		panic(fmt.Sprintf("sched: read lock %s granted while write-held", o.name))
	}
	o.readers++
}

// RUnlock releases a read lock.
func (m *RWMutex) RUnlock(t *Thread) {
	t.sync(OpRUnlock, m.id)
	o := m.ex.obj(m.id)
	if o.readers <= 0 {
		panic(fmt.Sprintf("runlock of %s with no active readers", o.name))
	}
	o.readers--
}

// TryLock acquires the write lock if free (an OpRMW-style event that never
// blocks) and reports success.
func (m *RWMutex) TryLock(t *Thread) bool {
	t.sync(OpRMW, m.id)
	o := m.ex.obj(m.id)
	if o.owner != -1 || o.readers != 0 {
		return false
	}
	o.owner = t.id
	return true
}

// TryRLock acquires a read lock if no writer holds the lock (an OpRMW-style
// event that never blocks) and reports success.
func (m *RWMutex) TryRLock(t *Thread) bool {
	t.sync(OpRMW, m.id)
	o := m.ex.obj(m.id)
	if o.owner != -1 {
		return false
	}
	o.readers++
	return true
}

// Readers returns the active reader count without an event.
func (m *RWMutex) Readers() int { return m.ex.obj(m.id).readers }

// Cond is a condition variable bound to a Mutex. There are no spurious
// wakeups: a Wait returns only after a Signal or Broadcast selected it.
type Cond struct {
	id ObjID
	mu *Mutex
	ex *Execution
}

// NewCond creates a condition variable using mutex m.
func (t *Thread) NewCond(name string, m *Mutex) *Cond {
	id := t.ex.addObj(objState{kind: ObjCond, condMu: m.id, owner: -1}, name, "cond")
	return &Cond{id: id, mu: m, ex: t.ex}
}

// ID returns the condition variable's object ID.
func (c *Cond) ID() ObjID { return c.id }

// Name returns the condition variable's stable name.
func (c *Cond) Name() string { return c.ex.obj(c.id).name }

// Wait atomically releases the mutex and sleeps until signaled, then
// reacquires the mutex before returning. It is two events: OpWait (release
// and sleep) and OpWakeLock (reacquire, enabled once the mutex is free).
func (c *Cond) Wait(t *Thread) {
	t.sync(OpWait, c.id)
	mo := c.ex.obj(c.mu.id)
	if mo.owner != t.id {
		panic(fmt.Sprintf("cond wait on %s without holding %s", c.Name(), c.mu.Name()))
	}
	mo.owner = -1
	for i := len(t.heldMutex) - 1; i >= 0; i-- {
		if t.heldMutex[i] == c.mu.id {
			t.heldMutex = append(t.heldMutex[:i], t.heldMutex[i+1:]...)
			break
		}
	}
	co := c.ex.obj(c.id)
	co.waiters = append(co.waiters, t.id)
	t.state = tsSleeping
	if t.ex.fast {
		t.ex.sleepPoint(t) // decide the next step without a next event
	}
	t.park() // resumed only when the OpWakeLock below is granted
	t.state = tsRunning
	mo = c.ex.obj(c.mu.id)
	if mo.owner != -1 {
		panic(fmt.Sprintf("sched: wakelock on %s granted while held", c.mu.Name()))
	}
	mo.owner = t.id
	t.heldMutex = append(t.heldMutex, c.mu.id)
}

// wake moves a sleeping waiter to the ready state with an OpWakeLock event.
func (c *Cond) wake(tid ThreadID) {
	w := c.ex.threads[tid]
	w.seq++
	w.next = Event{TID: w.id, Seq: w.seq, Kind: OpWakeLock, Obj: c.mu.id,
		PathHash: w.pathHash, ObjHash: c.ex.obj(c.mu.id).hash}
	w.state = tsReady
	if c.ex.fast {
		c.ex.classify(w) // register the pending wakelock in the mutex's waitMask
	}
}

// Signal wakes the longest-sleeping waiter, if any (an OpSignal event).
func (c *Cond) Signal(t *Thread) {
	t.sync(OpSignal, c.id)
	co := c.ex.obj(c.id)
	if len(co.waiters) > 0 {
		c.wake(co.waiters[0])
		co.waiters = co.waiters[1:]
	}
}

// Broadcast wakes every waiter (an OpBroadcast event).
func (c *Cond) Broadcast(t *Thread) {
	t.sync(OpBroadcast, c.id)
	co := c.ex.obj(c.id)
	for _, w := range co.waiters {
		c.wake(w)
	}
	co.waiters = co.waiters[:0]
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	id ObjID
	ex *Execution
}

// NewSemaphore creates a semaphore with the given initial count.
func (t *Thread) NewSemaphore(name string, init int) *Semaphore {
	id := t.ex.addObj(objState{kind: ObjSem, sem: init, owner: -1}, name, "sem")
	return &Semaphore{id: id, ex: t.ex}
}

// ID returns the semaphore's object ID.
func (s *Semaphore) ID() ObjID { return s.id }

// Name returns the semaphore's stable name.
func (s *Semaphore) Name() string { return s.ex.obj(s.id).name }

// P decrements the count (an OpSemP event, enabled while count > 0).
func (s *Semaphore) P(t *Thread) {
	t.sync(OpSemP, s.id)
	o := s.ex.obj(s.id)
	if o.sem <= 0 {
		panic("sched: semP granted at zero")
	}
	o.sem--
}

// V increments the count (an OpSemV event).
func (s *Semaphore) V(t *Thread) {
	t.sync(OpSemV, s.id)
	s.ex.obj(s.id).sem++
}

// Count returns the current count without an event.
func (s *Semaphore) Count() int { return s.ex.obj(s.id).sem }
