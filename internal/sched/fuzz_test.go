package sched_test

import (
	"fmt"
	"testing"

	"surw/internal/core"
	"surw/internal/replay"
	"surw/internal/sched"
)

// FuzzChannelOps drives a producer/consumer pair over a fuzzed channel
// shape (capacity, send count, receive count, scheduling seed) and checks
// the channel invariants under randomized scheduling: no spurious failure
// or deadlock, FIFO delivery, exact leftover count after close, and
// deterministic, bit-exact record→replay. The parameters are folded so
// that every input is deadlock-free by construction: the consumer takes
// recvs <= sends items and the capacity covers the sends the consumer
// never takes, so the producer cannot block forever.
func FuzzChannelOps(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(2))
	f.Add(int64(9), int64(0), int64(4), int64(4))  // rendezvous: unbuffered, fully drained
	f.Add(int64(-3), int64(2), int64(6), int64(0)) // consumer-free: pure buffering
	f.Add(int64(77), int64(1), int64(5), int64(3))
	f.Fuzz(func(t *testing.T, seed, capRaw, sendsRaw, recvsRaw int64) {
		sends := 1 + int(abs64(sendsRaw)%6)
		recvs := int(abs64(recvsRaw) % int64(sends+1))
		capacity := (sends - recvs) + int(abs64(capRaw)%3)
		leftover := sends - recvs

		prog := func(root *sched.Thread) {
			ch := sched.NewChan[int64](root, "ch", capacity)
			sum := root.NewVar("sum", 0)
			p := root.Go(func(w *sched.Thread) {
				for i := 1; i <= sends; i++ {
					ch.Send(w, int64(i))
				}
				ch.Close(w)
			})
			c := root.Go(func(w *sched.Thread) {
				prev := int64(0)
				for i := 0; i < recvs; i++ {
					v, ok := ch.Recv(w)
					w.Assert(ok, "closed-before-budget")
					w.Assert(v == prev+1, "fifo-order")
					prev = v
					sum.Add(w, v)
				}
			})
			root.JoinAll(p, c)
			// After both threads are done the channel must hold exactly the
			// unconsumed suffix, in order, and then report drained.
			prev := int64(recvs)
			for i := 0; i < leftover; i++ {
				v, ok := ch.TryRecv(root)
				root.Assert(ok, "leftover-missing")
				root.Assert(v == prev+1, "leftover-order")
				prev = v
			}
			_, ok := ch.TryRecv(root)
			root.Assert(!ok, "phantom-item")
			root.SetBehavior(fmt.Sprintf("sum=%d", sum.Peek()))
		}

		opts := sched.Options{Base: sched.Base{Seed: seed}}
		res, rec := replay.Record(prog, core.NewRandomWalk(), opts)
		if res.Buggy() {
			t.Fatalf("cap=%d sends=%d recvs=%d seed=%d: %v", capacity, sends, recvs, seed, res.Failure)
		}
		if res.Truncated {
			t.Fatalf("cap=%d sends=%d recvs=%d seed=%d: truncated at %d steps", capacity, sends, recvs, seed, res.Steps)
		}
		again := sched.Run(prog, core.NewRandomWalk(), opts)
		if again.InterleavingHash != res.InterleavingHash || again.Behavior != res.Behavior {
			t.Fatalf("cap=%d sends=%d recvs=%d seed=%d: nondeterministic schedule", capacity, sends, recvs, seed)
		}
		replayed, err := replay.ReplayStrict(prog, rec, opts)
		if err != nil {
			t.Fatalf("cap=%d sends=%d recvs=%d seed=%d: %v", capacity, sends, recvs, seed, err)
		}
		if replayed.InterleavingHash != res.InterleavingHash || replayed.Behavior != res.Behavior {
			t.Fatalf("cap=%d sends=%d recvs=%d seed=%d: replay diverged", capacity, sends, recvs, seed)
		}
	})
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == -1<<63 {
			return 0
		}
		return -x
	}
	return x
}
