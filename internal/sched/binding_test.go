package sched

import (
	"sync"
	"testing"
)

// The registry is the foundation the surwsync frontend stands on: a bound
// goroutine resolves its virtual thread, an unbound one resolves nothing,
// and bindings never leak past a body. Exercised here in-package so the
// substrate's own coverage pins it, independent of surwsync's tests.
func TestBindingRegistry(t *testing.T) {
	if _, ok := CurrentThread(); ok {
		t.Fatal("unbound goroutine resolved a thread")
	}
	if Bindings() != 0 {
		t.Fatalf("Bindings() = %d before any bind", Bindings())
	}

	var resolved *Thread
	var childResolved bool
	res := Run(func(rt *Thread) {
		BindGoroutine(rt)
		defer UnbindGoroutine()
		got, ok := CurrentThread()
		if !ok || got != rt {
			panic("root binding did not resolve")
		}
		resolved = got

		h := rt.Go(func(w *Thread) {
			// The child's coroutine is a different goroutine: without its
			// own binding it must not inherit the root's.
			if _, ok := CurrentThread(); ok {
				panic("child inherited a binding it never made")
			}
			BindGoroutine(w)
			defer UnbindGoroutine()
			cw, ok := CurrentThread()
			childResolved = ok && cw == w
		})
		rt.Join(h)
	}, nil, Options{})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %+v", res.Failure)
	}
	if resolved == nil || !childResolved {
		t.Fatal("binding resolution failed inside the session")
	}
	if Bindings() != 0 {
		t.Fatalf("Bindings() = %d after session; bindings leaked", Bindings())
	}

	// Double-bind of the same goroutine must not inflate the counter, and a
	// stray unbind must stay a no-op.
	UnbindGoroutine()
	if Bindings() != 0 {
		t.Fatalf("Bindings() = %d after no-op unbind", Bindings())
	}
}

// goid must agree with itself on one goroutine and differ across
// goroutines — the two properties the shard map relies on.
func TestGoidStableAndDistinct(t *testing.T) {
	a, b := goid(), goid()
	if a != b || a <= 0 {
		t.Fatalf("goid unstable on one goroutine: %d vs %d", a, b)
	}
	var other int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); other = goid() }()
	wg.Wait()
	if other == a || other <= 0 {
		t.Fatalf("distinct goroutines share goid %d", a)
	}
}

// ShimCache must hand back the same object within one schedule and a fresh
// one each schedule — the fresh-state-per-schedule contract zero-value
// frontend primitives depend on.
func TestShimCacheGenerationScoped(t *testing.T) {
	var cache ShimCache
	var perSchedule []*Mutex
	var hitsSameObject bool
	prog := func(rt *Thread) {
		mk := func(w *Thread) any { return w.NewMutex("shim.mu") }
		m := cache.Resolve(rt, mk).(*Mutex)
		perSchedule = append(perSchedule, m)
		hitsSameObject = cache.Resolve(rt, mk).(*Mutex) == m
		m.Lock(rt)
		// Left locked on purpose: the next schedule's object must be free.
		if !hitsSameObject {
			rt.Fail("cache missed within a schedule")
		}
	}

	p := NewPool()
	defer p.Close()
	for s := int64(1); s <= 3; s++ {
		r := p.Run(prog, nil, Options{Base: Base{Seed: s}})
		if r.Failure != nil {
			t.Fatalf("schedule %d failed: %+v", s, r.Failure)
		}
	}
	if len(perSchedule) != 3 {
		t.Fatalf("ran %d schedules, want 3", len(perSchedule))
	}
	if perSchedule[0] == perSchedule[1] || perSchedule[1] == perSchedule[2] {
		t.Fatal("ShimCache reused an object across schedules")
	}
}

// The non-blocking operations added for the frontend's select-with-default
// and zero-value surfaces: TrySend on buffered/unbuffered/full channels,
// RWMutex Try variants against holders, WaitGroup.Count.
func TestNonBlockingShimOps(t *testing.T) {
	res := Run(func(rt *Thread) {
		buf := NewChan[int](rt, "buf", 1)
		if !buf.TrySend(rt, 7) {
			rt.Fail("TrySend on empty buffered channel refused")
		}
		if buf.TrySend(rt, 8) {
			rt.Fail("TrySend on full channel accepted")
		}
		if v, ok := buf.TryRecv(rt); !ok || v != 7 {
			rt.Fail("TryRecv missed the buffered value")
		}
		unbuf := NewChan[int](rt, "unbuf", 0)
		if unbuf.TrySend(rt, 1) {
			rt.Fail("unbuffered TrySend succeeded with no receiver")
		}

		rw := rt.NewRWMutex("rw")
		if rw.ID() == 0 || rw.Name() != "rw" {
			rt.Fail("RWMutex identity accessors broken")
		}
		if !rw.TryLock(rt) {
			rt.Fail("TryLock on free lock refused")
		}
		h := rt.Go(func(w *Thread) {
			if rw.TryLock(w) || rw.TryRLock(w) {
				w.Fail("Try acquired a write-held lock")
			}
		})
		rt.Join(h)
		rw.Unlock(rt)
		if !rw.TryRLock(rt) {
			rt.Fail("TryRLock on free lock refused")
		}
		if rw.TryLock(rt) {
			rt.Fail("TryLock succeeded under an active reader")
		}
		if !rw.TryRLock(rt) {
			rt.Fail("second concurrent TryRLock refused")
		}
		rw.RUnlock(rt)
		rw.RUnlock(rt)

		wg := rt.NewWaitGroup("wg")
		wg.Add(rt, 2)
		if wg.Count(rt) != 2 {
			rt.Fail("WaitGroup.Count wrong after Add")
		}
		wg.Done(rt)
		wg.Done(rt)
		if wg.Count(rt) != 0 {
			rt.Fail("WaitGroup.Count wrong after Done")
		}
	}, nil, Options{})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %+v", res.Failure)
	}
}
