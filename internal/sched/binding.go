package sched

// Current-thread binding: a goroutine → *Thread registry that lets a
// zero-argument frontend (surw/surwsync) resolve "the virtual thread this
// code is running on" without plumbing a *Thread through every call.
//
// Every virtual thread's body runs on a dedicated coroutine goroutine (see
// Thread.workerSeq), so the goroutine ID is a faithful key for the duration
// of one schedule's body. The shim binds at body start and unbinds at body
// end (both inside the body wrapper, so kills and pool closure — which
// unwind the body via panic — still run the deferred unbind).
//
// Cost discipline: nothing in the scheduling engine touches the registry.
// Binding is opt-in per thread (only shimmed programs call BindGoroutine),
// and CurrentThread's fast path for a process with no bindings at all — the
// production fallback of a shimmed package — is a single atomic load.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// bindShards keeps goroutine→thread lookups uncontended when parallel
// sessions bind concurrently. 64 shards ≫ typical worker counts.
const bindShards = 64

type bindShard struct {
	mu sync.Mutex
	m  map[int64]*Thread
}

var bindReg struct {
	// active counts live bindings; zero lets CurrentThread skip the
	// goroutine-ID parse entirely.
	active atomic.Int64
	shards [bindShards]bindShard
}

// goid returns the current goroutine's ID, parsed from the runtime.Stack
// header ("goroutine N [running]: ..."). This is the only portable way to
// name a goroutine; it works inside iter.Pull coroutine goroutines, which
// are real goroutines with ordinary IDs. Cost is one shallow stack header
// dump (~hundreds of ns) — paid only on binding-layer paths, never by the
// scheduling engine.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes) and read digits.
	var id int64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// BindGoroutine registers t as the virtual thread of the calling goroutine.
// It must be called on the goroutine that runs t's body (the frontend calls
// it first thing in the body wrapper) and paired with UnbindGoroutine when
// the body returns or unwinds.
func BindGoroutine(t *Thread) {
	id := goid()
	sh := &bindReg.shards[id&(bindShards-1)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[int64]*Thread, 4)
	}
	if _, dup := sh.m[id]; !dup {
		bindReg.active.Add(1)
	}
	sh.m[id] = t
	sh.mu.Unlock()
}

// UnbindGoroutine removes the calling goroutine's binding. Unbinding a
// goroutine that was never bound is a no-op.
func UnbindGoroutine() {
	id := goid()
	sh := &bindReg.shards[id&(bindShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[id]; ok {
		delete(sh.m, id)
		bindReg.active.Add(-1)
	}
	sh.mu.Unlock()
}

// CurrentThread resolves the virtual thread bound to the calling goroutine.
// ok is false when the goroutine is not running under a controlled session,
// which is the signal for a shim primitive to delegate to the real
// implementation. When no binding exists anywhere in the process — shimmed
// code running in production — the cost is one atomic load.
func CurrentThread() (*Thread, bool) {
	if bindReg.active.Load() == 0 {
		return nil, false
	}
	id := goid()
	sh := &bindReg.shards[id&(bindShards-1)]
	sh.mu.Lock()
	t := sh.m[id]
	sh.mu.Unlock()
	return t, t != nil
}

// Bindings returns the number of live goroutine bindings. It exists for
// leak checks: after a session (or a closed pool) no binding may survive.
func Bindings() int { return int(bindReg.active.Load()) }

// ShimCache scopes a lazily created scheduler object to one schedule of
// one Execution. A zero-argument frontend primitive (surwsync.Mutex and
// friends) owns one ShimCache: the first operation of a schedule creates
// the backing scheduler object and caches it; later operations in the same
// schedule hit the cache; the next schedule (the Execution's reset bumps
// its generation) misses and rebuilds.
//
// The map is keyed by *Execution, not by (execution, generation): each
// execution has exactly one live generation at a time, so a stale entry is
// overwritten in place and the cache never grows beyond the number of
// executions that ever touched the primitive (bounded by the worker count
// of a parallel runner). Entries are only read through the owning
// execution's current thread, whose goroutine never runs concurrently with
// that execution's reset — the generation read is race-free. The cache's
// own mutex only arbitrates between threads of *different* executions
// (parallel sessions sharing a package-level primitive).
//
// The zero ShimCache is ready to use.
type ShimCache struct {
	mu sync.Mutex
	m  map[*Execution]shimEntry
}

type shimEntry struct {
	gen uint64
	obj any
}

// Resolve returns the object cached for t's current schedule, calling
// build to create it on the first operation of the schedule. build must
// not block or emit events (object creation is not an event, so the
// standard constructors qualify); it runs under the cache's mutex.
func (c *ShimCache) Resolve(t *Thread, build func(*Thread) any) any {
	ex, gen := t.ex, t.ex.gen
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[ex]; ok && e.gen == gen {
		return e.obj
	}
	if c.m == nil {
		c.m = make(map[*Execution]shimEntry, 1)
	}
	obj := build(t)
	c.m[ex] = shimEntry{gen: gen, obj: obj}
	return obj
}
