package sched

import "fmt"

// WaitGroup mirrors sync.WaitGroup for programs under test: Add/Done are
// events on the counter and Wait blocks (via a condition variable) until
// it reaches zero.
type WaitGroup struct {
	mu    *Mutex
	zero  *Cond
	count *Var
}

// NewWaitGroup creates a wait group.
func (t *Thread) NewWaitGroup(name string) *WaitGroup {
	mu := t.NewMutex(name + ".mu")
	return &WaitGroup{
		mu:    mu,
		zero:  t.NewCond(name+".zero", mu),
		count: t.NewVar(name+".count", 0),
	}
}

// Add adds delta to the counter. A negative counter is a program error.
func (wg *WaitGroup) Add(t *Thread, delta int) {
	wg.mu.Lock(t)
	n := wg.count.Add(t, int64(delta))
	if n < 0 {
		panic(fmt.Sprintf("sched: negative WaitGroup counter %d", n))
	}
	if n == 0 {
		wg.zero.Broadcast(t)
	}
	wg.mu.Unlock(t)
}

// Done decrements the counter.
func (wg *WaitGroup) Done(t *Thread) { wg.Add(t, -1) }

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait(t *Thread) {
	wg.mu.Lock(t)
	for wg.count.Load(t) != 0 {
		wg.zero.Wait(t)
	}
	wg.mu.Unlock(t)
}

// Count returns the current counter without an event.
func (wg *WaitGroup) Count(t *Thread) int { return int(wg.count.Peek()) }

// Once mirrors sync.Once: Do runs f exactly once across all threads;
// concurrent callers block (on the internal mutex) until the first
// completes — each step a scheduled event, so init races stay explorable.
type Once struct {
	mu   *Mutex
	done *Var
}

// NewOnce creates a Once.
func (t *Thread) NewOnce(name string) *Once {
	return &Once{
		mu:   t.NewMutex(name + ".mu"),
		done: t.NewVar(name+".done", 0),
	}
}

// Do runs f if no Do has completed before; otherwise it returns after the
// synchronization events without calling f.
func (o *Once) Do(t *Thread, f func()) {
	if o.done.Load(t) == 1 {
		return // fast path, like sync.Once's atomic check
	}
	o.mu.Lock(t)
	if o.done.Load(t) == 0 {
		f()
		o.done.Store(t, 1)
	}
	o.mu.Unlock(t)
}

// Did reports whether Do has completed, without an event.
func (o *Once) Did() bool { return o.done.Peek() == 1 }
