package sched

// Pool amortizes the substrate's per-schedule allocations across the many
// schedules of one session. A one-shot Run builds a fresh Execution every
// time: thread structs and their gate channels, the path and object-name
// maps, the object table and the enabled-set buffer. A Pool keeps one
// Execution and recycles all of that — under a fixed program the second and
// later schedules allocate almost nothing on the spawn/create path, because
// thread paths and object names are interned from the first schedule.
//
// Determinism: Pool.Run(prog, alg, opts) returns a Result bit-identical to
// sched.Run(prog, alg, opts). Resetting re-seeds the persistent random
// streams (yielding exactly the stream a fresh source would produce) and
// clears every piece of per-schedule state; the regression tests in
// pool_test.go hold the two paths equal event-for-event.
//
// A Pool is single-goroutine: it must not be shared between concurrently
// running sessions. The parallel runner gives each session its own Pool.
type Pool struct {
	ex Execution
}

// NewPool returns an empty pool. The zero value is also ready to use.
func NewPool() *Pool { return &Pool{} }

// Run executes one schedule like the package-level Run, reusing the pool's
// buffers. The returned Result (including any recorded trace) is owned by
// the caller and is never overwritten by later runs.
func (p *Pool) Run(prog func(*Thread), alg Algorithm, opts Options) *Result {
	p.ex.persistent = true
	return p.ex.run(prog, alg, opts)
}

// Reset drops the pooled schedule state while keeping allocated capacity,
// leaving the pool as if freshly constructed but warm. It is not required
// between runs — Run resets implicitly — but lets a long-lived pool be
// repointed at a different program without carrying stale interned names.
func (p *Pool) Reset() {
	p.closeWorkers()
	p.ex.names = nil
	p.ex.byPath = nil
	p.ex.spawnMemo = nil
	p.ex.objSeen = nil
	p.ex.objs = nil
	p.ex.trace = nil
	p.ex.state = nil
}

// Close releases the pool's parked worker goroutines. A pool whose last
// Run has returned may simply be dropped if leaking its workers until
// process exit is acceptable; long-lived processes cycling through many
// pools (the parallel runner) should Close each one. Run may be called
// again after Close — fresh workers are started on demand.
func (p *Pool) Close() { p.Reset() }

// closeWorkers unwinds the parked worker coroutines of a persistent
// execution (stop is a no-op on coroutines that already exited) and drops
// the structs.
func (p *Pool) closeWorkers() {
	for _, t := range p.ex.threads {
		t.coStop()
	}
	for _, t := range p.ex.freeThreads {
		t.coStop()
	}
	p.ex.threads = nil
	p.ex.freeThreads = nil
}
