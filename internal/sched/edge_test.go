package sched

import (
	"strings"
	"testing"
)

func TestUnlockNotHeldIsPanicFailure(t *testing.T) {
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		h := th.Go(func(w *Thread) { m.Lock(w) })
		th.Join(h)
		m.Unlock(th) // held by the exited child, not us
	}, pickLeft{}, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %+v, want panic", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "unlock") {
		t.Fatalf("message = %q", res.Failure.Msg)
	}
}

func TestWaitWithoutMutexIsPanicFailure(t *testing.T) {
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		c.Wait(th) // mutex not held
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %+v, want panic", res.Failure)
	}
}

func TestAbortWithSleepingThreads(t *testing.T) {
	// A failing assert must cleanly kill a thread asleep in a cond wait.
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		h := th.Go(func(w *Thread) {
			m.Lock(w)
			c.Wait(w) // sleeps forever
			m.Unlock(w)
		})
		th.Yield()
		th.Yield()
		th.Fail("abort-now")
		th.Join(h)
	}, pickLeft{}, Options{})
	if !res.Buggy() || res.BugID() != "abort-now" {
		t.Fatalf("failure = %+v", res.Failure)
	}
}

func TestSleepingForeverIsDeadlock(t *testing.T) {
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		m.Lock(th)
		c.Wait(th) // nobody will ever signal
		m.Unlock(th)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("failure = %+v, want deadlock", res.Failure)
	}
	if !strings.Contains(res.Failure.Msg, "wait") {
		t.Fatalf("deadlock message should name the waiting thread: %q", res.Failure.Msg)
	}
}

func TestSignalWithNoWaitersIsNoop(t *testing.T) {
	res := Run(func(th *Thread) {
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		m.Lock(th)
		c.Signal(th)
		c.Broadcast(th)
		m.Unlock(th)
	}, nil, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestGrandchildren(t *testing.T) {
	var paths []string
	res := Run(func(th *Thread) {
		h := th.Go(func(c *Thread) {
			g := c.Go(func(g *Thread) {
				paths = append(paths, g.Path())
				g.Yield()
			})
			c.Join(g)
		})
		th.Join(h)
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
	if len(paths) != 1 || paths[0] != "0.0.0" {
		t.Fatalf("grandchild path = %v", paths)
	}
}

func TestSpawnCascadeDuringPriming(t *testing.T) {
	// A child that spawns a grandchild before its first event exercises
	// the index-based priming loop.
	order := []int{}
	res := Run(func(th *Thread) {
		h := th.Go(func(c *Thread) {
			g := c.Go(func(g *Thread) { // spawned pre-first-event
				order = append(order, 2)
				g.Yield()
			})
			order = append(order, 1)
			c.Yield()
			c.Join(g)
		})
		th.Join(h)
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	res := Run(func(th *Thread) {
		s := th.NewSemaphore("s", 0)
		h := th.Go(func(w *Thread) {
			s.P(w) // blocked until V
		})
		th.Yield()
		s.V(th)
		th.Join(h)
		if s.Count() != 0 {
			th.Fail("count-wrong")
		}
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestSemaphoreDeadlockAtZero(t *testing.T) {
	res := Run(func(th *Thread) {
		s := th.NewSemaphore("s", 0)
		s.P(th)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("failure = %+v", res.Failure)
	}
}

func TestVarSwapAndHeldBy(t *testing.T) {
	Run(func(th *Thread) {
		v := th.NewVar("v", 7)
		if old := v.Swap(th, 9); old != 7 || v.Peek() != 9 {
			t.Errorf("swap: old=%d now=%d", old, v.Peek())
		}
		m := th.NewMutex("m")
		if m.HeldBy() != -1 {
			t.Error("fresh mutex held")
		}
		m.Lock(th)
		if m.HeldBy() != th.ID() {
			t.Error("owner wrong")
		}
		m.Unlock(th)
	}, nil, Options{})
}

func TestHandleTID(t *testing.T) {
	Run(func(th *Thread) {
		h := th.Go(func(w *Thread) { w.Yield() })
		if h.TID() != 1 {
			t.Errorf("handle tid = %d", h.TID())
		}
		th.Join(h)
	}, pickLeft{}, Options{})
}

func TestCASSemantics(t *testing.T) {
	Run(func(th *Thread) {
		v := th.NewVar("v", 1)
		if !v.CAS(th, 1, 2) || v.Peek() != 2 {
			t.Error("CAS success path wrong")
		}
		if v.CAS(th, 1, 3) || v.Peek() != 2 {
			t.Error("CAS failure path wrong")
		}
	}, nil, Options{})
}

func TestManyThreads(t *testing.T) {
	// 200 threads exercise the scheduler's scaling paths.
	res := Run(func(th *Thread) {
		c := th.NewVar("c", 0)
		hs := make([]*Handle, 200)
		for i := range hs {
			hs[i] = th.Go(func(w *Thread) { c.Add(w, 1) })
		}
		th.JoinAll(hs...)
		th.Assert(c.Peek() == 200, "count")
	}, &pickRandom{}, Options{Base: Base{Seed: 3}})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
	if res.Threads != 201 {
		t.Fatalf("threads = %d", res.Threads)
	}
}

func TestAssertfFormatsMessage(t *testing.T) {
	res := Run(func(th *Thread) {
		th.Assertf(false, "fmt-bug", "value was %d", 42)
	}, nil, Options{})
	if res.BugID() != "fmt-bug" || !strings.Contains(res.Failure.Msg, "value was 42") {
		t.Fatalf("failure = %+v", res.Failure)
	}
}

func TestJoinAlreadyFinished(t *testing.T) {
	res := Run(func(th *Thread) {
		h := th.Go(func(w *Thread) { w.Yield() })
		th.Yield()
		th.Yield()
		th.Yield()
		th.Join(h) // child likely finished already under leftmost
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestEventStringFormats(t *testing.T) {
	with := Event{TID: 2, Seq: 3, Kind: OpRead, Obj: 4}
	without := Event{TID: 2, Seq: 3, Kind: OpYield}
	if !strings.Contains(with.String(), "read(o4)") {
		t.Fatalf("with obj: %q", with.String())
	}
	if strings.Contains(without.String(), "o0") {
		t.Fatalf("without obj: %q", without.String())
	}
}
