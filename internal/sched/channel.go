package sched

// Chan is a Go-style channel for programs under test, built from the
// substrate's primitives so that every send and receive decomposes into
// scheduled events (lock, state access, wait/signal) the algorithms can
// interleave. Semantics follow Go's: a buffered channel blocks sends when
// full and receives when empty; an unbuffered channel rendezvouses (the
// send completes only after a receiver takes the value); receiving from a
// closed drained channel yields (zero, false); sending on a closed channel
// or closing twice is a program error that fails the schedule.
type Chan[T any] struct {
	capacity int
	mu       *Mutex
	notFull  *Cond
	notEmpty *Cond
	taken    *Cond // unbuffered rendezvous: slot consumed
	state    *Ref[chanState[T]]
}

type chanState[T any] struct {
	buf    []T
	closed bool
	// unbuffered handoff slot:
	slotFull bool
	slot     T
	consumed bool
}

// NewChan creates a channel with the given capacity (0 = unbuffered).
func NewChan[T any](t *Thread, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	mu := t.NewMutex(name + ".mu")
	return &Chan[T]{
		capacity: capacity,
		mu:       mu,
		notFull:  t.NewCond(name+".notFull", mu),
		notEmpty: t.NewCond(name+".notEmpty", mu),
		taken:    t.NewCond(name+".taken", mu),
		state:    NewRef[chanState[T]](t, name+".state", chanState[T]{}),
	}
}

// Cap returns the channel capacity.
func (c *Chan[T]) Cap() int { return c.capacity }

// Len returns the current number of buffered elements without an event.
func (c *Chan[T]) Len() int { return len(c.state.Peek().buf) }

// Send sends v, blocking by Go's rules.
func (c *Chan[T]) Send(t *Thread, v T) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	if c.capacity == 0 {
		c.sendUnbuffered(t, v)
		return
	}
	for {
		s := c.state.Get(t)
		if s.closed {
			panic("send on closed channel")
		}
		if len(s.buf) < c.capacity {
			break
		}
		c.notFull.Wait(t)
	}
	c.state.Update(t, func(s chanState[T]) chanState[T] {
		s.buf = append(s.buf, v)
		return s
	})
	c.notEmpty.Signal(t)
}

func (c *Chan[T]) sendUnbuffered(t *Thread, v T) {
	// Wait for the handoff slot.
	for {
		s := c.state.Get(t)
		if s.closed {
			panic("send on closed channel")
		}
		if !s.slotFull {
			break
		}
		c.notFull.Wait(t)
	}
	c.state.Update(t, func(s chanState[T]) chanState[T] {
		s.slot = v
		s.slotFull = true
		s.consumed = false
		return s
	})
	c.notEmpty.Signal(t)
	// Rendezvous: the send completes only once a receiver consumed v.
	for {
		s := c.state.Get(t)
		if s.consumed {
			break
		}
		if s.closed {
			panic("send on closed channel")
		}
		c.taken.Wait(t)
	}
	c.state.Update(t, func(s chanState[T]) chanState[T] {
		s.slotFull = false
		s.consumed = false
		return s
	})
	c.notFull.Signal(t)
}

// TrySend sends v without blocking and reports whether it was accepted: a
// buffered channel takes it while the buffer has room, an unbuffered one
// only when a receiver is already committed to the rendezvous (never, under
// this fully serialized model — as in a Go select-with-default, where an
// unbuffered TrySend succeeds only against a concurrently parked receiver,
// which here would already have consumed the slot). Sending on a closed
// channel is a program error, as for Send.
func (c *Chan[T]) TrySend(t *Thread, v T) bool {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	s := c.state.Get(t)
	if s.closed {
		panic("send on closed channel")
	}
	if c.capacity == 0 || len(s.buf) >= c.capacity {
		return false
	}
	c.state.Update(t, func(s chanState[T]) chanState[T] {
		s.buf = append(s.buf, v)
		return s
	})
	c.notEmpty.Signal(t)
	return true
}

// Recv receives a value; ok is false iff the channel is closed and
// drained, mirroring Go's `v, ok := <-ch`.
func (c *Chan[T]) Recv(t *Thread) (v T, ok bool) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	for {
		s := c.state.Get(t)
		if c.capacity == 0 && s.slotFull && !s.consumed {
			c.state.Update(t, func(s chanState[T]) chanState[T] {
				v = s.slot
				s.consumed = true
				return s
			})
			c.taken.Signal(t)
			return v, true
		}
		if len(s.buf) > 0 {
			c.state.Update(t, func(s chanState[T]) chanState[T] {
				v = s.buf[0]
				s.buf = s.buf[1:]
				return s
			})
			c.notFull.Signal(t)
			return v, true
		}
		if s.closed {
			return v, false
		}
		c.notEmpty.Wait(t)
	}
}

// TryRecv receives without blocking; ok is false when nothing was
// available (the channel being open-and-empty or closed-and-drained are
// not distinguished, as in a select-with-default).
func (c *Chan[T]) TryRecv(t *Thread) (v T, ok bool) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	s := c.state.Get(t)
	if c.capacity == 0 && s.slotFull && !s.consumed {
		c.state.Update(t, func(s chanState[T]) chanState[T] {
			v = s.slot
			s.consumed = true
			return s
		})
		c.taken.Signal(t)
		return v, true
	}
	if len(s.buf) > 0 {
		c.state.Update(t, func(s chanState[T]) chanState[T] {
			v = s.buf[0]
			s.buf = s.buf[1:]
			return s
		})
		c.notFull.Signal(t)
		return v, true
	}
	return v, false
}

// Close closes the channel; closing twice is a program error.
func (c *Chan[T]) Close(t *Thread) {
	c.mu.Lock(t)
	defer c.mu.Unlock(t)
	s := c.state.Get(t)
	if s.closed {
		panic("close of closed channel")
	}
	c.state.Update(t, func(s chanState[T]) chanState[T] {
		s.closed = true
		return s
	})
	c.notEmpty.Broadcast(t)
	c.notFull.Broadcast(t)
	c.taken.Broadcast(t)
}
