package sched

import "testing"

func TestBufferedChannelFIFO(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		var got []int
		res := Run(func(th *Thread) {
			ch := NewChan[int](th, "ch", 2)
			prod := th.Go(func(w *Thread) {
				for i := 0; i < 6; i++ {
					ch.Send(w, i)
				}
				ch.Close(w)
			})
			cons := th.Go(func(w *Thread) {
				for {
					v, ok := ch.Recv(w)
					if !ok {
						return
					}
					got = append(got, v)
				}
			})
			th.JoinAll(prod, cons)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
		if len(got) != 6 {
			t.Fatalf("seed %d: received %d values", seed, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: got[%d] = %d (FIFO broken)", seed, i, v)
			}
		}
	}
}

func TestBufferedChannelBlocksWhenFull(t *testing.T) {
	// Capacity 1, two sends, no receiver: the second send must deadlock.
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 1)
		ch.Send(th, 1)
		ch.Send(th, 2)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("failure = %+v, want deadlock", res.Failure)
	}
}

func TestUnbufferedRendezvous(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		var order []string
		res := Run(func(th *Thread) {
			ch := NewChan[int](th, "ch", 0)
			sender := th.Go(func(w *Thread) {
				ch.Send(w, 42)
				order = append(order, "send-done")
			})
			recvr := th.Go(func(w *Thread) {
				v, ok := ch.Recv(w)
				if !ok || v != 42 {
					w.Fail("bad-recv")
				}
				order = append(order, "recv-done")
			})
			th.JoinAll(sender, recvr)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		// Rendezvous: the receive can never complete after... both are
		// post-handoff markers, but the send must not finish before the
		// value is consumed, so "send-done" can never be first while the
		// receiver is still blocked. Both orders of the markers are fine;
		// what matters is both ran.
		if len(order) != 2 {
			t.Fatalf("seed %d: order = %v", seed, order)
		}
	}
}

func TestUnbufferedSendBlocksWithoutReceiver(t *testing.T) {
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 0)
		ch.Send(th, 1)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailDeadlock {
		t.Fatalf("failure = %+v, want deadlock", res.Failure)
	}
}

func TestRecvFromClosedDrained(t *testing.T) {
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 3)
		ch.Send(th, 7)
		ch.Close(th)
		if v, ok := ch.Recv(th); !ok || v != 7 {
			th.Fail("drain-failed")
		}
		if _, ok := ch.Recv(th); ok {
			th.Fail("closed-chan-delivered")
		}
	}, nil, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestSendOnClosedPanics(t *testing.T) {
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 1)
		ch.Close(th)
		ch.Send(th, 1)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %+v, want panic", res.Failure)
	}
}

func TestDoubleClosePanics(t *testing.T) {
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 1)
		ch.Close(th)
		ch.Close(th)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %+v, want panic", res.Failure)
	}
}

func TestCloseWakesBlockedReceivers(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(func(th *Thread) {
			ch := NewChan[int](th, "ch", 0)
			r1 := th.Go(func(w *Thread) {
				if _, ok := ch.Recv(w); ok {
					w.Fail("phantom-value")
				}
			})
			r2 := th.Go(func(w *Thread) {
				if _, ok := ch.Recv(w); ok {
					w.Fail("phantom-value")
				}
			})
			th.Yield()
			ch.Close(th)
			th.JoinAll(r1, r2)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestTryRecv(t *testing.T) {
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 1)
		if _, ok := ch.TryRecv(th); ok {
			th.Fail("tryrecv-empty")
		}
		ch.Send(th, 5)
		if v, ok := ch.TryRecv(th); !ok || v != 5 {
			th.Fail("tryrecv-value")
		}
	}, nil, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestChannelPipeline(t *testing.T) {
	// A 3-stage pipeline over channels: generator -> squarer -> sink.
	for seed := int64(0); seed < 20; seed++ {
		var sum int64
		res := Run(func(th *Thread) {
			nums := NewChan[int64](th, "nums", 1)
			squares := NewChan[int64](th, "squares", 1)
			gen := th.Go(func(w *Thread) {
				for i := int64(1); i <= 4; i++ {
					nums.Send(w, i)
				}
				nums.Close(w)
			})
			sq := th.Go(func(w *Thread) {
				for {
					v, ok := nums.Recv(w)
					if !ok {
						squares.Close(w)
						return
					}
					squares.Send(w, v*v)
				}
			})
			sink := th.Go(func(w *Thread) {
				for {
					v, ok := squares.Recv(w)
					if !ok {
						return
					}
					sum += v
				}
			})
			th.JoinAll(gen, sq, sink)
		}, &pickRandom{}, Options{Base: Base{Seed: seed, MaxSteps: 50_000}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
		if sum != 1+4+9+16 {
			t.Fatalf("seed %d: sum = %d", seed, sum)
		}
	}
}

func TestChannelCapAndLen(t *testing.T) {
	Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 2)
		if ch.Cap() != 2 || ch.Len() != 0 {
			t.Error("fresh channel cap/len wrong")
		}
		ch.Send(th, 1)
		if ch.Len() != 1 {
			t.Errorf("len = %d", ch.Len())
		}
		neg := NewChan[int](th, "neg", -3)
		if neg.Cap() != 0 {
			t.Error("negative capacity not clamped")
		}
	}, nil, Options{})
}

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		res := Run(func(th *Thread) {
			rw := th.NewRWMutex("rw")
			readers := th.NewVar("activeReaders", 0)
			read := func(w *Thread) {
				for i := 0; i < 2; i++ {
					rw.RLock(w)
					readers.Add(w, 1)
					readers.Add(w, -1)
					rw.RUnlock(w)
				}
			}
			write := func(w *Thread) {
				rw.Lock(w)
				w.Assert(readers.Load(w) == 0, "writer-saw-reader")
				w.Assert(rw.Readers() == 0, "readers-during-write")
				rw.Unlock(w)
			}
			h1, h2, h3 := th.Go(read), th.Go(read), th.Go(write)
			th.JoinAll(h1, h2, h3)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestRWMutexConcurrentReadersObservable(t *testing.T) {
	// Some schedule must witness two readers inside simultaneously.
	saw := false
	for seed := int64(0); seed < 100 && !saw; seed++ {
		Run(func(th *Thread) {
			rw := th.NewRWMutex("rw")
			inside := th.NewVar("inside", 0)
			read := func(w *Thread) {
				rw.RLock(w)
				if inside.Add(w, 1) == 2 {
					saw = true
				}
				w.Yield()
				inside.Add(w, -1)
				rw.RUnlock(w)
			}
			h1, h2 := th.Go(read), th.Go(read)
			th.JoinAll(h1, h2)
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
	}
	if !saw {
		t.Fatal("no schedule had two concurrent readers")
	}
}

func TestRWMutexWriterBlocksUntilReadersDrain(t *testing.T) {
	res := Run(func(th *Thread) {
		rw := th.NewRWMutex("rw")
		rw.RLock(th)
		h := th.Go(func(w *Thread) {
			rw.Lock(w) // must wait for the root's read lock
			rw.Unlock(w)
		})
		th.Yield()
		rw.RUnlock(th)
		th.Join(h)
	}, pickLeft{}, Options{})
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestRWMutexRUnlockWithoutRLock(t *testing.T) {
	res := Run(func(th *Thread) {
		rw := th.NewRWMutex("rw")
		rw.RUnlock(th)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %+v, want panic", res.Failure)
	}
}

func TestRWConflictSemantics(t *testing.T) {
	w := Event{TID: 0, Kind: OpLock, Obj: 7}
	r1 := Event{TID: 1, Kind: OpRLock, Obj: 7}
	r2 := Event{TID: 2, Kind: OpRLock, Obj: 7}
	if !w.Conflicts(r1) || !r1.Conflicts(w) {
		t.Fatal("writer acquisition must race with reader acquisition")
	}
	if r1.Conflicts(r2) {
		t.Fatal("reader acquisitions must not race with each other")
	}
}

func TestWaitGroup(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		res := Run(func(th *Thread) {
			wg := th.NewWaitGroup("wg")
			done := th.NewVar("done", 0)
			wg.Add(th, 3)
			for i := 0; i < 3; i++ {
				th.Go(func(w *Thread) {
					done.Add(w, 1)
					wg.Done(w)
				})
			}
			wg.Wait(th)
			th.Assert(done.Peek() == 3, "waitgroup-early-return")
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	res := Run(func(th *Thread) {
		wg := th.NewWaitGroup("wg")
		wg.Done(th)
	}, nil, Options{})
	if !res.Buggy() || res.Failure.Kind != FailPanic {
		t.Fatalf("failure = %+v, want panic", res.Failure)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		res := Run(func(th *Thread) {
			once := th.NewOnce("init")
			count := th.NewVar("count", 0)
			body := func(w *Thread) {
				once.Do(w, func() { count.Add(w, 1) })
			}
			h1, h2, h3 := th.Go(body), th.Go(body), th.Go(body)
			th.JoinAll(h1, h2, h3)
			th.Assert(count.Peek() == 1, "once-ran-twice")
			if !once.Did() {
				th.Fail("once-not-done")
			}
		}, &pickRandom{}, Options{Base: Base{Seed: seed}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}
