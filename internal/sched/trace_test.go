package sched_test

import (
	"testing"

	"surw/internal/core"
	"surw/internal/sched"
)

// countingTracer counts hook firings and checks per-call invariants.
type countingTracer struct {
	t       *testing.T
	begins  int
	decides int
	ends    int
	alg     string
	steps   int // from EndSchedule
}

func (c *countingTracer) BeginSchedule(alg string) {
	c.begins++
	c.alg = alg
	c.decides = 0
}

func (c *countingTracer) Decide(d sched.Decision, st *sched.State) {
	if d.Step != c.decides {
		c.t.Errorf("decision %d reported step %d", c.decides, d.Step)
	}
	c.decides++
	if d.Enabled < 1 {
		c.t.Errorf("step %d: enabled %d < 1", d.Step, d.Enabled)
	}
	if d.Enabled != len(st.Enabled()) {
		c.t.Errorf("step %d: Decision.Enabled %d != len(st.Enabled()) %d",
			d.Step, d.Enabled, len(st.Enabled()))
	}
	found := false
	for _, tid := range st.Enabled() {
		if tid == d.Chosen {
			found = true
		}
	}
	if !found {
		c.t.Errorf("step %d: chosen T%d not in enabled set %v", d.Step, d.Chosen, st.Enabled())
	}
	if d.Event.TID != d.Chosen {
		c.t.Errorf("step %d: event TID %d != chosen %d", d.Step, d.Event.TID, d.Chosen)
	}
	if d.Consulted && d.Enabled == 1 {
		c.t.Errorf("step %d: singleton enabled set reported consulted", d.Step)
	}
}

func (c *countingTracer) EndSchedule(r *sched.Result) {
	c.ends++
	c.steps = r.Steps
}

// twoThreads is a small racy program with real scheduling choice.
func twoThreads(t *sched.Thread) {
	x := t.NewVar("x", 0)
	a := t.Go(func(w *sched.Thread) {
		for i := 0; i < 4; i++ {
			x.Add(w, 1)
		}
	})
	b := t.Go(func(w *sched.Thread) {
		for i := 0; i < 4; i++ {
			x.Add(w, 2)
		}
	})
	t.Join(a)
	t.Join(b)
}

func TestTracerSeesEveryDecision(t *testing.T) {
	tr := &countingTracer{t: t}
	alg := core.NewRandomWalk()
	r := sched.Run(twoThreads, alg, sched.Options{Base: sched.Base{Seed: 7}, Tracer: tr})
	if tr.begins != 1 || tr.ends != 1 {
		t.Fatalf("begins=%d ends=%d, want 1/1", tr.begins, tr.ends)
	}
	if tr.alg != alg.Name() {
		t.Fatalf("BeginSchedule saw alg %q, want %q", tr.alg, alg.Name())
	}
	if tr.decides != r.Steps {
		t.Fatalf("Decide fired %d times for %d steps", tr.decides, r.Steps)
	}
	if tr.steps != r.Steps {
		t.Fatalf("EndSchedule saw %d steps, result has %d", tr.steps, r.Steps)
	}
}

// TestTracerDoesNotPerturbSchedule is the core observability contract:
// attaching a tracer never changes which threads are scheduled.
func TestTracerDoesNotPerturbSchedule(t *testing.T) {
	for _, name := range []string{"SURW", "URW", "POS", "RW", "PCT-3"} {
		for seed := int64(0); seed < 20; seed++ {
			algA, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			plain := sched.Run(twoThreads, algA, sched.Options{Base: sched.Base{Seed: seed}})
			algB, _ := core.New(name)
			traced := sched.Run(twoThreads, algB, sched.Options{Base: sched.Base{Seed: seed}, Tracer: &countingTracer{t: t}})
			if plain.InterleavingHash != traced.InterleavingHash {
				t.Fatalf("%s seed %d: tracer changed the interleaving (%x vs %x)",
					name, seed, plain.InterleavingHash, traced.InterleavingHash)
			}
		}
	}
}

// annotTracer captures the algorithm annotation at each decision.
type annotTracer struct {
	annots []string
	buf    []byte
}

func (a *annotTracer) BeginSchedule(string) {}
func (a *annotTracer) Decide(_ sched.Decision, st *sched.State) {
	a.buf = st.AppendAlgAnnotation(a.buf[:0])
	a.annots = append(a.annots, string(a.buf))
}
func (a *annotTracer) EndSchedule(*sched.Result) {}

func TestAlgorithmAnnotations(t *testing.T) {
	for _, name := range []string{"URW", "SURW"} {
		alg, err := core.New(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := &annotTracer{}
		sched.Run(twoThreads, alg, sched.Options{Base: sched.Base{Seed: 3}, Tracer: tr})
		if len(tr.annots) == 0 {
			t.Fatalf("%s: no decisions traced", name)
		}
		nonEmpty := 0
		for _, a := range tr.annots {
			if a != "" {
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			t.Errorf("%s exposes no annotations; want weight summaries", name)
		}
	}
	// RW is deliberately annotation-free.
	tr := &annotTracer{}
	sched.Run(twoThreads, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 3}, Tracer: tr})
	for _, a := range tr.annots {
		if a != "" {
			t.Fatalf("RW produced annotation %q; want none", a)
		}
	}
}

// TestTracerAcrossPooledRuns checks the hook fires per schedule with pooled
// executions too (the runner's configuration), and that omitting the tracer
// on a later pooled run leaves it silent.
func TestTracerAcrossPooledRuns(t *testing.T) {
	pool := sched.NewPool()
	tr := &countingTracer{t: t}
	alg := core.NewRandomWalk()
	for i := 0; i < 3; i++ {
		pool.Run(twoThreads, alg, sched.Options{Base: sched.Base{Seed: int64(i)}, Tracer: tr})
	}
	if tr.begins != 3 || tr.ends != 3 {
		t.Fatalf("begins=%d ends=%d after 3 pooled runs", tr.begins, tr.ends)
	}
	pool.Run(twoThreads, alg, sched.Options{Base: sched.Base{Seed: 99}})
	if tr.begins != 3 {
		t.Fatalf("tracer fired on a run without Options.Tracer")
	}
}
