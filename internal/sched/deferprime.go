package sched

// Deferred child priming.
//
// Priming a freshly spawned thread costs one gate handoff: the fast
// engine's primeChain wakes the goroutine, its prologue runs to the first
// scheduling point, and the baton comes back. Under a pooled execution the
// program spawns the same threads every schedule and each prologue is
// deterministic — it runs strictly before the thread's first event, so it
// cannot read shared state and its behaviour depends only on its closure
// (fixed per program) and ProgRand. That makes the first published event
// predictable: capture it once during a real priming, and later schedules
// can publish it straight from the spawn memo, deferring the goroutine
// wake-up to the thread's first actual grant. For a program with n spawns
// this removes n handoffs per schedule.
//
// Soundness hinges on the prologue having no priming-time side effects.
// Effects that would be reordered by deferral poison the capture (see
// Thread.primePoison): creating an object (object IDs are creation-order),
// spawning (thread IDs likewise), drawing ProgRand (the stream is shared
// across threads) and SetBehavior (last call wins). Poison detection
// during the single capture run suffices because prologues are
// deterministic. Everything else is re-validated per schedule: the memo
// entry must match the thread's path, the referenced object must exist
// with the same name hash, and the event kind must not need live state at
// classify time (OpJoin reads joinTarget, which only the prologue sets).
// Finally the prologue, when it eventually runs, re-derives its first
// event and panics on any mismatch with the cached one — so a broken
// determinism contract surfaces loudly instead of corrupting a schedule.

import "unsafe"

// recordPrime caches t's first published event in its spawn-memo entry,
// making later schedules of a congruent spawn tree eligible for deferred
// priming. Called from syncPoint when t publishes under a real priming
// grant (ex.primingT == t).
func (ex *Execution) recordPrime(t *Thread) {
	ex.primingT = nil
	if t.primePoison {
		t.primePoison = false
		return
	}
	if t.memoP < 0 {
		return
	}
	if e := &ex.spawnMemo[t.memoP][t.memoI]; e.path == t.path && t.seq == 1 {
		e.firstEv = t.next
		e.evOK = true
	}
}

// deferrable reports whether a cached first event can be published without
// running the prologue right now.
func (ex *Execution) deferrable(e *spawnPath) bool {
	switch e.firstEv.Kind {
	case OpJoin, OpWait, OpWakeLock:
		// Join needs the prologue-set joinTarget to classify; wait and
		// wake-lock cannot be first events, but exclude them anyway.
		return false
	}
	if e.firstEv.Obj == 0 {
		return true
	}
	// The object must already exist (prologues can only reference objects
	// created before their priming slot) and carry the captured name hash,
	// or the schedule's creation order diverged from the capture run's.
	i := int(e.firstEv.Obj) - 1
	return i < len(ex.objs) && ex.objs[i].hash == e.firstEv.ObjHash
}

// checkProg invalidates every cached first event when the pool is pointed
// at a different program: thread paths may coincide across programs while
// the bodies behind them differ. Identity is the func value's closure
// pointer — two references to the same closure (or the same top-level
// function) compare equal, anything else conservatively wipes the cache.
// The previous program is retained in ex.lastProg so its closure cannot be
// collected and a new one allocated at the same address.
func (ex *Execution) checkProg(prog func(*Thread)) {
	if progKey(prog) == progKey(ex.lastProg) {
		return
	}
	ex.lastProg = prog
	for _, row := range ex.spawnMemo {
		for i := range row {
			row[i].evOK = false
		}
	}
}

// progKey returns the closure-object pointer behind a func value.
func progKey(prog func(*Thread)) uintptr {
	return uintptr(*(*unsafe.Pointer)(unsafe.Pointer(&prog)))
}
