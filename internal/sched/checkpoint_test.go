package sched

import (
	"math/rand"
	"testing"
)

// rrIndex is a deterministic IndexChooser that cycles through enabled
// positions, giving checkpoint tests real (non-leftmost) free choices
// without pulling in the algorithm packages.
type rrIndex struct{ n int }

func (*rrIndex) Name() string                   { return "rr" }
func (*rrIndex) Begin(*ProgramInfo, *rand.Rand) {}

func (a *rrIndex) Next(st *State) ThreadID {
	e := st.Enabled()
	return e[a.NextIndex(len(e))]
}

func (a *rrIndex) NextIndex(n int) int {
	a.n++
	return a.n % n
}

func (*rrIndex) Observe(Event, *State) {}

// checkpointEqual fails the test unless a and b are observably identical,
// including their recorded traces.
func checkpointEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.InterleavingHash != b.InterleavingHash {
		t.Fatalf("%s: fingerprint %#x vs %#x", label, a.InterleavingHash, b.InterleavingHash)
	}
	if a.Steps != b.Steps || a.Behavior != b.Behavior || a.BugID() != b.BugID() || a.Truncated != b.Truncated {
		t.Fatalf("%s: results differ: %+v vs %+v", label, a, b)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace[%d] %+v vs %+v", label, i, a.Trace[i], b.Trace[i])
		}
	}
}

// midCSProg seals its forced prefix mid-critical-section: the root is
// still holding the mutex when the spawned child's first event introduces
// the first free choice, so RunFrom must restore held-lock state (owner,
// heldMutex, the child's later gating) from inside the prefix.
func midCSProg(t *Thread) {
	m := t.NewMutex("m")
	v := t.NewVar("v", 0)
	m.Lock(t)
	for i := 0; i < 8; i++ {
		v.Add(t, 1)
	}
	h := t.Go(func(w *Thread) {
		v.Add(w, 100)
		m.Lock(w)
		v.Add(w, 1000)
		m.Unlock(w)
	})
	v.Add(t, 1)
	v.Add(t, 1)
	m.Unlock(t)
	t.Join(h)
	t.SetBehavior("v=" + itoa(v.Load(t)))
}

// parkedSenderProg checkpoints a schedule whose free phase parks channel
// senders: the root's prologue is the forced prefix (it runs alone), the
// seal lands on the fork, and the replayed suffix contains schedules where
// the unbuffered sender sleeps in the channel's rendezvous wait until the
// root receives. Replay must rebuild the parked sender's sleeping state
// (cond waiter registration, mutex gating) event-for-event.
func parkedSenderProg(t *Thread) {
	c := NewChan[int](t, "c", 0)
	v := t.NewVar("v", 0)
	for i := 0; i < 6; i++ {
		v.Add(t, 1)
	}
	s := t.Go(func(w *Thread) {
		c.Send(w, 41)
		v.Add(w, 1)
	})
	u := t.Go(func(w *Thread) {
		v.Add(w, 7)
	})
	x, _ := c.Recv(t)
	v.Add(t, int64(x))
	t.JoinAll(s, u)
	t.SetBehavior("v=" + itoa(v.Load(t)))
}

// sleepingSendersProg drives two senders against a capacity-1 channel, so
// replayed schedules include states with both senders asleep in
// notFull.Wait at once while the root drains; the signal wakes exactly one
// and the other must stay parked, identically under checkpointed replay.
func sleepingSendersProg(t *Thread) {
	c := NewChan[int](t, "c", 1)
	v := t.NewVar("v", 0)
	for i := 0; i < 5; i++ {
		v.Add(t, 1)
	}
	s1 := t.Go(func(w *Thread) { c.Send(w, 1); v.Add(w, 10) })
	s2 := t.Go(func(w *Thread) { c.Send(w, 2); v.Add(w, 20) })
	s3 := t.Go(func(w *Thread) { c.Send(w, 3); v.Add(w, 30) })
	sum := int64(0)
	for i := 0; i < 3; i++ {
		x, _ := c.Recv(t)
		sum += int64(x)
	}
	v.Add(t, sum)
	t.JoinAll(s1, s2, s3)
	t.SetBehavior("v=" + itoa(v.Load(t)))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// checkpointedVsPlain captures a prefix from prog and holds every RunFrom
// schedule bit-identical (trace included) to a plain one-shot Run of the
// same seed. Returns the checkpoint for further poking.
func checkpointedVsPlain(t *testing.T, prog func(*Thread), seeds int) *Checkpoint {
	t.Helper()
	pool := NewPool()
	defer pool.Close()
	opts := func(seed int64) Options {
		return Options{Base: Base{Seed: seed}, RecordTrace: true}
	}
	capRes, cp := pool.RunPrefix(prog, &rrIndex{}, opts(1))
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	checkpointEqual(t, "capture run", capRes, Run(prog, &rrIndex{}, opts(1)))
	if cp.Decisions() == 0 {
		t.Fatal("expected a non-empty forced prefix")
	}
	for seed := int64(2); seed < int64(2+seeds); seed++ {
		fast := pool.RunFrom(cp, prog, &rrIndex{}, opts(seed))
		plain := Run(prog, &rrIndex{}, opts(seed))
		checkpointEqual(t, "replayed run", fast, plain)
	}
	return cp
}

func TestCheckpointMidCriticalSection(t *testing.T) {
	checkpointedVsPlain(t, midCSProg, 12)
}

func TestCheckpointParkedChannelSender(t *testing.T) {
	checkpointedVsPlain(t, parkedSenderProg, 12)
}

func TestCheckpointSleepingSenders(t *testing.T) {
	checkpointedVsPlain(t, sleepingSendersProg, 12)
}

// TestCheckpointSurvivesPoolRecycling holds that a sealed checkpoint is
// immutable under pool reuse: running other schedules, a different
// program, and a Reset on the pool that captured it must neither mutate
// the checkpoint (no buffer aliasing with the pool's recycled trace and
// decision storage) nor change what RunFrom produces from it.
func TestCheckpointSurvivesPoolRecycling(t *testing.T) {
	pool := NewPool()
	defer pool.Close()
	opts := Options{Base: Base{Seed: 1}, RecordTrace: true}
	_, cp := pool.RunPrefix(midCSProg, &rrIndex{}, opts)
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	forced := append([]ThreadID(nil), cp.forced...)
	trace := append([]Event(nil), cp.trace...)
	hash, steps := cp.ilvHash, cp.steps

	want := pool.RunFrom(cp, midCSProg, &rrIndex{}, Options{Base: Base{Seed: 9}, RecordTrace: true})

	// Churn the pool: more schedules of the same program, then a different
	// program (which repoints the pool and rebuilds its interned state).
	for seed := int64(20); seed < 30; seed++ {
		pool.RunFrom(cp, midCSProg, &rrIndex{}, Options{Base: Base{Seed: seed}, RecordTrace: true})
	}
	pool.Run(parkedSenderProg, &rrIndex{}, Options{Base: Base{Seed: 3}, RecordTrace: true})
	pool.Reset()
	pool.Run(parkedSenderProg, &rrIndex{}, Options{Base: Base{Seed: 4}, RecordTrace: true})

	// The checkpoint must be bitwise intact...
	if cp.ilvHash != hash || cp.steps != steps || len(cp.forced) != len(forced) || len(cp.trace) != len(trace) {
		t.Fatal("pool recycling mutated the checkpoint")
	}
	for i := range forced {
		if cp.forced[i] != forced[i] {
			t.Fatalf("pool recycling mutated cp.forced[%d]", i)
		}
	}
	for i := range trace {
		if cp.trace[i] != trace[i] {
			t.Fatalf("pool recycling mutated cp.trace[%d]", i)
		}
	}
	// ...and still replay to the same result on the recycled pool.
	got := pool.RunFrom(cp, midCSProg, &rrIndex{}, Options{Base: Base{Seed: 9}, RecordTrace: true})
	checkpointEqual(t, "replay after recycling", got, want)
	checkpointEqual(t, "replay after recycling vs plain", got, Run(midCSProg, &rrIndex{}, Options{Base: Base{Seed: 9}, RecordTrace: true}))
}

// TestCheckpointInvalidUses pins the misuse panics: replaying an unsealed
// checkpoint and replaying with options incompatible with the capture.
func TestCheckpointInvalidUses(t *testing.T) {
	pool := NewPool()
	defer pool.Close()
	_, cp := pool.RunPrefix(midCSProg, &rrIndex{}, Options{Base: Base{Seed: 1}})
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	mustPanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", label)
			}
		}()
		f()
	}
	mustPanic("incompatible options", func() {
		pool.RunFrom(cp, midCSProg, &rrIndex{}, Options{Base: Base{Seed: 2}, RecordTrace: true})
	})
	mustPanic("unsealed checkpoint", func() {
		pool.RunFrom(&Checkpoint{open: true}, midCSProg, &rrIndex{}, Options{Base: Base{Seed: 2}})
	})
}

// TestCheckpointSlowPathDegrades holds the documented degradations: a
// capture under DisableBatching yields no checkpoint, and RunFrom with a
// nil checkpoint or a tracer still runs correctly in full.
func TestCheckpointSlowPathDegrades(t *testing.T) {
	pool := NewPool()
	defer pool.Close()
	_, cp := pool.RunPrefix(midCSProg, &rrIndex{}, Options{Base: Base{Seed: 1}, DisableBatching: true})
	if cp != nil {
		t.Fatal("slow path must not capture a checkpoint")
	}
	res := pool.RunFrom(nil, midCSProg, &rrIndex{}, Options{Base: Base{Seed: 5}, RecordTrace: true})
	checkpointEqual(t, "nil checkpoint", res, Run(midCSProg, &rrIndex{}, Options{Base: Base{Seed: 5}, RecordTrace: true}))
}
