package sched

import (
	"runtime"
	"testing"
)

// TestNoGoroutineLeaks runs many schedules (including aborted ones with
// sleeping and blocked threads) and checks the goroutine count returns to
// baseline: killRemaining must reap every virtual thread.
func TestNoGoroutineLeaks(t *testing.T) {
	prog := func(th *Thread) {
		m := th.NewMutex("m")
		c := th.NewCond("c", m)
		sleeper := th.Go(func(w *Thread) {
			m.Lock(w)
			c.Wait(w) // never signaled: killed at abort
			m.Unlock(w)
		})
		blocked := th.Go(func(w *Thread) {
			m2 := th // blocked on join below
			_ = m2
			w.Yield()
			w.Yield()
		})
		th.Yield()
		th.Fail("abort") // leaves sleeper asleep and others parked
		th.JoinAll(sleeper, blocked)
	}
	baseline := runtime.NumGoroutine()
	for seed := int64(0); seed < 500; seed++ {
		Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}})
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	if after > baseline+3 {
		t.Fatalf("goroutines leaked: baseline %d, after %d", baseline, after)
	}
}
