package sched

import (
	"fmt"
	"math/rand"
)

type killedSignal struct{}

// stopSignal unwinds a coroutine parked mid-schedule when its pool is
// closed (Pull's stop makes the pending yield return false). It is
// re-raised past runBody's recover and absorbed at the top of workerSeq.
type stopSignal struct{}

type assertFailure struct {
	bugID string
	msg   string
}

// Thread is a virtual thread of the program under test. Every method that
// touches shared state is an atomic event: the thread parks, the scheduler
// picks who runs, and only then does the operation take effect. A Thread is
// only valid inside the program function it was passed to.
type Thread struct {
	ex       *Execution
	id       ThreadID
	parent   ThreadID
	path     string
	pathHash uint64
	body     func(*Thread)

	// The thread's goroutine is a coroutine (iter.Pull): parking and
	// granting are direct coroutine switches, an order of magnitude
	// cheaper than a channel handoff through the runtime scheduler.
	// coNext resumes the parked coroutine (only ever called with the
	// baton in hand), coStop unwinds it when the pool closes, coYield
	// parks it (only ever called from inside the coroutine), and killed
	// makes the next park resume as a kill.
	coNext  func() (struct{}, bool)
	coStop  func()
	coYield func(struct{}) bool
	killed  bool

	state       threadState
	next        Event
	seq         int
	clock       uint64 // class-fingerprint hash-clock (see Execution.classEvent)
	spawned     int
	joinTarget  ThreadID
	gated       ObjID  // object whose waitMask holds this thread's bit (fast engine)
	joinWaiters uint64 // bits of threads blocked joining this thread (fast engine)
	heldMutex   []ObjID

	// memoP/memoI locate this thread's spawn-memo entry (parent TID and
	// spawn index; memoP is -1 for the root). deferredPrime marks a thread
	// whose first event was published from that entry without waking the
	// goroutine (see primeChain); primePoison marks a prologue that did
	// something deferred priming could not reproduce (see recordPrime).
	memoP, memoI  int32
	deferredPrime bool
	primePoison   bool
}

// ID returns this thread's runtime ID (creation order, root = 0).
func (t *Thread) ID() ThreadID { return t.id }

// Path returns this thread's stable logical path: the root is "0" and the
// k-th thread spawned by a thread with path p is "p.k". Paths identify the
// same logical thread across schedules of a fixed program.
func (t *Thread) Path() string { return t.path }

// ProgRand returns the program-input random stream (seeded by
// Options.ProgSeed, independent of the scheduling stream). Use it for
// randomized but schedule-independent inputs. The stream is seeded on
// first use each schedule; it is identical however often it is fetched.
func (t *Thread) ProgRand() *rand.Rand {
	ex := t.ex
	if p := ex.primingT; p != nil {
		// A prologue drawing program randomness pins its thread to real
		// priming: deferring it would reorder the draws of the shared
		// stream across threads.
		p.primePoison = true
	}
	if !ex.progSeeded {
		ex.progSeeded = true
		if ex.progRand == nil {
			ex.progSrc = newFastSource(ex.opts.ProgSeed + 1)
			ex.progRand = rand.New(ex.progSrc)
		} else {
			ex.progSrc.Seed(ex.opts.ProgSeed + 1)
		}
	}
	return ex.progRand
}

// SetBehavior records the program's behaviour fingerprint for this schedule
// (e.g. a hash of the final data-structure state). The last call wins.
func (t *Thread) SetBehavior(b string) {
	if p := t.ex.primingT; p != nil {
		// Last-call-wins ordering is priming-order sensitive.
		p.primePoison = true
	}
	t.ex.behavior = b
}

// workerSeq is the coroutine body of every virtual thread. A fresh struct
// starts one coroutine; in a persistent (pooled) execution it parks at the
// top yield between schedules and is recycled with the struct, so pooled
// schedules never pay coroutine creation. A panic escaping runBody comes
// from the scheduler or algorithm machinery itself (program panics are
// absorbed inside runBody): it propagates out of the resume call onto the
// pump caller's stack, exactly like a slow-loop panic.
func (t *Thread) workerSeq(yield func(struct{}) bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopSignal); ok {
				return // pool closed while parked mid-schedule
			}
			panic(r)
		}
	}()
	t.coYield = yield
	for {
		if !yield(struct{}{}) {
			return // pool closed while parked between schedules
		}
		if t.killed {
			// Killed before ever running this schedule (still unprimed).
			t.killed = false
			t.state = tsFinished
			continue
		}
		t.runBody()
		if !t.ex.persistent {
			return
		}
	}
}

// runBody runs the thread's body for one schedule and hands the baton on
// when it finishes, absorbing the program-level panics (kills, assertion
// failures, program bugs) that end a body.
func (t *Thread) runBody() {
	defer func() {
		if r := recover(); r != nil {
			if t.ex.inEngine {
				// Not a program failure: the panic came from the decision
				// machinery running on this goroutine. Let workerLoop
				// forward it to the orchestrator.
				panic(r)
			}
			switch v := r.(type) {
			case killedSignal:
				// aborted schedule; exit quietly
			case stopSignal:
				panic(r) // pool closing; unwind past the defer below
			case assertFailure:
				t.ex.fail(&Failure{Kind: FailAssert, BugID: v.bugID, Msg: v.msg, TID: t.id, Step: t.ex.steps})
			default:
				t.ex.fail(&Failure{Kind: FailPanic, BugID: fmt.Sprintf("panic:%v", v), Msg: fmt.Sprint(v), TID: t.id, Step: t.ex.steps})
			}
		}
		t.state = tsFinished
		ex := t.ex
		if ex.fast && !ex.killing {
			// Decide the next step in place; the chosen successor (if any)
			// lands in ex.resume and the top-of-workerSeq park hands it to
			// the trampoline.
			ex.finishPoint(t)
		}
		// Slow path / killing: parking at the top of workerSeq with no
		// successor returns the baton to the scheduler loop.
	}()
	t.body(t)
}

// park yields the coroutine until the scheduler (or a successor naming
// this thread in ex.resume) resumes it, honoring kills and pool closure.
func (t *Thread) park() {
	if !t.coYield(struct{}{}) {
		panic(stopSignal{})
	}
	if t.killed {
		t.killed = false
		panic(killedSignal{})
	}
}

// sync publishes the next event and parks until the scheduler grants it.
// On return the thread holds the baton and must perform exactly that event.
func (t *Thread) sync(kind OpKind, obj ObjID) {
	if t.ex.killing {
		// The schedule is over and this thread is unwinding from a kill;
		// the scheduling op comes from deferred cleanup (say a deferred
		// Unlock below a killed Cond.Wait). There is no scheduler left to
		// grant it: re-raise the kill so the unwind skips the operation and
		// keeps going. Without this the thread would park forever mid-unwind
		// — and a pooled execution would later resume that stale unwind in
		// the middle of a fresh schedule.
		panic(killedSignal{})
	}
	t.seq++
	var objHash uint64
	if obj != 0 {
		objHash = t.ex.obj(obj).hash
	} else if kind == OpJoin {
		// A join carries the joined thread's path hash so traces are
		// self-describing: fingerprints and the crosscheck dependence
		// oracle can resolve the join edge without out-of-band state.
		// joinTarget is always set here (Thread.Join assigns it first, and
		// deferred priming never caches joins — see deferrable).
		objHash = t.ex.threads[t.joinTarget].pathHash
	}
	ev := Event{TID: t.id, Seq: t.seq, Kind: kind, Obj: obj, PathHash: t.pathHash, ObjHash: objHash}
	if t.deferredPrime {
		// Deferred priming already published this thread's first event from
		// the spawn memo and the scheduler has just granted it; the prologue
		// ran late and must land on exactly the cached event. A mismatch
		// means the program's prologue is nondeterministic, which the
		// substrate's determinism contract forbids.
		t.deferredPrime = false
		if ev != t.next {
			panic(fmt.Sprintf("sched: deferred priming diverged at %s: prologue published %+v, memo predicted %+v (nondeterministic program prologue)", t.path, ev, t.next))
		}
		t.state = tsRunning
		return
	}
	t.next = ev
	t.state = tsReady
	if t.ex.fast {
		if t.ex.syncPoint(t) {
			// Chose itself: continue inline, zero switches.
			t.state = tsRunning
			return
		}
		t.park()
		t.state = tsRunning
		return
	}
	// Slow path: parking with no successor returns the baton to the
	// scheduler loop; the next resume is this event's grant.
	t.park()
	t.state = tsRunning
}

// Go spawns a child thread running body and returns its handle. As in the
// paper's runtime, creation is not itself a scheduling event: the parent
// keeps running until its next event, and the child becomes schedulable
// once it has run to its first event.
func (t *Thread) Go(body func(*Thread)) *Handle {
	c := t.ex.addThread(t, body)
	t.ex.pending = append(t.ex.pending, spawnRec{parent: t.id, child: c.id})
	// Handles live in a per-execution arena recycled between schedules:
	// they are only meaningful within the schedule that created them, and
	// a pooled session spawns the same threads every schedule, so after
	// warm-up no spawn allocates. A grown arena leaves earlier handles
	// pointing into the old backing array, which stays intact until the
	// next reset.
	ex := t.ex
	ex.handles = append(ex.handles, Handle{tid: c.id, ex: ex})
	return &ex.handles[len(ex.handles)-1]
}

// Handle names a spawned thread for joining.
type Handle struct {
	tid ThreadID
	ex  *Execution
}

// TID returns the runtime thread ID behind the handle.
func (h *Handle) TID() ThreadID { return h.tid }

// Join blocks (as an event) until the handled thread has exited.
func (t *Thread) Join(h *Handle) {
	t.joinTarget = h.tid
	t.sync(OpJoin, 0)
}

// JoinAll joins a set of handles in order.
func (t *Thread) JoinAll(hs ...*Handle) {
	for _, h := range hs {
		t.Join(h)
	}
}

// Yield is a pure scheduling point: an event with no shared object. Use it
// inside spin loops so the scheduler can preempt them.
func (t *Thread) Yield() { t.sync(OpYield, 0) }

// Assert records bug bugID and aborts the schedule if cond is false.
func (t *Thread) Assert(cond bool, bugID string) {
	if !cond {
		panic(assertFailure{bugID: bugID, msg: "assertion failed: " + bugID})
	}
}

// Assertf is Assert with a formatted diagnostic message.
func (t *Thread) Assertf(cond bool, bugID, format string, args ...any) {
	if !cond {
		panic(assertFailure{bugID: bugID, msg: fmt.Sprintf(format, args...)})
	}
}

// Fail unconditionally reports bug bugID and aborts the schedule.
func (t *Thread) Fail(bugID string) {
	panic(assertFailure{bugID: bugID, msg: "failure: " + bugID})
}
