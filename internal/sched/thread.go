package sched

import (
	"fmt"
	"math/rand"
)

type step struct{ kill bool }

type killedSignal struct{}

type assertFailure struct {
	bugID string
	msg   string
}

// Thread is a virtual thread of the program under test. Every method that
// touches shared state is an atomic event: the thread parks, the scheduler
// picks who runs, and only then does the operation take effect. A Thread is
// only valid inside the program function it was passed to.
type Thread struct {
	ex         *Execution
	id         ThreadID
	parent     ThreadID
	path       string
	pathHash   uint64
	body       func(*Thread)
	gate       chan step
	state      threadState
	next       Event
	seq        int
	spawned    int
	joinTarget ThreadID
	heldMutex  []ObjID
}

// ID returns this thread's runtime ID (creation order, root = 0).
func (t *Thread) ID() ThreadID { return t.id }

// Path returns this thread's stable logical path: the root is "0" and the
// k-th thread spawned by a thread with path p is "p.k". Paths identify the
// same logical thread across schedules of a fixed program.
func (t *Thread) Path() string { return t.path }

// ProgRand returns the program-input random stream (seeded by
// Options.ProgSeed, independent of the scheduling stream). Use it for
// randomized but schedule-independent inputs.
func (t *Thread) ProgRand() *rand.Rand { return t.ex.progRand }

// SetBehavior records the program's behaviour fingerprint for this schedule
// (e.g. a hash of the final data-structure state). The last call wins.
func (t *Thread) SetBehavior(b string) { t.ex.behavior = b }

// trampoline is the goroutine body of every virtual thread.
func (t *Thread) trampoline() {
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case killedSignal:
				// aborted schedule; exit quietly
			case assertFailure:
				t.ex.fail(&Failure{Kind: FailAssert, BugID: v.bugID, Msg: v.msg, TID: t.id, Step: t.ex.steps})
			default:
				t.ex.fail(&Failure{Kind: FailPanic, BugID: fmt.Sprintf("panic:%v", v), Msg: fmt.Sprint(v), TID: t.id, Step: t.ex.steps})
			}
		}
		t.state = tsFinished
		t.ex.toSched <- t
	}()
	t.await() // wait for the priming grant
	t.body(t)
}

// await blocks until the scheduler grants the baton, honoring kills.
func (t *Thread) await() {
	if (<-t.gate).kill {
		panic(killedSignal{})
	}
}

// sync publishes the next event and parks until the scheduler grants it.
// On return the thread holds the baton and must perform exactly that event.
func (t *Thread) sync(kind OpKind, obj ObjID) {
	t.seq++
	var objHash uint64
	if obj != 0 {
		objHash = t.ex.obj(obj).hash
	}
	t.next = Event{TID: t.id, Seq: t.seq, Kind: kind, Obj: obj, PathHash: t.pathHash, ObjHash: objHash}
	t.state = tsReady
	t.ex.toSched <- t
	t.await()
	t.state = tsRunning
}

// Go spawns a child thread running body and returns its handle. As in the
// paper's runtime, creation is not itself a scheduling event: the parent
// keeps running until its next event, and the child becomes schedulable
// once it has run to its first event.
func (t *Thread) Go(body func(*Thread)) *Handle {
	c := t.ex.addThread(t, body)
	t.ex.pending = append(t.ex.pending, spawnRec{parent: t.id, child: c.id})
	go c.trampoline()
	return &Handle{tid: c.id, ex: t.ex}
}

// Handle names a spawned thread for joining.
type Handle struct {
	tid ThreadID
	ex  *Execution
}

// TID returns the runtime thread ID behind the handle.
func (h *Handle) TID() ThreadID { return h.tid }

// Join blocks (as an event) until the handled thread has exited.
func (t *Thread) Join(h *Handle) {
	t.joinTarget = h.tid
	t.sync(OpJoin, 0)
}

// JoinAll joins a set of handles in order.
func (t *Thread) JoinAll(hs ...*Handle) {
	for _, h := range hs {
		t.Join(h)
	}
}

// Yield is a pure scheduling point: an event with no shared object. Use it
// inside spin loops so the scheduler can preempt them.
func (t *Thread) Yield() { t.sync(OpYield, 0) }

// Assert records bug bugID and aborts the schedule if cond is false.
func (t *Thread) Assert(cond bool, bugID string) {
	if !cond {
		panic(assertFailure{bugID: bugID, msg: "assertion failed: " + bugID})
	}
}

// Assertf is Assert with a formatted diagnostic message.
func (t *Thread) Assertf(cond bool, bugID, format string, args ...any) {
	if !cond {
		panic(assertFailure{bugID: bugID, msg: fmt.Sprintf(format, args...)})
	}
}

// Fail unconditionally reports bug bugID and aborts the schedule.
func (t *Thread) Fail(bugID string) {
	panic(assertFailure{bugID: bugID, msg: "failure: " + bugID})
}
