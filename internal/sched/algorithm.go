package sched

import (
	"math/rand"
	"sort"
)

// Algorithm is a stateless randomized scheduling policy in the sense of the
// paper: it is re-seeded before every schedule and chooses, at each step,
// which enabled thread executes its next event.
type Algorithm interface {
	// Name identifies the algorithm in reports ("SURW", "PCT-3", ...).
	Name() string
	// Begin resets the algorithm for a fresh schedule. info carries the
	// profiling estimates (may be nil for algorithms that need none) and rng
	// is the schedule's private random stream.
	Begin(info *ProgramInfo, rng *rand.Rand)
	// Next returns the thread (from st.Enabled(), never empty) whose next
	// event executes now.
	Next(st *State) ThreadID
	// Observe is called after every executed event, with the state already
	// advanced (new next-events published). It sees events the scheduler
	// fast-pathed past Next (single enabled thread), so per-event
	// bookkeeping belongs here.
	Observe(ev Event, st *State)
}

// SpawnObserver is implemented by algorithms that track the spawn tree.
// ObserveSpawn fires once per created thread, after the child has run to
// its first event (so its next event is visible in st), and before the
// Observe call for the event during whose turn the spawn happened.
type SpawnObserver interface {
	ObserveSpawn(parent, child ThreadID, st *State)
}

// ProgramInfo carries the per-program estimates Algorithms 1 and 2 take as
// input: per-thread event counts, the interesting-event predicate Δ and its
// per-thread counts, and the spawn tree (for the thread-creation weight
// correction of §3.5). It is produced by package profile from a profiling
// run, or constructed by hand.
type ProgramInfo struct {
	// Paths lists the stable logical thread paths discovered by profiling;
	// the index of a path is that thread's logical ID (LID).
	Paths []string
	// Events[l] estimates the total number of events thread l executes.
	Events []int
	// InterestingEvents[l] estimates the number of Δ events on thread l.
	// When Interesting is nil this equals Events.
	InterestingEvents []int
	// Parent[l] is the LID of l's spawner (-1 for the root).
	Parent []int
	// Children[l] lists the LIDs spawned directly by l, in spawn order.
	Children [][]int
	// TotalEvents estimates the schedule length (used by PCT).
	TotalEvents int
	// Interesting is the Δ predicate; nil means every event is interesting.
	Interesting func(Event) bool
	// DeltaDesc describes the chosen Δ for reports (e.g. "var x").
	DeltaDesc string

	index map[string]int
}

// NewProgramInfo builds an empty info ready for AddThread.
func NewProgramInfo() *ProgramInfo {
	return &ProgramInfo{index: make(map[string]int)}
}

// AddThread registers a logical thread path with its parent path ("" for
// the root) and returns its LID. Re-adding an existing path returns the
// existing LID.
func (pi *ProgramInfo) AddThread(path, parentPath string) int {
	if pi.index == nil {
		pi.index = make(map[string]int)
	}
	if l, ok := pi.index[path]; ok {
		return l
	}
	l := len(pi.Paths)
	pi.index[path] = l
	pi.Paths = append(pi.Paths, path)
	pi.Events = append(pi.Events, 0)
	pi.InterestingEvents = append(pi.InterestingEvents, 0)
	pi.Parent = append(pi.Parent, -1)
	pi.Children = append(pi.Children, nil)
	if parentPath != "" {
		p := pi.AddThread(parentPath, parentOf(parentPath))
		pi.Parent[l] = p
		pi.Children[p] = append(pi.Children[p], l)
	}
	return l
}

func parentOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return ""
}

// LID returns the logical ID for a thread path, or -1 if the path was not
// seen during profiling.
func (pi *ProgramInfo) LID(path string) int {
	if pi == nil || pi.index == nil {
		return -1
	}
	if l, ok := pi.index[path]; ok {
		return l
	}
	return -1
}

// NumThreads returns the number of profiled logical threads.
func (pi *ProgramInfo) NumThreads() int {
	if pi == nil {
		return 0
	}
	return len(pi.Paths)
}

// Clone returns a deep copy sharing only the Interesting predicate, so an
// algorithm can perturb counts without corrupting the source profile.
func (pi *ProgramInfo) Clone() *ProgramInfo {
	if pi == nil {
		return nil
	}
	cp := &ProgramInfo{
		Paths:             append([]string(nil), pi.Paths...),
		Events:            append([]int(nil), pi.Events...),
		InterestingEvents: append([]int(nil), pi.InterestingEvents...),
		Parent:            append([]int(nil), pi.Parent...),
		Children:          make([][]int, len(pi.Children)),
		TotalEvents:       pi.TotalEvents,
		Interesting:       pi.Interesting,
		DeltaDesc:         pi.DeltaDesc,
		index:             make(map[string]int, len(pi.Paths)),
	}
	for i, c := range pi.Children {
		cp.Children[i] = append([]int(nil), c...)
	}
	for p, l := range pi.index {
		cp.index[p] = l
	}
	return cp
}

// State is the scheduler-side view an Algorithm sees: the set of enabled
// threads and the next event of every live thread.
type State struct {
	ex      *Execution
	enabled []ThreadID // refreshed by the scheduler each step
}

// Enabled returns the TIDs whose next event is executable now, in ascending
// order. The slice is owned by the scheduler; do not retain it.
func (s *State) Enabled() []ThreadID {
	if ex := s.ex; ex.fast {
		// The fast engine materializes the slice from its bitmask only on
		// demand. During spawn notifications the visible set is the one
		// from the last decision — the same staleness the slow loop's
		// primeNew-before-rebuild ordering exposes.
		if ex.notifying {
			ex.materializeFrom(ex.decisionBits)
			ex.enabledStale = true
		} else if ex.enabledStale {
			ex.materializeFrom(ex.enabledBits)
			ex.enabledStale = false
		}
	}
	return s.enabled
}

// NextEvent returns the published next event of a live, parked thread.
func (s *State) NextEvent(tid ThreadID) Event { return s.ex.threads[tid].next }

// Path returns the stable logical path of a thread (root "0", its k-th
// child "0.k", and so on).
func (s *State) Path(tid ThreadID) string { return s.ex.threads[tid].path }

// PathHash returns the stable 64-bit hash of a thread's path.
func (s *State) PathHash(tid ThreadID) uint64 { return s.ex.threads[tid].pathHash }

// NumThreads returns the number of threads created so far this schedule.
func (s *State) NumThreads() int { return len(s.ex.threads) }

// Finished reports whether a thread has exited.
func (s *State) Finished(tid ThreadID) bool { return s.ex.threads[tid].state == tsFinished }

// Sleeping reports whether a thread is asleep in a condition wait.
func (s *State) Sleeping(tid ThreadID) bool { return s.ex.threads[tid].state == tsSleeping }

// TIDByPath resolves a logical path to this schedule's runtime TID.
func (s *State) TIDByPath(path string) (ThreadID, bool) {
	if s.ex.byPathDirty {
		// The index is maintained lazily: spawns only mark it stale, and
		// the first query after a spawn (or a reset) rebuilds it here.
		clear(s.ex.byPath)
		for _, t := range s.ex.threads {
			s.ex.byPath[t.path] = t.id
		}
		s.ex.byPathDirty = false
	}
	tid, ok := s.ex.byPath[path]
	return tid, ok
}

// ObjName returns the stable name of a shared object.
func (s *State) ObjName(id ObjID) string {
	if id == 0 {
		return ""
	}
	return s.ex.objs[id-1].name
}

// ObjKind returns the kind of a shared object.
func (s *State) ObjKind(id ObjID) ObjKind {
	if id == 0 {
		return ObjNone
	}
	return s.ex.objs[id-1].kind
}

// Step returns the number of events executed so far.
func (s *State) Step() int { return s.ex.steps }

// sortTIDs keeps Enabled deterministic.
func sortTIDs(tids []ThreadID) { sort.Ints(tids) }
