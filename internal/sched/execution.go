package sched

import (
	"fmt"
	"math/rand"
	"strconv"
)

type threadState uint8

const (
	tsUnprimed threadState = iota // goroutine started, first event not yet published
	tsReady                       // parked with a published next event
	tsRunning                     // holds the baton (transient)
	tsSleeping                    // asleep in a condition wait, no next event
	tsFinished                    // exited
)

// Execution drives one schedule of one program. All state is confined:
// exactly one goroutine (a virtual thread or the scheduler loop) runs at
// any time, so no field needs locking. An Execution owned by a Pool is
// reused across schedules — reset re-initializes the per-schedule fields
// while the allocation-heavy buffers (thread structs and their gate
// channels, the object and trace slices, the path/name maps) persist.
type Execution struct {
	opts     Options
	alg      Algorithm
	progRand *rand.Rand
	algRand  *rand.Rand

	threads []*Thread
	byPath  map[string]ThreadID
	objs    []objState
	objSeen map[string]int // name collision counter

	toSched chan *Thread
	pending []spawnRec // spawns awaiting priming + algorithm notification

	steps     int
	maxSteps  int
	failure   *Failure
	truncated bool
	aborted   bool
	behavior  string

	trace       []Event
	ilvHash     uint64
	deltaHash   uint64
	interesting func(Event) bool
	filter      func(Event) bool
	tracer      Tracer

	state *State

	// Reuse pools, persistent across resets. freeThreads holds finished
	// Thread structs (with their gate channels) from earlier schedules;
	// names interns path and object-name strings so the spawn/create hot
	// path stops allocating once the first schedule has seen a name.
	freeThreads []*Thread
	names       map[string]string
	nameBuf     []byte
}

type spawnRec struct {
	parent, child ThreadID
}

type objState struct {
	kind ObjKind
	name string
	hash uint64

	val int64 // ObjVar
	ref any   // ObjVar (Ref payload)

	owner   ThreadID // ObjMutex: writer owner, -1 when free
	readers int      // ObjMutex: active reader count (RWMutex)

	condMu  ObjID      // ObjCond: associated mutex
	waiters []ThreadID // ObjCond: sleeping threads, FIFO

	sem int // ObjSem: current count
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

// HashName returns the stable 64-bit hash used for Event.ObjHash and
// Event.PathHash, so Δ predicates can match object names without strings.
func HashName(name string) uint64 { return fnv1a(fnvOffset, name) }

func fnv1a(h uint64, data string) uint64 {
	for i := 0; i < len(data); i++ {
		h = (h ^ uint64(data[i])) * fnvPrime
	}
	return h
}

func fnvMix(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// Run executes one schedule of prog under alg and returns its Result.
// A nil alg falls back to always picking the lowest enabled TID (a
// deterministic left-most schedule, useful for smoke tests). Callers
// running many schedules of one program should prefer Pool.Run, which
// reuses the execution buffers across schedules.
func Run(prog func(*Thread), alg Algorithm, opts Options) *Result {
	return new(Execution).run(prog, alg, opts)
}

// reset prepares the Execution for a fresh schedule, recycling every
// buffer a previous schedule left behind. Re-seeding the persistent rand
// streams yields exactly the streams a fresh rand.New(rand.NewSource(seed))
// would produce, so pooled and one-shot executions are bit-identical.
func (ex *Execution) reset(opts Options, alg Algorithm) {
	ex.opts = opts
	ex.alg = alg
	if ex.progRand == nil {
		ex.progRand = rand.New(rand.NewSource(opts.ProgSeed + 1))
	} else {
		ex.progRand.Seed(opts.ProgSeed + 1)
	}
	for _, t := range ex.threads {
		ex.freeThreads = append(ex.freeThreads, t)
	}
	ex.threads = ex.threads[:0]
	ex.objs = ex.objs[:0]
	ex.pending = ex.pending[:0]
	if ex.byPath == nil {
		ex.byPath = make(map[string]ThreadID, 8)
		ex.objSeen = make(map[string]int, 8)
		ex.names = make(map[string]string, 16)
		ex.toSched = make(chan *Thread)
	} else {
		clear(ex.byPath)
		clear(ex.objSeen)
	}
	ex.steps = 0
	ex.maxSteps = opts.MaxSteps
	if ex.maxSteps <= 0 {
		ex.maxSteps = DefaultMaxSteps
	}
	ex.failure = nil
	ex.truncated = false
	ex.aborted = false
	ex.behavior = ""
	ex.trace = ex.trace[:0]
	ex.ilvHash = fnvOffset
	ex.deltaHash = 0
	ex.interesting = nil
	ex.filter = opts.TraceFilter
	ex.tracer = opts.Tracer
	if opts.Info != nil && opts.Info.Interesting != nil {
		ex.interesting = opts.Info.Interesting
		ex.deltaHash = fnvOffset
	}
	if ex.state == nil {
		ex.state = &State{ex: ex}
	} else {
		ex.state.enabled = ex.state.enabled[:0]
	}
}

func (ex *Execution) run(prog func(*Thread), alg Algorithm, opts Options) *Result {
	ex.reset(opts, alg)
	if alg != nil {
		if ex.algRand == nil {
			ex.algRand = rand.New(rand.NewSource(opts.Seed + 1))
		} else {
			ex.algRand.Seed(opts.Seed + 1)
		}
		alg.Begin(opts.Info, ex.algRand)
	}
	if ex.tracer != nil {
		name := ""
		if alg != nil {
			name = alg.Name()
		}
		ex.tracer.BeginSchedule(name)
	}

	root := ex.addThread(nil, prog)
	go root.trampoline()
	ex.primeNew()
	ex.loop()
	ex.killRemaining()

	res := &Result{
		Failure:          ex.failure,
		Steps:            ex.steps,
		Truncated:        ex.truncated,
		InterleavingHash: ex.ilvHash,
		DeltaHash:        ex.deltaHash,
		Behavior:         ex.behavior,
		Threads:          len(ex.threads),
	}
	if opts.RecordTrace {
		// Hand the trace to the caller and surrender the buffer: a pooled
		// Execution must never scribble over a returned Result.
		res.Trace = ex.trace
		ex.trace = nil
		res.ThreadPaths = make([]string, len(ex.threads))
		for i, t := range ex.threads {
			res.ThreadPaths[i] = t.path
		}
	}
	if ex.tracer != nil {
		ex.tracer.EndSchedule(res)
	}
	return res
}

func (ex *Execution) loop() {
	enabled := ex.enabledTIDs()
	for {
		if ex.failure != nil {
			return
		}
		if len(enabled) == 0 {
			if ex.anyAlive() {
				ex.reportDeadlock()
			}
			return
		}
		if ex.steps >= ex.maxSteps {
			ex.truncated = true
			return
		}
		var tid ThreadID
		consulted := false
		switch {
		case len(enabled) == 1:
			tid = enabled[0]
		case ex.alg != nil:
			consulted = true
			tid = ex.alg.Next(ex.state)
			if !containsTID(enabled, tid) {
				panic(fmt.Sprintf("sched: algorithm %s chose disabled thread T%d", ex.alg.Name(), tid))
			}
		default:
			tid = enabled[0]
		}
		t := ex.threads[tid]
		ev := t.next
		ex.steps++
		ex.recordEvent(ev)
		if ex.tracer != nil {
			// Before grant: st still reflects the pre-event state, so the
			// tracer sees the enabled set the decision was drawn from.
			ex.tracer.Decide(Decision{
				Step: ex.steps - 1, Chosen: tid, Enabled: len(enabled), Consulted: consulted, Event: ev,
			}, ex.state)
		}
		nThreads := len(ex.threads)
		ex.grant(t)
		ex.primeNew()
		// The enabled set is rebuilt (for Observe and the next decision)
		// only when this step could have changed it. A pure event — a
		// shared-variable access or a yield — cannot block or unblock any
		// other thread, so if the executing thread republished an enabled
		// event and spawned nobody, the set of enabled TIDs is unchanged.
		if len(ex.threads) != nThreads || !ex.pureEvent(ev) ||
			t.state != tsReady || !ex.enabled(t) {
			enabled = ex.enabledTIDs()
		}
		if ex.alg != nil {
			ex.alg.Observe(ev, ex.state)
		}
	}
}

// pureEvent reports whether ev can never change another thread's
// enabledness: yields and accesses to plain shared variables qualify; any
// synchronization operation (including an OpRMW TryLock on a mutex) does
// not.
func (ex *Execution) pureEvent(ev Event) bool {
	switch ev.Kind {
	case OpYield:
		return true
	case OpRead, OpWrite, OpRMW:
		return ev.Obj != 0 && ex.objs[ev.Obj-1].kind == ObjVar
	}
	return false
}

func containsTID(tids []ThreadID, tid ThreadID) bool {
	for _, t := range tids {
		if t == tid {
			return true
		}
	}
	return false
}

func (ex *Execution) recordEvent(ev Event) {
	if ex.filter == nil || ex.filter(ev) {
		ex.ilvHash = fnvMix(fnvMix(ex.ilvHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	if ex.interesting != nil && ex.interesting(ev) {
		ex.deltaHash = fnvMix(fnvMix(ex.deltaHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	if ex.opts.RecordTrace {
		ex.trace = append(ex.trace, ev)
	}
}

// grant hands the baton to t, which executes its published event and runs
// until it parks at its next event, sleeps, or exits. grant returns once the
// baton is back with the scheduler.
func (ex *Execution) grant(t *Thread) {
	t.state = tsRunning
	t.gate <- step{}
	<-ex.toSched
}

// primeNew runs every newly spawned thread up to its first event so its
// next event becomes visible for scheduling, then notifies the algorithm of
// the spawns. Priming can cascade (a child may spawn grandchildren before
// its first event), so iteration is by index over the growing thread list.
func (ex *Execution) primeNew() {
	for i := 0; i < len(ex.threads); i++ {
		if t := ex.threads[i]; t.state == tsUnprimed {
			t.state = tsRunning
			t.gate <- step{}
			<-ex.toSched
		}
	}
	if len(ex.pending) == 0 {
		return
	}
	pending := ex.pending
	ex.pending = ex.pending[:0]
	if so, ok := ex.alg.(SpawnObserver); ok {
		for _, p := range pending {
			so.ObserveSpawn(p.parent, p.child, ex.state)
		}
	}
}

func (ex *Execution) enabledTIDs() []ThreadID {
	enabled := ex.state.enabled[:0]
	for _, t := range ex.threads {
		if ex.enabled(t) {
			enabled = append(enabled, t.id)
		}
	}
	ex.state.enabled = enabled
	return enabled
}

func (ex *Execution) enabled(t *Thread) bool {
	if t.state != tsReady {
		return false
	}
	switch t.next.Kind {
	case OpLock, OpWakeLock:
		o := &ex.objs[t.next.Obj-1]
		// A writer additionally waits for readers to drain (rwmutex).
		return o.owner == -1 && o.readers == 0
	case OpRLock:
		return ex.objs[t.next.Obj-1].owner == -1
	case OpSemP:
		return ex.objs[t.next.Obj-1].sem > 0
	case OpJoin:
		return ex.threads[t.joinTarget].state == tsFinished
	default:
		return true
	}
}

func (ex *Execution) anyAlive() bool {
	for _, t := range ex.threads {
		if t.state != tsFinished {
			return true
		}
	}
	return false
}

func (ex *Execution) reportDeadlock() {
	msg := "no enabled threads; blocked:"
	for _, t := range ex.threads {
		switch t.state {
		case tsSleeping:
			msg += fmt.Sprintf(" T%d(wait)", t.id)
		case tsReady:
			msg += fmt.Sprintf(" T%d(%s)", t.id, t.next.Kind)
		}
	}
	ex.fail(&Failure{Kind: FailDeadlock, BugID: "deadlock", Msg: msg, TID: -1, Step: ex.steps})
}

func (ex *Execution) fail(f *Failure) {
	if ex.failure == nil {
		ex.failure = f
	}
	ex.aborted = true
}

// killRemaining unwinds every live thread. All live threads are blocked on
// their gate (parked, sleeping, or unprimed), so each kill grant produces
// exactly one exit notification.
func (ex *Execution) killRemaining() {
	ex.aborted = true
	for _, t := range ex.threads {
		if t.state != tsFinished {
			t.gate <- step{kill: true}
			<-ex.toSched
		}
	}
}

// intern canonicalizes the scratch bytes in ex.nameBuf into a string,
// reusing the copy a previous schedule produced. The map lookup with a
// []byte-to-string conversion does not allocate; only the first schedule
// of a pooled Execution pays for the string.
func (ex *Execution) intern() string {
	if s, ok := ex.names[string(ex.nameBuf)]; ok {
		return s
	}
	s := string(ex.nameBuf)
	ex.names[s] = s
	return s
}

func (ex *Execution) addThread(parent *Thread, body func(*Thread)) *Thread {
	var t *Thread
	if n := len(ex.freeThreads); n > 0 {
		// Recycle a finished thread's struct and gate channel. Its old
		// goroutine has fully exited (killRemaining or a natural finish
		// handed the baton back before run returned), so nothing else can
		// touch the gate.
		t = ex.freeThreads[n-1]
		ex.freeThreads = ex.freeThreads[:n-1]
		t.next = Event{}
		t.state = tsUnprimed
		t.seq = 0
		t.spawned = 0
		t.joinTarget = 0
		t.heldMutex = t.heldMutex[:0]
	} else {
		t = &Thread{gate: make(chan step)}
	}
	t.ex = ex
	t.id = len(ex.threads)
	t.body = body
	if parent == nil {
		t.path = "0"
		t.parent = -1
	} else {
		buf := append(ex.nameBuf[:0], parent.path...)
		buf = append(buf, '.')
		ex.nameBuf = strconv.AppendInt(buf, int64(parent.spawned), 10)
		t.path = ex.intern()
		parent.spawned++
		t.parent = parent.id
	}
	t.pathHash = fnv1a(fnvOffset, t.path)
	ex.threads = append(ex.threads, t)
	ex.byPath[t.path] = t.id
	return t
}

func (ex *Execution) addObj(o objState, name, autoPrefix string) ObjID {
	if name == "" {
		buf := append(ex.nameBuf[:0], autoPrefix...)
		buf = append(buf, '#')
		ex.nameBuf = strconv.AppendInt(buf, int64(len(ex.objs)), 10)
		name = ex.intern()
	}
	if n := ex.objSeen[name]; n > 0 {
		ex.objSeen[name] = n + 1
		buf := append(ex.nameBuf[:0], name...)
		buf = append(buf, '~')
		ex.nameBuf = strconv.AppendInt(buf, int64(n), 10)
		name = ex.intern()
	} else {
		ex.objSeen[name] = 1
	}
	o.name = name
	o.hash = fnv1a(fnvOffset, name)
	if n := len(ex.objs); n < cap(ex.objs) {
		// Recycle the stale element's waiter buffer (the previous schedule
		// of a pooled Execution created the same objects in the same order).
		o.waiters = ex.objs[: n+1 : n+1][n].waiters[:0]
	}
	ex.objs = append(ex.objs, o)
	return ObjID(len(ex.objs))
}

func (ex *Execution) obj(id ObjID) *objState { return &ex.objs[id-1] }
