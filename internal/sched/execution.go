package sched

import (
	"fmt"
	"iter"
	"math/rand"
	"strconv"

	"surw/internal/atlas"
)

type threadState uint8

const (
	tsUnprimed threadState = iota // coroutine started, first event not yet published
	tsReady                       // parked with a published next event
	tsRunning                     // holds the baton (transient)
	tsSleeping                    // asleep in a condition wait, no next event
	tsFinished                    // exited
)

// Execution drives one schedule of one program. All state is confined:
// exactly one goroutine (a virtual thread's coroutine or the scheduler
// loop) runs at any time, so no field needs locking. An Execution owned by
// a Pool is reused across schedules — reset re-initializes the
// per-schedule fields while the allocation-heavy buffers (thread structs
// and their coroutines, the object and trace slices, the path/name maps)
// persist.
type Execution struct {
	opts       Options
	alg        Algorithm
	progRand   *rand.Rand
	progSrc    rand.Source // progRand's source, for fast re-seeding
	progSeeded bool        // progRand seeded for this schedule (lazy)
	algRand    *rand.Rand
	algSrc     rand.Source // algRand's source, for fast re-seeding

	threads []*Thread
	byPath  map[string]ThreadID
	objs    []objState
	objSeen map[string]int // name collision counter

	// resume names the coroutine the trampoline (pump) transfers the baton
	// to after the current one parks; nil parks the whole schedule phase —
	// the schedule is over, bailed, or (slow path) the thread published.
	resume  *Thread
	pending []spawnRec // spawns awaiting priming + algorithm notification

	// gen counts resets: together with the Execution's identity it forms
	// the Epoch (binding.go) that scopes frontend-cached objects to one
	// schedule. Monotonic per Execution, bumped before anything else runs.
	gen uint64

	steps     int
	maxSteps  int
	failure   *Failure
	truncated bool
	aborted   bool
	behavior  string

	// Fast-engine state (fast.go). persistent marks pooled executions,
	// whose worker coroutines park between schedules instead of exiting.
	fast         bool
	persistent   bool
	inEngine     bool   // engine/algorithm code running on a program goroutine
	enabledBits  uint64 // bit per TID: published event executable now
	enabledStale bool   // state.enabled slice out of date vs enabledBits
	decisionBits uint64 // enabledBits as of the last decision
	notifying    bool   // inside ObserveSpawn notifications
	liveCount    int    // threads not yet finished
	unprimed     int    // threads not yet run to their first event
	primeIdx     int    // monotonic priming cursor (fast engine)
	priming      bool   // a priming chain is in flight
	killing      bool   // killRemaining in progress
	bailReq      bool   // a thread ID outgrew the bitmask; bail next cycle
	bailed       bool   // this schedule fell back to the slow loop
	curEv        Event  // last executed (or executing) event
	idx          IndexChooser

	// Prefix checkpointing (checkpoint.go).
	capture   *Checkpoint // capturing into (RunPrefix)
	replayCp  *Checkpoint // replaying from (RunFrom)
	replayPos int

	trace       []Event
	ilvHash     uint64
	classAcc    uint64 // commutation-canonical class fingerprint accumulator
	deltaHash   uint64
	interesting func(Event) bool
	filter      func(Event) bool
	tracer      Tracer

	// Exploration-atlas state (internal/atlas): cartography sink plus the
	// per-schedule decision depth and running choice-prefix hash. Feeds
	// only the atlas — never a result hash or a scheduling choice.
	atlas      *atlas.Accum
	atlasDepth int
	atlasHash  uint64

	state *State

	// Reuse pools, persistent across resets. freeThreads holds finished
	// Thread structs (with their parked coroutines) from earlier schedules;
	// names interns path and object-name strings so the spawn/create hot
	// path stops allocating once the first schedule has seen a name.
	freeThreads []*Thread
	names       map[string]string
	nameBuf     []byte

	// handles is the per-schedule spawn-handle arena (see Thread.Go).
	handles []Handle

	// spawnMemo caches child paths by (parent TID, spawn index): a pooled
	// execution re-creates the same spawn tree every schedule, so after
	// warm-up addThread skips the path build, the intern lookup and the
	// path hash. Entries are validated against the parent's current path,
	// so schedules that assign TIDs differently just miss and rebuild.
	// Entries additionally cache the thread's first published event for
	// deferred priming (see primeChain).
	spawnMemo [][]spawnPath
	// byPathDirty marks ex.byPath stale; it is rebuilt on the next
	// TIDByPath query instead of eagerly on every spawn.
	byPathDirty bool
	// primingT is the thread currently running its prologue under a real
	// priming grant of the fast engine. Anything it does before its first
	// publish that deferred priming could not reproduce at a later time —
	// creating an object, spawning, drawing ProgRand, reporting a
	// behaviour — poisons its memo entry (see Thread.primePoison).
	primingT *Thread
	// lastProg is the program of the previous run, retained (so its closure
	// cannot be collected and its address recycled) to detect a pool being
	// repointed at a different program, which invalidates every cached
	// first event (see invalidateDeferred).
	lastProg func(*Thread)
}

type spawnPath struct {
	parentPath string // memo valid only while this TID's path matches
	path       string
	hash       uint64

	// firstEv is the first event this logical thread published, captured
	// during a real priming run of the fast engine. evOK marks it usable
	// for deferred priming: the prologue ran to its first sync without
	// any effect that pins it to priming time, so later schedules can
	// publish the event from the cache and start the goroutine lazily.
	firstEv Event
	evOK    bool
}

type spawnRec struct {
	parent, child ThreadID
}

type objState struct {
	kind ObjKind
	name string
	hash uint64

	// waitMask tracks the threads whose published event is gated on this
	// object (fast engine): pending OpLock/OpWakeLock/OpRLock on a mutex,
	// pending OpSemP on a semaphore.
	waitMask uint64

	// Class-fingerprint state (see classEvent): lastWriteH is the hash of
	// the last writer-like event on this object, readAcc the commutative
	// (wrapping-sum) accumulator of reader hashes since that write.
	lastWriteH uint64
	readAcc    uint64

	val int64 // ObjVar
	ref any   // ObjVar (Ref payload)

	owner   ThreadID // ObjMutex: writer owner, -1 when free
	readers int      // ObjMutex: active reader count (RWMutex)

	condMu  ObjID      // ObjCond: associated mutex
	waiters []ThreadID // ObjCond: sleeping threads, FIFO

	sem int // ObjSem: current count
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

// HashName returns the stable 64-bit hash used for Event.ObjHash and
// Event.PathHash, so Δ predicates can match object names without strings.
func HashName(name string) uint64 { return fnv1a(fnvOffset, name) }

func fnv1a(h uint64, data string) uint64 {
	for i := 0; i < len(data); i++ {
		h = (h ^ uint64(data[i])) * fnvPrime
	}
	return h
}

// fnvMix folds one 64-bit word into a running fingerprint. The mix is a
// single multiply–xorshift round (golden-ratio constant) rather than eight
// byte-wise FNV rounds: fingerprints are only ever compared for equality
// or used as map keys within one process, so the mix just has to chain
// order-sensitively and spread well — and it sits on the per-event hot
// path, where the serial 8-multiply FNV dependency chain was measurable.
func fnvMix(h uint64, v uint64) uint64 {
	h = (h ^ v) * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

// Run executes one schedule of prog under alg and returns its Result.
// A nil alg falls back to always picking the lowest enabled TID (a
// deterministic left-most schedule, useful for smoke tests). Callers
// running many schedules of one program should prefer Pool.Run, which
// reuses the execution buffers across schedules.
func Run(prog func(*Thread), alg Algorithm, opts Options) *Result {
	return new(Execution).run(prog, alg, opts)
}

// reset prepares the Execution for a fresh schedule, recycling every
// buffer a previous schedule left behind. Re-seeding the persistent rand
// streams yields exactly the streams a fresh rand.New(rand.NewSource(seed))
// would produce, so pooled and one-shot executions are bit-identical.
func (ex *Execution) reset(opts Options, alg Algorithm) {
	ex.gen++
	ex.opts = opts
	ex.alg = alg
	// progRand is seeded lazily on first ProgRand call: most programs
	// never draw from it, and seeding costs microseconds per schedule.
	ex.progSeeded = false
	for _, t := range ex.threads {
		ex.freeThreads = append(ex.freeThreads, t)
	}
	ex.threads = ex.threads[:0]
	ex.objs = ex.objs[:0]
	ex.pending = ex.pending[:0]
	ex.handles = ex.handles[:0]
	if ex.byPath == nil {
		ex.byPath = make(map[string]ThreadID, 8)
		ex.objSeen = make(map[string]int, 8)
		ex.names = make(map[string]string, 16)
	} else {
		clear(ex.objSeen)
	}
	ex.byPathDirty = true
	ex.steps = 0
	ex.maxSteps = opts.Base.Normalized().MaxSteps
	ex.failure = nil
	ex.truncated = false
	ex.aborted = false
	ex.behavior = ""
	ex.trace = ex.trace[:0]
	ex.ilvHash = fnvOffset
	ex.classAcc = 0
	ex.deltaHash = 0
	ex.interesting = nil
	ex.filter = opts.TraceFilter
	ex.tracer = opts.Tracer
	ex.atlas = opts.Atlas
	ex.atlasDepth = 0
	ex.atlasHash = fnvOffset
	ex.atlas.BeginSchedule()
	if opts.Info != nil && opts.Info.Interesting != nil {
		ex.interesting = opts.Info.Interesting
		ex.deltaHash = fnvOffset
	}
	if ex.state == nil {
		ex.state = &State{ex: ex}
	} else {
		ex.state.enabled = ex.state.enabled[:0]
	}

	// Hooks observe true per-event scheduling, so any tracer forces the
	// verbatim slow loop; DisableBatching does the same for A/B tests.
	ex.fast = opts.Tracer == nil && !opts.DisableBatching
	ex.inEngine = false
	ex.enabledBits = 0
	ex.enabledStale = true
	ex.decisionBits = 0
	ex.notifying = false
	ex.liveCount = 0
	ex.unprimed = 0
	ex.primeIdx = 0
	ex.priming = false
	ex.killing = false
	ex.bailReq = false
	ex.bailed = false
	ex.curEv = Event{}
	ex.idx = nil
	if alg != nil {
		ex.idx, _ = alg.(IndexChooser)
	}
	ex.capture = nil
	ex.replayCp = nil
	ex.replayPos = 0
	ex.primingT = nil
	ex.resume = nil
}

func (ex *Execution) run(prog func(*Thread), alg Algorithm, opts Options) *Result {
	return ex.runWith(prog, alg, opts, nil, nil)
}

func (ex *Execution) runWith(prog func(*Thread), alg Algorithm, opts Options, capture, replay *Checkpoint) *Result {
	ex.reset(opts, alg)
	ex.checkProg(prog)
	if ex.fast {
		ex.capture = capture
		ex.replayCp = replay
	} else if capture != nil {
		capture.open = false
		capture.invalid = true
	}
	if alg != nil {
		if ex.algRand == nil {
			ex.algSrc = newFastSource(opts.Seed + 1)
			ex.algRand = rand.New(ex.algSrc)
		} else {
			ex.algSrc.Seed(opts.Seed + 1)
		}
		alg.Begin(opts.Info, ex.algRand)
		if sc, ok := alg.(SourceChooser); ok {
			sc.BeginSource(ex.algSrc)
		}
	}
	if ex.tracer != nil {
		name := ""
		if alg != nil {
			name = alg.Name()
		}
		ex.tracer.BeginSchedule(name)
	}

	root := ex.addThread(nil, prog)
	if ex.fast {
		// The whole schedule runs on the program coroutines: each
		// scheduling point decides the next step in place (fast.go) and
		// names its successor; pump trampolines the baton between them.
		// The orchestrator takes over again at schedule end — or
		// mid-schedule on a bail to the slow loop, with one Observe call
		// still owed.
		ex.priming = true
		ex.unprimed--
		root.state = tsRunning
		ex.pump(root)
		if ex.bailed {
			ex.enabledTIDs()
			if ex.alg != nil && ex.curEv.Kind != OpInvalid {
				ex.alg.Observe(ex.curEv, ex.state)
			}
			ex.loop()
		}
	} else {
		ex.primeNew()
		ex.loop()
	}
	ex.killRemaining()

	res := &Result{
		Failure:          ex.failure,
		Steps:            ex.steps,
		Truncated:        ex.truncated,
		InterleavingHash: ex.ilvHash,
		ClassHash:        ex.classAcc,
		DeltaHash:        ex.deltaHash,
		Behavior:         ex.behavior,
		Threads:          len(ex.threads),
	}
	if opts.RecordTrace {
		// Hand the trace to the caller and surrender the buffer: a pooled
		// Execution must never scribble over a returned Result.
		res.Trace = ex.trace
		ex.trace = nil
		res.ThreadPaths = make([]string, len(ex.threads))
		for i, t := range ex.threads {
			res.ThreadPaths[i] = t.path
		}
	}
	if ex.tracer != nil {
		ex.tracer.EndSchedule(res)
	}
	return res
}

func (ex *Execution) loop() {
	enabled := ex.enabledTIDs()
	for {
		if ex.failure != nil {
			return
		}
		if len(enabled) == 0 {
			if ex.anyAlive() {
				ex.reportDeadlock()
			}
			return
		}
		if ex.steps >= ex.maxSteps {
			ex.truncated = true
			return
		}
		var tid ThreadID
		consulted := false
		switch {
		case len(enabled) == 1:
			tid = enabled[0]
		case ex.alg != nil:
			consulted = true
			tid = ex.alg.Next(ex.state)
			if !containsTID(enabled, tid) {
				panic(fmt.Sprintf("sched: algorithm %s chose disabled thread T%d", ex.alg.Name(), tid))
			}
		default:
			tid = enabled[0]
		}
		if ex.atlas != nil && len(enabled) > 1 {
			ex.atlasDepth++
			ex.atlasHash = fnvMix(ex.atlasHash, uint64(tid)<<8|uint64(len(enabled)))
			ex.atlas.Decision(ex.atlasDepth, len(enabled), ex.atlasHash)
		}
		t := ex.threads[tid]
		ev := t.next
		ex.steps++
		ex.recordEvent(ev)
		if ex.tracer != nil {
			// Before grant: st still reflects the pre-event state, so the
			// tracer sees the enabled set the decision was drawn from.
			ex.tracer.Decide(Decision{
				Step: ex.steps - 1, Chosen: tid, Enabled: len(enabled), Consulted: consulted, Event: ev,
			}, ex.state)
		}
		nThreads := len(ex.threads)
		ex.grant(t)
		ex.primeNew()
		// The enabled set is rebuilt (for Observe and the next decision)
		// only when this step could have changed it. A pure event — a
		// shared-variable access or a yield — cannot block or unblock any
		// other thread, so if the executing thread republished an enabled
		// event and spawned nobody, the set of enabled TIDs is unchanged.
		if len(ex.threads) != nThreads || !ex.pureEvent(ev) ||
			t.state != tsReady || !ex.enabled(t) {
			enabled = ex.enabledTIDs()
		}
		if ex.alg != nil {
			ex.alg.Observe(ev, ex.state)
		}
	}
}

// pureEvent reports whether ev can never change another thread's
// enabledness: yields and accesses to plain shared variables qualify; any
// synchronization operation (including an OpRMW TryLock on a mutex) does
// not.
func (ex *Execution) pureEvent(ev Event) bool {
	switch ev.Kind {
	case OpYield:
		return true
	case OpRead, OpWrite, OpRMW:
		return ev.Obj != 0 && ex.objs[ev.Obj-1].kind == ObjVar
	}
	return false
}

func containsTID(tids []ThreadID, tid ThreadID) bool {
	for _, t := range tids {
		if t == tid {
			return true
		}
	}
	return false
}

func (ex *Execution) recordEvent(ev Event) {
	if ex.filter == nil || ex.filter(ev) {
		ex.ilvHash = fnvMix(fnvMix(ex.ilvHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	if ex.interesting != nil && ex.interesting(ev) {
		ex.deltaHash = fnvMix(fnvMix(ex.deltaHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	ex.classEvent(ev)
	if ex.opts.RecordTrace {
		ex.trace = append(ex.trace, ev)
	}
}

// classReader reports whether k only observes its object: concurrent
// readers commute with each other, so the class fingerprint folds them in
// order-insensitively. Every other object operation is writer-like — it
// orders against all accesses of the same object. This is the dependence
// relation of DESIGN.md §11.
func classReader(k OpKind) bool { return k == OpRead || k == OpRLock || k == OpRUnlock }

// classEvent folds ev into the commutation-canonical class fingerprint.
// Each thread carries a hash-clock (Thread.clock) chaining its own events;
// each object carries the hash of its last writer-like event and a
// commutative sum of reader hashes since (objState.lastWriteH/readAcc).
// An event's hash mixes its thread clock with the clocks of its dependence
// predecessors — the last write (readers), the last write plus the pending
// readers (writers), or the joined thread's final clock (join) — and the
// schedule fingerprint is the wrapping sum of event hashes, so independent
// events commute and dependent reorderings do not.
func (ex *Execution) classEvent(ev Event) {
	t := ex.threads[ev.TID]
	h := fnvMix(t.clock, uint64(ev.Kind)<<32^ev.ObjHash)
	switch {
	case ev.Obj != 0:
		o := &ex.objs[ev.Obj-1]
		if classReader(ev.Kind) {
			h = fnvMix(h, o.lastWriteH)
			o.readAcc += h
		} else {
			h = fnvMix(fnvMix(h, o.lastWriteH), o.readAcc)
			o.lastWriteH = h
			o.readAcc = 0
		}
	case ev.Kind == OpJoin:
		h = fnvMix(h, ex.threads[t.joinTarget].clock)
	}
	t.clock = h
	ex.classAcc += h
}

// pump is the coroutine trampoline: it resumes t and, each time the
// resumed coroutine parks naming a successor in ex.resume, transfers the
// baton onward. It returns when a coroutine parks (or exits) with no
// successor — the schedule is over, bailed to the slow loop, or (slow
// path) the thread published its next event. An engine or algorithm panic
// inside a coroutine propagates out of the resume call onto this stack.
func (ex *Execution) pump(t *Thread) {
	for {
		ex.resume = nil
		t.coNext()
		t = ex.resume
		if t == nil {
			return
		}
	}
}

// grant hands the baton to t, which executes its published event and runs
// until it parks at its next event, sleeps, or exits. grant returns once the
// baton is back with the scheduler.
func (ex *Execution) grant(t *Thread) {
	t.state = tsRunning
	ex.pump(t)
}

// primeNew runs every newly spawned thread up to its first event so its
// next event becomes visible for scheduling, then notifies the algorithm of
// the spawns. Priming can cascade (a child may spawn grandchildren before
// its first event), so iteration is by index over the growing thread list.
func (ex *Execution) primeNew() {
	for i := 0; i < len(ex.threads); i++ {
		if t := ex.threads[i]; t.state == tsUnprimed {
			ex.unprimed--
			t.state = tsRunning
			ex.pump(t)
		}
	}
	if len(ex.pending) == 0 {
		return
	}
	pending := ex.pending
	ex.pending = ex.pending[:0]
	if so, ok := ex.alg.(SpawnObserver); ok {
		for _, p := range pending {
			so.ObserveSpawn(p.parent, p.child, ex.state)
		}
	}
}

func (ex *Execution) enabledTIDs() []ThreadID {
	enabled := ex.state.enabled[:0]
	for _, t := range ex.threads {
		if ex.enabled(t) {
			enabled = append(enabled, t.id)
		}
	}
	ex.state.enabled = enabled
	return enabled
}

func (ex *Execution) enabled(t *Thread) bool {
	if t.state != tsReady {
		return false
	}
	switch t.next.Kind {
	case OpLock, OpWakeLock:
		o := &ex.objs[t.next.Obj-1]
		// A writer additionally waits for readers to drain (rwmutex).
		return o.owner == -1 && o.readers == 0
	case OpRLock:
		return ex.objs[t.next.Obj-1].owner == -1
	case OpSemP:
		return ex.objs[t.next.Obj-1].sem > 0
	case OpJoin:
		return ex.threads[t.joinTarget].state == tsFinished
	default:
		return true
	}
}

func (ex *Execution) anyAlive() bool {
	for _, t := range ex.threads {
		if t.state != tsFinished {
			return true
		}
	}
	return false
}

func (ex *Execution) reportDeadlock() {
	msg := "no enabled threads; blocked:"
	for _, t := range ex.threads {
		switch t.state {
		case tsSleeping:
			msg += fmt.Sprintf(" T%d(wait)", t.id)
		case tsReady:
			msg += fmt.Sprintf(" T%d(%s)", t.id, t.next.Kind)
		}
	}
	ex.fail(&Failure{Kind: FailDeadlock, BugID: "deadlock", Msg: msg, TID: -1, Step: ex.steps})
}

func (ex *Execution) fail(f *Failure) {
	if ex.failure == nil {
		ex.failure = f
	}
	ex.aborted = true
}

// killRemaining unwinds every live thread. All live threads are parked
// (mid-schedule, sleeping, or never started), so each kill resume returns
// once the coroutine has re-parked finished.
func (ex *Execution) killRemaining() {
	ex.aborted = true
	ex.killing = true
	for _, t := range ex.threads {
		if t.state != tsFinished {
			t.killed = true
			ex.pump(t)
		}
	}
}

// intern canonicalizes the scratch bytes in ex.nameBuf into a string,
// reusing the copy a previous schedule produced. The map lookup with a
// []byte-to-string conversion does not allocate; only the first schedule
// of a pooled Execution pays for the string.
func (ex *Execution) intern() string {
	if s, ok := ex.names[string(ex.nameBuf)]; ok {
		return s
	}
	s := string(ex.nameBuf)
	ex.names[s] = s
	return s
}

func (ex *Execution) addThread(parent *Thread, body func(*Thread)) *Thread {
	if p := ex.primingT; p != nil {
		// A prologue that spawns pins its thread to real priming: deferring
		// it would shift the spawn after later threads' priming, changing
		// TID assignment.
		p.primePoison = true
	}
	var t *Thread
	if n := len(ex.freeThreads); n > 0 {
		// Recycle a finished thread's struct and coroutine. In a
		// persistent execution its worker coroutine is parked waiting for
		// the next schedule's priming resume; in a one-shot execution the
		// old coroutine has fully exited (and the struct is never reused —
		// a one-shot Execution runs a single schedule).
		t = ex.freeThreads[n-1]
		ex.freeThreads = ex.freeThreads[:n-1]
		t.next = Event{}
		t.state = tsUnprimed
		t.seq = 0
		t.spawned = 0
		t.joinTarget = 0
		t.gated = 0
		t.joinWaiters = 0
		t.deferredPrime = false
		t.primePoison = false
		t.killed = false
		t.heldMutex = t.heldMutex[:0]
	} else {
		t = &Thread{}
		t.coNext, t.coStop = iter.Pull(iter.Seq[struct{}](t.workerSeq))
		// Run the fresh coroutine to its first park, capturing its yield.
		t.coNext()
	}
	t.ex = ex
	t.id = len(ex.threads)
	t.body = body
	ex.liveCount++
	ex.unprimed++
	if t.id >= maxFastThreads {
		ex.bailReq = true
	}
	if parent == nil {
		t.path = "0"
		t.parent = -1
		t.pathHash = rootPathHash
		t.memoP, t.memoI = -1, 0
		t.clock = fnvMix(0, rootPathHash)
	} else {
		idx := parent.spawned
		t.memoP, t.memoI = int32(parent.id), int32(idx)
		for len(ex.spawnMemo) <= parent.id {
			ex.spawnMemo = append(ex.spawnMemo, nil)
		}
		row := ex.spawnMemo[parent.id]
		if idx < len(row) && row[idx].parentPath == parent.path {
			t.path = row[idx].path
			t.pathHash = row[idx].hash
		} else {
			buf := append(ex.nameBuf[:0], parent.path...)
			buf = append(buf, '.')
			ex.nameBuf = strconv.AppendInt(buf, int64(idx), 10)
			t.path = ex.intern()
			t.pathHash = fnv1a(fnvOffset, t.path)
			for len(row) <= idx {
				row = append(row, spawnPath{})
			}
			row[idx] = spawnPath{parentPath: parent.path, path: t.path, hash: t.pathHash}
			ex.spawnMemo[parent.id] = row
		}
		parent.spawned++
		t.parent = parent.id
		// Spawn edge of the class fingerprint: the child's clock chains
		// from the parent's clock at spawn time, which is a class
		// invariant (the parent's event prefix up to the spawn is fixed by
		// program order and its hash by the dependence structure).
		t.clock = fnvMix(parent.clock, t.pathHash)
	}
	ex.threads = append(ex.threads, t)
	ex.byPathDirty = true
	return t
}

// rootPathHash is fnv1a(fnvOffset, "0"), the root thread's path hash.
var rootPathHash = fnv1a(fnvOffset, "0")

func (ex *Execution) addObj(o objState, name, autoPrefix string) ObjID {
	if p := ex.primingT; p != nil {
		// A prologue that creates an object pins its thread to real priming:
		// deferring it would shift object-creation order and with it the
		// object IDs every later name and trace depends on.
		p.primePoison = true
	}
	if name == "" {
		buf := append(ex.nameBuf[:0], autoPrefix...)
		buf = append(buf, '#')
		ex.nameBuf = strconv.AppendInt(buf, int64(len(ex.objs)), 10)
		name = ex.intern()
	}
	if n := ex.objSeen[name]; n > 0 {
		ex.objSeen[name] = n + 1
		buf := append(ex.nameBuf[:0], name...)
		buf = append(buf, '~')
		ex.nameBuf = strconv.AppendInt(buf, int64(n), 10)
		name = ex.intern()
	} else {
		ex.objSeen[name] = 1
	}
	o.name = name
	o.hash = fnv1a(fnvOffset, name)
	if n := len(ex.objs); n < cap(ex.objs) {
		// Recycle the stale element's waiter buffer (the previous schedule
		// of a pooled Execution created the same objects in the same order).
		o.waiters = ex.objs[: n+1 : n+1][n].waiters[:0]
	}
	ex.objs = append(ex.objs, o)
	return ObjID(len(ex.objs))
}

func (ex *Execution) obj(id ObjID) *objState { return &ex.objs[id-1] }
