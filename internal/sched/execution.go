package sched

import (
	"fmt"
	"math/rand"
)

type threadState uint8

const (
	tsUnprimed threadState = iota // goroutine started, first event not yet published
	tsReady                       // parked with a published next event
	tsRunning                     // holds the baton (transient)
	tsSleeping                    // asleep in a condition wait, no next event
	tsFinished                    // exited
)

// Execution drives one schedule of one program. It is created by Run and is
// single-use. All state is confined: exactly one goroutine (a virtual
// thread or the scheduler loop) runs at any time, so no field needs locking.
type Execution struct {
	opts     Options
	alg      Algorithm
	progRand *rand.Rand

	threads []*Thread
	byPath  map[string]ThreadID
	objs    []objState
	objSeen map[string]int // name collision counter

	toSched chan *Thread
	pending []spawnRec // spawns awaiting priming + algorithm notification

	steps     int
	maxSteps  int
	failure   *Failure
	truncated bool
	aborted   bool
	behavior  string

	trace       []Event
	ilvHash     uint64
	deltaHash   uint64
	interesting func(Event) bool
	filter      func(Event) bool

	state *State
}

type spawnRec struct {
	parent, child ThreadID
}

type objState struct {
	kind ObjKind
	name string
	hash uint64

	val int64 // ObjVar
	ref any   // ObjVar (Ref payload)

	owner   ThreadID // ObjMutex: writer owner, -1 when free
	readers int      // ObjMutex: active reader count (RWMutex)

	condMu  ObjID      // ObjCond: associated mutex
	waiters []ThreadID // ObjCond: sleeping threads, FIFO

	sem int // ObjSem: current count
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

// HashName returns the stable 64-bit hash used for Event.ObjHash and
// Event.PathHash, so Δ predicates can match object names without strings.
func HashName(name string) uint64 { return fnv1a(fnvOffset, name) }

func fnv1a(h uint64, data string) uint64 {
	for i := 0; i < len(data); i++ {
		h = (h ^ uint64(data[i])) * fnvPrime
	}
	return h
}

func fnvMix(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// Run executes one schedule of prog under alg and returns its Result.
// A nil alg falls back to always picking the lowest enabled TID (a
// deterministic left-most schedule, useful for smoke tests).
func Run(prog func(*Thread), alg Algorithm, opts Options) *Result {
	ex := &Execution{
		opts:     opts,
		alg:      alg,
		progRand: rand.New(rand.NewSource(opts.ProgSeed + 1)),
		byPath:   make(map[string]ThreadID),
		objSeen:  make(map[string]int),
		toSched:  make(chan *Thread),
		maxSteps: opts.MaxSteps,
		ilvHash:  fnvOffset,
		filter:   opts.TraceFilter,
	}
	if ex.maxSteps <= 0 {
		ex.maxSteps = DefaultMaxSteps
	}
	if opts.Info != nil && opts.Info.Interesting != nil {
		ex.interesting = opts.Info.Interesting
		ex.deltaHash = fnvOffset
	}
	ex.state = &State{ex: ex}
	if alg != nil {
		alg.Begin(opts.Info, rand.New(rand.NewSource(opts.Seed+1)))
	}

	root := ex.addThread(nil, prog)
	go root.trampoline()
	ex.primeNew()
	ex.loop()
	ex.killRemaining()

	res := &Result{
		Failure:          ex.failure,
		Steps:            ex.steps,
		Truncated:        ex.truncated,
		InterleavingHash: ex.ilvHash,
		DeltaHash:        ex.deltaHash,
		Behavior:         ex.behavior,
		Trace:            ex.trace,
		Threads:          len(ex.threads),
	}
	if opts.RecordTrace {
		res.ThreadPaths = make([]string, len(ex.threads))
		for i, t := range ex.threads {
			res.ThreadPaths[i] = t.path
		}
	}
	return res
}

func (ex *Execution) loop() {
	for {
		if ex.failure != nil {
			return
		}
		enabled := ex.enabledTIDs()
		if len(enabled) == 0 {
			if ex.anyAlive() {
				ex.reportDeadlock()
			}
			return
		}
		if ex.steps >= ex.maxSteps {
			ex.truncated = true
			return
		}
		var tid ThreadID
		switch {
		case len(enabled) == 1:
			tid = enabled[0]
		case ex.alg != nil:
			tid = ex.alg.Next(ex.state)
			if !containsTID(enabled, tid) {
				panic(fmt.Sprintf("sched: algorithm %s chose disabled thread T%d", ex.alg.Name(), tid))
			}
		default:
			tid = enabled[0]
		}
		t := ex.threads[tid]
		ev := t.next
		ex.steps++
		ex.recordEvent(ev)
		ex.grant(t)
		ex.primeNew()
		if ex.alg != nil {
			ex.enabledTIDs() // refresh for Observe (e.g. POS race resampling)
			ex.alg.Observe(ev, ex.state)
		}
	}
}

func containsTID(tids []ThreadID, tid ThreadID) bool {
	for _, t := range tids {
		if t == tid {
			return true
		}
	}
	return false
}

func (ex *Execution) recordEvent(ev Event) {
	if ex.filter == nil || ex.filter(ev) {
		ex.ilvHash = fnvMix(fnvMix(ex.ilvHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	if ex.interesting != nil && ex.interesting(ev) {
		ex.deltaHash = fnvMix(fnvMix(ex.deltaHash, ev.PathHash), uint64(ev.Kind)<<32^ev.ObjHash)
	}
	if ex.opts.RecordTrace {
		ex.trace = append(ex.trace, ev)
	}
}

// grant hands the baton to t, which executes its published event and runs
// until it parks at its next event, sleeps, or exits. grant returns once the
// baton is back with the scheduler.
func (ex *Execution) grant(t *Thread) {
	t.state = tsRunning
	t.gate <- step{}
	<-ex.toSched
}

// primeNew runs every newly spawned thread up to its first event so its
// next event becomes visible for scheduling, then notifies the algorithm of
// the spawns. Priming can cascade (a child may spawn grandchildren before
// its first event), so iteration is by index over the growing thread list.
func (ex *Execution) primeNew() {
	for i := 0; i < len(ex.threads); i++ {
		if t := ex.threads[i]; t.state == tsUnprimed {
			t.state = tsRunning
			t.gate <- step{}
			<-ex.toSched
		}
	}
	if len(ex.pending) == 0 {
		return
	}
	pending := ex.pending
	ex.pending = ex.pending[:0]
	if so, ok := ex.alg.(SpawnObserver); ok {
		for _, p := range pending {
			so.ObserveSpawn(p.parent, p.child, ex.state)
		}
	}
}

func (ex *Execution) enabledTIDs() []ThreadID {
	enabled := ex.state.enabled[:0]
	for _, t := range ex.threads {
		if ex.enabled(t) {
			enabled = append(enabled, t.id)
		}
	}
	ex.state.enabled = enabled
	return enabled
}

func (ex *Execution) enabled(t *Thread) bool {
	if t.state != tsReady {
		return false
	}
	switch t.next.Kind {
	case OpLock, OpWakeLock:
		o := &ex.objs[t.next.Obj-1]
		// A writer additionally waits for readers to drain (rwmutex).
		return o.owner == -1 && o.readers == 0
	case OpRLock:
		return ex.objs[t.next.Obj-1].owner == -1
	case OpSemP:
		return ex.objs[t.next.Obj-1].sem > 0
	case OpJoin:
		return ex.threads[t.joinTarget].state == tsFinished
	default:
		return true
	}
}

func (ex *Execution) anyAlive() bool {
	for _, t := range ex.threads {
		if t.state != tsFinished {
			return true
		}
	}
	return false
}

func (ex *Execution) reportDeadlock() {
	msg := "no enabled threads; blocked:"
	for _, t := range ex.threads {
		switch t.state {
		case tsSleeping:
			msg += fmt.Sprintf(" T%d(wait)", t.id)
		case tsReady:
			msg += fmt.Sprintf(" T%d(%s)", t.id, t.next.Kind)
		}
	}
	ex.fail(&Failure{Kind: FailDeadlock, BugID: "deadlock", Msg: msg, TID: -1, Step: ex.steps})
}

func (ex *Execution) fail(f *Failure) {
	if ex.failure == nil {
		ex.failure = f
	}
	ex.aborted = true
}

// killRemaining unwinds every live thread. All live threads are blocked on
// their gate (parked, sleeping, or unprimed), so each kill grant produces
// exactly one exit notification.
func (ex *Execution) killRemaining() {
	ex.aborted = true
	for _, t := range ex.threads {
		if t.state != tsFinished {
			t.gate <- step{kill: true}
			<-ex.toSched
		}
	}
}

func (ex *Execution) addThread(parent *Thread, body func(*Thread)) *Thread {
	t := &Thread{
		ex:   ex,
		id:   len(ex.threads),
		body: body,
		gate: make(chan step),
	}
	if parent == nil {
		t.path = "0"
		t.parent = -1
	} else {
		t.path = fmt.Sprintf("%s.%d", parent.path, parent.spawned)
		parent.spawned++
		t.parent = parent.id
	}
	t.pathHash = fnv1a(fnvOffset, t.path)
	ex.threads = append(ex.threads, t)
	ex.byPath[t.path] = t.id
	return t
}

func (ex *Execution) addObj(o objState, name, autoPrefix string) ObjID {
	if name == "" {
		name = fmt.Sprintf("%s#%d", autoPrefix, len(ex.objs))
	}
	if n := ex.objSeen[name]; n > 0 {
		ex.objSeen[name] = n + 1
		name = fmt.Sprintf("%s~%d", name, n)
	} else {
		ex.objSeen[name] = 1
	}
	o.name = name
	o.hash = fnv1a(fnvOffset, name)
	ex.objs = append(ex.objs, o)
	return ObjID(len(ex.objs))
}

func (ex *Execution) obj(id ObjID) *objState { return &ex.objs[id-1] }
