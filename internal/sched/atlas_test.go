package sched

import (
	"testing"

	"surw/internal/atlas"
)

// TestAtlasNonPerturbation pins the atlas covenant at the engine level:
// attaching an Accum never changes a schedule — results (hashes, traces,
// failures) are bit-identical with and without it, across every program
// class, on both the batched fast path and the verbatim slow loop.
func TestAtlasNonPerturbation(t *testing.T) {
	for _, batching := range []bool{false, true} {
		acc := &atlas.Accum{}
		plainPool, atlasPool := NewPool(), NewPool()
		for name, prog := range poolPrograms() {
			for seed := int64(0); seed < 25; seed++ {
				opts := Options{Base: Base{MaxSteps: 300, Seed: seed}, RecordTrace: true, DisableBatching: !batching}
				plain := plainPool.Run(prog, &pickRandom{}, opts)
				opts.Atlas = acc
				mapped := atlasPool.Run(prog, &pickRandom{}, opts)
				resultsEqual(t, name, seed, plain, mapped)
			}
		}
		if acc.Schedules() == 0 {
			t.Fatalf("batching=%v: atlas saw no schedules", batching)
		}
	}
}

// TestAtlasNonPerturbationCheckpointed covers the RunPrefix/RunFrom path:
// checkpointed replays with the atlas attached stay bit-identical, and —
// because a captured prefix contains only forced (single-enabled) steps —
// replayed schedules report decisions at the same depths as full runs.
func TestAtlasNonPerturbationCheckpointed(t *testing.T) {
	prog := poolPrograms()["vars"]
	plainPool, atlasPool := NewPool(), NewPool()
	acc := &atlas.Accum{}

	plainFirst, plainCp := plainPool.RunPrefix(prog, &pickRandom{}, Options{Base: Base{Seed: 1}})
	mappedFirst, mappedCp := atlasPool.RunPrefix(prog, &pickRandom{}, Options{Base: Base{Seed: 1}, Atlas: acc})
	resultsEqual(t, "prefix", 1, plainFirst, mappedFirst)

	for seed := int64(2); seed < 30; seed++ {
		plain := plainPool.RunFrom(plainCp, prog, &pickRandom{}, Options{Base: Base{Seed: seed}})
		mapped := atlasPool.RunFrom(mappedCp, prog, &pickRandom{}, Options{Base: Base{Seed: seed}, Atlas: acc})
		resultsEqual(t, "replay", seed, plain, mapped)
	}

	// Full (non-checkpointed) runs of the same seeds on a third pool must
	// land their decisions at the same depths: replay skips forced steps
	// only, never true decision points.
	accFull := &atlas.Accum{}
	fullPool := NewPool()
	fullPool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 1}, Atlas: accFull})
	for seed := int64(2); seed < 30; seed++ {
		fullPool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}, Atlas: accFull})
	}
	snap := acc.Snapshot()
	snapFull := accFull.Snapshot()
	if snap.Decisions != snapFull.Decisions {
		t.Fatalf("checkpointed runs recorded %d decisions, full runs %d", snap.Decisions, snapFull.Decisions)
	}
	if len(snap.Depths) != len(snapFull.Depths) {
		t.Fatalf("depth profiles diverged: %d vs %d depths", len(snap.Depths), len(snapFull.Depths))
	}
	for i := range snap.Depths {
		if snap.Depths[i].Depth != snapFull.Depths[i].Depth || snap.Depths[i].Decisions != snapFull.Depths[i].Decisions {
			t.Fatalf("depth %d: checkpointed %+v vs full %+v", i, snap.Depths[i], snapFull.Depths[i])
		}
	}
}

// TestAtlasCountsBitshift sanity-checks the cartography on the canonical
// two-writer program: every schedule records at least one true decision,
// per-depth branch histograms sum to the depth's decision count, and the
// depth-4 density grid is populated.
func TestAtlasCountsBitshift(t *testing.T) {
	reg := atlas.New()
	cell := reg.Cell("vars", "pickRandom")
	pool := NewPool()
	prog := poolPrograms()["vars"]
	const n = 64
	for seed := int64(0); seed < n; seed++ {
		r := pool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: seed}, Atlas: cell.Accum()})
		cell.ObserveSchedule(r.ClassHash)
	}
	snap := reg.Snapshot()
	if len(snap.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(snap.Cells))
	}
	cs := snap.Cells[0]
	if cs.Schedules != n {
		t.Fatalf("schedules = %d, want %d", cs.Schedules, n)
	}
	if cs.Decisions == 0 || cs.MaxDepth == 0 {
		t.Fatalf("no decisions recorded: %+v", cs)
	}
	for _, p := range cs.Depths {
		var sum uint64
		for _, b := range p.Branch {
			sum += b
		}
		if sum != p.Decisions {
			t.Fatalf("depth %d: branch histogram sums to %d, want %d", p.Depth, sum, p.Decisions)
		}
		if p.MeanEnabled() < 2 {
			t.Fatalf("depth %d: mean enabled %.2f < 2 at a true decision point", p.Depth, p.MeanEnabled())
		}
	}
	if len(cs.Grids) == 0 || cs.Grids[0].Depth != atlas.GridDepths[0] || cs.Grids[0].Samples == 0 {
		t.Fatalf("depth-%d grid not populated: %+v", atlas.GridDepths[0], cs.Grids)
	}
	if cs.Uniformity == nil || cs.Uniformity.Samples != n {
		t.Fatalf("uniformity tracker missing or short: %+v", cs.Uniformity)
	}
}

// TestAtlasAttachedNoExtraAllocs holds the attached-atlas hot path to the
// same steady-state allocation count as the nil-atlas path: the engine
// side of the atlas is fixed atomic counters, nothing else.
func TestAtlasAttachedNoExtraAllocs(t *testing.T) {
	prog := poolPrograms()["vars"]
	acc := &atlas.Accum{}
	pool := NewPool()
	pool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 0}, Atlas: acc}) // warm-up
	with := testing.AllocsPerRun(50, func() {
		pool.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 1}, Atlas: acc})
	})
	pool2 := NewPool()
	pool2.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 0}})
	without := testing.AllocsPerRun(50, func() {
		pool2.Run(prog, &pickRandom{}, Options{Base: Base{Seed: 1}})
	})
	if with > without {
		t.Fatalf("attached atlas allocates %.0f/schedule, nil atlas %.0f; attachment must be free", with, without)
	}
}
