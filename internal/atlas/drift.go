package atlas

import "surw/internal/stats"

// Uniformity-drift thresholds. The alarm is deliberately conservative: a
// genuinely uniform sampler's p-value is itself uniform on (0,1), and the
// tracker re-tests every driftCheckEvery samples with a latched alarm, so
// the false-alarm threshold must sit far below any plausible check count
// times a per-check tolerance. A biased sampler's p collapses toward zero
// exponentially in the sample count, so 1e-6 loses no sensitivity.
const (
	// DriftAlarmP is the p-value below which a cell is declared drifted.
	DriftAlarmP = 1e-6
	// driftCheckEvery is how often (in observed schedules) the streaming
	// tracker recomputes the chi-square.
	driftCheckEvery = 64
	// driftMinSamples is the minimum stream length before the alarm can
	// arm; below it the chi-square approximation is too coarse to trust.
	driftMinSamples = 200
)

// Drift is a streaming uniformity test over one cell's class-fingerprint
// stream: the observed-support chi-square against "every seen class
// equally likely", the distribution URW provably samples (and SURW
// samples within a Δ) on targets whose classes biject with filtered
// interleavings. The alarm latches: once a checkpoint rejects uniformity,
// the cell stays flagged even if later samples wash the statistic out.
type Drift struct {
	counts  map[uint64]int
	samples int
	alarmed bool
}

// Observe feeds one schedule's class fingerprint.
func (d *Drift) Observe(class uint64) {
	if d.counts == nil {
		d.counts = make(map[uint64]int)
	}
	d.counts[class]++
	d.samples++
	if d.samples%driftCheckEvery == 0 {
		if s := d.test(); s.Alarm {
			d.alarmed = true
		}
	}
}

// Snapshot returns the current test state, including the latched alarm.
func (d *Drift) Snapshot() DriftSnapshot {
	s := d.test()
	s.Alarm = s.Alarm || d.alarmed
	return s
}

func (d *Drift) test() DriftSnapshot {
	s := driftTest(stats.CountsOfMap(d.counts), d.samples)
	return s
}

// DriftSnapshot is the exported uniformity state of one cell.
type DriftSnapshot struct {
	Samples   int     `json:"samples"`
	Classes   int     `json:"classes"`
	ChiSquare float64 `json:"chi_square"`
	P         float64 `json:"p"`
	Alarm     bool    `json:"alarm"`
}

// DriftFromCounts computes the same uniformity test from a complete
// class-count map — the coordinator's path, where the per-cell counts are
// a pure function of the ingested run-store and need no latching to be
// deterministic.
func DriftFromCounts(counts map[uint64]int) DriftSnapshot {
	n := 0
	for _, c := range counts {
		n += c
	}
	return driftTest(stats.CountsOfMap(counts), n)
}

func driftTest(counts []int, samples int) DriftSnapshot {
	s := DriftSnapshot{Samples: samples, Classes: len(counts), P: 1}
	k := len(counts)
	if k < 2 {
		return s
	}
	s.ChiSquare = stats.ChiSquareUniform(counts, k)
	s.P = stats.ChiSquareSF(s.ChiSquare, k-1)
	s.Alarm = samples >= driftMinSamples && samples >= 3*k && s.P < DriftAlarmP
	return s
}
