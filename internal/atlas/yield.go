package atlas

import "surw/internal/stats"

// Yield is one cell's discovery-yield estimate: how much is left to find
// there, on a [0,1] scale, decomposed into the three signals it is built
// from. A cell fresh out of the plan scores 1 (maximum uncertainty); a
// cell whose class stream has gone all-duplicates and whose survival
// curve went flat early scores near 0.
type Yield struct {
	// Score is the combined estimate in [0,1].
	Score float64 `json:"score"`
	// GTUnseen is the Good-Turing unseen-class mass of the class-unique
	// stream: the probability the next schedule lands in a class never
	// seen before.
	GTUnseen float64 `json:"gt_unseen"`
	// SurvivalSlope is the late-half drop of the no-bug survival curve:
	// S(T/2) − S(T). Cells still finding first bugs late in the budget
	// have headroom.
	SurvivalSlope float64 `json:"survival_slope"`
	// NewClassRate is the marginal new-class rate over the most recent
	// session relative to the cell's lifetime average — a trend term:
	// near 1 means discovery has not slowed, near 0 means it has dried up.
	NewClassRate float64 `json:"new_class_rate"`
}

// yieldWeights: unseen mass is the direct estimator of the quantity we
// care about and dominates; the survival slope and the discovery trend
// are corrections for bug-finding and saturation dynamics.
const (
	wUnseen   = 0.5
	wSurvival = 0.25
	wTrend    = 0.25
)

// ScoreYield combines the three component signals (each clamped to
// [0,1]) into the final score.
func ScoreYield(gtUnseen, survivalSlope, newClassRate float64) float64 {
	return wUnseen*clamp01(gtUnseen) + wSurvival*clamp01(survivalSlope) + wTrend*clamp01(newClassRate)
}

// LateSurvivalDrop measures S(mid) − S(end) of a no-bug survival curve
// given as parallel schedule/surviving-fraction slices: the fraction of
// sessions whose first bug arrived in the second half of the budget.
// Returns 0 for empty or degenerate curves.
func LateSurvivalDrop(schedules []int, surviving []float64) float64 {
	n := len(schedules)
	if n == 0 || len(surviving) != n {
		return 0
	}
	end := schedules[n-1]
	if end <= 0 {
		return 0
	}
	mid := surviving[0]
	for i := 0; i < n; i++ {
		if schedules[i] <= end/2 {
			mid = surviving[i]
		}
	}
	drop := mid - surviving[n-1]
	return clamp01(drop)
}

// RecentNewRate compares the marginal new-class discovery rate over the
// most recent growth step to the lifetime average. sessions/distinct are
// the class-growth curve (distinct classes after each session count).
// Returns 1 (no evidence of slowdown) when the curve has fewer than two
// points, 0 when the last step found nothing new.
func RecentNewRate(sessions, distinct []int) float64 {
	n := len(sessions)
	if n < 2 || len(distinct) != n || sessions[n-1] <= 0 || distinct[n-1] <= 0 {
		return 1
	}
	lastSessions := sessions[n-1] - sessions[n-2]
	lastNew := distinct[n-1] - distinct[n-2]
	if lastSessions <= 0 {
		return 1
	}
	recent := float64(lastNew) / float64(lastSessions)
	avg := float64(distinct[n-1]) / float64(sessions[n-1])
	if avg <= 0 {
		return 1
	}
	return clamp01(recent / avg)
}

// leaseWeightFloor keeps every pending cell grantable: yield weighting
// reorders exploration, it must never starve a cell outright.
const leaseWeightFloor = 0.05

// LeaseWeight maps a cell's ingested class counts to a lease-grant
// weight: the Good-Turing unseen mass, floored. A cell with no coverage
// data yet weighs 1 — maximum uncertainty reads as maximum yield, so
// fresh cells are explored first rather than last.
func LeaseWeight(classCounts []int) float64 {
	if len(classCounts) == 0 {
		return 1
	}
	w := stats.GoodTuringUnseen(classCounts)
	if w < leaseWeightFloor {
		return leaseWeightFloor
	}
	return clamp01(w)
}

// Mix64 is SplitMix64's finalizer: a cheap, high-quality 64-bit mixing
// function used for the deterministic weighted lease pick (seeded from
// the campaign seed and the draw counter, so reruns replay identically).
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Unit maps a 64-bit hash to the unit interval [0,1).
func Unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

func clamp01(x float64) float64 {
	switch {
	case x < 0 || x != x: // NaN guards to 0
		return 0
	case x > 1:
		return 1
	}
	return x
}
