package atlas

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAccumDecisionBuckets(t *testing.T) {
	var a Accum
	a.BeginSchedule()
	// Three decisions down one schedule: depths 1, 2, 4 with varying n.
	a.Decision(1, 2, 0x11)
	a.Decision(2, 3, 0x22)
	a.Decision(4, 2, 0x1ff) // lands in the depth-4 grid, bucket 0xff
	cs := a.Snapshot()
	if cs.Schedules != 1 || cs.Decisions != 3 || cs.MaxDepth != 4 {
		t.Fatalf("header wrong: %+v", cs)
	}
	if len(cs.Depths) != 3 {
		t.Fatalf("want 3 populated depths, got %+v", cs.Depths)
	}
	d2 := cs.Depths[1]
	if d2.Depth != 2 || d2.Decisions != 1 || d2.EnabledSum != 3 || d2.Branch[3] != 1 {
		t.Fatalf("depth 2 profile wrong: %+v", d2)
	}
	if len(cs.Grids) != 1 || cs.Grids[0].Depth != 4 {
		t.Fatalf("want exactly the depth-4 grid populated, got %+v", cs.Grids)
	}
	g := cs.Grids[0]
	if g.Buckets[0xff] != 1 || g.Samples != 1 || g.Occupied != 1 || g.EntropyBits != 0 {
		t.Fatalf("grid bucketing wrong: %+v", g)
	}
}

func TestAccumFoldsOverflow(t *testing.T) {
	var a Accum
	a.Decision(MaxDepth+7, MaxBranch+9, 3) // deep + wide: folds, never drops
	cs := a.Snapshot()
	if cs.Decisions != 1 || cs.MaxDepth != MaxDepth {
		t.Fatalf("deep decision dropped: %+v", cs)
	}
	d := cs.Depths[0]
	if d.Depth != MaxDepth || d.Branch[MaxBranch] != 1 {
		t.Fatalf("overflow did not fold into the top buckets: %+v", d)
	}
}

func TestAccumZeroAlloc(t *testing.T) {
	var a Accum
	if n := testing.AllocsPerRun(100, func() {
		a.BeginSchedule()
		a.Decision(4, 3, 42)
	}); n != 0 {
		t.Fatalf("Decision allocates %.0f objects; must be zero", n)
	}
	var nilAcc *Accum
	if n := testing.AllocsPerRun(100, func() {
		nilAcc.BeginSchedule()
		nilAcc.Decision(4, 3, 42)
	}); n != 0 {
		t.Fatalf("nil accumulator allocates %.0f objects; must be zero", n)
	}
}

func TestDriftUniformStreamPasses(t *testing.T) {
	var d Drift
	// 64 classes, 16 samples each, interleaved: a perfectly uniform stream.
	for round := 0; round < 16; round++ {
		for class := uint64(0); class < 64; class++ {
			d.Observe(class)
		}
	}
	s := d.Snapshot()
	if s.Alarm {
		t.Fatalf("uniform stream tripped the drift alarm: %+v", s)
	}
	if s.P < 0.99 {
		t.Fatalf("exactly-uniform counts should score p≈1, got %+v", s)
	}
	if s.Samples != 1024 || s.Classes != 64 {
		t.Fatalf("stream accounting wrong: %+v", s)
	}
}

func TestDriftBiasedStreamAlarms(t *testing.T) {
	var d Drift
	// One dominant class with a thin tail: grossly non-uniform.
	for i := 0; i < 300; i++ {
		d.Observe(1)
	}
	for i := 0; i < 20; i++ {
		d.Observe(2)
		d.Observe(3)
	}
	s := d.Snapshot()
	if !s.Alarm {
		t.Fatalf("biased stream did not alarm: %+v", s)
	}
	if s.P >= DriftAlarmP {
		t.Fatalf("p = %g, want < %g", s.P, DriftAlarmP)
	}
}

func TestDriftAlarmLatches(t *testing.T) {
	var d Drift
	for i := 0; i < 320; i++ { // trip at an in-stream checkpoint
		d.Observe(1)
		if i%16 == 0 {
			d.Observe(uint64(100 + i))
		}
	}
	if !d.Snapshot().Alarm {
		t.Skip("stream did not trip mid-run; latching untestable here")
	}
	// Washing the statistic out afterwards must not clear the alarm.
	for class := uint64(0); class < 8; class++ {
		for i := 0; i < 400; i++ {
			d.Observe(1000 + class)
		}
	}
	if !d.Snapshot().Alarm {
		t.Fatal("drift alarm did not latch")
	}
}

func TestDriftSingleClassIsInconclusive(t *testing.T) {
	// A single observed class carries no within-support evidence: the
	// streaming test stays p=1. (Concentration shows up in the yield
	// signals — GT unseen ≈ 0 — not in the chi-square.)
	var d Drift
	for i := 0; i < 500; i++ {
		d.Observe(7)
	}
	if s := d.Snapshot(); s.Alarm || s.P != 1 {
		t.Fatalf("single-class stream should be inconclusive: %+v", s)
	}
}

func TestDriftFromCountsMatchesStream(t *testing.T) {
	var d Drift
	counts := map[uint64]int{1: 100, 2: 120, 3: 80, 4: 100}
	for c, n := range counts {
		for i := 0; i < n; i++ {
			d.Observe(c)
		}
	}
	a, b := d.test(), DriftFromCounts(counts)
	if a.ChiSquare != b.ChiSquare || a.P != b.P || a.Samples != b.Samples || a.Classes != b.Classes {
		t.Fatalf("stream %+v vs counts %+v", a, b)
	}
}

func TestYieldComponents(t *testing.T) {
	if d := LateSurvivalDrop([]int{0, 50, 100}, []float64{1, 0.9, 0.4}); d != 0.5 {
		t.Fatalf("late drop = %v, want 0.5", d)
	}
	if d := LateSurvivalDrop(nil, nil); d != 0 {
		t.Fatalf("empty curve drop = %v, want 0", d)
	}
	if r := RecentNewRate([]int{1, 2}, []int{10, 10}); r != 0 {
		t.Fatalf("dried-up growth rate = %v, want 0", r)
	}
	if r := RecentNewRate([]int{1}, []int{10}); r != 1 {
		t.Fatalf("single-point growth rate = %v, want 1 (no evidence)", r)
	}
	if r := RecentNewRate(nil, nil); r != 1 {
		t.Fatalf("no-curve growth rate = %v, want 1", r)
	}
	if s := ScoreYield(2, -1, 0.5); s != wUnseen*1+wTrend*0.5 {
		t.Fatalf("score clamping wrong: %v", s)
	}
	nan := 0.0
	nan /= nan
	if s := ScoreYield(nan, nan, nan); s != 0 {
		t.Fatalf("NaN components must score 0, got %v", s)
	}
}

func TestLeaseWeight(t *testing.T) {
	if w := LeaseWeight(nil); w != 1 {
		t.Fatalf("no-data cell weight = %v, want 1", w)
	}
	// All singletons: everything looks unseen.
	if w := LeaseWeight([]int{1, 1, 1, 1}); w != 1 {
		t.Fatalf("all-singleton weight = %v, want 1", w)
	}
	// Saturated cell: floor, never zero.
	if w := LeaseWeight([]int{500, 400}); w != leaseWeightFloor {
		t.Fatalf("saturated weight = %v, want floor %v", w, leaseWeightFloor)
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) || Mix64(42) == Mix64(43) {
		t.Fatal("Mix64 must be a deterministic injective-looking mix")
	}
	u := Unit(Mix64(42))
	if u < 0 || u >= 1 {
		t.Fatalf("Unit out of range: %v", u)
	}
}

func TestMergeCells(t *testing.T) {
	var a, b Accum
	a.BeginSchedule()
	a.Decision(1, 2, 1)
	a.Decision(4, 2, 9)
	b.BeginSchedule()
	b.BeginSchedule()
	b.Decision(1, 3, 2)
	b.Decision(2, 2, 5)
	ca, cb := a.Snapshot(), b.Snapshot()
	ca.Target, ca.Algorithm = "tgt", "URW"
	cb.Target, cb.Algorithm = "tgt", "URW"
	other := Accum{}
	other.BeginSchedule()
	co := other.Snapshot()
	co.Target, co.Algorithm = "aaa", "RW"

	merged := MergeCells([]CellSnapshot{ca}, []CellSnapshot{cb, co})
	if len(merged) != 2 {
		t.Fatalf("want 2 cells, got %d", len(merged))
	}
	if merged[0].Target != "aaa" {
		t.Fatalf("merged cells not sorted: %+v", merged)
	}
	m := merged[1]
	if m.Schedules != 3 || m.Decisions != 4 || m.MaxDepth != 4 {
		t.Fatalf("merged header wrong: %+v", m)
	}
	if len(m.Depths) != 3 || m.Depths[0].Decisions != 2 || m.Depths[0].EnabledSum != 5 {
		t.Fatalf("merged depth profile wrong: %+v", m.Depths)
	}
	// Merging must not alias the inputs.
	if &m.Depths[0].Branch[0] == &ca.Depths[0].Branch[0] {
		t.Fatal("merge aliased an input's branch histogram")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := New()
	c := reg.Cell("tgt", "URW")
	c.Accum().BeginSchedule()
	c.Accum().Decision(4, 2, 77)
	c.ObserveSchedule(1)
	c.ObserveSchedule(2)
	s := reg.Snapshot()
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != Version || len(back.Cells) != 1 || back.Cells[0].Uniformity == nil {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestSVGRenders(t *testing.T) {
	reg := New()
	c := reg.Cell("tgt", "URW")
	for i := uint64(0); i < 300; i++ {
		c.Accum().BeginSchedule()
		c.Accum().Decision(1, 2, Mix64(i))
		c.Accum().Decision(4, 3, Mix64(i*7))
		c.ObserveSchedule(i % 16)
	}
	s := reg.Snapshot()
	cs := s.Cells[0]
	for name, svg := range map[string]string{
		"heatmap": HeatmapSVG(cs),
		"depth":   DepthProfileSVG(cs),
		"doc":     DocumentSVG(s),
	} {
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Fatalf("%s: not an svg element: %.80s", name, svg)
		}
		if strings.Contains(svg, "NaN") {
			t.Fatalf("%s: rendered NaN", name)
		}
	}
	// Degenerate cells render labelled empty frames, not nothing.
	empty := CellSnapshot{Target: "t", Algorithm: "a"}
	if !strings.Contains(HeatmapSVG(empty), "no density samples") {
		t.Fatal("empty heatmap lacks placeholder")
	}
	if !strings.Contains(DepthProfileSVG(empty), "no decisions recorded") {
		t.Fatal("empty depth profile lacks placeholder")
	}
}
