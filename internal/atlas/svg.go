package atlas

// Inline-SVG rendering for the dashboard and `surwobs -atlas -out`: a
// sample-density heatmap per grid depth and a depth/branching profile.
// Pure string building, no templates — the same renderer serves the
// HTML dashboard (wrapped as template.HTML) and standalone .svg export.

import (
	"fmt"
	"math"
	"strings"
)

const (
	heatCell = 11 // px per bucket cell
	heatSide = 16 // 16×16 = GridSize buckets
	heatGap  = 26 // gap between grids, holds the depth label
	heatTop  = 16 // label row above each grid
)

// HeatmapSVG renders the cell's sample-density grids side by side as one
// inline SVG. Bucket colour scales with log(count) so a uniform sampler
// reads as a flat field and concentration as hot spots. Cells with no
// grid samples yet render a labelled empty frame rather than nothing.
func HeatmapSVG(cs CellSnapshot) string {
	grids := cs.Grids
	n := len(grids)
	if n == 0 {
		n = 1
	}
	w := n*(heatSide*heatCell+heatGap) - heatGap
	h := heatTop + heatSide*heatCell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="atlas-heatmap" xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	if len(grids) == 0 {
		b.WriteString(`<text x="4" y="12" class="lbl" font-size="11" fill="#667">no density samples yet</text>`)
		fmt.Fprintf(&b, `<rect x="0" y="%d" width="%d" height="%d" fill="none" stroke="#ccd"/>`, heatTop, heatSide*heatCell, heatSide*heatCell)
	}
	for gi, g := range grids {
		x0 := gi * (heatSide*heatCell + heatGap)
		fmt.Fprintf(&b, `<text x="%d" y="12" font-size="11" fill="#667">depth %d · %d samples · %d/%d buckets · %.1f bits</text>`,
			x0, g.Depth, g.Samples, g.Occupied, len(g.Buckets), g.EntropyBits)
		var max float64
		for _, c := range g.Buckets {
			if f := float64(c); f > max {
				max = f
			}
		}
		for i, c := range g.Buckets {
			x := x0 + (i%heatSide)*heatCell
			y := heatTop + (i/heatSide)*heatCell
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
				x, y, heatCell-1, heatCell-1, heatColor(float64(c), max))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// heatColor maps a bucket count to a white→deep-blue ramp on a log scale.
func heatColor(c, max float64) string {
	if c <= 0 || max <= 0 {
		return "#f4f5f7"
	}
	t := math.Log1p(c) / math.Log1p(max) // (0,1]
	// interpolate #e8ecf4 → #123a8c
	r := int(232 + t*(18-232))
	g := int(236 + t*(58-236))
	bl := int(244 + t*(140-244))
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

const (
	profW    = 320
	profH    = 120
	profBase = 100 // baseline y of the bars
)

// DepthProfileSVG renders the decision-count-by-depth profile as bars,
// with the mean enabled-set size annotated as a polyline on a secondary
// scale. Empty profiles render a labelled empty frame.
func DepthProfileSVG(cs CellSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="atlas-depth" xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, profW, profH, profW, profH)
	fmt.Fprintf(&b, `<line x1="0" y1="%d" x2="%d" y2="%d" stroke="#ccd"/>`, profBase, profW, profBase)
	if len(cs.Depths) == 0 {
		b.WriteString(`<text x="4" y="14" font-size="11" fill="#667">no decisions recorded yet</text></svg>`)
		return b.String()
	}
	maxDepth := cs.Depths[len(cs.Depths)-1].Depth
	var maxCount uint64
	var maxEnabled float64
	for _, p := range cs.Depths {
		if p.Decisions > maxCount {
			maxCount = p.Decisions
		}
		if m := p.MeanEnabled(); m > maxEnabled {
			maxEnabled = m
		}
	}
	bw := profW / (maxDepth + 1)
	if bw < 2 {
		bw = 2
	}
	for _, p := range cs.Depths {
		hh := int(float64(profBase-18) * float64(p.Decisions) / float64(maxCount))
		if hh < 1 {
			hh = 1
		}
		x := (p.Depth - 1) * bw
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#4a6fd0"><title>depth %d: %d decisions, mean enabled %.2f</title></rect>`,
			x, profBase-hh, bw-1, hh, p.Depth, p.Decisions, p.MeanEnabled())
	}
	if maxEnabled > 0 {
		var pts []string
		for _, p := range cs.Depths {
			x := (p.Depth-1)*bw + bw/2
			y := profBase - int(float64(profBase-18)*p.MeanEnabled()/maxEnabled)
			pts = append(pts, fmt.Sprintf("%d,%d", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#d07a2a" stroke-width="1.5"/>`, strings.Join(pts, " "))
	}
	fmt.Fprintf(&b, `<text x="4" y="%d" font-size="10" fill="#667">decision depth 1–%d · bars: decisions · line: mean enabled (max %.1f)</text>`,
		profH-4, maxDepth, maxEnabled)
	b.WriteString(`</svg>`)
	return b.String()
}

// DocumentSVG wraps every cell's heatmap and depth profile into one
// standalone SVG document, stacked vertically — the `surwobs -atlas -out`
// artifact.
func DocumentSVG(s *Snapshot) string {
	const rowH = heatTop + heatSide*heatCell + profH + 44
	w := NumGrids*(heatSide*heatCell+heatGap) - heatGap
	if w < profW {
		w = profW
	}
	h := rowH * len(s.Cells)
	if h == 0 {
		h = 24
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w+16, h, w+16, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	for i, cs := range s.Cells {
		y := i * rowH
		label := fmt.Sprintf("%s / %s — %d schedules, %d decisions, max depth %d",
			cs.Target, cs.Algorithm, cs.Schedules, cs.Decisions, cs.MaxDepth)
		if cs.Uniformity != nil {
			label += fmt.Sprintf(", uniformity p=%.3g", cs.Uniformity.P)
			if cs.Uniformity.Alarm {
				label += " DRIFT"
			}
		}
		fmt.Fprintf(&b, `<text x="8" y="%d" font-size="12" fill="#223">%s</text>`, y+14, htmlEscape(label))
		fmt.Fprintf(&b, `<g transform="translate(8,%d)">%s</g>`, y+20, HeatmapSVG(cs))
		fmt.Fprintf(&b, `<g transform="translate(8,%d)">%s</g>`, y+20+heatTop+heatSide*heatCell+4, DepthProfileSVG(cs))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
