// Package atlas builds a live map of the schedule space a campaign is
// exploring — the "exploration atlas". It is assembled incrementally from
// data the engine already produces at every scheduling decision (the
// enabled-set size, the chosen thread, and a running prefix hash), so
// attaching it never changes a schedule: the engine folds three integers
// into fixed-size atomic counters and nothing else.
//
// The atlas answers three questions the aggregate tables cannot:
//
//   - Cartography: how does the space branch? Per-depth decision counts,
//     enabled-set histograms, and a sample-density map that buckets
//     decision-prefix hashes at depths {4, 8, 16} into fixed 2^k grids —
//     rendered as heatmaps, uneven colour means uneven sampling.
//   - Uniformity drift: is a sampler that should be uniform (URW, SURW
//     within a Δ) still uniform right now? A streaming chi-square over the
//     per-cell class stream yields a live p-value and a latched alarm.
//   - Yield: which cells still have discovery potential? Good-Turing
//     unseen mass, survival-curve slope, and duplicate-rate trend combine
//     into a per-cell score the coordinator can weight lease grants by.
//
// Standing covenant: a nil atlas costs zero allocations on the batched
// fast path, and an attached atlas never perturbs a schedule, a
// fingerprint, or an aggregate byte.
package atlas

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Shape constants. They are fixed so the per-cell accumulator is a single
// allocation-free block of atomic counters.
const (
	// MaxDepth is the number of tracked decision depths; deeper decisions
	// fold into the last slot so the profile never loses mass.
	MaxDepth = 48
	// MaxBranch caps the enabled-set histogram; larger enabled sets fold
	// into the top bucket.
	MaxBranch = 16
	// GridBits sizes the sample-density grids: 2^GridBits buckets each.
	GridBits = 8
	// GridSize is the bucket count of one density grid (renders 16×16).
	GridSize = 1 << GridBits
	// NumGrids is how many prefix depths get a density grid.
	NumGrids = 3
)

// GridDepths are the decision depths (1-based) at which the running
// prefix hash is bucketed into a density grid. A schedule shorter than a
// grid's depth simply never lands in it.
var GridDepths = [NumGrids]int{4, 8, 16}

// Accum is the per-cell cartography accumulator the engine writes into.
// All fields are atomics: many pools append concurrently, and the engine
// side must stay lock-free and allocation-free.
type Accum struct {
	schedules atomic.Uint64
	decisions atomic.Uint64
	depth     [MaxDepth]depthAccum
	grid      [NumGrids][GridSize]atomic.Uint64
}

type depthAccum struct {
	count      atomic.Uint64
	enabledSum atomic.Uint64
	branch     [MaxBranch + 1]atomic.Uint64
}

// BeginSchedule counts one schedule start. Nil-safe.
func (a *Accum) BeginSchedule() {
	if a == nil {
		return
	}
	a.schedules.Add(1)
}

// Decision records one true scheduling decision (≥2 enabled threads):
// the depth-th decision point of the current schedule (1-based), with n
// enabled threads and prefix the running hash of the choices made so far,
// including this one. Nil-safe, lock-free, allocation-free.
func (a *Accum) Decision(depth, n int, prefix uint64) {
	if a == nil {
		return
	}
	a.decisions.Add(1)
	d := depth - 1
	if d < 0 {
		d = 0
	}
	if d >= MaxDepth {
		d = MaxDepth - 1
	}
	da := &a.depth[d]
	da.count.Add(1)
	da.enabledSum.Add(uint64(n))
	b := n
	if b > MaxBranch {
		b = MaxBranch
	}
	da.branch[b].Add(1)
	for gi := 0; gi < NumGrids; gi++ {
		if depth == GridDepths[gi] {
			a.grid[gi][prefix&(GridSize-1)].Add(1)
		}
	}
}

// Schedules returns the number of schedules begun so far.
func (a *Accum) Schedules() uint64 {
	if a == nil {
		return 0
	}
	return a.schedules.Load()
}

// Snapshot materializes a bare accumulator (no uniformity state) into
// its exported form — for callers that manage cells themselves.
func (a *Accum) Snapshot() CellSnapshot {
	var cs CellSnapshot
	cs.Depths, cs.Grids, cs.Schedules, cs.Decisions, cs.MaxDepth = a.snapshot()
	return cs
}

// snapshot materializes the accumulator into its exported wire form.
func (a *Accum) snapshot() (deps []DepthProfile, grids []Grid, schedules, decisions uint64, maxDepth int) {
	schedules = a.schedules.Load()
	decisions = a.decisions.Load()
	for d := 0; d < MaxDepth; d++ {
		da := &a.depth[d]
		c := da.count.Load()
		if c == 0 {
			continue
		}
		maxDepth = d + 1
		p := DepthProfile{Depth: d + 1, Decisions: c, EnabledSum: da.enabledSum.Load()}
		top := 0
		for b := 0; b <= MaxBranch; b++ {
			if da.branch[b].Load() != 0 {
				top = b
			}
		}
		p.Branch = make([]uint64, top+1)
		for b := 0; b <= top; b++ {
			p.Branch[b] = da.branch[b].Load()
		}
		deps = append(deps, p)
	}
	for gi := 0; gi < NumGrids; gi++ {
		g := Grid{Depth: GridDepths[gi], Buckets: make([]uint64, GridSize)}
		for i := 0; i < GridSize; i++ {
			g.Buckets[i] = a.grid[gi][i].Load()
		}
		g.finalize()
		if g.Samples > 0 {
			grids = append(grids, g)
		}
	}
	return deps, grids, schedules, decisions, maxDepth
}

// Cell is one campaign cell's atlas state: the lock-free cartography
// accumulator plus the (mutex-guarded, off-hot-path) uniformity tracker
// fed once per completed schedule.
type Cell struct {
	acc   Accum
	mu    sync.Mutex
	drift Drift
}

// Accum returns the engine-facing accumulator. Nil-safe: a nil cell
// yields a nil accumulator, which the engine treats as "atlas off".
func (c *Cell) Accum() *Accum {
	if c == nil {
		return nil
	}
	return &c.acc
}

// ObserveSchedule feeds one completed schedule's class fingerprint into
// the uniformity tracker. Called once per schedule from the runner, after
// the schedule has fully executed — never from the engine hot path.
func (c *Cell) ObserveSchedule(class uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.drift.Observe(class)
	c.mu.Unlock()
}

// Atlas is the process-wide registry of per-cell atlas state.
type Atlas struct {
	mu    sync.Mutex
	cells map[cellID]*Cell
}

type cellID struct{ target, alg string }

// New returns an empty atlas registry.
func New() *Atlas {
	return &Atlas{cells: make(map[cellID]*Cell)}
}

// Cell returns the (created-on-first-use) cell for a target/algorithm
// pair. Nil-safe: a nil atlas yields a nil cell.
func (a *Atlas) Cell(target, alg string) *Cell {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	id := cellID{target, alg}
	c := a.cells[id]
	if c == nil {
		c = &Cell{}
		a.cells[id] = c
	}
	return c
}

// Snapshot materializes every cell, sorted by target then algorithm.
func (a *Atlas) Snapshot() *Snapshot {
	s := &Snapshot{Version: Version}
	if a == nil {
		return s
	}
	a.mu.Lock()
	ids := make([]cellID, 0, len(a.cells))
	for id := range a.cells {
		ids = append(ids, id)
	}
	cells := make(map[cellID]*Cell, len(a.cells))
	for id, c := range a.cells {
		cells[id] = c
	}
	a.mu.Unlock()

	sort.Slice(ids, func(i, j int) bool {
		if ids[i].target != ids[j].target {
			return ids[i].target < ids[j].target
		}
		return ids[i].alg < ids[j].alg
	})
	for _, id := range ids {
		c := cells[id]
		cs := CellSnapshot{Target: id.target, Algorithm: id.alg}
		cs.Depths, cs.Grids, cs.Schedules, cs.Decisions, cs.MaxDepth = c.acc.snapshot()
		c.mu.Lock()
		if c.drift.samples > 0 {
			d := c.drift.Snapshot()
			cs.Uniformity = &d
		}
		c.mu.Unlock()
		s.Cells = append(s.Cells, cs)
	}
	return s
}

// Version is the atlas.json schema version.
const Version = 1

// Snapshot is the exported (JSON-able) form of an atlas: what
// `surwbench -atlas` writes to atlas.json, `surwobs -atlas` validates,
// and the dashboard renders.
type Snapshot struct {
	Version int            `json:"version"`
	Cells   []CellSnapshot `json:"cells"`
}

// CellSnapshot is one cell's cartography plus its uniformity state.
type CellSnapshot struct {
	Target     string         `json:"target"`
	Algorithm  string         `json:"algorithm"`
	Schedules  uint64         `json:"schedules"`
	Decisions  uint64         `json:"decisions"`
	MaxDepth   int            `json:"max_depth"`
	Depths     []DepthProfile `json:"depths,omitempty"`
	Grids      []Grid         `json:"grids,omitempty"`
	Uniformity *DriftSnapshot `json:"uniformity,omitempty"`
}

// DepthProfile is the branching profile at one decision depth. Raw sums
// are kept (not means) so fleet snapshots merge by addition.
type DepthProfile struct {
	Depth      int      `json:"depth"`
	Decisions  uint64   `json:"decisions"`
	EnabledSum uint64   `json:"enabled_sum"`
	Branch     []uint64 `json:"branch,omitempty"`
}

// MeanEnabled is the average enabled-set size at this depth.
func (p DepthProfile) MeanEnabled() float64 {
	if p.Decisions == 0 {
		return 0
	}
	return float64(p.EnabledSum) / float64(p.Decisions)
}

// Grid is one sample-density map: decision-prefix hashes at Depth
// bucketed into GridSize slots. Under a uniform sampler the buckets a
// prefix can reach fill evenly; concentration shows as hot spots.
type Grid struct {
	Depth       int      `json:"depth"`
	Buckets     []uint64 `json:"buckets"`
	Samples     uint64   `json:"samples"`
	Occupied    int      `json:"occupied"`
	EntropyBits float64  `json:"entropy_bits"`
}

// finalize recomputes the derived fields from Buckets.
func (g *Grid) finalize() {
	g.Samples, g.Occupied, g.EntropyBits = 0, 0, 0
	for _, b := range g.Buckets {
		g.Samples += b
		if b > 0 {
			g.Occupied++
		}
	}
	if g.Samples == 0 {
		return
	}
	n := float64(g.Samples)
	for _, b := range g.Buckets {
		if b > 0 {
			p := float64(b) / n
			g.EntropyBits -= p * math.Log2(p)
		}
	}
}

// MergeCells sums per-cell snapshots from several sources (one per
// worker, typically) into one fleet view, keyed by target/algorithm.
// Uniformity is dropped: drift over a partial stream is not additive, so
// the merger (the coordinator) attaches its own store-derived drift.
func MergeCells(groups ...[]CellSnapshot) []CellSnapshot {
	type key struct{ t, a string }
	merged := make(map[key]*CellSnapshot)
	var order []key
	for _, cells := range groups {
		for _, cs := range cells {
			k := key{cs.Target, cs.Algorithm}
			dst := merged[k]
			if dst == nil {
				cp := cs
				cp.Uniformity = nil
				cp.Depths = append([]DepthProfile(nil), cs.Depths...)
				for i := range cp.Depths {
					cp.Depths[i].Branch = append([]uint64(nil), cs.Depths[i].Branch...)
				}
				cp.Grids = append([]Grid(nil), cs.Grids...)
				for i := range cp.Grids {
					cp.Grids[i].Buckets = append([]uint64(nil), cs.Grids[i].Buckets...)
				}
				merged[k] = &cp
				order = append(order, k)
				continue
			}
			dst.Schedules += cs.Schedules
			dst.Decisions += cs.Decisions
			if cs.MaxDepth > dst.MaxDepth {
				dst.MaxDepth = cs.MaxDepth
			}
			dst.Depths = mergeDepths(dst.Depths, cs.Depths)
			dst.Grids = mergeGrids(dst.Grids, cs.Grids)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].t != order[j].t {
			return order[i].t < order[j].t
		}
		return order[i].a < order[j].a
	})
	out := make([]CellSnapshot, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	return out
}

func mergeDepths(dst, src []DepthProfile) []DepthProfile {
	byDepth := make(map[int]int, len(dst))
	for i, p := range dst {
		byDepth[p.Depth] = i
	}
	for _, p := range src {
		i, ok := byDepth[p.Depth]
		if !ok {
			cp := p
			cp.Branch = append([]uint64(nil), p.Branch...)
			dst = append(dst, cp)
			continue
		}
		d := &dst[i]
		d.Decisions += p.Decisions
		d.EnabledSum += p.EnabledSum
		for len(d.Branch) < len(p.Branch) {
			d.Branch = append(d.Branch, 0)
		}
		for b, v := range p.Branch {
			d.Branch[b] += v
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Depth < dst[j].Depth })
	return dst
}

func mergeGrids(dst, src []Grid) []Grid {
	byDepth := make(map[int]int, len(dst))
	for i, g := range dst {
		byDepth[g.Depth] = i
	}
	for _, g := range src {
		i, ok := byDepth[g.Depth]
		if !ok {
			cp := g
			cp.Buckets = append([]uint64(nil), g.Buckets...)
			dst = append(dst, cp)
			continue
		}
		d := &dst[i]
		for len(d.Buckets) < len(g.Buckets) {
			d.Buckets = append(d.Buckets, 0)
		}
		for b, v := range g.Buckets {
			d.Buckets[b] += v
		}
		d.finalize()
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Depth < dst[j].Depth })
	return dst
}
