// Package campaign is the long-campaign persistence and aggregation layer:
// a crash-safe, append-only JSONL run-store that every experiments driver
// and runner.RunTarget batch can write per-session results into, plus the
// campaign-level aggregation the dashboard serves — per-(target, algorithm)
// schedules-to-first-bug survival curves, distinct-bug accumulation,
// interleaving-class growth, and schedule-space coverage estimates
// (Good–Turing unseen mass and Chao1 richness, internal/stats).
//
// The paper's evaluation unit is the campaign — 20 sessions × 10⁴ schedules
// per (target, algorithm) cell, hours of wall-clock at paper scale — and a
// killed batch run used to lose everything. With a Store attached
// (runner.Config.Store / experiments.Scale.Store), every completed session
// is persisted the moment it finishes and skipped on restart, and because
// sessions are the runner's deterministic unit (seed-derived from their own
// index, independent of Config.Workers), a resumed campaign's tables and
// aggregates are byte-identical to an uninterrupted run's at any worker
// count.
//
// The store is strictly outside the scheduler: it is consulted between
// sessions, never during one, so attaching it cannot perturb a schedule
// (campaign_test.go holds the invariant the way
// TestTracerDoesNotPerturbSchedule does for the tracer).
//
// Layout of a store directory:
//
//	DIR/manifest.json    {"version":1} — wire-format guard
//	DIR/runs.jsonl       one Record per line, append-only, fsynced
//	DIR/aggregates.json  written by `surwbench -campaign` on completion
//
// A torn trailing line (the signature of a crash mid-append) is truncated
// away on open; every complete line is a self-contained record.
package campaign

import (
	"fmt"
	"sort"
	"strconv"

	"surw/internal/runner"
)

// Version is the wire-format version stamped into the manifest and every
// record line.
const Version = 1

// Record is one JSONL line of the run-store: a session key and the
// session's observable outcome. It doubles as the result payload of the
// distributed-campaign protocol (internal/remote): a worker submits the
// exact bytes the coordinator's store would append, so a distributed
// campaign and a local one share one wire format.
type Record struct {
	V       int         `json:"v"`
	Key     keyWire     `json:"key"`
	Session sessionWire `json:"session"`
}

// NewRecord builds the versioned wire record for one session result — the
// line the store appends, and the payload a remote worker submits.
func NewRecord(k runner.SessionKey, s *runner.Session) Record {
	return Record{V: Version, Key: encodeKey(k), Session: encodeSession(s)}
}

// Decode returns the session key and the canonical (wire round-trip)
// session of a record, rejecting unknown wire versions.
func (r Record) Decode() (runner.SessionKey, *runner.Session, error) {
	if r.V != Version {
		return runner.SessionKey{}, nil, fmt.Errorf("campaign: record has wire version %d, want %d", r.V, Version)
	}
	s, err := r.Session.decode()
	if err != nil {
		return runner.SessionKey{}, nil, err
	}
	return r.Key.decode(), s, nil
}

// keyWire is the wire form of runner.SessionKey.
type keyWire struct {
	Target         string `json:"target"`
	Algorithm      string `json:"algorithm"`
	Limit          int    `json:"limit"`
	Seed           int64  `json:"seed"`
	Session        int    `json:"session"`
	StopAtFirstBug bool   `json:"stop_at_first_bug,omitempty"`
	Coverage       bool   `json:"coverage,omitempty"`
	CoverageEvery  int    `json:"coverage_every,omitempty"`
	ProfileRuns    int    `json:"profile_runs,omitempty"`
}

func encodeKey(k runner.SessionKey) keyWire {
	return keyWire{
		Target:         k.Target,
		Algorithm:      k.Algorithm,
		Limit:          k.Limit,
		Seed:           k.Seed,
		Session:        k.Session,
		StopAtFirstBug: k.StopAtFirstBug,
		Coverage:       k.Coverage,
		CoverageEvery:  k.CoverageEvery,
		ProfileRuns:    k.ProfileRuns,
	}
}

func (w keyWire) decode() runner.SessionKey {
	return runner.SessionKey{
		Target:         w.Target,
		Algorithm:      w.Algorithm,
		Limit:          w.Limit,
		Seed:           w.Seed,
		Session:        w.Session,
		StopAtFirstBug: w.StopAtFirstBug,
		Coverage:       w.Coverage,
		CoverageEvery:  w.CoverageEvery,
		ProfileRuns:    w.ProfileRuns,
	}
}

// CellKey identifies one (target, algorithm) cell: a SessionKey minus the
// session index. Aggregation groups session records by it.
type CellKey struct {
	Target         string `json:"target"`
	Algorithm      string `json:"algorithm"`
	Limit          int    `json:"limit"`
	Seed           int64  `json:"seed"`
	StopAtFirstBug bool   `json:"stop_at_first_bug,omitempty"`
	Coverage       bool   `json:"coverage,omitempty"`
	CoverageEvery  int    `json:"coverage_every,omitempty"`
	ProfileRuns    int    `json:"profile_runs,omitempty"`
}

func cellOf(k runner.SessionKey) CellKey {
	return CellKey{
		Target:         k.Target,
		Algorithm:      k.Algorithm,
		Limit:          k.Limit,
		Seed:           k.Seed,
		StopAtFirstBug: k.StopAtFirstBug,
		Coverage:       k.Coverage,
		CoverageEvery:  k.CoverageEvery,
		ProfileRuns:    k.ProfileRuns,
	}
}

// less orders cells deterministically for aggregation output.
func (c CellKey) less(o CellKey) bool {
	if c.Target != o.Target {
		return c.Target < o.Target
	}
	if c.Algorithm != o.Algorithm {
		return c.Algorithm < o.Algorithm
	}
	if c.Limit != o.Limit {
		return c.Limit < o.Limit
	}
	if c.Seed != o.Seed {
		return c.Seed < o.Seed
	}
	if c.StopAtFirstBug != o.StopAtFirstBug {
		return o.StopAtFirstBug
	}
	if c.Coverage != o.Coverage {
		return o.Coverage
	}
	if c.CoverageEvery != o.CoverageEvery {
		return c.CoverageEvery < o.CoverageEvery
	}
	return c.ProfileRuns < o.ProfileRuns
}

// sessionWire is the wire form of runner.Session. The Flight path is
// deliberately not persisted: it names a local diagnostic artifact, is
// excluded from runner.Result.Equal, and resumed sessions do not re-dump
// flights.
type sessionWire struct {
	FirstBug  int            `json:"first_bug"`
	Schedules int            `json:"schedules"`
	Truncated int            `json:"truncated,omitempty"`
	Bugs      map[string]int `json:"bugs,omitempty"`
	Cov       *covWire       `json:"cov,omitempty"`
}

type covWire struct {
	// Interleavings maps the %016x hex interleaving fingerprint to its
	// observed frequency. Hex string keys keep the JSONL greppable and the
	// encoding deterministic (encoding/json sorts map keys).
	Interleavings map[string]int `json:"interleavings"`
	// Classes maps the %016x hex commutation-class fingerprint
	// (sched.Result.ClassHash) to its observed frequency — the deduplicated
	// counterpart of Interleavings. DupSchedules counts schedules whose
	// class had already been seen within the session. Both are omitted by
	// records that predate the class fingerprint, so old stores still load.
	Classes      map[string]int `json:"classes,omitempty"`
	DupSchedules int            `json:"dup_schedules,omitempty"`
	Behaviors    map[string]int `json:"behaviors,omitempty"`
	Series       []covPointWire `json:"series,omitempty"`
}

type covPointWire struct {
	Schedules     int `json:"schedules"`
	Interleavings int `json:"interleavings"`
	Behaviors     int `json:"behaviors"`
	Classes       int `json:"classes,omitempty"`
}

func encodeSession(s *runner.Session) sessionWire {
	w := sessionWire{
		FirstBug:  s.FirstBug,
		Schedules: s.Schedules,
		Truncated: s.Truncated,
	}
	if len(s.Bugs) > 0 {
		w.Bugs = make(map[string]int, len(s.Bugs))
		for id, n := range s.Bugs {
			w.Bugs[id] = n
		}
	}
	if s.Cov != nil {
		cw := &covWire{Interleavings: make(map[string]int, len(s.Cov.Interleavings))}
		for h, n := range s.Cov.Interleavings {
			cw.Interleavings[fingerprint(h)] = n
		}
		if len(s.Cov.Classes) > 0 {
			cw.Classes = make(map[string]int, len(s.Cov.Classes))
			for h, n := range s.Cov.Classes {
				cw.Classes[fingerprint(h)] = n
			}
		}
		cw.DupSchedules = s.Cov.DupSchedules
		if len(s.Cov.Behaviors) > 0 {
			cw.Behaviors = make(map[string]int, len(s.Cov.Behaviors))
			for b, n := range s.Cov.Behaviors {
				cw.Behaviors[b] = n
			}
		}
		for _, p := range s.Cov.Series {
			cw.Series = append(cw.Series, covPointWire{
				Schedules:     p.Schedules,
				Interleavings: p.Interleavings,
				Behaviors:     p.Behaviors,
				Classes:       p.Classes,
			})
		}
		w.Cov = cw
	}
	return w
}

func (w *sessionWire) decode() (*runner.Session, error) {
	s := &runner.Session{
		FirstBug:  w.FirstBug,
		Schedules: w.Schedules,
		Truncated: w.Truncated,
		Bugs:      make(map[string]int, len(w.Bugs)),
	}
	for id, n := range w.Bugs {
		s.Bugs[id] = n
	}
	if w.Cov != nil {
		cov := &runner.Coverage{
			Interleavings: make(map[uint64]int, len(w.Cov.Interleavings)),
			Classes:       make(map[uint64]int, len(w.Cov.Classes)),
			Behaviors:     make(map[string]int, len(w.Cov.Behaviors)),
			DupSchedules:  w.Cov.DupSchedules,
		}
		for hex, n := range w.Cov.Interleavings {
			h, err := strconv.ParseUint(hex, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("campaign: bad interleaving fingerprint %q: %w", hex, err)
			}
			cov.Interleavings[h] = n
		}
		for hex, n := range w.Cov.Classes {
			h, err := strconv.ParseUint(hex, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("campaign: bad class fingerprint %q: %w", hex, err)
			}
			cov.Classes[h] = n
		}
		for b, n := range w.Cov.Behaviors {
			cov.Behaviors[b] = n
		}
		for _, p := range w.Cov.Series {
			cov.Series = append(cov.Series, runner.CovPoint{
				Schedules:     p.Schedules,
				Interleavings: p.Interleavings,
				Behaviors:     p.Behaviors,
				Classes:       p.Classes,
			})
		}
		s.Cov = cov
	}
	return s, nil
}

// fingerprint renders an interleaving hash the way the flight recorder
// does, so store lines and flight dumps cross-reference.
func fingerprint(h uint64) string { return fmt.Sprintf("%016x", h) }

// sortedKeys returns the session keys of records grouped by cell and
// ordered (cell, session) — the canonical aggregation order.
func sortedKeys(recs map[runner.SessionKey]sessionWire) []runner.SessionKey {
	keys := make([]runner.SessionKey, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := cellOf(keys[i]), cellOf(keys[j])
		if ci != cj {
			return ci.less(cj)
		}
		return keys[i].Session < keys[j].Session
	})
	return keys
}
