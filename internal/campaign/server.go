package campaign

// The campaign dashboard: a stdlib-only HTTP server over a run-store.
// Served standalone by cmd/surwdash (read-only, tailing a store some
// campaign process writes) or embedded in a live campaign via
// `surwbench -serve` / `surwrun -serve`. Endpoints:
//
//	/              HTML dashboard with inline-SVG survival and coverage curves
//	/api/campaign  the Aggregates rollup as JSON
//	/metrics       Prometheus text page (campaign counters + obs.Metrics)
//	/events        SSE stream of session/cell events, snapshot-first
//	/buildinfo     build identity JSON
//
// The server only reads the store's index and subscribes to its broker; it
// shares no state with the scheduler, so serving a live campaign cannot
// perturb a schedule any more than attaching the store can.

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"surw/internal/atlas"
	"surw/internal/buildinfo"
	"surw/internal/obs"
)

// Server serves the campaign dashboard for one store.
type Server struct {
	store    *Store
	metrics  *obs.Metrics                    // optional: live-campaign throughput
	remote   func() (*RemoteStatus, error)   // optional: distributed-campaign coordinator
	atlasSrc func() (*atlas.Snapshot, error) // optional: exploration atlas
	mux      *http.ServeMux
}

// NewServer builds the dashboard handler. metrics may be nil (standalone
// dashboards have no live run to meter).
func NewServer(store *Store, metrics *obs.Metrics) *Server {
	s := &Server{store: store, metrics: metrics, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/campaign", s.handleAPI)
	s.mux.HandleFunc("/api/yield", s.handleYield)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/buildinfo", s.handleBuildinfo)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetRemote attaches a distributed-campaign status source (the remote
// coordinator's Status method, or surwdash's HTTP fetch). The dashboard
// then shows the worker table and /metrics gains the surw_remote_* gauges.
// A source that fails returns its error, which the dashboard surfaces as a
// banner (and /api/campaign as remote_error) instead of silently showing
// an empty fleet view. Call before serving.
func (s *Server) SetRemote(status func() (*RemoteStatus, error)) { s.remote = status }

// SetAtlas attaches an exploration-atlas source (internal/atlas): the
// live registry's Snapshot for an embedded campaign, the coordinator's
// merged fleet view for a distributed one, or a loader over a written
// atlas.json for surwdash. The dashboard then renders the sample-density
// heatmaps, the depth profile, and the per-cell uniformity gauges, and
// /metrics gains the surw_atlas_* family. A failing source is treated
// like an absent one (the panel disappears; nothing breaks). Call before
// serving.
func (s *Server) SetAtlas(src func() (*atlas.Snapshot, error)) { s.atlasSrc = src }

// atlasSnapshot resolves the attached atlas source, nil when absent,
// failed, or empty.
func (s *Server) atlasSnapshot() *atlas.Snapshot {
	if s.atlasSrc == nil {
		return nil
	}
	snap, err := s.atlasSrc()
	if err != nil || snap == nil || len(snap.Cells) == 0 {
		return nil
	}
	return snap
}

// handleYield serves the per-cell discovery-yield scores, with the
// atlas's uniformity state joined in when an atlas is attached.
func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteJSON(w, s.yieldReport())
}

// YieldReport is the /api/yield payload.
type YieldReport struct {
	Cells []YieldCell `json:"cells"`
}

// YieldCell is CellYield plus the cell's live uniformity state (atlas
// runs only; absent for store-only views without an atlas.json).
type YieldCell struct {
	CellYield
	Uniformity *atlas.DriftSnapshot `json:"uniformity,omitempty"`
}

func (s *Server) yieldReport() *YieldReport {
	yields := s.store.Aggregate().Yields()
	rep := &YieldReport{Cells: make([]YieldCell, 0, len(yields))}
	drift := make(map[CellKey]*atlas.DriftSnapshot)
	if snap := s.atlasSnapshot(); snap != nil {
		for _, c := range snap.Cells {
			if c.Uniformity != nil {
				d := *c.Uniformity
				drift[CellKey{Target: c.Target, Algorithm: c.Algorithm}] = &d
			}
		}
	}
	for _, y := range yields {
		rep.Cells = append(rep.Cells, YieldCell{
			CellYield:  y,
			Uniformity: drift[CellKey{Target: y.Target, Algorithm: y.Algorithm}],
		})
	}
	return rep
}

// aggregates builds the rollup, attaching the live metrics snapshot when
// the server is embedded in a running campaign.
func (s *Server) aggregates() *Aggregates {
	agg := s.store.Aggregate()
	if s.metrics != nil {
		snap := s.metrics.Snapshot()
		agg.Metrics = &MetricsSnapshot{
			Schedules:       snap.Schedules,
			SchedulesPerSec: snap.SchedulesPerSec,
			StepsPerSched:   snap.StepsPerSched,
			TruncationRate:  snap.TruncationRate,
			Utilization:     snap.Utilization,
		}
	}
	if s.remote != nil {
		rs, err := s.remote()
		switch {
		case err != nil:
			agg.RemoteErr = err.Error()
		case rs != nil:
			agg.Remote = rs
		}
	}
	return agg
}

func (s *Server) handleAPI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteJSON(w, s.aggregates())
}

func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteJSON(w, buildinfo.Get())
}

// handleMetrics serves the Prometheus text page: the campaign counters
// always, the obs.Metrics aggregate when one is attached.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	fmt.Fprintf(w, "# HELP surw_campaign_sessions_stored Session records in the run-store.\n# TYPE surw_campaign_sessions_stored gauge\nsurw_campaign_sessions_stored %d\n", s.store.Len())
	fmt.Fprintf(w, "# HELP surw_campaign_cells_total Cells completed by this process.\n# TYPE surw_campaign_cells_total counter\nsurw_campaign_cells_total %d\n", s.store.Cells())
	// Dedup rollup over the stored records: per-cell distinct commutation
	// classes and duplicate rates, plus the campaign-wide totals. Pure
	// functions of the record set, like everything under surw_campaign_*.
	agg := s.store.Aggregate()
	var dedupCells []CellAggregate
	totalClasses, totalSamples := 0, 0
	for _, c := range agg.Cells {
		if c.Coverage == nil || c.Coverage.Dedup == nil {
			continue
		}
		dedupCells = append(dedupCells, c)
		totalClasses += c.Coverage.Dedup.DistinctClasses
		totalSamples += c.Coverage.Dedup.Samples
	}
	fmt.Fprintf(w, "# HELP surw_campaign_distinct_classes Distinct commutation classes across coverage cells.\n# TYPE surw_campaign_distinct_classes gauge\nsurw_campaign_distinct_classes %d\n", totalClasses)
	dupRate := 0.0
	if totalSamples > 0 {
		dupRate = float64(totalSamples-totalClasses) / float64(totalSamples)
	}
	fmt.Fprintf(w, "# HELP surw_campaign_duplicate_rate Fraction of coverage-sampled schedules that re-sampled an already-seen class.\n# TYPE surw_campaign_duplicate_rate gauge\nsurw_campaign_duplicate_rate %.6f\n", dupRate)
	if len(dedupCells) > 0 {
		fmt.Fprintf(w, "# HELP surw_campaign_cell_distinct_classes Distinct commutation classes per cell.\n# TYPE surw_campaign_cell_distinct_classes gauge\n")
		for _, c := range dedupCells {
			fmt.Fprintf(w, "surw_campaign_cell_distinct_classes{target=%q,algorithm=%q} %d\n", c.Target, c.Algorithm, c.Coverage.Dedup.DistinctClasses)
		}
		fmt.Fprintf(w, "# HELP surw_campaign_cell_duplicate_rate Duplicate rate per cell.\n# TYPE surw_campaign_cell_duplicate_rate gauge\n")
		for _, c := range dedupCells {
			fmt.Fprintf(w, "surw_campaign_cell_duplicate_rate{target=%q,algorithm=%q} %.6f\n", c.Target, c.Algorithm, c.Coverage.Dedup.DuplicateRate)
		}
	}
	// Discovery-yield gauges: one score per scoreable cell (cells with no
	// class stream are simply absent, never NaN).
	var scoreable []CellYield
	for _, y := range agg.Yields() {
		if y.Scoreable {
			scoreable = append(scoreable, y)
		}
	}
	if len(scoreable) > 0 {
		fmt.Fprintf(w, "# HELP surw_yield_score Discovery-yield score per cell (0..1, higher = more left to find).\n# TYPE surw_yield_score gauge\n")
		for _, y := range scoreable {
			fmt.Fprintf(w, "surw_yield_score{target=%q,algorithm=%q} %.6f\n", y.Target, y.Algorithm, y.Yield.Score)
		}
		fmt.Fprintf(w, "# HELP surw_yield_gt_unseen Good-Turing unseen class mass per cell.\n# TYPE surw_yield_gt_unseen gauge\n")
		for _, y := range scoreable {
			fmt.Fprintf(w, "surw_yield_gt_unseen{target=%q,algorithm=%q} %.6f\n", y.Target, y.Algorithm, y.Yield.GTUnseen)
		}
	}
	// Atlas gauges, when an atlas source is attached: cartography volume
	// plus the per-cell uniformity state.
	if snap := s.atlasSnapshot(); snap != nil {
		fmt.Fprintf(w, "# HELP surw_atlas_schedules Schedules observed by the exploration atlas per cell.\n# TYPE surw_atlas_schedules gauge\n")
		for _, c := range snap.Cells {
			fmt.Fprintf(w, "surw_atlas_schedules{target=%q,algorithm=%q} %d\n", c.Target, c.Algorithm, c.Schedules)
		}
		fmt.Fprintf(w, "# HELP surw_atlas_decisions True scheduling decisions observed per cell.\n# TYPE surw_atlas_decisions gauge\n")
		for _, c := range snap.Cells {
			fmt.Fprintf(w, "surw_atlas_decisions{target=%q,algorithm=%q} %d\n", c.Target, c.Algorithm, c.Decisions)
		}
		var withDrift []atlas.CellSnapshot
		for _, c := range snap.Cells {
			if c.Uniformity != nil {
				withDrift = append(withDrift, c)
			}
		}
		if len(withDrift) > 0 {
			fmt.Fprintf(w, "# HELP surw_atlas_uniformity_p Streaming chi-square uniformity p-value per cell.\n# TYPE surw_atlas_uniformity_p gauge\n")
			for _, c := range withDrift {
				fmt.Fprintf(w, "surw_atlas_uniformity_p{target=%q,algorithm=%q} %.6g\n", c.Target, c.Algorithm, c.Uniformity.P)
			}
			fmt.Fprintf(w, "# HELP surw_atlas_drift_alarm 1 when the cell's sampler has drifted from uniform (latched).\n# TYPE surw_atlas_drift_alarm gauge\n")
			for _, c := range withDrift {
				alarm := 0
				if c.Uniformity.Alarm {
					alarm = 1
				}
				fmt.Fprintf(w, "surw_atlas_drift_alarm{target=%q,algorithm=%q} %d\n", c.Target, c.Algorithm, alarm)
			}
		}
	}
	if s.metrics != nil {
		_ = s.metrics.WritePrometheus(w)
	}
	if s.remote != nil {
		// A failed fetch (surwdash -remote against a dead coordinator)
		// omits the surw_remote_* family; the dashboard page carries the
		// error, the metrics page stays parseable.
		if rs, err := s.remote(); err == nil && rs != nil {
			_ = rs.WritePrometheus(w)
		}
	}
}

// handleEvents streams campaign events as server-sent events. The first
// event is always a "snapshot" with the store's current totals, so a
// subscriber (or the ci.sh curl smoke) sees one event immediately even on
// an idle campaign.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	ch := s.store.Events().Subscribe()
	defer s.store.Events().Unsubscribe(ch)

	writeSSE(w, Event{Type: "snapshot", Stored: s.store.Len(), Cells: s.store.Cells()})
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// --- HTML dashboard -------------------------------------------------------

type dashData struct {
	Dir        string
	Build      buildinfo.Info
	Agg        *Aggregates
	Cells      []dashCell
	Yields     []dashYield
	AtlasCells []dashAtlas
	Targets    int
}

type dashCell struct {
	CellAggregate
	MeanFirstBug string
	GTCoverage   string
	Chao1Pct     string
	DedupClasses string
	DupRate      string
	SurvivalSVG  template.HTML
	GrowthSVG    template.HTML
}

// dashYield is one pre-formatted row of the discovery-yield panel.
// Unscoreable cells (zero completed sessions, or no class stream) keep
// every column at "—" — the degenerate-cell guard the template tests pin.
type dashYield struct {
	Target      string
	Algorithm   string
	Samples     string
	Score       string
	GTUnseen    string
	Slope       string
	NewRate     string
	UniformityP string
	Alarm       bool
}

// dashAtlas is one cell of the exploration-atlas section: the rendered
// heatmap and depth profile plus a pre-formatted uniformity gauge.
type dashAtlas struct {
	Target      string
	Algorithm   string
	Schedules   uint64
	Decisions   uint64
	MaxDepth    int
	UniformityP string
	Alarm       bool
	HeatmapSVG  template.HTML
	DepthSVG    template.HTML
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	agg := s.aggregates()
	data := dashData{Dir: s.store.Dir(), Build: buildinfo.Get(), Agg: agg}
	targets := make(map[string]bool)
	for _, c := range agg.Cells {
		targets[c.Target] = true
		dc := dashCell{CellAggregate: c, MeanFirstBug: "—", GTCoverage: "—", Chao1Pct: "—", DedupClasses: "—", DupRate: "—"}
		if c.FirstBug != nil {
			dc.MeanFirstBug = fmt.Sprintf("%.1f", c.FirstBug.Mean)
		}
		if cov := c.Coverage; cov != nil {
			dc.GTCoverage = fmt.Sprintf("%.1f%%", 100*cov.GoodTuringCoverage)
			dc.Chao1Pct = fmt.Sprintf("%.1f%%", 100*cov.ClassCoverage)
			dc.GrowthSVG = growthSVG(cov.Growth)
			if cov.Dedup != nil {
				dc.DedupClasses = fmt.Sprintf("%d", cov.Dedup.DistinctClasses)
				dc.DupRate = fmt.Sprintf("%.1f%%", 100*cov.Dedup.DuplicateRate)
			}
		}
		dc.SurvivalSVG = survivalSVG(c.Survival, c.Limit)
		data.Cells = append(data.Cells, dc)
	}
	data.Targets = len(targets)
	snap := s.atlasSnapshot()
	drift := make(map[CellKey]*atlas.DriftSnapshot)
	if snap != nil {
		for _, c := range snap.Cells {
			if c.Uniformity != nil {
				d := *c.Uniformity
				drift[CellKey{Target: c.Target, Algorithm: c.Algorithm}] = &d
			}
		}
	}
	for _, y := range agg.Yields() {
		row := dashYield{
			Target: y.Target, Algorithm: y.Algorithm,
			Samples: "—", Score: "—", GTUnseen: "—", Slope: "—", NewRate: "—", UniformityP: "—",
		}
		if y.Scoreable {
			row.Samples = fmt.Sprintf("%d", y.Samples)
			row.Score = fmt.Sprintf("%.2f", y.Yield.Score)
			row.GTUnseen = fmt.Sprintf("%.3f", y.Yield.GTUnseen)
			row.Slope = fmt.Sprintf("%.3f", y.Yield.SurvivalSlope)
			row.NewRate = fmt.Sprintf("%.3f", y.Yield.NewClassRate)
		}
		if d := drift[CellKey{Target: y.Target, Algorithm: y.Algorithm}]; d != nil {
			row.UniformityP = fmt.Sprintf("%.3g", d.P)
			row.Alarm = d.Alarm
		}
		data.Yields = append(data.Yields, row)
	}
	if snap != nil {
		for _, c := range snap.Cells {
			ac := dashAtlas{
				Target: c.Target, Algorithm: c.Algorithm,
				Schedules: c.Schedules, Decisions: c.Decisions, MaxDepth: c.MaxDepth,
				UniformityP: "—",
				HeatmapSVG:  template.HTML(atlas.HeatmapSVG(c)),
				DepthSVG:    template.HTML(atlas.DepthProfileSVG(c)),
			}
			if c.Uniformity != nil {
				ac.UniformityP = fmt.Sprintf("%.3g", c.Uniformity.P)
				ac.Alarm = c.Uniformity.Alarm
			}
			data.AtlasCells = append(data.AtlasCells, ac)
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashTemplate.Execute(w, data)
}

// Chart geometry: a fixed viewBox with margins for axis labels. Charts are
// rendered server-side as inline SVG so the page needs no script to show
// data (the only script is the SSE live-refresh hook).
const (
	chartW, chartH   = 320.0, 170.0
	marginL, marginB = 42.0, 24.0
	marginT, marginR = 10.0, 12.0
)

func xScale(v, max float64) float64 {
	if max <= 0 {
		return marginL
	}
	return marginL + (chartW-marginL-marginR)*v/max
}

func yScale(v, max float64) float64 {
	if max <= 0 {
		return chartH - marginB
	}
	return chartH - marginB - (chartH-marginT-marginB)*v/max
}

func fmtCoord(v float64) string { return strings.TrimSuffix(fmt.Sprintf("%.1f", v), ".0") }

// chartFrame opens an SVG with axes and y/x captions; the caller appends
// the data path and closes it.
func chartFrame(b *strings.Builder, title, xLabel, yLabel string) {
	fmt.Fprintf(b, `<svg viewBox="0 0 %g %g" class="chart" role="img" aria-label="%s">`, chartW, chartH, template.HTMLEscapeString(title))
	fmt.Fprintf(b, `<line class="axis" x1="%g" y1="%g" x2="%g" y2="%g"/>`, marginL, marginT, marginL, chartH-marginB)
	fmt.Fprintf(b, `<line class="axis" x1="%g" y1="%g" x2="%g" y2="%g"/>`, marginL, chartH-marginB, chartW-marginR, chartH-marginB)
	fmt.Fprintf(b, `<text class="lbl" x="%g" y="%g" text-anchor="middle">%s</text>`,
		(marginL+chartW-marginR)/2, chartH-4, template.HTMLEscapeString(xLabel))
	fmt.Fprintf(b, `<text class="lbl" x="12" y="%g" text-anchor="middle" transform="rotate(-90 12 %g)">%s</text>`,
		(marginT+chartH-marginB)/2, (marginT+chartH-marginB)/2, template.HTMLEscapeString(yLabel))
}

// survivalSVG renders the schedules-to-first-bug survival step function.
func survivalSVG(pts []SurvivalPoint, limit int) template.HTML {
	if len(pts) == 0 {
		return ""
	}
	maxX := float64(limit)
	if last := float64(pts[len(pts)-1].Schedules); last > maxX {
		maxX = last
	}
	var b strings.Builder
	chartFrame(&b, "survival curve", "schedules", "surviving")
	// y tick labels at 0 and 1
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">1</text>`, marginL-4, yScale(1, 1)+4)
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">0</text>`, marginL-4, yScale(0, 1)+4)
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">%d</text>`, chartW-marginR, chartH-marginB+14, int(maxX))
	// Step path: horizontal to each event time, then vertical drop.
	var p strings.Builder
	fmt.Fprintf(&p, "M%s %s", fmtCoord(xScale(0, maxX)), fmtCoord(yScale(pts[0].Surviving, 1)))
	prev := pts[0].Surviving
	for _, pt := range pts[1:] {
		fmt.Fprintf(&p, " H%s", fmtCoord(xScale(float64(pt.Schedules), maxX)))
		if pt.Surviving != prev {
			fmt.Fprintf(&p, " V%s", fmtCoord(yScale(pt.Surviving, 1)))
			prev = pt.Surviving
		}
	}
	fmt.Fprintf(&b, `<path class="line survival" d="%s"/>`, p.String())
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// growthSVG renders the interleaving-class union size per session.
func growthSVG(pts []AccumPoint) template.HTML {
	if len(pts) == 0 {
		return ""
	}
	maxX := float64(pts[len(pts)-1].Session)
	maxY := 0.0
	for _, pt := range pts {
		if y := float64(pt.Distinct); y > maxY {
			maxY = y
		}
	}
	var b strings.Builder
	chartFrame(&b, "interleaving-class growth", "sessions", "classes")
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">%d</text>`, marginL-4, yScale(maxY, maxY)+4, int(maxY))
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">%d</text>`, chartW-marginR, chartH-marginB+14, int(maxX))
	var coords []string
	// Anchor the curve at the origin: zero sessions, zero classes.
	coords = append(coords, fmtCoord(xScale(0, maxX))+","+fmtCoord(yScale(0, maxY)))
	for _, pt := range pts {
		coords = append(coords, fmtCoord(xScale(float64(pt.Session), maxX))+","+fmtCoord(yScale(float64(pt.Distinct), maxY)))
	}
	fmt.Fprintf(&b, `<polyline class="line growth" points="%s"/>`, strings.Join(coords, " "))
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// fmtSec renders a latency in seconds with a human unit (µs/ms/s).
func fmtSec(sec float64) string {
	switch {
	case sec <= 0:
		return "0"
	case sec < 0.001:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// fmtMedian renders the fleet-median throughput, "—" until enough worker
// samples exist to take a median (a zero here means "no data", and the
// dashboard must never dress no-data up as a measured 0 schedules/s).
func fmtMedian(v float64) string {
	if v <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f schedules/s", v)
}

var dashTemplate = template.Must(template.New("dash").Funcs(template.FuncMap{
	"mul100": func(v float64) float64 { return v * 100 },
	"sec":    fmtSec,
	"median": fmtMedian,
}).Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>surw campaign</title>
<style>
 body { font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem; color: #1a1d21; }
 h1 { font-size: 1.25rem; margin: 0 0 .25rem; }
 .meta { color: #5a6068; margin-bottom: 1rem; }
 .meta code { background: #f2f4f6; padding: 0 .3em; border-radius: 3px; }
 table { border-collapse: collapse; margin-bottom: 1.5rem; }
 th, td { padding: .3rem .7rem; border-bottom: 1px solid #e3e6ea; text-align: right; }
 th:first-child, td:first-child, th:nth-child(2), td:nth-child(2) { text-align: left; }
 th { color: #5a6068; font-weight: 600; }
 .cells { display: flex; flex-wrap: wrap; gap: 1.25rem; }
 .cell { border: 1px solid #e3e6ea; border-radius: 6px; padding: .75rem 1rem; }
 .cell h2 { font-size: 1rem; margin: 0 0 .5rem; }
 .chart { width: 320px; height: 170px; display: block; }
 .axis { stroke: #9aa1a9; stroke-width: 1; }
 .line { fill: none; stroke-width: 1.8; }
 .survival { stroke: #c0392b; }
 .growth { stroke: #2471a3; }
 .lbl { font-size: 10px; fill: #5a6068; }
 .tick { font-size: 9px; fill: #8a9098; }
 #live { color: #5a6068; font-size: .85rem; }
 .wk { font-size: .95rem; color: #5a6068; margin: 0 0 .5rem; font-weight: 600; }
 .err { background: #fdecea; border: 1px solid #e5b4ae; color: #8a2418; border-radius: 6px; padding: .5rem .8rem; margin-bottom: 1rem; }
 .health { border-radius: 6px; padding: .5rem .8rem; margin-bottom: 1rem; }
 .health.ok { background: #edf7ee; border: 1px solid #b7dcb9; color: #1f5c23; }
 .health.bad { background: #fdf3e7; border: 1px solid #e8c79a; color: #7a4c10; }
 .health ul { margin: .3rem 0 0 1.2rem; padding: 0; }
 .alarm { background: #c0392b; color: #fff; padding: 0 .35em; border-radius: 3px; font-size: .8em; font-weight: 700; }
 tr.drift td { background: #fdecea; }
</style>
</head>
<body>
<h1>surw campaign</h1>
<p class="meta">store <code>{{.Dir}}</code> · {{.Agg.Sessions}} sessions across {{len .Agg.Cells}} cells ({{.Targets}} targets) · build {{.Build.Version}}
{{- with .Agg.Metrics}} · {{printf "%.0f" .SchedulesPerSec}} schedules/s live{{end}}
 · <span id="live">stored <span id="stored">{{.Agg.Sessions}}</span></span></p>

{{with .Agg.RemoteErr}}
<p class="err">remote status unavailable: {{.}}</p>
{{end}}

{{with .Agg.Remote}}
<h2 class="wk">distributed: {{.SessionsDone}}/{{.SessionsPlanned}} sessions · {{.InFlightLeases}} leases in flight · {{.PendingBatches}} batches pending · {{.LeaseExpiries}} expiries · {{.DuplicateResults}} duplicates{{if .ClassObservations}} · {{.DistinctClasses}} distinct classes · {{printf "%.1f%%" (mul100 .DuplicateRate)}} dup rate{{end}}</h2>
{{with .Health}}
{{if .Healthy}}<p class="health ok">fleet healthy · median {{median .FleetMedianSchedulesPerSec}}</p>
{{else}}<div class="health bad">fleet: {{.StaleWorkers}} stale workers · {{.SlowCells}} slow cells · {{.AgingLeases}} aging leases · median {{median .FleetMedianSchedulesPerSec}}
<ul>{{range .Issues}}<li><strong>{{.Kind}}</strong> {{.Subject}} — {{.Detail}}</li>{{end}}</ul>
</div>{{end}}
{{end}}
<table>
<tr><th>worker</th><th>leases</th><th>sessions</th><th>busy s</th><th>utilization</th><th>last seen</th></tr>
{{range .Workers}}<tr>
 <td>{{.Name}}</td><td>{{.Leases}}</td><td>{{.Sessions}}</td>
 <td>{{printf "%.1f" .BusySeconds}}</td><td>{{printf "%.0f%%" (mul100 .Utilization)}}</td>
 <td>{{printf "%.0fs ago" .SecondsSinceSeen}}</td>
</tr>{{end}}
</table>
{{with .Latencies}}
<table>
<tr><th>operation</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr>
{{range .}}<tr>
 <td>{{.Op}}</td><td>{{.Count}}</td>
 <td>{{sec .P50}}</td><td>{{sec .P95}}</td><td>{{sec .P99}}</td>
</tr>{{end}}
</table>
{{end}}
{{end}}

<table>
<tr><th>target</th><th>algorithm</th><th>sessions</th><th>found</th><th>mean first-bug</th><th>interleavings</th><th>dedup classes</th><th>dup rate</th><th>GT coverage</th><th>Chao1 coverage</th></tr>
{{range .Cells}}<tr>
 <td>{{.Target}}</td><td>{{.Algorithm}}</td>
 <td>{{.SessionsStored}}</td><td>{{.Found}}</td><td>{{.MeanFirstBug}}</td>
 <td>{{with .Coverage}}{{.DistinctInterleavings}}{{else}}—{{end}}</td>
 <td>{{.DedupClasses}}</td><td>{{.DupRate}}</td>
 <td>{{.GTCoverage}}</td><td>{{.Chao1Pct}}</td>
</tr>{{end}}
</table>

{{if .Yields}}
<h2 class="wk">discovery yield</h2>
<table class="yield">
<tr><th>target</th><th>algorithm</th><th>samples</th><th>yield</th><th>GT unseen</th><th>survival slope</th><th>new-class rate</th><th>uniformity p</th></tr>
{{range .Yields}}<tr{{if .Alarm}} class="drift"{{end}}>
 <td>{{.Target}}</td><td>{{.Algorithm}}</td><td>{{.Samples}}</td>
 <td>{{.Score}}</td><td>{{.GTUnseen}}</td><td>{{.Slope}}</td><td>{{.NewRate}}</td>
 <td>{{.UniformityP}}{{if .Alarm}} <span class="alarm">DRIFT</span>{{end}}</td>
</tr>{{end}}
</table>
{{end}}

<div class="cells">
{{range .Cells}}<div class="cell">
 <h2>{{.Target}} · {{.Algorithm}}</h2>
 {{.SurvivalSVG}}
 {{.GrowthSVG}}
</div>{{end}}
</div>

{{if .AtlasCells}}
<h2 class="wk">exploration atlas</h2>
<div class="cells">
{{range .AtlasCells}}<div class="cell">
 <h2>{{.Target}} · {{.Algorithm}}</h2>
 <p class="meta">{{.Schedules}} schedules · {{.Decisions}} decisions · depth {{.MaxDepth}} · uniformity p {{.UniformityP}}{{if .Alarm}} <span class="alarm">DRIFT</span>{{end}}</p>
 {{.HeatmapSVG}}
 {{.DepthSVG}}
</div>{{end}}
</div>
{{end}}

<script>
(function () {
  var es = new EventSource('/events');
  es.addEventListener('session', function (e) {
    document.getElementById('stored').textContent = JSON.parse(e.data).stored;
  });
  es.addEventListener('cell', function () { location.reload(); });
})();
</script>
</body>
</html>
`))
