package campaign

// Discovery-yield estimation: how much is left to find in each cell.
// Served at /api/yield, exported as surw_yield_* gauges, rendered on the
// dashboard's yield panel, and (independently recomputed from its own
// ingested view) used by the coordinator's -yield-leases grant weighting.
// Like every aggregate, a pure function of the record set.

import "surw/internal/atlas"

// CellYield is one cell's discovery-yield estimate.
type CellYield struct {
	CellKey
	// SessionsStored mirrors the aggregate's session count.
	SessionsStored int `json:"sessions_stored"`
	// Samples is the size of the class stream the estimate is built on
	// (commutation classes when recorded, interleaving classes otherwise).
	Samples int `json:"samples"`
	// Scoreable reports whether the cell has enough data to score at all;
	// unscoreable cells render as "—", never as NaN or a fake zero.
	Scoreable bool `json:"scoreable"`
	// Yield is the score and its components (see atlas.Yield).
	Yield atlas.Yield `json:"yield"`
}

// Yields scores every cell of the rollup.
func (a *Aggregates) Yields() []CellYield {
	out := make([]CellYield, 0, len(a.Cells))
	for _, c := range a.Cells {
		out = append(out, yieldOfCell(c))
	}
	return out
}

func yieldOfCell(c CellAggregate) CellYield {
	y := CellYield{CellKey: c.CellKey, SessionsStored: c.SessionsStored}
	if c.SessionsStored == 0 {
		return y
	}
	sch := make([]int, len(c.Survival))
	surv := make([]float64, len(c.Survival))
	for i, p := range c.Survival {
		sch[i] = p.Schedules
		surv[i] = p.Surviving
	}
	slope := atlas.LateSurvivalDrop(sch, surv)

	var gt float64
	rate := 1.0
	switch {
	case c.Coverage != nil && c.Coverage.Dedup != nil && c.Coverage.Dedup.Samples > 0:
		dd := c.Coverage.Dedup
		gt, y.Samples = dd.GoodTuringUnseen, dd.Samples
		rate = growthRate(dd.Growth)
	case c.Coverage != nil && c.Coverage.Samples > 0:
		cov := c.Coverage
		gt, y.Samples = cov.GoodTuringUnseen, cov.Samples
		rate = growthRate(cov.Growth)
	default:
		// No class stream recorded: there is nothing to estimate unseen
		// mass from, so the cell is unscoreable (the survival component
		// alone would masquerade as a full score).
		return y
	}
	y.Scoreable = true
	y.Yield = atlas.Yield{
		Score:         atlas.ScoreYield(gt, slope, rate),
		GTUnseen:      gt,
		SurvivalSlope: slope,
		NewClassRate:  rate,
	}
	return y
}

func growthRate(pts []AccumPoint) float64 {
	sessions := make([]int, len(pts))
	distinct := make([]int, len(pts))
	for i, p := range pts {
		sessions[i] = p.Session
		distinct[i] = p.Distinct
	}
	return atlas.RecentNewRate(sessions, distinct)
}
