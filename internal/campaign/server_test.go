package campaign_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"surw/internal/campaign"
	"surw/internal/obs"
)

func testServer(t *testing.T) (*campaign.Store, *httptest.Server) {
	t.Helper()
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	campaignCells(t, st, 2, 1)
	srv := httptest.NewServer(campaign.NewServer(st, obs.NewMetrics()))
	t.Cleanup(func() { srv.Close(); st.Close() })
	return st, srv
}

func TestServerAPICampaign(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/api/campaign")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var agg campaign.Aggregates
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Sessions != 4 || len(agg.Cells) != 2 {
		t.Fatalf("api reports %d sessions / %d cells, want 4 / 2", agg.Sessions, len(agg.Cells))
	}
	if agg.Metrics == nil {
		t.Fatal("live server omitted the metrics snapshot")
	}
}

func TestServerMetricsPage(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	var body strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	page := body.String()
	for _, want := range []string{
		"surw_campaign_sessions_stored 4",
		"surw_campaign_cells_total 2",
		"surw_schedules_total",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

func TestServerEventsSSE(t *testing.T) {
	st, srv := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	readEvent := func() (string, campaign.Event) {
		t.Helper()
		var typ string
		var ev campaign.Event
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("sse read: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				typ = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Fatalf("sse data: %v", err)
				}
			case line == "" && typ != "":
				return typ, ev
			}
		}
	}

	typ, ev := readEvent()
	if typ != "snapshot" || ev.Stored != 4 || ev.Cells != 2 {
		t.Fatalf("first event = %s %+v, want snapshot with 4 stored / 2 cells", typ, ev)
	}
	// A live append must stream through.
	go func() {
		if _, err := st.Store(key(90), session(3)); err != nil {
			t.Error(err)
		}
	}()
	typ, ev = readEvent()
	if typ != "session" || ev.Session != 90 || ev.Stored != 5 {
		t.Fatalf("second event = %s %+v, want the appended session", typ, ev)
	}
}

func TestServerIndexAndBuildinfo(t *testing.T) {
	_, srv := testServer(t)

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	page := body.String()
	for _, want := range []string{"surw campaign", "CS/reorder_4", "<svg", "class=\"line survival\"", "EventSource"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Version == "" || !strings.HasPrefix(info.Go, "go") {
		t.Fatalf("buildinfo = %+v", info)
	}

	// Unknown paths 404 rather than serving the dashboard.
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}
