package campaign_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"surw/internal/campaign"
	"surw/internal/obs"
)

func testServer(t *testing.T) (*campaign.Store, *httptest.Server) {
	t.Helper()
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	campaignCells(t, st, 2, 1)
	srv := httptest.NewServer(campaign.NewServer(st, obs.NewMetrics()))
	t.Cleanup(func() { srv.Close(); st.Close() })
	return st, srv
}

func TestServerAPICampaign(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/api/campaign")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var agg campaign.Aggregates
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Sessions != 4 || len(agg.Cells) != 2 {
		t.Fatalf("api reports %d sessions / %d cells, want 4 / 2", agg.Sessions, len(agg.Cells))
	}
	if agg.Metrics == nil {
		t.Fatal("live server omitted the metrics snapshot")
	}
}

func TestServerMetricsPage(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	var body strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	page := body.String()
	for _, want := range []string{
		"surw_campaign_sessions_stored 4",
		"surw_campaign_cells_total 2",
		"surw_schedules_total",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

func TestServerEventsSSE(t *testing.T) {
	st, srv := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	readEvent := func() (string, campaign.Event) {
		t.Helper()
		var typ string
		var ev campaign.Event
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("sse read: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				typ = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Fatalf("sse data: %v", err)
				}
			case line == "" && typ != "":
				return typ, ev
			}
		}
	}

	typ, ev := readEvent()
	if typ != "snapshot" || ev.Stored != 4 || ev.Cells != 2 {
		t.Fatalf("first event = %s %+v, want snapshot with 4 stored / 2 cells", typ, ev)
	}
	// A live append must stream through.
	go func() {
		if _, err := st.Store(key(90), session(3)); err != nil {
			t.Error(err)
		}
	}()
	typ, ev = readEvent()
	if typ != "session" || ev.Session != 90 || ev.Stored != 5 {
		t.Fatalf("second event = %s %+v, want the appended session", typ, ev)
	}
}

// A dashboard client that disconnects must have its event subscription
// reclaimed, and a fresh client must get a fresh snapshot — the
// disconnect/reconnect cycle every browser tab exercises.
func TestServerEventsDisconnectReconnect(t *testing.T) {
	st, srv := testServer(t)
	broker := st.Events()

	waitSubs := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for broker.Subscribers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("subscribers = %d, want %d", broker.Subscribers(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	connect := func(ctx context.Context) (*http.Response, *bufio.Reader) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp, bufio.NewReader(resp.Body)
	}
	readSnapshot := func(r *bufio.Reader) campaign.Event {
		t.Helper()
		var ev campaign.Event
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("sse read: %v", err)
			}
			if strings.HasPrefix(line, "data: ") {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
					t.Fatal(err)
				}
				return ev
			}
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	resp1, r1 := connect(ctx1)
	if ev := readSnapshot(r1); ev.Stored != 4 {
		t.Fatalf("first snapshot: %+v", ev)
	}
	waitSubs(1)

	// Drop the client mid-stream: the handler must notice and unsubscribe.
	cancel1()
	resp1.Body.Close()
	waitSubs(0)

	// The store keeps moving while nobody is watching.
	if _, err := st.Store(key(91), session(3)); err != nil {
		t.Fatal(err)
	}

	// A reconnecting client starts from a snapshot that includes what it
	// missed, then streams live events again.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	resp2, r2 := connect(ctx2)
	defer resp2.Body.Close()
	if ev := readSnapshot(r2); ev.Stored != 5 {
		t.Fatalf("reconnect snapshot: %+v, want the appended session counted", ev)
	}
	go func() {
		if _, err := st.Store(key(92), session(3)); err != nil {
			t.Error(err)
		}
	}()
	if ev := readSnapshot(r2); ev.Session != 92 {
		t.Fatalf("post-reconnect event: %+v, want session 92", ev)
	}
}

// An unreachable coordinator surfaces as an error banner and as
// remote_error in the API — never as a silently empty fleet view — and
// the metrics page stays parseable.
func TestServerRemoteErrorSurfaces(t *testing.T) {
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	campaignCells(t, st, 1, 1)
	s := campaign.NewServer(st, nil)
	s.SetRemote(func() (*campaign.RemoteStatus, error) {
		return nil, fmt.Errorf("fetch http://coordinator:7071/v1/status: connection refused")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var agg campaign.Aggregates
	resp, err := http.Get(srv.URL + "/api/campaign")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if agg.Remote != nil {
		t.Fatal("failed fetch still produced a remote view")
	}
	if !strings.Contains(agg.RemoteErr, "connection refused") {
		t.Fatalf("remote_error = %q", agg.RemoteErr)
	}

	page := get(t, srv.URL+"/")
	if !strings.Contains(page, "remote status unavailable") || !strings.Contains(page, "connection refused") {
		t.Fatalf("dashboard hides the remote error:\n%s", page)
	}

	metrics := get(t, srv.URL+"/metrics")
	if err := obs.LintPrometheus(strings.NewReader(metrics)); err != nil {
		t.Fatalf("metrics page with failing remote does not lint: %v", err)
	}
}

// The health panel and latency table render from a remote status, and the
// full metrics page — campaign counters, obs aggregate, remote gauges,
// fleet latency histograms, health gauges — passes the Prometheus lint.
func TestServerHealthPanelAndMetricsLint(t *testing.T) {
	_, srv := testServer(t)
	page := get(t, srv.URL+"/metrics")
	if err := obs.LintPrometheus(strings.NewReader(page)); err != nil {
		t.Fatalf("base metrics page does not lint: %v", err)
	}

	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	campaignCells(t, st, 1, 1)
	var lat obs.LatencySet
	lat.Observe("session", 40*time.Millisecond)
	lat.Observe("lease_rpc", 2*time.Millisecond)
	rs := &campaign.RemoteStatus{
		SessionsPlanned: 8, SessionsDone: 4,
		Latencies: lat.Snapshots(),
		Health: &campaign.HealthReport{
			StaleWorkers: 1,
			Issues: []campaign.HealthIssue{{
				Kind: campaign.HealthStaleWorker, Subject: "w-lost",
				Detail: "no request for 4m0s",
			}},
		},
	}
	s := campaign.NewServer(st, nil)
	s.SetRemote(func() (*campaign.RemoteStatus, error) { return rs, nil })
	srv2 := httptest.NewServer(s)
	defer srv2.Close()

	html := get(t, srv2.URL+"/")
	for _, want := range []string{"stale workers", "w-lost", "p95", "lease_rpc"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	metrics := get(t, srv2.URL+"/metrics")
	for _, want := range []string{"surw_health_ok 0", "surw_fleet_latency_seconds_bucket"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	if err := obs.LintPrometheus(strings.NewReader(metrics)); err != nil {
		t.Fatalf("remote metrics page does not lint: %v", err)
	}

	// A healthy fleet renders the quiet banner.
	rs.Health = &campaign.HealthReport{Healthy: true}
	if html := get(t, srv2.URL+"/"); !strings.Contains(html, "fleet healthy") {
		t.Error("healthy fleet banner missing")
	}
}

// get fetches a URL's body as a string.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestServerIndexAndBuildinfo(t *testing.T) {
	_, srv := testServer(t)

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	page := body.String()
	for _, want := range []string{"surw campaign", "CS/reorder_4", "<svg", "class=\"line survival\"", "EventSource"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Version == "" || !strings.HasPrefix(info.Go, "go") {
		t.Fatalf("buildinfo = %+v", info)
	}

	// Unknown paths 404 rather than serving the dashboard.
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}
