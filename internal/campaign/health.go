package campaign

// Fleet health: the coordinator's stall-detection verdicts in a wire form
// the dashboard and /api/health can serve. Defined here for the same
// layering reason as RemoteStatus — remote imports campaign, never the
// other way — and, like RemoteStatus, health is live-only: it never
// appears in aggregates.json.

import (
	"fmt"
	"io"
)

// Health issue kinds.
const (
	HealthStaleWorker = "stale_worker" // no request from the worker for too long
	HealthSlowCell    = "slow_cell"    // cell schedules/s below a fraction of the fleet median
	HealthAgingLease  = "aging_lease"  // lease outstanding far beyond its TTL
)

// HealthIssue is one flagged condition.
type HealthIssue struct {
	Kind string `json:"kind"` // one of the Health* constants
	// Subject names what is unhealthy: a worker name, a cell "target/alg",
	// or a lease ID.
	Subject string `json:"subject"`
	// Detail is a human-readable explanation with the numbers that tripped
	// the rule.
	Detail string `json:"detail"`
}

// HealthReport is one evaluation of the fleet health rules.
type HealthReport struct {
	Healthy      bool `json:"healthy"`
	StaleWorkers int  `json:"stale_workers"`
	SlowCells    int  `json:"slow_cells"`
	AgingLeases  int  `json:"aging_leases"`
	// FleetMedianSchedulesPerSec anchors the slow-cell rule; 0 until enough
	// cells have reported throughput.
	FleetMedianSchedulesPerSec float64       `json:"fleet_median_schedules_per_sec"`
	Issues                     []HealthIssue `json:"issues,omitempty"`
}

// WritePrometheus renders the report as surw_health_* gauges.
func (h *HealthReport) WritePrometheus(w io.Writer) error {
	healthy := 0
	if h.Healthy {
		healthy = 1
	}
	fmt.Fprintf(w, "# HELP surw_health_ok 1 when no health rule is tripped.\n# TYPE surw_health_ok gauge\nsurw_health_ok %d\n", healthy)
	fmt.Fprintf(w, "# HELP surw_health_stale_workers Workers with no request inside the staleness deadline.\n# TYPE surw_health_stale_workers gauge\nsurw_health_stale_workers %d\n", h.StaleWorkers)
	fmt.Fprintf(w, "# HELP surw_health_slow_cells Cells with schedule throughput below the slow-cell fraction of the fleet median.\n# TYPE surw_health_slow_cells gauge\nsurw_health_slow_cells %d\n", h.SlowCells)
	fmt.Fprintf(w, "# HELP surw_health_aging_leases Leases outstanding beyond the aging deadline.\n# TYPE surw_health_aging_leases gauge\nsurw_health_aging_leases %d\n", h.AgingLeases)
	_, err := fmt.Fprintf(w, "# HELP surw_health_fleet_median_schedules_per_second Median per-cell schedule throughput across the fleet.\n# TYPE surw_health_fleet_median_schedules_per_second gauge\nsurw_health_fleet_median_schedules_per_second %g\n", h.FleetMedianSchedulesPerSec)
	return err
}
