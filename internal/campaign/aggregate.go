package campaign

// Campaign-level aggregation: everything the dashboard and aggregates.json
// derive from the run-store. The computation reads only the indexed wire
// records in canonical (cell, session) order, so its output is a pure
// function of the record set — byte-identical whether the campaign ran
// uninterrupted or was killed and resumed, at any worker count.

import (
	"io"
	"sort"

	"surw/internal/obs"
	"surw/internal/runner"
	"surw/internal/stats"
)

// Aggregates is the campaign-wide rollup served at /api/campaign and
// written to aggregates.json.
type Aggregates struct {
	Version  int              `json:"version"`
	Sessions int              `json:"sessions"` // session records aggregated
	Cells    []CellAggregate  `json:"cells"`
	Metrics  *MetricsSnapshot `json:"metrics,omitempty"` // live only, see Serve
	Remote   *RemoteStatus    `json:"remote,omitempty"`  // live only: distributed campaigns
	// RemoteErr carries the error of a failed remote-status fetch (e.g.
	// surwdash -remote pointed at a wrong or dead coordinator), so the
	// dashboard can say why the fleet view is missing instead of silently
	// rendering an empty one. Live only, like Remote: WriteAggregates
	// builds from the store alone, so it never reaches aggregates.json.
	RemoteErr string `json:"remote_error,omitempty"`
}

// MetricsSnapshot is the JSON form of the obs.Metrics aggregate attached to
// a live campaign (never part of aggregates.json: throughput is a property
// of one run, not of the stored results).
type MetricsSnapshot struct {
	Schedules       int64   `json:"schedules"`
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	StepsPerSched   float64 `json:"steps_per_schedule"`
	TruncationRate  float64 `json:"truncation_rate"`
	Utilization     float64 `json:"worker_utilization"`
}

// CellAggregate is the rollup of one (target, algorithm) cell.
type CellAggregate struct {
	CellKey
	// SessionsStored counts the session records present (a partially
	// completed cell shows fewer than the campaign's session budget).
	SessionsStored int `json:"sessions_stored"`
	// Found counts sessions whose bug was exposed.
	Found int `json:"found"`
	// FirstBug summarizes schedules-to-first-bug over the finding sessions.
	FirstBug *SummaryJSON `json:"first_bug,omitempty"`
	// Survival is the schedules-to-first-bug survival curve (the paper's
	// Figure 5 shape, here for every cell): the fraction of sessions still
	// bug-free after x schedules, stepping down at each distinct first-bug
	// time. Sessions that never found the bug censor at the limit.
	Survival []SurvivalPoint `json:"survival,omitempty"`
	// DistinctBugs is the sorted union of bug IDs across sessions.
	DistinctBugs []string `json:"distinct_bugs,omitempty"`
	// BugAccumulation tracks distinct-bug growth over sessions in session
	// order: one point per session that grew the set.
	BugAccumulation []AccumPoint `json:"bug_accumulation,omitempty"`
	// Coverage holds the interleaving-class tallies and schedule-space
	// coverage estimates (present only for coverage-recording cells).
	Coverage *CoverageAggregate `json:"coverage,omitempty"`
}

// SummaryJSON is the wire form of stats.Summary.
type SummaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// SurvivalPoint is one step of a survival curve.
type SurvivalPoint struct {
	Schedules int     `json:"schedules"`
	Surviving float64 `json:"surviving"` // fraction of sessions still bug-free
}

// AccumPoint is one step of an accumulation curve over sessions.
type AccumPoint struct {
	Session  int `json:"session"` // 1-based count of sessions folded in
	Distinct int `json:"distinct"`
}

// CoverageAggregate pools the interleaving-fingerprint frequency counts of
// a cell's sessions and estimates how much of the schedule space the cell
// has explored.
type CoverageAggregate struct {
	// Samples is the number of coverage-recorded schedules pooled.
	Samples int `json:"samples"`
	// DistinctInterleavings / DistinctBehaviors are the observed class
	// counts (the union across sessions).
	DistinctInterleavings int `json:"distinct_interleavings"`
	DistinctBehaviors     int `json:"distinct_behaviors,omitempty"`
	// GoodTuringUnseen is the estimated probability the next schedule
	// witnesses a never-seen interleaving class (f1/n); GoodTuringCoverage
	// is its complement, the sample coverage.
	GoodTuringUnseen   float64 `json:"good_turing_unseen"`
	GoodTuringCoverage float64 `json:"good_turing_coverage"`
	// Chao1 is the estimated total number of reachable interleaving
	// classes; ClassCoverage = observed/Chao1 is the dashboard's "covered
	// an estimated N% of reachable classes".
	Chao1         float64 `json:"chao1"`
	ClassCoverage float64 `json:"class_coverage"`
	// Growth is the interleaving-class union size after each session, in
	// session order: the campaign-level class-growth curve.
	Growth []AccumPoint `json:"growth,omitempty"`
	// Dedup is the commutation-class-deduplicated view of the same cell
	// (absent when the records predate class fingerprints).
	Dedup *DedupAggregate `json:"dedup,omitempty"`
}

// DedupAggregate mirrors the coverage estimates over commutation classes
// (sched.Result.ClassHash) instead of order-sensitive interleavings: two
// schedules that differ only by commuting independent events count once.
// Like everything in aggregates.json it is a pure function of the record
// set — the live seen-class filter plays no part in it.
type DedupAggregate struct {
	// Samples is the number of schedules pooled into the class tallies.
	Samples int `json:"samples"`
	// DistinctClasses is the union of class fingerprints across sessions.
	DistinctClasses int `json:"distinct_classes"`
	// DupSchedules sums the sessions' within-session duplicate counts;
	// DuplicateRate is the pooled fleet view: the fraction of sampled
	// schedules whose class had already been seen by any session of the
	// cell, 1 - distinct/samples.
	DupSchedules  int     `json:"dup_schedules"`
	DuplicateRate float64 `json:"duplicate_rate"`
	// Good–Turing and Chao1 over the class frequency counts: the estimated
	// probability the next schedule lands in a never-seen class, the
	// estimated number of reachable classes, and the fraction covered.
	GoodTuringUnseen   float64 `json:"good_turing_unseen"`
	GoodTuringCoverage float64 `json:"good_turing_coverage"`
	Chao1              float64 `json:"chao1"`
	ClassCoverage      float64 `json:"class_coverage"`
	// Growth is the distinct-class union size after each session.
	Growth []AccumPoint `json:"growth,omitempty"`
}

// Aggregate computes the campaign rollup from the store's current index.
func (s *Store) Aggregate() *Aggregates {
	recs := s.snapshot()
	agg := &Aggregates{Version: Version, Sessions: len(recs)}
	keys := sortedKeys(recs)
	for start := 0; start < len(keys); {
		end := start
		cell := cellOf(keys[start])
		for end < len(keys) && cellOf(keys[end]) == cell {
			end++
		}
		agg.Cells = append(agg.Cells, aggregateCell(cell, keys[start:end], recs))
		start = end
	}
	return agg
}

// aggregateCell rolls up one cell's session records (already in session
// order).
func aggregateCell(cell CellKey, keys []runner.SessionKey, recs map[runner.SessionKey]sessionWire) CellAggregate {
	ca := CellAggregate{CellKey: cell, SessionsStored: len(keys)}

	var firstBugs []float64
	bugSet := make(map[string]bool)
	pooled := make(map[string]int)
	pooledClasses := make(map[string]int)
	behaviors := make(map[string]bool)
	covSamples, covSessions := 0, 0
	classSamples, classSessions, dupSum := 0, 0, 0
	for _, k := range keys {
		w := recs[k]
		if w.FirstBug >= 0 {
			ca.Found++
			firstBugs = append(firstBugs, float64(w.FirstBug))
		}
		for id := range w.Bugs {
			bugSet[id] = true
		}
		if len(bugSet) > lastDistinct(ca.BugAccumulation) {
			ca.BugAccumulation = append(ca.BugAccumulation, AccumPoint{Session: k.Session + 1, Distinct: len(bugSet)})
		}
		if w.Cov != nil {
			covSessions++
			for fp, n := range w.Cov.Interleavings {
				pooled[fp] += n
				covSamples += n
			}
			for b := range w.Cov.Behaviors {
				behaviors[b] = true
			}
			cov := ensureCoverage(&ca)
			cov.Growth = append(cov.Growth, AccumPoint{Session: k.Session + 1, Distinct: len(pooled)})
			if len(w.Cov.Classes) > 0 {
				classSessions++
				dupSum += w.Cov.DupSchedules
				for fp, n := range w.Cov.Classes {
					pooledClasses[fp] += n
					classSamples += n
				}
				dd := ensureDedup(cov)
				dd.Growth = append(dd.Growth, AccumPoint{Session: k.Session + 1, Distinct: len(pooledClasses)})
			}
		}
	}
	if len(firstBugs) > 0 {
		sum := stats.Summarize(firstBugs)
		ca.FirstBug = &SummaryJSON{N: sum.N, Mean: sum.Mean, Std: sum.Std, Min: sum.Min, Max: sum.Max}
	}
	ca.Survival = survivalCurve(keys, recs, cell.Limit)
	for id := range bugSet {
		ca.DistinctBugs = append(ca.DistinctBugs, id)
	}
	sort.Strings(ca.DistinctBugs)
	if covSessions > 0 {
		cov := ensureCoverage(&ca)
		cov.Samples = covSamples
		cov.DistinctInterleavings = len(pooled)
		cov.DistinctBehaviors = len(behaviors)
		counts := stats.CountsOfMap(pooled)
		cov.GoodTuringUnseen = stats.GoodTuringUnseen(counts)
		cov.GoodTuringCoverage = stats.GoodTuringCoverage(counts)
		cov.Chao1 = stats.Chao1(counts)
		cov.ClassCoverage = stats.Chao1Coverage(counts)
	}
	if classSessions > 0 {
		dd := ensureDedup(ca.Coverage)
		dd.Samples = classSamples
		dd.DistinctClasses = len(pooledClasses)
		dd.DupSchedules = dupSum
		if classSamples > 0 {
			dd.DuplicateRate = float64(classSamples-len(pooledClasses)) / float64(classSamples)
		}
		counts := stats.CountsOfMap(pooledClasses)
		dd.GoodTuringUnseen = stats.GoodTuringUnseen(counts)
		dd.GoodTuringCoverage = stats.GoodTuringCoverage(counts)
		dd.Chao1 = stats.Chao1(counts)
		dd.ClassCoverage = stats.Chao1Coverage(counts)
	}
	return ca
}

func ensureDedup(cov *CoverageAggregate) *DedupAggregate {
	if cov.Dedup == nil {
		cov.Dedup = &DedupAggregate{}
	}
	return cov.Dedup
}

func ensureCoverage(ca *CellAggregate) *CoverageAggregate {
	if ca.Coverage == nil {
		ca.Coverage = &CoverageAggregate{}
	}
	return ca.Coverage
}

func lastDistinct(pts []AccumPoint) int {
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Distinct
}

// survivalCurve builds the empirical survival function of
// schedules-to-first-bug: S(0) = 1, stepping down at each distinct
// first-bug time; sessions that never found the bug survive past the
// limit (right-censoring, rendered as a flat tail).
func survivalCurve(keys []runner.SessionKey, recs map[runner.SessionKey]sessionWire, limit int) []SurvivalPoint {
	n := len(keys)
	if n == 0 {
		return nil
	}
	var times []int
	for _, k := range keys {
		if fb := recs[k].FirstBug; fb >= 0 {
			times = append(times, fb)
		}
	}
	if len(times) == 0 {
		return []SurvivalPoint{{Schedules: 0, Surviving: 1}, {Schedules: limit, Surviving: 1}}
	}
	sort.Ints(times)
	out := []SurvivalPoint{{Schedules: 0, Surviving: 1}}
	dead := 0
	for i := 0; i < len(times); {
		j := i
		for j < len(times) && times[j] == times[i] {
			j++
		}
		dead += j - i
		out = append(out, SurvivalPoint{Schedules: times[i], Surviving: float64(n-dead) / float64(n)})
		i = j
	}
	if last := out[len(out)-1]; last.Schedules < limit {
		out = append(out, SurvivalPoint{Schedules: limit, Surviving: last.Surviving})
	}
	return out
}

// WriteAggregates renders the store's aggregates as the repository's
// canonical pretty-printed JSON. The bytes are a pure function of the
// record set: an interrupted-and-resumed campaign writes the same file as
// an uninterrupted one, at any worker count.
func WriteAggregates(w io.Writer, s *Store) error {
	return obs.WriteJSON(w, s.Aggregate())
}
