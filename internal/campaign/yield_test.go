package campaign_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"surw/internal/atlas"
	"surw/internal/campaign"
	"surw/internal/obs"
	"surw/internal/runner"
	"surw/internal/sctbench"
)

// TestYieldsFromCampaign scores the standard two-cell campaign: both
// cells ran with coverage on, so both must be scoreable with components
// in range.
func TestYieldsFromCampaign(t *testing.T) {
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	campaignCells(t, st, 3, 1)

	yields := st.Aggregate().Yields()
	if len(yields) != 2 {
		t.Fatalf("got %d yield rows, want 2", len(yields))
	}
	for _, y := range yields {
		if !y.Scoreable {
			t.Fatalf("%s/%s: coverage cell not scoreable: %+v", y.Target, y.Algorithm, y)
		}
		if y.Samples <= 0 || y.SessionsStored != 3 {
			t.Fatalf("%s/%s: samples/sessions wrong: %+v", y.Target, y.Algorithm, y)
		}
		v := y.Yield
		if v.Score < 0 || v.Score > 1 || v.GTUnseen < 0 || v.GTUnseen > 1 ||
			v.SurvivalSlope < 0 || v.SurvivalSlope > 1 || v.NewClassRate < 0 || v.NewClassRate > 1 {
			t.Fatalf("%s/%s: component out of range: %+v", y.Target, y.Algorithm, v)
		}
	}
}

// TestYieldsDegenerateCells pins the unscoreable paths: a cell with zero
// stored sessions, and a cell whose sessions recorded no class stream,
// both come back Scoreable=false with a zero Yield — never NaN.
func TestYieldsDegenerateCells(t *testing.T) {
	agg := &campaign.Aggregates{Cells: []campaign.CellAggregate{
		{CellKey: campaign.CellKey{Target: "t", Algorithm: "empty"}},
		{CellKey: campaign.CellKey{Target: "t", Algorithm: "nocov"}, SessionsStored: 2,
			Survival: []campaign.SurvivalPoint{{Schedules: 0, Surviving: 1}, {Schedules: 50, Surviving: 0.5}}},
	}}
	for _, y := range agg.Yields() {
		if y.Scoreable {
			t.Fatalf("%s: degenerate cell scored: %+v", y.Algorithm, y)
		}
		if y.Yield != (atlas.Yield{}) {
			t.Fatalf("%s: unscoreable cell carries a nonzero yield: %+v", y.Algorithm, y.Yield)
		}
	}
}

// atlasServer builds a server over a real campaign with a synthetic-but-
// live atlas registry attached: one uniform cell and one heavily biased
// cell whose drift alarm has tripped.
func atlasServer(t *testing.T) (*campaign.Store, *httptest.Server) {
	t.Helper()
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	campaignCells(t, st, 2, 1)
	// A third cell without coverage: sessions stored, but no class stream,
	// so its yield row must render as "—" across the board.
	tgt, _ := sctbench.ByName("CS/reorder_4")
	if _, err := runner.RunTarget(tgt, "URW", runner.Config{
		Sessions: 1, Limit: 50, Seed: 11, Workers: 1, Store: st,
	}); err != nil {
		t.Fatal(err)
	}

	reg := atlas.New()
	good := reg.Cell("CS/reorder_4", "SURW")
	acc := good.Accum()
	for i := 0; i < 320; i++ {
		acc.BeginSchedule()
		acc.Decision(1, 3, uint64(i))
		acc.Decision(5, 2, uint64(i*7))
		good.ObserveSchedule(uint64(i % 5)) // uniform over 5 classes
	}
	bad := reg.Cell("CS/reorder_4", "RW")
	bacc := bad.Accum()
	for i := 0; i < 384; i++ {
		bacc.BeginSchedule()
		bacc.Decision(1, 2, uint64(i))
		class := uint64(0)
		if i%38 == 0 {
			class = 1 // ~10 of 384 samples in the minority class
		}
		bad.ObserveSchedule(class)
	}

	s := campaign.NewServer(st, nil)
	s.SetAtlas(func() (*atlas.Snapshot, error) { return reg.Snapshot(), nil })
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); st.Close() })
	return st, srv
}

// TestServerYieldAndAtlasPanels drives the dashboard end to end: the
// yield table with its degenerate "—" row, the atlas heatmap and depth
// profile, the uniformity gauges with the biased cell's DRIFT badge, and
// the guarantee that nothing anywhere renders as NaN.
func TestServerYieldAndAtlasPanels(t *testing.T) {
	_, srv := atlasServer(t)

	page := get(t, srv.URL+"/")
	for _, want := range []string{
		"discovery yield",
		"exploration atlas",
		"atlas-heatmap",
		"atlas-depth",
		"uniformity p",
		"DRIFT",
		"—", // the coverage-less URW cell's yield row
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "NaN") {
		t.Error("dashboard rendered a NaN")
	}

	var rep campaign.YieldReport
	resp, err := http.Get(srv.URL + "/api/yield")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("/api/yield has %d cells, want 3", len(rep.Cells))
	}
	byAlg := make(map[string]campaign.YieldCell)
	for _, c := range rep.Cells {
		byAlg[c.Algorithm] = c
	}
	if !byAlg["SURW"].Scoreable || !byAlg["RW"].Scoreable {
		t.Fatalf("coverage cells unscoreable: %+v", rep.Cells)
	}
	if byAlg["URW"].Scoreable {
		t.Fatalf("coverage-less cell scored: %+v", byAlg["URW"])
	}
	if u := byAlg["SURW"].Uniformity; u == nil || u.Alarm || u.Samples != 320 {
		t.Fatalf("SURW uniformity wrong: %+v", u)
	}
	if u := byAlg["RW"].Uniformity; u == nil || !u.Alarm {
		t.Fatalf("biased RW cell did not alarm: %+v", u)
	}
}

// TestServerAtlasMetrics holds the /metrics contract: surw_yield_* and
// surw_atlas_* families appear with an atlas attached, the biased cell
// exports drift_alarm 1, and the whole page still lints.
func TestServerAtlasMetrics(t *testing.T) {
	_, srv := atlasServer(t)
	page := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"surw_yield_score{target=\"CS/reorder_4\",algorithm=\"SURW\"}",
		"surw_yield_gt_unseen{target=\"CS/reorder_4\",algorithm=\"RW\"}",
		"surw_atlas_schedules{target=\"CS/reorder_4\",algorithm=\"SURW\"} 320",
		"surw_atlas_decisions{target=\"CS/reorder_4\",algorithm=\"SURW\"} 640",
		"surw_atlas_uniformity_p{target=\"CS/reorder_4\",algorithm=\"SURW\"}",
		"surw_atlas_drift_alarm{target=\"CS/reorder_4\",algorithm=\"RW\"} 1",
		"surw_atlas_drift_alarm{target=\"CS/reorder_4\",algorithm=\"SURW\"} 0",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	// The coverage-less URW cell must not export a fake yield score.
	if strings.Contains(page, "surw_yield_score{target=\"CS/reorder_4\",algorithm=\"URW\"}") {
		t.Error("unscoreable cell exported a yield score")
	}
	if err := obs.LintPrometheus(strings.NewReader(page)); err != nil {
		t.Fatalf("atlas metrics page does not lint: %v", err)
	}
}

// TestServerFleetMedianGuard pins the health-panel degenerate guard: a
// zero fleet median renders as "—", a real one as a number.
func TestServerFleetMedianGuard(t *testing.T) {
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	campaignCells(t, st, 1, 1)
	rs := &campaign.RemoteStatus{Health: &campaign.HealthReport{Healthy: true}}
	s := campaign.NewServer(st, nil)
	s.SetRemote(func() (*campaign.RemoteStatus, error) { return rs, nil })
	srv := httptest.NewServer(s)
	defer srv.Close()

	if page := get(t, srv.URL+"/"); !strings.Contains(page, "median —") {
		t.Error("zero fleet median not rendered as —")
	}
	rs.Health.FleetMedianSchedulesPerSec = 1200
	if page := get(t, srv.URL+"/"); !strings.Contains(page, "median 1200 schedules/s") {
		t.Error("nonzero fleet median not rendered")
	}
}
