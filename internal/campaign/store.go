package campaign

// The run-store: an append-only runs.jsonl with an in-memory index, opened
// once per process. One process writes a store at a time; any number may
// read it (the standalone dashboard tails it via Poll).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"surw/internal/runner"
)

const (
	manifestName = "manifest.json"
	runsName     = "runs.jsonl"
)

// Event is one live campaign notification, streamed to dashboard
// subscribers over SSE.
type Event struct {
	// Type is "session" (one session record landed), "cell" (a RunTarget
	// batch finished), or "snapshot" (sent once per SSE subscription with
	// the store's current totals).
	Type      string `json:"type"`
	Target    string `json:"target,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Limit     int    `json:"limit,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	// Session is the session index of a "session" event.
	Session int `json:"session,omitempty"`
	// FirstBug is the session's schedules-to-first-bug (-1 = none).
	FirstBug int `json:"first_bug,omitempty"`
	// Found/Sessions summarize a "cell" event.
	Found    int `json:"found,omitempty"`
	Sessions int `json:"sessions,omitempty"`
	// Stored is the total number of session records in the store.
	Stored int `json:"stored"`
	// Cells is the number of cells completed by this process.
	Cells int `json:"cells,omitempty"`
}

// Broker fans campaign events out to any number of subscribers. Publishing
// never blocks: a subscriber that falls behind loses events, not the
// campaign (the dashboard is a viewport, not a journal — the journal is
// runs.jsonl).
type Broker struct {
	mu   sync.Mutex
	subs map[chan Event]bool
}

// NewBroker returns an empty broker.
func NewBroker() *Broker { return &Broker{subs: make(map[chan Event]bool)} }

// Subscribe registers a new subscriber channel (buffered).
func (b *Broker) Subscribe() chan Event {
	ch := make(chan Event, 64)
	b.mu.Lock()
	b.subs[ch] = true
	b.mu.Unlock()
	return ch
}

// Subscribers returns the number of live subscriptions — the dashboard's
// connected-client count, and the handle SSE lifecycle tests watch to
// prove a disconnected client's subscription is reclaimed.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Unsubscribe removes a subscriber; its channel is closed.
func (b *Broker) Unsubscribe(ch chan Event) {
	b.mu.Lock()
	if b.subs[ch] {
		delete(b.subs, ch)
		close(ch)
	}
	b.mu.Unlock()
}

// Publish delivers ev to every subscriber that has buffer room.
func (b *Broker) Publish(ev Event) {
	b.mu.Lock()
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	b.mu.Unlock()
}

// Store is the crash-safe run-store. It implements runner.SessionStore
// (Lookup/Store) and runner.BatchObserver (CellDone). All methods are safe
// for concurrent use; parallel sessions hit it from many workers.
type Store struct {
	// CellHook, when non-nil, runs synchronously after each CellDone with
	// the cell event. `surwbench -stop-after-cells` uses it to inject a
	// crash for the resume smoke test.
	CellHook func(Event)

	mu     sync.Mutex
	dir    string
	f      *os.File // runs.jsonl, append-only
	offset int64    // bytes of runs.jsonl already indexed
	recs   map[runner.SessionKey]sessionWire
	cells  int // CellDone count this process
	events *Broker
}

// Open opens (creating if needed) the store directory for writing,
// recovers the index from runs.jsonl — truncating a torn trailing line
// left by a crash — and readies the file for appends.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store dir: %w", err)
	}
	if err := checkManifest(dir, true); err != nil {
		return nil, err
	}
	s, keep, size, err := load(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, runsName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open %s: %w", path, err)
	}
	if keep < size {
		// A torn trailing line: drop the partial bytes so the next append
		// starts on a fresh line.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: truncate torn tail of %s: %w", path, err)
		}
	}
	s.f = f
	return s, nil
}

// OpenRead opens an existing store read-only: no manifest is created, no
// torn tail is truncated (the writing process owns the file), and Store
// returns an error. The standalone dashboard opens stores this way and
// follows appends with Poll.
func OpenRead(dir string) (*Store, error) {
	if err := checkManifest(dir, false); err != nil {
		return nil, err
	}
	s, _, _, err := load(dir)
	return s, err
}

// load builds the in-memory index and returns (store, offset-after-last-
// complete-line, file size).
func load(dir string) (*Store, int64, int64, error) {
	s := &Store{
		dir:    dir,
		recs:   make(map[runner.SessionKey]sessionWire),
		events: NewBroker(),
	}
	path := filepath.Join(dir, runsName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, 0, fmt.Errorf("campaign: read %s: %w", path, err)
	}
	keep, err := s.indexLines(data, path)
	if err != nil {
		return nil, 0, 0, err
	}
	s.offset = keep
	return s, keep, int64(len(data)), nil
}

// checkManifest writes the manifest on first writable open and verifies
// the wire version on every later one.
func checkManifest(dir string, create bool) error {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if !create {
			return fmt.Errorf("campaign: %s is not a campaign store (no %s)", dir, manifestName)
		}
		return os.WriteFile(path, []byte(fmt.Sprintf("{\"version\":%d}\n", Version)), 0o644)
	}
	if err != nil {
		return fmt.Errorf("campaign: read manifest: %w", err)
	}
	var m struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("campaign: parse manifest %s: %w", path, err)
	}
	if m.Version != Version {
		return fmt.Errorf("campaign: store %s has wire version %d, this build speaks %d", dir, m.Version, Version)
	}
	return nil
}

// indexLines folds the complete lines of data into the index and returns
// the byte offset after the last complete line. A non-final unparsable
// line is corruption and errors out; a torn final line is the expected
// crash artifact and is simply not counted.
func (s *Store) indexLines(data []byte, path string) (int64, error) {
	offset := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Torn tail: no trailing newline means the append died mid-write.
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			offset += int64(nl + 1)
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if len(data) == 0 {
				// Final line, parse error: torn mid-write even though a stray
				// newline made it to disk. Drop it.
				break
			}
			return 0, fmt.Errorf("campaign: corrupt record in %s at byte %d: %v", path, offset, err)
		}
		if rec.V != Version {
			return 0, fmt.Errorf("campaign: record in %s has version %d, want %d", path, rec.V, Version)
		}
		s.recs[rec.Key.decode()] = rec.Session
		offset += int64(nl + 1)
	}
	return offset, nil
}

// Close syncs and closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of session records indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Events returns the store's event broker for SSE subscriptions.
func (s *Store) Events() *Broker { return s.events }

// Cells returns the number of cells completed by this process.
func (s *Store) Cells() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cells
}

// Lookup implements runner.SessionStore: a hit returns the stored
// session's canonical decoded form and the batch skips executing it.
func (s *Store) Lookup(k runner.SessionKey) (*runner.Session, bool) {
	s.mu.Lock()
	w, ok := s.recs[k]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	sess, err := w.decode()
	if err != nil {
		// An undecodable indexed record means the fingerprints were edited
		// by hand; treat it as absent and let the session re-run.
		return nil, false
	}
	return sess, true
}

// Store implements runner.SessionStore: it appends the session as one
// fsynced JSONL line and returns the wire round-trip, so fresh and resumed
// batches report byte-identical sessions.
func (s *Store) Store(k runner.SessionKey, sess *runner.Session) (*runner.Session, error) {
	w := encodeSession(sess)
	line, err := json.Marshal(Record{V: Version, Key: encodeKey(k), Session: w})
	if err != nil {
		return nil, fmt.Errorf("campaign: encode session: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaign: store %s is closed", s.dir)
	}
	if _, err := s.f.Write(line); err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaign: append: %w", err)
	}
	// Crash-safety: the record must be durable before the campaign moves
	// on, or a crash could skip a session on resume that never hit disk.
	if err := s.f.Sync(); err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaign: sync: %w", err)
	}
	s.offset += int64(len(line))
	s.recs[k] = w
	stored := len(s.recs)
	s.mu.Unlock()

	s.events.Publish(Event{
		Type:      "session",
		Target:    k.Target,
		Algorithm: k.Algorithm,
		Limit:     k.Limit,
		Seed:      k.Seed,
		Session:   k.Session,
		FirstBug:  sess.FirstBug,
		Stored:    stored,
	})
	canon, err := w.decode()
	if err != nil {
		return nil, err
	}
	return canon, nil
}

// CellDone implements runner.BatchObserver: RunTarget reports each
// completed (target, algorithm) cell, which becomes a live dashboard event
// and feeds the optional CellHook.
func (s *Store) CellDone(target, alg string, limit int, seed int64, res *runner.Result) {
	s.mu.Lock()
	s.cells++
	ev := Event{
		Type:      "cell",
		Target:    target,
		Algorithm: alg,
		Limit:     limit,
		Seed:      seed,
		Sessions:  len(res.Sessions),
		Stored:    len(s.recs),
		Cells:     s.cells,
	}
	s.mu.Unlock()
	_, ev.Found = foundCount(res)
	s.events.Publish(ev)
	if s.CellHook != nil {
		s.CellHook(ev)
	}
}

func foundCount(res *runner.Result) (total, found int) {
	for _, sess := range res.Sessions {
		total++
		if sess.FirstBug >= 0 {
			found++
		}
	}
	return total, found
}

// Snapshot returns a copy of the indexed records for aggregation.
func (s *Store) snapshot() map[runner.SessionKey]sessionWire {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[runner.SessionKey]sessionWire, len(s.recs))
	for k, w := range s.recs {
		out[k] = w
	}
	return out
}

// Poll indexes records appended to runs.jsonl by another process since the
// last Open/Store/Poll, publishing a "session" event per new record, and
// returns how many it picked up. The standalone dashboard calls it on a
// timer to tail a store some campaign process is writing.
func (s *Store) Poll() (int, error) {
	s.mu.Lock()
	path := filepath.Join(s.dir, runsName)
	offset := s.offset
	s.mu.Unlock()

	fi, err := os.Stat(path)
	if err != nil || fi.Size() <= offset {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, 0); err != nil {
		return 0, err
	}
	data := make([]byte, fi.Size()-offset)
	if _, err := readFull(f, data); err != nil {
		return 0, err
	}

	n := 0
	s.mu.Lock()
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // incomplete line still being written
		}
		line := data[:nl]
		data = data[nl+1:]
		consumed := int64(nl + 1)
		var rec Record
		if len(bytes.TrimSpace(line)) > 0 {
			if err := json.Unmarshal(line, &rec); err != nil {
				break // writer mid-flush; retry next poll
			}
			k := rec.Key.decode()
			if _, dup := s.recs[k]; !dup {
				s.recs[k] = rec.Session
				n++
				stored := len(s.recs)
				s.mu.Unlock()
				s.events.Publish(Event{
					Type:      "session",
					Target:    k.Target,
					Algorithm: k.Algorithm,
					Limit:     k.Limit,
					Seed:      k.Seed,
					Session:   k.Session,
					FirstBug:  rec.Session.FirstBug,
					Stored:    stored,
				})
				s.mu.Lock()
			}
		}
		s.offset += consumed
	}
	s.mu.Unlock()
	return n, nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := f.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
