package campaign_test

import (
	"bytes"
	"testing"

	"surw/internal/campaign"
	"surw/internal/obs"
	"surw/internal/runner"
	"surw/internal/sctbench"
)

// campaignCells is the tiny two-cell campaign the tests (and the ci.sh
// smoke stage) run: one target, two algorithms, coverage on so the
// aggregates exercise the estimators.
func campaignCells(t *testing.T, st *campaign.Store, sessions, workers int) []*runner.Result {
	t.Helper()
	tgt, ok := sctbench.ByName("CS/reorder_4")
	if !ok {
		t.Fatal("missing target")
	}
	var out []*runner.Result
	for _, alg := range []string{"SURW", "RW"} {
		res, err := runner.RunTarget(tgt, alg, runner.Config{
			Sessions:       sessions,
			Limit:          300,
			Seed:           11,
			StopAtFirstBug: true,
			Coverage:       true,
			Workers:        workers,
			Store:          st,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func aggregateBytes(t *testing.T, st *campaign.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := campaign.WriteAggregates(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole guarantee: a campaign interrupted mid-run and resumed —
// here killed after the first cell AND mid-way through the second cell's
// sessions — produces byte-identical aggregates to an uninterrupted run,
// across different worker counts.
func TestResumedCampaignAggregatesAreByteIdentical(t *testing.T) {
	// Uninterrupted reference, sequential.
	refDir := t.TempDir()
	refStore, err := campaign.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	refResults := campaignCells(t, refStore, 3, 1)
	ref := aggregateBytes(t, refStore)
	refStore.Close()

	// Interrupted run: only the first cell, and only 2 of 3 sessions of
	// what will become the second cell, reach the store before the "crash".
	intDir := t.TempDir()
	intStore, err := campaign.Open(intDir)
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := sctbench.ByName("CS/reorder_4")
	partial := runner.Config{
		Sessions: 3, Limit: 300, Seed: 11,
		StopAtFirstBug: true, Coverage: true, Workers: 1, Store: intStore,
	}
	if _, err := runner.RunTarget(tgt, "SURW", partial); err != nil {
		t.Fatal(err)
	}
	partial.Sessions = 2 // a mid-cell kill: two of RW's three sessions landed
	if _, err := runner.RunTarget(tgt, "RW", partial); err != nil {
		t.Fatal(err)
	}
	intStore.Close() // the crash

	// Resume in a fresh process image, at a different worker count. Only
	// RW's third session should actually execute.
	resumed, err := campaign.Open(intDir)
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics()
	tgt2, _ := sctbench.ByName("CS/reorder_4")
	var resumedResults []*runner.Result
	for _, alg := range []string{"SURW", "RW"} {
		res, err := runner.RunTarget(tgt2, alg, runner.Config{
			Sessions: 3, Limit: 300, Seed: 11,
			StopAtFirstBug: true, Coverage: true, Workers: 4,
			Store: resumed, Metrics: metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
		resumedResults = append(resumedResults, res)
	}
	got := aggregateBytes(t, resumed)
	resumed.Close()

	if !bytes.Equal(ref, got) {
		t.Fatalf("resumed aggregates differ from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", ref, got)
	}
	// The resumed batch must also report the exact same Results the
	// uninterrupted run did.
	for i := range refResults {
		if !refResults[i].Equal(resumedResults[i]) {
			t.Fatalf("resumed Result[%d] differs from reference", i)
		}
	}
	// And it must not have re-executed completed sessions: only RW's
	// missing session ran, so the schedule count stays within one
	// session's budget.
	if s := metrics.Snapshot(); s.Schedules == 0 || s.Schedules > 300 {
		t.Fatalf("resume executed %d schedules, want 1..300 (one missing session)", s.Schedules)
	}
}

// Attaching the campaign store never changes what a batch observes: the
// TestTracerDoesNotPerturbSchedule invariant, extended to campaign wiring.
func TestStoreAttachmentIsObservationOnly(t *testing.T) {
	tgt, ok := sctbench.ByName("CS/reorder_4")
	if !ok {
		t.Fatal("missing target")
	}
	for _, alg := range []string{"SURW", "URW", "RW", "PCT-3"} {
		cfg := runner.Config{Sessions: 3, Limit: 300, Seed: 11, Coverage: true}
		plain, err := runner.RunTarget(tgt, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := campaign.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
		cfg.Workers = 2
		stored, err := runner.RunTarget(tgt, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Equal(stored) {
			t.Fatalf("%s: attaching the campaign store changed the result", alg)
		}
		// And a second run against the same store resumes everything.
		again, err := runner.RunTarget(tgt, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Equal(again) {
			t.Fatalf("%s: resumed result differs", alg)
		}
		st.Close()
	}
}

// Cell completions surface as live events, and the hook sees them
// synchronously (surwbench -stop-after-cells builds its crash injection on
// this).
func TestCellEventsAndHook(t *testing.T) {
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var hooked []campaign.Event
	st.CellHook = func(ev campaign.Event) { hooked = append(hooked, ev) }
	ch := st.Events().Subscribe()
	defer st.Events().Unsubscribe(ch)

	campaignCells(t, st, 2, 1)

	if len(hooked) != 2 {
		t.Fatalf("hook saw %d cells, want 2", len(hooked))
	}
	if hooked[0].Type != "cell" || hooked[0].Algorithm != "SURW" || hooked[0].Cells != 1 {
		t.Fatalf("first cell event = %+v", hooked[0])
	}
	if hooked[1].Algorithm != "RW" || hooked[1].Cells != 2 || hooked[1].Stored != 4 {
		t.Fatalf("second cell event = %+v", hooked[1])
	}
	sessions, cells := 0, 0
	for len(ch) > 0 {
		switch ev := <-ch; ev.Type {
		case "session":
			sessions++
		case "cell":
			cells++
		}
	}
	if sessions != 4 || cells != 2 {
		t.Fatalf("broker saw %d session + %d cell events, want 4 + 2", sessions, cells)
	}
}

// The aggregates carry the campaign-level curves and estimators.
func TestAggregateShape(t *testing.T) {
	st, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	campaignCells(t, st, 3, 2)

	agg := st.Aggregate()
	if agg.Sessions != 6 || len(agg.Cells) != 2 {
		t.Fatalf("aggregate has %d sessions / %d cells, want 6 / 2", agg.Sessions, len(agg.Cells))
	}
	for _, cell := range agg.Cells {
		if cell.Target != "CS/reorder_4" || cell.SessionsStored != 3 {
			t.Fatalf("cell key/sessions wrong: %+v", cell)
		}
		if len(cell.Survival) < 2 || cell.Survival[0].Surviving != 1 || cell.Survival[0].Schedules != 0 {
			t.Fatalf("%s: survival curve malformed: %+v", cell.Algorithm, cell.Survival)
		}
		for i := 1; i < len(cell.Survival); i++ {
			if cell.Survival[i].Surviving > cell.Survival[i-1].Surviving ||
				cell.Survival[i].Schedules < cell.Survival[i-1].Schedules {
				t.Fatalf("%s: survival curve not monotone: %+v", cell.Algorithm, cell.Survival)
			}
		}
		cov := cell.Coverage
		if cov == nil {
			t.Fatalf("%s: no coverage aggregate", cell.Algorithm)
		}
		if cov.DistinctInterleavings <= 0 || cov.Samples <= 0 {
			t.Fatalf("%s: empty coverage: %+v", cell.Algorithm, cov)
		}
		if cov.Chao1 < float64(cov.DistinctInterleavings) {
			t.Fatalf("%s: Chao1 %v below observed %d", cell.Algorithm, cov.Chao1, cov.DistinctInterleavings)
		}
		if cov.GoodTuringCoverage < 0 || cov.GoodTuringCoverage > 1 ||
			cov.ClassCoverage <= 0 || cov.ClassCoverage > 1 {
			t.Fatalf("%s: estimator out of range: %+v", cell.Algorithm, cov)
		}
		if len(cov.Growth) != 3 || cov.Growth[2].Distinct != cov.DistinctInterleavings {
			t.Fatalf("%s: growth curve malformed: %+v", cell.Algorithm, cov.Growth)
		}
		if cell.Found > 0 && (cell.FirstBug == nil || len(cell.DistinctBugs) == 0 || len(cell.BugAccumulation) == 0) {
			t.Fatalf("%s: found %d bugs but summaries missing", cell.Algorithm, cell.Found)
		}
	}
}
