package campaign

// Live view of a distributed campaign, published by the internal/remote
// coordinator through Server.SetRemote. Defined here (not in remote) so
// the dashboard can render worker tables without importing the
// coordinator; remote imports campaign for the Record wire format, never
// the other way around.
//
// Like MetricsSnapshot, RemoteStatus is live-only: it describes one run's
// execution (which machines did the work, how leases flowed), never the
// stored results, so it appears in /api/campaign and /metrics but not in
// aggregates.json — distribution must leave the aggregate bytes untouched.

import (
	"fmt"
	"io"

	"surw/internal/obs"
)

// RemoteStatus is a point-in-time snapshot of a coordinator.
type RemoteStatus struct {
	// SessionsPlanned / SessionsDone count shard units: every (target,
	// algorithm, session) cell of the campaign plan.
	SessionsPlanned int `json:"sessions_planned"`
	SessionsDone    int `json:"sessions_done"`
	// InFlightLeases / PendingBatches describe the lease queue.
	InFlightLeases int `json:"in_flight_leases"`
	PendingBatches int `json:"pending_batches"`
	// LeaseExpiries counts leases that timed out and were requeued (worker
	// presumed lost); DuplicateResults counts submitted session records
	// dropped because the store already held them.
	LeaseExpiries    int64 `json:"lease_expiries"`
	DuplicateResults int64 `json:"duplicate_results"`
	// Seen-class filter gauges (live, approximate): ClassObservations is
	// the number of (session, class) pairs ingested into the coordinator's
	// counting Bloom filter, DistinctClasses the estimated distinct
	// commutation classes among them, and DuplicateRate the fraction of
	// ingested schedules that re-sampled an already-seen class (within a
	// session or fleet-wide). ClassQueries / ClassesSaturated count the
	// /v1/classes traffic and how often it answered "saturated" — i.e. how
	// many prefix-class early abandons the filter authorized.
	ClassObservations int64   `json:"class_observations,omitempty"`
	DistinctClasses   int64   `json:"distinct_classes,omitempty"`
	DuplicateRate     float64 `json:"duplicate_rate,omitempty"`
	ClassQueries      int64   `json:"class_queries,omitempty"`
	ClassesSaturated  int64   `json:"classes_saturated,omitempty"`
	// YieldGrants counts leases granted through the coordinator's
	// yield-weighted draw; zero when -yield-leases is off.
	YieldGrants int64 `json:"yield_grants,omitempty"`
	// Workers lists every worker that ever contacted the coordinator,
	// sorted by name.
	Workers []RemoteWorker `json:"workers,omitempty"`
	// Latencies is the fleet-wide latency view (the coordinator's own
	// histograms merged with the latest snapshot from each worker), sorted
	// by operation name.
	Latencies []obs.LatencySnap `json:"latencies,omitempty"`
	// Health is the stall-detection report, present when the coordinator
	// runs the health engine.
	Health *HealthReport `json:"health,omitempty"`
}

// RemoteWorker is the coordinator's view of one worker.
type RemoteWorker struct {
	Name string `json:"name"`
	// Sessions counts session records this worker submitted that were
	// accepted (duplicates excluded).
	Sessions int `json:"sessions"`
	// BusySeconds is the worker-reported wall-clock spent executing
	// batches; Utilization divides it by the worker's lifetime as seen by
	// the coordinator (first contact → now).
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
	// Leases is the number of leases the worker currently holds.
	Leases int `json:"leases"`
	// SecondsSinceSeen is the age of the worker's last request.
	SecondsSinceSeen float64 `json:"seconds_since_seen"`
}

// WritePrometheus renders the snapshot as Prometheus text-format gauges,
// shared by the coordinator's own /metrics and the dashboard's.
func (rs *RemoteStatus) WritePrometheus(w io.Writer) error {
	fmt.Fprintf(w, "# HELP surw_remote_sessions_planned Shard units in the distributed campaign plan.\n# TYPE surw_remote_sessions_planned gauge\nsurw_remote_sessions_planned %d\n", rs.SessionsPlanned)
	fmt.Fprintf(w, "# HELP surw_remote_sessions_done Shard units completed (stored).\n# TYPE surw_remote_sessions_done gauge\nsurw_remote_sessions_done %d\n", rs.SessionsDone)
	fmt.Fprintf(w, "# HELP surw_remote_inflight_leases Leases currently held by workers.\n# TYPE surw_remote_inflight_leases gauge\nsurw_remote_inflight_leases %d\n", rs.InFlightLeases)
	fmt.Fprintf(w, "# HELP surw_remote_pending_batches Batches waiting to be leased.\n# TYPE surw_remote_pending_batches gauge\nsurw_remote_pending_batches %d\n", rs.PendingBatches)
	fmt.Fprintf(w, "# HELP surw_remote_lease_expiries_total Leases expired and requeued.\n# TYPE surw_remote_lease_expiries_total counter\nsurw_remote_lease_expiries_total %d\n", rs.LeaseExpiries)
	fmt.Fprintf(w, "# HELP surw_remote_duplicate_results_total Submitted records dropped as duplicates.\n# TYPE surw_remote_duplicate_results_total counter\nsurw_remote_duplicate_results_total %d\n", rs.DuplicateResults)
	fmt.Fprintf(w, "# HELP surw_remote_class_observations_total Session-class pairs ingested into the seen-class filter.\n# TYPE surw_remote_class_observations_total counter\nsurw_remote_class_observations_total %d\n", rs.ClassObservations)
	fmt.Fprintf(w, "# HELP surw_remote_distinct_classes Estimated distinct commutation classes observed fleet-wide.\n# TYPE surw_remote_distinct_classes gauge\nsurw_remote_distinct_classes %d\n", rs.DistinctClasses)
	fmt.Fprintf(w, "# HELP surw_remote_duplicate_rate Fraction of ingested schedules that re-sampled an already-seen class.\n# TYPE surw_remote_duplicate_rate gauge\nsurw_remote_duplicate_rate %.6f\n", rs.DuplicateRate)
	fmt.Fprintf(w, "# HELP surw_remote_class_queries_total Class fingerprints queried over /v1/classes.\n# TYPE surw_remote_class_queries_total counter\nsurw_remote_class_queries_total %d\n", rs.ClassQueries)
	fmt.Fprintf(w, "# HELP surw_remote_classes_saturated_total Queried fingerprints answered saturated.\n# TYPE surw_remote_classes_saturated_total counter\nsurw_remote_classes_saturated_total %d\n", rs.ClassesSaturated)
	fmt.Fprintf(w, "# HELP surw_remote_yield_grants_total Leases granted through the yield-weighted draw.\n# TYPE surw_remote_yield_grants_total counter\nsurw_remote_yield_grants_total %d\n", rs.YieldGrants)
	fmt.Fprintf(w, "# HELP surw_remote_workers Workers that have contacted the coordinator.\n# TYPE surw_remote_workers gauge\nsurw_remote_workers %d\n", len(rs.Workers))
	if len(rs.Workers) > 0 {
		fmt.Fprintf(w, "# HELP surw_remote_worker_sessions_total Accepted session records per worker.\n# TYPE surw_remote_worker_sessions_total counter\n")
		for _, wk := range rs.Workers {
			fmt.Fprintf(w, "surw_remote_worker_sessions_total{worker=%q} %d\n", wk.Name, wk.Sessions)
		}
		fmt.Fprintf(w, "# HELP surw_remote_worker_busy_seconds_total Worker-reported execution time.\n# TYPE surw_remote_worker_busy_seconds_total counter\n")
		for _, wk := range rs.Workers {
			fmt.Fprintf(w, "surw_remote_worker_busy_seconds_total{worker=%q} %.3f\n", wk.Name, wk.BusySeconds)
		}
		fmt.Fprintf(w, "# HELP surw_remote_worker_utilization Busy time over worker lifetime, 0-1.\n# TYPE surw_remote_worker_utilization gauge\n")
		for _, wk := range rs.Workers {
			fmt.Fprintf(w, "surw_remote_worker_utilization{worker=%q} %.4f\n", wk.Name, wk.Utilization)
		}
		fmt.Fprintf(w, "# HELP surw_remote_worker_inflight_leases Leases currently held per worker.\n# TYPE surw_remote_worker_inflight_leases gauge\n")
		for _, wk := range rs.Workers {
			fmt.Fprintf(w, "surw_remote_worker_inflight_leases{worker=%q} %d\n", wk.Name, wk.Leases)
		}
	}
	if err := obs.WriteLatencyPrometheus(w, "surw_fleet_latency_seconds",
		"Fleet-wide operation latency (coordinator plus latest worker snapshots).",
		rs.Latencies); err != nil {
		return err
	}
	if rs.Health != nil {
		return rs.Health.WritePrometheus(w)
	}
	return nil
}
