package campaign_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"surw/internal/campaign"
	"surw/internal/runner"
)

func key(session int) runner.SessionKey {
	return runner.SessionKey{
		Target: "T", Algorithm: "SURW", Limit: 100, Seed: 7,
		Session: session, StopAtFirstBug: true,
	}
}

func session(firstBug int) *runner.Session {
	s := &runner.Session{FirstBug: firstBug, Schedules: 42, Bugs: map[string]int{}}
	if firstBug >= 0 {
		s.Bugs["assert:reorder"] = 3
	}
	return s
}

func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := st.Store(key(0), session(17))
	if err != nil {
		t.Fatal(err)
	}
	if canon.FirstBug != 17 || canon.Schedules != 42 || canon.Bugs["assert:reorder"] != 3 {
		t.Fatalf("canonical session mangled: %+v", canon)
	}
	if _, err := st.Store(key(1), session(-1)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
	got, ok := re.Lookup(key(0))
	if !ok || got.FirstBug != 17 || got.Bugs["assert:reorder"] != 3 {
		t.Fatalf("Lookup after reopen = %+v, %v", got, ok)
	}
	if _, ok := re.Lookup(key(9)); ok {
		t.Fatal("Lookup invented a session")
	}
}

// A crash mid-append leaves a torn trailing line; reopening must recover
// every complete record, drop the torn bytes, and keep appending cleanly.
func TestStoreRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Store(key(0), session(5)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	runs := filepath.Join(dir, "runs.jsonl")
	f, err := os.OpenFile(runs, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":{"target":"T","alg`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := campaign.Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if re.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1", re.Len())
	}
	if _, err := re.Store(key(1), session(-1)); err != nil {
		t.Fatal(err)
	}
	re.Close()

	// Every line of the repaired file must be complete JSON.
	data, err := os.ReadFile(runs)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("repaired file has %d lines, want 2:\n%s", len(lines), data)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not a complete record: %q", i, line)
		}
	}

	final, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.Len() != 2 {
		t.Fatalf("final Len = %d, want 2", final.Len())
	}
}

// Corruption in the middle of the file (not a crash artifact) must refuse
// to open rather than silently dropping completed work.
func TestStoreRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Store(key(0), session(5)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	runs := filepath.Join(dir, "runs.jsonl")
	data, _ := os.ReadFile(runs)
	if err := os.WriteFile(runs, append([]byte("not json\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Open(dir); err == nil {
		t.Fatal("open accepted mid-file corruption")
	}
}

// OpenRead + Poll: a reader tails records another handle appends.
func TestStorePollTailsWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Store(key(0), session(9)); err != nil {
		t.Fatal(err)
	}

	r, err := campaign.OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("reader Len = %d, want 1", r.Len())
	}
	if _, err := r.Store(key(5), session(1)); err == nil {
		t.Fatal("read-only store accepted an append")
	}

	ch := r.Events().Subscribe()
	defer r.Events().Unsubscribe(ch)
	if _, err := w.Store(key(1), session(-1)); err != nil {
		t.Fatal(err)
	}
	n, err := r.Poll()
	if err != nil || n != 1 {
		t.Fatalf("Poll = (%d, %v), want (1, nil)", n, err)
	}
	if r.Len() != 2 {
		t.Fatalf("reader Len after poll = %d, want 2", r.Len())
	}
	ev := <-ch
	if ev.Type != "session" || ev.Target != "T" || ev.Session != 1 {
		t.Fatalf("poll event = %+v", ev)
	}
	// Nothing new: Poll is idempotent.
	if n, err := r.Poll(); err != nil || n != 0 {
		t.Fatalf("second Poll = (%d, %v), want (0, nil)", n, err)
	}
}

// OpenRead on a directory that is not a store must fail loudly.
func TestOpenReadRequiresManifest(t *testing.T) {
	if _, err := campaign.OpenRead(t.TempDir()); err == nil {
		t.Fatal("OpenRead accepted a bare directory")
	}
}
