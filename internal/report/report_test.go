package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Target", "SURW", "RW")
	tb.AddRow("CS/reorder_10", "17 ± 11", "-")
	tb.AddRow("CS/stack", "5 ± 3", "176 ± 136")
	tb.AddFooter("- means never found")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "CS/reorder_10") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Header and rows align on column starts.
	if !strings.HasPrefix(lines[1], "Target") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
	if !strings.Contains(lines[5], "never found") {
		t.Fatalf("footer missing: %q", lines[5])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `q"z`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Fatalf("short row lost: %s", out)
	}
}

func TestMeanStd(t *testing.T) {
	if got := MeanStd(368921, 329371, 20, 20); got != "368921 ± 329371" {
		t.Fatalf("got %q", got)
	}
	if got := MeanStd(100, 5, 15, 20); got != "100 ± 5*" {
		t.Fatalf("partial sessions: %q", got)
	}
	if got := MeanStd(0, 0, 0, 20); got != "-" {
		t.Fatalf("never found: %q", got)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram("Fig", map[string]int{"a": 4, "b": 2, "c": 0}, 8)
	if !strings.Contains(h, "a |######## 4") {
		t.Fatalf("peak bar wrong:\n%s", h)
	}
	if !strings.Contains(h, "b |#### 2") {
		t.Fatalf("half bar wrong:\n%s", h)
	}
	if Histogram("empty", nil, 8) == "" {
		t.Fatal("title lost on empty histogram")
	}
}

func TestCurves(t *testing.T) {
	s := []Series{
		{Name: "SURW", X: []float64{0, 50, 100}, Y: []float64{0, 70, 100}},
		{Name: "RW", X: []float64{0, 50, 100}, Y: []float64{0, 30, 50}},
	}
	out := Curves("Figure 5a", s, 40, 10)
	if !strings.Contains(out, "Figure 5a") || !strings.Contains(out, "* = SURW") {
		t.Fatalf("curves missing parts:\n%s", out)
	}
	if !strings.Contains(out, "x max = 100") || !strings.Contains(out, "y max = 100") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if out := Curves("tiny", s, 2, 2); !strings.Contains(out, "tiny") {
		t.Fatal("degenerate size should still emit title")
	}
	if out := Curves("none", nil, 40, 10); !strings.Contains(out, "none") {
		t.Fatal("empty series should still emit title")
	}
}
