// Package report renders the evaluation's tables and figures as aligned
// text tables, CSV, and ASCII charts, so every artifact the paper presents
// can be regenerated on a terminal and archived as plain files.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Footers []string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddFooter appends a note rendered under the table.
func (t *Table) AddFooter(note string) { t.Footers = append(t.Footers, note) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, f := range t.Footers {
		fmt.Fprintf(w, "%s\n", f)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// MeanStd formats the paper's "mean ± std" cells; missing results ("—" in
// the paper) render as "-" and partially missing ones carry "*".
func MeanStd(mean, std float64, found, sessions int) string {
	if found == 0 {
		return "-"
	}
	cell := fmt.Sprintf("%.0f ± %.0f", mean, std)
	if found < sessions {
		cell += "*"
	}
	return cell
}

// Histogram renders counts as an ASCII bar chart with keys sorted
// ascending. maxBar is the widest bar in characters.
func Histogram(title string, counts map[string]int, maxBar int) string {
	keys := make([]string, 0, len(counts))
	peak := 0
	for k, v := range counts {
		keys = append(keys, k)
		if v > peak {
			peak = v
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if peak == 0 {
		return b.String()
	}
	keyW := 0
	for _, k := range keys {
		if len(k) > keyW {
			keyW = len(k)
		}
	}
	for _, k := range keys {
		n := counts[k] * maxBar / peak
		fmt.Fprintf(&b, "%*s |%s %d\n", keyW, k, strings.Repeat("#", n), counts[k])
	}
	return b.String()
}

// Series is one named curve of a Curves chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Curves renders multiple series as an ASCII scatter chart of the given
// size (paper figures 5a/5b are line charts; dots carry the same shape).
func Curves(title string, series []Series, width, height int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(series) == 0 || width < 8 || height < 4 {
		return b.String()
	}
	maxX, maxY := 0.0, 0.0
	for _, s := range series {
		for i := range s.X {
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxX == 0 || maxY == 0 {
		return b.String()
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		m := marks[si%len(marks)]
		for i := range s.X {
			c := int(s.X[i] / maxX * float64(width-1))
			r := height - 1 - int(s.Y[i]/maxY*float64(height-1))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = m
			}
		}
	}
	fmt.Fprintf(&b, "y max = %.0f\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, " x max = %.0f\n", maxX)
	for si, s := range series {
		fmt.Fprintf(&b, " %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
