// Package workpool is the deterministic fan-out helper behind the parallel
// experiment runner: it spreads independent, index-identified work items
// over a bounded set of goroutines and returns the results *ordered by
// index*, never by completion order. Because every work item in this
// repository derives all of its randomness from its index (session seeds,
// trial seeds, grid cells), running under any worker count produces output
// bit-identical to the sequential loop it replaces.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Normalize resolves a worker-count setting: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)), 1 means sequential, and
// larger values are returned unchanged.
func Normalize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map runs fn(0), fn(1), ..., fn(n-1) on up to workers goroutines and
// returns the n results in index order. workers is Normalize-d first.
//
// With one worker, Map degenerates to the plain sequential loop: fn runs
// inline on the calling goroutine, in order, stopping at the first error —
// the legacy execution path, kept allocation- and goroutine-free.
//
// With more workers, items are handed out in index order as workers free
// up. All items run to completion even if one fails; the error returned is
// the failing item with the lowest index (deterministic regardless of
// completion order), in which case the results are discarded.
func Map[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	return MapMetered[T](workers, n, nil, fn)
}

// Meter observes a MapMetered call: ItemDone fires once per work item with
// the item's execution time (from the worker that ran it), and BatchDone
// fires once when the whole call finishes, with the worker count actually
// used and the wall-clock duration. Implementations must be safe for
// concurrent ItemDone calls. Metering is strictly observational — item
// order, results, and errors are identical to the unmetered Map.
type Meter interface {
	ItemDone(d time.Duration)
	BatchDone(workers int, wall time.Duration)
}

// MapMetered is Map with an optional Meter (nil meters exactly like Map —
// the sequential fast path stays allocation- and goroutine-free and skips
// the clock entirely).
func MapMetered[T any](workers, n int, meter Meter, fn func(int) (T, error)) ([]T, error) {
	workers = Normalize(workers)
	if n <= 0 {
		return nil, nil
	}
	var batchStart time.Time
	if meter != nil {
		batchStart = time.Now()
	}
	results := make([]T, n)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			var itemStart time.Time
			if meter != nil {
				itemStart = time.Now()
			}
			r, err := fn(i)
			if meter != nil {
				meter.ItemDone(time.Since(itemStart))
			}
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		if meter != nil {
			meter.BatchDone(1, time.Since(batchStart))
		}
		return results, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var itemStart time.Time
				if meter != nil {
					itemStart = time.Now()
				}
				results[i], errs[i] = fn(i)
				if meter != nil {
					meter.ItemDone(time.Since(itemStart))
				}
			}
		}()
	}
	wg.Wait()
	if meter != nil {
		meter.BatchDone(workers, time.Since(batchStart))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
