package workpool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 9} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("item-%d", i*7), nil }
	seq, err := Map(1, 37, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(8, 37, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("diverged at %d: %q vs %q", i, seq[i], par[i])
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	fn := func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 1:
			return 0, errA
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		if _, err := Map(workers, 10, fn); !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestMapRunsEveryItemOnce(t *testing.T) {
	var ran [257]atomic.Int32
	_, err := Map(16, len(ran), func(i int) (struct{}, error) {
		ran[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("item %d ran %d times", i, n)
		}
	}
}

func TestMapEmptyAndSequentialEarlyStop(t *testing.T) {
	if got, err := Map(4, 0, func(int) (int, error) { return 0, nil }); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	// The one-worker path preserves the legacy stop-at-first-error loop.
	calls := 0
	_, err := Map(1, 10, func(i int) (int, error) {
		calls++
		if i == 2 {
			return 0, errors.New("stop")
		}
		return 0, nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("sequential early stop: err=%v calls=%d", err, calls)
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(0) != runtime.GOMAXPROCS(0) || Normalize(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive should resolve to GOMAXPROCS")
	}
	if Normalize(1) != 1 || Normalize(7) != 7 {
		t.Fatal("positive values should pass through")
	}
}

// fakeMeter records Meter callbacks for inspection.
type fakeMeter struct {
	items   atomic.Int64
	busy    atomic.Int64
	batches atomic.Int64
	workers atomic.Int64
	wall    atomic.Int64
}

func (f *fakeMeter) ItemDone(d time.Duration) {
	f.items.Add(1)
	f.busy.Add(int64(d))
}

func (f *fakeMeter) BatchDone(workers int, wall time.Duration) {
	f.batches.Add(1)
	f.workers.Store(int64(workers))
	f.wall.Store(int64(wall))
}

func TestMapMeteredReportsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := &fakeMeter{}
		got, err := MapMetered(workers, 25, m, func(i int) (int, error) {
			time.Sleep(time.Microsecond)
			return i * 3, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
		if n := m.items.Load(); n != 25 {
			t.Fatalf("workers=%d: ItemDone fired %d times, want 25", workers, n)
		}
		if m.busy.Load() <= 0 {
			t.Fatalf("workers=%d: no busy time accumulated", workers)
		}
		if m.batches.Load() != 1 {
			t.Fatalf("workers=%d: BatchDone fired %d times", workers, m.batches.Load())
		}
		if w := m.workers.Load(); w != int64(Normalize(workers)) {
			t.Fatalf("workers=%d: BatchDone saw %d workers", workers, w)
		}
		if m.wall.Load() <= 0 {
			t.Fatalf("workers=%d: zero wall time", workers)
		}
	}
}

func TestMapMeteredNilMeterMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i + 1, nil }
	a, err := Map(4, 12, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapMetered(4, 12, nil, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
