package racebench

import (
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/runner"
	"surw/internal/sched"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 15 {
		t.Fatalf("suite has %d bases, want 15", len(suite))
	}
	seen := map[string]bool{}
	partials := 0
	for _, b := range suite {
		if seen[b.Name] {
			t.Fatalf("duplicate base %s", b.Name)
		}
		seen[b.Name] = true
		if b.Partial {
			partials++
		}
		if len(b.Bugs()) != NumBugs {
			t.Fatalf("%s: %d bugs", b.Name, len(b.Bugs()))
		}
		for _, id := range b.Bugs() {
			if !strings.HasPrefix(id, b.Name+"-bug") {
				t.Fatalf("bad bug id %q", id)
			}
		}
	}
	if partials != 3 {
		t.Fatalf("%d partial targets, want 3 (cholesky, fluidanimate, raytrace2)", partials)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("x", 4, 10, 3, 6, "data", false, 42)
	b := Generate("x", 4, 10, 3, 6, "data", false, 42)
	for i := range a.bugs {
		if a.bugs[i] != b.bugs[i] {
			t.Fatalf("bug %d differs across generations", i)
		}
	}
	for k, v := range a.actions {
		w := b.actions[k]
		if len(v) != len(w) {
			t.Fatalf("actions at %v differ", k)
		}
		for i := range v {
			if v[i] != w[i] {
				t.Fatalf("action %v[%d] differs", k, i)
			}
		}
	}
	c := Generate("x", 4, 10, 3, 6, "data", false, 43)
	if equalBugs(a.bugs, c.bugs) {
		t.Fatal("different seeds produced identical bugs")
	}
}

func equalBugs(a, b []bug) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBaseRunsAndFindsBugs(t *testing.T) {
	b := Suite()[0] // blackscholes
	found := map[string]bool{}
	truncated := 0
	for seed := int64(0); seed < 400; seed++ {
		res := sched.Run(b.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed, MaxSteps: 500_000}})
		if res.Truncated {
			truncated++
		}
		if res.Buggy() {
			if res.Failure.Kind == sched.FailPanic {
				t.Fatalf("model panic: %v", res.Failure)
			}
			found[res.BugID()] = true
		}
	}
	if truncated > 0 {
		t.Fatalf("%d truncated schedules", truncated)
	}
	if len(found) < 5 {
		t.Fatalf("RW found only %d distinct bugs in 400 schedules", len(found))
	}
	if len(found) > 90 {
		t.Fatalf("RW found %d bugs in 400 schedules; injection too easy", len(found))
	}
}

func TestTaskPatternVariesEventCounts(t *testing.T) {
	b := Generate("tasky", 4, 12, 3, 6, "task", false, 7)
	steps := map[int]bool{}
	for seed := int64(0); seed < 30; seed++ {
		res := sched.Run(b.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed, MaxSteps: 500_000}})
		if !res.Buggy() {
			steps[res.Steps] = true
		}
	}
	if len(steps) < 2 {
		t.Fatal("task pattern produced schedule-independent event counts")
	}
}

func TestChainBugsRequireOrder(t *testing.T) {
	// Chain bugs must not fire under the deterministic leftmost schedule
	// (steps on different threads can't all line up).
	for _, b := range Suite()[:3] {
		res := sched.Run(b.Prog(), nil, sched.Options{Base: sched.Base{MaxSteps: 500_000}})
		if res.Buggy() && b.bugs[bugIndex(b, res.BugID())].kind == Chain {
			t.Logf("%s: chain bug %s fired even leftmost", b.Name, res.BugID())
		}
	}
}

func bugIndex(b *Base, id string) int {
	for i, bg := range b.bugs {
		if bg.id == id {
			return i
		}
	}
	return 0
}

func TestDistinctBugsMetricViaRunner(t *testing.T) {
	b := Suite()[0]
	res, err := runner.RunTarget(b.Target(), "POS", runner.Config{
		Sessions: 1, Limit: 300, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := res.DistinctBugs()
	if len(distinct) == 0 {
		t.Fatal("no bugs found by POS in 300 iterations")
	}
	for id := range distinct {
		if !strings.HasPrefix(id, "blackscholes-bug") {
			t.Fatalf("foreign bug id %q", id)
		}
	}
}

func TestSURWRegionSelectionWorks(t *testing.T) {
	b := Suite()[1]
	res, err := runner.RunTarget(b.Target(), "SURW", runner.Config{
		Sessions: 1, Limit: 200, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[0].Schedules != 200 {
		t.Fatal("session did not complete")
	}
	if len(res.DistinctBugs()) == 0 {
		t.Fatal("SURW found nothing in 200 iterations")
	}
}

func TestBugKindString(t *testing.T) {
	for _, k := range []BugKind{AtomicityViolation, OrderViolation, Chain, LockInversion} {
		if k.String() == "unknown" {
			t.Fatal("missing kind name")
		}
	}
	if BugKind(99).String() != "unknown" {
		t.Fatal("unknown kind misnamed")
	}
}
