// Package racebench synthesizes the RaceBenchData-style suite of Table 2:
// fifteen base programs, each with 100 seeded concurrency bugs injected at
// pseudo-random sites. RaceBench itself injects synthetic bugs into PARSEC/
// SPLASH bases; lacking those code bases, this package also synthesizes the
// bases, preserving the properties the paper says matter for the scheduling
// algorithms: long traces, bugs of depth up to ~10, schedule-dependent
// event counts (task-stealing bases), and early-crash truncation of
// observed counts.
//
// Bug kinds mirror RaceBench's: atomicity violations (a probe landing
// inside another thread's open window), order violations (a use reached
// before its init), ordered chains of depth d (the high-depth bugs that
// defeat PCT), and lock-order inversions (detected at the would-deadlock
// interleaving and attributed to their bug ID).
package racebench

import (
	"fmt"
	"math/rand"

	"surw/internal/profile"
	"surw/internal/runner"
	"surw/internal/sched"
)

// BugKind classifies injected bugs.
type BugKind uint8

// The RaceBench bug vocabulary.
const (
	AtomicityViolation BugKind = iota
	OrderViolation
	Chain
	LockInversion
)

func (k BugKind) String() string {
	switch k {
	case AtomicityViolation:
		return "atomicity"
	case OrderViolation:
		return "order"
	case Chain:
		return "chain"
	case LockInversion:
		return "lock-inversion"
	}
	return "unknown"
}

// step pins one role of a bug to the k-th work item a thread processes.
type step struct {
	bug  int
	role int
}

// bug is one injected defect.
type bug struct {
	id    string
	kind  BugKind
	depth int // chain length for Chain bugs, otherwise 2
	width int // atomicity window width in events
	lockA int
	lockB int
}

// Base is one generated base program with its injected bugs.
type Base struct {
	// Name is the Table 2 row ("blackscholes", ...); Partial marks the
	// paper's selectively instrumented targets (leaner noise).
	Name    string
	Threads int
	// Items is the number of work items per thread (static patterns) or
	// the per-thread cap (task pattern).
	Items int
	// Locals is the per-item count of thread-local noise events.
	Locals int
	// Shared is the number of shared accumulator variables.
	Shared int
	// Pattern is "data" (static partition, global accumulators), "pipe"
	// (neighbor-coupled stages) or "task" (shared work queue — the
	// schedule-dependent event counts of §7).
	Pattern string
	Partial bool
	Seed    int64

	bugs    []bug
	actions map[[2]int][]step // (thread, item) -> bug steps, ordered by role
}

// NumBugs is the number of bugs injected per base program.
const NumBugs = 100

// Generate builds the base program and injects NumBugs bugs from its seed.
func Generate(name string, threads, items, locals, shared int, pattern string, partial bool, seed int64) *Base {
	b := &Base{
		Name: name, Threads: threads, Items: items, Locals: locals,
		Shared: shared, Pattern: pattern, Partial: partial, Seed: seed,
		actions: make(map[[2]int][]step),
	}
	rng := rand.New(rand.NewSource(seed))
	for j := 0; j < NumBugs; j++ {
		bg := bug{id: fmt.Sprintf("%s-bug%03d", name, j), depth: 2, width: 1 + rng.Intn(2)}
		switch p := rng.Float64(); {
		case p < 0.40:
			bg.kind = AtomicityViolation
		case p < 0.75:
			bg.kind = OrderViolation
		case p < 0.93:
			bg.kind = Chain
			bg.depth = 3 + rng.Intn(8) // depth 3..10
		default:
			bg.kind = LockInversion
			bg.lockA = rng.Intn(4)
			bg.lockB = (bg.lockA + 1 + rng.Intn(3)) % 4
		}
		b.placeSites(rng, &bg, j)
		b.bugs = append(b.bugs, bg)
	}
	return b
}

// placeSites assigns each step of a bug to a distinct (thread, item) slot.
func (b *Base) placeSites(rng *rand.Rand, bg *bug, idx int) {
	pick := func(minItem int) (int, int) {
		t := rng.Intn(b.Threads)
		lo := minItem
		if lo >= b.Items {
			lo = b.Items - 1
		}
		return t, lo + rng.Intn(b.Items-lo)
	}
	switch bg.kind {
	case OrderViolation:
		// The init site sits early in its thread's work and the use site
		// much later in another's, so the use-before-init reordering that
		// triggers the bug is a genuinely rare interleaving.
		tInit, iInit := rng.Intn(b.Threads), rng.Intn(3)
		tUse := (tInit + 1 + rng.Intn(b.Threads-1)) % b.Threads
		iUse := iInit + b.Items/3 + rng.Intn(b.Items/2)
		if iUse >= b.Items {
			iUse = b.Items - 1
		}
		b.addStep(tInit, iInit, idx, 0)
		b.addStep(tUse, iUse, idx, 1)
	case Chain:
		// d steps on random threads within a narrow item band. Out-of-order
		// execution resets the chain (runStep), so triggering needs the
		// steps interleaved in exactly chain order — the high-depth,
		// close-proximity pattern that defeats PCT and run-heavy samplers.
		item := rng.Intn(b.Items - 1)
		for r := 0; r < bg.depth; r++ {
			t := rng.Intn(b.Threads)
			b.addStep(t, item+rng.Intn(2), idx, r)
		}
	default: // AtomicityViolation, LockInversion: two overlapping windows
		t1, i1 := pick(0)
		t2 := (t1 + 1 + rng.Intn(b.Threads-1)) % b.Threads
		spread := i1 - 4 + rng.Intn(9)
		if spread < 0 {
			spread = 0
		}
		if spread >= b.Items {
			spread = b.Items - 1
		}
		b.addStep(t1, i1, idx, 0)
		b.addStep(t2, spread, idx, 1)
	}
}

func (b *Base) addStep(t, i, bugIdx, role int) {
	key := [2]int{t, i}
	b.actions[key] = append(b.actions[key], step{bug: bugIdx, role: role})
}

// Bugs returns the injected bug IDs.
func (b *Base) Bugs() []string {
	out := make([]string, len(b.bugs))
	for i, bg := range b.bugs {
		out[i] = bg.id
	}
	return out
}

// Prog returns the schedulable program.
func (b *Base) Prog() func(*sched.Thread) {
	return func(t *sched.Thread) {
		state := make([]*sched.Var, len(b.bugs))
		intent := make([]*sched.Var, len(b.bugs))
		for j := range b.bugs {
			state[j] = t.NewVar(fmt.Sprintf("bugstate%d", j), 0)
			intent[j] = t.NewVar(fmt.Sprintf("bugintent%d", j), 0)
		}
		locks := make([]*sched.Mutex, 4)
		for i := range locks {
			locks[i] = t.NewMutex(fmt.Sprintf("lock%d", i))
		}
		g := make([]*sched.Var, b.Shared)
		for i := range g {
			g[i] = t.NewVar(fmt.Sprintf("g%d", i), 0)
		}
		queue := t.NewVar("queue", 0) // task pattern work counter

		handles := make([]*sched.Handle, b.Threads)
		for ti := range handles {
			ti := ti
			local := t.NewVar(fmt.Sprintf("local%d", ti), 0)
			handles[ti] = t.Go(func(w *sched.Thread) {
				for k := 0; k < b.Items; k++ {
					if b.Pattern == "task" {
						// Dynamic work assignment: event counts depend on
						// the schedule, as in the paper's §7 discussion.
						q := queue.Add(w, 1)
						if q > int64(b.Threads*b.Items*3/4) {
							return
						}
						// Task sizes vary with the draw order, so traces are
						// schedule-dependent in length, not just in shape.
						for n := int64(0); n < q%3; n++ {
							local.Add(w, 1)
						}
					}
					b.processItem(w, ti, k, local, g, state, intent, locks)
				}
			})
		}
		t.JoinAll(handles...)
	}
}

func (b *Base) processItem(w *sched.Thread, ti, k int, local *sched.Var,
	g []*sched.Var, state, intent []*sched.Var, locks []*sched.Mutex) {
	noise := b.Locals
	if b.Partial {
		noise = (noise + 1) / 2 // selectively instrumented: leaner traces
	}
	for n := 0; n < noise; n++ {
		local.Add(w, 1)
	}
	switch b.Pattern {
	case "pipe":
		g[ti%b.Shared].Add(w, 1)
		g[(ti+1)%b.Shared].Add(w, 1)
	default:
		g[(ti*31+k*7)%b.Shared].Add(w, 1)
	}
	for _, s := range b.actions[[2]int{ti, k}] {
		b.runStep(w, s.bug, s.role, local, state, intent, locks)
	}
}

// runStep executes one role of one injected bug.
func (b *Base) runStep(w *sched.Thread, bugIdx, role int, local *sched.Var,
	state, intent []*sched.Var, locks []*sched.Mutex) {
	bg := &b.bugs[bugIdx]
	st := state[bugIdx]
	switch bg.kind {
	case AtomicityViolation:
		if role == 0 {
			st.Store(w, 1) // open the non-atomic window
			for n := 0; n < bg.width; n++ {
				local.Add(w, 1)
			}
			st.Store(w, 0)
		} else if st.Load(w) == 1 {
			w.Fail(bg.id) // probe landed inside the window
		}
	case OrderViolation:
		if role == 0 {
			st.Store(w, 1) // init
		} else if st.Load(w) == 0 {
			w.Fail(bg.id) // used before initialized
		}
	case Chain:
		// Each role runs exactly once per schedule; the chain completes
		// only if the roles execute in exact order, which with all sites
		// packed into a two-item band needs a precise cross-thread
		// alternation rather than any blocky order.
		if v := st.Load(w); role == bg.depth-1 && v == int64(bg.depth-1) {
			w.Fail(bg.id)
		} else if v == int64(role) {
			st.Store(w, int64(role+1))
		}
	case LockInversion:
		la, lb := locks[bg.lockA], locks[bg.lockB]
		it := intent[bugIdx]
		if role == 1 {
			la, lb = lb, la
		}
		la.Lock(w)
		it.Add(w, 1)
		if !lb.TryLock(w) {
			if it.Load(w) == 2 {
				// Both windows hold one lock and want the other: the
				// inversion would deadlock. Attribute it to this bug.
				w.Fail(bg.id)
			}
		} else {
			lb.Unlock(w)
		}
		it.Add(w, -1)
		la.Unlock(w)
	}
}

// Target wraps the base as a runner target with the paper's RaceBench
// instantiation of Δ: a random memory region with combined access counts
// above a threshold.
func (b *Base) Target() runner.Target {
	return runner.Target{
		Name:     "RaceBench/" + b.Name,
		Prog:     b.Prog(),
		MaxSteps: 500_000,
		Select: func(p *profile.Profile, rng *rand.Rand) (profile.Selection, bool) {
			return p.SelectRegion(rng, RegionThreshold)
		},
	}
}

// RegionThreshold is the combined-access-count threshold for Δ regions.
const RegionThreshold = 48

// Suite returns the fifteen Table 2 base programs. Thread counts, trace
// lengths and instrumentation leanness loosely follow the originals'
// relative scale; a * in the paper (partial instrumentation) maps to
// Partial here.
func Suite() []*Base {
	return []*Base{
		Generate("blackscholes", 4, 16, 6, 8, "data", false, 101),
		Generate("bodytrack", 6, 14, 5, 10, "pipe", false, 102),
		Generate("canneal", 6, 16, 5, 12, "data", false, 103),
		Generate("cholesky", 8, 12, 4, 12, "task", true, 104),
		Generate("dedup", 8, 14, 5, 10, "pipe", false, 105),
		Generate("ferret", 8, 14, 5, 10, "pipe", false, 106),
		Generate("fluidanimate", 6, 14, 4, 10, "data", true, 107),
		Generate("pigz", 4, 18, 6, 8, "pipe", false, 108),
		Generate("raytrace", 6, 14, 6, 10, "task", false, 109),
		Generate("raytrace2", 6, 14, 3, 10, "task", true, 110),
		Generate("streamcluster", 8, 14, 5, 12, "data", false, 111),
		Generate("volrend", 4, 14, 6, 8, "task", false, 112),
		Generate("water_nsquared", 4, 16, 6, 8, "data", false, 113),
		Generate("water_spatial", 4, 16, 5, 8, "data", false, 114),
		Generate("x264", 8, 14, 6, 10, "pipe", false, 115),
	}
}
