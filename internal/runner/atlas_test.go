package runner_test

import (
	"testing"

	"surw/internal/atlas"
	"surw/internal/runner"
	"surw/internal/sctbench"
)

// TestAtlasNonPerturbation pins the atlas covenant at the runner level:
// RunTarget with an atlas attached is byte-identical — FirstBug, bugs,
// coverage maps, series, every fingerprint — to RunTarget without one,
// sequentially and in parallel, and the atlas actually observed the run.
func TestAtlasNonPerturbation(t *testing.T) {
	tgt, ok := sctbench.ByName("Fig1/bitshift_3")
	if !ok {
		t.Fatal("unknown target Fig1/bitshift_3")
	}
	for _, alg := range []string{"URW", "RW", "SURW"} {
		for _, workers := range []int{1, 4} {
			cfg := runner.Config{
				Sessions:      3,
				Limit:         40,
				Seed:          23,
				Coverage:      true,
				CoverageEvery: 20,
				Workers:       workers,
			}
			plain, err := runner.RunTarget(tgt, alg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg := atlas.New()
			cfg.Atlas = reg
			mapped, err := runner.RunTarget(tgt, alg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !plain.Equal(mapped) {
				t.Fatalf("%s workers=%d: atlas attachment changed the result\nplain:  %+v\natlas: %+v",
					alg, workers, plain, mapped)
			}
			snap := reg.Snapshot()
			if len(snap.Cells) != 1 {
				t.Fatalf("%s: want one atlas cell, got %d", alg, len(snap.Cells))
			}
			cs := snap.Cells[0]
			if cs.Target != tgt.Name || cs.Algorithm != alg {
				t.Fatalf("cell mislabelled: %+v", cs)
			}
			// 3 sessions × 40 schedules, plus one RunPrefix capture per
			// session counted as the session's schedule 0.
			if cs.Schedules != 3*40 {
				t.Fatalf("%s workers=%d: atlas saw %d schedules, want %d", alg, workers, cs.Schedules, 3*40)
			}
			if cs.Uniformity == nil || cs.Uniformity.Samples != 3*40 {
				t.Fatalf("%s: uniformity stream short: %+v", alg, cs.Uniformity)
			}
			if cs.Decisions == 0 || len(cs.Grids) == 0 {
				t.Fatalf("%s: cartography empty: %+v", alg, cs)
			}
		}
	}
}

// TestAtlasStoreHitsFeedNothing holds the resume contract: sessions
// satisfied from the store do not re-run, so they contribute nothing to
// the atlas — its counts reflect executed schedules only.
func TestAtlasStoreHitsFeedNothing(t *testing.T) {
	tgt, ok := sctbench.ByName("Fig1/bitshift_3")
	if !ok {
		t.Fatal("unknown target")
	}
	cfg := runner.Config{Sessions: 2, Limit: 20, Seed: 7, Workers: 1}
	store := newMemStore()
	cfg.Store = store

	reg := atlas.New()
	cfg.Atlas = reg
	first, err := runner.RunTarget(tgt, "URW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := reg.Snapshot().Cells[0].Schedules

	again, err := runner.RunTarget(tgt, "URW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(again) {
		t.Fatal("resumed batch diverged")
	}
	if got := reg.Snapshot().Cells[0].Schedules; got != afterFirst {
		t.Fatalf("store-hit sessions fed the atlas: %d schedules after resume, want %d", got, afterFirst)
	}
}

// memStore is a minimal in-memory SessionStore for resume tests.
type memStore struct {
	m map[runner.SessionKey]*runner.Session
}

func newMemStore() *memStore { return &memStore{m: make(map[runner.SessionKey]*runner.Session)} }

func (s *memStore) Lookup(k runner.SessionKey) (*runner.Session, bool) {
	v, ok := s.m[k]
	return v, ok
}

func (s *memStore) Store(k runner.SessionKey, sess *runner.Session) (*runner.Session, error) {
	s.m[k] = sess
	return sess, nil
}
