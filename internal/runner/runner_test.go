package runner

import (
	"testing"

	"surw/internal/sched"
	"surw/internal/stats"
)

// raceTarget loses an update under some schedules and asserts it didn't.
func raceTarget() Target {
	return Target{
		Name: "test/lost-update",
		Prog: func(t *sched.Thread) {
			c := t.NewVar("c", 0)
			inc := func(w *sched.Thread) { c.Store(w, c.Load(w)+1) }
			h1, h2 := t.Go(inc), t.Go(inc)
			t.Join(h1)
			t.Join(h2)
			v := c.Load(t)
			t.SetBehavior(map[int64]string{1: "lost", 2: "ok"}[v])
			t.Assert(v == 2, "lost-update")
		},
	}
}

// cleanTarget never fails.
func cleanTarget() Target {
	return Target{
		Name: "test/clean",
		Prog: func(t *sched.Thread) {
			c := t.NewVar("c", 0)
			h := t.Go(func(w *sched.Thread) { c.Add(w, 1) })
			c.Add(t, 1)
			t.Join(h)
			t.SetBehavior("done")
		},
	}
}

func TestRunTargetFindsBug(t *testing.T) {
	for _, alg := range []string{"SURW", "PCT-3", "POS", "RW", "N-U", "N-S"} {
		res, err := RunTarget(raceTarget(), alg, Config{
			Sessions: 3, Limit: 300, Seed: 11, StopAtFirstBug: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.FoundAll() {
			t.Fatalf("%s: not all sessions found the lost update", alg)
		}
		sum, found := res.FirstBugSummary()
		if found != 3 || sum.Mean < 1 {
			t.Fatalf("%s: summary %+v found=%d", alg, sum, found)
		}
		if !res.DistinctBugs()["lost-update"] {
			t.Fatalf("%s: bug id missing", alg)
		}
	}
}

func TestProfiledAlgorithmsChargeTrialRun(t *testing.T) {
	// A bug found on the very first schedule costs 2 for SURW (profiling
	// run + schedule) but 1 for RW. Run many sessions and compare minima.
	cfgs := Config{Sessions: 20, Limit: 50, Seed: 3, StopAtFirstBug: true}
	surw, err := RunTarget(raceTarget(), "SURW", cfgs)
	if err != nil {
		t.Fatal(err)
	}
	min := 1 << 30
	for _, s := range surw.Sessions {
		if s.FirstBug >= 0 && s.FirstBug < min {
			min = s.FirstBug
		}
	}
	if min < 2 {
		t.Fatalf("SURW first-bug = %d; must include the profiling run", min)
	}
}

func TestCleanTargetNoBug(t *testing.T) {
	res, err := RunTarget(cleanTarget(), "SURW", Config{Sessions: 2, Limit: 50, Seed: 5, StopAtFirstBug: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FoundEver() {
		t.Fatal("clean target reported a bug")
	}
	sum, found := res.FirstBugSummary()
	if found != 0 || sum.N != 0 {
		t.Fatalf("summary %+v found=%d", sum, found)
	}
	obs := res.FirstBugObs()
	for _, o := range obs {
		if o.Event {
			t.Fatal("censored observation marked as event")
		}
		if o.Time != float64(res.Limit+1) {
			t.Fatalf("censor time = %v", o.Time)
		}
	}
}

func TestCoverageCollection(t *testing.T) {
	res, err := RunTarget(raceTarget(), "RW", Config{
		Sessions: 2, Limit: 200, Seed: 7, Coverage: true, CoverageEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sessions[0]
	if s.Cov == nil || len(s.Cov.Interleavings) < 2 {
		t.Fatalf("coverage missing or trivial: %+v", s.Cov)
	}
	if len(s.Cov.Series) != 4 {
		t.Fatalf("series has %d points, want 4", len(s.Cov.Series))
	}
	last := s.Cov.Series[len(s.Cov.Series)-1]
	if last.Schedules != 200 || last.Interleavings != len(s.Cov.Interleavings) {
		t.Fatalf("final series point wrong: %+v", last)
	}
	if s.Cov.InterleavingEntropy() <= 0 {
		t.Fatal("interleaving entropy should be positive")
	}
	// Behaviours: "ok" always (bug aborts before SetBehavior on "lost"
	// schedules? no — behavior set before assert), so both seen.
	if len(s.Cov.Behaviors) == 0 {
		t.Fatal("no behaviours recorded")
	}
	ms := res.MeanCoverageSeries()
	if len(ms) != 4 || ms[3].IlvMean <= 0 {
		t.Fatalf("mean series wrong: %+v", ms)
	}
	ie, be := res.EntropySummary()
	if ie.N != 2 || be.N != 2 {
		t.Fatalf("entropy summaries wrong: %+v %+v", ie, be)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	cfg := Config{Sessions: 3, Limit: 100, Seed: 42, StopAtFirstBug: true}
	a, err := RunTarget(raceTarget(), "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTarget(raceTarget(), "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sessions {
		if a.Sessions[i].FirstBug != b.Sessions[i].FirstBug {
			t.Fatalf("session %d diverged: %d vs %d", i, a.Sessions[i].FirstBug, b.Sessions[i].FirstBug)
		}
	}
}

func TestBadAlgorithmName(t *testing.T) {
	if _, err := RunTarget(cleanTarget(), "NOPE", Config{Sessions: 1, Limit: 1}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestLogRankOnRunnerOutput(t *testing.T) {
	cfg := Config{Sessions: 10, Limit: 400, Seed: 13, StopAtFirstBug: true}
	surw, err := RunTarget(raceTarget(), "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RunTarget(raceTarget(), "RW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Just exercise the plumbing: the statistic must be finite and p in
	// [0,1]; on this easy bug both algorithms are fast so no significance
	// is required.
	chi2, p := stats.LogRank(surw.FirstBugObs(), rw.FirstBugObs())
	if chi2 < 0 || p < 0 || p > 1 {
		t.Fatalf("log-rank chi2=%v p=%v", chi2, p)
	}
}

func TestDBAndRAPOSThroughRunner(t *testing.T) {
	for _, alg := range []string{"DB-2", "RAPOS"} {
		res, err := RunTarget(raceTarget(), alg, Config{
			Sessions: 2, Limit: 400, Seed: 17, StopAtFirstBug: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.FoundEver() {
			t.Fatalf("%s never found the lost update", alg)
		}
	}
}
