// Package runner drives the paper's experimental methodology: for a target
// program and an algorithm it runs sessions of up to a fixed number of
// schedules, profiles once per session for the algorithms that need count
// estimates, re-draws the interesting-event subset Δ per schedule (the
// paper's SCTBench/ConVul instantiation), and records schedules-to-first-
// bug, distinct bugs, and interleaving/behaviour coverage.
package runner

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"surw/internal/atlas"
	"surw/internal/obs"
	"surw/internal/profile"
	"surw/internal/sched"
	"surw/internal/stats"
	"surw/internal/workpool"
)

// Target describes a program under test.
type Target struct {
	// Name identifies the target in reports ("CS/reorder_10", ...).
	Name string
	// Prog is the root thread body. It must be re-runnable: all shared
	// state is created inside it through the sched API.
	Prog func(*sched.Thread)
	// MaxSteps bounds each schedule (0 = sched.DefaultMaxSteps).
	MaxSteps int
	// ProgSeed fixes the program-input randomness for all schedules.
	ProgSeed int64
	// Select overrides the per-schedule Δ choice for SURW/N-U; nil uses the
	// paper's default, a single shared variable drawn with probability
	// proportional to its access count. Returning ok=false falls back to
	// Δ = Γ for that schedule.
	Select func(p *profile.Profile, rng *rand.Rand) (profile.Selection, bool)
	// TraceFilter restricts which events form the interleaving fingerprint
	// for coverage studies (nil = all events).
	TraceFilter func(sched.Event) bool
}

// Config controls a batch of sessions.
type Config struct {
	// Sessions is the number of independent sessions (paper: 20).
	Sessions int
	// Limit is the schedule budget per session (paper: 10^4).
	Limit int
	// Seed derives all session and schedule seeds.
	Seed int64
	// StopAtFirstBug ends a session at its first failing schedule
	// (schedules-to-first-bug methodology). Leave false to keep sampling
	// and accumulate distinct bugs (RaceBench methodology).
	StopAtFirstBug bool
	// Coverage records interleaving and behaviour tallies with a series
	// point every CoverageEvery schedules (Figure 5 / Table 3).
	Coverage      bool
	CoverageEvery int
	// ProfileRuns is the number of census runs per session (default 1).
	ProfileRuns int
	// Workers bounds how many sessions run concurrently: 1 is the legacy
	// sequential loop, larger values fan sessions over that many OS-backed
	// workers, and <= 0 means one worker per CPU (runtime.GOMAXPROCS(0)).
	// Results are bit-identical under every setting; see parallel.go.
	Workers int
	// Metrics, when non-nil, aggregates observability counters (schedule
	// throughput, decision histograms, worker utilization, phase latency
	// histograms) across the batch. Attaching it never changes results; see
	// internal/obs.
	Metrics *obs.Metrics
	// Phase, when non-nil, is called at session phase boundaries — today
	// once per session after the prefix capture ("prefix", schedule 0's
	// RunPrefix) — with the phase's start time and duration. Strictly
	// observational: it is consulted only between schedules and must not
	// block. The distributed worker uses it to parent prefix-replay spans
	// under session spans; everything else leaves it nil.
	Phase func(session int, phase string, start time.Time, d time.Duration)
	// FlightDir, when non-empty, enables the flight recorder: each session's
	// first failing schedule is re-executed with a replay recorder attached
	// and dumped as a JSON flight record under this directory (replayable
	// with `surwrun -replay-flight`). See internal/obs/flight.go.
	FlightDir string
	// DisableCheckpoint turns off prefix checkpointing: every schedule then
	// runs in full instead of replaying the session's captured forced
	// prefix through the batched path. Results are bit-identical either
	// way (the crosscheck oracle holds this); the switch exists for A/B
	// verification and for isolating perf regressions.
	DisableCheckpoint bool
	// PrefixFilter, when non-nil, enables prefix-class early abandon: after
	// a session's first schedule captures the forced prefix (shared by all
	// of the session's schedules), the filter is consulted with the
	// prefix's class fingerprint, and a session whose prefix lands in a
	// saturated commutation class stops without spending the rest of its
	// schedule budget. This deliberately trades the bit-identity guarantee
	// for throughput — a fleet-wide approximation, never enabled by the
	// byte-identity smokes — so it is opt-in and off everywhere by default.
	// internal/remote's worker backs it with the coordinator's shared
	// seen-class filter.
	PrefixFilter PrefixClassFilter
	// Store, when non-nil, makes the batch resumable: each session's key is
	// looked up before it runs (a hit is returned without executing a single
	// schedule) and every freshly executed session is persisted on
	// completion. Both paths return the store's canonical (wire round-trip)
	// form, so a resumed batch is byte-identical to an uninterrupted one at
	// any Workers setting. Attaching a store never changes which threads are
	// scheduled: it is consulted strictly between sessions (see
	// internal/campaign). Resumed sessions do not re-run, so they feed
	// neither Metrics nor the flight recorder.
	Store SessionStore
	// Atlas, when non-nil, accumulates schedule-space cartography and
	// per-cell uniformity drift (internal/atlas): each session attaches
	// its cell's accumulator to the engine and feeds the cell one class
	// fingerprint per completed schedule. Execution plumbing like Metrics
	// and Store — it never changes a schedule, a result, or a session
	// key, and resumed (store-hit) sessions feed it nothing.
	Atlas *atlas.Atlas
}

// PrefixClassFilter decides prefix-class early abandon (see
// Config.PrefixFilter). SaturatedPrefix receives the class fingerprint of
// a session's forced decision prefix and returns true when that class is
// already saturated fleet-wide, in which case the session stops early.
// Implementations must be safe for concurrent use (parallel sessions
// consult the filter concurrently) and should fail open: return false on
// any doubt or transport error.
type PrefixClassFilter interface {
	SaturatedPrefix(classPrefix uint64) bool
}

// SessionKey identifies one session's work deterministically: everything
// that feeds the session's seeds and its observable outcome, independent of
// Config.Sessions and Config.Workers (a session's result depends only on
// its own index). CoverageEvery is the effective cadence (0 when Coverage
// is off), so equivalent configs share keys.
type SessionKey struct {
	Target         string
	Algorithm      string
	Limit          int
	Seed           int64
	Session        int
	StopAtFirstBug bool
	Coverage       bool
	CoverageEvery  int
	ProfileRuns    int
}

// SessionStore persists per-session results for crash-safe, resumable
// batches. internal/campaign provides the JSONL-backed implementation; the
// indirection keeps the runner free of storage concerns (and of an import
// cycle). Implementations must be safe for concurrent use: parallel
// sessions look up and store concurrently.
type SessionStore interface {
	// Lookup returns the previously stored session for the key, if any.
	Lookup(SessionKey) (*Session, bool)
	// Store persists a freshly executed session and returns its canonical
	// form (the wire round-trip), which the runner reports in place of the
	// in-memory one so fresh and resumed batches are bit-identical.
	Store(SessionKey, *Session) (*Session, error)
}

// BatchObserver is an optional extension of SessionStore: when the store
// implements it, RunTarget reports each completed (target, algorithm) cell,
// which the campaign layer turns into live dashboard events.
type BatchObserver interface {
	CellDone(target, alg string, limit int, seed int64, res *Result)
}

// normalized applies the batch defaults RunTarget has always applied, so
// session keys and session seeds are identical however the config reaches
// the engine (a local batch, a resumed campaign, or a remote lease).
func (cfg Config) normalized() Config {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 1000
	}
	return cfg
}

// KeyFor returns the normalized SessionKey the engine uses for one session
// of a batch — the deterministic unit of work a campaign plan is made of.
// internal/remote shards campaigns by these keys, so the derivation must
// stay in lockstep with runSession's.
func KeyFor(tgt Target, algName string, cfg Config, session int) SessionKey {
	return sessionKey(tgt, algName, cfg.normalized(), session)
}

// sessionKey builds the normalized key for one session of the batch.
func sessionKey(tgt Target, algName string, cfg Config, session int) SessionKey {
	k := SessionKey{
		Target:         tgt.Name,
		Algorithm:      algName,
		Limit:          cfg.Limit,
		Seed:           cfg.Seed,
		Session:        session,
		StopAtFirstBug: cfg.StopAtFirstBug,
		Coverage:       cfg.Coverage,
		ProfileRuns:    cfg.ProfileRuns,
	}
	if cfg.Coverage {
		k.CoverageEvery = effectiveEvery(cfg)
	}
	return k
}

// effectiveEvery resolves the coverage-series cadence default.
func effectiveEvery(cfg Config) int {
	if cfg.CoverageEvery > 0 {
		return cfg.CoverageEvery
	}
	return cfg.Limit/50 + 1
}

// CovPoint is one point of a coverage curve. Classes counts the distinct
// commutation classes (sched.Result.ClassHash) seen so far — the
// deduplicated counterpart of Interleavings.
type CovPoint struct {
	Schedules     int
	Interleavings int
	Behaviors     int
	Classes       int
}

// Coverage tallies the distinct interleavings, commutation classes and
// behaviours one session witnessed. DupSchedules counts the schedules
// whose class fingerprint had already been seen within the session — the
// schedules an ideal dedup-aware sampler would not have spent.
type Coverage struct {
	Interleavings map[uint64]int
	Classes       map[uint64]int
	Behaviors     map[string]int
	DupSchedules  int
	Series        []CovPoint
}

// InterleavingEntropy returns the Shannon entropy of the interleaving
// distribution sampled by the session.
func (c *Coverage) InterleavingEntropy() float64 { return stats.EntropyOfMap(c.Interleavings) }

// BehaviorEntropy returns the Shannon entropy of the behaviour
// distribution sampled by the session.
func (c *Coverage) BehaviorEntropy() float64 { return stats.EntropyOfMap(c.Behaviors) }

// Session is the outcome of one session.
type Session struct {
	// FirstBug is the 1-based schedule index of the first bug, counting the
	// profiling run for the algorithms that need one (the paper's
	// accounting); -1 if the budget expired bug-free.
	FirstBug int
	// Bugs counts how many schedules manifested each distinct bug ID.
	Bugs map[string]int
	// Schedules is the number of testing schedules actually run.
	Schedules int
	// Truncated counts schedules that hit the step budget.
	Truncated int
	// Cov is non-nil when Config.Coverage was set.
	Cov *Coverage
	// Flight is the path of the flight record dumped for this session's
	// first failing schedule ("" when Config.FlightDir is unset or the
	// session found no bug). Excluded from Equal: it describes where a
	// diagnostic artifact landed, not what the session observed.
	Flight string
}

// Result aggregates the sessions of one (target, algorithm) pair.
type Result struct {
	Target    string
	Algorithm string
	Limit     int
	Sessions  []Session
	// Elapsed is the wall-clock duration of the whole batch. It is
	// observational (excluded from Equal, never persisted): it backs the
	// schedules/s throughput footers of the surwbench tables.
	Elapsed time.Duration
}

// TotalSchedules sums the testing schedules of every session.
func (r *Result) TotalSchedules() int {
	n := 0
	for i := range r.Sessions {
		n += r.Sessions[i].Schedules
	}
	return n
}

// SchedulesPerSecond returns the batch's throughput (0 when no time was
// observed, e.g. on a Result assembled from a store).
func (r *Result) SchedulesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalSchedules()) / r.Elapsed.Seconds()
}

// RunTarget runs cfg.Sessions sessions of algName on the target, fanned
// over cfg.Workers workers (see parallel.go for the confinement argument).
func RunTarget(tgt Target, algName string, cfg Config) (*Result, error) {
	return RunTargetContext(context.Background(), tgt, algName, cfg)
}

// poolCache recycles sched.Pools across the sessions of one batch. get
// and put bracket a session; closeAll releases every pool's parked
// worker goroutines when the batch is done.
type poolCache struct {
	mu   sync.Mutex
	free []*sched.Pool
	all  []*sched.Pool
}

func (pc *poolCache) get() *sched.Pool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if n := len(pc.free); n > 0 {
		p := pc.free[n-1]
		pc.free = pc.free[:n-1]
		return p
	}
	p := sched.NewPool()
	pc.all = append(pc.all, p)
	return p
}

func (pc *poolCache) put(p *sched.Pool) {
	pc.mu.Lock()
	pc.free = append(pc.free, p)
	pc.mu.Unlock()
}

func (pc *poolCache) closeAll() {
	for _, p := range pc.all {
		p.Close()
	}
}

// RunTargetContext is RunTarget with cancellation: ctx is consulted between
// schedules, so a long batch stops within one schedule of cancellation and
// returns the context's error instead of a result. Sessions that completed
// before the cancellation and were persisted to cfg.Store stand — a
// resumed batch skips them — so cancelling a campaign loses at most the
// in-flight sessions, never the finished ones.
func RunTargetContext(ctx context.Context, tgt Target, algName string, cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	// A typed-nil *obs.Metrics must not become a non-nil Meter interface.
	var meter workpool.Meter
	if cfg.Metrics != nil {
		meter = cfg.Metrics
	}
	// Workers recycle sched.Pools across the sessions they run: all
	// sessions execute the same program, so one pool's interned names,
	// buffers and parked worker goroutines serve every session it is
	// handed (results are pool-independent; see sched.Pool).
	pc := &poolCache{}
	defer pc.closeAll()
	start := time.Now()
	sessions, err := workpool.MapMetered(cfg.Workers, cfg.Sessions, meter, func(s int) (Session, error) {
		pool := pc.get()
		var t0 time.Time
		if cfg.Metrics != nil {
			t0 = time.Now()
		}
		sess, err := runSession(ctx, tgt, algName, cfg, s, pool)
		pc.put(pool)
		if err != nil {
			return Session{}, fmt.Errorf("runner: %s/%s session %d: %w", tgt.Name, algName, s, err)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Latency("session").Observe(time.Since(t0))
		}
		return *sess, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Target: tgt.Name, Algorithm: algName, Limit: cfg.Limit, Sessions: sessions, Elapsed: time.Since(start)}
	if bo, ok := cfg.Store.(BatchObserver); ok {
		bo.CellDone(tgt.Name, algName, cfg.Limit, cfg.Seed, res)
	}
	return res, nil
}

// RunSession executes exactly one session of the batch cfg describes — the
// session with the given index, seeded from it — and returns its outcome.
// It is the unit a distributed worker executes for a lease: because a
// session's result depends only on (target, algorithm, normalized config,
// index), a session run remotely is bit-identical to the same session run
// in a local batch. ctx cancels between schedules; a cancelled session
// returns the context's error and no Session (the coordinator's lease
// expiry re-queues the work).
func RunSession(ctx context.Context, tgt Target, algName string, cfg Config, session int) (*Session, error) {
	return runSession(ctx, tgt, algName, cfg.normalized(), session, nil)
}

// Equal reports whether two results are observably identical: same target,
// algorithm, limit, and per-session outcomes including bug tallies and
// coverage curves. It backs the worker-count-invariance guarantee (results
// are bit-identical under any Config.Workers setting).
func (r *Result) Equal(o *Result) bool {
	if r.Target != o.Target || r.Algorithm != o.Algorithm || r.Limit != o.Limit ||
		len(r.Sessions) != len(o.Sessions) {
		return false
	}
	for i := range r.Sessions {
		if !r.Sessions[i].equal(&o.Sessions[i]) {
			return false
		}
	}
	return true
}

func (s *Session) equal(o *Session) bool {
	if s.FirstBug != o.FirstBug || s.Schedules != o.Schedules ||
		s.Truncated != o.Truncated || len(s.Bugs) != len(o.Bugs) {
		return false
	}
	for id, n := range s.Bugs {
		if o.Bugs[id] != n {
			return false
		}
	}
	if (s.Cov == nil) != (o.Cov == nil) {
		return false
	}
	if s.Cov == nil {
		return true
	}
	return s.Cov.equal(o.Cov)
}

func (c *Coverage) equal(o *Coverage) bool {
	if len(c.Interleavings) != len(o.Interleavings) ||
		len(c.Classes) != len(o.Classes) ||
		len(c.Behaviors) != len(o.Behaviors) ||
		c.DupSchedules != o.DupSchedules ||
		len(c.Series) != len(o.Series) {
		return false
	}
	for h, n := range c.Interleavings {
		if o.Interleavings[h] != n {
			return false
		}
	}
	for h, n := range c.Classes {
		if o.Classes[h] != n {
			return false
		}
	}
	for b, n := range c.Behaviors {
		if o.Behaviors[b] != n {
			return false
		}
	}
	for i, p := range c.Series {
		if o.Series[i] != p {
			return false
		}
	}
	return true
}

// FirstBugObs converts the sessions to right-censored observations for the
// log-rank test: censored at limit(+1 for profiled algorithms) when no bug
// was found.
func (r *Result) FirstBugObs() []stats.Obs {
	obs := make([]stats.Obs, 0, len(r.Sessions))
	for _, s := range r.Sessions {
		if s.FirstBug >= 0 {
			obs = append(obs, stats.Obs{Time: float64(s.FirstBug), Event: true})
		} else {
			obs = append(obs, stats.Obs{Time: float64(r.Limit + 1), Event: false})
		}
	}
	return obs
}

// FirstBugSummary summarizes schedules-to-first-bug over the sessions that
// found the bug; found reports how many did.
func (r *Result) FirstBugSummary() (sum stats.Summary, found int) {
	var xs []float64
	for _, s := range r.Sessions {
		if s.FirstBug >= 0 {
			xs = append(xs, float64(s.FirstBug))
			found++
		}
	}
	return stats.Summarize(xs), found
}

// FoundEver reports whether any session exposed a bug.
func (r *Result) FoundEver() bool {
	for _, s := range r.Sessions {
		if s.FirstBug >= 0 {
			return true
		}
	}
	return false
}

// FoundAll reports whether every session exposed a bug.
func (r *Result) FoundAll() bool {
	for _, s := range r.Sessions {
		if s.FirstBug < 0 {
			return false
		}
	}
	return len(r.Sessions) > 0
}

// DistinctBugs returns the union of bug IDs across sessions.
func (r *Result) DistinctBugs() map[string]bool {
	out := make(map[string]bool)
	for _, s := range r.Sessions {
		for id := range s.Bugs {
			out[id] = true
		}
	}
	return out
}

// MeanCoverageSeries averages the per-session coverage curves pointwise and
// returns (schedules, mean interleavings, std, mean behaviours, std) rows.
// Sessions must share a series shape (same Config).
func (r *Result) MeanCoverageSeries() []CovSeriesPoint {
	if len(r.Sessions) == 0 || r.Sessions[0].Cov == nil {
		return nil
	}
	n := len(r.Sessions[0].Cov.Series)
	out := make([]CovSeriesPoint, 0, n)
	for i := 0; i < n; i++ {
		var ilv, beh []float64
		sch := 0
		for _, s := range r.Sessions {
			if s.Cov == nil || i >= len(s.Cov.Series) {
				continue
			}
			p := s.Cov.Series[i]
			sch = p.Schedules
			ilv = append(ilv, float64(p.Interleavings))
			beh = append(beh, float64(p.Behaviors))
		}
		si, sb := stats.Summarize(ilv), stats.Summarize(beh)
		out = append(out, CovSeriesPoint{
			Schedules: sch,
			IlvMean:   si.Mean, IlvStd: si.Std,
			BehMean: sb.Mean, BehStd: sb.Std,
		})
	}
	return out
}

// CovSeriesPoint is one aggregated point of Figure 5's curves.
type CovSeriesPoint struct {
	Schedules       int
	IlvMean, IlvStd float64
	BehMean, BehStd float64
}

// EntropySummary aggregates the per-session entropies (Table 3 rows).
func (r *Result) EntropySummary() (ilv, beh stats.Summary) {
	var is, bs []float64
	for _, s := range r.Sessions {
		if s.Cov == nil {
			continue
		}
		is = append(is, s.Cov.InterleavingEntropy())
		bs = append(bs, s.Cov.BehaviorEntropy())
	}
	return stats.Summarize(is), stats.Summarize(bs)
}
