// Session execution. Sessions are the unit of parallelism: RunTarget fans
// them over a workpool, and this file is the engine each worker runs.
//
// The confinement model that keeps parallel output bit-identical to the
// sequential loop:
//
//   - Every session is self-contained. Its seed is derived from the config
//     seed and its own index (cfg.Seed + session*1_000_003), never from a
//     shared stream, so no session observes another's randomness.
//   - A session builds all of its mutable state privately: its algorithm
//     instance (core.New per session), its rand streams, its profile, and a
//     sched.Pool whose buffers are recycled across the session's schedules
//     but never shared between sessions.
//   - Target state is created inside Prog through the sched API on every
//     schedule, so concurrent schedules of one program never share memory;
//     the Target struct itself is only read.
//   - Results are collected by session index (workpool.Map), never by
//     completion order.
//
// Under these rules the session loop commutes with itself, so Workers: N
// is an execution-order change only. The regression tests in
// parallel_test.go hold RunTarget(Workers: 4) byte-identical to
// RunTarget(Workers: 1) for every registered algorithm.
package runner

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"surw/internal/core"
	"surw/internal/obs"
	"surw/internal/profile"
	"surw/internal/replay"
	"surw/internal/sched"
)

// needsProfile reports whether the algorithm consumes count estimates, and
// therefore whether the paper charges it one extra schedule for the
// profiling run.
func needsProfile(alg string) bool {
	a := strings.ToUpper(alg)
	return a == "SURW" || a == "N-U" || a == "N-S" || a == "URW" ||
		strings.HasPrefix(a, "PCT") || strings.HasPrefix(a, "DB-")
}

// usesDelta reports whether the algorithm consumes a Δ selection.
func usesDelta(alg string) bool {
	a := strings.ToUpper(alg)
	return a == "SURW" || a == "N-U"
}

func runSession(ctx context.Context, tgt Target, algName string, cfg Config, session int, pool *sched.Pool) (*Session, error) {
	// The store is consulted strictly between sessions — a hit skips the
	// session wholesale, a miss runs it untouched — so attaching one can
	// never perturb a schedule (campaign_test.go holds the invariant).
	var key SessionKey
	if cfg.Store != nil {
		key = sessionKey(tgt, algName, cfg, session)
		if s, ok := cfg.Store.Lookup(key); ok {
			return s, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	alg, err := core.New(algName)
	if err != nil {
		return nil, err
	}
	base := cfg.Seed + int64(session)*1_000_003
	// sessRng feeds only the per-schedule Δ selection; constructing (and
	// seeding) it lazily keeps it free for the algorithms that never draw.
	var sessRng *rand.Rand

	plusOne := 0
	var prof *profile.Profile
	if needsProfile(algName) {
		plusOne = 1
		prof, _ = profile.Collect(tgt.Prog, profile.Options{Base: sched.Base{Seed: base + 17, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}, Runs: cfg.ProfileRuns})
		// A crashing or truncated census still yields usable (if noisy)
		// counts; §7 of the paper discusses exactly this degradation.
	}
	var fixedInfo *sched.ProgramInfo
	if prof != nil && !usesDelta(algName) {
		fixedInfo = prof.Instantiate(prof.SelectAll())
	}

	sess := &Session{FirstBug: -1, Bugs: make(map[string]int)}
	if cfg.Coverage {
		sess.Cov = &Coverage{
			Interleavings: make(map[uint64]int),
			Classes:       make(map[uint64]int),
			Behaviors:     make(map[string]int),
		}
	}
	every := effectiveEvery(cfg)

	// Observability hooks are strictly per-session: a shared aggregator
	// hands each session its own tracer (the scheduler contract), and the
	// tracer feeds the shared atomic counters.
	var tracer sched.Tracer
	if cfg.Metrics != nil {
		tracer = cfg.Metrics.Tracer()
	}
	// The atlas cell is shared by all sessions of this (target, algorithm)
	// pair; the engine writes lock-free atomic counters into its Accum and
	// the per-schedule class fingerprint feeds its uniformity tracker
	// below, strictly after each schedule completes.
	atlasCell := cfg.Atlas.Cell(tgt.Name, algName)

	// All schedules of the session share (and recycle) one pool of
	// execution buffers and parked worker goroutines. RunTarget hands in a
	// pool recycled across the sessions a worker runs; direct callers get
	// a private one.
	if pool == nil {
		pool = sched.NewPool()
		defer pool.Close()
	}
	// The session's first schedule additionally captures the program's
	// forced decision prefix; every later schedule replays it through the
	// batched run-to-next-decision path instead of re-deciding it. A
	// tracer (or DisableCheckpoint) yields a nil checkpoint and full runs.
	var cp *sched.Checkpoint
	for i := 0; i < cfg.Limit; i++ {
		// Cancellation lands strictly between schedules: a schedule that
		// started always finishes (schedules are short), so the scheduler
		// itself never observes the context. The partial session is
		// discarded, not stored — resumable partial state is the store's
		// job, and its unit is the whole session.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		info := fixedInfo
		if prof != nil && usesDelta(algName) {
			if sessRng == nil {
				sessRng = rand.New(rand.NewSource(base))
			}
			sel, ok := selectDelta(tgt, prof, sessRng)
			if ok {
				info = prof.Instantiate(sel)
			} else {
				info = prof.Instantiate(prof.SelectAll())
			}
		}
		opts := sched.Options{Base: sched.Base{Seed: base + int64(i)*2_000_033 + 1, ProgSeed: tgt.ProgSeed, MaxSteps: tgt.MaxSteps}, Info: info, TraceFilter: tgt.TraceFilter, Tracer: tracer, Atlas: atlasCell.Accum()}
		var r *sched.Result
		abandon := false
		if i == 0 && !cfg.DisableCheckpoint {
			// Observe the prefix capture (schedule 0's RunPrefix doubles as
			// the checkpoint fork) when anyone is watching. Once per
			// session, between schedules — never on the schedule hot path.
			var prefixStart time.Time
			if cfg.Metrics != nil || cfg.Phase != nil {
				prefixStart = time.Now()
			}
			r, cp = pool.RunPrefix(tgt.Prog, alg, opts)
			if !prefixStart.IsZero() {
				d := time.Since(prefixStart)
				if cfg.Metrics != nil {
					cfg.Metrics.Latency("checkpoint_fork").Observe(d)
				}
				if cfg.Phase != nil {
					cfg.Phase(session, "prefix", prefixStart, d)
				}
			}
			// Prefix-class early abandon (opt-in, see Config.PrefixFilter):
			// every schedule of the session replays this forced prefix, so
			// one saturated-class verdict retires the whole session. The
			// first schedule still counts — it ran — so the check only
			// short-circuits the loop after this iteration's accounting.
			if cfg.PrefixFilter != nil && cp != nil &&
				cfg.PrefixFilter.SaturatedPrefix(cp.ClassPrefix()) {
				abandon = true
			}
		} else {
			r = pool.RunFrom(cp, tgt.Prog, alg, opts)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.ObserveResult(alg.Name(), r)
		}
		sess.Schedules++
		if r.Truncated {
			sess.Truncated++
		}
		atlasCell.ObserveSchedule(r.ClassHash)
		if sess.Cov != nil {
			sess.Cov.Interleavings[r.InterleavingHash]++
			if sess.Cov.Classes[r.ClassHash]++; sess.Cov.Classes[r.ClassHash] > 1 {
				sess.Cov.DupSchedules++
			}
			if r.Behavior != "" {
				sess.Cov.Behaviors[r.Behavior]++
			}
			if (i+1)%every == 0 || i+1 == cfg.Limit {
				sess.Cov.Series = append(sess.Cov.Series, CovPoint{
					Schedules:     i + 1,
					Interleavings: len(sess.Cov.Interleavings),
					Behaviors:     len(sess.Cov.Behaviors),
					Classes:       len(sess.Cov.Classes),
				})
			}
		}
		if r.Buggy() {
			sess.Bugs[r.BugID()]++
			if sess.FirstBug == -1 {
				sess.FirstBug = i + 1 + plusOne
				if cfg.FlightDir != "" {
					path, err := dumpFlight(tgt, algName, cfg, session, i, opts, r)
					if err != nil {
						return nil, err
					}
					sess.Flight = path
				}
				if cfg.StopAtFirstBug {
					break
				}
			}
		}
		if abandon {
			break
		}
	}
	if cfg.Store != nil {
		return cfg.Store.Store(key, sess)
	}
	return sess, nil
}

// dumpFlight re-executes the session's first failing schedule with a replay
// recorder and a ring collector attached — schedules are deterministic
// given (program, algorithm, Options), so the re-run witnesses the same
// interleaving while capturing the choice sequence and the last decisions —
// and writes the flight record under cfg.FlightDir.
func dumpFlight(tgt Target, algName string, cfg Config, session, schedule int,
	opts sched.Options, orig *sched.Result) (string, error) {
	alg, err := core.New(algName)
	if err != nil {
		return "", err
	}
	rec := replay.NewRecorder(alg)
	col := obs.NewCollector(obs.FlightRingSize)
	opts.Tracer = col
	res := sched.Run(tgt.Prog, rec, opts)

	fr := &obs.FlightRecord{
		Version:          obs.FlightVersion,
		Target:           tgt.Name,
		Algorithm:        alg.Name(),
		Session:          session,
		Schedule:         schedule,
		Seed:             opts.Seed,
		ProgSeed:         opts.ProgSeed,
		MaxSteps:         opts.MaxSteps,
		Recording:        rec.Recording().String(),
		BugID:            orig.BugID(),
		FailStep:         orig.Failure.Step,
		FailKind:         orig.Failure.Kind.String(),
		FailMsg:          orig.Failure.Msg,
		Steps:            orig.Steps,
		Threads:          orig.Threads,
		Fingerprint:      fmt.Sprintf("%016x", orig.InterleavingHash),
		ClassFingerprint: fmt.Sprintf("%016x", orig.ClassHash),
		Reproduced: res.BugID() == orig.BugID() &&
			res.InterleavingHash == orig.InterleavingHash &&
			res.ClassHash == orig.ClassHash,
		LastDecisions: obs.CollectorRecords(col),
	}
	if opts.Info != nil {
		fr.Delta = opts.Info.DeltaDesc
	}
	return obs.WriteFlight(cfg.FlightDir, fr)
}

func selectDelta(tgt Target, prof *profile.Profile, rng *rand.Rand) (profile.Selection, bool) {
	if tgt.Select != nil {
		return tgt.Select(prof, rng)
	}
	return prof.SelectSingleVar(rng)
}
