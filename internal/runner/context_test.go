package runner

// Cancellation contract: ctx is consulted between schedules (and between
// sessions), never inside one, so a cancelled batch returns the context's
// error — no panic, no torn schedule — and an uncancelled context changes
// nothing.

import (
	"context"
	"errors"
	"testing"

	"surw/internal/sched"
)

func ctxTarget() Target {
	return Target{
		Name: "ctx/racy",
		Prog: func(t *sched.Thread) {
			c := t.NewVar("c", 0)
			h := t.Go(func(w *sched.Thread) { c.Add(w, 1) })
			c.Add(t, 1)
			t.Join(h)
		},
	}
}

func TestRunTargetContextBackgroundMatchesRunTarget(t *testing.T) {
	cfg := Config{Sessions: 2, Limit: 50, Seed: 5}
	a, err := RunTarget(ctxTarget(), "RW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTargetContext(context.Background(), ctxTarget(), "RW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("RunTargetContext(Background) diverged from RunTarget")
	}
}

func TestRunTargetContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunTargetContext(ctx, ctxTarget(), "RW", Config{Sessions: 2, Limit: 50, Seed: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunSessionMatchesBatchSession(t *testing.T) {
	cfg := Config{Sessions: 3, Limit: 80, Seed: 9, Coverage: true}
	batch, err := RunTarget(ctxTarget(), "URW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Sessions {
		solo, err := RunSession(context.Background(), ctxTarget(), "URW", cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if !solo.equal(&batch.Sessions[i]) {
			t.Fatalf("RunSession(%d) diverged from batch session %d", i, i)
		}
	}
}

func TestRunSessionCancelledMidSession(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tgt := ctxTarget()
	runs := 0
	prog := tgt.Prog
	tgt.Prog = func(th *sched.Thread) {
		runs++
		if runs == 3 {
			cancel()
		}
		prog(th)
	}
	_, err := RunSession(ctx, tgt, "RW", Config{Limit: 1000, Seed: 1}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs >= 1000 {
		t.Fatal("cancellation did not stop the schedule loop")
	}
}

func TestKeyForMatchesEngineNormalization(t *testing.T) {
	// KeyFor must normalize exactly like RunTarget so plans built from it
	// hit the store records a local batch writes.
	k := KeyFor(ctxTarget(), "SURW", Config{Coverage: true}, 2)
	want := SessionKey{
		Target: "ctx/racy", Algorithm: "SURW", Limit: 1000, Session: 2,
		Coverage: true, CoverageEvery: 1000/50 + 1,
	}
	if k != want {
		t.Fatalf("KeyFor = %+v, want %+v", k, want)
	}
}
