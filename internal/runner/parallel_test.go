// External test package: sctbench imports runner, so pulling real SCTBench
// targets into these tests requires runner_test.
package runner_test

import (
	"reflect"
	"testing"

	"surw/internal/core"
	"surw/internal/runner"
	"surw/internal/sctbench"
)

// regressionAlgorithms is every registered algorithm family: the seven
// Table 4 names plus the DB and RAPOS baselines.
func regressionAlgorithms() []string {
	return append(core.AllNames(), "DB-2", "RAPOS")
}

// regressionTargets picks SCTBench targets with distinct synchronization
// idioms: pure shared-variable racing, mutex+condvar signalling, and a
// lock-discipline bug.
func regressionTargets(t *testing.T) []runner.Target {
	var out []runner.Target
	for _, name := range []string{"CS/reorder_4", "CS/twostage", "CS/wronglock_3"} {
		tgt, ok := sctbench.ByName(name)
		if !ok {
			t.Fatalf("unknown SCTBench target %q", name)
		}
		out = append(out, tgt)
	}
	return out
}

// TestParallelSessionsMatchSequential is the paper-results safety net for
// the parallel runner: for every registered algorithm on real SCTBench
// targets, RunTarget with Workers: 4 must produce a Result byte-identical
// to Workers: 1 — FirstBug, Bugs, coverage maps, series, everything.
func TestParallelSessionsMatchSequential(t *testing.T) {
	targets := regressionTargets(t)
	algs := regressionAlgorithms()
	if testing.Short() {
		targets = targets[:2]
		algs = []string{"SURW", "POS", "RW"}
	}
	for _, tgt := range targets {
		for _, alg := range algs {
			cfg := runner.Config{
				Sessions:      4,
				Limit:         60,
				Seed:          23,
				Coverage:      true,
				CoverageEvery: 20,
			}
			cfg.Workers = 1
			seq, err := runner.RunTarget(tgt, alg, cfg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", tgt.Name, alg, err)
			}
			cfg.Workers = 4
			par, err := runner.RunTarget(tgt, alg, cfg)
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", tgt.Name, alg, err)
			}
			// Elapsed is observational wall-clock, the one field allowed
			// to differ across worker counts.
			seq.Elapsed, par.Elapsed = 0, 0
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s/%s: Workers=4 diverged from Workers=1", tgt.Name, alg)
				for s := range seq.Sessions {
					if !reflect.DeepEqual(seq.Sessions[s], par.Sessions[s]) {
						t.Errorf("  session %d:\n  seq: %+v\n  par: %+v",
							s, seq.Sessions[s], par.Sessions[s])
					}
				}
			}
		}
	}
}

// TestParallelEntropiesMatchSequential pins the derived statistics too:
// identical coverage maps must yield identical entropy summaries.
func TestParallelEntropiesMatchSequential(t *testing.T) {
	tgt, ok := sctbench.ByName("CS/reorder_4")
	if !ok {
		t.Fatal("missing target")
	}
	cfg := runner.Config{Sessions: 3, Limit: 80, Seed: 5, Coverage: true}
	cfg.Workers = 1
	seq, err := runner.RunTarget(tgt, "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := runner.RunTarget(tgt, "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	si, sb := seq.EntropySummary()
	pi, pb := par.EntropySummary()
	if si != pi || sb != pb {
		t.Fatalf("entropy summaries diverged: %+v/%+v vs %+v/%+v", si, sb, pi, pb)
	}
	if !reflect.DeepEqual(seq.MeanCoverageSeries(), par.MeanCoverageSeries()) {
		t.Fatal("mean coverage series diverged")
	}
}

// TestWorkerDefaultMatchesExplicit checks the Workers: 0 (one per CPU)
// default is just another worker count, not a separate code path.
func TestWorkerDefaultMatchesExplicit(t *testing.T) {
	tgt, ok := sctbench.ByName("CS/reorder_4")
	if !ok {
		t.Fatal("missing target")
	}
	cfg := runner.Config{Sessions: 4, Limit: 50, Seed: 11, StopAtFirstBug: true}
	cfg.Workers = 0
	def, err := runner.RunTarget(tgt, "RW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	expl, err := runner.RunTarget(tgt, "RW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	def.Elapsed, expl.Elapsed = 0, 0
	if !reflect.DeepEqual(def, expl) {
		t.Fatal("Workers: 0 diverged from an explicit worker count")
	}
}
