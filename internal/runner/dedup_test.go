package runner

import (
	"sync/atomic"
	"testing"
)

// recordingFilter implements PrefixClassFilter: it remembers every
// queried prefix class and answers a fixed verdict.
type recordingFilter struct {
	saturated bool
	queries   atomic.Int64
	last      atomic.Uint64
}

func (f *recordingFilter) SaturatedPrefix(class uint64) bool {
	f.queries.Add(1)
	f.last.Store(class)
	return f.saturated
}

// TestPrefixFilterAbandonsSaturatedSessions pins the early-abandon
// contract: a filter that calls every prefix saturated stops each session
// after its first schedule (schedule 0 always counts — its result is what
// produced the verdict), while a never-saturated filter leaves sessions
// byte-identical to a filter-less run.
func TestPrefixFilterAbandonsSaturatedSessions(t *testing.T) {
	base := Config{Sessions: 3, Limit: 50, Seed: 9, Coverage: true}

	ref, err := RunTarget(cleanTarget(), "SURW", base)
	if err != nil {
		t.Fatal(err)
	}

	open := &recordingFilter{saturated: false}
	cfgOpen := base
	cfgOpen.PrefixFilter = open
	same, err := RunTarget(cleanTarget(), "SURW", cfgOpen)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(same) {
		t.Fatal("non-saturating filter changed the run")
	}
	if open.queries.Load() != int64(base.Sessions) {
		t.Fatalf("filter queried %d times, want once per session (%d)", open.queries.Load(), base.Sessions)
	}

	shut := &recordingFilter{saturated: true}
	cfgShut := base
	cfgShut.PrefixFilter = shut
	res, err := RunTarget(cleanTarget(), "SURW", cfgShut)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Sessions {
		if s.Schedules != 1 {
			t.Fatalf("session %d ran %d schedules after a saturated verdict, want 1", i, s.Schedules)
		}
		if s.Cov == nil || len(s.Cov.Classes) != 1 {
			t.Fatalf("session %d: abandoned session must still tally its first schedule", i)
		}
	}
}

// TestPrefixFilterNotConsultedWithoutCheckpoints ensures the filter is a
// no-op when checkpointing is disabled: without RunPrefix there is no
// prefix class to ask about, and sessions must not be abandoned on a
// made-up fingerprint.
func TestPrefixFilterNotConsultedWithoutCheckpoints(t *testing.T) {
	shut := &recordingFilter{saturated: true}
	cfg := Config{Sessions: 2, Limit: 20, Seed: 5, DisableCheckpoint: true, PrefixFilter: shut}
	res, err := RunTarget(cleanTarget(), "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shut.queries.Load() != 0 {
		t.Fatalf("filter queried %d times with checkpointing disabled, want 0", shut.queries.Load())
	}
	for i, s := range res.Sessions {
		if s.Schedules != cfg.Limit {
			t.Fatalf("session %d ran %d schedules, want the full limit %d", i, s.Schedules, cfg.Limit)
		}
	}
}
