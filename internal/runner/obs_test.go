package runner_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"surw/internal/obs"
	"surw/internal/replay"
	"surw/internal/runner"
	"surw/internal/sched"
	"surw/internal/sctbench"
)

// TestMetricsAttachmentIsObservationOnly holds the layer's core promise at
// the runner level: a batch with Metrics and FlightDir attached produces a
// Result byte-identical to the plain batch.
func TestMetricsAttachmentIsObservationOnly(t *testing.T) {
	tgt, ok := sctbench.ByName("CS/reorder_4")
	if !ok {
		t.Fatal("missing target")
	}
	for _, alg := range []string{"SURW", "URW", "RW", "PCT-3"} {
		cfg := runner.Config{Sessions: 3, Limit: 300, Seed: 11, Coverage: true}
		plain, err := runner.RunTarget(tgt, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Metrics = obs.NewMetrics()
		cfg.FlightDir = t.TempDir()
		cfg.Workers = 2
		observed, err := runner.RunTarget(tgt, alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Equal(observed) {
			t.Fatalf("%s: attaching metrics+flight changed the result", alg)
		}
		s := cfg.Metrics.Snapshot()
		if s.Schedules == 0 || s.Steps == 0 {
			t.Fatalf("%s: metrics saw nothing: %+v", alg, s)
		}
		if alg != "RW" && len(s.Algorithms) == 0 {
			t.Fatalf("%s: no per-algorithm histograms", alg)
		}
		if s.Utilization <= 0 || s.Utilization > 1.0001 {
			t.Fatalf("%s: utilization %v out of range", alg, s.Utilization)
		}
	}
}

// TestFlightRecorderEndToEnd drives the full loop the ci.sh smoke stage
// scripts: run a failing SCTBench target with the flight recorder on, load
// the dump, replay its recording through internal/replay, and demand the
// same bug with the same interleaving fingerprint.
func TestFlightRecorderEndToEnd(t *testing.T) {
	tgt, ok := sctbench.ByName("CS/reorder_4")
	if !ok {
		t.Fatal("missing target")
	}
	dir := t.TempDir()
	res, err := runner.RunTarget(tgt, "SURW", runner.Config{
		Sessions: 2, Limit: 2000, Seed: 1, StopAtFirstBug: true, FlightDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundAll() {
		t.Fatal("SURW did not find the reorder bug; flight recorder untestable")
	}
	for i, sess := range res.Sessions {
		if sess.Flight == "" {
			t.Fatalf("session %d found a bug but dumped no flight", i)
		}
		fr, err := obs.ReadFlight(sess.Flight)
		if err != nil {
			t.Fatal(err)
		}
		if !fr.Reproduced {
			t.Fatalf("session %d: capture re-run did not reproduce", i)
		}
		if fr.Session != i || fr.BugID != "reorder" {
			t.Fatalf("session %d: flight coordinates %+v", i, fr)
		}
		if len(fr.LastDecisions) == 0 || fr.Delta == "" {
			t.Fatalf("session %d: missing decisions or Δ description", i)
		}
		last := fr.LastDecisions[len(fr.LastDecisions)-1]
		if !strings.Contains(last.Annot, "intended=") {
			t.Fatalf("session %d: SURW annotation missing from decisions: %+v", i, last)
		}

		rec, err := replay.Parse(fr.Recording)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := replay.ReplayStrict(tgt.Prog, rec, sched.Options{Base: sched.Base{ProgSeed: fr.ProgSeed, MaxSteps: fr.MaxSteps}, TraceFilter: tgt.TraceFilter})
		if err != nil {
			t.Fatalf("session %d: replay diverged: %v", i, err)
		}
		if rp.BugID() != fr.BugID {
			t.Fatalf("session %d: replay bug %q, want %q", i, rp.BugID(), fr.BugID)
		}
		if got := hexHash(rp.InterleavingHash); got != fr.Fingerprint {
			t.Fatalf("session %d: replay fingerprint %s, want %s", i, got, fr.Fingerprint)
		}
		// Regression: flight records must carry the commutation-class
		// fingerprint alongside the order-sensitive one, and a bit-exact
		// replay must land in the recorded class.
		if fr.ClassFingerprint == "" {
			t.Fatalf("session %d: flight record missing class fingerprint", i)
		}
		if got := hexHash(rp.ClassHash); got != fr.ClassFingerprint {
			t.Fatalf("session %d: replay class fingerprint %s, want %s", i, got, fr.ClassFingerprint)
		}
	}
	// Dumps land under the directory with sanitized names.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(res.Sessions) {
		t.Fatalf("%d dumps for %d sessions", len(ents), len(res.Sessions))
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "flight_CS_reorder_4_") ||
			filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("unexpected dump name %q", e.Name())
		}
	}
}

func hexHash(h uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// TestFlightDisabledWritesNothing guards the default path: without
// FlightDir no files appear and Session.Flight stays empty.
func TestFlightDisabledWritesNothing(t *testing.T) {
	tgt, _ := sctbench.ByName("CS/reorder_4")
	res, err := runner.RunTarget(tgt, "RW", runner.Config{Sessions: 1, Limit: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sessions {
		if s.Flight != "" {
			t.Fatalf("flight %q dumped without FlightDir", s.Flight)
		}
	}
}
