// Package memfs implements the in-memory hierarchical filesystem backing
// the FTP case study: a minimal directory tree with mkdir/rmdir/list and a
// canonical serialization used as the behaviour fingerprint.
package memfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Well-known errors.
var (
	ErrExists   = errors.New("memfs: entry exists")
	ErrNotFound = errors.New("memfs: no such entry")
	ErrNotEmpty = errors.New("memfs: directory not empty")
	ErrBadPath  = errors.New("memfs: bad path")
	ErrIsDir    = errors.New("memfs: entry is a directory")
	ErrNotDir   = errors.New("memfs: entry is a file")
)

type node struct {
	children map[string]*node // nil for files
	data     []byte           // file content
}

func newNode() *node { return &node{children: make(map[string]*node)} }

func newFile(data []byte) *node { return &node{data: append([]byte(nil), data...)} }

func (n *node) isDir() bool { return n.children != nil }

// FS is a directory tree. It is a plain data structure with no internal
// locking: in the FTP model every operation runs inside one scheduled event,
// which provides the required mutual exclusion.
type FS struct {
	root *node
}

// New returns an empty filesystem containing only "/".
func New() *FS { return &FS{root: newNode()} }

// split normalizes a path into components; "" and "/" mean the root.
func split(path string) ([]string, error) {
	if path == "" || path == "/" {
		return nil, nil
	}
	path = strings.TrimPrefix(path, "/")
	path = strings.TrimSuffix(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, ErrBadPath
		}
	}
	return parts, nil
}

func (f *FS) lookup(parts []string) (*node, bool) {
	n := f.root
	for _, p := range parts {
		c, ok := n.children[p]
		if !ok {
			return nil, false
		}
		n = c
	}
	return n, true
}

// parentAndName resolves a path to its parent directory node and leaf name.
func (f *FS) parentAndName(path string) (*node, string, error) {
	parts, err := split(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrBadPath
	}
	parent, ok := f.lookup(parts[:len(parts)-1])
	if !ok || !parent.isDir() {
		return nil, "", ErrNotFound
	}
	return parent, parts[len(parts)-1], nil
}

// Mkdir creates a directory; its parent must exist and the entry must not.
func (f *FS) Mkdir(path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrExists
	}
	parent, name, err := f.parentAndName(path)
	if err != nil {
		return err
	}
	if _, dup := parent.children[name]; dup {
		return ErrExists
	}
	parent.children[name] = newNode()
	return nil
}

// WriteFile creates or overwrites a file (FTP STOR). The parent directory
// must exist; overwriting a directory is an error.
func (f *FS) WriteFile(path string, data []byte) error {
	parent, name, err := f.parentAndName(path)
	if err != nil {
		return err
	}
	if existing, ok := parent.children[name]; ok && existing.isDir() {
		return ErrIsDir
	}
	parent.children[name] = newFile(data)
	return nil
}

// ReadFile returns a file's content (FTP RETR).
func (f *FS) ReadFile(path string) ([]byte, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	n, ok := f.lookup(parts)
	if !ok {
		return nil, ErrNotFound
	}
	if n.isDir() {
		return nil, ErrIsDir
	}
	return append([]byte(nil), n.data...), nil
}

// Delete removes a file (FTP DELE); directories need Rmdir.
func (f *FS) Delete(path string) error {
	parent, name, err := f.parentAndName(path)
	if err != nil {
		return err
	}
	child, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if child.isDir() {
		return ErrIsDir
	}
	delete(parent.children, name)
	return nil
}

// IsDir reports whether the path names a directory (false for files and
// missing paths).
func (f *FS) IsDir(path string) bool {
	parts, err := split(path)
	if err != nil {
		return false
	}
	n, ok := f.lookup(parts)
	return ok && n.isDir()
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrBadPath // cannot remove the root
	}
	parent, ok := f.lookup(parts[:len(parts)-1])
	if !ok {
		return ErrNotFound
	}
	name := parts[len(parts)-1]
	child, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if !child.isDir() {
		return ErrNotDir
	}
	if len(child.children) != 0 {
		return ErrNotEmpty
	}
	delete(parent.children, name)
	return nil
}

// Exists reports whether the path names an entry (directory or file).
func (f *FS) Exists(path string) bool {
	parts, err := split(path)
	if err != nil {
		return false
	}
	_, ok := f.lookup(parts)
	return ok
}

// List returns the sorted names under a directory.
func (f *FS) List(path string) ([]string, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	n, ok := f.lookup(parts)
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Tree returns a canonical serialization of the whole tree — equal strings
// iff equal trees — used as the case study's behaviour fingerprint.
func (f *FS) Tree() string {
	var b strings.Builder
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := n.children[name]
			if child.isDir() {
				b.WriteString(prefix + name + "/")
				b.WriteByte('\n')
				walk(child, prefix+name+"/")
			} else {
				fmt.Fprintf(&b, "%s%s(%d)\n", prefix, name, len(child.data))
			}
		}
	}
	walk(f.root, "/")
	return b.String()
}

// Count returns the total number of entries (excluding the root).
func (f *FS) Count() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		total := len(n.children)
		for _, c := range n.children {
			total += walk(c)
		}
		return total
	}
	return walk(f.root)
}
