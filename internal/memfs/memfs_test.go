package memfs

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMkdirAndList(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := fs.Mkdir("/x/y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphan mkdir: %v", err)
	}
	ls, err := fs.List("/")
	if err != nil || len(ls) != 1 || ls[0] != "a" {
		t.Fatalf("list / = %v, %v", ls, err)
	}
	ls, _ = fs.List("/a")
	if len(ls) != 1 || ls[0] != "b" {
		t.Fatalf("list /a = %v", ls)
	}
	if _, err := fs.List("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("list missing: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	fs := New()
	fs.Mkdir("/a")
	fs.Mkdir("/a/b")
	if err := fs.Rmdir("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Rmdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double rmdir: %v", err)
	}
	if err := fs.Rmdir("/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("rmdir root: %v", err)
	}
	if fs.Count() != 0 {
		t.Fatalf("count = %d", fs.Count())
	}
}

func TestExists(t *testing.T) {
	fs := New()
	fs.Mkdir("/a")
	if !fs.Exists("/") || !fs.Exists("/a") || fs.Exists("/b") {
		t.Fatal("Exists wrong")
	}
	if fs.Exists("/../etc") {
		t.Fatal("bad path must not exist")
	}
}

func TestBadPaths(t *testing.T) {
	fs := New()
	for _, p := range []string{"/a/../b", "/./x", "//a//b"} {
		if err := fs.Mkdir(p); err == nil {
			t.Fatalf("mkdir %q should fail", p)
		}
	}
	// Trailing and leading slashes are tolerated.
	if err := fs.Mkdir("a/"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/a") {
		t.Fatal("normalized path missing")
	}
}

func TestTreeCanonical(t *testing.T) {
	a := New()
	a.Mkdir("/x")
	a.Mkdir("/y")
	a.Mkdir("/x/z")
	b := New()
	b.Mkdir("/y")
	b.Mkdir("/x")
	b.Mkdir("/x/z")
	if a.Tree() != b.Tree() {
		t.Fatal("creation order leaked into Tree()")
	}
	if !strings.Contains(a.Tree(), "/x/z/") {
		t.Fatalf("tree missing nested entry:\n%s", a.Tree())
	}
	c := New()
	if c.Tree() != "" {
		t.Fatalf("empty tree = %q", c.Tree())
	}
}

func TestTreeDistinguishesTrees(t *testing.T) {
	a := New()
	a.Mkdir("/x")
	b := New()
	b.Mkdir("/y")
	if a.Tree() == b.Tree() {
		t.Fatal("distinct trees share a fingerprint")
	}
}

// Property: a random interleaved sequence of mkdir/rmdir keeps Count equal
// to successes(mkdir) - successes(rmdir) and Tree/List stay consistent.
func TestCountInvariant(t *testing.T) {
	f := func(seed int64, ops []bool) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		made, removed := 0, 0
		names := []string{"/a", "/b", "/a/c", "/b/d", "/e"}
		for _, isMk := range ops {
			p := names[rng.Intn(len(names))]
			if isMk {
				if fs.Mkdir(p) == nil {
					made++
				}
			} else {
				if fs.Rmdir(p) == nil {
					removed++
				}
			}
		}
		return fs.Count() == made-removed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitRoot(t *testing.T) {
	for _, p := range []string{"", "/", "//"} {
		if parts, err := split(p); err != nil || len(parts) != 0 {
			t.Fatalf("split(%q) = %v, %v", p, parts, err)
		}
	}
}

func TestFiles(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a.txt")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// Overwrite updates the content.
	if err := fs.WriteFile("/a.txt", []byte("world!")); err != nil {
		t.Fatal(err)
	}
	if data, _ = fs.ReadFile("/a.txt"); string(data) != "world!" {
		t.Fatalf("overwrite lost: %q", data)
	}
	// Files in subdirectories need existing parents.
	if err := fs.WriteFile("/sub/b.txt", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphan file: %v", err)
	}
	fs.Mkdir("/sub")
	if err := fs.WriteFile("/sub/b.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if fs.Count() != 3 {
		t.Fatalf("count = %d", fs.Count())
	}
}

func TestFileDirConfusion(t *testing.T) {
	fs := New()
	fs.Mkdir("/d")
	fs.WriteFile("/f", []byte("x"))
	if err := fs.WriteFile("/d", nil); !errors.Is(err, ErrIsDir) {
		t.Fatalf("overwrite dir: %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read dir: %v", err)
	}
	if err := fs.Rmdir("/f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("rmdir file: %v", err)
	}
	if err := fs.Delete("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("delete dir: %v", err)
	}
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if !fs.IsDir("/d") || fs.IsDir("/nope") {
		t.Fatal("IsDir wrong")
	}
	// Paths through files do not resolve.
	fs.WriteFile("/g", []byte("x"))
	if fs.Exists("/g/sub") {
		t.Fatal("path through a file resolved")
	}
}

func TestTreeWithFiles(t *testing.T) {
	fs := New()
	fs.Mkdir("/d")
	fs.WriteFile("/d/a.txt", []byte("12345"))
	tree := fs.Tree()
	if !strings.Contains(tree, "/d/a.txt(5)") {
		t.Fatalf("tree missing file entry:\n%s", tree)
	}
	ls, _ := fs.List("/d")
	if len(ls) != 1 || ls[0] != "a.txt" {
		t.Fatalf("list = %v", ls)
	}
}

func TestReadFileIsolation(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("abc"))
	data, _ := fs.ReadFile("/a")
	data[0] = 'X'
	if again, _ := fs.ReadFile("/a"); string(again) != "abc" {
		t.Fatal("ReadFile aliases internal storage")
	}
}
