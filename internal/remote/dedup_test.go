package remote

// Tests for the schedule-equivalence dedup layer: the counting-bloom
// seen-class filter, the /v1/classes query endpoint, the coordinator's
// fleet-wide duplicate gauges (including their rebuild from a resumed
// store), and the capstone — dedup-aware aggregates of a distributed
// coverage campaign staying byte-identical to a local run's.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"surw/internal/campaign"
	"surw/internal/experiments"
	"surw/internal/runner"
)

func TestClassFilterAddSaturate(t *testing.T) {
	f := NewClassFilter(1<<10, 3)
	if f.Saturated(42) {
		t.Fatal("empty filter claims saturation")
	}
	if !f.Add(42) {
		t.Fatal("first Add not novel")
	}
	if f.Add(42) {
		t.Fatal("second Add still novel")
	}
	if f.Saturated(42) {
		t.Fatal("saturated below threshold")
	}
	f.Add(42)
	if !f.Saturated(42) {
		t.Fatal("not saturated at threshold 3")
	}
	if f.Count(42) != 3 {
		t.Fatalf("Count = %d, want 3", f.Count(42))
	}
	// A distinct class is unaffected (no collision in a near-empty filter).
	if f.Saturated(43) {
		t.Fatal("unrelated class saturated")
	}
	obs, distinct := f.Stats()
	if obs != 3 || distinct != 1 {
		t.Fatalf("Stats = (%d, %d), want (3, 1)", obs, distinct)
	}
}

func TestClassFilterManyDistinct(t *testing.T) {
	f := NewClassFilter(1<<16, DefaultClassThreshold)
	for i := uint64(0); i < 1000; i++ {
		if !f.Add(i*0x9e3779b97f4a7c15 + 1) {
			t.Fatalf("class %d not novel on first Add", i)
		}
	}
	obs, distinct := f.Stats()
	if obs != 1000 || distinct != 1000 {
		t.Fatalf("Stats = (%d, %d), want (1000, 1000)", obs, distinct)
	}
}

// covRecordsFor fabricates records for a synthetic lease where every
// session saw the same three schedules: class 0xabc twice and a
// session-unique class once.
func covRecordsFor(l *Lease) []campaign.Record {
	recs := make([]campaign.Record, len(l.Sessions))
	for i, s := range l.Sessions {
		k := runner.SessionKey{Target: l.Target, Algorithm: l.Algorithm, Limit: l.Limit, Seed: l.Seed, Session: s}
		recs[i] = campaign.NewRecord(k, &runner.Session{
			FirstBug:  -1,
			Schedules: 3,
			Bugs:      map[string]int{},
			Cov: &runner.Coverage{
				Interleavings: map[uint64]int{uint64(1000 + s): 3},
				Classes:       map[uint64]int{0xabc: 2, uint64(1 + s): 1},
				Behaviors:     map[string]int{"b": 3},
				DupSchedules:  1,
			},
		})
	}
	return recs
}

func TestClassQueryEndpointAndGauges(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(3), CoordinatorOptions{BatchSize: 8, ClassThreshold: 2})
	srv := httptest.NewServer(c)
	defer srv.Close()

	// Malformed fingerprints are a client bug, not a cache miss.
	var q ClassQueryResponse
	if code := postJSON(t, srv.URL+PathClasses, ClassQueryRequest{Worker: "a", Classes: []string{"xyz"}}, nil); code != 400 {
		t.Fatalf("malformed fingerprint: status %d, want 400", code)
	}

	// Before any results: nothing is saturated.
	req := ClassQueryRequest{Worker: "a", Classes: []string{fmt.Sprintf("%016x", uint64(0xabc))}}
	if code := postJSON(t, srv.URL+PathClasses, req, &q); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if len(q.Saturated) != 1 || q.Saturated[0] {
		t.Fatalf("empty-filter query = %+v, want [false]", q)
	}

	// Submit three sessions; class 0xabc is observed once per session
	// (fleet-wide occurrences, not schedule counts), crossing threshold 2.
	la := leaseFor(t, srv.URL, "a")
	if code := postJSON(t, srv.URL+PathResult,
		ResultRequest{Worker: "a", LeaseID: la.Lease.ID, Records: covRecordsFor(la.Lease)}, nil); code != 200 {
		t.Fatalf("submit: status %d", code)
	}
	if code := postJSON(t, srv.URL+PathClasses, req, &q); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if len(q.Saturated) != 1 || !q.Saturated[0] {
		t.Fatalf("post-submit query = %+v, want [true]", q)
	}

	// Gauges: 9 schedules total, 4 distinct classes (0xabc, 1, 2, 3) →
	// duplicate rate 5/9; two well-formed fingerprints queried so far
	// (the malformed request never reached the counter).
	rs := c.Status()
	if rs.ClassObservations != 6 || rs.DistinctClasses != 4 {
		t.Fatalf("filter gauges: %+v, want 6 observations over 4 classes", rs)
	}
	if want := 5.0 / 9.0; rs.DuplicateRate != want {
		t.Fatalf("DuplicateRate = %v, want %v", rs.DuplicateRate, want)
	}
	if rs.ClassQueries != 2 || rs.ClassesSaturated != 1 {
		t.Fatalf("query gauges: %+v, want 2 queries, 1 saturated", rs)
	}
}

func TestCoordinatorRebuildsFilterFromStore(t *testing.T) {
	st := newMemStore()
	plan := syntheticPlan(3)
	c1 := NewCoordinator(st, plan, CoordinatorOptions{BatchSize: 8, ClassThreshold: 2})
	srv1 := httptest.NewServer(c1)
	la := leaseFor(t, srv1.URL, "a")
	if code := postJSON(t, srv1.URL+PathResult,
		ResultRequest{Worker: "a", LeaseID: la.Lease.ID, Records: covRecordsFor(la.Lease)}, nil); code != 200 {
		t.Fatalf("submit: status %d", code)
	}
	srv1.Close()

	// A restarted coordinator over the same store rebuilds the seen-class
	// filter and duplicate tallies from the stored records.
	c2 := NewCoordinator(st, plan, CoordinatorOptions{BatchSize: 8, ClassThreshold: 2})
	r1, r2 := c1.Status(), c2.Status()
	if r2.ClassObservations != r1.ClassObservations || r2.DistinctClasses != r1.DistinctClasses ||
		r2.DuplicateRate != r1.DuplicateRate {
		t.Fatalf("restart lost dedup state: before %+v, after %+v", r1, r2)
	}
	srv2 := httptest.NewServer(c2)
	defer srv2.Close()
	var q ClassQueryResponse
	req := ClassQueryRequest{Worker: "a", Classes: []string{fmt.Sprintf("%016x", uint64(0xabc))}}
	if code := postJSON(t, srv2.URL+PathClasses, req, &q); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if len(q.Saturated) != 1 || !q.Saturated[0] {
		t.Fatalf("restarted coordinator forgot saturation: %+v", q)
	}
}

func TestCoordPrefixFilterFailsOpen(t *testing.T) {
	// No server behind the URL: the filter must answer "keep going".
	w := &Worker{Coordinator: "http://127.0.0.1:1", Name: "w"}
	p := &coordPrefixFilter{w: w, ctx: context.Background()}
	if p.SaturatedPrefix(0xabc) {
		t.Fatal("unreachable coordinator reported saturation")
	}
}

// covScale is sctScale plus coverage: two table cells and the bitshift
// probe, whose tiny C(8,4)=70-class space guarantees duplicates at a
// 200-schedule budget.
func covScale() experiments.Scale {
	sc := sctScale()
	sc.SCTTargets = append(sc.SCTTargets, "Fig1/bitshift_4")
	sc.SCTCoverage = true
	return sc
}

// TestDistributedDedupAggregatesAreByteIdentical extends the capstone to
// the dedup layer: with coverage on, the distributed campaign's
// aggregates — the Dedup block (distinct classes, duplicate rate,
// Good-Turing/Chao1 estimators) included — are byte-identical to a
// single-process run's, and the duplicate rate is real (> 0).
func TestDistributedDedupAggregatesAreByteIdentical(t *testing.T) {
	sc := covScale()

	localStore, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer localStore.Close()
	scLocal := sc
	scLocal.Store = localStore
	experiments.SCTBench(scLocal, nil)
	var localAgg bytes.Buffer
	if err := campaign.WriteAggregates(&localAgg, localStore); err != nil {
		t.Fatal(err)
	}

	distStore, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer distStore.Close()
	c := NewCoordinator(distStore, experiments.SCTPlan(sc), CoordinatorOptions{BatchSize: 2})
	srv := httptest.NewServer(c)
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = newTestWorker(fmt.Sprintf("w%d", i), srv.URL).Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !c.Done() {
		t.Fatal("coordinator not done")
	}
	var distAgg bytes.Buffer
	if err := campaign.WriteAggregates(&distAgg, distStore); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localAgg.Bytes(), distAgg.Bytes()) {
		t.Fatalf("distributed dedup aggregates diverged from local run:\nlocal %d bytes, distributed %d bytes",
			localAgg.Len(), distAgg.Len())
	}

	// The bitshift cells must show a real duplicate rate and the exact
	// ground-truth class count.
	agg := distStore.Aggregate()
	found := false
	for _, cell := range agg.Cells {
		if cell.Target != "Fig1/bitshift_4" || cell.Coverage == nil || cell.Coverage.Dedup == nil {
			continue
		}
		found = true
		dd := cell.Coverage.Dedup
		if dd.DistinctClasses == 0 || dd.DistinctClasses > 70 {
			t.Fatalf("%s/%s: %d distinct classes, want 1..70", cell.Target, cell.Algorithm, dd.DistinctClasses)
		}
		if dd.DuplicateRate <= 0 {
			t.Fatalf("%s/%s: duplicate rate %v, want > 0 at a 200-schedule budget over 70 classes",
				cell.Target, cell.Algorithm, dd.DuplicateRate)
		}
	}
	if !found {
		t.Fatal("no bitshift dedup aggregate found")
	}
	if rs := c.Status(); rs.DistinctClasses == 0 || rs.DuplicateRate <= 0 {
		t.Fatalf("coordinator gauges stayed empty: %+v", rs)
	}
}
