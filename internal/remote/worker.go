package remote

// The worker loop: lease, execute, submit, repeat. Workers hold no
// campaign state at all — every batch is fully described by its lease and
// executed through runner.RunSession, the same engine a local batch uses,
// so a worker's records are bit-identical to the sessions a local run
// would have produced. Network failures never corrupt anything: polling
// and submission retry with exponential backoff and jitter (riding out
// coordinator restarts), and an abandoned batch simply expires
// server-side and is re-leased.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"surw/internal/campaign"
	"surw/internal/runner"
	"surw/internal/workpool"
)

// Worker executes leases from one coordinator. Configure the exported
// fields, then call Run.
type Worker struct {
	// Coordinator is the base URL, e.g. "http://10.0.0.1:7071".
	Coordinator string
	// Name identifies this worker in leases and dashboards.
	Name string
	// Resolve maps a lease's target name to the local target registry
	// (cmd/surwworker wires sctbench.ByName). An unresolvable target is a
	// deployment error — a version-skewed worker — and aborts the worker
	// rather than silently stalling the campaign.
	Resolve func(name string) (runner.Target, bool)
	// Workers is the per-batch session parallelism (degree of the local
	// fan-out); 0 means sequential.
	Workers int
	// Client is the HTTP client; nil uses a 30s-timeout default.
	Client *http.Client
	// BackoffMin/BackoffMax bound the exponential retry backoff.
	// Defaults 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// UsePrefixFilter opts leased sessions into prefix-class early abandon:
	// after a session captures its forced prefix, the worker asks the
	// coordinator's seen-class filter (/v1/classes) whether the prefix's
	// commutation class is saturated fleet-wide and, if so, stops the
	// session without spending the rest of its schedule budget. This trades
	// the byte-identity guarantee for throughput (abandoned sessions record
	// fewer schedules), so it is off by default and never enabled by the
	// byte-identity smokes. Queries fail open: any transport error means
	// "not saturated".
	UsePrefixFilter bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)

	rng *rand.Rand
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	w.Client = &http.Client{Timeout: 30 * time.Second}
	return w.Client
}

func (w *Worker) backoffBounds() (time.Duration, time.Duration) {
	lo, hi := w.BackoffMin, w.BackoffMax
	if lo <= 0 {
		lo = 100 * time.Millisecond
	}
	if hi <= 0 {
		hi = 5 * time.Second
	}
	return lo, hi
}

// jittered spreads sleeps over [d/2, d) so a fleet of workers retrying
// against a restarted coordinator doesn't stampede it in lockstep.
func (w *Worker) jittered(d time.Duration) time.Duration {
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)))
}

// Run executes leases until the coordinator reports the campaign done or
// ctx is cancelled. Transient errors (network, coordinator restarts) are
// retried forever with backoff; a nil return means the plan is complete.
func (w *Worker) Run(ctx context.Context) error {
	lo, hi := w.backoffBounds()
	backoff := lo
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		if err := w.post(ctx, PathLease, LeaseRequest{Worker: w.Name}, &resp); err != nil {
			w.logf("lease poll failed (%v), backing off %v", err, backoff)
			if !sleepCtx(ctx, w.jittered(backoff)) {
				return ctx.Err()
			}
			backoff = minDur(backoff*2, hi)
			continue
		}
		backoff = lo
		switch {
		case resp.Done:
			w.logf("campaign complete")
			return nil
		case resp.Lease == nil:
			// Everything is leased out; poll at the coordinator's pace.
			wait := time.Duration(resp.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = lo
			}
			if !sleepCtx(ctx, w.jittered(wait)) {
				return ctx.Err()
			}
		default:
			if err := w.execute(ctx, resp.Lease); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
		}
	}
}

// execute runs one lease's sessions and submits the records.
func (w *Worker) execute(ctx context.Context, l *Lease) error {
	tgt, ok := w.Resolve(l.Target)
	if !ok {
		return fmt.Errorf("remote: lease %s names unknown target %q (worker/coordinator version skew?)", l.ID, l.Target)
	}
	cfg := runner.Config{
		Limit:          l.Limit,
		Seed:           l.Seed,
		StopAtFirstBug: l.StopAtFirstBug,
		Coverage:       l.Coverage,
		CoverageEvery:  l.CoverageEvery,
		ProfileRuns:    l.ProfileRuns,
	}
	if w.UsePrefixFilter {
		cfg.PrefixFilter = &coordPrefixFilter{w: w, ctx: ctx}
	}

	// Heartbeat at a third of the TTL while the batch executes. A 410
	// means the lease is gone (expired or the coordinator restarted); we
	// stop heartbeating but finish and submit anyway — submission is
	// idempotent, and with deterministic sessions finished work is never
	// wrong, at worst redundant.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, l)

	start := time.Now()
	w.logf("lease %s: %s/%s sessions %v", l.ID, l.Target, l.Algorithm, l.Sessions)
	records := make([]campaign.Record, len(l.Sessions))
	_, err := workpool.Map(w.Workers, len(l.Sessions), func(i int) (struct{}, error) {
		session := l.Sessions[i]
		sess, err := runner.RunSession(ctx, tgt, l.Algorithm, cfg, session)
		if err != nil {
			return struct{}{}, err
		}
		records[i] = campaign.NewRecord(runner.KeyFor(tgt, l.Algorithm, cfg, session), sess)
		return struct{}{}, nil
	})
	stopHB()
	if err != nil {
		return err
	}
	return w.submit(ctx, ResultRequest{
		Worker:     w.Name,
		LeaseID:    l.ID,
		BusyMillis: time.Since(start).Milliseconds(),
		Records:    records,
	})
}

func (w *Worker) heartbeatLoop(ctx context.Context, l *Lease) {
	ttl := time.Duration(l.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			err := w.post(ctx, PathHeartbeat, HeartbeatRequest{Worker: w.Name, LeaseID: l.ID}, nil)
			if err == errLeaseGone {
				w.logf("lease %s lost; finishing batch anyway (submission is idempotent)", l.ID)
				return
			}
			// Other errors (coordinator briefly down) are ignored: the
			// next tick retries, and worst case the lease expires and the
			// batch is redundantly re-run elsewhere.
		}
	}
}

// submit pushes the batch's records, retrying forever with backoff — the
// records are the valuable half of the protocol, and the coordinator may
// be mid-restart. Duplicate drops are success.
func (w *Worker) submit(ctx context.Context, req ResultRequest) error {
	lo, hi := w.backoffBounds()
	backoff := lo
	for {
		var resp ResultResponse
		err := w.post(ctx, PathResult, req, &resp)
		if err == nil {
			w.logf("lease %s: %d accepted, %d duplicate", req.LeaseID, resp.Accepted, resp.Duplicates)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.logf("submit %s failed (%v), backing off %v", req.LeaseID, err, backoff)
		if !sleepCtx(ctx, w.jittered(backoff)) {
			return ctx.Err()
		}
		backoff = minDur(backoff*2, hi)
	}
}

// coordPrefixFilter adapts the coordinator's /v1/classes endpoint to
// runner.PrefixClassFilter. Safe for concurrent use (post is stateless
// once the worker's HTTP client exists, and a worker always leases before
// it executes); fails open on every error so a flaky coordinator can slow
// dedup down but never stall or starve a session.
type coordPrefixFilter struct {
	w   *Worker
	ctx context.Context
}

func (p *coordPrefixFilter) SaturatedPrefix(class uint64) bool {
	req := ClassQueryRequest{
		Worker:  p.w.Name,
		Classes: []string{fmt.Sprintf("%016x", class)},
	}
	var resp ClassQueryResponse
	if err := p.w.post(p.ctx, PathClasses, req, &resp); err != nil || len(resp.Saturated) != 1 {
		return false
	}
	return resp.Saturated[0]
}

// errLeaseGone distinguishes 410 (stop heartbeating, keep working) from
// transport errors (retry).
var errLeaseGone = fmt.Errorf("remote: lease gone")

// post sends one JSON request; out may be nil when only the status
// matters. 4xx other than 410 is returned verbatim — retrying a request
// the coordinator rejects as malformed cannot succeed.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return errLeaseGone
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("remote: %s: %s (%s)", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// sleepCtx sleeps d or until ctx is done; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
