package remote

// The worker loop: lease, execute, submit, repeat. Workers hold no
// campaign state at all — every batch is fully described by its lease and
// executed through runner.RunSession, the same engine a local batch uses,
// so a worker's records are bit-identical to the sessions a local run
// would have produced. Network failures never corrupt anything: polling
// and submission retry with exponential backoff and jitter (riding out
// coordinator restarts), and an abandoned batch simply expires
// server-side and is re-leased.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"surw/internal/atlas"
	"surw/internal/campaign"
	"surw/internal/obs"
	"surw/internal/runner"
	"surw/internal/workpool"
)

// Worker executes leases from one coordinator. Configure the exported
// fields, then call Run.
type Worker struct {
	// Coordinator is the base URL, e.g. "http://10.0.0.1:7071".
	Coordinator string
	// Name identifies this worker in leases and dashboards.
	Name string
	// Resolve maps a lease's target name to the local target registry
	// (cmd/surwworker wires sctbench.ByName). An unresolvable target is a
	// deployment error — a version-skewed worker — and aborts the worker
	// rather than silently stalling the campaign.
	Resolve func(name string) (runner.Target, bool)
	// Workers is the per-batch session parallelism (degree of the local
	// fan-out); 0 means sequential.
	Workers int
	// Client is the HTTP client; nil uses a 30s-timeout default.
	Client *http.Client
	// BackoffMin/BackoffMax bound the exponential retry backoff.
	// Defaults 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// UsePrefixFilter opts leased sessions into prefix-class early abandon:
	// after a session captures its forced prefix, the worker asks the
	// coordinator's seen-class filter (/v1/classes) whether the prefix's
	// commutation class is saturated fleet-wide and, if so, stops the
	// session without spending the rest of its schedule budget. This trades
	// the byte-identity guarantee for throughput (abandoned sessions record
	// fewer schedules), so it is off by default and never enabled by the
	// byte-identity smokes. Queries fail open: any transport error means
	// "not saturated".
	UsePrefixFilter bool
	// Metrics, when non-nil, is attached to every leased batch's
	// runner.Config, aggregating schedule counters and decision histograms
	// for the worker's own -metrics page. Results stay byte-identical, but
	// the attached tracer disables the batched/checkpoint fast path, so
	// this is opt-in (cmd/surwworker -metrics).
	Metrics *obs.Metrics
	// Atlas, when non-nil, accumulates schedule-space cartography and
	// uniformity drift over every leased session this worker executes
	// (cmd/surwworker -atlas). Unlike Metrics it keeps the fast path —
	// lock-free atomic counters off the decision hot loop — and its
	// cumulative snapshot ships with every result submission so the
	// coordinator can assemble the fleet atlas. Never perturbs a schedule.
	Atlas *atlas.Atlas
	// Watchdog, when > 0, arms a per-lease self-watchdog: if no session of
	// the lease completes for this long, the worker logs the stall and
	// dumps a goroutine profile to stderr — the "heartbeating but not
	// finishing" failure the coordinator's aging-lease rule sees only from
	// the outside. Off by default.
	Watchdog time.Duration
	// RetainSpans keeps a copy of every span the worker ships, so
	// cmd/surwworker -trace can write them at exit. Off by default — spans
	// normally leave with their ResultRequest and are dropped.
	RetainSpans bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)

	rng *rand.Rand

	// lat holds the worker's always-on latency histograms (lease_rpc,
	// session, checkpoint_fork, submit); its cumulative snapshot ships with
	// every result submission. Lock-free observes; see obs.LatencySet.
	lat obs.LatencySet
	// spans is created lazily on the first traced lease (nil records
	// nothing, costing untraced fleets zero allocations).
	spans *obs.SpanLog

	retainMu sync.Mutex
	retained []obs.Span

	// stalled is the watchdog action; nil means the default (log + dump a
	// goroutine profile to stderr). Overridable for tests.
	stalled func(leaseID string, age time.Duration)
}

// Latencies exposes the worker's cumulative latency snapshot.
func (w *Worker) Latencies() map[string]obs.HistogramWire { return w.lat.Wire() }

// Spans returns the spans retained under RetainSpans, in ship order.
func (w *Worker) Spans() []obs.Span {
	w.retainMu.Lock()
	defer w.retainMu.Unlock()
	return append([]obs.Span(nil), w.retained...)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	w.Client = &http.Client{Timeout: 30 * time.Second}
	return w.Client
}

func (w *Worker) backoffBounds() (time.Duration, time.Duration) {
	lo, hi := w.BackoffMin, w.BackoffMax
	if lo <= 0 {
		lo = 100 * time.Millisecond
	}
	if hi <= 0 {
		hi = 5 * time.Second
	}
	return lo, hi
}

// jittered spreads sleeps over [d/2, d) so a fleet of workers retrying
// against a restarted coordinator doesn't stampede it in lockstep.
func (w *Worker) jittered(d time.Duration) time.Duration {
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)))
}

// Run executes leases until the coordinator reports the campaign done or
// ctx is cancelled. Transient errors (network, coordinator restarts) are
// retried forever with backoff; a nil return means the plan is complete.
func (w *Worker) Run(ctx context.Context) error {
	lo, hi := w.backoffBounds()
	backoff := lo
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		leaseT0 := time.Now()
		err := w.post(ctx, PathLease, LeaseRequest{Worker: w.Name}, &resp)
		w.lat.Observe("lease_rpc", time.Since(leaseT0))
		if err != nil {
			w.logf("lease poll failed (%v), backing off %v", err, backoff)
			if !sleepCtx(ctx, w.jittered(backoff)) {
				return ctx.Err()
			}
			backoff = minDur(backoff*2, hi)
			continue
		}
		backoff = lo
		switch {
		case resp.Done:
			w.logf("campaign complete")
			return nil
		case resp.Lease == nil:
			// Everything is leased out; poll at the coordinator's pace.
			wait := time.Duration(resp.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = lo
			}
			if !sleepCtx(ctx, w.jittered(wait)) {
				return ctx.Err()
			}
		default:
			if err := w.execute(ctx, resp.Lease); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
		}
	}
}

// execute runs one lease's sessions and submits the records.
func (w *Worker) execute(ctx context.Context, l *Lease) error {
	tgt, ok := w.Resolve(l.Target)
	if !ok {
		return fmt.Errorf("remote: lease %s names unknown target %q (worker/coordinator version skew?)", l.ID, l.Target)
	}
	cfg := runner.Config{
		Limit:          l.Limit,
		Seed:           l.Seed,
		StopAtFirstBug: l.StopAtFirstBug,
		Coverage:       l.Coverage,
		CoverageEvery:  l.CoverageEvery,
		ProfileRuns:    l.ProfileRuns,
		Metrics:        w.Metrics,
		Atlas:          w.Atlas,
	}
	if w.UsePrefixFilter {
		cfg.PrefixFilter = &coordPrefixFilter{w: w, ctx: ctx}
	}

	// Tracing: a lease carrying a traceparent gets an "execute" span on
	// this worker's track, with one pre-minted span ID per session so the
	// prefix-replay spans (reported through cfg.Phase mid-session) can
	// parent under session spans recorded after the fact. An untraced
	// lease pays one string compare — spans stays nil until the fleet
	// actually traces.
	var exec obs.OpenSpan
	var sessIDs []obs.SpanID
	sessionIdx := make(map[int]int, len(l.Sessions))
	for i, s := range l.Sessions {
		sessionIdx[s] = i
	}
	if l.Traceparent != "" {
		if parent, err := obs.ParseTraceparent(l.Traceparent); err == nil {
			if w.spans == nil {
				w.spans = obs.NewSpanLog(w.Name)
			}
			exec = w.spans.Start(parent, "execute")
			exec.Span.Lease = l.ID
			exec.Span.Target = l.Target
			exec.Span.Alg = l.Algorithm
			exec.Span.N = len(l.Sessions)
			sessIDs = make([]obs.SpanID, len(l.Sessions))
			for i := range sessIDs {
				sessIDs[i] = w.spans.NewSpanID()
			}
		} else {
			w.logf("lease %s: bad traceparent %q: %v", l.ID, l.Traceparent, err)
		}
	}
	// The phase hook feeds the checkpoint_fork histogram always (it is the
	// only phase signal RunSession exposes) and, when traced, the
	// prefix-replay spans. Consulted once per session, between schedules —
	// it cannot perturb results.
	cfg.Phase = func(session int, phase string, start time.Time, d time.Duration) {
		if phase != "prefix" {
			return
		}
		w.lat.Observe("checkpoint_fork", d)
		if exec.Active() {
			if i, ok := sessionIdx[session]; ok {
				w.spans.Add(obs.Span{
					Trace: exec.Span.Trace, Parent: sessIDs[i], Name: "prefix-replay",
					Start: start.UnixNano(), Dur: int64(d), Session: session + 1,
				})
			}
		}
	}

	// Heartbeat at a third of the TTL while the batch executes. A 410
	// means the lease is gone (expired or the coordinator restarted); we
	// stop heartbeating but finish and submit anyway — submission is
	// idempotent, and with deterministic sessions finished work is never
	// wrong, at worst redundant.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, l, exec)

	// Self-watchdog: progress is "a session of this lease completed"; a
	// lease making none for the deadline gets its stall dumped. This is
	// the worker-side mirror of the coordinator's aging-lease rule — the
	// coordinator can only say "stalled", the watchdog says where.
	var progress atomic.Int64
	if w.Watchdog > 0 {
		wdCtx, stopWD := context.WithCancel(ctx)
		defer stopWD()
		stalled := w.stalled
		if stalled == nil {
			stalled = func(leaseID string, age time.Duration) {
				w.logf("WATCHDOG lease %s: no session completed for %v; dumping goroutine profile", leaseID, age.Round(time.Millisecond))
				if p := pprof.Lookup("goroutine"); p != nil {
					_ = p.WriteTo(os.Stderr, 1)
				}
			}
		}
		go watchLease(wdCtx, w.Watchdog, &progress, func(age time.Duration) { stalled(l.ID, age) })
	}

	start := time.Now()
	w.logf("lease %s: %s/%s sessions %v", l.ID, l.Target, l.Algorithm, l.Sessions)
	records := make([]campaign.Record, len(l.Sessions))
	_, err := workpool.Map(w.Workers, len(l.Sessions), func(i int) (struct{}, error) {
		session := l.Sessions[i]
		t0 := time.Now()
		sess, err := runner.RunSession(ctx, tgt, l.Algorithm, cfg, session)
		if err != nil {
			return struct{}{}, err
		}
		d := time.Since(t0)
		w.lat.Observe("session", d)
		progress.Add(1)
		if exec.Active() {
			// Recorded retroactively under the pre-minted ID so the
			// prefix-replay span already points at it.
			w.spans.Add(obs.Span{
				Trace: exec.Span.Trace, Parent: exec.Span.ID, ID: sessIDs[i],
				Name: "session", Start: t0.UnixNano(), Dur: int64(d),
				Session: session + 1,
			})
		}
		records[i] = campaign.NewRecord(runner.KeyFor(tgt, l.Algorithm, cfg, session), sess)
		return struct{}{}, nil
	})
	stopHB()
	if err != nil {
		return err
	}
	req := ResultRequest{
		Worker:     w.Name,
		LeaseID:    l.ID,
		BusyMillis: time.Since(start).Milliseconds(),
		Records:    records,
		Latencies:  w.lat.Wire(),
	}
	if w.Atlas != nil {
		req.Atlas = w.Atlas.Snapshot().Cells
	}
	if exec.Active() {
		exec.End()
		req.Spans = w.spans.Drain()
		if w.RetainSpans {
			w.retainMu.Lock()
			w.retained = append(w.retained, req.Spans...)
			w.retainMu.Unlock()
		}
	}
	return w.submit(ctx, req, exec)
}

// watchLease fires stalled whenever progress makes no forward motion for a
// full deadline. It checks at deadline/4 granularity and re-arms after
// firing, so a lease stalled for N deadlines reports ~N times, not
// continuously. Factored out of execute for testability.
func watchLease(ctx context.Context, deadline time.Duration, progress *atomic.Int64, stalled func(age time.Duration)) {
	tick := deadline / 4
	if tick <= 0 {
		tick = deadline
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if cur := progress.Load(); cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if age := time.Since(lastChange); age >= deadline {
				stalled(age)
				lastChange = time.Now() // re-arm
			}
		}
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context, l *Lease, exec obs.OpenSpan) {
	ttl := time.Duration(l.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			err := w.postTraced(ctx, PathHeartbeat, spanHeader(exec), HeartbeatRequest{Worker: w.Name, LeaseID: l.ID}, nil)
			if err == errLeaseGone {
				w.logf("lease %s lost; finishing batch anyway (submission is idempotent)", l.ID)
				return
			}
			// Other errors (coordinator briefly down) are ignored: the
			// next tick retries, and worst case the lease expires and the
			// batch is redundantly re-run elsewhere.
		}
	}
}

// submit pushes the batch's records, retrying forever with backoff — the
// records are the valuable half of the protocol, and the coordinator may
// be mid-restart. Duplicate drops are success.
func (w *Worker) submit(ctx context.Context, req ResultRequest, exec obs.OpenSpan) error {
	lo, hi := w.backoffBounds()
	backoff := lo
	for {
		var resp ResultResponse
		t0 := time.Now()
		err := w.postTraced(ctx, PathResult, spanHeader(exec), req, &resp)
		if err == nil {
			w.lat.Observe("submit", time.Since(t0))
			w.logf("lease %s: %d accepted, %d duplicate", req.LeaseID, resp.Accepted, resp.Duplicates)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.logf("submit %s failed (%v), backing off %v", req.LeaseID, err, backoff)
		if !sleepCtx(ctx, w.jittered(backoff)) {
			return ctx.Err()
		}
		backoff = minDur(backoff*2, hi)
	}
}

// coordPrefixFilter adapts the coordinator's /v1/classes endpoint to
// runner.PrefixClassFilter. Safe for concurrent use (post is stateless
// once the worker's HTTP client exists, and a worker always leases before
// it executes); fails open on every error so a flaky coordinator can slow
// dedup down but never stall or starve a session.
type coordPrefixFilter struct {
	w   *Worker
	ctx context.Context
}

func (p *coordPrefixFilter) SaturatedPrefix(class uint64) bool {
	req := ClassQueryRequest{
		Worker:  p.w.Name,
		Classes: []string{fmt.Sprintf("%016x", class)},
	}
	var resp ClassQueryResponse
	if err := p.w.post(p.ctx, PathClasses, req, &resp); err != nil || len(resp.Saturated) != 1 {
		return false
	}
	return resp.Saturated[0]
}

// errLeaseGone distinguishes 410 (stop heartbeating, keep working) from
// transport errors (retry).
var errLeaseGone = fmt.Errorf("remote: lease gone")

// spanHeader renders a span's traceparent header value, "" when inert.
func spanHeader(o obs.OpenSpan) string {
	if !o.Active() {
		return ""
	}
	return o.Context().Traceparent()
}

// post sends one JSON request; out may be nil when only the status
// matters. 4xx other than 410 is returned verbatim — retrying a request
// the coordinator rejects as malformed cannot succeed.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	return w.postTraced(ctx, path, "", in, out)
}

// postTraced is post with a traceparent header, propagating the worker's
// execute-span context on heartbeat and submit calls so the coordinator
// can record the server-side submit leg under it.
func (w *Worker) postTraced(ctx context.Context, path, traceparent string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return errLeaseGone
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("remote: %s: %s (%s)", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// sleepCtx sleeps d or until ctx is done; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
