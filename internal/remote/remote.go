// Package remote is the distributed-campaign subsystem: a coordinator
// that shards a campaign plan — every (target, algorithm, session) cell —
// across worker machines over a small HTTP/JSON protocol, and the worker
// loop that executes leased shards through internal/runner and streams
// records back. Stdlib only.
//
// The design leans entirely on two invariants the rest of the repository
// already holds:
//
//  1. Sessions are deterministic: a session's outcome is a pure function
//     of its SessionKey (runner.RunSession), independent of which machine
//     runs it, when, or how many times.
//  2. Aggregates are a pure function of the record set: the campaign
//     store canonicalizes every record through the wire format, and
//     aggregation reads records in canonical (cell, session) order.
//
// Together they make distribution an execution-order change only: a
// distributed campaign's aggregates.json is byte-identical to a local
// run's, and every failure mode reduces to "run a session again",
// which is safe (duplicates are dropped by key) and correct (reruns
// produce identical records).
//
// Protocol (all POST bodies and responses are JSON):
//
//	POST /v1/lease      LeaseRequest  → LeaseResponse
//	POST /v1/heartbeat  HeartbeatRequest → 204, or 410 Gone if the lease
//	                    is no longer held (expired, completed, or the
//	                    coordinator restarted)
//	POST /v1/result     ResultRequest → ResultResponse; idempotent — a
//	                    record whose key the store already holds is
//	                    counted and dropped, never double-stored
//	GET  /v1/status     campaign.RemoteStatus snapshot
//	GET  /metrics       Prometheus text page (surw_remote_* gauges)
//
// Lease lifecycle: a batch of same-cell session indices is pending →
// leased (worker, TTL clock) → done. Heartbeats extend the TTL; a lease
// whose TTL lapses is requeued and its worker's later submissions are
// deduplicated by the store. Workers poll with exponential backoff and
// jitter, so a restarting coordinator sees its fleet drift back in
// without a thundering herd.
package remote

import (
	"surw/internal/atlas"
	"surw/internal/campaign"
	"surw/internal/obs"
)

// Protocol endpoint paths.
const (
	PathLease     = "/v1/lease"
	PathHeartbeat = "/v1/heartbeat"
	PathResult    = "/v1/result"
	PathStatus    = "/v1/status"
	PathClasses   = "/v1/classes"
	PathSpans     = "/v1/spans"
	PathHealth    = "/api/health"
)

// LeaseRequest asks for one batch of work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries a lease, a retry hint, or campaign completion.
// Exactly one of Done / Lease / RetryMillis is meaningful: Done means the
// plan is exhausted and the worker should exit; a nil Lease with
// RetryMillis set means everything is leased out right now — poll again.
type LeaseResponse struct {
	Done        bool   `json:"done,omitempty"`
	RetryMillis int64  `json:"retry_ms,omitempty"`
	Lease       *Lease `json:"lease,omitempty"`
}

// Lease is one batch of sessions from a single (target, algorithm) cell.
// The cell configuration is carried field-by-field (not as a SessionKey)
// so the wire shape is explicit; the worker rebuilds keys with
// runner.KeyFor, which must round-trip to the coordinator's plan keys —
// the coordinator ships normalized values, so reconstruction is stable.
type Lease struct {
	ID             string `json:"id"`
	Target         string `json:"target"`
	Algorithm      string `json:"algorithm"`
	Limit          int    `json:"limit"`
	Seed           int64  `json:"seed"`
	StopAtFirstBug bool   `json:"stop_at_first_bug,omitempty"`
	Coverage       bool   `json:"coverage,omitempty"`
	CoverageEvery  int    `json:"coverage_every,omitempty"`
	ProfileRuns    int    `json:"profile_runs,omitempty"`
	// Sessions are the session indices to execute.
	Sessions []int `json:"sessions"`
	// TTLMillis is the lease's time-to-live; the worker heartbeats at a
	// fraction of it to keep the lease alive.
	TTLMillis int64 `json:"ttl_ms"`
	// Traceparent, when non-empty, is the W3C trace context of the
	// coordinator's root "lease" span: the worker parents its execute /
	// session / prefix-replay spans under it and ships them back in the
	// ResultRequest, letting the coordinator assemble the end-to-end trace.
	// Empty when fleet tracing is off — workers then record no spans.
	Traceparent string `json:"traceparent,omitempty"`
}

// HeartbeatRequest keeps a lease alive while its batch executes.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// ResultRequest submits a batch's session records. Records is the exact
// wire form the coordinator's store appends, so submission is storage.
type ResultRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// BusyMillis is the wall-clock the worker spent executing the batch,
	// feeding the per-worker utilization gauges.
	BusyMillis int64             `json:"busy_ms"`
	Records    []campaign.Record `json:"records"`
	// Spans are the worker-side spans of this lease's trace (execute,
	// sessions, prefix replays); empty unless the lease carried a
	// traceparent.
	Spans []obs.Span `json:"spans,omitempty"`
	// Latencies is the worker's cumulative latency snapshot (all ops since
	// the worker started, not just this lease). The coordinator keeps the
	// latest snapshot per worker and merges those into the fleet view, so
	// shipping cumulative histograms never double-counts.
	Latencies map[string]obs.HistogramWire `json:"latencies,omitempty"`
	// Atlas is the worker's cumulative exploration-atlas snapshot (every
	// cell the worker has observed since it started), present only when
	// the worker runs with an atlas attached. Cumulative-and-replaced like
	// Latencies: the coordinator keeps the latest snapshot per worker and
	// merges those into the fleet cartography, never folding increments.
	Atlas []atlas.CellSnapshot `json:"atlas,omitempty"`
}

// ResultResponse reports how the submission landed.
type ResultResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// ClassQueryRequest asks the coordinator's seen-class filter whether the
// given class fingerprints (hex, as in the campaign wire format) are
// saturated fleet-wide. Workers batch their open sessions' prefix classes
// into one query.
type ClassQueryRequest struct {
	Worker  string   `json:"worker"`
	Classes []string `json:"classes"`
}

// ClassQueryResponse carries one verdict per queried fingerprint, in
// order. Saturated[i] is true when Classes[i] has been observed by at
// least the coordinator's threshold of session records (approximately —
// the filter is a counting Bloom filter, see ClassFilter).
type ClassQueryResponse struct {
	Saturated []bool `json:"saturated"`
}
