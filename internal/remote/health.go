package remote

// The coordinator-side health engine: stall detection over the soft state
// the coordinator already tracks. Three rules, each cheap enough to
// evaluate on every /api/health request under the handler mutex:
//
//   - stale workers: a worker whose last request is older than
//     StaleWorkerAfter (default 3x the lease TTL — heartbeats arrive at
//     TTL/3, so this means ~9 missed heartbeats);
//   - slow cells: a (target, algorithm) cell whose observed schedules/s
//     falls below SlowCellFraction of the fleet median — the signal that a
//     target hangs or a worker class is degraded, invisible to liveness
//     checks because heartbeats still flow;
//   - aging leases: a lease outstanding longer than AgingLeaseAfter
//     (default 5x TTL) — the worker is heartbeating (else the lease would
//     have expired) but not finishing, the classic silent-stall shape the
//     surwworker watchdog attacks from the other side.
//
// Verdicts are wire-typed in internal/campaign (HealthReport) so the
// dashboard and surwdash render them without importing this package.

import (
	"fmt"
	"sort"
	"time"

	"surw/internal/campaign"
)

// Health-rule defaults, as multiples of the lease TTL.
const (
	defaultStaleWorkerTTLs = 3
	defaultAgingLeaseTTLs  = 5
	// DefaultSlowCellFraction flags cells below this fraction of the fleet
	// median schedules/s.
	DefaultSlowCellFraction = 0.25
	// minCellBusy is the least observed execution time before a cell's
	// throughput participates in the slow-cell rule; below it the rate
	// estimate is noise.
	minCellBusy = 250 * time.Millisecond
)

// cellStat accumulates observed throughput per campaign cell: schedules
// executed and worker-reported busy time, both attributed at result
// submission (a lease never mixes cells, so the attribution is exact).
type cellStat struct {
	schedules int64
	busy      time.Duration
}

// healthLocked evaluates the three stall rules. Caller holds c.mu and has
// already expired stale leases (so "aging" leases here are alive —
// heartbeating but not finishing).
func (c *Coordinator) healthLocked(now time.Time) *campaign.HealthReport {
	h := &campaign.HealthReport{}

	staleAfter := c.opts.StaleWorkerAfter
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		if age := now.Sub(ws.lastSeen); age > staleAfter {
			h.StaleWorkers++
			h.Issues = append(h.Issues, campaign.HealthIssue{
				Kind: campaign.HealthStaleWorker, Subject: name,
				Detail: fmt.Sprintf("no request for %s (deadline %s); holds %d leases",
					age.Round(time.Millisecond), staleAfter, ws.leases),
			})
		}
	}

	// Slow cells: compare each cell's schedules/s against the fleet
	// median. Needs at least two measured cells for a median to mean
	// anything.
	type cellRate struct {
		name string
		rate float64
	}
	var rates []cellRate
	for cell, cs := range c.cells {
		if cs.busy < minCellBusy || cs.schedules == 0 {
			continue
		}
		rates = append(rates, cellRate{
			name: cell.Target + "/" + cell.Algorithm,
			rate: float64(cs.schedules) / cs.busy.Seconds(),
		})
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i].rate < rates[j].rate })
	if n := len(rates); n >= 2 {
		median := rates[n/2].rate
		if n%2 == 0 {
			median = (rates[n/2-1].rate + rates[n/2].rate) / 2
		}
		h.FleetMedianSchedulesPerSec = median
		floor := c.opts.SlowCellFraction * median
		for _, cr := range rates {
			if cr.rate < floor {
				h.SlowCells++
				h.Issues = append(h.Issues, campaign.HealthIssue{
					Kind: campaign.HealthSlowCell, Subject: cr.name,
					Detail: fmt.Sprintf("%.0f schedules/s vs fleet median %.0f (floor %.0f)",
						cr.rate, median, floor),
				})
			}
		}
	}

	agingAfter := c.opts.AgingLeaseAfter
	ids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		l := c.leases[id]
		if age := now.Sub(l.granted); age > agingAfter {
			h.AgingLeases++
			h.Issues = append(h.Issues, campaign.HealthIssue{
				Kind: campaign.HealthAgingLease, Subject: id,
				Detail: fmt.Sprintf("held by %s for %s (deadline %s), %d sessions, %d heartbeats",
					l.worker, age.Round(time.Millisecond), agingAfter, len(l.keys), l.hb),
			})
		}
	}

	h.Healthy = len(h.Issues) == 0
	return h
}

// Health evaluates the stall rules against the current soft state.
func (c *Coordinator) Health() *campaign.HealthReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireStaleLocked(now)
	return c.healthLocked(now)
}
