package remote

// The fleet-wide seen-class filter: a fixed-size counting Bloom filter
// over commutation-class fingerprints (sched.Result.ClassHash). The
// coordinator ingests the class tallies of every accepted session record
// and exposes saturation queries over /v1/classes; workers consult it to
// early-abandon sessions whose forced prefix lands in a class the fleet
// has already sampled to saturation (runner.Config.PrefixFilter).
//
// The structure is deliberately approximate in one safe direction only:
// counters are shared (hash collisions can over-count a class) and
// saturate at 255, so the filter may claim saturation for a class that is
// merely co-located with hot ones. That costs coverage of the abandoned
// session's budget, never correctness — dedup-verified aggregates are
// computed from stored records, not from the filter — and the false-
// positive rate is kept small by sizing (default 1 MiB of counters for k=4
// hashes). The filter never under-counts, so "not saturated" is reliable.

import "sync"

// filterHashes is the number of counter slots one fingerprint touches.
const filterHashes = 4

// DefaultFilterSize is the default number of 8-bit counters (1 MiB).
const DefaultFilterSize = 1 << 20

// DefaultClassThreshold is the default saturation threshold: a class
// observed by at least this many session records is considered saturated.
const DefaultClassThreshold = 8

// ClassFilter is a concurrency-safe counting Bloom filter over uint64
// class fingerprints.
type ClassFilter struct {
	mu        sync.RWMutex
	counters  []uint8
	threshold uint8

	observed int64 // fingerprints ingested (with multiplicity)
	distinct int64 // ingests whose fingerprint was unseen (min counter was 0)
}

// NewClassFilter builds a filter with size 8-bit counters (0 =
// DefaultFilterSize; sizes are rounded up to a power of two so slot
// indexing is a mask) and the given saturation threshold (<=0 =
// DefaultClassThreshold, capped at 255).
func NewClassFilter(size, threshold int) *ClassFilter {
	if size <= 0 {
		size = DefaultFilterSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	if threshold <= 0 {
		threshold = DefaultClassThreshold
	}
	if threshold > 255 {
		threshold = 255
	}
	return &ClassFilter{counters: make([]uint8, n), threshold: uint8(threshold)}
}

// slots derives the filter's counter indices for one fingerprint by
// double hashing (Kirsch-Mitzenmacher): two independent splitmix64
// remixes of the fingerprint seed an arithmetic probe sequence. Remixing
// per class (rather than walking a shared sequence) keeps distinct
// fingerprints' probe sets independent even when the fingerprints
// themselves are arithmetically related.
func (f *ClassFilter) slots(class uint64, out *[filterHashes]uint64) {
	mask := uint64(len(f.counters) - 1)
	h1 := splitmix64(class)
	h2 := splitmix64(class^0x9E3779B97F4A7C15) | 1
	for i := 0; i < filterHashes; i++ {
		out[i] = (h1 + uint64(i)*h2) & mask
	}
}

// splitmix64 is the finalizer of the splitmix64 generator, a strong
// 64-bit bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Add ingests one observation of class and reports whether the class was
// novel (its estimated count was zero before the add). Counters saturate
// at 255 and never decrease.
func (f *ClassFilter) Add(class uint64) (novel bool) {
	var s [filterHashes]uint64
	f.slots(class, &s)
	f.mu.Lock()
	defer f.mu.Unlock()
	min := uint8(255)
	for _, i := range s {
		if f.counters[i] < min {
			min = f.counters[i]
		}
	}
	for _, i := range s {
		if f.counters[i] < 255 {
			f.counters[i]++
		}
	}
	f.observed++
	if min == 0 {
		f.distinct++
		return true
	}
	return false
}

// Saturated reports whether class's estimated count has reached the
// filter's threshold.
func (f *ClassFilter) Saturated(class uint64) bool {
	var s [filterHashes]uint64
	f.slots(class, &s)
	f.mu.RLock()
	defer f.mu.RUnlock()
	min := uint8(255)
	for _, i := range s {
		if f.counters[i] < min {
			min = f.counters[i]
		}
	}
	return min >= f.threshold
}

// Count returns the class's estimated observation count (capped at 255).
func (f *ClassFilter) Count(class uint64) int {
	var s [filterHashes]uint64
	f.slots(class, &s)
	f.mu.RLock()
	defer f.mu.RUnlock()
	min := uint8(255)
	for _, i := range s {
		if f.counters[i] < min {
			min = f.counters[i]
		}
	}
	return int(min)
}

// Stats returns the ingest totals: observations with multiplicity and the
// estimated number of distinct classes among them.
func (f *ClassFilter) Stats() (observed, distinct int64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.observed, f.distinct
}
