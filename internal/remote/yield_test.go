package remote

// Tests for yield-guided leasing and the fleet atlas: grant-order
// determinism with the flag off (FIFO, as ever) and on (a pure function
// of plan, store, seed, and request order), weight-driven avoidance of
// saturated cells, and the capstone — a two-worker campaign with
// -yield-leases and worker atlases completes, counts yield grants,
// assembles a merged fleet atlas with drift verdicts, and still writes
// byte-identical aggregates (sessions are deterministic, so grant order
// never reaches the records).

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"surw/internal/atlas"
	"surw/internal/campaign"
	"surw/internal/experiments"
	"surw/internal/runner"
)

// yieldPlan builds three cells of four sessions each, in plan order
// t/a, t/b, t/c.
func yieldPlan() []runner.SessionKey {
	var plan []runner.SessionKey
	for _, tgt := range []string{"t/a", "t/b", "t/c"} {
		for s := 0; s < 4; s++ {
			plan = append(plan, runner.SessionKey{Target: tgt, Algorithm: "RW", Limit: 100, Seed: 1, Session: s})
		}
	}
	return plan
}

// saturateCell stores records for the cell's first two sessions whose
// coverage saw a single class 50 times each: Good-Turing unseen mass 0,
// so the cell's lease weight drops to the floor.
func saturateCell(st *memStore, plan []runner.SessionKey, target string) {
	for _, k := range plan {
		if k.Target != target || k.Session > 1 {
			continue
		}
		_, _ = st.Store(k, &runner.Session{
			FirstBug:  -1,
			Schedules: 50,
			Bugs:      map[string]int{},
			Cov: &runner.Coverage{
				Interleavings: map[uint64]int{0x1: 50},
				Classes:       map[uint64]int{0xdead: 50},
				Behaviors:     map[string]int{"b": 50},
			},
		})
	}
}

// grantSeq polls leases for one worker until the queue is drained (the
// granted leases are held, never submitted), returning one
// "target#sessions" entry per grant.
func grantSeq(t *testing.T, url, worker string) []string {
	t.Helper()
	var seq []string
	for {
		resp := leaseFor(t, url, worker)
		if resp.Lease == nil {
			return seq
		}
		seq = append(seq, fmt.Sprintf("%s%v", resp.Lease.Target, resp.Lease.Sessions))
	}
}

// With the flag off, grants follow plan order exactly — the FIFO contract
// every byte-identity smoke leans on is untouched by the yield machinery.
func TestGrantOrderFIFOWithYieldOff(t *testing.T) {
	st := newMemStore()
	plan := yieldPlan()
	saturateCell(st, plan, "t/a")
	c := NewCoordinator(st, plan, CoordinatorOptions{BatchSize: 2})
	srv := httptest.NewServer(c)
	defer srv.Close()

	got := grantSeq(t, srv.URL, "w")
	want := []string{"t/a[2 3]", "t/b[0 1]", "t/b[2 3]", "t/c[0 1]", "t/c[2 3]"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("FIFO grant order changed:\ngot  %v\nwant %v", got, want)
	}
	if rs := c.Status(); rs.YieldGrants != 0 {
		t.Fatalf("yield grants counted with the flag off: %d", rs.YieldGrants)
	}
}

// With the flag on, two coordinators built from the same plan, store, and
// seed grant the same single worker an identical lease sequence — and the
// weighted draw steers it away from the saturated cell's floor weight.
func TestYieldLeaseGrantDeterminism(t *testing.T) {
	build := func() (*Coordinator, *httptest.Server) {
		st := newMemStore()
		plan := yieldPlan()
		saturateCell(st, plan, "t/a")
		c := NewCoordinator(st, plan, CoordinatorOptions{BatchSize: 2, YieldLeases: true, YieldSeed: 7})
		return c, httptest.NewServer(c)
	}
	c1, srv1 := build()
	defer srv1.Close()
	c2, srv2 := build()
	defer srv2.Close()

	seq1 := grantSeq(t, srv1.URL, "w")
	seq2 := grantSeq(t, srv2.URL, "w")
	if fmt.Sprint(seq1) != fmt.Sprint(seq2) {
		t.Fatalf("identical coordinators granted different sequences:\n%v\n%v", seq1, seq2)
	}
	if len(seq1) != 5 {
		t.Fatalf("granted %d leases, want 5: %v", len(seq1), seq1)
	}
	// The saturated cell carries weight 0.05 against 1.0 each for the four
	// fresh batches; the first draw all but certainly lands elsewhere (and
	// deterministically so for this seed).
	if seq1[0] == "t/a[2 3]" {
		t.Fatalf("first yield-weighted grant hit the saturated cell: %v", seq1)
	}
	if rs := c1.Status(); rs.YieldGrants != 5 {
		t.Fatalf("YieldGrants = %d, want 5", rs.YieldGrants)
	}
	_ = c2
}

// A different seed draws a different sequence — the determinism above is
// the seed's doing, not an accident of a degenerate draw.
func TestYieldSeedChangesDraw(t *testing.T) {
	build := func(seed int64) []string {
		st := newMemStore()
		plan := yieldPlan()
		c := NewCoordinator(st, plan, CoordinatorOptions{BatchSize: 2, YieldLeases: true, YieldSeed: seed})
		srv := httptest.NewServer(c)
		defer srv.Close()
		return grantSeq(t, srv.URL, "w")
	}
	for seed := int64(2); seed < 20; seed++ {
		if a, b := build(1), build(seed); fmt.Sprint(a) != fmt.Sprint(b) {
			return
		}
	}
	t.Fatal("every seed produced the same grant sequence")
}

// The capstone: a two-worker campaign with yield-guided leasing and
// per-worker atlases completes the grid, counts nonzero yield-weighted
// grants, assembles a merged fleet atlas with uniformity verdicts, and
// still writes aggregates byte-identical to a local run — sessions are
// deterministic, so grant order can reorder execution but never change a
// record.
func TestYieldLeasesCampaignWithFleetAtlas(t *testing.T) {
	// covScale: coverage on, so the coordinator ingests class tallies and
	// can attach drift verdicts (and weight leases by real yields).
	sc := covScale()

	localStore, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer localStore.Close()
	scLocal := sc
	scLocal.Store = localStore
	experiments.SCTBench(scLocal, nil)
	var localAgg bytes.Buffer
	if err := campaign.WriteAggregates(&localAgg, localStore); err != nil {
		t.Fatal(err)
	}

	distStore, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer distStore.Close()
	c := NewCoordinator(distStore, experiments.SCTPlan(sc), CoordinatorOptions{
		BatchSize: 2, YieldLeases: true, YieldSeed: sc.Seed,
	})
	srv := httptest.NewServer(c)
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := newTestWorker(fmt.Sprintf("w%d", i), srv.URL)
			w.Atlas = atlas.New()
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !c.Done() {
		t.Fatal("coordinator not done")
	}
	rs := c.Status()
	if rs.YieldGrants == 0 {
		t.Fatal("campaign completed without a single yield-weighted grant")
	}

	var distAgg bytes.Buffer
	if err := campaign.WriteAggregates(&distAgg, distStore); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localAgg.Bytes(), distAgg.Bytes()) {
		t.Fatalf("yield-leased aggregates diverged from local run:\nlocal %d bytes, distributed %d bytes",
			localAgg.Len(), distAgg.Len())
	}

	snap := c.AtlasSnapshot()
	if snap == nil || len(snap.Cells) == 0 {
		t.Fatal("no fleet atlas assembled")
	}
	// covScale: 3 targets × 2 algorithms. Each cell must carry merged
	// cartography and a drift verdict from the coordinator's own tallies.
	if len(snap.Cells) != 6 {
		t.Fatalf("fleet atlas has %d cells, want 6", len(snap.Cells))
	}
	for _, cell := range snap.Cells {
		if cell.Schedules == 0 || cell.Decisions == 0 {
			t.Fatalf("%s/%s: empty merged cartography: %+v", cell.Target, cell.Algorithm, cell)
		}
		if cell.Uniformity == nil || cell.Uniformity.Samples == 0 {
			t.Fatalf("%s/%s: no drift verdict attached", cell.Target, cell.Algorithm)
		}
	}
}

// Shutdown notification: a coordinator must be able to report when every
// worker has been answered Done, so the serving process can linger just
// long enough that no idle poller is stranded against a torn-down
// listener (it cannot distinguish a finished campaign from a restart, so
// it would retry forever).
func TestAllWorkersNotified(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(1), CoordinatorOptions{BatchSize: 1})
	srv := httptest.NewServer(c)
	defer srv.Close()

	la := leaseFor(t, srv.URL, "a")
	if la.Lease == nil {
		t.Fatal("no lease granted")
	}
	// Worker b polls mid-campaign: everything is leased out, so it gets a
	// retry hint — and is now a known worker that must be notified.
	if lb := leaseFor(t, srv.URL, "b"); lb.Done || lb.Lease != nil {
		t.Fatalf("mid-campaign poll answered %+v, want retry hint", lb)
	}
	if c.AllWorkersNotified() {
		t.Fatal("notified before the campaign completed")
	}

	if code := postJSON(t, srv.URL+PathResult,
		ResultRequest{Worker: "a", LeaseID: la.Lease.ID, Records: sessionRecordsFor(la.Lease)}, nil); code != 200 {
		t.Fatalf("submit: status %d", code)
	}
	if !c.Done() {
		t.Fatal("campaign not done after final submit")
	}
	if c.AllWorkersNotified() {
		t.Fatal("notified while b has not polled since completion")
	}
	if la := leaseFor(t, srv.URL, "a"); !la.Done {
		t.Fatalf("post-completion poll for a: %+v, want done", la)
	}
	if c.AllWorkersNotified() {
		t.Fatal("notified while b still unaware")
	}
	if lb := leaseFor(t, srv.URL, "b"); !lb.Done {
		t.Fatalf("post-completion poll for b: %+v, want done", lb)
	}
	if !c.AllWorkersNotified() {
		t.Fatal("both workers told done, still not notified")
	}
}
