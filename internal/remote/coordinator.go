package remote

// The coordinator: an http.Handler owning the lease queue of one
// distributed campaign. It is deliberately dumb — all campaign state it
// tracks beyond the store is soft (who holds which lease, worker gauges),
// so a restarted coordinator rebuilt from the same plan and store resumes
// exactly where the records left off: construction filters the plan
// against the store, and everything in flight at the crash simply expires
// on the workers' side and is re-earned through fresh leases.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"surw/internal/atlas"
	"surw/internal/campaign"
	"surw/internal/obs"
	"surw/internal/runner"
	"surw/internal/stats"
)

// CoordinatorOptions tunes the lease queue; zero values take defaults.
type CoordinatorOptions struct {
	// LeaseTTL is how long a lease lives between heartbeats before the
	// worker is presumed dead and the batch requeued. Default 30s.
	LeaseTTL time.Duration
	// BatchSize is the number of sessions per lease. Default 4.
	BatchSize int
	// RetryAfter is the poll hint handed to workers when every batch is
	// leased out. Default 500ms.
	RetryAfter time.Duration
	// ClassThreshold is the seen-class filter's saturation threshold: a
	// commutation class observed by at least this many session records
	// answers true on /v1/classes. Default DefaultClassThreshold.
	ClassThreshold int
	// ClassFilterSize is the number of 8-bit counters backing the filter.
	// Default DefaultFilterSize.
	ClassFilterSize int
	// Tracing enables fleet tracing: every lease gets a root span whose
	// context travels to the worker, worker spans are ingested from result
	// submissions, and the assembled log is served on /v1/spans. Off by
	// default — untraced fleets record nothing and allocate nothing.
	Tracing bool
	// Track names the coordinator's span track. Default "coordinator".
	Track string
	// StaleWorkerAfter flags workers silent for this long (default 3x
	// LeaseTTL); AgingLeaseAfter flags leases outstanding this long
	// (default 5x LeaseTTL); SlowCellFraction flags cells below this
	// fraction of the fleet-median schedules/s (default
	// DefaultSlowCellFraction).
	StaleWorkerAfter time.Duration
	AgingLeaseAfter  time.Duration
	SlowCellFraction float64
	// YieldLeases weights lease grants by per-cell discovery yield: the
	// coordinator draws the next batch with probability proportional to
	// atlas.LeaseWeight over the cell's ingested class tallies, so cells
	// with more unseen mass get leased first. The draw is deterministic —
	// seeded by YieldSeed and the grant sequence, independent of wall
	// clock — so the same store, plan, and request order grant the same
	// leases. Like the prefix filter this reorders (and with StopAtFirstBug
	// can reshape) execution, so it is opt-in and never enabled by the
	// byte-identity smokes; with the flag off the FIFO order is untouched.
	YieldLeases bool
	// YieldSeed seeds the yield-weighted draw. Default 1.
	YieldSeed int64
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 500 * time.Millisecond
	}
	if o.Track == "" {
		o.Track = "coordinator"
	}
	if o.StaleWorkerAfter <= 0 {
		o.StaleWorkerAfter = defaultStaleWorkerTTLs * o.LeaseTTL
	}
	if o.AgingLeaseAfter <= 0 {
		o.AgingLeaseAfter = defaultAgingLeaseTTLs * o.LeaseTTL
	}
	if o.SlowCellFraction <= 0 {
		o.SlowCellFraction = DefaultSlowCellFraction
	}
	if o.YieldSeed == 0 {
		o.YieldSeed = 1
	}
	return o
}

// Coordinator shards a campaign plan over HTTP. Safe for concurrent use;
// serve it with http.Server or mount it on a mux.
type Coordinator struct {
	store runner.SessionStore
	opts  CoordinatorOptions
	mux   *http.ServeMux
	now   func() time.Time // injectable clock for lease-expiry tests

	mu         sync.Mutex
	planned    map[runner.SessionKey]bool // plan membership: rejects stray submissions
	total      int                        // len(plan)
	done       int                        // keys known stored
	pending    []batch                    // FIFO of unleased batches
	leases     map[string]*lease
	workers    map[string]*workerState
	seq        int   // lease-ID counter
	expiries   int64 // leases timed out and requeued
	duplicates int64 // records dropped because the store already held them

	// Seen-class state: filter is its own lock domain (never touched under
	// c.mu hot paths beyond ingest), the tallies ride under c.mu.
	filter         *ClassFilter
	schedules      int64 // schedules covered by ingested session records
	dupSchedules   int64 // of those, schedules in an already-seen class
	classQueries   int64 // fingerprints queried over /v1/classes
	classSaturated int64 // of those, answered saturated

	// Observability. spans is nil unless opts.Tracing; lat holds the
	// coordinator's own histograms (queue_wait); workerLat keeps the
	// latest cumulative latency snapshot per worker (replaced, never
	// merged in place, so cumulative shipping can't double-count); cells
	// feeds the slow-cell health rule.
	spans     *obs.SpanLog
	lat       obs.LatencySet
	workerLat map[string]map[string]obs.HistogramWire
	cells     map[campaign.CellKey]*cellStat

	// Yield-guided leasing state. cellClasses tallies ingested class
	// fingerprints per cell (a pure function of the store, so it survives
	// coordinator restarts); workerAtlas keeps the latest cumulative atlas
	// snapshot per worker (replaced like workerLat); yieldGrants counts
	// leases granted through the weighted draw, yieldDraws the draws made
	// (the deterministic stream position).
	cellClasses map[campaign.CellKey]map[uint64]int
	workerAtlas map[string][]atlas.CellSnapshot
	yieldGrants int64
	yieldDraws  uint64
}

// batch is a run of same-cell session keys, in session order.
type batch struct {
	keys []runner.SessionKey
	// enqueued feeds the queue_wait histogram: batch creation or last
	// requeue → lease grant.
	enqueued time.Time
}

type lease struct {
	id      string
	worker  string
	keys    []runner.SessionKey
	expires time.Time
	granted time.Time    // feeds the aging-lease health rule
	hb      int          // heartbeats seen
	span    obs.OpenSpan // root "lease" span; inert unless tracing
}

type workerState struct {
	firstSeen time.Time
	lastSeen  time.Time
	sessions  int           // accepted records
	busy      time.Duration // worker-reported execution time
	leases    int           // currently held
	toldDone  bool          // answered a lease poll with Done: true
}

// NewCoordinator builds the lease queue for a plan. Keys the store
// already holds are counted done immediately — restarting a coordinator
// over a half-finished campaign resumes it.
func NewCoordinator(store runner.SessionStore, plan []runner.SessionKey, opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		store:   store,
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
		now:     time.Now,
		planned: make(map[runner.SessionKey]bool, len(plan)),
		total:   len(plan),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),

		workerLat: make(map[string]map[string]obs.HistogramWire),
		cells:     make(map[campaign.CellKey]*cellStat),

		cellClasses: make(map[campaign.CellKey]map[uint64]int),
		workerAtlas: make(map[string][]atlas.CellSnapshot),
	}
	if c.opts.Tracing {
		c.spans = obs.NewSpanLog(c.opts.Track)
	}
	c.filter = NewClassFilter(c.opts.ClassFilterSize, c.opts.ClassThreshold)
	t0 := c.now()
	var cur batch
	var curCell campaign.CellKey
	flush := func() {
		if len(cur.keys) > 0 {
			cur.enqueued = t0
			c.pending = append(c.pending, cur)
			cur = batch{}
		}
	}
	for _, k := range plan {
		c.planned[k] = true
		if s, ok := store.Lookup(k); ok {
			c.done++
			// A restarted coordinator rebuilds the seen-class filter (and
			// the per-cell yield tallies) from the records it resumes over,
			// so saturation verdicts and grant weights survive restarts
			// with the store.
			c.ingestLocked(k, s)
			continue
		}
		if cell := CellOf(k); len(cur.keys) == 0 || cell != curCell || len(cur.keys) >= c.opts.BatchSize {
			flush()
			curCell = cell
		}
		cur.keys = append(cur.keys, k)
	}
	flush()
	c.mux.HandleFunc(PathLease, c.handleLease)
	c.mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	c.mux.HandleFunc(PathResult, c.handleResult)
	c.mux.HandleFunc(PathStatus, c.handleStatus)
	c.mux.HandleFunc(PathClasses, c.handleClasses)
	c.mux.HandleFunc(PathSpans, c.handleSpans)
	c.mux.HandleFunc(PathHealth, c.handleHealth)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	return c
}

// ingestLocked folds one session record's class tallies into the
// seen-class filter, the fleet duplicate-rate tallies, and the per-cell
// class tallies behind yield-guided leasing: each class adds one filter
// observation, and every schedule beyond the first of an already-seen
// class counts as a duplicate. Sessions without coverage contribute
// nothing. Caller holds c.mu (or is still constructing c).
func (c *Coordinator) ingestLocked(k runner.SessionKey, s *runner.Session) {
	if s.Cov == nil {
		return
	}
	cell := CellOf(k)
	tally := c.cellClasses[cell]
	if tally == nil {
		tally = make(map[uint64]int)
		c.cellClasses[cell] = tally
	}
	for class, n := range s.Cov.Classes {
		c.schedules += int64(n)
		tally[class] += n
		dup := int64(n - 1)
		if !c.filter.Add(class) {
			dup++ // the class itself was already known fleet-wide
		}
		c.dupSchedules += dup
	}
}

// CellOf projects a session key onto its (target, algorithm) cell, the
// batching unit: one lease never mixes cells, so a worker resolves one
// target and one algorithm per batch.
func CellOf(k runner.SessionKey) campaign.CellKey {
	return campaign.CellKey{
		Target: k.Target, Algorithm: k.Algorithm, Limit: k.Limit, Seed: k.Seed,
		StopAtFirstBug: k.StopAtFirstBug, Coverage: k.Coverage,
		CoverageEvery: k.CoverageEvery, ProfileRuns: k.ProfileRuns,
	}
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Done reports whether every planned session is stored.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done >= c.total
}

// expireStaleLocked requeues every lease whose TTL lapsed. Called under
// c.mu from every handler, so expiry needs no background goroutine.
func (c *Coordinator) expireStaleLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expires) {
			delete(c.leases, id)
			c.pending = append(c.pending, batch{keys: l.keys, enqueued: now})
			c.expiries++
			if ws := c.workers[l.worker]; ws != nil {
				ws.leases--
			}
			l.span.Span.Err = "expired"
			l.span.Span.HB = l.hb
			l.span.End()
		}
	}
}

// touchLocked registers/refreshes a worker's liveness.
func (c *Coordinator) touchLocked(name string, now time.Time) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{firstSeen: now}
		c.workers[name] = ws
	}
	ws.lastSeen = now
	return ws
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	ws := c.touchLocked(req.Worker, now)
	c.expireStaleLocked(now)

	// Pop batches until one still has unstored keys. A requeued batch may
	// have been completed by another worker's idempotent submission in the
	// meantime; filtering at grant time (not requeue time) keeps every
	// handler O(batch). With YieldLeases on, the pop is a deterministic
	// weighted draw over the queue instead of FIFO.
	for len(c.pending) > 0 {
		idx := 0
		if c.opts.YieldLeases {
			idx = c.pickYieldLocked()
		}
		b := c.pending[idx]
		c.pending = append(c.pending[:idx], c.pending[idx+1:]...)
		keys := b.keys[:0:0]
		for _, k := range b.keys {
			if _, ok := c.store.Lookup(k); !ok {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			continue
		}
		if !b.enqueued.IsZero() {
			c.lat.Observe("queue_wait", now.Sub(b.enqueued))
		}
		c.seq++
		l := &lease{
			id:      fmt.Sprintf("l%06d", c.seq),
			worker:  req.Worker,
			keys:    keys,
			expires: now.Add(c.opts.LeaseTTL),
			granted: now,
		}
		c.leases[l.id] = l
		ws.leases++
		if c.opts.YieldLeases {
			c.yieldGrants++
		}
		k0 := keys[0]
		out := &Lease{
			ID: l.id, Target: k0.Target, Algorithm: k0.Algorithm,
			Limit: k0.Limit, Seed: k0.Seed, StopAtFirstBug: k0.StopAtFirstBug,
			Coverage: k0.Coverage, CoverageEvery: k0.CoverageEvery,
			ProfileRuns: k0.ProfileRuns, TTLMillis: c.opts.LeaseTTL.Milliseconds(),
		}
		for _, k := range keys {
			out.Sessions = append(out.Sessions, k.Session)
		}
		if c.spans.Enabled() {
			// Root of the end-to-end trace: one fresh TraceID per lease.
			// The span stays open until the lease completes or expires;
			// its context rides to the worker as a W3C traceparent.
			root := c.spans.NewRoot()
			l.span = c.spans.Start(obs.SpanContext{Trace: root.Trace}, "lease")
			l.span.Span.Lease = l.id
			l.span.Span.Worker = req.Worker
			l.span.Span.Target = k0.Target
			l.span.Span.Alg = k0.Algorithm
			l.span.Span.N = len(keys)
			out.Traceparent = l.span.Context().Traceparent()
		}
		writeJSON(w, LeaseResponse{Lease: out})
		return
	}
	if c.done >= c.total {
		ws.toldDone = true
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	writeJSON(w, LeaseResponse{RetryMillis: c.opts.RetryAfter.Milliseconds()})
}

// AllWorkersNotified reports whether every worker that ever contacted the
// coordinator has been answered Done on a lease poll. A completed
// coordinator that tears its listener down before this point races the
// idle pollers: a worker sleeping out its RetryMillis hint wakes to a dead
// socket and retries forever (by design — it cannot tell a finished
// campaign from a restarting coordinator). Callers should linger until
// this returns true, with a short cap for workers that died and will
// never poll again.
func (c *Coordinator) AllWorkersNotified() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.workers {
		if !ws.toldDone {
			return false
		}
	}
	return true
}

// pickYieldLocked draws a pending-batch index with probability
// proportional to its cell's lease weight (atlas.LeaseWeight over the
// cell's ingested class tallies: Good-Turing unseen mass, floored so
// saturated cells starve but never deadlock; cells with no data yet get
// full weight). The draw consumes one position of a SplitMix64 stream
// seeded by YieldSeed, so the grant sequence is a pure function of the
// plan, the store, and the request order — never of the wall clock.
func (c *Coordinator) pickYieldLocked() int {
	weights := make([]float64, len(c.pending))
	total := 0.0
	for i, b := range c.pending {
		w := atlas.LeaseWeight(stats.CountsOfMap(c.cellClasses[CellOf(b.keys[0])]))
		weights[i] = w
		total += w
	}
	c.yieldDraws++
	u := atlas.Unit(atlas.Mix64(uint64(c.opts.YieldSeed)+c.yieldDraws*0x9E3779B97F4A7C15)) * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(c.pending) - 1
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.touchLocked(req.Worker, now)
	c.expireStaleLocked(now)
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		// Expired, completed, reassigned, or from before a coordinator
		// restart: the lease is gone. 410 tells the worker to stop
		// heartbeating; its eventual submission is still welcome (and
		// idempotent).
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	l.expires = now.Add(c.opts.LeaseTTL)
	l.hb++
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	submitStart := time.Now()
	var req ResultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Decode and validate everything before taking the lock or touching
	// the store, so a malformed submission changes nothing.
	type decoded struct {
		key  runner.SessionKey
		sess *runner.Session
	}
	recs := make([]decoded, 0, len(req.Records))
	for _, rec := range req.Records {
		k, s, err := rec.Decode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		recs = append(recs, decoded{k, s})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	ws := c.touchLocked(req.Worker, now)
	c.expireStaleLocked(now)
	for _, d := range recs {
		if !c.planned[d.key] {
			http.Error(w, fmt.Sprintf("remote: session %s/%s #%d is not in the campaign plan",
				d.key.Target, d.key.Algorithm, d.key.Session), http.StatusBadRequest)
			return
		}
	}
	resp := ResultResponse{}
	for _, d := range recs {
		// Idempotency: Lookup-before-Store under c.mu. Duplicates arise
		// from lease reassignment or submission retries; sessions are
		// deterministic, so dropping them loses nothing.
		if _, ok := c.store.Lookup(d.key); ok {
			resp.Duplicates++
			c.duplicates++
			continue
		}
		if _, err := c.store.Store(d.key, d.sess); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Accepted++
		c.done++
		ws.sessions++
		c.ingestLocked(d.key, d.sess)
	}
	busy := time.Duration(req.BusyMillis) * time.Millisecond
	ws.busy += busy
	// Cell throughput for the slow-cell health rule. A lease never mixes
	// cells, so the first record's cell owns the whole batch's busy time.
	if len(recs) > 0 {
		cell := CellOf(recs[0].key)
		cs := c.cells[cell]
		if cs == nil {
			cs = &cellStat{}
			c.cells[cell] = cs
		}
		for _, d := range recs {
			cs.schedules += int64(d.sess.Schedules)
		}
		cs.busy += busy
	}
	// Latest cumulative latency snapshot per worker: replace, never fold,
	// so repeated submissions of a growing snapshot can't double-count.
	if len(req.Latencies) > 0 {
		c.workerLat[req.Worker] = req.Latencies
	}
	// Same replace-never-fold rule for the worker's cumulative atlas.
	if len(req.Atlas) > 0 {
		c.workerAtlas[req.Worker] = req.Atlas
	}
	if c.spans.Enabled() {
		for _, s := range req.Spans {
			c.spans.Add(s)
		}
		// The submit leg, measured server-side under the worker's execute
		// span (from the request's traceparent header) — the one genuinely
		// cross-process span of the trace.
		if pctx, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); err == nil {
			c.spans.Add(obs.Span{
				Trace: pctx.Trace, Parent: pctx.Span, Name: "submit",
				Start: submitStart.UnixNano(), Dur: int64(time.Since(submitStart)),
				Worker: req.Worker, N: resp.Accepted,
			})
		}
	}
	// Completing the lease is best-effort: if it already expired (or the
	// coordinator restarted), the records above were still accepted.
	if l, ok := c.leases[req.LeaseID]; ok && l.worker == req.Worker {
		delete(c.leases, req.LeaseID)
		ws.leases--
		l.span.Span.HB = l.hb
		if resp.Duplicates > 0 {
			l.span.Span.Err = fmt.Sprintf("%d duplicates", resp.Duplicates)
		}
		l.span.End()
	}
	writeJSON(w, resp)
}

// handleSpans serves the coordinator's assembled span log as JSONL —
// coordinator root spans, ingested worker spans, and submit legs. Empty
// (but well-formed) when tracing is off.
func (c *Coordinator) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	_ = obs.WriteSpansJSONL(w, c.Spans())
}

// handleHealth serves the stall-detection report.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteJSON(w, c.Health())
}

// Spans snapshots the fleet span log (nil when tracing is off) — what
// surwbench -fleet-trace writes to disk at campaign end.
func (c *Coordinator) Spans() []obs.Span { return c.spans.Snapshot() }

// AtlasSnapshot assembles the fleet's exploration atlas: the latest
// cumulative cartography snapshot from each worker, merged cell-wise,
// with each cell's uniformity drift recomputed from the coordinator's own
// ingested class tallies (a pure function of the store, so the drift
// verdicts — unlike the merged density grids — survive worker restarts
// and coordinator restarts alike). Nil when no worker ever shipped one.
func (c *Coordinator) AtlasSnapshot() *atlas.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.workerAtlas) == 0 {
		return nil
	}
	names := make([]string, 0, len(c.workerAtlas))
	for name := range c.workerAtlas {
		names = append(names, name)
	}
	sort.Strings(names)
	groups := make([][]atlas.CellSnapshot, 0, len(names))
	for _, name := range names {
		groups = append(groups, c.workerAtlas[name])
	}
	merged := atlas.MergeCells(groups...)
	// Drift per (target, algorithm), summed over every cell configuration
	// that maps there (one, in any sane plan).
	classes := make(map[[2]string]map[uint64]int)
	for k, tally := range c.cellClasses {
		key := [2]string{k.Target, k.Algorithm}
		m := classes[key]
		if m == nil {
			m = make(map[uint64]int, len(tally))
			classes[key] = m
		}
		for class, n := range tally {
			m[class] += n
		}
	}
	for i := range merged {
		if m := classes[[2]string{merged[i].Target, merged[i].Algorithm}]; len(m) > 0 {
			d := atlas.DriftFromCounts(m)
			merged[i].Uniformity = &d
		}
	}
	return &atlas.Snapshot{Version: atlas.Version, Cells: merged}
}

// handleClasses answers saturation queries against the seen-class filter.
// Fingerprints are hex (the campaign wire spelling); a malformed one is a
// 400, not a silent miss, so worker bugs surface instead of failing open
// server-side.
func (c *Coordinator) handleClasses(w http.ResponseWriter, r *http.Request) {
	var req ClassQueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	classes := make([]uint64, len(req.Classes))
	for i, s := range req.Classes {
		h, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("remote: bad class fingerprint %q", s), http.StatusBadRequest)
			return
		}
		classes[i] = h
	}
	resp := ClassQueryResponse{Saturated: make([]bool, len(classes))}
	sat := int64(0)
	for i, h := range classes {
		resp.Saturated[i] = c.filter.Saturated(h)
		if resp.Saturated[i] {
			sat++
		}
	}
	c.mu.Lock()
	c.touchLocked(req.Worker, c.now())
	c.classQueries += int64(len(classes))
	c.classSaturated += sat
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteJSON(w, c.Status())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = c.Status().WritePrometheus(w)
}

// Status snapshots the queue for the dashboard (campaign.Server.SetRemote)
// and the /metrics gauges.
func (c *Coordinator) Status() *campaign.RemoteStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireStaleLocked(now)
	observed, distinct := c.filter.Stats()
	rs := &campaign.RemoteStatus{
		SessionsPlanned:   c.total,
		SessionsDone:      c.done,
		InFlightLeases:    len(c.leases),
		PendingBatches:    len(c.pending),
		LeaseExpiries:     c.expiries,
		DuplicateResults:  c.duplicates,
		ClassObservations: observed,
		DistinctClasses:   distinct,
		ClassQueries:      c.classQueries,
		ClassesSaturated:  c.classSaturated,
		YieldGrants:       c.yieldGrants,
	}
	if c.schedules > 0 {
		rs.DuplicateRate = float64(c.dupSchedules) / float64(c.schedules)
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		wk := campaign.RemoteWorker{
			Name:             name,
			Sessions:         ws.sessions,
			BusySeconds:      ws.busy.Seconds(),
			Leases:           ws.leases,
			SecondsSinceSeen: now.Sub(ws.lastSeen).Seconds(),
		}
		if life := now.Sub(ws.firstSeen); life > 0 {
			wk.Utilization = ws.busy.Seconds() / life.Seconds()
		}
		rs.Workers = append(rs.Workers, wk)
	}
	// Fleet latency view: the coordinator's own histograms merged with the
	// latest snapshot from each worker. Built fresh per call — merging
	// cumulative worker snapshots into a long-lived set would double-count.
	var fleet obs.LatencySet
	fleet.Merge(c.lat.Wire())
	for _, wl := range c.workerLat {
		fleet.Merge(wl)
	}
	rs.Latencies = fleet.Snapshots()
	rs.Health = c.healthLocked(now)
	return rs
}

// decodeBody decodes a JSON POST body, rejecting other methods.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
