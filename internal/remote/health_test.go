package remote

// Stall-detection tests: each health rule exercised over the injectable
// clock, plus the /api/health endpoint and the surw_health_* gauges.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"surw/internal/campaign"
	"surw/internal/obs"
)

func TestHealthStaleWorker(t *testing.T) {
	st := newMemStore()
	clk := &clock{t: time.Unix(1_000_000, 0)}
	c := NewCoordinator(st, syntheticPlan(4), CoordinatorOptions{LeaseTTL: time.Minute, BatchSize: 4})
	c.now = clk.now
	srv := httptest.NewServer(c)
	defer srv.Close()

	if h := c.Health(); !h.Healthy {
		t.Fatalf("fresh coordinator unhealthy: %+v", h)
	}
	leaseFor(t, srv.URL, "a")
	// StaleWorkerAfter defaults to 3x the TTL; 4 minutes of silence
	// crosses it (and expires the lease, so no aging-lease issue).
	clk.advance(4 * time.Minute)
	h := c.Health()
	if h.Healthy || h.StaleWorkers != 1 {
		t.Fatalf("health after silence: %+v, want 1 stale worker", h)
	}
	if len(h.Issues) != 1 || h.Issues[0].Kind != campaign.HealthStaleWorker || h.Issues[0].Subject != "a" {
		t.Fatalf("issues: %+v", h.Issues)
	}
	if h.AgingLeases != 0 {
		t.Fatalf("expired lease still counted as aging: %+v", h)
	}
}

func TestHealthAgingLease(t *testing.T) {
	st := newMemStore()
	clk := &clock{t: time.Unix(1_000_000, 0)}
	c := NewCoordinator(st, syntheticPlan(4), CoordinatorOptions{LeaseTTL: time.Minute, BatchSize: 4})
	c.now = clk.now
	srv := httptest.NewServer(c)
	defer srv.Close()

	la := leaseFor(t, srv.URL, "a")
	hb := HeartbeatRequest{Worker: "a", LeaseID: la.Lease.ID}
	// Heartbeat every 30s for 6 minutes: the lease stays alive (the
	// worker is not stale) but never finishes — the aging rule (5x TTL)
	// is the only one that can see this.
	for i := 0; i < 12; i++ {
		clk.advance(30 * time.Second)
		if code := postJSON(t, srv.URL+PathHeartbeat, hb, nil); code != http.StatusNoContent {
			t.Fatalf("heartbeat %d: status %d", i, code)
		}
	}
	h := c.Health()
	if h.Healthy || h.AgingLeases != 1 || h.StaleWorkers != 0 {
		t.Fatalf("health: %+v, want exactly 1 aging lease", h)
	}
	issue := h.Issues[0]
	if issue.Kind != campaign.HealthAgingLease || issue.Subject != la.Lease.ID {
		t.Fatalf("issue: %+v", issue)
	}
	if !strings.Contains(issue.Detail, "12 heartbeats") {
		t.Fatalf("detail %q does not count the heartbeats", issue.Detail)
	}
}

func TestHealthSlowCell(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(1), CoordinatorOptions{LeaseTTL: time.Minute})
	// Inject observed throughput directly: two healthy cells at ~100
	// schedules/s and one crawling at 1/s (median 100, floor 25).
	c.mu.Lock()
	c.cells[campaign.CellKey{Target: "t/fast1", Algorithm: "RW"}] = &cellStat{schedules: 1000, busy: 10 * time.Second}
	c.cells[campaign.CellKey{Target: "t/fast2", Algorithm: "RW"}] = &cellStat{schedules: 1000, busy: 10 * time.Second}
	c.cells[campaign.CellKey{Target: "t/hang", Algorithm: "SURW"}] = &cellStat{schedules: 10, busy: 10 * time.Second}
	// Below minCellBusy: excluded from the rule even though its rate is 0.
	c.cells[campaign.CellKey{Target: "t/new", Algorithm: "RW"}] = &cellStat{schedules: 1, busy: time.Millisecond}
	c.mu.Unlock()

	h := c.Health()
	if h.Healthy || h.SlowCells != 1 {
		t.Fatalf("health: %+v, want exactly 1 slow cell", h)
	}
	if h.Issues[0].Subject != "t/hang/SURW" {
		t.Fatalf("slow cell subject: %q", h.Issues[0].Subject)
	}
	if h.FleetMedianSchedulesPerSec != 100 {
		t.Fatalf("fleet median: %v, want 100", h.FleetMedianSchedulesPerSec)
	}
}

// A single measured cell has no meaningful median: the rule stays quiet.
func TestHealthSlowCellNeedsTwoMeasured(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(1), CoordinatorOptions{})
	c.mu.Lock()
	c.cells[campaign.CellKey{Target: "t/only", Algorithm: "RW"}] = &cellStat{schedules: 10, busy: 10 * time.Second}
	c.mu.Unlock()
	if h := c.Health(); !h.Healthy {
		t.Fatalf("single-cell fleet flagged: %+v", h)
	}
}

func TestHealthEndpointAndGauges(t *testing.T) {
	st := newMemStore()
	clk := &clock{t: time.Unix(1_000_000, 0)}
	c := NewCoordinator(st, syntheticPlan(4), CoordinatorOptions{LeaseTTL: time.Minute, BatchSize: 4})
	c.now = clk.now
	srv := httptest.NewServer(c)
	defer srv.Close()

	leaseFor(t, srv.URL, "a")
	clk.advance(4 * time.Minute)

	resp, err := http.Get(srv.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h campaign.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Healthy || h.StaleWorkers != 1 {
		t.Fatalf("/api/health: %+v", h)
	}

	// The same verdict rides RemoteStatus and its Prometheus page.
	rs := c.Status()
	if rs.Health == nil || rs.Health.StaleWorkers != 1 {
		t.Fatalf("status health: %+v", rs.Health)
	}
	var b strings.Builder
	if err := rs.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	for _, want := range []string{"surw_health_ok 0", "surw_health_stale_workers 1"} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q:\n%s", want, page)
		}
	}
	if err := obs.LintPrometheus(strings.NewReader(page)); err != nil {
		t.Errorf("remote status page fails lint: %v", err)
	}
}

// Latency shipping: the coordinator folds its own queue-wait histogram
// with the latest per-worker snapshots, replacing (not accumulating) a
// worker's resubmitted cumulative set.
func TestFleetLatencyAggregation(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(2), CoordinatorOptions{BatchSize: 1})
	srv := httptest.NewServer(c)
	defer srv.Close()

	var wlat obs.LatencySet
	wlat.Observe("session", 5*time.Millisecond)
	la := leaseFor(t, srv.URL, "a")
	req := ResultRequest{Worker: "a", LeaseID: la.Lease.ID,
		Records: sessionRecordsFor(la.Lease), Latencies: wlat.Wire()}
	if code := postJSON(t, srv.URL+PathResult, req, nil); code != 200 {
		t.Fatalf("submit: status %d", code)
	}

	// Second submit ships a *cumulative* snapshot (2 observations). The
	// fleet view must show 2, not 1+2.
	wlat.Observe("session", 7*time.Millisecond)
	lb := leaseFor(t, srv.URL, "a")
	req = ResultRequest{Worker: "a", LeaseID: lb.Lease.ID,
		Records: sessionRecordsFor(lb.Lease), Latencies: wlat.Wire()}
	if code := postJSON(t, srv.URL+PathResult, req, nil); code != 200 {
		t.Fatalf("submit 2: status %d", code)
	}

	rs := c.Status()
	var sessions, queueWait *obs.LatencySnap
	for i := range rs.Latencies {
		switch rs.Latencies[i].Op {
		case "session":
			sessions = &rs.Latencies[i]
		case "queue_wait":
			queueWait = &rs.Latencies[i]
		}
	}
	if sessions == nil || sessions.Count != 2 {
		t.Fatalf("fleet session latency: %+v, want count 2 (latest snapshot, not a fold)", sessions)
	}
	if queueWait == nil || queueWait.Count != 2 {
		t.Fatalf("fleet queue_wait latency: %+v, want one observation per grant", queueWait)
	}
}
