package remote

// End-to-end distributed tracing tests: a real (small) sct campaign over
// httptest loopback with fleet tracing on, reassembled into complete
// lease→submit traces; plus the worker self-watchdog.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"surw/internal/experiments"
	"surw/internal/obs"
)

func TestTracingDisabledByDefault(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(2), CoordinatorOptions{})
	srv := httptest.NewServer(c)
	defer srv.Close()

	la := leaseFor(t, srv.URL, "a")
	if la.Lease.Traceparent != "" {
		t.Fatalf("untraced lease carries traceparent %q", la.Lease.Traceparent)
	}
	if spans := c.Spans(); spans != nil {
		t.Fatalf("untraced coordinator recorded %d spans", len(spans))
	}
}

func TestEndToEndDistributedTrace(t *testing.T) {
	sc := sctScale()
	st := newMemStore()
	plan := experiments.SCTPlan(sc)
	c := NewCoordinator(st, plan, CoordinatorOptions{BatchSize: 3, Tracing: true})
	srv := httptest.NewServer(c)
	defer srv.Close()

	// Two workers drain the plan concurrently, each with span retention on
	// (as surwworker -trace would set).
	errs := make(chan error, 2)
	for _, name := range []string{"w1", "w2"} {
		w := newTestWorker(name, srv.URL)
		w.RetainSpans = true
		go func() { errs <- w.Run(context.Background()) }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if !c.Done() {
		t.Fatal("plan not drained")
	}

	spans := c.Spans()
	complete, total, firstErr := obs.CountComplete(spans)
	if total == 0 {
		t.Fatal("no traces assembled")
	}
	// Every lease in a clean run (no expiries, no duplicates) must
	// assemble into a complete end-to-end trace.
	if complete != total {
		t.Fatalf("%d/%d traces complete: %v", complete, total, firstErr)
	}

	// Span inventory: each trace crosses tracks and carries the session
	// and prefix-replay structure.
	traces := obs.AssembleTraces(spans)
	for i := range traces {
		tr := &traces[i]
		root := tr.Root()
		if root.Track != "coordinator" || root.Lease == "" || root.Target == "" {
			t.Fatalf("root span unannotated: %+v", root)
		}
		var workerTrack string
		for _, s := range tr.Spans {
			if s.Track != "coordinator" {
				workerTrack = s.Track
			}
		}
		if workerTrack != "w1" && workerTrack != "w2" {
			t.Fatalf("trace %s has no worker track", tr.ID)
		}
	}

	// GET /v1/spans serves the same spans as JSONL.
	resp, err := http.Get(srv.URL + PathSpans)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	served, err := obs.ReadSpansJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(spans) {
		t.Fatalf("/v1/spans served %d spans, coordinator holds %d", len(served), len(spans))
	}

	// The fleet latency view picked up worker-side operations.
	rs := c.Status()
	ops := map[string]bool{}
	for _, s := range rs.Latencies {
		ops[s.Op] = true
	}
	for _, want := range []string{"lease_rpc", "session", "checkpoint_fork", "submit", "queue_wait"} {
		if !ops[want] {
			t.Errorf("fleet latency view missing op %q (have %v)", want, ops)
		}
	}

	// The rendered fleet trace is valid Chrome trace_event JSON.
	var buf bytes.Buffer
	if err := obs.WriteSpanChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("fleet Chrome trace invalid: %v", err)
	}
}

// An expired lease's root span still closes (annotated as expired) so the
// trace is never leaked half-open.
func TestExpiredLeaseClosesSpan(t *testing.T) {
	st := newMemStore()
	clk := &clock{t: time.Unix(1_000_000, 0)}
	c := NewCoordinator(st, syntheticPlan(2), CoordinatorOptions{LeaseTTL: time.Minute, BatchSize: 2, Tracing: true})
	c.now = clk.now
	srv := httptest.NewServer(c)
	defer srv.Close()

	leaseFor(t, srv.URL, "dead")
	clk.advance(2 * time.Minute)
	c.Health() // forces expiry

	var found bool
	for _, s := range c.Spans() {
		if s.Name == "lease" && s.Err == "expired" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no expired lease span in %+v", c.Spans())
	}
}

func TestWatchLeaseFiresOnStall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var progress atomic.Int64
	fired := make(chan time.Duration, 4)
	go watchLease(ctx, 30*time.Millisecond, &progress, func(age time.Duration) { fired <- age })

	select {
	case age := <-fired:
		if age < 30*time.Millisecond {
			t.Fatalf("watchdog fired at age %v, before the deadline", age)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a stalled lease")
	}
	// It re-arms: a second stall after the first report also fires.
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not re-arm after firing")
	}
}

func TestWatchLeaseStaysQuietUnderProgress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var progress atomic.Int64
	fired := make(chan time.Duration, 1)
	go watchLease(ctx, 80*time.Millisecond, &progress, func(age time.Duration) { fired <- age })

	// Keep making progress well inside the deadline for several periods.
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		progress.Add(1)
	}
	cancel()
	select {
	case age := <-fired:
		t.Fatalf("watchdog fired (age %v) despite steady progress", age)
	case <-time.After(50 * time.Millisecond):
	}
}

// The worker wires the watchdog through: a Watchdog-enabled worker whose
// sessions complete normally never reports a stall.
func TestWorkerWatchdogQuietOnHealthyRun(t *testing.T) {
	sc := sctScale()
	st := newMemStore()
	c := NewCoordinator(st, experiments.SCTPlan(sc), CoordinatorOptions{BatchSize: 3})
	srv := httptest.NewServer(c)
	defer srv.Close()

	w := newTestWorker("w", srv.URL)
	w.Watchdog = 5 * time.Second
	var stalls atomic.Int64
	w.stalled = func(leaseID string, age time.Duration) { stalls.Add(1) }
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if n := stalls.Load(); n != 0 {
		t.Fatalf("healthy run reported %d stalls", n)
	}
	if !c.Done() {
		t.Fatal("plan not drained")
	}
}
