package remote

// Wire-protocol and failure-mode tests for the distributed-campaign
// subsystem, all over httptest loopback servers. The capstone,
// TestDistributedAggregatesAreByteIdentical, pins the tentpole invariant:
// a two-worker distributed campaign writes the same aggregate bytes as a
// single-process run — distribution is an execution-order change only.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"surw/internal/campaign"
	"surw/internal/experiments"
	"surw/internal/runner"
	"surw/internal/sctbench"
)

// memStore is an in-memory runner.SessionStore for pure protocol tests.
type memStore struct {
	mu sync.Mutex
	m  map[runner.SessionKey]*runner.Session
}

func newMemStore() *memStore { return &memStore{m: make(map[runner.SessionKey]*runner.Session)} }

func (s *memStore) Lookup(k runner.SessionKey) (*runner.Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[k]
	return sess, ok
}

func (s *memStore) Store(k runner.SessionKey, sess *runner.Session) (*runner.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = sess
	return sess, nil
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// clock is an injectable coordinator clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// syntheticPlan builds n same-cell keys (no real target needed).
func syntheticPlan(n int) []runner.SessionKey {
	plan := make([]runner.SessionKey, n)
	for i := range plan {
		plan[i] = runner.SessionKey{Target: "t/x", Algorithm: "RW", Limit: 100, Seed: 1, Session: i}
	}
	return plan
}

// postJSON sends one protocol request and decodes the response when out is
// non-nil, returning the HTTP status.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func leaseFor(t *testing.T, url, worker string) *LeaseResponse {
	t.Helper()
	var resp LeaseResponse
	if code := postJSON(t, url+PathLease, LeaseRequest{Worker: worker}, &resp); code != 200 {
		t.Fatalf("lease: status %d", code)
	}
	return &resp
}

func TestLeaseExpiryAndReassignment(t *testing.T) {
	st := newMemStore()
	clk := &clock{t: time.Unix(1_000_000, 0)}
	c := NewCoordinator(st, syntheticPlan(4), CoordinatorOptions{LeaseTTL: time.Minute, BatchSize: 4})
	c.now = clk.now
	srv := httptest.NewServer(c)
	defer srv.Close()

	la := leaseFor(t, srv.URL, "a")
	if la.Lease == nil || len(la.Lease.Sessions) != 4 {
		t.Fatalf("worker a got %+v, want a 4-session lease", la)
	}
	// While a holds the only batch, b polls empty-handed.
	if lb := leaseFor(t, srv.URL, "b"); lb.Lease != nil || lb.Done || lb.RetryMillis <= 0 {
		t.Fatalf("worker b got %+v, want a retry hint", lb)
	}
	hb := HeartbeatRequest{Worker: "a", LeaseID: la.Lease.ID}
	if code := postJSON(t, srv.URL+PathHeartbeat, hb, nil); code != http.StatusNoContent {
		t.Fatalf("live heartbeat: status %d, want 204", code)
	}

	// The heartbeat extended the lease: one TTL past the *grant* is still
	// alive, then silence kills it.
	clk.advance(45 * time.Second)
	if code := postJSON(t, srv.URL+PathHeartbeat, hb, nil); code != http.StatusNoContent {
		t.Fatalf("heartbeat after 45s of a refreshed lease: status %d, want 204", code)
	}
	clk.advance(2 * time.Minute)
	if code := postJSON(t, srv.URL+PathHeartbeat, hb, nil); code != http.StatusGone {
		t.Fatalf("heartbeat on expired lease: status %d, want 410", code)
	}

	// The expired batch is re-leased to b, sessions intact.
	lb := leaseFor(t, srv.URL, "b")
	if lb.Lease == nil || len(lb.Lease.Sessions) != 4 {
		t.Fatalf("reassignment: worker b got %+v", lb)
	}
	rs := c.Status()
	if rs.LeaseExpiries != 1 || rs.InFlightLeases != 1 {
		t.Fatalf("status after expiry: %+v, want 1 expiry, 1 in-flight", rs)
	}
}

// sessionRecordsFor fabricates plausible records for a synthetic lease.
func sessionRecordsFor(l *Lease) []campaign.Record {
	recs := make([]campaign.Record, len(l.Sessions))
	for i, s := range l.Sessions {
		k := runner.SessionKey{Target: l.Target, Algorithm: l.Algorithm, Limit: l.Limit, Seed: l.Seed, Session: s}
		recs[i] = campaign.NewRecord(k, &runner.Session{FirstBug: -1, Schedules: l.Limit, Bugs: map[string]int{}})
	}
	return recs
}

func TestDuplicateResultsAreDropped(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(3), CoordinatorOptions{BatchSize: 8})
	srv := httptest.NewServer(c)
	defer srv.Close()

	la := leaseFor(t, srv.URL, "a")
	req := ResultRequest{Worker: "a", LeaseID: la.Lease.ID, Records: sessionRecordsFor(la.Lease)}
	var first, second ResultResponse
	if code := postJSON(t, srv.URL+PathResult, req, &first); code != 200 {
		t.Fatalf("submit: status %d", code)
	}
	if first.Accepted != 3 || first.Duplicates != 0 {
		t.Fatalf("first submission: %+v, want 3 accepted", first)
	}
	// The retry of the same submission (lost response, lease churn, a
	// second worker racing a requeued batch) is dropped whole.
	if code := postJSON(t, srv.URL+PathResult, req, &second); code != 200 {
		t.Fatalf("resubmit: status %d", code)
	}
	if second.Accepted != 0 || second.Duplicates != 3 {
		t.Fatalf("duplicate submission: %+v, want 3 duplicates", second)
	}
	if st.len() != 3 {
		t.Fatalf("store holds %d records, want 3", st.len())
	}
	if !c.Done() {
		t.Fatal("coordinator not done after full plan stored")
	}
	if rs := c.Status(); rs.DuplicateResults != 3 || rs.SessionsDone != 3 {
		t.Fatalf("status: %+v", rs)
	}
	// With the plan exhausted, the next poll says so.
	if lb := leaseFor(t, srv.URL, "b"); !lb.Done {
		t.Fatalf("lease after completion: %+v, want done", lb)
	}
}

func TestResultOutsidePlanRejected(t *testing.T) {
	st := newMemStore()
	c := NewCoordinator(st, syntheticPlan(2), CoordinatorOptions{})
	srv := httptest.NewServer(c)
	defer srv.Close()

	stray := campaign.NewRecord(
		runner.SessionKey{Target: "not/planned", Algorithm: "RW", Limit: 5, Session: 0},
		&runner.Session{FirstBug: -1, Schedules: 5, Bugs: map[string]int{}})
	code := postJSON(t, srv.URL+PathResult, ResultRequest{Worker: "a", Records: []campaign.Record{stray}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("stray submission: status %d, want 400", code)
	}
	if st.len() != 0 {
		t.Fatal("stray record reached the store")
	}
}

// sctScale is the small two-cell grid the execution tests distribute.
func sctScale() experiments.Scale {
	return experiments.Scale{
		Seed:           11,
		Sessions:       3,
		Limit:          200,
		SafeStackLimit: 200,
		Workers:        2,
		SCTTargets:     []string{"CS/reorder_4", "CS/twostage_20"},
		SCTAlgs:        []string{"SURW", "RW"},
	}
}

func newTestWorker(name, base string) *Worker {
	return &Worker{
		Coordinator: base,
		Name:        name,
		Resolve:     sctbench.ByName,
		Workers:     2,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

func TestWorkerKilledMidBatchIsReassigned(t *testing.T) {
	sc := sctScale()
	st := newMemStore()
	clk := &clock{t: time.Unix(1_000_000, 0)}
	plan := experiments.SCTPlan(sc)
	c := NewCoordinator(st, plan, CoordinatorOptions{LeaseTTL: time.Minute, BatchSize: 3})
	c.now = clk.now
	srv := httptest.NewServer(c)
	defer srv.Close()

	// Worker "dead" takes a lease and is killed mid-batch: it never
	// heartbeats, never submits.
	if ld := leaseFor(t, srv.URL, "dead"); ld.Lease == nil {
		t.Fatal("dead worker got no lease")
	}
	clk.advance(2 * time.Minute)

	// A live worker drains the whole plan, the dead worker's batch
	// included.
	if err := newTestWorker("live", srv.URL).Run(context.Background()); err != nil {
		t.Fatalf("live worker: %v", err)
	}
	if !c.Done() {
		t.Fatal("coordinator not done after live worker drained the plan")
	}
	if st.len() != len(plan) {
		t.Fatalf("store holds %d sessions, want %d", st.len(), len(plan))
	}
	rs := c.Status()
	if rs.LeaseExpiries < 1 {
		t.Fatalf("status %+v, want at least one lease expiry", rs)
	}

	// Spot-check determinism: the reassigned sessions match a direct
	// local execution.
	for _, k := range plan[:3] {
		tgt, ok := sctbench.ByName(k.Target)
		if !ok {
			t.Fatalf("target %q missing", k.Target)
		}
		cfg := runner.Config{Limit: k.Limit, Seed: k.Seed, StopAtFirstBug: k.StopAtFirstBug}
		want, err := runner.RunSession(context.Background(), tgt, k.Algorithm, cfg, k.Session)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := st.Lookup(k)
		if !ok {
			t.Fatalf("session %v missing from store", k)
		}
		if got.FirstBug != want.FirstBug || got.Schedules != want.Schedules {
			t.Fatalf("session %v: distributed %+v, local %+v", k, got, want)
		}
	}
}

func TestCoordinatorRestartMidCampaign(t *testing.T) {
	sc := sctScale()
	plan := experiments.SCTPlan(sc)
	store, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// First incarnation: one batch gets leased, executed, and submitted,
	// then the coordinator "crashes" (server closed, state dropped).
	c1 := NewCoordinator(store, plan, CoordinatorOptions{BatchSize: 2})
	srv1 := httptest.NewServer(c1)
	l1 := leaseFor(t, srv1.URL, "a")
	if l1.Lease == nil {
		t.Fatal("no lease from first coordinator")
	}
	tgt, _ := sctbench.ByName(l1.Lease.Target)
	cfg := runner.Config{Limit: l1.Lease.Limit, Seed: l1.Lease.Seed, StopAtFirstBug: l1.Lease.StopAtFirstBug}
	var recs []campaign.Record
	for _, s := range l1.Lease.Sessions {
		sess, err := runner.RunSession(context.Background(), tgt, l1.Lease.Algorithm, cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, campaign.NewRecord(runner.KeyFor(tgt, l1.Lease.Algorithm, cfg, s), sess))
	}
	var rr ResultResponse
	if code := postJSON(t, srv1.URL+PathResult, ResultRequest{Worker: "a", LeaseID: l1.Lease.ID, Records: recs}, &rr); code != 200 {
		t.Fatalf("submit to first coordinator: status %d", code)
	}
	// A second lease is in flight when the coordinator dies.
	l2 := leaseFor(t, srv1.URL, "a")
	if l2.Lease == nil {
		t.Fatal("no second lease")
	}
	srv1.Close()

	// Second incarnation over the same store and plan: the submitted batch
	// is already done, everything else (the in-flight lease included) is
	// pending again.
	c2 := NewCoordinator(store, plan, CoordinatorOptions{BatchSize: 2})
	srv2 := httptest.NewServer(c2)
	defer srv2.Close()
	if rs := c2.Status(); rs.SessionsDone != len(recs) || rs.InFlightLeases != 0 {
		t.Fatalf("restarted coordinator status %+v, want %d done, 0 in flight", rs, len(recs))
	}
	// The old incarnation's lease ID means nothing to the new one: the
	// worker is told to stop heartbeating...
	code := postJSON(t, srv2.URL+PathHeartbeat, HeartbeatRequest{Worker: "a", LeaseID: l2.Lease.ID}, nil)
	if code != http.StatusGone {
		t.Fatalf("stale heartbeat: status %d, want 410", code)
	}
	// ...but a resubmission of already-stored work is still absorbed.
	if code := postJSON(t, srv2.URL+PathResult, ResultRequest{Worker: "a", LeaseID: l1.Lease.ID, Records: recs}, &rr); code != 200 {
		t.Fatalf("resubmit to restarted coordinator: status %d", code)
	}
	if rr.Accepted != 0 || rr.Duplicates != len(recs) {
		t.Fatalf("resubmission landed as %+v, want all duplicates", rr)
	}

	// A worker drains the rest; the campaign completes.
	if err := newTestWorker("b", srv2.URL).Run(context.Background()); err != nil {
		t.Fatalf("worker against restarted coordinator: %v", err)
	}
	if !c2.Done() {
		t.Fatal("restarted coordinator never completed")
	}
	if store.Len() != len(plan) {
		t.Fatalf("store holds %d sessions, want %d", store.Len(), len(plan))
	}
}

func TestDistributedAggregatesAreByteIdentical(t *testing.T) {
	sc := sctScale()

	// Reference: a plain single-process campaign into its own store.
	localStore, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer localStore.Close()
	scLocal := sc
	scLocal.Store = localStore
	experiments.SCTBench(scLocal, nil)
	var localAgg bytes.Buffer
	if err := campaign.WriteAggregates(&localAgg, localStore); err != nil {
		t.Fatal(err)
	}

	// Distributed: the same plan drained by two concurrent loopback
	// workers through the coordinator.
	distStore, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer distStore.Close()
	c := NewCoordinator(distStore, experiments.SCTPlan(sc), CoordinatorOptions{BatchSize: 2})
	srv := httptest.NewServer(c)
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = newTestWorker(fmt.Sprintf("w%d", i), srv.URL).Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !c.Done() {
		t.Fatal("coordinator not done")
	}
	var distAgg bytes.Buffer
	if err := campaign.WriteAggregates(&distAgg, distStore); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(localAgg.Bytes(), distAgg.Bytes()) {
		t.Fatalf("distributed aggregates diverged from local run:\nlocal %d bytes, distributed %d bytes",
			localAgg.Len(), distAgg.Len())
	}
}
