// Package progfuzz generates small random — but well-formed and
// deadlock-free — concurrent programs for robustness testing: every
// generated program acquires locks in a global order (so it cannot
// deadlock), joins every thread it spawns, contains no assertions, and is
// deterministic given its seed. Any failure, truncation, or
// nondeterminism an algorithm exhibits on a generated program is therefore
// a bug in the scheduler or the algorithm, not in the program.
package progfuzz

import (
	"fmt"
	"math/rand"

	"surw/internal/sched"
)

// Config bounds the generated programs.
type Config struct {
	// MaxThreads bounds the total number of spawned threads (default 4).
	MaxThreads int
	// MaxOps bounds the straight-line operations per thread (default 8).
	MaxOps int
	// Vars is the number of shared variables (default 3).
	Vars int
	// Mutexes is the number of mutexes (default 2).
	Mutexes int
	// SpawnDepth bounds nesting of spawns (default 2).
	SpawnDepth int
}

func (c Config) normalized() Config {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 4
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 8
	}
	if c.Vars <= 0 {
		c.Vars = 3
	}
	if c.Mutexes <= 0 {
		c.Mutexes = 2
	}
	if c.SpawnDepth <= 0 {
		c.SpawnDepth = 2
	}
	return c
}

// op is one generated operation.
type op struct {
	kind  opKind
	arg   int   // var / mutex index, or thread plan index for spawn
	locks []int // for critical sections: ascending mutex indices
	body  []op  // ops inside the critical section
}

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opAdd
	opYield
	opCS    // critical section: lock(s) in order, body, unlock in reverse
	opSpawn // spawn the thread plan in arg
)

// Program is a generated program: a tree of thread plans.
type Program struct {
	cfg     Config
	seed    int64
	threads [][]op // plan 0 is the root thread
	spawns  int
}

// Gen generates a program from a seed.
func Gen(seed int64, cfg Config) *Program {
	cfg = cfg.normalized()
	p := &Program{cfg: cfg, seed: seed}
	rng := rand.New(rand.NewSource(seed))
	p.threads = append(p.threads, nil) // root, filled below
	root := p.genOps(rng, 0, cfg.SpawnDepth)
	p.threads[0] = root
	return p
}

// genOps builds one thread's op list, possibly planning child threads.
func (p *Program) genOps(rng *rand.Rand, planIdx, depth int) []op {
	n := 1 + rng.Intn(p.cfg.MaxOps)
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 3:
			ops = append(ops, op{kind: opLoad, arg: rng.Intn(p.cfg.Vars)})
		case k < 5:
			ops = append(ops, op{kind: opStore, arg: rng.Intn(p.cfg.Vars)})
		case k < 7:
			ops = append(ops, op{kind: opAdd, arg: rng.Intn(p.cfg.Vars)})
		case k < 8:
			ops = append(ops, op{kind: opYield})
		case k < 9:
			// Critical section with 1-2 locks acquired in global order.
			nl := 1 + rng.Intn(minInt(2, p.cfg.Mutexes))
			locks := rng.Perm(p.cfg.Mutexes)[:nl]
			sortInts(locks)
			body := []op{{kind: opAdd, arg: rng.Intn(p.cfg.Vars)}}
			if rng.Intn(2) == 0 {
				body = append(body, op{kind: opLoad, arg: rng.Intn(p.cfg.Vars)})
			}
			ops = append(ops, op{kind: opCS, locks: locks, body: body})
		default:
			if depth > 0 && p.spawns+1 < p.cfg.MaxThreads {
				p.spawns++
				child := len(p.threads)
				p.threads = append(p.threads, nil)
				p.threads[child] = p.genOps(rng, child, depth-1)
				ops = append(ops, op{kind: opSpawn, arg: child})
			} else {
				ops = append(ops, op{kind: opYield})
			}
		}
	}
	return ops
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Threads returns the number of thread plans (including the root).
func (p *Program) Threads() int { return len(p.threads) }

// Prog returns the runnable program. Every spawned thread is joined, locks
// nest in a global order, and a behaviour fingerprint of the final shared
// state is reported.
func (p *Program) Prog() func(*sched.Thread) {
	return func(t *sched.Thread) {
		vars := make([]*sched.Var, p.cfg.Vars)
		for i := range vars {
			vars[i] = t.NewVar(fmt.Sprintf("v%d", i), 0)
		}
		mus := make([]*sched.Mutex, p.cfg.Mutexes)
		for i := range mus {
			mus[i] = t.NewMutex(fmt.Sprintf("m%d", i))
		}
		var runPlan func(w *sched.Thread, plan []op)
		runOps := func(w *sched.Thread, ops []op) []*sched.Handle {
			var hs []*sched.Handle
			for _, o := range ops {
				switch o.kind {
				case opLoad:
					vars[o.arg].Load(w)
				case opStore:
					vars[o.arg].Store(w, int64(o.arg)+1)
				case opAdd:
					vars[o.arg].Add(w, 1)
				case opYield:
					w.Yield()
				case opCS:
					for _, m := range o.locks {
						mus[m].Lock(w)
					}
					for _, b := range o.body {
						switch b.kind {
						case opAdd:
							vars[b.arg].Add(w, 1)
						case opLoad:
							vars[b.arg].Load(w)
						}
					}
					for i := len(o.locks) - 1; i >= 0; i-- {
						mus[o.locks[i]].Unlock(w)
					}
				case opSpawn:
					plan := p.threads[o.arg]
					hs = append(hs, w.Go(func(c *sched.Thread) { runPlan(c, plan) }))
				}
			}
			return hs
		}
		runPlan = func(w *sched.Thread, plan []op) {
			hs := runOps(w, plan)
			w.JoinAll(hs...)
		}
		runPlan(t, p.threads[0])
		var sum int64
		for _, v := range vars {
			sum = sum*31 + v.Peek()
		}
		t.SetBehavior(fmt.Sprintf("%d", sum))
	}
}
