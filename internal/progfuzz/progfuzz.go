// Package progfuzz generates small random — but well-formed — concurrent
// programs for robustness testing, in three grammars:
//
//   - Gen: the mutex/shared-variable grammar. Locks are acquired in a
//     global order (so programs cannot deadlock), every spawned thread is
//     joined, and there are no assertions.
//   - GenSync: the extended grammar adds channels, semaphores, waitgroups,
//     and condvar-backed gates. Deadlock freedom holds by a phased
//     discipline: every thread performs its producing operations (sends,
//     semaphore Vs, waitgroup Dones, gate opens — all non-blocking given
//     ample channel capacity) and its spawns before any consuming operation
//     (receives, semaphore Ps, waitgroup/gate waits), and per resource the
//     planned production covers the planned consumption. In any globally
//     blocked state all live threads would be past their produce phase, so
//     every consume would have a token available and every sleeping condvar
//     waiter would have been woken by the (already executed) producer —
//     a contradiction; see the crosscheck oracle tests, which verify this
//     argument exhaustively on small instances.
//   - GenDeadlock: the intentionally deadlock-capable grammar. Contender
//     threads each nest one two-lock critical section with a random lock
//     order; deadlock is reachable if and only if the per-thread lock-order
//     edges form a directed cycle, and that expectation is computed and
//     returned alongside the program as an oracle.
//
// All grammars are deterministic given their seed. Any failure (other than
// an expected deadlock), truncation, or nondeterminism an algorithm
// exhibits on a generated program is therefore a bug in the scheduler or
// the algorithm, not in the program.
package progfuzz

import (
	"fmt"
	"math/rand"

	"surw/internal/sched"
)

// Config bounds the generated programs.
type Config struct {
	// MaxThreads bounds the total number of spawned threads (default 4).
	MaxThreads int
	// MaxOps bounds the straight-line operations per thread (default 8).
	MaxOps int
	// Vars is the number of shared variables (default 3).
	Vars int
	// Mutexes is the number of mutexes (default 2).
	Mutexes int
	// SpawnDepth bounds nesting of spawns (default 2).
	SpawnDepth int
	// MinThreads forces at least this many threads (root included) by
	// appending spawns of extra leaf children to the root plan when the
	// grammar rolled fewer. Zero keeps the purely probabilistic spawning;
	// differential harnesses set it so generated programs are reliably
	// concurrent rather than vacuously sequential.
	MinThreads int

	// Channels, Semaphores, and Gates size the sync-object pools of the
	// GenSync grammar (defaults 2, 1, 1; ignored by Gen). A gate is a
	// condvar-protected monotonic flag: open-once, wait-until-open.
	Channels   int
	Semaphores int
	Gates      int
	// NoWaitGroup drops the waitgroup from the GenSync grammar.
	NoWaitGroup bool
}

func (c Config) normalized() Config {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 4
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 8
	}
	if c.Vars <= 0 {
		c.Vars = 3
	}
	if c.Mutexes <= 0 {
		c.Mutexes = 2
	}
	if c.SpawnDepth <= 0 {
		c.SpawnDepth = 2
	}
	if c.Channels <= 0 {
		c.Channels = 2
	}
	if c.Semaphores <= 0 {
		c.Semaphores = 1
	}
	if c.Gates <= 0 {
		c.Gates = 1
	}
	if c.MinThreads > c.MaxThreads {
		c.MinThreads = c.MaxThreads
	}
	return c
}

// op is one generated operation.
type op struct {
	kind  opKind
	arg   int   // var/mutex/channel/sem/gate index, spawn plan, or wg delta
	dst   int   // send value, or destination var index for recv
	locks []int // for critical sections: mutex indices in acquisition order
	body  []op  // ops inside the critical section
}

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opAdd
	opYield
	opCS       // critical section: lock(s) in order, body, unlock in reverse
	opSpawn    // spawn the thread plan in arg
	opSend     // send dst on channel arg (producing; never blocks: ample cap)
	opRecv     // recv from channel arg into var dst (consuming; may block)
	opSemV     // V on semaphore arg (producing)
	opSemP     // P on semaphore arg (consuming; may block)
	opWgAdd    // Add(arg) on the waitgroup (root, before all spawns)
	opWgDone   // Done on the waitgroup (producing)
	opWgWait   // Wait on the waitgroup (consuming; may block)
	opGateOpen // open gate arg: lock, set flag, broadcast, unlock (producing)
	opGateWait // wait for gate arg: lock, wait while unset, unlock (consuming)
)

// producing reports whether k is a non-blocking produce-phase op of the
// GenSync grammar (used by tests to validate the phase discipline).
func (k opKind) producing() bool {
	switch k {
	case opRecv, opSemP, opWgWait, opGateWait:
		return false
	}
	return true
}

// Program is a generated program: a tree of thread plans.
type Program struct {
	cfg     Config
	seed    int64
	threads [][]op // plan 0 is the root thread
	spawns  int

	chans   int
	chanCap []int // per channel: total sends (so sends never block)
	sems    int
	gates   int
	useWG   bool

	expectDeadlock bool
}

// Gen generates a program from a seed.
func Gen(seed int64, cfg Config) *Program {
	cfg = cfg.normalized()
	p := &Program{cfg: cfg, seed: seed}
	rng := rand.New(rand.NewSource(seed))
	p.threads = append(p.threads, nil) // root, filled below
	root := p.genOps(rng, 0, cfg.SpawnDepth)
	for p.spawns+1 < cfg.MinThreads {
		p.spawns++
		child := len(p.threads)
		p.threads = append(p.threads, nil)
		p.threads[child] = p.genOps(rng, child, 0)
		// Prepend so the root's own ops run concurrently with the forced
		// child; appending would leave the root nothing left to interleave.
		root = append([]op{{kind: opSpawn, arg: child}}, root...)
	}
	p.threads[0] = root
	return p
}

// genOps builds one thread's op list, possibly planning child threads.
func (p *Program) genOps(rng *rand.Rand, planIdx, depth int) []op {
	n := 1 + rng.Intn(p.cfg.MaxOps)
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 3:
			ops = append(ops, op{kind: opLoad, arg: rng.Intn(p.cfg.Vars)})
		case k < 5:
			ops = append(ops, op{kind: opStore, arg: rng.Intn(p.cfg.Vars)})
		case k < 7:
			ops = append(ops, op{kind: opAdd, arg: rng.Intn(p.cfg.Vars)})
		case k < 8:
			ops = append(ops, op{kind: opYield})
		case k < 9:
			// Critical section with 1-2 locks acquired in global order.
			nl := 1 + rng.Intn(minInt(2, p.cfg.Mutexes))
			locks := rng.Perm(p.cfg.Mutexes)[:nl]
			sortInts(locks)
			body := []op{{kind: opAdd, arg: rng.Intn(p.cfg.Vars)}}
			if rng.Intn(2) == 0 {
				body = append(body, op{kind: opLoad, arg: rng.Intn(p.cfg.Vars)})
			}
			ops = append(ops, op{kind: opCS, locks: locks, body: body})
		default:
			if depth > 0 && p.spawns+1 < p.cfg.MaxThreads {
				p.spawns++
				child := len(p.threads)
				p.threads = append(p.threads, nil)
				p.threads[child] = p.genOps(rng, child, depth-1)
				ops = append(ops, op{kind: opSpawn, arg: child})
			} else {
				ops = append(ops, op{kind: opYield})
			}
		}
	}
	return ops
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Threads returns the number of thread plans (including the root).
func (p *Program) Threads() int { return len(p.threads) }

// ExpectDeadlock reports whether the program was generated by GenDeadlock
// with a reachable deadlock (always false for Gen and GenSync programs).
func (p *Program) ExpectDeadlock() bool { return p.expectDeadlock }

// GenSync generates a program from the extended grammar: on top of Gen's
// variables, ordered critical sections, and spawns, threads send on
// buffered channels, V semaphores, open condvar gates, and Done a shared
// waitgroup during their produce phase, then receive, P, and wait during
// their consume phase. Per-resource production covers consumption and
// channel capacity equals total sends, so generated programs cannot
// deadlock (see the package comment for the argument).
func GenSync(seed int64, cfg Config) *Program {
	cfg = cfg.normalized()
	p := &Program{
		cfg:   cfg,
		seed:  seed,
		chans: cfg.Channels,
		sems:  cfg.Semaphores,
		gates: cfg.Gates,
		useWG: !cfg.NoWaitGroup,
	}
	rng := rand.New(rand.NewSource(seed))
	p.threads = append(p.threads, nil)
	p.threads[0] = p.genSyncOps(rng, cfg.SpawnDepth)
	for p.spawns+1 < cfg.MinThreads {
		p.spawns++
		child := len(p.threads)
		p.threads = append(p.threads, nil)
		p.threads[child] = p.genSyncOps(rng, 0)
		// Prepend for maximal overlap with the root's own ops (the wgAdd,
		// when present, is prepended later and still runs first).
		p.threads[0] = append([]op{{kind: opSpawn, arg: child}}, p.threads[0]...)
	}

	// Tally production across every plan.
	sends := make([]int, p.chans)
	vs := make([]int, p.sems)
	opens := make([]int, p.gates)
	dones := 0
	for _, plan := range p.threads {
		for _, o := range plan {
			switch o.kind {
			case opSend:
				sends[o.arg]++
			case opSemV:
				vs[o.arg]++
			case opGateOpen:
				opens[o.arg]++
			case opWgDone:
				dones++
			}
		}
	}
	p.chanCap = make([]int, p.chans)
	for c, n := range sends {
		p.chanCap[c] = maxInt(1, n)
	}

	// Distribute consume ops, never exceeding a resource's production.
	consume := make([][]op, len(p.threads))
	addConsume := func(o op) {
		ti := rng.Intn(len(p.threads))
		consume[ti] = append(consume[ti], o)
	}
	for c, n := range sends {
		for i := rng.Intn(n + 1); i > 0; i-- {
			addConsume(op{kind: opRecv, arg: c, dst: rng.Intn(cfg.Vars)})
		}
	}
	for s, n := range vs {
		for i := rng.Intn(n + 1); i > 0; i-- {
			addConsume(op{kind: opSemP, arg: s})
		}
	}
	for g, n := range opens {
		if n == 0 {
			continue
		}
		for i := rng.Intn(3); i > 0; i-- {
			addConsume(op{kind: opGateWait, arg: g})
		}
	}
	if p.useWG && dones > 0 {
		for i := 1 + rng.Intn(2); i > 0; i-- {
			addConsume(op{kind: opWgWait})
		}
		// The Add precedes every spawn (root runs it first), so no Done can
		// drive the counter negative and Wait unblocks exactly once all
		// planned Dones have run.
		p.threads[0] = append([]op{{kind: opWgAdd, arg: dones}}, p.threads[0]...)
	}
	for ti, ops := range consume {
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		p.threads[ti] = append(p.threads[ti], ops...)
	}
	return p
}

// genSyncOps builds one thread's produce-phase op list (non-blocking ops
// and spawns only; consume ops are distributed afterwards).
func (p *Program) genSyncOps(rng *rand.Rand, depth int) []op {
	n := 1 + rng.Intn(p.cfg.MaxOps)
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(14); {
		case k < 2:
			ops = append(ops, op{kind: opLoad, arg: rng.Intn(p.cfg.Vars)})
		case k < 4:
			ops = append(ops, op{kind: opStore, arg: rng.Intn(p.cfg.Vars)})
		case k < 5:
			ops = append(ops, op{kind: opAdd, arg: rng.Intn(p.cfg.Vars)})
		case k < 6:
			ops = append(ops, op{kind: opYield})
		case k < 7:
			nl := 1 + rng.Intn(minInt(2, p.cfg.Mutexes))
			locks := rng.Perm(p.cfg.Mutexes)[:nl]
			sortInts(locks)
			ops = append(ops, op{kind: opCS, locks: locks,
				body: []op{{kind: opAdd, arg: rng.Intn(p.cfg.Vars)}}})
		case k < 9:
			ops = append(ops, op{kind: opSend, arg: rng.Intn(p.chans), dst: 1 + rng.Intn(9)})
		case k < 10:
			ops = append(ops, op{kind: opSemV, arg: rng.Intn(p.sems)})
		case k < 11:
			ops = append(ops, op{kind: opGateOpen, arg: rng.Intn(p.gates)})
		case k < 12:
			if p.useWG {
				ops = append(ops, op{kind: opWgDone})
			} else {
				ops = append(ops, op{kind: opYield})
			}
		default:
			if depth > 0 && p.spawns+1 < p.cfg.MaxThreads {
				p.spawns++
				child := len(p.threads)
				p.threads = append(p.threads, nil)
				p.threads[child] = p.genSyncOps(rng, depth-1)
				ops = append(ops, op{kind: opSpawn, arg: child})
			} else {
				ops = append(ops, op{kind: opYield})
			}
		}
	}
	return ops
}

// GenDeadlock generates an intentionally deadlock-capable program and its
// computed oracle: contender threads each run noise operations and exactly
// one two-lock nested critical section with a random acquisition order.
// Deadlock is reachable iff the per-thread lock-order edges form a directed
// cycle (each edge comes from a distinct thread, all contenders run
// concurrently, and nothing else blocks), which is what the returned flag
// reports.
func GenDeadlock(seed int64, cfg Config) (*Program, bool) {
	cfg = cfg.normalized()
	if cfg.Mutexes < 2 {
		cfg.Mutexes = 2
	}
	p := &Program{cfg: cfg, seed: seed}
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(2) // contender threads
	edges := make([][2]int, n)
	for i := range edges {
		a := rng.Intn(cfg.Mutexes)
		b := rng.Intn(cfg.Mutexes - 1)
		if b >= a {
			b++
		}
		edges[i] = [2]int{a, b}
	}
	p.expectDeadlock = lockOrderCycle(edges, cfg.Mutexes)

	var root []op
	for i := 0; i < n; i++ {
		plan := make([]op, 0, 4)
		if rng.Intn(2) == 1 { // noise: never blocks, kept to one op so the
			// schedule space stays exhaustively enumerable in tests
			plan = append(plan, op{kind: opAdd, arg: rng.Intn(cfg.Vars)})
		}
		plan = append(plan, op{kind: opCS,
			locks: []int{edges[i][0], edges[i][1]},
			body:  []op{{kind: opAdd, arg: rng.Intn(cfg.Vars)}}})
		child := len(p.threads) + 1 // plan 0 (root) appended below
		root = append(root, op{kind: opSpawn, arg: child})
		p.threads = append(p.threads, plan)
	}
	p.threads = append([][]op{root}, p.threads...)
	p.spawns = n
	return p, p.expectDeadlock
}

// lockOrderCycle reports whether the directed graph with one hold→acquire
// edge per contender has a cycle.
func lockOrderCycle(edges [][2]int, mutexes int) bool {
	adj := make([][]int, mutexes)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	color := make([]int, mutexes) // 0 white, 1 gray, 2 black
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = 1
		for _, v := range adj[u] {
			if color[v] == 1 || (color[v] == 0 && visit(v)) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for u := 0; u < mutexes; u++ {
		if color[u] == 0 && visit(u) {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// gate is a condvar-protected monotonic flag: open-once, wait-until-open.
type gate struct {
	mu   *sched.Mutex
	cv   *sched.Cond
	flag *sched.Var
}

// Prog returns the runnable program. Every spawned thread is joined, and a
// behaviour fingerprint of the final shared state is reported. Gen and
// GenSync programs cannot deadlock; GenDeadlock programs deadlock on some
// schedules exactly when ExpectDeadlock reports true.
func (p *Program) Prog() func(*sched.Thread) {
	return func(t *sched.Thread) {
		vars := make([]*sched.Var, p.cfg.Vars)
		for i := range vars {
			vars[i] = t.NewVar(fmt.Sprintf("v%d", i), 0)
		}
		mus := make([]*sched.Mutex, p.cfg.Mutexes)
		for i := range mus {
			mus[i] = t.NewMutex(fmt.Sprintf("m%d", i))
		}
		chans := make([]*sched.Chan[int64], p.chans)
		for i := range chans {
			chans[i] = sched.NewChan[int64](t, fmt.Sprintf("c%d", i), p.chanCap[i])
		}
		sems := make([]*sched.Semaphore, p.sems)
		for i := range sems {
			sems[i] = t.NewSemaphore(fmt.Sprintf("s%d", i), 0)
		}
		gates := make([]gate, p.gates)
		for i := range gates {
			mu := t.NewMutex(fmt.Sprintf("g%d.mu", i))
			gates[i] = gate{
				mu:   mu,
				cv:   t.NewCond(fmt.Sprintf("g%d.cv", i), mu),
				flag: t.NewVar(fmt.Sprintf("g%d.flag", i), 0),
			}
		}
		var wg *sched.WaitGroup
		if p.useWG {
			wg = t.NewWaitGroup("wg")
		}
		var runPlan func(w *sched.Thread, plan []op)
		runOps := func(w *sched.Thread, ops []op) []*sched.Handle {
			var hs []*sched.Handle
			for _, o := range ops {
				switch o.kind {
				case opLoad:
					vars[o.arg].Load(w)
				case opStore:
					vars[o.arg].Store(w, int64(o.arg)+1)
				case opAdd:
					vars[o.arg].Add(w, 1)
				case opYield:
					w.Yield()
				case opCS:
					for _, m := range o.locks {
						mus[m].Lock(w)
					}
					for _, b := range o.body {
						switch b.kind {
						case opAdd:
							vars[b.arg].Add(w, 1)
						case opLoad:
							vars[b.arg].Load(w)
						}
					}
					for i := len(o.locks) - 1; i >= 0; i-- {
						mus[o.locks[i]].Unlock(w)
					}
				case opSpawn:
					plan := p.threads[o.arg]
					hs = append(hs, w.Go(func(c *sched.Thread) { runPlan(c, plan) }))
				case opSend:
					chans[o.arg].Send(w, int64(o.dst))
				case opRecv:
					v, _ := chans[o.arg].Recv(w)
					vars[o.dst].Add(w, v)
				case opSemV:
					sems[o.arg].V(w)
				case opSemP:
					sems[o.arg].P(w)
				case opWgAdd:
					wg.Add(w, o.arg)
				case opWgDone:
					wg.Done(w)
				case opWgWait:
					wg.Wait(w)
				case opGateOpen:
					g := gates[o.arg]
					g.mu.Lock(w)
					g.flag.Store(w, 1)
					g.cv.Broadcast(w)
					g.mu.Unlock(w)
				case opGateWait:
					g := gates[o.arg]
					g.mu.Lock(w)
					for g.flag.Load(w) == 0 {
						g.cv.Wait(w)
					}
					g.mu.Unlock(w)
				}
			}
			return hs
		}
		runPlan = func(w *sched.Thread, plan []op) {
			hs := runOps(w, plan)
			w.JoinAll(hs...)
		}
		runPlan(t, p.threads[0])
		var sum int64
		for _, v := range vars {
			sum = sum*31 + v.Peek()
		}
		t.SetBehavior(fmt.Sprintf("%d", sum))
	}
}
