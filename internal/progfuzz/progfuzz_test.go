package progfuzz

import (
	"math/rand"
	"testing"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/sched"
	"surw/internal/systematic"
)

// algorithms under robustness test.
var algNames = []string{"SURW", "URW", "POS", "RAPOS", "PCT-3", "PCT-10", "RW", "N-U", "N-S"}

func TestGeneratedProgramsAreDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p1 := Gen(seed, Config{})
		p2 := Gen(seed, Config{})
		if p1.Threads() != p2.Threads() {
			t.Fatalf("seed %d: generation nondeterministic", seed)
		}
		a := sched.Run(p1.Prog(), core.NewRandomWalk(), sched.Options{Seed: 7})
		b := sched.Run(p2.Prog(), core.NewRandomWalk(), sched.Options{Seed: 7})
		if a.InterleavingHash != b.InterleavingHash || a.Behavior != b.Behavior {
			t.Fatalf("seed %d: runs diverged", seed)
		}
	}
}

// TestNoAlgorithmBreaksGeneratedPrograms is the core robustness sweep:
// generated programs are deadlock-free and assertion-free, so any failure
// or truncation is a framework bug.
func TestNoAlgorithmBreaksGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := Gen(seed, Config{})
		prog := p.Prog()
		prof, err := profile.Collect(prog, profile.Options{Seed: 999})
		if err != nil {
			t.Fatalf("gen %d: profiling truncated: %v", seed, err)
		}
		for _, name := range algNames {
			alg, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			var info *sched.ProgramInfo
			switch name {
			case "SURW", "N-U":
				if sel, ok := prof.SelectSingleVar(newRng(seed)); ok {
					info = prof.Instantiate(sel)
				} else {
					info = prof.Instantiate(prof.SelectAll())
				}
			case "URW", "N-S", "PCT-3", "PCT-10":
				info = prof.Instantiate(prof.SelectAll())
			}
			for s := int64(0); s < 15; s++ {
				r := sched.Run(prog, alg, sched.Options{Seed: s, Info: info, MaxSteps: 100_000})
				if r.Buggy() {
					t.Fatalf("gen %d, %s, seed %d: spurious failure %v", seed, name, s, r.Failure)
				}
				if r.Truncated {
					t.Fatalf("gen %d, %s, seed %d: truncated", seed, name, s)
				}
			}
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestSamplersWithinOracleSpace cross-checks random samplers against the
// exhaustive oracle on tiny generated programs.
func TestSamplersWithinOracleSpace(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 30 && checked < 5; seed++ {
		p := Gen(seed, Config{MaxThreads: 3, MaxOps: 3, Vars: 2, Mutexes: 1})
		prog := p.Prog()
		oracle := systematic.Explore(prog, systematic.Options{MaxSchedules: 60_000})
		if !oracle.Exhausted {
			continue // too large; skip
		}
		checked++
		for _, name := range []string{"RW", "POS", "RAPOS", "SURW"} {
			alg, _ := core.New(name)
			for s := int64(0); s < 200; s++ {
				r := sched.Run(prog, alg, sched.Options{Seed: s})
				if !oracle.Interleavings[r.InterleavingHash] {
					t.Fatalf("gen %d: %s left the feasible space", seed, name)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no generated program was small enough for the oracle")
	}
}

func TestConfigNormalization(t *testing.T) {
	p := Gen(1, Config{MaxThreads: -1, MaxOps: 0, Vars: 0, Mutexes: 0, SpawnDepth: 0})
	if p.Threads() < 1 {
		t.Fatal("no root thread")
	}
	r := sched.Run(p.Prog(), core.NewRandomWalk(), sched.Options{Seed: 1})
	if r.Buggy() {
		t.Fatalf("normalized config program failed: %v", r.Failure)
	}
}

func TestThreadBudgetRespected(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Gen(seed, Config{MaxThreads: 3})
		if p.Threads() > 3 {
			t.Fatalf("seed %d: %d thread plans exceed the budget", seed, p.Threads())
		}
	}
}
