package progfuzz

import (
	"math/rand"
	"testing"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/sched"
	"surw/internal/systematic"
)

// algorithms under robustness test.
var algNames = []string{"SURW", "URW", "POS", "RAPOS", "PCT-3", "PCT-10", "RW", "N-U", "N-S"}

func TestGeneratedProgramsAreDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p1 := Gen(seed, Config{})
		p2 := Gen(seed, Config{})
		if p1.Threads() != p2.Threads() {
			t.Fatalf("seed %d: generation nondeterministic", seed)
		}
		a := sched.Run(p1.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 7}})
		b := sched.Run(p2.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 7}})
		if a.InterleavingHash != b.InterleavingHash || a.Behavior != b.Behavior {
			t.Fatalf("seed %d: runs diverged", seed)
		}
	}
}

// TestNoAlgorithmBreaksGeneratedPrograms is the core robustness sweep:
// generated programs are deadlock-free and assertion-free, so any failure
// or truncation is a framework bug.
func TestNoAlgorithmBreaksGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := Gen(seed, Config{})
		prog := p.Prog()
		prof, err := profile.Collect(prog, profile.Options{Base: sched.Base{Seed: 999}})
		if err != nil {
			t.Fatalf("gen %d: profiling truncated: %v", seed, err)
		}
		for _, name := range algNames {
			alg, err := core.New(name)
			if err != nil {
				t.Fatal(err)
			}
			var info *sched.ProgramInfo
			switch name {
			case "SURW", "N-U":
				if sel, ok := prof.SelectSingleVar(newRng(seed)); ok {
					info = prof.Instantiate(sel)
				} else {
					info = prof.Instantiate(prof.SelectAll())
				}
			case "URW", "N-S", "PCT-3", "PCT-10":
				info = prof.Instantiate(prof.SelectAll())
			}
			for s := int64(0); s < 15; s++ {
				r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: s, MaxSteps: 100_000}, Info: info})
				if r.Buggy() {
					t.Fatalf("gen %d, %s, seed %d: spurious failure %v", seed, name, s, r.Failure)
				}
				if r.Truncated {
					t.Fatalf("gen %d, %s, seed %d: truncated", seed, name, s)
				}
			}
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestSamplersWithinOracleSpace cross-checks random samplers against the
// exhaustive oracle on tiny generated programs.
func TestSamplersWithinOracleSpace(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 30 && checked < 5; seed++ {
		p := Gen(seed, Config{MaxThreads: 3, MaxOps: 3, Vars: 2, Mutexes: 1})
		prog := p.Prog()
		oracle := systematic.Explore(prog, systematic.Options{MaxSchedules: 60_000})
		if !oracle.Exhausted {
			continue // too large; skip
		}
		checked++
		for _, name := range []string{"RW", "POS", "RAPOS", "SURW"} {
			alg, _ := core.New(name)
			for s := int64(0); s < 200; s++ {
				r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: s}})
				if !oracle.Interleavings[r.InterleavingHash] {
					t.Fatalf("gen %d: %s left the feasible space", seed, name)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no generated program was small enough for the oracle")
	}
}

func TestConfigNormalization(t *testing.T) {
	p := Gen(1, Config{MaxThreads: -1, MaxOps: 0, Vars: 0, Mutexes: 0, SpawnDepth: 0})
	if p.Threads() < 1 {
		t.Fatal("no root thread")
	}
	r := sched.Run(p.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 1}})
	if r.Buggy() {
		t.Fatalf("normalized config program failed: %v", r.Failure)
	}
}

func TestThreadBudgetRespected(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Gen(seed, Config{MaxThreads: 3})
		if p.Threads() > 3 {
			t.Fatalf("seed %d: %d thread plans exceed the budget", seed, p.Threads())
		}
	}
}

// TestGenSyncPhaseDiscipline: the deadlock-freedom argument for the
// extended grammar rests on (a) every consuming op following every
// producing op within a thread, and (b) per-resource production covering
// consumption. Validate both structurally for many seeds.
func TestGenSyncPhaseDiscipline(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := GenSync(seed, Config{})
		sends := make(map[int]int)
		recvs := make(map[int]int)
		vcnt := make(map[int]int)
		pcnt := make(map[int]int)
		dones, waits, adds := 0, 0, 0
		for ti, plan := range p.threads {
			seenConsume := false
			for oi, o := range plan {
				if !o.kind.producing() {
					seenConsume = true
				} else if seenConsume {
					t.Fatalf("seed %d thread %d op %d: producing op after a consuming op", seed, ti, oi)
				}
				switch o.kind {
				case opSend:
					sends[o.arg]++
				case opRecv:
					recvs[o.arg]++
				case opSemV:
					vcnt[o.arg]++
				case opSemP:
					pcnt[o.arg]++
				case opWgDone:
					dones++
				case opWgWait:
					waits++
				case opWgAdd:
					adds += o.arg
					if ti != 0 || oi != 0 {
						t.Fatalf("seed %d: wgAdd not the root's first op", seed)
					}
				}
			}
		}
		for c, n := range recvs {
			if n > sends[c] {
				t.Fatalf("seed %d: channel %d consumes %d > produces %d", seed, c, n, sends[c])
			}
			if p.chanCap[c] < sends[c] {
				t.Fatalf("seed %d: channel %d capacity %d < sends %d", seed, c, p.chanCap[c], sends[c])
			}
		}
		for s, n := range pcnt {
			if n > vcnt[s] {
				t.Fatalf("seed %d: semaphore %d consumes %d > produces %d", seed, s, n, vcnt[s])
			}
		}
		if adds != dones {
			t.Fatalf("seed %d: wg Add(%d) != %d Dones", seed, adds, dones)
		}
		if waits > 0 && dones == 0 {
			t.Fatalf("seed %d: wgWait with no Dones", seed)
		}
	}
}

// TestGenSyncRunsClean: extended-grammar programs must terminate without
// failure under randomized scheduling, and deterministically per seed.
func TestGenSyncRunsClean(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := GenSync(seed, Config{})
		prog := p.Prog()
		var prevHash uint64
		var prevBeh string
		for rep := 0; rep < 2; rep++ {
			r := sched.Run(prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed * 3}})
			if r.Buggy() {
				t.Fatalf("seed %d: spurious failure %v", seed, r.Failure)
			}
			if r.Truncated {
				t.Fatalf("seed %d: truncated", seed)
			}
			if rep == 1 && (r.InterleavingHash != prevHash || r.Behavior != prevBeh) {
				t.Fatalf("seed %d: nondeterministic", seed)
			}
			prevHash, prevBeh = r.InterleavingHash, r.Behavior
		}
	}
}

// TestGenSyncUsesExtendedVocabulary: across seeds the extended grammar
// must actually emit channel, semaphore, waitgroup, and gate events (a
// degenerate generator would trivially pass the clean-run sweep).
func TestGenSyncUsesExtendedVocabulary(t *testing.T) {
	kinds := make(map[opKind]bool)
	for seed := int64(0); seed < 100; seed++ {
		p := GenSync(seed, Config{})
		for _, plan := range p.threads {
			for _, o := range plan {
				kinds[o.kind] = true
			}
		}
	}
	for _, want := range []opKind{opSend, opRecv, opSemV, opSemP, opWgDone, opWgWait, opGateOpen, opGateWait} {
		if !kinds[want] {
			t.Fatalf("extended grammar never emitted op kind %d", want)
		}
	}
}

// TestGenDeadlockOracleMatchesEnumeration: the computed expected-deadlock
// flag must agree with exhaustive enumeration of the schedule space.
func TestGenDeadlockOracleMatchesEnumeration(t *testing.T) {
	sawExpected, sawSafe := false, false
	for seed := int64(0); seed < 25; seed++ {
		p, expect := GenDeadlock(seed, Config{})
		oracle := systematic.Explore(p.Prog(), systematic.Options{MaxSchedules: 200_000})
		if !oracle.Exhausted {
			t.Fatalf("seed %d: deadlock program too large to enumerate", seed)
		}
		found := oracle.Bugs["deadlock"] > 0
		if found != expect {
			t.Fatalf("seed %d: oracle says deadlock=%v, enumeration found %v", seed, expect, found)
		}
		for id := range oracle.Bugs {
			if id != "deadlock" {
				t.Fatalf("seed %d: unexpected bug class %q", seed, id)
			}
		}
		if expect {
			sawExpected = true
		} else {
			sawSafe = true
		}
	}
	if !sawExpected || !sawSafe {
		t.Fatalf("grammar degenerate: expected=%v safe=%v over the sweep", sawExpected, sawSafe)
	}
}

// TestGenDeadlockDeterministic: same seed, same program, same oracle.
func TestGenDeadlockDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p1, e1 := GenDeadlock(seed, Config{})
		p2, e2 := GenDeadlock(seed, Config{})
		if e1 != e2 || p1.Threads() != p2.Threads() {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
		a := sched.Run(p1.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 5}})
		b := sched.Run(p2.Prog(), core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 5}})
		if a.InterleavingHash != b.InterleavingHash || a.BugID() != b.BugID() {
			t.Fatalf("seed %d: runs diverged", seed)
		}
	}
}
